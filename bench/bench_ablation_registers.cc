/**
 * @file
 * Register-sharing ablation (the Section VII-A discussion).
 *
 * The released RayFlex registers each operation's SRFDS fields
 * disjointly, which is why sequential area grows ~64% when the distance
 * operations are added. The paper sketches the alternative of sharing
 * pipeline registers across operations by casting the SRFDS into
 * per-operation layouts (like a C union), and notes that its benefit
 * hinges on aligning fields with the same lifetime - from the ideal
 * case (maximum over per-op live bits at each stage) down to the worst
 * case where every union bit stays live at all stages and dead-node
 * elimination removes nothing.
 *
 * This bench quantifies all three policies across the four paper
 * configurations: sequential area, total area, and the register share
 * of ray-triangle power.
 */
#include <cstdio>

#include "synth/area.hh"
#include "synth/power.hh"

using namespace rayflex::core;
using namespace rayflex::synth;

int
main()
{
    const RegisterPolicy policies[] = {
        RegisterPolicy::DisjointPerOp,
        RegisterPolicy::SharedUnionAligned,
        RegisterPolicy::SharedUnionWorstCase,
    };
    const DatapathConfig bases[] = {kBaselineUnified, kBaselineDisjoint,
                                    kExtendedUnified, kExtendedDisjoint};

    printf("=== Register-sharing ablation (Section VII-A) ===\n\n");
    printf("%-20s %-18s %10s %12s %12s %11s\n", "config", "policy",
           "seq bits", "seq(um^2)", "total(um^2)", "P(tri,mW)");

    double disjoint_seq[4] = {};
    double aligned_seq[4] = {};
    for (int b = 0; b < 4; ++b) {
        for (RegisterPolicy pol : policies) {
            DatapathConfig cfg = bases[b];
            cfg.register_policy = pol;
            Netlist n = Netlist::build(cfg);
            AreaReport a = AreaModel().estimate(n, 1.0);
            double p = PowerModel()
                           .estimateFullThroughput(
                               n, Opcode::RayTriangle, 1.0)
                           .total() *
                       1e3;
            printf("%-20s %-18s %10llu %12.0f %12.0f %11.1f\n",
                   bases[b].name().c_str(), registerPolicyName(pol),
                   (unsigned long long)n.totalSequentialBits(),
                   a.sequential, a.total(), p);
            if (pol == RegisterPolicy::DisjointPerOp)
                disjoint_seq[b] = a.sequential;
            if (pol == RegisterPolicy::SharedUnionAligned)
                aligned_seq[b] = a.sequential;
        }
        printf("\n");
    }

    printf("=== Takeaways ===\n");
    printf("sequential-area saving of ideal lifetime alignment:\n");
    for (int b = 0; b < 4; ++b) {
        printf("  %-20s %5.1f%%\n", bases[b].name().c_str(),
               100.0 * (1.0 - aligned_seq[b] / disjoint_seq[b]));
    }
    // The paper's +64% sequential growth under DisjointPerOp vs the
    // aligned-union growth.
    auto seq = [&](const DatapathConfig &base, RegisterPolicy pol) {
        DatapathConfig cfg = base;
        cfg.register_policy = pol;
        return AreaModel()
            .estimate(Netlist::build(cfg), 1.0)
            .sequential;
    };
    double grow_disjoint =
        seq(kExtendedUnified, RegisterPolicy::DisjointPerOp) /
        seq(kBaselineUnified, RegisterPolicy::DisjointPerOp);
    double grow_aligned =
        seq(kExtendedUnified, RegisterPolicy::SharedUnionAligned) /
        seq(kBaselineUnified, RegisterPolicy::SharedUnionAligned);
    printf("\nsequential growth when adding the distance ops:\n");
    printf("  disjoint per-op registers (paper's design): +%.0f%% "
           "(paper: ~64%%)\n",
           (grow_disjoint - 1) * 100);
    printf("  ideal shared union:                         +%.0f%%\n",
           (grow_aligned - 1) * 100);
    printf("\nThe aligned union recovers most of the extension's "
           "sequential overhead, at the\ncost of the layout discipline "
           "the paper describes (mapping same-lifetime fields\nto the "
           "same SRFDS positions).\n");
    return 0;
}
