/**
 * @file
 * Rounding-strategy ablation (the Section III-F discussion).
 *
 * RayFlex rounds to binary32 after every addition/multiplication; the
 * rounding circuit "is not trivial and adds to the overall area/power".
 * The paper leaves the unrounded alternative unexplored and predicts
 * two costs: complicated precision alignment in a unified pipeline, and
 * results deviating from the software golden model. This bench
 * quantifies both sides of the trade:
 *
 *  1. hardware: area and power with the rounding circuits removed
 *     (skip_intermediate_rounding);
 *  2. numerics: how often and how far the unrounded datapath's results
 *     deviate from the per-operation-rounded golden model, per
 *     operation class, over large random campaigns - the verification
 *     burden the paper warns about.
 */
#include <cmath>
#include <cstdio>

#include "core/golden.hh"
#include "core/workloads.hh"
#include "synth/area.hh"
#include "synth/power.hh"

using namespace rayflex::core;
using namespace rayflex::fp;

namespace
{

/** ULP distance between two finite floats of the same sign regime. */
int64_t
ulpDiff(F32 a, F32 b)
{
    auto key = [](F32 v) -> int64_t {
        int64_t k = v & 0x7FFFFFFF;
        return signF32(v) ? -k : k;
    };
    return std::llabs(key(a) - key(b));
}

} // namespace

int
main()
{
    // ---- hardware side ----
    printf("=== Rounding ablation: hardware cost of per-op rounding "
           "===\n\n");
    printf("%-20s %14s %14s %12s %12s\n", "config", "area (round)",
           "area (none)", "P box(mW)", "P box none");
    for (const auto &base : {kBaselineUnified, kExtendedUnified,
                             kExtendedDisjoint}) {
        DatapathConfig no_round = base;
        no_round.skip_intermediate_rounding = true;
        using namespace rayflex::synth;
        double a0 = AreaModel()
                        .estimate(Netlist::build(base), 1.0)
                        .total();
        double a1 = AreaModel()
                        .estimate(Netlist::build(no_round), 1.0)
                        .total();
        double p0 = PowerModel()
                        .estimateFullThroughput(Netlist::build(base),
                                                Opcode::RayBox, 1.0)
                        .total() *
                    1e3;
        double p1 = PowerModel()
                        .estimateFullThroughput(Netlist::build(no_round),
                                                Opcode::RayBox, 1.0)
                        .total() *
                    1e3;
        printf("%-20s %14.0f %14.0f %12.1f %12.1f\n",
               base.name().c_str(), a0, a1, p0, p1);
    }
    {
        using namespace rayflex::synth;
        DatapathConfig no_round = kBaselineUnified;
        no_round.skip_intermediate_rounding = true;
        double save =
            1.0 - AreaModel()
                      .estimate(Netlist::build(no_round), 1.0)
                      .total() /
                      AreaModel()
                          .estimate(Netlist::build(kBaselineUnified), 1.0)
                          .total();
        printf("\nrounding circuits account for ~%.1f%% of total "
               "baseline area in this model.\n\n",
               save * 100);
    }

    // ---- numerical side ----
    printf("=== Numerical deviation: unrounded vs per-op-rounded "
           "golden ===\n\n");
    const int kCases = 200000;

    // Ray-box: hit-flag agreement and entry-distance ULP drift.
    {
        WorkloadGen gen(0x20F1);
        uint64_t flips = 0, dist_diff = 0, max_ulp = 0, hits = 0;
        for (int i = 0; i < kCases; ++i) {
            DatapathInput in = gen.rayBoxOp(uint64_t(i));
            for (int b = 0; b < 4; ++b) {
                golden::BoxHit r = golden::rayBox(in.ray, in.boxes[b]);
                golden::BoxHit u =
                    golden::rayBoxUnrounded(in.ray, in.boxes[b]);
                if (r.hit != u.hit)
                    ++flips;
                if (r.hit && u.hit) {
                    ++hits;
                    int64_t d = ulpDiff(r.t_near, u.t_near);
                    if (d != 0)
                        ++dist_diff;
                    max_ulp = std::max<uint64_t>(max_ulp, uint64_t(d));
                }
            }
        }
        printf("ray-box   (%d x 4 tests): %llu hit-flag flips "
               "(%.4f%%), %llu/%llu distances differ, max %llu ulp\n",
               kCases, (unsigned long long)flips,
               100.0 * double(flips) / (4.0 * kCases),
               (unsigned long long)dist_diff, (unsigned long long)hits,
               (unsigned long long)max_ulp);
    }

    // Ray-triangle: hit flips and t = num/den relative drift.
    {
        WorkloadGen gen(0x20F2);
        uint64_t flips = 0, hits = 0;
        double max_rel = 0;
        for (int i = 0; i < kCases; ++i) {
            DatapathInput in = gen.rayTriangleOp(uint64_t(i));
            TriangleResult r = golden::rayTriangle(in.ray, in.tri);
            TriangleResult u =
                golden::rayTriangleUnrounded(in.ray, in.tri);
            if (r.hit != u.hit)
                ++flips;
            if (r.hit && u.hit) {
                ++hits;
                double tr = double(fromBits(r.t_num)) /
                            double(fromBits(r.t_den));
                double tu = double(fromBits(u.t_num)) /
                            double(fromBits(u.t_den));
                if (tr != 0)
                    max_rel = std::max(max_rel,
                                       std::fabs(tu - tr) /
                                           std::fabs(tr));
            }
        }
        printf("ray-tri   (%d tests):     %llu hit-flag flips "
               "(%.4f%%), max relative t drift %.2e over %llu hits\n",
               kCases, (unsigned long long)flips,
               100.0 * double(flips) / kCases, max_rel,
               (unsigned long long)hits);
    }

    // Adversarial boundary geometry: where verdict flips live.
    {
        WorkloadGen gen(0x20F4);
        uint64_t flips = 0;
        for (int i = 0; i < kCases; ++i) {
            DatapathInput in = gen.adversarialRayBoxOp(uint64_t(i));
            for (int b = 0; b < 4; ++b) {
                golden::BoxHit r = golden::rayBox(in.ray, in.boxes[b]);
                golden::BoxHit u =
                    golden::rayBoxUnrounded(in.ray, in.boxes[b]);
                if (r.hit != u.hit)
                    ++flips;
            }
        }
        printf("ray-box boundary-adversarial (%d x 4): %llu hit-flag "
               "flips (%.4f%%)\n",
               kCases, (unsigned long long)flips,
               100.0 * double(flips) / (4.0 * kCases));
    }

    // Euclidean: relative error of the accumulated distance.
    {
        WorkloadGen gen(0x20F3);
        double max_rel = 0, sum_rel = 0;
        for (int i = 0; i < kCases; ++i) {
            DatapathInput in = gen.euclideanOp(true, uint64_t(i));
            double r = fromBits(
                golden::euclideanBeat(in.vec_a, in.vec_b, in.mask));
            double u = fromBits(golden::euclideanBeatUnrounded(
                in.vec_a, in.vec_b, in.mask));
            if (r > 0) {
                double rel = std::fabs(u - r) / r;
                max_rel = std::max(max_rel, rel);
                sum_rel += rel;
            }
        }
        printf("euclidean (%d beats):     mean relative deviation "
               "%.2e, max %.2e\n",
               kCases, sum_rel / kCases, max_rel);
    }

    printf("\nConclusion: forgoing intermediate rounding buys a few "
           "percent of area/power but\nperturbs distances by ulps and "
           "can flip verdicts on boundary geometry - the\n"
           "verification complication the paper predicts (results "
           "deviate from the golden\nsoftware implementation).\n");
    return 0;
}
