/**
 * @file
 * Reproduces the squarer-specialization ablation of Section VII-B.
 *
 * The disjoint design gives the synthesizer private stage-3 multipliers
 * whose two inputs come from the same wire, letting it specialize them
 * into squarers (16 of 16 for Euclidean, 8 of 16 for cosine). This
 * bench sweeps the three wiring variants the paper discusses:
 *
 *   unified    - multipliers shared with ray-box: no specialization
 *   disjoint   - private multipliers: squarers save ~9% (Euclidean) /
 *                ~3% (cosine) power
 *   perturbed  - disjoint, but stage-3 wiring deliberately perturbed so
 *                no multiplier sees tied inputs: the saving disappears
 *                and Euclidean power lands ~1.9% *above* unified
 */
#include <cstdio>

#include "core/datapath.hh"
#include "core/workloads.hh"
#include "synth/power.hh"

using namespace rayflex::core;
using namespace rayflex::synth;

namespace
{

double
measure(const DatapathConfig &cfg, Opcode op)
{
    RayFlexDatapath dp(cfg);
    WorkloadGen gen(0xAB1u ^ unsigned(op));
    runBatch(dp, gen.batch(op, 100));
    ActivityTrace trace = dp.activity();
    trace.cycles = trace.totalBeats();
    return PowerModel().estimate(Netlist::build(cfg), trace, 1.0).total() *
           1e3;
}

} // namespace

int
main()
{
    DatapathConfig perturbed = kExtendedDisjoint;
    perturbed.perturb_squarers = true;

    printf("=== Ablation: squarer specialization (Section VII-B) ===\n\n");
    printf("%-24s %12s %12s %16s\n", "config", "euclidean", "cosine",
           "stage-3 squarers");
    struct Row
    {
        const char *name;
        DatapathConfig cfg;
    } rows[] = {
        {"extended-unified", kExtendedUnified},
        {"extended-disjoint", kExtendedDisjoint},
        {"extended-perturbed", perturbed},
    };
    double euc[3], cos[3];
    for (int i = 0; i < 3; ++i) {
        euc[i] = measure(rows[i].cfg, Opcode::Euclidean);
        cos[i] = measure(rows[i].cfg, Opcode::Cosine);
        unsigned sq = Netlist::build(rows[i].cfg).totalFus().squarers;
        printf("%-24s %10.1fmW %10.1fmW %16u\n", rows[i].name, euc[i],
               cos[i], sq);
    }

    printf("\n%-52s %8s %9s\n", "comparison", "paper", "measured");
    printf("%-52s %7s%% %+8.1f%%\n", "euclidean: disjoint vs unified",
           "-9", (euc[1] / euc[0] - 1) * 100);
    printf("%-52s %7s%% %+8.1f%%\n", "cosine: disjoint vs unified", "-3",
           (cos[1] / cos[0] - 1) * 100);
    printf("%-52s %7s%% %+8.1f%%\n",
           "euclidean: perturbed-disjoint vs unified", "+1.9",
           (euc[2] / euc[0] - 1) * 100);
    printf("\nConclusion: the power saving is attributable to the "
           "squarer specialization;\nperturbing the stage-3 wiring "
           "removes it (Section VII-B).\n");
    return 0;
}
