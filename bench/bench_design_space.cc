/**
 * @file
 * Design-space Pareto explorer: the paper's cost/benefit question
 * ("what is worth building", Figs. 7-9) asked of every subsystem this
 * repo grew past the seed datapath.
 *
 * Sweeps the cycle-accurate engine across the knob grid
 * (packet.width x issue_width x mshrs x L1 geometry x chip units/L2),
 * joins each point's simulated throughput (rays/kcycle) with the
 * component cost model's area (mm^2) and power (W) for the same
 * EngineConfig (synth::ChipCostModel), and computes the non-dominated
 * Pareto front over (throughput max, area min, power min) — the
 * configurations for which no other swept point is at least as good
 * on every axis and better on one.
 *
 * Every number is simulated and bit-deterministic: the engine's hit
 * records and merged counters are identical at every worker count, and
 * the cost model is a pure function of (config, merged stats), so this
 * sweep is reproducible to the bit across machines.
 *
 * Output: a human table on stdout plus BENCH_design_space.json (path
 * overridable as argv[1]) in the schema scripts/check_pareto.py
 * validates — dimensions, per-point knobs/metrics, and the pareto
 * flag.
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bvh/scene.hh"
#include "core/raygen.hh"
#include "sim/engine.hh"
#include "synth/chip_cost.hh"

using namespace rayflex;
using namespace rayflex::bvh;
using namespace rayflex::core;

namespace
{

/** The shared bench scene (bench_sim_engine's): rolling terrain with
 *  an embedded sphere, ~2.4k triangles. */
const Bvh4 &
benchScene()
{
    static Bvh4 bvh = [] {
        auto tris = makeTerrain(20.0f, 32, 0.5f, 11);
        uint32_t id = uint32_t(tris.size());
        auto sphere = makeSphere({0, 2.0f, 0}, 2.0f, 16, 24, id);
        tris.insert(tris.end(), sphere.begin(), sphere.end());
        return buildBvh4(std::move(tris));
    }();
    return bvh;
}

std::vector<Ray>
benchRays(unsigned side)
{
    const Bvh4 &bvh = benchScene();
    Camera cam;
    Vec3 c = bvh.root_bounds.centre();
    Vec3 ext = bvh.root_bounds.hi - bvh.root_bounds.lo;
    cam.look_at = c;
    cam.eye = c + Vec3{0.4f * ext.x, 0.5f * ext.y, 1.3f * ext.z};
    cam.width = side;
    cam.height = side;
    std::vector<Ray> rays;
    for (unsigned y = 0; y < side; ++y)
        for (unsigned x = 0; x < side; ++x)
            rays.push_back(cam.primaryRay(x, y, 1000.0f));
    return rays;
}

struct Point
{
    unsigned packet_width = 1;
    unsigned issue_width = 1;
    unsigned mshrs = 0;
    unsigned l1_kib = 4;
    std::string chip; ///< "1u" or "4u_sharedL2"

    double rays_per_kcycle = 0;
    double area_mm2 = 0;
    double power_w = 0;
    bool pareto = false;
};

/** a dominates b: at least as good on every axis, better on one.
 *  Throughput is maximized; area and power are minimized. */
bool
dominates(const Point &a, const Point &b)
{
    if (a.rays_per_kcycle < b.rays_per_kcycle || a.area_mm2 > b.area_mm2 ||
        a.power_w > b.power_w)
        return false;
    return a.rays_per_kcycle > b.rays_per_kcycle ||
           a.area_mm2 < b.area_mm2 || a.power_w < b.power_w;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path =
        argc > 1 ? argv[1] : "BENCH_design_space.json";

    const unsigned packet_widths[] = {1, 8};
    const unsigned issue_widths[] = {1, 2, 4};
    const unsigned mshr_counts[] = {0, 8};
    const unsigned l1_kibs[] = {4, 16};
    const char *chips[] = {"1u", "4u_sharedL2"};

    const Bvh4 &bvh = benchScene();
    const auto rays = benchRays(24);
    const double clock_ghz = 1.0;
    const synth::ChipCostModel cost;

    std::vector<Point> pts;
    for (unsigned pw : packet_widths)
        for (unsigned iw : issue_widths)
            for (unsigned ms : mshr_counts)
                for (unsigned kib : l1_kibs)
                    for (const char *chip : chips) {
                        sim::EngineConfig cfg;
                        cfg.threads = 2;
                        cfg.batch_size = 0; // one batch: one chip run
                        cfg.rt.ray_buffer_entries = 32 * 8;
                        cfg.rt.packet.width = pw;
                        cfg.rt.issue_width = iw;
                        cfg.rt.mshrs = ms;
                        cfg.rt.mem_backend = MemBackend::NodeCache;
                        cfg.rt.cache = kProbeCache4KiB;
                        cfg.rt.cache.sets = 16 * (kib / 4);
                        if (std::string(chip) == "4u_sharedL2") {
                            cfg.chip.units = 4;
                            cfg.chip.l2 = sim::L2Mode::Shared;
                            cfg.chip.l2cfg = kProbeL2_128KiB;
                        }

                        auto rep = sim::Engine(cfg).run(bvh, rays);
                        const uint64_t wall = rep.unit.chip_cycles
                                                  ? rep.unit.chip_cycles
                                                  : rep.unit.cycles;

                        Point p;
                        p.packet_width = pw;
                        p.issue_width = iw;
                        p.mshrs = ms;
                        p.l1_kib = kib;
                        p.chip = chip;
                        p.rays_per_kcycle =
                            wall ? 1000.0 * double(rays.size()) /
                                       double(wall)
                                 : 0.0;
                        p.area_mm2 =
                            cost.area(cfg, clock_ghz).total_mm2();
                        p.power_w =
                            cost.power(cfg, rep.unit, clock_ghz)
                                .total_w();
                        pts.push_back(std::move(p));
                    }

    for (Point &p : pts) {
        p.pareto = std::none_of(
            pts.begin(), pts.end(),
            [&](const Point &q) { return dominates(q, p); });
    }

    printf("=== Design space: rays/kcycle vs area vs power (1 GHz) "
           "===\n");
    printf("(%zu coherent primary rays on the shared bench scene; "
           "every number simulated)\n\n",
           rays.size());
    printf("%6s %5s %5s %6s %12s %12s %9s %9s %10s %7s\n", "packet",
           "issue", "mshrs", "l1KiB", "chip", "rays/kcycle", "mm^2",
           "W", "perf/W", "pareto");
    for (const Point &p : pts)
        printf("%6u %5u %5u %6u %12s %12.1f %9.3f %9.3f %10.0f %7s\n",
               p.packet_width, p.issue_width, p.mshrs, p.l1_kib,
               p.chip.c_str(), p.rays_per_kcycle, p.area_mm2, p.power_w,
               p.power_w > 0 ? p.rays_per_kcycle / p.power_w : 0.0,
               p.pareto ? "*" : "");

    size_t front = size_t(
        std::count_if(pts.begin(), pts.end(),
                      [](const Point &p) { return p.pareto; }));
    printf("\nPareto front: %zu of %zu swept points\n", front,
           pts.size());

    FILE *json = fopen(out_path, "w");
    if (!json) {
        fprintf(stderr, "cannot open %s for writing\n", out_path);
        return 1;
    }
    fprintf(json, "{\n");
    fprintf(json,
            "  \"workload\": {\"scene\": \"terrain32+sphere\", "
            "\"rays\": %zu, \"kind\": \"coherent_primaries\"},\n",
            rays.size());
    fprintf(json, "  \"clock_ghz\": %g,\n", clock_ghz);
    fprintf(json, "  \"dimensions\": {\n");
    fprintf(json, "    \"packet_width\": [1, 8],\n");
    fprintf(json, "    \"issue_width\": [1, 2, 4],\n");
    fprintf(json, "    \"mshrs\": [0, 8],\n");
    fprintf(json, "    \"l1_kib\": [4, 16],\n");
    fprintf(json,
            "    \"chip\": [\"1u\", \"4u_sharedL2\"]\n  },\n");
    fprintf(json, "  \"points\": [\n");
    for (size_t i = 0; i < pts.size(); ++i) {
        const Point &p = pts[i];
        fprintf(json,
                "    {\"packet_width\": %u, \"issue_width\": %u, "
                "\"mshrs\": %u, \"l1_kib\": %u, \"chip\": \"%s\", "
                "\"rays_per_kcycle\": %.10g, \"area_mm2\": %.10g, "
                "\"power_w\": %.10g, \"perf_per_mm2\": %.10g, "
                "\"perf_per_watt\": %.10g, \"pareto\": %s}%s\n",
                p.packet_width, p.issue_width, p.mshrs, p.l1_kib,
                p.chip.c_str(), p.rays_per_kcycle, p.area_mm2,
                p.power_w,
                p.area_mm2 > 0 ? p.rays_per_kcycle / p.area_mm2 : 0.0,
                p.power_w > 0 ? p.rays_per_kcycle / p.power_w : 0.0,
                p.pareto ? "true" : "false",
                i + 1 < pts.size() ? "," : "");
    }
    fprintf(json, "  ]\n}\n");
    fclose(json);
    printf("wrote %s\n", out_path);
    return 0;
}
