/**
 * @file
 * Distance-extension workload bench (Section V-A): beats and cycles
 * required for Euclidean / cosine distance over increasing vector
 * dimensionality, multi-beat pipelining efficiency, and a k-NN-style
 * batch query driven through the pipelined extended datapath.
 */
#include <cstdio>
#include <cmath>

#include "bvh/scene.hh"
#include "core/datapath.hh"
#include "core/workloads.hh"
#include "pipeline/drivers.hh"

using namespace rayflex::core;
using rayflex::fp::fromBits;
using rayflex::fp::toBits;

namespace
{

/** Beats of one Euclidean job for a dims-dimensional vector pair. */
std::vector<DatapathInput>
jobBeats(const std::vector<float> &a, const std::vector<float> &b)
{
    std::vector<DatapathInput> beats;
    for (size_t base = 0; base < a.size(); base += kEuclideanWidth) {
        DatapathInput in;
        in.op = Opcode::Euclidean;
        uint16_t mask = 0;
        for (size_t i = 0; i < kEuclideanWidth && base + i < a.size();
             ++i) {
            in.vec_a[i] = toBits(a[base + i]);
            in.vec_b[i] = toBits(b[base + i]);
            mask |= uint16_t(1u << i);
        }
        in.mask = mask;
        in.reset_accumulator = base + kEuclideanWidth >= a.size();
        beats.push_back(in);
    }
    return beats;
}

} // namespace

int
main()
{
    printf("=== Extended datapath: arbitrary-dimension distance "
           "(Section V-A) ===\n\n");

    // Beats/cycles per query vs dimensionality, at full throughput.
    printf("%-12s %10s %14s %16s\n", "dimensions", "beats/job",
           "cycles/job*", "Mqueries/s @1GHz");
    WorkloadGen gen(1);
    for (size_t dims : {8, 16, 32, 64, 128, 256, 1024}) {
        std::vector<float> a(dims), b(dims);
        for (size_t i = 0; i < dims; ++i) {
            a[i] = gen.uniform(-10, 10);
            b[i] = gen.uniform(-10, 10);
        }
        auto beats = jobBeats(a, b);
        // Steady-state cycles per job at II=1 equals the beat count;
        // the 11-cycle latency amortizes across queries.
        double qps_ghz = 1e9 / double(beats.size()) / 1e6;
        printf("%-12zu %10zu %14zu %16.1f\n", dims, beats.size(),
               beats.size(), qps_ghz);
    }
    printf("(* steady state, pipeline full; latency 11 cycles "
           "amortized)\n\n");

    // k-NN style batch: N candidates against one query, pipelined,
    // measuring actual cycles including fill/drain.
    printf("=== Pipelined 1-NN scan over a point cloud ===\n");
    const unsigned dims = 64;
    const size_t n_points = 512;
    auto cloud = rayflex::bvh::makePointCloud(n_points, dims, 8, 7);
    std::vector<float> query(dims);
    for (unsigned i = 0; i < dims; ++i)
        query[i] = gen.uniform(-50, 50);

    RayFlexDatapath dp(kExtendedUnified);
    rayflex::pipeline::Simulator sim;
    rayflex::pipeline::Source<DatapathInput> src("src", &dp.in());
    rayflex::pipeline::Sink<DatapathOutput> sink("sink", &dp.out());
    dp.registerWith(sim);
    sim.add(&src);
    sim.add(&sink);

    size_t total_beats = 0;
    for (const auto &p : cloud) {
        for (auto &beat : jobBeats(query, p.coords)) {
            src.push(beat);
            ++total_beats;
        }
    }
    sim.runUntil([&] { return sink.count() == total_beats; },
                 total_beats * 4 + 1000);

    // Scan results for the nearest candidate (job ends are flagged by
    // euclidean_reset).
    double best = 1e300;
    size_t best_idx = 0, job = 0;
    for (const auto &out : sink.received()) {
        if (!out.euclidean_reset)
            continue;
        double d = double(fromBits(out.euclidean_accumulator));
        if (d < best) {
            best = d;
            best_idx = job;
        }
        ++job;
    }

    // Reference scan in double.
    double ref_best = 1e300;
    size_t ref_idx = 0;
    for (size_t i = 0; i < cloud.size(); ++i) {
        double s = 0;
        for (unsigned d = 0; d < dims; ++d) {
            double diff = double(query[d]) - double(cloud[i].coords[d]);
            s += diff * diff;
        }
        if (s < ref_best) {
            ref_best = s;
            ref_idx = i;
        }
    }

    printf("  %zu candidates x %u dims = %zu beats in %llu cycles "
           "(%.3f beats/cycle)\n",
           n_points, dims, total_beats,
           (unsigned long long)sim.cycle(),
           double(total_beats) / double(sim.cycle()));
    printf("  nearest neighbour: datapath=%zu (d2=%.3f), "
           "reference=%zu (d2=%.3f) -> %s\n",
           best_idx, best, ref_idx, ref_best,
           best_idx == ref_idx ? "MATCH" : "MISMATCH");
    printf("  at 1 GHz: %.2f Mqueries/s for %u-dim 1-NN scan over %zu "
           "points\n",
           1e9 / (double(sim.cycle()) / double(n_points)) / 1e6, dims,
           n_points);
    return best_idx == ref_idx ? 0 : 1;
}
