/**
 * @file
 * Reproduces Figure 7: circuit area versus (1) target clock frequency
 * (500-1500 MHz), (2) baseline vs extended functionality, and
 * (3) unified vs disjoint functional-unit pools, decomposed into the
 * sequential / inverter / buffer / logic categories of the Genus report.
 *
 * Prints the per-configuration area series and the headline ratio
 * summary quoted in Section VII-A.
 *
 * An optional argument names a JSON output file in the
 * google-benchmark shape scripts/bench_compare.py consumes
 * ({"benchmarks": [{"name", <counters>}]}), so CI can threshold-gate
 * the area trajectory like every perf bench:
 *
 *     bench_fig7_area BENCH_area.json
 */
#include <cstdio>

#include "synth/area.hh"

using namespace rayflex::synth;
using namespace rayflex::core;

int
main(int argc, char **argv)
{
    const AreaModel model;
    const DatapathConfig configs[] = {kBaselineUnified, kBaselineDisjoint,
                                      kExtendedUnified,
                                      kExtendedDisjoint};
    const double freqs_mhz[] = {500, 700, 900, 1000, 1100, 1300, 1500};

    printf("=== Figure 7: circuit area vs target clock frequency ===\n");
    printf("(um^2; categories as in the Genus area report)\n\n");
    printf("%-20s %7s %12s %12s %10s %10s %12s\n", "config", "MHz",
           "sequential", "logic", "buffer", "inverter", "total");
    FILE *json = argc > 1 ? fopen(argv[1], "w") : nullptr;
    if (argc > 1 && !json) {
        fprintf(stderr, "cannot open %s for writing\n", argv[1]);
        return 1;
    }
    if (json)
        fprintf(json, "{\n  \"benchmarks\": [\n");
    bool first = true;
    for (const auto &cfg : configs) {
        for (double mhz : freqs_mhz) {
            Netlist n = Netlist::build(cfg);
            AreaReport a = model.estimate(n, mhz / 1000.0);
            printf("%-20s %7.0f %12.0f %12.0f %10.0f %10.0f %12.0f\n",
                   cfg.name().c_str(), mhz, a.sequential, a.logic,
                   a.buffer, a.inverter, a.total());
            if (json) {
                fprintf(json,
                        "%s    {\"name\": \"Fig7Area/%s/mhz:%.0f\", "
                        "\"area_total_um2\": %.17g, "
                        "\"area_sequential_um2\": %.17g, "
                        "\"area_logic_um2\": %.17g}",
                        first ? "" : ",\n", cfg.name().c_str(), mhz,
                        a.total(), a.sequential, a.logic);
                first = false;
            }
        }
        printf("\n");
    }
    if (json) {
        fprintf(json, "\n  ]\n}\n");
        fclose(json);
    }

    // Headline ratios at the paper's 1 GHz report point.
    auto total = [&](const DatapathConfig &c) {
        return model.estimate(Netlist::build(c), 1.0).total();
    };
    auto part = [&](const DatapathConfig &c) {
        return model.estimate(Netlist::build(c), 1.0);
    };
    double bu = total(kBaselineUnified);
    double bd = total(kBaselineDisjoint);
    double eu = total(kExtendedUnified);
    double ed = total(kExtendedDisjoint);

    printf("=== Section VII-A headline ratios (at 1 GHz) ===\n");
    printf("%-46s %9s %9s\n", "comparison", "paper", "measured");
    printf("%-46s %8s%% %+8.0f%%\n",
           "disjoint overhead (bd/bu - 1)", "+13", (bd / bu - 1) * 100);
    printf("%-46s %8s%% %+8.0f%%\n",
           "extended overhead (eu/bu - 1)", "+36", (eu / bu - 1) * 100);
    printf("%-46s %8s%% %+8.0f%%\n",
           "both overheads (ed/bu - 1)", "+92", (ed / bu - 1) * 100);
    printf("%-46s %8s%% %+8.0f%%\n",
           "ext-disjoint vs base-disjoint (ed/bd - 1)", "+70",
           (ed / bd - 1) * 100);

    AreaReport rbu = part(kBaselineUnified);
    AreaReport rbd = part(kBaselineDisjoint);
    AreaReport reu = part(kExtendedUnified);
    AreaReport red = part(kExtendedDisjoint);
    printf("%-46s %8s%% %+8.0f%%\n", "logic, unified->disjoint (base)",
           "+18", (rbd.logic / rbu.logic - 1) * 100);
    printf("%-46s %8s%% %+8.0f%%\n", "logic, unified->disjoint (ext)",
           "+74", (red.logic / reu.logic - 1) * 100);
    printf("%-46s %8s%% %+8.0f%%\n", "logic, baseline->extended (unif)",
           "+17", (reu.logic / rbu.logic - 1) * 100);
    printf("%-46s %8s%% %+8.0f%%\n", "logic, baseline->extended (disj)",
           "+72", (red.logic / rbd.logic - 1) * 100);
    printf("%-46s %8s%% %+8.0f%%\n",
           "sequential, baseline->extended (unif)", "+64",
           (reu.sequential / rbu.sequential - 1) * 100);
    printf("%-46s %8s%% %+8.0f%%\n",
           "sequential, baseline->extended (disj)", "+64",
           (red.sequential / rbd.sequential - 1) * 100);
    printf("%-46s %8s%% %+8.1f%%\n",
           "sequential, unified->disjoint (either)", "+0",
           (rbd.sequential / rbu.sequential - 1) * 100);
    return 0;
}
