/**
 * @file
 * Reproduces Figure 8: power consumption when executing each operating
 * mode at full throughput, for the four design configurations at 1 GHz.
 *
 * Methodology mirrors the paper (Section VI): each mode's stimulus is a
 * testbench of 100 random test cases run through the *pipelined*
 * cycle-accurate model; the recorded activity trace (the VCD analogue)
 * drives the power model.
 *
 * An optional argument names a JSON output file in the
 * google-benchmark shape scripts/bench_compare.py consumes, so CI can
 * threshold-gate the power trajectory:
 *
 *     bench_fig8_power BENCH_power.json
 */
#include <cstdio>

#include "core/datapath.hh"
#include "core/workloads.hh"
#include "synth/power.hh"

using namespace rayflex::core;
using namespace rayflex::synth;

namespace
{

/** Power for `op` on `cfg` from a 100-case pipelined testbench. */
PowerReport
measure(const DatapathConfig &cfg, Opcode op)
{
    RayFlexDatapath dp(cfg);
    WorkloadGen gen(0xF18u ^ unsigned(op));
    std::vector<DatapathInput> stimulus = gen.batch(op, 100);
    dp.resetActivity();
    runBatch(dp, stimulus);

    // Full-throughput accounting: the paper reports power at one beat
    // per cycle, so scale the trace to the beats actually processed.
    ActivityTrace trace = dp.activity();
    trace.cycles = trace.totalBeats();
    return PowerModel().estimate(Netlist::build(cfg), trace, 1.0);
}

} // namespace

int
main(int argc, char **argv)
{
    const DatapathConfig configs[] = {kBaselineUnified, kBaselineDisjoint,
                                      kExtendedUnified,
                                      kExtendedDisjoint};
    const char *op_names[] = {"ray_box", "ray_triangle", "euclidean",
                              "cosine"};

    printf("=== Figure 8: power at full throughput, 1 GHz (mW) ===\n");
    printf("(stimulus: 100 random test cases per mode through the "
           "pipelined model)\n\n");
    printf("%-20s %10s %12s %11s %9s\n", "config", "ray-box",
           "ray-triangle", "euclidean", "cosine");
    FILE *json = argc > 1 ? fopen(argv[1], "w") : nullptr;
    if (argc > 1 && !json) {
        fprintf(stderr, "cannot open %s for writing\n", argv[1]);
        return 1;
    }
    if (json)
        fprintf(json, "{\n  \"benchmarks\": [\n");
    bool first = true;
    double p[4][4] = {};
    for (int c = 0; c < 4; ++c) {
        const DatapathConfig &cfg = configs[c];
        printf("%-20s", cfg.name().c_str());
        for (int o = 0; o < 4; ++o) {
            Opcode op = static_cast<Opcode>(o);
            if (!cfg.extended &&
                (op == Opcode::Euclidean || op == Opcode::Cosine)) {
                printf(" %*s", o == 1 ? 12 : o == 2 ? 11 : o == 3 ? 9
                                                                  : 10,
                       "-");
                continue;
            }
            p[c][o] = measure(cfg, op).total() * 1e3;
            printf(" %*.1f", o == 1 ? 12 : o == 2 ? 11 : o == 3 ? 9 : 10,
                   p[c][o]);
            if (json) {
                fprintf(json,
                        "%s    {\"name\": \"Fig8Power/%s/%s\", "
                        "\"power_total_mw\": %.17g}",
                        first ? "" : ",\n", cfg.name().c_str(),
                        op_names[o], p[c][o]);
                first = false;
            }
        }
        printf("\n");
    }
    if (json) {
        fprintf(json, "\n  ]\n}\n");
        fclose(json);
    }

    printf("\n=== Section VII-B headline comparisons ===\n");
    printf("%-52s %8s %9s\n", "comparison", "paper", "measured");
    printf("%-52s %7s%% %+8.0f%%\n",
           "extended vs baseline, ray-box (unified)", "+18",
           (p[2][0] / p[0][0] - 1) * 100);
    printf("%-52s %7s%% %+8.0f%%\n",
           "extended vs baseline, ray-triangle (unified)", "+20",
           (p[2][1] / p[0][1] - 1) * 100);
    printf("%-52s %7s%% %+8.1f%%\n",
           "disjoint vs unified, ray-box (baseline)", "+/-2.5",
           (p[1][0] / p[0][0] - 1) * 100);
    printf("%-52s %7s%% %+8.1f%%\n",
           "disjoint vs unified, ray-triangle (baseline)", "+/-2.5",
           (p[1][1] / p[0][1] - 1) * 100);
    printf("%-52s %7s%% %+8.1f%%\n",
           "disjoint vs unified, euclidean (squarers)", "-9",
           (p[3][2] / p[2][2] - 1) * 100);
    printf("%-52s %7s%% %+8.1f%%\n",
           "disjoint vs unified, cosine (squarers)", "-3",
           (p[3][3] / p[2][3] - 1) * 100);

    double lo = 1e9, hi = 0;
    for (int c = 0; c < 4; ++c) {
        for (int o = 0; o < 4; ++o) {
            if (p[c][o] == 0)
                continue;
            lo = std::min(lo, p[c][o]);
            hi = std::max(hi, p[c][o]);
        }
    }
    printf("%-52s %8s  %4.0f-%2.0f\n", "power range across all cases (mW)",
           "60-85", lo, hi);
    return 0;
}
