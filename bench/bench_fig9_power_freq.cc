/**
 * @file
 * Reproduces Figure 9: power consumption of ray-triangle operations
 * when RayFlex is synthesized at various target clock frequencies
 * (500-1500 MHz), for all four configurations.
 */
#include <cstdio>

#include "core/datapath.hh"
#include "core/workloads.hh"
#include "synth/power.hh"

using namespace rayflex::core;
using namespace rayflex::synth;

int
main()
{
    const DatapathConfig configs[] = {kBaselineUnified, kBaselineDisjoint,
                                      kExtendedUnified,
                                      kExtendedDisjoint};
    const double freqs_mhz[] = {500, 750, 1000, 1250, 1500};

    // One shared pipelined stimulus of 100 random ray-triangle cases.
    WorkloadGen gen(0xF19);
    std::vector<DatapathInput> stimulus =
        gen.batch(Opcode::RayTriangle, 100);

    printf("=== Figure 9: ray-triangle power vs clock frequency (mW) "
           "===\n\n");
    printf("%-8s", "MHz");
    for (const auto &cfg : configs)
        printf(" %19s", cfg.name().c_str());
    printf("\n");

    double p[5][4];
    for (int f = 0; f < 5; ++f) {
        printf("%-8.0f", freqs_mhz[f]);
        for (int c = 0; c < 4; ++c) {
            RayFlexDatapath dp(configs[c]);
            dp.resetActivity();
            runBatch(dp, stimulus);
            ActivityTrace trace = dp.activity();
            trace.cycles = trace.totalBeats(); // full throughput
            p[f][c] = PowerModel()
                          .estimate(Netlist::build(configs[c]), trace,
                                    freqs_mhz[f] / 1000.0)
                          .total() *
                      1e3;
            printf(" %19.1f", p[f][c]);
        }
        printf("\n");
    }

    printf("\n=== Section VII-C observations ===\n");
    // Linearity: midpoint vs linear interpolation between endpoints.
    for (int c = 0; c < 4; ++c) {
        double lin = (p[0][c] + p[4][c]) / 2.0;
        printf("linearity %-20s: P(1GHz)/interp = %.3f "
               "(paper: nearly linear)\n",
               configs[c].name().c_str(), p[2][c] / lin);
    }
    printf("\n%-48s %10s %10s\n", "gap across the sweep", "paper",
           "measured");
    double d_min = 1e9, d_max = -1e9, e_min = 1e9, e_max = -1e9;
    for (int f = 0; f < 5; ++f) {
        double dis = (p[f][1] / p[f][0] - 1) * 100;
        double ext = (p[f][2] / p[f][0] - 1) * 100;
        d_min = std::min(d_min, dis);
        d_max = std::max(d_max, dis);
        e_min = std::min(e_min, ext);
        e_max = std::max(e_max, ext);
    }
    printf("%-48s %10s %5.1f..%4.1f%%\n", "unified vs disjoint",
           "+/-4%", d_min, d_max);
    printf("%-48s %10s %5.1f..%4.1f%%\n", "baseline vs extended",
           "14-22%", e_min, e_max);
    return 0;
}
