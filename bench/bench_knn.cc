/**
 * @file
 * k-NN scaling sweep on the cycle-accurate RT unit: cycles/query of
 * the best-first BVH traversal driving the extended datapath's
 * distance beats, across point-cloud size, dimensionality and metric,
 * and across the memory/issue knobs (flat-latency vs cached fetches,
 * single vs quad issue, bounded MSHRs). Every configuration returns
 * bit-identical neighbor lists (tests/test_knn.cc pins them to the
 * golden brute-force scan), so the sweep varies cost only: the
 * cycles_per_query and pruning counters are simulated quantities,
 * bit-deterministic, and gated by bench_compare.py in CI.
 */
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bvh/knn.hh"
#include "bvh/scene.hh"
#include "sim/engine.hh"

using namespace rayflex;
using namespace rayflex::bvh;

namespace
{

/** Index cached per (points, dims) so the timing loop never rebuilds
 *  BVHs; the same generator seeds as tests/test_knn.cc. */
const KnnIndex &
sweepIndex(size_t points, unsigned dims)
{
    static std::map<std::pair<size_t, unsigned>, KnnIndex> cache;
    const std::pair<size_t, unsigned> key{points, dims};
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache
                 .emplace(key, buildKnnIndex(makePointCloud(
                                   points, dims, 8, 42)))
                 .first;
    return it->second;
}

std::vector<KnnQuery>
sweepQueries(size_t n, unsigned dims, uint32_t k, KnnMetric metric)
{
    std::vector<KnnQuery> qs;
    qs.reserve(n);
    for (DataPoint &p : makePointCloud(n, dims, 8, 43))
        qs.push_back({std::move(p.coords), k, metric});
    return qs;
}

} // namespace

static void
BM_KnnScalingSweep(benchmark::State &state)
{
    // The k-NN headline sweep. Euclidean rows prune (the 3-D proxy
    // bound shrinks the candidate set as the radius tightens), cosine
    // rows scan every leaf — the candidates_per_query counter reports
    // the difference. The cached rows replace the flat fetch latency
    // with the 4 KiB probe L1 over the proxy BVH's node/leaf stream,
    // and quad issue feeds up to four distance beats per cycle, which
    // is where the high-dimensional rows (3 beats/candidate at
    // dims 48) recover their beat backlog.
    const size_t points = size_t(state.range(0));
    const unsigned dims = unsigned(state.range(1));
    const bool cosine = state.range(2) != 0;
    const bool cached = state.range(3) != 0;
    const unsigned issue = unsigned(state.range(4));

    const KnnIndex &index = sweepIndex(points, dims);
    const KnnMetric metric =
        cosine ? KnnMetric::Cosine : KnnMetric::Euclidean;
    const std::vector<KnnQuery> queries =
        sweepQueries(64, dims, 8, metric);

    sim::EngineConfig cfg;
    cfg.model = sim::ExecutionModel::CycleAccurate;
    cfg.dp = core::kExtendedUnified;
    cfg.threads = 1;
    cfg.batch_size = 0; // one batch: one unit serves the whole sweep
    cfg.rt.mem_backend =
        cached ? MemBackend::NodeCache : MemBackend::FixedLatency;
    cfg.rt.cache = kProbeCache4KiB;
    cfg.rt.issue_width = issue;
    cfg.rt.mshrs = 8;

    sim::KnnReport rep;
    for (auto _ : state) {
        rep = sim::Engine(cfg).runKnn(index, queries);
        benchmark::DoNotOptimize(rep.unit.cycles);
    }

    const double n = double(queries.size());
    state.counters["cycles_per_query"] =
        double(rep.unit.cycles) / n;
    state.counters["queries_per_kcycle"] =
        1000.0 * n / double(rep.unit.cycles);
    state.counters["candidates_per_query"] =
        double(rep.knn.candidates) / n;
    state.counters["beats_per_query"] =
        double(rep.knn.distance_beats) / n;
    state.counters["pruned_per_query"] = double(rep.knn.pruned) / n;
    state.counters["beats_per_cycle"] =
        double(rep.unit.datapath_beats) / double(rep.unit.cycles);
    if (cached)
        state.counters["cache_hit_rate"] = rep.unit.mem.hitRate();
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(queries.size()));
}
BENCHMARK(BM_KnnScalingSweep)
    ->ArgNames({"points", "dims", "cosine", "cached", "issue"})
    // Point-count scaling, Euclidean, flat memory, single issue.
    ->Args({500, 16, 0, 0, 1})
    ->Args({2000, 16, 0, 0, 1})
    ->Args({8000, 16, 0, 0, 1})
    // Dimensionality scaling (1 -> 3 beats/candidate).
    ->Args({2000, 8, 0, 0, 1})
    ->Args({2000, 48, 0, 0, 1})
    // Metric: the unpruned cosine scan against the Euclidean walk.
    ->Args({2000, 16, 1, 0, 1})
    // Memory/issue knobs on the largest Euclidean row.
    ->Args({8000, 16, 0, 1, 1})
    ->Args({8000, 16, 0, 1, 4})
    ->Args({8000, 48, 0, 1, 4})
    ->Unit(benchmark::kMillisecond);
