/**
 * @file
 * Multi-threaded engine throughput: host-side rays/second of the
 * sharded batch simulation engine (sim::Engine) across worker counts,
 * in both execution models, plus the sharding overhead of the
 * single-thread engine path against the bare single-unit loop, the
 * any-hit shadow batches the cycle-accurate RT unit can now time, and
 * the multi-pass scenario path (sim::renderPasses) on the persistent
 * worker pool, and the node-cache scene-size sweep: a fixed-size cache
 * against BVHs of growing triangle count, reporting the hit-rate and
 * per-ray memory-stall numbers the flat-latency memory model could not
 * distinguish across working-set sizes, and the packet-coherence
 * sweep: packet widths 1..16 on coherent primaries vs incoherent AO
 * fans, reporting the shared-fetch and occupancy numbers of the
 * wavefront scheduler (bvh/packet.hh), and the issue-width sweep:
 * rays/cycle per datapath issue width for scalar entries vs 8-wide
 * packets under a bounded MSHR file, the evidence that fetch sharing
 * turns into throughput once the datapath can spend it, and the
 * unit-scaling sweep: 1..16 lock-stepped RT units over one shared
 * banked L2 vs equal-total-capacity private L2s, the chip-level
 * saturation curve the multi-unit mode exists to draw, and the
 * streaming mix sweep: a large frame job sharing the machine with
 * staggered small probe jobs through sim::StreamingService, cross-job
 * batch packing vs the head-of-line-blocking baseline, reporting the
 * small jobs' simulated p50/p99 latency and the cross-job fetch-share
 * rate. The
 * thread-count sweep is the
 * scaling evidence for the engine: per-ray results are bit-identical at
 * every point (tests/test_sim_engine.cc), so every column of this
 * benchmark computes the same answer.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>

#include "bvh/scene.hh"
#include "core/raygen.hh"
#include "sim/passes.hh"
#include "sim/stream.hh"

using namespace rayflex;
using namespace rayflex::bvh;
using namespace rayflex::core;

namespace
{

const Bvh4 &
benchScene()
{
    static Bvh4 bvh = [] {
        auto tris = makeTerrain(20.0f, 32, 0.5f, 11);
        uint32_t id = uint32_t(tris.size());
        auto sphere = makeSphere({0, 2.0f, 0}, 2.0f, 16, 24, id);
        tris.insert(tris.end(), sphere.begin(), sphere.end());
        return buildBvh4(std::move(tris));
    }();
    return bvh;
}

std::vector<Ray>
benchRays(unsigned side)
{
    const Bvh4 &bvh = benchScene();
    Camera cam;
    Vec3 c = bvh.root_bounds.centre();
    Vec3 ext = bvh.root_bounds.hi - bvh.root_bounds.lo;
    cam.look_at = c;
    cam.eye = c + Vec3{0.4f * ext.x, 0.5f * ext.y, 1.3f * ext.z};
    cam.width = side;
    cam.height = side;
    std::vector<Ray> rays;
    for (unsigned y = 0; y < side; ++y)
        for (unsigned x = 0; x < side; ++x)
            rays.push_back(cam.primaryRay(x, y, 1000.0f));
    return rays;
}

} // namespace

static void
BM_EngineCycleAccurate(benchmark::State &state)
{
    const Bvh4 &bvh = benchScene();
    auto rays = benchRays(24);
    sim::EngineConfig cfg;
    cfg.threads = unsigned(state.range(0));
    cfg.batch_size = 64;
    for (auto _ : state) {
        auto rep = sim::Engine(cfg).run(bvh, rays);
        benchmark::DoNotOptimize(rep.unit.cycles);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rays.size()));
    state.counters["rays/s"] = benchmark::Counter(
        double(state.iterations()) * double(rays.size()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineCycleAccurate)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void
BM_EngineFunctional(benchmark::State &state)
{
    const Bvh4 &bvh = benchScene();
    auto rays = benchRays(48);
    sim::EngineConfig cfg;
    cfg.threads = unsigned(state.range(0));
    cfg.batch_size = 256;
    cfg.model = sim::ExecutionModel::Functional;
    for (auto _ : state) {
        auto rep = sim::Engine(cfg).run(bvh, rays);
        benchmark::DoNotOptimize(rep.traversal.box_ops);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rays.size()));
    state.counters["rays/s"] = benchmark::Counter(
        double(state.iterations()) * double(rays.size()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineFunctional)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void
BM_SingleUnitBaseline(benchmark::State &state)
{
    // The unsharded path the engine replaces: one RtUnit, every ray in
    // one submission. Comparing against BM_EngineCycleAccurate/1
    // isolates the engine's sharding overhead.
    const Bvh4 &bvh = benchScene();
    auto rays = benchRays(24);
    for (auto _ : state) {
        RayFlexDatapath dp(kBaselineUnified);
        RtUnit unit(bvh, dp);
        for (uint32_t i = 0; i < rays.size(); ++i)
            unit.submit(rays[i], i);
        benchmark::DoNotOptimize(unit.run().cycles);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rays.size()));
    state.counters["rays/s"] = benchmark::Counter(
        double(state.iterations()) * double(rays.size()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SingleUnitBaseline)->Unit(benchmark::kMillisecond);

namespace
{

/** Shadow-style rays: random scene points aimed at the light, with the
 *  epsilon lower extent bound every occlusion batch carries. */
std::vector<Ray>
shadowRays(size_t n)
{
    WorkloadGen gen(29);
    std::vector<Ray> rays;
    rays.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        float x = gen.uniform(-9.0f, 9.0f);
        float y = gen.uniform(-9.0f, 9.0f);
        float z = gen.uniform(-9.0f, 9.0f);
        rays.push_back(RayGen::shadowRay({x, y, z}, {0, 1, 0},
                                         {0.5f, 1.0f, 0.3f}, 1e-3f,
                                         50.0f));
    }
    return rays;
}

} // namespace

static void
BM_ShadowAnyHitCycleAccurate(benchmark::State &state)
{
    // Occlusion batches through the cycle-level RT unit
    // (TraversalMode::Any): the quantity that was impossible to time
    // before any-hit reached the cycle-accurate model.
    const Bvh4 &bvh = benchScene();
    auto rays = shadowRays(1024);
    sim::EngineConfig cfg;
    cfg.threads = unsigned(state.range(0));
    cfg.batch_size = 128;
    cfg.any_hit = true;
    sim::Engine engine(cfg); // pool outlives the timing loop
    for (auto _ : state) {
        auto rep = engine.run(bvh, rays);
        benchmark::DoNotOptimize(rep.unit.cycles);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rays.size()));
    state.counters["rays/s"] = benchmark::Counter(
        double(state.iterations()) * double(rays.size()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShadowAnyHitCycleAccurate)
    ->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void
BM_RenderPassesFunctional(benchmark::State &state)
{
    // The full multi-pass scenario (primary + shadow + AO + bounce) on
    // one engine: every pass after the first reuses the persistent
    // worker pool, so this measures the subsystem end to end.
    const Bvh4 &bvh = benchScene();
    sim::PassConfig pcfg;
    pcfg.camera.eye = {6.0f, 8.0f, 14.0f};
    pcfg.camera.look_at = {0.0f, 1.0f, 0.0f};
    pcfg.camera.width = 40;
    pcfg.camera.height = 30;
    pcfg.ao_samples = 4;
    pcfg.ao_radius = 3.0f;
    pcfg.bounce = true;

    sim::EngineConfig ecfg;
    ecfg.threads = unsigned(state.range(0));
    ecfg.batch_size = 256;
    ecfg.model = sim::ExecutionModel::Functional;
    sim::Engine engine(ecfg);

    uint64_t rays = 0;
    for (auto _ : state) {
        auto rep = sim::renderPasses(engine, bvh, pcfg);
        rays = rep.total_rays;
        benchmark::DoNotOptimize(rep.traversal.box_ops);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rays));
    state.counters["rays/s"] = benchmark::Counter(
        double(state.iterations()) * double(rays),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RenderPassesFunctional)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

namespace
{

/** Terrain BVH of parametric resolution, cached per argument so the
 *  timing loop never rebuilds scenes. */
const Bvh4 &
sweepScene(unsigned res)
{
    static std::map<unsigned, Bvh4> scenes;
    auto it = scenes.find(res);
    if (it == scenes.end())
        it = scenes
                 .emplace(res,
                          buildBvh4(makeTerrain(20.0f, res, 0.5f, 11)))
                 .first;
    return it->second;
}

} // namespace

static void
BM_NodeCacheSceneSweep(benchmark::State &state)
{
    // Scene-size sweep for the node-cache memory model: the same 4 KiB
    // probe cache against terrain BVHs of growing triangle count, one
    // fixed camera batch per scene. The flat fixed-latency model
    // charges every fetch alike, so its timing was blind to the
    // working set; with the cache the hit-rate falls monotonically as
    // the BVH outgrows the 4 KiB and cycles/ray grows with it
    // (tests/test_mem_model.cc pins both). stalls_per_ray responds to
    // the working set too but is not strictly monotone — issue-slot
    // accounting interacts with fetch overlap. Scene, camera and
    // engine setup mirror HitRateFallsAsSceneOutgrowsCache in
    // tests/test_mem_model.cc; retune them together.
    const unsigned res = unsigned(state.range(0));
    const Bvh4 &bvh = sweepScene(res);

    Camera cam;
    cam.look_at = bvh.root_bounds.centre();
    cam.eye = {6.0f, 10.0f, 18.0f};
    cam.width = 24;
    cam.height = 24;
    std::vector<Ray> rays;
    for (unsigned y = 0; y < cam.height; ++y)
        for (unsigned x = 0; x < cam.width; ++x)
            rays.push_back(cam.primaryRay(x, y, 1000.0f));

    sim::EngineConfig cfg;
    cfg.threads = 1;
    cfg.batch_size = 0; // one batch: one cache serves the whole sweep
    cfg.rt.mem_backend = MemBackend::NodeCache;
    cfg.rt.cache = kProbeCache4KiB;

    sim::EngineReport rep;
    for (auto _ : state) {
        rep = sim::Engine(cfg).run(bvh, rays);
        benchmark::DoNotOptimize(rep.unit.cycles);
    }

    const uint64_t node_bytes =
        uint64_t(bvh.nodes.size()) * kNodeStrideBytes;
    state.counters["bvh_nodes"] = double(bvh.nodes.size());
    state.counters["working_set_KiB"] =
        double(node_bytes +
               uint64_t(bvh.tris.size()) * kTriStrideBytes) /
        1024.0;
    state.counters["cache_hit_rate"] = rep.unit.mem.hitRate();
    state.counters["stalls_per_ray"] =
        double(rep.unit.stall_on_memory) / double(rays.size());
    state.counters["cycles_per_ray"] =
        double(rep.unit.cycles) / double(rays.size());
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rays.size()));
}
BENCHMARK(BM_NodeCacheSceneSweep)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

namespace
{

/** Incoherent occlusion workload: ambient-occlusion fans sprayed from
 *  random scene-space points. Rays in one fan share an origin but
 *  cover a hemisphere, so consecutive rays (which the RT unit groups
 *  into packets) rarely want the same subtree — the adversarial
 *  counterpart of the coherent camera batch. */
std::vector<Ray>
aoFanRays(size_t n_points, unsigned samples)
{
    WorkloadGen wgen(41);
    RayGen rgen(7);
    std::vector<Ray> rays;
    rays.reserve(n_points * samples);
    for (size_t i = 0; i < n_points; ++i) {
        float x = wgen.uniform(-8.0f, 8.0f);
        float z = wgen.uniform(-8.0f, 8.0f);
        float y = wgen.uniform(-1.0f, 3.0f);
        rgen.appendAoFan(rays, {x, y, z}, {0, 1, 0}, samples, 1e-3f,
                         6.0f);
    }
    return rays;
}

} // namespace

static void
BM_PacketCoherenceSweep(benchmark::State &state)
{
    // The packet-traversal acceptance sweep: packet_width 1 -> 16 on a
    // coherent primary-camera batch vs an incoherent AO-fan batch,
    // both against the 4 KiB probe cache. The sweep is iso-slot: every
    // width gets 32 wavefront scheduler slots (one W-wide packet slot
    // stands in for W scalar entries, as a warp does), so widths are
    // compared at equal context count rather than starving wide
    // packets of latency hiding. On coherent primaries,
    // mem_requests/ray must FALL monotonically with the width (each
    // shared fetch replaces what scalar paid per ray — the acceptance
    // signal tests/test_packet.cc also pins); rays/cycle is capped
    // near 1/(beats per ray) by the single-beat datapath, which scalar
    // already nearly saturates, so it moves little on coherent rays
    // and degrades on the incoherent fans where divergence collapses
    // occupancy — the gap between the two arg rows is the coherence
    // signal this benchmark exists to report. Hits are bit-identical
    // at every width (tests/test_packet.cc).
    const unsigned width = unsigned(state.range(0));
    const bool coherent = state.range(1) != 0;
    const Bvh4 &bvh = benchScene();
    const std::vector<Ray> rays =
        coherent ? benchRays(32) : aoFanRays(128, 8);

    sim::EngineConfig cfg;
    cfg.threads = 1;
    cfg.batch_size = 0; // one batch: one cache serves the whole sweep
    cfg.rt.ray_buffer_entries = 32 * width; // iso-slot: 32 wavefronts
    cfg.rt.mem_backend = MemBackend::NodeCache;
    cfg.rt.cache = kProbeCache4KiB;
    cfg.rt.packet.width = width;

    sim::EngineReport rep;
    for (auto _ : state) {
        rep = sim::Engine(cfg).run(bvh, rays);
        benchmark::DoNotOptimize(rep.unit.cycles);
    }

    const double n = double(rays.size());
    state.counters["mem_requests_per_ray"] =
        double(rep.unit.mem_requests) / n;
    state.counters["fetches_shared_per_ray"] =
        double(rep.unit.packet.fetches_shared) / n;
    state.counters["rays_per_kcycle"] =
        1000.0 * n / double(rep.unit.cycles);
    state.counters["cycles_per_ray"] = double(rep.unit.cycles) / n;
    state.counters["avg_occupancy"] = rep.unit.packet.avgOccupancy();
    state.counters["cache_hit_rate"] = rep.unit.mem.hitRate();
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rays.size()));
}
BENCHMARK(BM_PacketCoherenceSweep)
    ->ArgNames({"width", "coherent"})
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Args({16, 1})
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({8, 0})
    ->Args({16, 0})
    ->Unit(benchmark::kMillisecond);

static void
BM_IssueWidthSweep(benchmark::State &state)
{
    // The multi-issue acceptance sweep: issue_width 1 -> 8 against
    // scalar entries and 8-wide packets, coherent primaries vs
    // incoherent AO fans, all with the 4 KiB probe cache, a bounded
    // 8-entry MSHR file, and occupancy compaction at half width on
    // the divergent (incoherent) rows. The
    // packet coherence sweep showed mem_requests/ray falling ~4x with
    // the packet width while rays/cycle stayed flat — the single-beat
    // datapath capped throughput near 1/(beats per ray), so the saved
    // bandwidth could not be spent. Widening the issue datapath is
    // what spends it: on coherent primaries, rays_per_kcycle must RISE
    // monotonically with issue_width for the 8-wide packet rows (each
    // shared fetch feeds up to issue_width member beats per cycle;
    // tests/test_issue_width.cc pins the monotonicity), while the
    // scalar rows plateau after issue 2 — and under this deliberately
    // tight 8-entry MSHR file the packet rows sit ABOVE the scalar
    // ones at every issue width, at roughly half the memory requests
    // per ray: one shared fetch covers a whole active mask, so a
    // bounded outstanding-request budget goes much further per packet
    // than per scalar entry. (With a generous file — 16+ entries —
    // scalar catches back up by merging duplicate fetches across
    // slots; the bounded file is the regime this sweep reports.) Hits
    // are bit-identical to scalar at every point.
    const unsigned issue = unsigned(state.range(0));
    const unsigned width = unsigned(state.range(1));
    const bool coherent = state.range(2) != 0;
    const Bvh4 &bvh = benchScene();
    const std::vector<Ray> rays =
        coherent ? benchRays(32) : aoFanRays(128, 8);

    sim::EngineConfig cfg;
    cfg.threads = 1;
    cfg.batch_size = 0; // one batch: one L1 serves the whole sweep
    cfg.rt.ray_buffer_entries = 32 * width; // iso-slot: 32 wavefronts
    cfg.rt.mem_backend = MemBackend::NodeCache;
    cfg.rt.cache = kProbeCache4KiB;
    cfg.rt.packet.width = width;
    cfg.rt.issue_width = issue;
    cfg.rt.mshrs = 8;
    // Compaction only where divergence motivates it: coherent
    // primaries barely thin their packets, so the repacking window
    // would add fetch-boundary latency for nothing there.
    if (width > 1 && !coherent)
        cfg.rt.packet.compact_below = width / 2;

    sim::EngineReport rep;
    for (auto _ : state) {
        rep = sim::Engine(cfg).run(bvh, rays);
        benchmark::DoNotOptimize(rep.unit.cycles);
    }

    const double n = double(rays.size());
    state.counters["rays_per_kcycle"] =
        1000.0 * n / double(rep.unit.cycles);
    state.counters["cycles_per_ray"] = double(rep.unit.cycles) / n;
    state.counters["mem_requests_per_ray"] =
        double(rep.unit.mem_requests) / n;
    state.counters["beats_per_cycle"] = rep.unit.utilization();
    state.counters["mshr_merges_per_ray"] =
        double(rep.unit.mshr.merges) / n;
    state.counters["mshr_stalls_per_ray"] =
        double(rep.unit.mshr.stalls_full) / n;
    state.counters["avg_occupancy"] = rep.unit.packet.avgOccupancy();
    state.counters["compactions"] =
        double(rep.unit.packet.compactions);
    // Top-down issue-slot attribution (obs::SlotAccounting): where the
    // non-issued slots went, so a regression here can say WHICH
    // bottleneck moved — bench_compare.py gates stall_mem_slots_per_ray.
    const obs::SlotAccounting &sl = rep.unit.slots;
    state.counters["issued_slots_per_ray"] =
        double(sl[obs::Slot::Issued]) / n;
    state.counters["stall_mem_slots_per_ray"] =
        double(sl.memoryStallSlots()) / n;
    state.counters["stall_mshr_slots_per_ray"] =
        double(sl[obs::Slot::StallMshrFull]) / n;
    state.counters["stall_drain_slots_per_ray"] =
        double(sl[obs::Slot::StallDrain]) / n;
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rays.size()));
}
BENCHMARK(BM_IssueWidthSweep)
    ->ArgNames({"issue", "width", "coherent"})
    ->Args({1, 8, 1})->Args({2, 8, 1})->Args({4, 8, 1})
    ->Args({8, 8, 1})
    ->Args({1, 1, 1})->Args({2, 1, 1})->Args({4, 1, 1})
    ->Args({8, 1, 1})
    ->Args({1, 8, 0})->Args({4, 8, 0})->Args({8, 8, 0})
    ->Unit(benchmark::kMillisecond);

static void
BM_UnitScalingSweep(benchmark::State &state)
{
    // The chip-scaling headline sweep: 1 -> 16 RT units stepping in
    // lock-step (sim::EngineConfig::chip) over ONE shared banked L2,
    // against per-unit PRIVATE L2s downsized to the same total
    // capacity (sets divided by the unit count). Every unit runs the
    // PR-4/5 configuration that made a single unit memory-efficient —
    // 8-wide packets, dual issue, a bounded MSHR file, the 4 KiB probe
    // L1 — so what this sweep adds is purely the chip question: how
    // does AGGREGATE rays/kcycle scale as units multiply on a fixed
    // memory system? Shared-L2 throughput must scale sub-linearly
    // (bank queues and ring hops are the contention the model exists
    // to price) but stay ABOVE the equal-capacity private baseline
    // from 4 units up: the shared array holds the working set once
    // instead of replicating a fragment per unit, and cross-unit
    // merges absorb duplicate DRAM fills that private L2s each pay
    // (cross_unit_merges_per_ray > 0 on this coherent camera batch is
    // an acceptance criterion tests/test_chip.cc also asserts). Hits
    // are bit-identical to the scalar engine at every point.
    const unsigned units = unsigned(state.range(0));
    const bool shared = state.range(1) != 0;
    const Bvh4 &bvh = benchScene();
    const std::vector<Ray> rays = benchRays(32);

    sim::EngineConfig cfg;
    cfg.threads = 1;
    cfg.batch_size = 0; // one batch: one chip serves the whole sweep
    cfg.rt.ray_buffer_entries = 32 * 8; // iso-slot: 32 wavefronts
    cfg.rt.mem_backend = MemBackend::NodeCache;
    cfg.rt.cache = kProbeCache4KiB;
    cfg.rt.packet.width = 8;
    cfg.rt.issue_width = 2;
    cfg.rt.mshrs = 8;
    cfg.chip.units = units;
    cfg.chip.l2 = shared ? sim::L2Mode::Shared : sim::L2Mode::Private;
    // iso-capacity: split the shared geometry evenly across units
    // (throws rather than truncate, so the baseline stays honest)
    cfg.chip.l2cfg = shared ? kProbeL2_128KiB
                            : kProbeL2_128KiB.dividedAcross(units);

    sim::EngineReport rep;
    for (auto _ : state) {
        rep = sim::Engine(cfg).run(bvh, rays);
        benchmark::DoNotOptimize(rep.unit.chip_cycles);
    }

    const double n = double(rays.size());
    const L2Stats l2 = rep.unit.l2Total();
    state.counters["rays_per_kcycle"] =
        1000.0 * n / double(rep.unit.chip_cycles);
    state.counters["cycles_per_ray"] =
        double(rep.unit.chip_cycles) / n;
    state.counters["l2_hit_rate"] = l2.hitRate();
    state.counters["cross_unit_merges_per_ray"] =
        double(l2.cross_unit_merges) / n;
    state.counters["l2_queue_stalls_per_ray"] =
        double(l2.queue_stalls) / n;
    state.counters["hops_per_ray"] = double(l2.hops) / n;
    state.counters["l1_hit_rate"] = rep.unit.mem.hitRate();
    // Top-down issue-slot attribution, summed over the chip's units:
    // splits the memory wait into L1-fill vs ring vs bank-queue vs
    // L2-service slots — exactly the distinction the flat
    // l2_queue_stalls counter cannot make.
    const obs::SlotAccounting &sl = rep.unit.slots;
    state.counters["issued_slots_per_ray"] =
        double(sl[obs::Slot::Issued]) / n;
    state.counters["stall_mem_slots_per_ray"] =
        double(sl.memoryStallSlots()) / n;
    state.counters["stall_ring_slots_per_ray"] =
        double(sl[obs::Slot::StallRingHop]) / n;
    state.counters["stall_bankq_slots_per_ray"] =
        double(sl[obs::Slot::StallL2BankQueue]) / n;
    state.counters["stall_l2fill_slots_per_ray"] =
        double(sl[obs::Slot::StallL2Fill]) / n;
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rays.size()));
}
BENCHMARK(BM_UnitScalingSweep)
    ->ArgNames({"units", "shared"})
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Args({16, 1})
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({8, 0})
    ->Args({16, 0})
    ->Unit(benchmark::kMillisecond);

static void
BM_StreamingMixSweep(benchmark::State &state)
{
    // The streaming-service headline sweep: one large coherent frame
    // job (32x32 primaries, arrival 0) sharing the machine with
    // 1..8 small probe jobs (8x8 primaries) arriving staggered while
    // the frame is in flight, with cross-job batch packing ON vs OFF
    // (OFF = the head-of-line-blocking baseline: the scheduler serves
    // the frame to exhaustion before any probe sees the machine). The
    // packing rows must show the small jobs' p50/p99 SIMULATED latency
    // dropping by roughly the frame's remaining-drain time while
    // cross_job_share_rate > 0 evidences that the win comes from
    // probe rays riding the frame's packets — at identical hit
    // records and near-identical aggregate cycles_per_ray (packing
    // reshuffles batch composition, not the work). All latencies are
    // simulated cycles, so every counter here is bit-deterministic
    // and gated tightly by bench_compare.py in CI.
    const unsigned clients = unsigned(state.range(0));
    const bool packing = state.range(1) != 0;
    const Bvh4 &bvh = benchScene();
    const std::vector<Ray> frame = benchRays(32);
    const std::vector<Ray> probe = benchRays(8);

    sim::EngineConfig ecfg;
    ecfg.threads = 1;
    ecfg.rt.ray_buffer_entries = 32 * 8; // iso-slot: 32 wavefronts
    ecfg.rt.mem_backend = MemBackend::NodeCache;
    ecfg.rt.cache = kProbeCache4KiB;
    ecfg.rt.packet.width = 8;
    ecfg.rt.issue_width = 2;
    ecfg.rt.mshrs = 8;
    const sim::Engine engine(ecfg);

    sim::StreamConfig scfg;
    scfg.batch_size = 64;
    scfg.cross_job_packing = packing;

    sim::StreamReport rep;
    for (auto _ : state) {
        std::vector<sim::RenderJob> jobs;
        jobs.push_back({0, 0, false, frame});
        for (unsigned c = 1; c <= clients; ++c)
            jobs.push_back({c, 400ull * c, false, probe});
        rep = sim::StreamingService::run(engine, bvh, std::move(jobs),
                                         scfg);
        benchmark::DoNotOptimize(rep.makespan_ticks);
    }

    std::vector<uint64_t> lat;
    for (const sim::JobReport &j : rep.jobs)
        if (j.id != 0)
            lat.push_back(j.latency);
    std::sort(lat.begin(), lat.end());
    const double n = double(rep.total_rays);
    state.counters["cycles_per_ray"] = double(rep.unit.cycles) / n;
    state.counters["rays_per_kcycle"] =
        1000.0 * n / double(rep.unit.cycles);
    state.counters["small_p50_latency"] =
        lat.empty() ? 0.0 : double(lat[(lat.size() - 1) / 2]);
    state.counters["small_p99_latency"] =
        lat.empty() ? 0.0 : double(lat.back());
    state.counters["frame_latency"] = double(rep.job(0)->latency);
    state.counters["makespan_kticks"] =
        double(rep.makespan_ticks) / 1000.0;
    state.counters["cross_job_share_rate"] = rep.crossJobShareRate();
    state.counters["fairness"] = rep.fairness;
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rep.total_rays));
}
BENCHMARK(BM_StreamingMixSweep)
    ->ArgNames({"clients", "packing"})
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({8, 0})
    ->Unit(benchmark::kMillisecond);
