/**
 * @file
 * Multi-threaded engine throughput: host-side rays/second of the
 * sharded batch simulation engine (sim::Engine) across worker counts,
 * in both execution models, plus the sharding overhead of the
 * single-thread engine path against the bare single-unit loop. The
 * thread-count sweep is the scaling evidence for the engine: per-ray
 * results are bit-identical at every point (tests/test_sim_engine.cc),
 * so every column of this benchmark computes the same answer.
 */
#include <benchmark/benchmark.h>

#include "bvh/scene.hh"
#include "sim/engine.hh"

using namespace rayflex;
using namespace rayflex::bvh;
using namespace rayflex::core;

namespace
{

const Bvh4 &
benchScene()
{
    static Bvh4 bvh = [] {
        auto tris = makeTerrain(20.0f, 32, 0.5f, 11);
        uint32_t id = uint32_t(tris.size());
        auto sphere = makeSphere({0, 2.0f, 0}, 2.0f, 16, 24, id);
        tris.insert(tris.end(), sphere.begin(), sphere.end());
        return buildBvh4(std::move(tris));
    }();
    return bvh;
}

std::vector<Ray>
benchRays(unsigned side)
{
    const Bvh4 &bvh = benchScene();
    Camera cam;
    Vec3 c = bvh.root_bounds.centre();
    Vec3 ext = bvh.root_bounds.hi - bvh.root_bounds.lo;
    cam.look_at = c;
    cam.eye = c + Vec3{0.4f * ext.x, 0.5f * ext.y, 1.3f * ext.z};
    cam.width = side;
    cam.height = side;
    std::vector<Ray> rays;
    for (unsigned y = 0; y < side; ++y)
        for (unsigned x = 0; x < side; ++x)
            rays.push_back(cam.primaryRay(x, y, 1000.0f));
    return rays;
}

} // namespace

static void
BM_EngineCycleAccurate(benchmark::State &state)
{
    const Bvh4 &bvh = benchScene();
    auto rays = benchRays(24);
    sim::EngineConfig cfg;
    cfg.threads = unsigned(state.range(0));
    cfg.batch_size = 64;
    for (auto _ : state) {
        auto rep = sim::Engine(cfg).run(bvh, rays);
        benchmark::DoNotOptimize(rep.unit.cycles);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rays.size()));
    state.counters["rays/s"] = benchmark::Counter(
        double(state.iterations()) * double(rays.size()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineCycleAccurate)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void
BM_EngineFunctional(benchmark::State &state)
{
    const Bvh4 &bvh = benchScene();
    auto rays = benchRays(48);
    sim::EngineConfig cfg;
    cfg.threads = unsigned(state.range(0));
    cfg.batch_size = 256;
    cfg.model = sim::ExecutionModel::Functional;
    for (auto _ : state) {
        auto rep = sim::Engine(cfg).run(bvh, rays);
        benchmark::DoNotOptimize(rep.traversal.box_ops);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rays.size()));
    state.counters["rays/s"] = benchmark::Counter(
        double(state.iterations()) * double(rays.size()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineFunctional)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void
BM_SingleUnitBaseline(benchmark::State &state)
{
    // The unsharded path the engine replaces: one RtUnit, every ray in
    // one submission. Comparing against BM_EngineCycleAccurate/1
    // isolates the engine's sharding overhead.
    const Bvh4 &bvh = benchScene();
    auto rays = benchRays(24);
    for (auto _ : state) {
        RayFlexDatapath dp(kBaselineUnified);
        RtUnit unit(bvh, dp);
        for (uint32_t i = 0; i < rays.size(); ++i)
            unit.submit(rays[i], i);
        benchmark::DoNotOptimize(unit.run().cycles);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rays.size()));
    state.counters["rays/s"] = benchmark::Counter(
        double(state.iterations()) * double(rays.size()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SingleUnitBaseline)->Unit(benchmark::kMillisecond);
