/**
 * @file
 * Google-benchmark microbenchmarks of the model itself: simulation
 * speed of the softfloat substrate, the functional datapath, the
 * cycle-accurate pipeline, and BVH construction/traversal. These bound
 * how much verification and experimentation a given compute budget
 * buys (the model-side analogue of chiseltest runtime).
 */
#include <benchmark/benchmark.h>

#include <random>

#include "bvh/builder.hh"
#include "bvh/scene.hh"
#include "bvh/traversal.hh"
#include "core/datapath.hh"
#include "core/golden.hh"
#include "core/workloads.hh"
#include "sim/engine.hh"

using namespace rayflex::core;
using namespace rayflex::fp;

static void
BM_SoftFloatAdd(benchmark::State &state)
{
    std::mt19937_64 rng(1);
    F32 a = uint32_t(rng()), b = uint32_t(rng());
    for (auto _ : state) {
        a = addF32(a & 0x7FFFFFFF, b);
        b += 0x9E3779B9u;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_SoftFloatAdd);

static void
BM_SoftFloatMul(benchmark::State &state)
{
    std::mt19937_64 rng(2);
    F32 a = uint32_t(rng()), b = uint32_t(rng());
    for (auto _ : state) {
        a = mulF32(a & 0x7FFFFFFF, b);
        b += 0x9E3779B9u;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_SoftFloatMul);

static void
BM_FunctionalRayBox(benchmark::State &state)
{
    WorkloadGen gen(3);
    auto batch = gen.batch(Opcode::RayBox, 256);
    DistanceAccumulators acc;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(functionalEval(batch[i], acc));
        i = (i + 1) % batch.size();
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_FunctionalRayBox);

static void
BM_FunctionalRayTriangle(benchmark::State &state)
{
    WorkloadGen gen(4);
    auto batch = gen.batch(Opcode::RayTriangle, 256);
    DistanceAccumulators acc;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(functionalEval(batch[i], acc));
        i = (i + 1) % batch.size();
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_FunctionalRayTriangle);

static void
BM_GoldenRayBox(benchmark::State &state)
{
    WorkloadGen gen(5);
    auto batch = gen.batch(Opcode::RayBox, 256);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            golden::rayBox4(batch[i].ray, batch[i].boxes));
        i = (i + 1) % batch.size();
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_GoldenRayBox);

static void
BM_PipelinedSimulation(benchmark::State &state)
{
    // Simulated beats per wall-clock second through the full
    // cycle-accurate elastic pipeline.
    WorkloadGen gen(6);
    auto batch = gen.batch(Opcode::RayBox, 512);
    for (auto _ : state) {
        RayFlexDatapath dp(kExtendedUnified);
        benchmark::DoNotOptimize(runBatch(dp, batch));
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(batch.size()));
}
BENCHMARK(BM_PipelinedSimulation)->Unit(benchmark::kMillisecond);

static void
BM_BvhBuild(benchmark::State &state)
{
    auto tris =
        rayflex::bvh::makeSoup(size_t(state.range(0)), 20.0f, 0.6f, 7);
    for (auto _ : state) {
        auto bvh = rayflex::bvh::buildBvh4(tris);
        benchmark::DoNotOptimize(bvh.nodes.size());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_BvhBuild)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMillisecond);

static void
BM_Traversal(benchmark::State &state)
{
    auto bvh = rayflex::bvh::buildBvh4(
        rayflex::bvh::makeSphere({0, 0, 0}, 3.0f, 24, 32));
    rayflex::bvh::Traverser trav(bvh);
    std::mt19937_64 rng(8);
    std::uniform_real_distribution<float> p(-6.0f, 6.0f);
    for (auto _ : state) {
        auto ray = makeRay(p(rng), p(rng), 8.0f, 0.1f * p(rng),
                           0.1f * p(rng), -1.0f, 0.0f, 100.0f);
        benchmark::DoNotOptimize(trav.closestHit(ray));
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_Traversal);

namespace
{

/** The bench_throughput traversal workload, batch form: the BM_Traversal
 *  scene and ray distribution, materialized so the sharded engine can
 *  replay it at any worker count. */
std::vector<Ray>
throughputRays(size_t n)
{
    std::mt19937_64 rng(8);
    std::uniform_real_distribution<float> p(-6.0f, 6.0f);
    std::vector<Ray> rays;
    rays.reserve(n);
    for (size_t i = 0; i < n; ++i)
        rays.push_back(makeRay(p(rng), p(rng), 8.0f, 0.1f * p(rng),
                               0.1f * p(rng), -1.0f, 0.0f, 100.0f));
    return rays;
}

} // namespace

static void
BM_EngineTraversal(benchmark::State &state)
{
    // The sharded engine on the BM_Traversal workload; Arg = worker
    // threads. Per-ray hits are bit-identical at every Arg, so the
    // rays/s column measures pure host-side scaling.
    auto bvh = rayflex::bvh::buildBvh4(
        rayflex::bvh::makeSphere({0, 0, 0}, 3.0f, 24, 32));
    auto rays = throughputRays(4096);
    rayflex::sim::EngineConfig cfg;
    cfg.threads = unsigned(state.range(0));
    cfg.batch_size = 256;
    cfg.model = rayflex::sim::ExecutionModel::Functional;
    for (auto _ : state) {
        auto rep = rayflex::sim::Engine(cfg).run(bvh, rays);
        benchmark::DoNotOptimize(rep.traversal.box_ops);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rays.size()));
    state.counters["rays/s"] = benchmark::Counter(
        double(state.iterations()) * double(rays.size()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineTraversal)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void
BM_PipelinedSimulationSharded(benchmark::State &state)
{
    // The BM_PipelinedSimulation workload replayed batch-at-a-time
    // through per-batch datapath instances - the engine's sharding
    // idiom applied to a raw beat stimulus. The gap to
    // BM_PipelinedSimulation is the per-batch pipeline fill/drain cost.
    WorkloadGen gen(6);
    auto slices = sliceWorkload(gen.batch(Opcode::RayBox, 512), 128);
    for (auto _ : state) {
        size_t total = 0;
        for (const auto &s : slices) {
            RayFlexDatapath dp(kExtendedUnified);
            total += runBatch(dp, s).size();
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 512);
}
BENCHMARK(BM_PipelinedSimulationSharded)->Unit(benchmark::kMillisecond);
