/**
 * @file
 * End-to-end traversal bench: the RT-unit wrapper driving the pipelined
 * datapath over procedural scenes (the workload class that motivates
 * the paper's Fig. 2 / Fig. 3 structure), now run through the sharded
 * batch simulation engine. Reports datapath beats per ray, utilization,
 * sensitivity to ray-buffer size and node-fetch latency, and host-side
 * thread scaling of the engine.
 */
#include <cstdio>

#include <random>

#include "bvh/scene.hh"
#include "sim/engine.hh"

using namespace rayflex;
using namespace rayflex::bvh;
using namespace rayflex::core;

namespace
{

std::vector<Ray>
cameraRays(const Bvh4 &bvh, unsigned n_side)
{
    Camera cam;
    Vec3 c = bvh.root_bounds.centre();
    Vec3 ext = bvh.root_bounds.hi - bvh.root_bounds.lo;
    cam.look_at = c;
    cam.eye = c + Vec3{0.4f * ext.x, 0.3f * ext.y, 1.4f * ext.z};
    cam.width = n_side;
    cam.height = n_side;
    std::vector<Ray> rays;
    for (unsigned y = 0; y < n_side; ++y)
        for (unsigned x = 0; x < n_side; ++x)
            rays.push_back(cam.primaryRay(x, y, 1000.0f));
    return rays;
}

void
runScene(const char *name, std::vector<SceneTriangle> tris)
{
    Bvh4 bvh = buildBvh4(std::move(tris));
    std::vector<Ray> rays = cameraRays(bvh, 24);

    // One batch per scene: the engine reproduces the unsharded
    // single-unit run exactly, so the per-ray cycle numbers stay
    // comparable with the seed's. The thread-scaling section below is
    // where sharding across cores is measured.
    sim::EngineConfig cfg;
    cfg.batch_size = 0;
    sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
    const RtUnitStats &st = rep.unit;

    size_t hits = 0;
    for (const auto &r : rep.hits)
        hits += r.hit ? 1 : 0;

    printf("%-14s %8zu %7zu %6.1f%% %10.1f %10.1f %8.1f%% %9.1f\n", name,
           bvh.tris.size(), rays.size(),
           100.0 * double(hits) / double(rays.size()),
           double(st.datapath_beats) / double(rays.size()),
           double(st.cycles) / double(rays.size()),
           100.0 * st.utilization(),
           1455e6 / (double(st.cycles) / double(rays.size())) / 1e6);
}

} // namespace

int
main()
{
    printf("=== RT-unit traversal over procedural scenes ===\n");
    printf("(engine, one RT unit per scene: one datapath, 32-entry ray "
           "buffer, 20-cycle node fetch)\n\n");
    printf("%-14s %8s %7s %7s %10s %10s %9s %9s\n", "scene", "tris",
           "rays", "hit%", "beats/ray", "cyc/ray", "util", "Mray/s*");
    runScene("sphere", makeSphere({0, 0, 0}, 3.0f, 24, 32));
    runScene("torus", makeTorus({0, 0, 0}, 3.0f, 1.0f, 32, 24));
    runScene("terrain", makeTerrain(30.0f, 48, 0.6f, 11));
    runScene("soup-10k", makeSoup(10000, 20.0f, 0.8f, 5));
    printf("(* single datapath at the Quadro RTX 6000 clock of "
           "1455 MHz)\n\n");

    // Sensitivity: ray-buffer entries x memory latency on one scene.
    // One worker, one batch: exactly the unsharded RT unit.
    printf("=== Utilization sensitivity (terrain scene) ===\n");
    Bvh4 bvh = buildBvh4(makeTerrain(30.0f, 48, 0.6f, 11));
    std::vector<Ray> rays = cameraRays(bvh, 20);
    printf("%-10s %-10s %12s %12s\n", "entries", "mem-lat",
           "cycles/ray", "utilization");
    for (unsigned entries : {1u, 4u, 16u, 64u}) {
        for (unsigned lat : {5u, 20u, 80u}) {
            sim::EngineConfig cfg;
            cfg.threads = 1;
            cfg.batch_size = 0; // whole workload in one batch
            cfg.rt.ray_buffer_entries = entries;
            cfg.rt.mem_latency = lat;
            sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
            printf("%-10u %-10u %12.1f %11.1f%%\n", entries, lat,
                   double(rep.unit.cycles) / double(rays.size()),
                   100.0 * rep.unit.utilization());
        }
    }

    // Host-side scaling: the same workload at increasing worker counts.
    printf("\n=== Engine thread scaling (terrain scene, %zu rays) ===\n",
           rays.size());
    printf("%-8s %10s %12s %9s\n", "threads", "wall ms", "rays/s",
           "speedup");
    double base = 0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        sim::EngineConfig cfg;
        cfg.threads = threads;
        cfg.batch_size = 50;
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
        if (threads == 1)
            base = rep.elapsed_seconds;
        printf("%-8u %10.1f %12.0f %8.2fx\n", rep.threads_used,
               1e3 * rep.elapsed_seconds, rep.raysPerSecond(),
               rep.elapsed_seconds > 0
                   ? base / rep.elapsed_seconds
                   : 0.0);
    }
    printf("(speedup tracks the physical core count; results are "
           "bit-identical at every row)\n");

    printf("\nTakeaway: a single 11-stage II=1 datapath needs tens of "
           "rays in flight to stay\nbusy under realistic node-fetch "
           "latency - consistent with the paper's estimate\nthat a full "
           "RT unit wraps ~7.6 RayFlex-equivalents with warp-level "
           "parallelism.\n");
    return 0;
}
