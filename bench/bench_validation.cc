/**
 * @file
 * Reproduces the validation section (Section IV):
 *
 *  - IV-A: the twenty directed functional test cases plus a large
 *    random campaign, hardware vs golden;
 *  - III-D: measured pipeline latency (11 cycles) and initiation
 *    interval (1 op/cycle);
 *  - IV-B: the Quadro RTX 6000 back-of-envelope (125 peak ops/cycle,
 *    ~955 ops/cycle per RT unit, ~7.6 RayFlex-equivalents per unit) and
 *    the comparison against Vulkan-Sim's 2-cycle-latency assumption.
 */
#include <cstdio>

#include "core/datapath.hh"
#include "core/golden.hh"
#include "core/workloads.hh"
#include "pipeline/drivers.hh"
#include "synth/netlist.hh"

using namespace rayflex::core;
using rayflex::fp::fromBits;

namespace
{

int g_pass = 0, g_fail = 0;

void
check(const char *name, bool ok)
{
    printf("  [%s] %s\n", ok ? "PASS" : "FAIL", name);
    (ok ? g_pass : g_fail)++;
}

DatapathOutput
evalOne(const DatapathInput &in)
{
    DistanceAccumulators acc;
    return functionalEval(in, acc);
}

bool
boxCase(const Ray &ray, const Box &box, bool expect_hit)
{
    DatapathInput in;
    in.op = Opcode::RayBox;
    in.ray = ray;
    in.boxes = {box, makeBox(900, 900, 900, 901, 901, 901),
                makeBox(900, 900, 900, 901, 901, 901),
                makeBox(900, 900, 900, 901, 901, 901)};
    DatapathOutput out = evalOne(in);
    BoxResult g = golden::rayBox4(ray, in.boxes);
    return out.box.hit[0] == expect_hit && g.hit[0] == expect_hit;
}

bool
triCase(const Ray &ray, const Triangle &tri, bool expect_hit)
{
    DatapathInput in;
    in.op = Opcode::RayTriangle;
    in.ray = ray;
    in.tri = tri;
    DatapathOutput out = evalOne(in);
    TriangleResult g = golden::rayTriangle(ray, tri);
    return out.tri.hit == expect_hit && g.hit == expect_hit;
}

} // namespace

int
main()
{
    printf("=== Section IV-A: the twenty directed test cases ===\n");
    const Box box = makeBox(0, 0, 0, 2, 2, 2);
    printf("ray-box (9 cases):\n");
    check("1 origin inside box (hit)",
          boxCase(makeRay(1, 1, 1, 0.3f, 0.4f, 0.5f, 0, 100), box, true));
    check("2 outside pointing away (miss)",
          boxCase(makeRay(5, 5, 5, 1, 1, 1, 0, 100), box, false));
    check("3 from surface pointing away, coplanar (miss)",
          boxCase(makeRay(0, 1, 1, 0, 1, 0, 0, 100), box, false));
    check("4 from corner pointing away, coplanar (miss)",
          boxCase(makeRay(2, 2, 2, 0, 1, 0, 0, 100), box, false));
    check("5 from corner along edge (miss)",
          boxCase(makeRay(0, 0, 0, 1, 0, 0, 0, 100), box, false));
    check("6 outside pointing towards (hit)",
          boxCase(makeRay(-2, 1, 1, 1, 0.01f, 0.02f, 0, 100), box, true));
    {
        DatapathInput in;
        in.op = Opcode::RayBox;
        in.ray = makeRay(-4, 1, 1, 1, 0, 0.001f, 0, 100);
        in.boxes = {makeBox(2, 0, 0, 4, 2, 2), makeBox(-2, 0, 0, 0, 2, 2),
                    makeBox(900, 900, 900, 901, 901, 901),
                    makeBox(900, 900, 900, 901, 901, 901)};
        DatapathOutput out = evalOne(in);
        check("7 hits two boxes in a row, sorted",
              out.box.hit[0] && out.box.hit[1] && out.box.order[0] == 1 &&
                  out.box.order[1] == 0);
    }
    {
        DatapathInput in;
        in.op = Opcode::RayBox;
        in.ray = makeRay(-2, 1, 1, 1, 0.001f, 0.001f, 0, 100);
        in.boxes = {makeBox(4, 0, 0, 6, 2, 2), makeBox(0, 0, 0, 2, 2, 2),
                    makeBox(8, 0, 0, 10, 2, 2),
                    makeBox(0, 50, 0, 2, 52, 2)};
        DatapathOutput out = evalOne(in);
        check("8 hits three in a row, misses fourth",
              out.box.hit[0] && out.box.hit[1] && out.box.hit[2] &&
                  !out.box.hit[3] && out.box.order[0] == 1 &&
                  out.box.order[1] == 0 && out.box.order[2] == 2 &&
                  out.box.order[3] == 3);
    }
    check("9 overlapping an edge from outside (miss)",
          boxCase(makeRay(-2, 0, 0, 1, 0, 0, 0, 100), box, false));

    printf("ray-triangle (11 cases):\n");
    const Triangle tri = makeTriangle(0, 0, 5, 0, 2, 5, 2, 0, 5);
    check("1 hits the back (miss)",
          triCase(makeRay(0.5f, 0.5f, 10, 0, 0, -1, 0, 100), tri, false));
    check("2 hits the front (hit)",
          triCase(makeRay(0.5f, 0.5f, 0, 0, 0, 1, 0, 100), tri, true));
    check("3 hits an edge from the front (hit)",
          triCase(makeRay(1.0f, 0.0f, 0, 0, 0, 1, 0, 100), tri, true));
    check("4 hits a vertex from the front (hit)",
          triCase(makeRay(0.0f, 0.0f, 0, 0, 0, 1, 0, 100), tri, true));
    check("5 misses the triangle (miss)",
          triCase(makeRay(5, 5, 0, 0, 0, 1, 0, 100), tri, false));
    check("6 parallel to normal, no intersection (miss)",
          triCase(makeRay(-3, -3, 0, 0, 0, 1, 0, 100), tri, false));
    check("7 hits a far-away triangle (hit)",
          triCase(makeRay(50, 50, 0, 0, 0, 1, 0, 1e6f),
                  makeTriangle(0, 0, 5000, 0, 200, 5000, 200, 0, 5000),
                  true));
    check("8 oblique front hit (hit)",
          triCase(makeRay(-4, -3, 0, 0.9f, 0.7f, 1.0f, 0, 100), tri,
                  true));
    check("9 coplanar ray hits edge (miss)",
          triCase(makeRay(-1, 0.5f, 5, 1, 0, 0, 0, 100), tri, false));
    check("10 different dominant axis, front hit (hit)",
          triCase(makeRay(0, 0.5f, 0.5f, 1, 0, 0, 0, 100),
                  makeTriangle(5, 0, 0, 5, 0, 2, 5, 2, 0), true));
    check("11 coplanar from inside, hits edge (miss)",
          triCase(makeRay(0.5f, 0.5f, 5, 1, 0, 0, 0, 100), tri, false));

    // ----- random campaign -----
    printf("\n=== Section VI: random verification campaign ===\n");
    {
        WorkloadGen gen(20250612);
        DistanceAccumulators acc;
        uint64_t cases = 0, mismatches = 0;
        for (int i = 0; i < 100000; ++i) {
            DatapathInput in = (i & 1) ? gen.rayBoxOp(uint64_t(i))
                                       : gen.rayTriangleOp(uint64_t(i));
            DatapathOutput out = functionalEval(in, acc);
            if (in.op == Opcode::RayBox) {
                BoxResult g = golden::rayBox4(in.ray, in.boxes);
                for (int b = 0; b < 4; ++b)
                    if (out.box.hit[b] != g.hit[b] ||
                        out.box.order[b] != g.order[b])
                        ++mismatches;
            } else {
                TriangleResult g = golden::rayTriangle(in.ray, in.tri);
                if (out.tri.hit != g.hit || out.tri.t_num != g.t_num ||
                    out.tri.t_den != g.t_den)
                    ++mismatches;
            }
            ++cases;
        }
        for (int i = 0; i < 50000; ++i) {
            DatapathInput in = (i & 1) ? gen.euclideanOp(true, 0)
                                       : gen.cosineOp(true, 0);
            DatapathOutput out = functionalEval(in, acc);
            if (in.op == Opcode::Euclidean) {
                if (out.euclidean_accumulator !=
                    golden::euclideanBeat(in.vec_a, in.vec_b, in.mask))
                    ++mismatches;
            } else {
                golden::CosineBeat g =
                    golden::cosineBeat(in.vec_a, in.vec_b, in.mask);
                if (out.angular_dot_product != g.dot ||
                    out.angular_norm != g.norm)
                    ++mismatches;
            }
            ++cases;
        }
        printf("  random cases vs golden: %llu run, %llu mismatches\n",
               (unsigned long long)cases, (unsigned long long)mismatches);
        check("random campaign bit-exact", mismatches == 0);
    }

    // ----- measured pipeline timing -----
    printf("\n=== Section III-D: measured timing ===\n");
    {
        RayFlexDatapath dp(kExtendedUnified);
        rayflex::pipeline::Simulator sim;
        rayflex::pipeline::Source<DatapathInput> src("src", &dp.in());
        rayflex::pipeline::Sink<DatapathOutput> sink("sink", &dp.out());
        dp.registerWith(sim);
        sim.add(&src);
        sim.add(&sink);
        WorkloadGen gen(9);
        const int n = 1000;
        for (int i = 0; i < n; ++i)
            src.push(gen.rayBoxOp(uint64_t(i)));
        sim.runUntil([&] { return sink.count() == size_t(n); }, 10000);
        uint64_t latency = sink.arrivalCycles().front();
        uint64_t span = sink.arrivalCycles().back() -
                        sink.arrivalCycles().front();
        printf("  latency: %llu cycles (paper: 11)\n",
               (unsigned long long)latency);
        printf("  initiation interval: %.3f cycles/op (paper: 1)\n",
               double(span) / double(n - 1));
        check("latency is 11 cycles", latency == 11);
        check("II is 1 op/cycle", span == uint64_t(n - 1));
    }

    // ----- the Quadro RTX 6000 back-of-envelope -----
    printf("\n=== Section IV-B: throughput sanity check ===\n");
    {
        using namespace rayflex::synth;
        FuCounts fu = Netlist::build(kBaselineUnified).totalFus();
        unsigned rayflex_ops = fu.adders + fu.multipliers + fu.squarers +
                               fu.comparators + fu.sort_cmps;
        const double turing_tera_ops = 100e12;
        const unsigned rt_units = 72;
        const double clock_hz = 1455e6;
        double ops_per_unit_cycle =
            turing_tera_ops / rt_units / clock_hz;
        printf("  RayFlex peak ops/cycle (all FUs active): %u "
               "(paper: 125)\n",
               rayflex_ops);
        printf("  Quadro RTX 6000: 100 Tera-ops / 72 RT units / 1455 MHz"
               " = %.0f ops/cycle/unit (paper: ~955)\n",
               ops_per_unit_cycle);
        printf("  RayFlex-equivalents per RT unit: %.1f (paper: ~7.6)\n",
               ops_per_unit_cycle / rayflex_ops);
        check("peak ops/cycle == 125", rayflex_ops == 125);
        check("~7.6 RayFlex datapaths per RT unit",
              ops_per_unit_cycle / rayflex_ops > 7.0 &&
                  ops_per_unit_cycle / rayflex_ops < 8.2);
    }

    printf("\n=== Vulkan-Sim comparison (Section IV-B) ===\n");
    printf("  Vulkan-Sim assumes a 2-cycle intersection-test latency and"
           " >= 1 ray/cycle initiation;\n"
           "  RayFlex measures 11-cycle latency at the same II=1 -> the"
           " Vulkan-Sim configuration is\n"
           "  optimistic relative to a synthesizable datapath.\n");

    printf("\nvalidation summary: %d passed, %d failed\n", g_pass,
           g_fail);
    return g_fail == 0 ? 0 : 1;
}
