/**
 * @file
 * BVH node-width study (Section I claim: RayFlex models the RDNA2/3
 * 4-wide node or Mesa's 6-wide node by reconfiguration).
 *
 * Sweeps the node width from 2 to 8 and reports: (a) the per-beat
 * hardware cost from the synthesis model, (b) the traversal-level work
 * (beats and boxes tested per ray) on a real scene, and (c) the
 * resulting area-efficiency trade-off - wider nodes test more boxes
 * per beat but provision more hardware and waste more slots on sparse
 * nodes.
 */
#include <cstdio>

#include "bvh/builder.hh"
#include "bvh/scene.hh"
#include "bvh/traversal.hh"
#include "core/golden.hh"
#include "core/stages.hh"
#include "core/quadsort.hh"
#include "synth/area.hh"
#include "synth/power.hh"

using namespace rayflex::core;
using namespace rayflex::bvh;
using rayflex::fp::fromBits;

namespace
{

/** Traverse with an explicit node width: wide nodes are consumed in
 *  chunks of `w` children per beat. */
struct WidthStats
{
    uint64_t beats = 0;
    uint64_t slots_tested = 0;
    uint64_t slots_filled = 0;
};

WidthStats
traverseAtWidth(const Bvh4 &bvh, const rayflex::core::Ray &ray, unsigned w)
{
    WidthStats st;
    if (bvh.tris.empty())
        return st;
    DistanceAccumulators acc;
    std::vector<uint32_t> stack{0};
    while (!stack.empty()) {
        uint32_t idx = stack.back();
        stack.pop_back();
        const WideNode &node = bvh.nodes[idx];

        // Gather the node's children, then test them w at a time.
        std::vector<int> kids;
        for (int i = 0; i < 4; ++i)
            if (node.child[i].kind != WideNode::Kind::Empty)
                kids.push_back(i);
        for (size_t base = 0; base < kids.size(); base += w) {
            DatapathInput in;
            in.op = Opcode::RayBox;
            in.ray = ray;
            for (unsigned b = 0; b < w; ++b) {
                if (base + b < kids.size()) {
                    in.boxes[b] =
                        node.child[kids[base + b]].bounds.toIoBox();
                    ++st.slots_filled;
                } else {
                    in.boxes[b] = emptySlotBox();
                }
            }
            ++st.beats;
            st.slots_tested += w;
            DatapathOutput out = functionalEval(in, acc, w);
            for (unsigned b = 0; b < w && base + b < kids.size(); ++b) {
                if (!out.box.hit[b])
                    continue;
                const auto &c = node.child[kids[base + b]];
                if (c.kind == WideNode::Kind::Internal)
                    stack.push_back(c.index);
                // Leaves: triangle beats are width-independent; skip.
            }
        }
    }
    return st;
}

} // namespace

int
main()
{
    using rayflex::synth::AreaModel;
    using rayflex::synth::Netlist;
    using rayflex::synth::PowerModel;

    printf("=== BVH node width study (4-wide RDNA3 vs 6-wide Mesa vs "
           "others) ===\n\n");

    printf("--- hardware cost per configuration (baseline-unified, "
           "1 GHz) ---\n");
    printf("%-7s %8s %8s %7s %9s %12s %11s\n", "width", "adders",
           "mults", "cmps", "sort-CEs", "area(um^2)", "P(box,mW)");
    for (unsigned w : {2u, 4u, 6u, 8u}) {
        DatapathConfig cfg = kBaselineUnified;
        cfg.box_width = w;
        Netlist n = Netlist::build(cfg);
        auto fu = n.totalFus();
        double area = AreaModel().estimate(n, 1.0).total();
        double p = PowerModel()
                       .estimateFullThroughput(n, Opcode::RayBox, 1.0)
                       .total() *
                   1e3;
        printf("%-7u %8u %8u %7u %9u %12.0f %11.1f\n", w, fu.adders,
               fu.multipliers, fu.comparators, fu.sort_cmps, area, p);
    }

    printf("\n--- traversal work on a terrain scene (same 4-wide tree, "
           "consumed w slots/beat) ---\n");
    Bvh4 bvh = buildBvh4(makeTerrain(30.0f, 48, 0.6f, 11));
    Camera cam;
    cam.look_at = bvh.root_bounds.centre();
    cam.eye = bvh.root_bounds.centre() +
              Vec3{10.0f, 14.0f, 22.0f};
    cam.width = cam.height = 24;

    printf("%-7s %12s %14s %13s\n", "width", "beats/ray", "slot util",
           "beats*area");
    for (unsigned w : {2u, 4u, 6u, 8u}) {
        WidthStats total;
        for (unsigned y = 0; y < cam.height; ++y) {
            for (unsigned x = 0; x < cam.width; ++x) {
                auto st = traverseAtWidth(
                    bvh, cam.primaryRay(x, y, 1000.0f), w);
                total.beats += st.beats;
                total.slots_tested += st.slots_tested;
                total.slots_filled += st.slots_filled;
            }
        }
        DatapathConfig cfg = kBaselineUnified;
        cfg.box_width = w;
        double area =
            AreaModel().estimate(Netlist::build(cfg), 1.0).total();
        double rays = double(cam.width) * cam.height;
        printf("%-7u %12.2f %13.1f%% %13.2f\n", w,
               double(total.beats) / rays,
               100.0 * double(total.slots_filled) /
                   double(total.slots_tested),
               double(total.beats) / rays * area / 1e5);
    }
    printf("\n(beats*area: relative cost of one ray, lower is better -"
           " the sweet spot\n depends on tree arity vs provisioned "
           "width, which is the design question\n the paper's "
           "IO/datapath decoupling lets researchers explore.)\n");
    return 0;
}
