/**
 * @file
 * Design-space exploration: the researcher-facing workflow the paper
 * positions RayFlex for (Section I). Sweeps the full configuration
 * space - functionality x FU sharing x clock target - and prints
 * area/power/throughput Pareto data for a user-supplied operation mix,
 * plus the per-stage hardware inventory of a chosen configuration.
 *
 * Usage: design_space [box%] [tri%] [euclid%] [cosine%]
 *   (operation mix in percent, default 60 30 7 3)
 */
#include <cstdio>
#include <cstdlib>

#include "core/datapath.hh"
#include "core/workloads.hh"
#include "synth/area.hh"
#include "synth/power.hh"

using namespace rayflex::core;
using namespace rayflex::synth;

int
main(int argc, char **argv)
{
    double mix[4] = {60, 30, 7, 3};
    for (int i = 0; i < 4 && i + 1 < argc; ++i)
        mix[i] = atof(argv[i + 1]);
    double total = mix[0] + mix[1] + mix[2] + mix[3];
    for (double &m : mix)
        m /= total;

    printf("RayFlex design-space exploration\n");
    printf("================================\n");
    printf("operation mix: %.0f%% box, %.0f%% tri, %.0f%% euclidean, "
           "%.0f%% cosine\n\n",
           mix[0] * 100, mix[1] * 100, mix[2] * 100, mix[3] * 100);

    const bool needs_extended = mix[2] > 0 || mix[3] > 0;
    AreaModel am;
    PowerModel pm;

    printf("%-20s %6s %11s %10s %11s %13s\n", "config", "MHz",
           "area(um^2)", "power(mW)", "Gops/s", "Gops/s/mm^2");
    for (const auto &cfg : {kBaselineUnified, kBaselineDisjoint,
                            kExtendedUnified, kExtendedDisjoint}) {
        if (needs_extended && !cfg.extended)
            continue;
        Netlist n = Netlist::build(cfg);
        for (double mhz : {500.0, 1000.0, 1500.0}) {
            double ghz = mhz / 1000.0;
            AreaReport a = am.estimate(n, ghz);

            // Weighted power for the mix at full throughput.
            ActivityTrace trace;
            trace.cycles = 1000;
            for (int o = 0; o < 4; ++o)
                trace.beats[size_t(o)] =
                    uint64_t(mix[o] * 1000.0 + 0.5);
            double watts = pm.estimate(n, trace, ghz).total();

            // Useful arithmetic ops per second for this mix: per-beat
            // FU activations times clock.
            double ops_per_beat = 0;
            for (int o = 0; o < 4; ++o) {
                FuCounts u = n.usedBy(static_cast<Opcode>(o));
                ops_per_beat += mix[o] *
                                (u.adders + u.multipliers + u.squarers +
                                 u.comparators + u.sort_cmps);
            }
            double gops = ops_per_beat * ghz;
            printf("%-20s %6.0f %11.0f %10.1f %11.1f %13.1f\n",
                   cfg.name().c_str(), mhz, a.total(), watts * 1e3, gops,
                   gops / (a.total() * 1e-6));
        }
    }

    // Per-stage inventory for the richest configuration.
    printf("\nPer-stage inventory, extended-disjoint "
           "(Fig. 4c + Fig. 6c):\n");
    printf("%-7s %7s %7s %9s %6s %6s %6s %10s\n", "stage", "adders",
           "mults", "squarers", "cmps", "sort", "conv", "reg bits");
    Netlist n = Netlist::build(kExtendedDisjoint);
    for (unsigned s = 0; s < kNumStages; ++s) {
        const auto &st = n.stages[s];
        printf("%-7u %7u %7u %9u %6u %6u %6u %10u\n", s + 1,
               st.provisioned.adders, st.provisioned.multipliers,
               st.provisioned.squarers, st.provisioned.comparators,
               st.provisioned.sort_cmps, st.provisioned.converters,
               st.reg_bits * Netlist::kSkidDepth + st.state_bits);
    }
    printf("\ntotal sequential bits: %llu (skid buffers register every "
           "payload twice)\n",
           (unsigned long long)n.totalSequentialBits());
    return 0;
}
