/**
 * @file
 * k-nearest-neighbor search through the cycle-accurate RT-unit stack.
 *
 * The data-analytics workload that motivates the paper's Section V-A
 * case study: instead of reformulating nearest-neighbor search as ray
 * tracing (the RTNN / Arkade line of work), the *extended* datapath
 * computes exact Euclidean and cosine distances of arbitrary dimension
 * directly, streaming candidate vectors through the pipeline in
 * 16-wide (Euclidean) or 8-wide (cosine) beats with multi-beat
 * accumulation.
 *
 * This example builds a bvh::KnnIndex over a Gaussian-mixture point
 * cloud and answers k-NN queries three ways — the functional
 * best-first traversal, the cycle-accurate RT unit driving the
 * pipelined datapath (sim::Engine::runKnn), and the brute-force
 * single-precision golden scan (core::golden::knnScan) — verifying
 * that all three agree bit-for-bit on both metrics, then reports
 * cycles/query and the traversal's pruning effectiveness.
 *
 * Usage: knn_search [n_points] [dims] [k] [n_queries]
 */
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bvh/knn.hh"
#include "bvh/scene.hh"
#include "core/golden.hh"
#include "sim/engine.hh"

using namespace rayflex;

namespace
{

/** Golden neighbor lists for every query: the brute-force
 *  single-precision reference the engine is pinned against. */
std::vector<bvh::KnnResult>
goldenResults(const std::vector<bvh::DataPoint> &cloud,
              const std::vector<bvh::KnnQuery> &queries, unsigned dims)
{
    std::vector<core::golden::KnnCandidate> cands;
    cands.reserve(cloud.size());
    for (const bvh::DataPoint &p : cloud)
        cands.push_back({p.coords.data(), p.id});

    std::vector<bvh::KnnResult> out;
    out.reserve(queries.size());
    for (const bvh::KnnQuery &q : queries)
        out.push_back({core::golden::knnScan(
            q.point.data(), dims, cands, q.k,
            q.metric == bvh::KnnMetric::Cosine)});
    return out;
}

size_t
countMatches(const std::vector<bvh::KnnResult> &a,
             const std::vector<bvh::KnnResult> &b)
{
    size_t n = 0;
    for (size_t i = 0; i < a.size(); ++i)
        n += a[i] == b[i] ? 1 : 0;
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t n_points = argc > 1 ? size_t(atoll(argv[1])) : 2000;
    const unsigned dims = argc > 2 ? unsigned(atoi(argv[2])) : 48;
    const uint32_t k = argc > 3 ? uint32_t(atoll(argv[3])) : 5;
    const size_t n_queries = argc > 4 ? size_t(atoll(argv[4])) : 64;

    printf("k-NN on the extended RayFlex datapath\n");
    printf("=====================================\n");
    printf("%zu points, %u dimensions, k=%u, %zu queries\n\n", n_points,
           dims, k, n_queries);

    const std::vector<bvh::DataPoint> cloud =
        bvh::makePointCloud(n_points, dims, 12, 42);
    const std::vector<bvh::DataPoint> query_pts =
        bvh::makePointCloud(n_queries, dims, 12, 43);

    const bvh::KnnIndex index = bvh::buildKnnIndex(cloud);

    for (const bvh::KnnMetric metric :
         {bvh::KnnMetric::Euclidean, bvh::KnnMetric::Cosine}) {
        const bool cosine = metric == bvh::KnnMetric::Cosine;
        std::vector<bvh::KnnQuery> queries;
        queries.reserve(n_queries);
        for (const bvh::DataPoint &q : query_pts)
            queries.push_back({q.coords, k, metric});

        const std::vector<bvh::KnnResult> golden =
            goldenResults(cloud, queries, dims);

        // Functional best-first traversal.
        sim::EngineConfig fcfg;
        fcfg.model = sim::ExecutionModel::Functional;
        const sim::Engine functional(fcfg);
        const sim::KnnReport frep = functional.runKnn(index, queries);

        // Cycle-accurate RT unit over the extended pipelined datapath.
        sim::EngineConfig ccfg;
        ccfg.model = sim::ExecutionModel::CycleAccurate;
        ccfg.dp = core::kExtendedUnified;
        const sim::Engine cycle(ccfg);
        const sim::KnnReport crep = cycle.runKnn(index, queries);

        printf("%s k-NN\n", cosine ? "Cosine" : "Euclidean");
        printf("  functional vs golden scan: %zu/%zu exact\n",
               countMatches(frep.results, golden), n_queries);
        printf("  cycle-accurate vs golden scan: %zu/%zu exact\n",
               countMatches(crep.results, golden), n_queries);
        printf("  %.0f cycles/query; at 1 GHz: %.1f kqueries/s\n",
               double(crep.unit.cycles) / double(n_queries),
               1e6 * double(n_queries) / double(crep.unit.cycles));
        const bvh::KnnStats &ks = frep.knn;
        printf("  traversal: %llu/%zu candidates scored, "
               "%llu subtrees pruned, frontier peak %llu\n\n",
               (unsigned long long)ks.candidates / n_queries, n_points,
               (unsigned long long)ks.pruned / n_queries,
               (unsigned long long)ks.frontier_peak);
    }

    printf("All three paths rank by single-precision (score, id): the\n"
           "pipelined datapath, the functional traversal and the golden\n"
           "scan agree bit-for-bit, ties included.\n");
    return 0;
}
