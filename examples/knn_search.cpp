/**
 * @file
 * k-nearest-neighbor search on the extended RT-unit datapath.
 *
 * The data-analytics workload that motivates the paper's Section V-A
 * case study: instead of reformulating nearest-neighbor search as ray
 * tracing (the RTNN / Arkade line of work), the *extended* datapath
 * computes exact Euclidean and cosine distances of arbitrary dimension
 * directly, streaming candidate vectors through the pipeline in
 * 16-wide (Euclidean) or 8-wide (cosine) beats with multi-beat
 * accumulation.
 *
 * This example runs k-NN queries over a Gaussian-mixture point cloud
 * with both metrics, verifies the results against a double-precision
 * scan, and reports beats/candidate and query throughput.
 *
 * Usage: knn_search [n_points] [dims] [k] [n_queries]
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <queue>
#include <vector>

#include "bvh/scene.hh"
#include "core/datapath.hh"
#include "pipeline/drivers.hh"

using namespace rayflex::core;
using rayflex::bvh::DataPoint;
using rayflex::fp::fromBits;
using rayflex::fp::toBits;

namespace
{

/** Beats of one Euclidean job (query vs candidate). */
void
pushEuclideanJob(rayflex::pipeline::Source<DatapathInput> &src,
                 const std::vector<float> &q, const std::vector<float> &c,
                 uint64_t tag)
{
    for (size_t base = 0; base < q.size(); base += kEuclideanWidth) {
        DatapathInput in;
        in.op = Opcode::Euclidean;
        in.tag = tag;
        uint16_t mask = 0;
        for (size_t i = 0; i < kEuclideanWidth && base + i < q.size();
             ++i) {
            in.vec_a[i] = toBits(q[base + i]);
            in.vec_b[i] = toBits(c[base + i]);
            mask |= uint16_t(1u << i);
        }
        in.mask = mask;
        in.reset_accumulator = base + kEuclideanWidth >= q.size();
        src.push(in);
    }
}

/** Beats of one cosine job (8 dims per beat). */
void
pushCosineJob(rayflex::pipeline::Source<DatapathInput> &src,
              const std::vector<float> &q, const std::vector<float> &c,
              uint64_t tag)
{
    for (size_t base = 0; base < q.size(); base += kCosineWidth) {
        DatapathInput in;
        in.op = Opcode::Cosine;
        in.tag = tag;
        uint16_t mask = 0;
        for (size_t i = 0; i < kCosineWidth && base + i < q.size(); ++i) {
            in.vec_a[i] = toBits(q[base + i]);
            in.vec_b[i] = toBits(c[base + i]);
            mask |= uint16_t(1u << i);
        }
        in.mask = mask;
        in.reset_accumulator = base + kCosineWidth >= q.size();
        src.push(in);
    }
}

/** Keep the k smallest (score, id) pairs. */
struct TopK
{
    size_t k;
    std::priority_queue<std::pair<double, uint32_t>> heap;

    void
    offer(double score, uint32_t id)
    {
        if (heap.size() < k) {
            heap.emplace(score, id);
        } else if (score < heap.top().first) {
            heap.pop();
            heap.emplace(score, id);
        }
    }

    std::vector<uint32_t>
    ids()
    {
        std::vector<std::pair<double, uint32_t>> v;
        while (!heap.empty()) {
            v.push_back(heap.top());
            heap.pop();
        }
        std::sort(v.begin(), v.end());
        std::vector<uint32_t> out;
        for (auto &p : v)
            out.push_back(p.second);
        return out;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const size_t n_points = argc > 1 ? size_t(atoll(argv[1])) : 2000;
    const unsigned dims = argc > 2 ? unsigned(atoi(argv[2])) : 48;
    const size_t k = argc > 3 ? size_t(atoll(argv[3])) : 5;
    const size_t n_queries = argc > 4 ? size_t(atoll(argv[4])) : 8;

    printf("k-NN on the extended RayFlex datapath\n");
    printf("=====================================\n");
    printf("%zu points, %u dimensions, k=%zu, %zu queries\n\n", n_points,
           dims, k, n_queries);

    auto cloud = rayflex::bvh::makePointCloud(n_points, dims, 12, 42);
    auto queries = rayflex::bvh::makePointCloud(n_queries, dims, 12, 43);

    // One pipelined extended datapath instance serves all queries.
    RayFlexDatapath dp(kExtendedUnified);
    rayflex::pipeline::Simulator sim;
    rayflex::pipeline::Source<DatapathInput> src("src", &dp.in());
    rayflex::pipeline::Sink<DatapathOutput> sink("sink", &dp.out());
    dp.registerWith(sim);
    sim.add(&src);
    sim.add(&sink);

    // ---- Euclidean k-NN ----
    size_t euclid_matches = 0;
    uint64_t euclid_cycles = 0;
    for (size_t qi = 0; qi < n_queries; ++qi) {
        const auto &q = queries[qi].coords;
        size_t before = sink.count();
        uint64_t c0 = sim.cycle();
        for (const auto &p : cloud)
            pushEuclideanJob(src, q, p.coords, p.id);
        size_t jobs_expected = cloud.size();
        size_t beats_per_job = (dims + kEuclideanWidth - 1) /
                               kEuclideanWidth;
        size_t expect = before + jobs_expected * beats_per_job;
        while (sink.count() < expect)
            sim.tick();
        euclid_cycles += sim.cycle() - c0;

        TopK top{k, {}};
        for (size_t i = before; i < sink.count(); ++i) {
            const DatapathOutput &out = sink.received()[i];
            if (!out.euclidean_reset)
                continue;
            top.offer(double(fromBits(out.euclidean_accumulator)),
                      uint32_t(out.tag));
        }
        auto hw_ids = top.ids();

        // Double-precision reference.
        TopK ref{k, {}};
        for (const auto &p : cloud) {
            double s = 0;
            for (unsigned d = 0; d < dims; ++d) {
                double diff = double(q[d]) - double(p.coords[d]);
                s += diff * diff;
            }
            ref.offer(s, p.id);
        }
        auto ref_ids = ref.ids();
        if (hw_ids == ref_ids)
            ++euclid_matches;
    }
    printf("Euclidean k-NN: %zu/%zu queries match the double-precision "
           "reference exactly\n",
           euclid_matches, n_queries);
    printf("  %.0f cycles/query (%zu candidates x %zu beats); at 1 GHz: "
           "%.1f kqueries/s\n\n",
           double(euclid_cycles) / double(n_queries), n_points,
           (dims + kEuclideanWidth - 1) / kEuclideanWidth,
           1e9 / (double(euclid_cycles) / double(n_queries)) / 1e3);

    // ---- Cosine k-NN ----
    // Candidate with the smallest angular distance: maximize
    // dot / (|q| |c|); the datapath supplies dot and |c|^2, the query
    // norm is a per-query constant computed on the GPU core.
    size_t cos_matches = 0;
    for (size_t qi = 0; qi < n_queries; ++qi) {
        const auto &q = queries[qi].coords;
        size_t before = sink.count();
        for (const auto &p : cloud)
            pushCosineJob(src, q, p.coords, p.id);
        size_t beats_per_job = (dims + kCosineWidth - 1) / kCosineWidth;
        size_t expect = before + cloud.size() * beats_per_job;
        while (sink.count() < expect)
            sim.tick();

        TopK top{k, {}};
        for (size_t i = before; i < sink.count(); ++i) {
            const DatapathOutput &out = sink.received()[i];
            if (!out.angular_reset)
                continue;
            double dot = double(fromBits(out.angular_dot_product));
            double norm = double(fromBits(out.angular_norm));
            // Angular distance score: 1 - cos similarity (query norm
            // cancels in the ranking as a positive constant).
            double score = norm > 0 ? 1.0 - dot / std::sqrt(norm) : 2.0;
            top.offer(score, uint32_t(out.tag));
        }
        auto hw_ids = top.ids();

        TopK ref{k, {}};
        for (const auto &p : cloud) {
            double dot = 0, norm = 0;
            for (unsigned d = 0; d < dims; ++d) {
                dot += double(q[d]) * double(p.coords[d]);
                norm += double(p.coords[d]) * double(p.coords[d]);
            }
            double score = norm > 0 ? 1.0 - dot / std::sqrt(norm) : 2.0;
            ref.offer(score, p.id);
        }
        if (hw_ids == ref.ids())
            ++cos_matches;
    }
    printf("Cosine k-NN: %zu/%zu queries match the double-precision "
           "reference exactly\n",
           cos_matches, n_queries);

    printf("\nNote: single-precision ties can legitimately reorder "
           "near-equal neighbours;\nlarge clouds may show occasional "
           "rank swaps against the double reference.\n");
    return 0;
}
