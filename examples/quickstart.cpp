/**
 * @file
 * Quickstart: drive the RayFlex datapath directly through its public
 * API.
 *
 * Shows the three things every user needs: (1) building IO beats (rays
 * carry the precomputed inverse direction and watertight shear
 * constants, exactly like the RDNA3-style interface in the paper),
 * (2) single-shot functional evaluation, and (3) the cycle-accurate
 * elastic pipeline with its 11-cycle latency and 1 op/cycle throughput.
 */
#include <cstdio>

#include "core/datapath.hh"
#include "core/workloads.hh"
#include "pipeline/drivers.hh"

using namespace rayflex::core;
using rayflex::fp::fromBits;

int
main()
{
    printf("RayFlex quickstart\n==================\n\n");

    // --- 1. Build an input beat: one ray vs four boxes ---------------
    // makeRay performs the GPU-core-side precompute: inverse direction,
    // axis permutation k, and shear constants S (Section III-B).
    Ray ray = makeRay(/*origin*/ -5, 1, 1, /*direction*/ 1, 0.05f, 0.02f,
                      /*extent*/ 0, 100);

    DatapathInput beat;
    beat.op = Opcode::RayBox;
    beat.boxes[0] = makeBox(0, 0, 0, 2, 2, 2);   // on the ray's path
    beat.boxes[1] = makeBox(3, 0, 0, 5, 2, 2);   // behind box 0
    beat.boxes[2] = makeBox(0, 10, 0, 2, 12, 2); // off the path
    beat.boxes[3] = makeBox(-3, 0, 0, -1, 2, 2); // closest
    beat.ray = ray;

    // --- 2. Single-shot functional evaluation ------------------------
    DistanceAccumulators acc;
    DatapathOutput out = functionalEval(beat, acc);

    printf("ray-box: 4 children tested in one beat, sorted by entry "
           "distance:\n");
    for (int i = 0; i < 4; ++i) {
        uint8_t slot = out.box.order[i];
        printf("  position %d -> child %u  %s  t=%g\n", i, slot,
               out.box.hit[slot] ? "HIT " : "miss",
               fromBits(out.box.sorted_dist[i]));
    }

    // --- 3. A triangle beat ------------------------------------------
    DatapathInput tri_beat;
    tri_beat.op = Opcode::RayTriangle;
    tri_beat.ray = makeRay(0.5f, 0.5f, -3, 0, 0, 1, 0, 100);
    tri_beat.tri = makeTriangle(0, 0, 5, 0, 2, 5, 2, 0, 5);
    DatapathOutput tri_out = functionalEval(tri_beat, acc);
    printf("\nray-triangle: %s", tri_out.tri.hit ? "HIT" : "miss");
    if (tri_out.tri.hit) {
        // The datapath returns distance as numerator/denominator; the
        // division belongs to the GPU core (RayFlex has no dividers).
        float t = fromBits(tri_out.tri.t_num) /
                  fromBits(tri_out.tri.t_den);
        printf(" at t = %g", t);
    }
    printf("\n");

    // --- 4. The cycle-accurate elastic pipeline ----------------------
    RayFlexDatapath dp(kBaselineUnified); // 11 skid-buffer stages
    rayflex::pipeline::Simulator sim;
    rayflex::pipeline::Source<DatapathInput> src("src", &dp.in());
    rayflex::pipeline::Sink<DatapathOutput> sink("sink", &dp.out());
    dp.registerWith(sim);
    sim.add(&src);
    sim.add(&sink);

    WorkloadGen gen(1);
    const int n = 100;
    for (int i = 0; i < n; ++i)
        src.push(gen.rayBoxOp(uint64_t(i)));
    while (sink.count() < size_t(n))
        sim.tick();

    printf("\npipelined: %d beats in %llu cycles "
           "(latency %llu, then one result per cycle)\n",
           n, (unsigned long long)sim.cycle(),
           (unsigned long long)sink.arrivalCycles().front());
    printf("\nDone. See examples/render_scene.cpp and "
           "examples/knn_search.cpp for full applications.\n");
    return 0;
}
