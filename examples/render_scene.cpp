/**
 * @file
 * Render a procedural scene through the RayFlex datapath.
 *
 * The graphics workload from the paper's introduction: primary rays
 * from a pinhole camera traverse a 4-wide BVH; every intersection
 * decision (ray-box and ray-triangle) is computed by the RayFlex
 * datapath model. Rendering is engine-driven and multi-pass through
 * sim::renderPasses: a closest-hit primary pass, an any-hit shadow
 * pass, and optionally an any-hit ambient-occlusion pass, all sharded
 * across the engine's persistent worker pool. Simple Lambertian
 * shading writes a PPM image, and the merged datapath-beat statistics
 * are reported - the quantity a hardware architect cares about. The
 * image is bit-identical for every value of [threads].
 *
 * Usage: render_scene [width] [height] [scene] [out.ppm] [threads] [ao]
 *                     [cache] [packet] [issue] [chip] [stream] [trace]
 *                     [cost]
 *   scene: sphere | torus | terrain | mixed (default mixed)
 *   threads: engine workers, 0 = all cores (default 0)
 *   ao: ambient-occlusion rays per hit pixel (default 0 = off)
 *   cache: 1 = after rendering, time the primary batch on the
 *          cycle-accurate engine twice - flat-latency memory vs a 4 KiB
 *          node cache - and report hit-rate, stalls and cycles/ray
 *          (default 0 = off; the image is unaffected)
 *   packet: W > 1 = after rendering, re-trace the primary batch
 *          cycle-accurately under the 4 KiB node cache twice - scalar
 *          vs W-wide ray packets (bvh/packet.hh) - and report
 *          occupancy, fetch sharing and memory requests per ray
 *          (default 0 = off; hits and image are unaffected - packets
 *          change timing and memory traffic, never hits)
 *   issue: N > 1 = after rendering, re-trace the primary batch
 *          cycle-accurately under the 4 KiB node cache and an 8-entry
 *          MSHR file at issue widths 1 and N (RtUnitConfig::
 *          issue_width), scalar and packetized (the packet width from
 *          [packet], default 8), and report cycles/ray, beats/cycle
 *          and MSHR merges/stalls - the multi-issue datapath turning
 *          packet fetch-sharing into throughput (default 0 = off;
 *          hits and image are unaffected)
 *   chip: N > 1 = after rendering, re-trace the primary batch on a
 *          multi-unit chip (sim::EngineConfig::chip): 1 vs N
 *          lock-stepped RT units behind a shared 128 KiB banked L2,
 *          and N units with equal-total-capacity PRIVATE L2s, and
 *          report rays/kcycle, L2 hit rate, cross-unit merges and
 *          bank-queue stalls - where throughput saturates on a shared
 *          memory system (default 0 = off; hits and image are
 *          unaffected)
 *   stream: 1 = after rendering, serve the primary batch through the
 *          streaming render service (sim::StreamingService): a large
 *          frame job racing four small staggered probe jobs, with
 *          cross-job batch packing on vs off (the head-of-line
 *          blocking baseline), and report the small jobs' simulated
 *          p50/p99 latency, the cross-job fetch-share rate and the
 *          Jain fairness index (default 0 = off; hits and image are
 *          unaffected)
 *   trace: PATH = after rendering, re-run the streaming workload (the
 *          frame job plus four staggered probe jobs) with event
 *          tracing on - two lock-stepped packetized RT units behind
 *          the shared banked 128 KiB L2 - and write the deterministic
 *          event trace as Chrome trace-event JSON to PATH, loadable in
 *          Perfetto / chrome://tracing (unit instant tracks, batch and
 *          job slices, counter tracks for packet occupancy, MSHR
 *          residency and per-bank L2 queue depth). A top-down
 *          issue-slot breakdown (obs::SlotAccounting) is printed
 *          alongside. Default off; hits and image are unaffected.
 *   cost: 1 = after rendering, re-trace the primary batch on the
 *          active probe configuration (the 4 KiB node cache plus
 *          whatever [packet]/[issue]/[chip] knobs were given) and
 *          price that chip through the component cost model
 *          (synth::ChipCostModel): area in mm^2, power in W energized
 *          by the run's own merged counters, and rays/kcycle/W — the
 *          paper's cost/benefit question asked of the exact
 *          configuration the other probes measure (default 0 = off;
 *          hits and image are unaffected)
 *
 * Every cycle-accurate probe row reports the same base counter set -
 * cycles/ray, memory-stall slots/ray, memory requests/ray - printed by
 * one shared helper (probeRow) so rows compare across probes, each
 * probe then adding its own specifics to the line.
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bvh/builder.hh"
#include "bvh/scene.hh"
#include "obs/perfetto.hh"
#include "sim/passes.hh"
#include "synth/chip_cost.hh"

using namespace rayflex;
using namespace rayflex::bvh;
using namespace rayflex::core;

namespace
{

std::vector<SceneTriangle>
buildScene(const std::string &name)
{
    if (name == "sphere")
        return makeSphere({0, 0, 0}, 2.5f, 32, 48);
    if (name == "torus")
        return makeTorus({0, 0, 0}, 2.5f, 0.9f, 48, 32);
    if (name == "terrain")
        return makeTerrain(12.0f, 64, 0.7f, 3);
    // mixed: a sphere resting on a terrain patch with a torus around it
    auto tris = makeTerrain(14.0f, 48, 0.35f, 3);
    uint32_t id = uint32_t(tris.size());
    auto sphere = makeSphere({0, 2.0f, 0}, 1.6f, 24, 32, id);
    tris.insert(tris.end(), sphere.begin(), sphere.end());
    id = uint32_t(tris.size());
    auto torus = makeTorus({0, 2.0f, 0}, 3.2f, 0.45f, 40, 20, id);
    tris.insert(tris.end(), torus.begin(), torus.end());
    return tris;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned width = argc > 1 ? unsigned(atoi(argv[1])) : 160;
    unsigned height = argc > 2 ? unsigned(atoi(argv[2])) : 120;
    std::string scene_name = argc > 3 ? argv[3] : "mixed";
    std::string out_path = argc > 4 ? argv[4] : "render.ppm";
    unsigned threads = argc > 5 ? unsigned(atoi(argv[5])) : 0;
    unsigned ao_samples = argc > 6 ? unsigned(atoi(argv[6])) : 0;
    bool cache_probe = argc > 7 && atoi(argv[7]) != 0;
    unsigned packet_probe = argc > 8 ? unsigned(atoi(argv[8])) : 0;
    unsigned issue_probe = argc > 9 ? unsigned(atoi(argv[9])) : 0;
    unsigned chip_probe = argc > 10 ? unsigned(atoi(argv[10])) : 0;
    bool stream_probe = argc > 11 && atoi(argv[11]) != 0;
    std::string trace_path = argc > 12 ? argv[12] : "";
    bool cost_probe = argc > 13 && atoi(argv[13]) != 0;
    if (packet_probe > kMaxPacketWidth) {
        // The RT unit clamps internally; clamp here too so the probe
        // labels match the width that actually simulates.
        printf("packet probe: width %u clamped to %u\n", packet_probe,
               kMaxPacketWidth);
        packet_probe = kMaxPacketWidth;
    }
    if (issue_probe > kMaxIssueWidth) {
        printf("issue probe: width %u clamped to %u\n", issue_probe,
               kMaxIssueWidth);
        issue_probe = kMaxIssueWidth;
    }
    if (chip_probe > sim::kMaxChipUnits) {
        printf("chip probe: %u units clamped to %u\n", chip_probe,
               sim::kMaxChipUnits);
        chip_probe = sim::kMaxChipUnits;
    }

    auto tris = buildScene(scene_name);
    Bvh4 bvh = buildBvh4(tris);
    printf("scene '%s': %zu triangles, %zu wide nodes, depth %u\n",
           scene_name.c_str(), bvh.tris.size(), bvh.nodes.size(),
           bvh.depth());

    Vec3 c = bvh.root_bounds.centre();
    Vec3 ext = bvh.root_bounds.hi - bvh.root_bounds.lo;
    Vec3 eye = c + Vec3{0.8f * ext.x, 0.7f * ext.y, 1.1f * ext.z};

    sim::PassConfig pcfg;
    pcfg.camera.eye = {eye.x, eye.y, eye.z};
    pcfg.camera.look_at = {c.x, c.y, c.z};
    pcfg.camera.width = width;
    pcfg.camera.height = height;
    pcfg.t_max = 1000.0f;
    pcfg.light_dir = {0.5f, 1.0f, 0.3f};
    pcfg.ao_samples = ao_samples;
    pcfg.ao_radius = 0.25f * length(ext);

    sim::EngineConfig ecfg;
    ecfg.threads = threads;
    ecfg.batch_size = 2048;
    ecfg.model = sim::ExecutionModel::Functional;
    sim::Engine engine(ecfg);

    // All passes (primary closest-hit, shadow any-hit, optional AO
    // fans) through the engine's persistent worker pool.
    sim::PassesReport passes = sim::renderPasses(engine, bvh, pcfg);

    // ---- resolve to the image ----
    std::vector<unsigned char> img(size_t(width) * height * 3);
    size_t shaded = 0;
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            size_t i = size_t(y) * width + x;
            const HitRecord &hit = passes.primary.hits[i];
            float r, g, b;
            if (!hit.hit) {
                // Sky gradient.
                float t = float(y) / float(height);
                r = 0.45f + 0.25f * t;
                g = 0.60f + 0.20f * t;
                b = 0.90f;
            } else {
                ++shaded;
                float shade =
                    0.15f * passes.ao_open[i] +
                    (passes.lit[i] ? 0.85f * passes.diffuse[i] : 0.0f);
                // Stable per-triangle albedo from the id.
                uint32_t h = hit.triangle_id * 2654435761u;
                r = shade * (0.4f + 0.6f * float((h >> 0) & 0xFF) / 255);
                g = shade * (0.4f + 0.6f * float((h >> 8) & 0xFF) / 255);
                b = shade * (0.4f + 0.6f * float((h >> 16) & 0xFF) / 255);
            }
            size_t idx = i * 3;
            img[idx + 0] = static_cast<unsigned char>(
                255.0f * std::min(1.0f, r));
            img[idx + 1] = static_cast<unsigned char>(
                255.0f * std::min(1.0f, g));
            img[idx + 2] = static_cast<unsigned char>(
                255.0f * std::min(1.0f, b));
        }
    }

    std::ofstream f(out_path, std::ios::binary);
    f << "P6\n" << width << " " << height << "\n255\n";
    f.write(reinterpret_cast<const char *>(img.data()),
            std::streamsize(img.size()));
    f.close();

    const TraversalStats &st = passes.traversal;
    uint64_t rays = passes.total_rays;
    double wall = passes.elapsed_seconds;
    printf("wrote %s (%ux%u), %zu/%u pixels shaded\n", out_path.c_str(),
           width, height, shaded, width * height);
    printf("engine: %u worker(s), %zu + %zu + %zu batches, %llu rays in "
           "%.3f s (%.0f rays/s host-side)\n",
           passes.primary.threads_used, passes.primary.batches,
           passes.shadow.batches, passes.ao.batches,
           (unsigned long long)rays, wall,
           wall > 0 ? double(rays) / wall : 0.0);
    printf("datapath work: %llu ray-box beats, %llu ray-triangle beats "
           "over %llu rays\n",
           (unsigned long long)st.box_ops,
           (unsigned long long)st.tri_ops, (unsigned long long)rays);
    printf("  %.1f box + %.1f triangle beats per ray; at 1 op/cycle and "
           "1455 MHz one datapath\n  sustains %.1f Mray/s on this "
           "scene\n",
           double(st.box_ops) / double(rays),
           double(st.tri_ops) / double(rays),
           1455.0 / (double(st.box_ops + st.tri_ops) / double(rays)));

    // Both probes re-trace the primary batch cycle-accurately; the
    // scalar run under the 4 KiB node cache is shared between them
    // (it is the "cached" row of the memory probe AND the scalar
    // baseline of the packet probe). Same rays, same hits - only the
    // fetch timing and memory traffic move.
    std::vector<Ray> primary;
    sim::EngineConfig ccfg;
    ccfg.threads = threads;
    ccfg.batch_size = 2048;
    ccfg.model = sim::ExecutionModel::CycleAccurate;
    sim::EngineConfig ncfg = ccfg;
    ncfg.rt.mem_backend = MemBackend::NodeCache;
    ncfg.rt.cache = kProbeCache4KiB;
    sim::EngineReport cached;
    if (cache_probe || packet_probe > 1 || issue_probe > 1 ||
        chip_probe > 1 || stream_probe || !trace_path.empty() ||
        cost_probe) {
        primary = RayGen::primaryRays(pcfg.camera, pcfg.t_max);
        cached = sim::Engine(ncfg).run(bvh, primary);
    }

    // The one shared probe-row printer: every cycle-accurate probe row
    // is "  <label>: <base counter set>" with the same three per-ray
    // numbers in the same order, so rows compare across the
    // cache/packet/issue/chip/stream probes. The row is left open
    // (no newline) for the probe to append its specifics.
    const auto probeRow = [](const std::string &label,
                             const RtUnitStats &u, double n) {
        printf("  %s: %.2f cycles/ray, %.2f mem-stall slots/ray, "
               "%.2f requests/ray",
               label.c_str(), double(u.cycles) / n,
               double(u.stall_on_memory) / n,
               double(u.mem_requests) / n);
    };

    if (cache_probe) {
        const double n = double(primary.size());
        sim::EngineReport flat =
            sim::Engine(ccfg).run(bvh, primary);
        printf("memory probe (primary batch, cycle-accurate):\n");
        probeRow("flat " + std::to_string(ccfg.rt.mem_latency) +
                     "-cycle fetch",
                 flat.unit, n);
        printf("\n");
        probeRow("4 KiB node cache", cached.unit, n);
        printf(", %.1f%% hit rate (%llu hits / %llu misses / "
               "%llu evictions)\n",
               100.0 * cached.unit.mem.hitRate(),
               (unsigned long long)cached.unit.mem.hits,
               (unsigned long long)cached.unit.mem.misses,
               (unsigned long long)cached.unit.mem.evictions);
    }

    if (packet_probe > 1) {
        // Scalar (the shared `cached` report above) vs W-wide packets,
        // both against the 4 KiB node cache and at equal
        // wavefront-slot count (one W-wide packet slot stands in for W
        // scalar entries). Same rays, same hits - packets move only
        // the timing and the memory traffic.
        sim::EngineConfig pprobe = ncfg;
        pprobe.rt.packet.width = packet_probe;
        pprobe.rt.ray_buffer_entries *= packet_probe;
        sim::EngineReport packet =
            sim::Engine(pprobe).run(bvh, primary);

        const double n = double(primary.size());
        const PacketStats &ps = packet.unit.packet;
        printf("packet probe (primary batch, cycle-accurate, 4 KiB "
               "node cache):\n");
        probeRow("scalar", cached.unit, n);
        printf("\n");
        probeRow(std::to_string(packet_probe) + "-wide packets",
                 packet.unit, n);
        printf(" (%.2f fetches/ray shared)\n",
               double(ps.fetches_shared) / n);
        printf("  %llu packets, avg occupancy %.2f/%u per node visit "
               "(%.2f at retirement), %llu divergence splits\n",
               (unsigned long long)ps.packets_formed,
               ps.avgOccupancy(), packet_probe,
               ps.avgOccupancyAtRetire(),
               (unsigned long long)ps.divergence_splits);
    }

    if (issue_probe > 1) {
        // The multi-issue probe: the primary batch at issue widths 1
        // and N, scalar entries vs packets, all under the 4 KiB node
        // cache with a bounded 8-entry MSHR file and occupancy
        // compaction at half width. Same rays, same hits - the
        // issue_width knob moves only how fast the unit can spend the
        // bandwidth that packet fetch-sharing saves.
        const unsigned pw = packet_probe > 1 ? packet_probe : 8;
        const double n = double(primary.size());
        printf("issue probe (primary batch, cycle-accurate, 4 KiB "
               "node cache, 8 MSHRs):\n");
        for (bool packets : {false, true}) {
            for (unsigned iw : {1u, issue_probe}) {
                sim::EngineConfig icfg = ncfg;
                icfg.rt.mshrs = 8;
                icfg.rt.issue_width = iw;
                if (packets) {
                    icfg.rt.packet.width = pw;
                    icfg.rt.packet.compact_below = pw / 2;
                    icfg.rt.ray_buffer_entries *= pw;
                }
                sim::EngineReport rep =
                    sim::Engine(icfg).run(bvh, primary);
                probeRow(std::string(packets ? "packet" : "scalar") +
                             " issue " + std::to_string(iw),
                         rep.unit, n);
                printf(", %.2f beats/cycle, %llu MSHR merges, %llu "
                       "stalls-full\n",
                       rep.unit.utilization(),
                       (unsigned long long)rep.unit.mshr.merges,
                       (unsigned long long)rep.unit.mshr.stalls_full);
            }
        }
    }

    if (chip_probe > 1) {
        // The chip probe: the primary batch on 1 vs N lock-stepped RT
        // units over a shared 128 KiB banked L2, and N units with
        // private L2s downsized to the same total capacity. Each unit
        // runs the packetized configuration (the packet width from
        // [packet], default 8) under the 4 KiB L1. Same rays, same
        // hits - the chip knobs move only where the memory system
        // saturates. One batch per run so a single chip serves the
        // whole frame.
        const unsigned pw = packet_probe > 1 ? packet_probe : 8;
        const double n = double(primary.size());
        sim::EngineConfig chcfg = ncfg;
        chcfg.threads = 1;
        chcfg.batch_size = 0;
        chcfg.rt.packet.width = pw;
        chcfg.rt.ray_buffer_entries *= pw;
        chcfg.rt.mshrs = 8;
        chcfg.chip.l2cfg = kProbeL2_128KiB;

        struct Row
        {
            const char *label;
            unsigned units;
            sim::L2Mode l2;
        };
        const Row rows[] = {
            {"1 unit,  shared L2", 1, sim::L2Mode::Shared},
            {"N units, shared L2", chip_probe, sim::L2Mode::Shared},
            {"N units, private L2", chip_probe, sim::L2Mode::Private},
        };
        printf("chip probe (primary batch, cycle-accurate, %u units, "
               "4 KiB L1 + 128 KiB L2):\n",
               chip_probe);
        for (const Row &row : rows) {
            sim::EngineConfig rcfg = chcfg;
            rcfg.chip.units = row.units;
            rcfg.chip.l2 = row.l2;
            if (row.l2 == sim::L2Mode::Private)
                // Iso-capacity: split the shared geometry evenly.
                rcfg.chip.l2cfg =
                    kProbeL2_128KiB.dividedAcross(row.units);
            sim::EngineReport rep = sim::Engine(rcfg).run(bvh, primary);
            const L2Stats l2 = rep.unit.l2Total();
            probeRow(row.label, rep.unit, n);
            printf(", %.1f rays/kcycle, %.1f%% L2 hit rate, %.2f "
                   "cross-unit merges/ray, %.2f bank-queue stalls/ray\n",
                   1000.0 * n / double(rep.unit.chip_cycles),
                   100.0 * l2.hitRate(),
                   double(l2.cross_unit_merges) / n,
                   double(l2.queue_stalls) / n);
        }
    }

    if (stream_probe) {
        // The streaming probe: the primary batch as a large frame job
        // (arrival 0) racing four small probe jobs - the first 64
        // primaries resubmitted at staggered arrivals - through
        // sim::StreamingService, packetized under the 4 KiB node
        // cache. Packing ON lets probe rays ride the frame's shared
        // batches; OFF is the head-of-line-blocking baseline. Same
        // rays, same hits - the service moves only batch composition
        // and the simulated per-job timeline.
        const unsigned pw = packet_probe > 1 ? packet_probe : 8;
        sim::EngineConfig stcfg = ncfg;
        stcfg.rt.packet.width = pw;
        stcfg.rt.ray_buffer_entries *= pw;
        stcfg.rt.mshrs = 8;
        const sim::Engine streng(stcfg);
        const std::vector<Ray> small(
            primary.begin(),
            primary.begin() + std::min<size_t>(64, primary.size()));
        printf("stream probe (frame + 4 probe jobs, cycle-accurate, "
               "%u-wide packets, 4 KiB node cache):\n",
               pw);
        for (bool packing : {true, false}) {
            std::vector<sim::RenderJob> jobs;
            jobs.push_back({0, 0, false, primary});
            for (unsigned c = 1; c <= 4; ++c)
                jobs.push_back({c, 400ull * c, false, small});
            sim::StreamConfig scfg;
            scfg.batch_size = 256;
            scfg.cross_job_packing = packing;
            sim::StreamReport rep = sim::StreamingService::run(
                streng, bvh, std::move(jobs), scfg);
            uint64_t p50 = 0, p99 = 0;
            std::vector<uint64_t> lat;
            for (const sim::JobReport &j : rep.jobs)
                if (j.id != 0)
                    lat.push_back(j.latency);
            std::sort(lat.begin(), lat.end());
            if (!lat.empty()) {
                p50 = lat[(lat.size() - 1) / 2];
                p99 = lat.back();
            }
            probeRow(std::string("packing ") + (packing ? "on" : "off"),
                     rep.unit, double(rep.total_rays));
            printf(", probe p50/p99 %llu/%llu cycles, %.1f%% "
                   "cross-job shared fetches, fairness %.2f\n",
                   (unsigned long long)p50, (unsigned long long)p99,
                   100.0 * rep.crossJobShareRate(), rep.fairness);
        }
    }

    if (!trace_path.empty()) {
        // The trace probe: the streaming workload (the frame job plus
        // four staggered probe jobs, as [stream]) re-run once with
        // event tracing on, on a chip of two lock-stepped packetized
        // units behind the shared banked 128 KiB L2 — the
        // configuration that exercises every event source: fetch
        // issue/fill, MSHR alloc/merge/residency, packet form/compact/
        // retire/occupancy, L2 bank enqueue/dequeue/queue-depth, batch
        // and job slices. The trace is bit-identical at every worker
        // count, like the hits.
        const unsigned pw = packet_probe > 1 ? packet_probe : 8;
        sim::EngineConfig tcfg = ncfg;
        tcfg.trace = true;
        tcfg.rt.packet.width = pw;
        tcfg.rt.ray_buffer_entries *= pw;
        tcfg.rt.mshrs = 8;
        tcfg.chip.units = 2;
        tcfg.chip.l2 = sim::L2Mode::Shared;
        tcfg.chip.l2cfg = kProbeL2_128KiB;
        const sim::Engine treng(tcfg);

        std::vector<sim::RenderJob> jobs;
        jobs.push_back({0, 0, false, primary});
        const std::vector<Ray> small(
            primary.begin(),
            primary.begin() + std::min<size_t>(64, primary.size()));
        for (unsigned cj = 1; cj <= 4; ++cj)
            jobs.push_back({cj, 400ull * cj, false, small});
        sim::StreamConfig scfg;
        scfg.batch_size = 256;
        sim::StreamReport rep = sim::StreamingService::run(
            treng, bvh, std::move(jobs), scfg);

        std::ofstream tf(trace_path);
        obs::writeChromeTrace(tf, rep.trace);
        tf.close();

        const obs::SlotAccounting &sl = rep.unit.slots;
        const double slots = double(sl.total());
        printf("trace probe (frame + 4 probe jobs, cycle-accurate, "
               "2 units, shared 128 KiB L2):\n");
        printf("  %zu events over %zu batches -> %s "
               "(chrome://tracing / ui.perfetto.dev)\n",
               rep.trace.size(), rep.batches, trace_path.c_str());
        printf("  issue-slot breakdown:");
        for (size_t s = 0; s < obs::kSlotBuckets; ++s)
            printf(" %s %.1f%%", obs::slotName(obs::Slot(s)),
                   slots > 0 ? 100.0 * double(sl.buckets[s]) / slots
                             : 0.0);
        printf("\n");
    }

    if (cost_probe) {
        // The cost probe: price the configuration the other probes
        // measure. Starts from the shared node-cache config and layers
        // on whatever packet/issue/chip knobs were given, re-traces
        // the primary batch once on that exact config, and asks the
        // component cost model what the chip it describes costs —
        // area from the config alone, power energized by this very
        // run's merged counters. Same rays, same hits.
        sim::EngineConfig kcfg = ncfg;
        if (packet_probe > 1) {
            kcfg.rt.packet.width = packet_probe;
            kcfg.rt.ray_buffer_entries *= packet_probe;
        }
        if (issue_probe > 1) {
            kcfg.rt.issue_width = issue_probe;
            kcfg.rt.mshrs = 8;
        }
        if (chip_probe > 1) {
            kcfg.threads = 1;
            kcfg.batch_size = 0;
            kcfg.chip.units = chip_probe;
            kcfg.chip.l2 = sim::L2Mode::Shared;
            kcfg.chip.l2cfg = kProbeL2_128KiB;
        }
        sim::EngineReport rep = sim::Engine(kcfg).run(bvh, primary);
        const double n = double(primary.size());
        const uint64_t wall = rep.unit.chip_cycles ? rep.unit.chip_cycles
                                                   : rep.unit.cycles;
        const double kcycles = double(wall) / 1000.0;

        const synth::ChipCostModel cost;
        const synth::ChipAreaReport area = cost.area(kcfg, 1.0);
        const synth::ChipPowerReport power =
            cost.power(kcfg, rep.unit, 1.0);

        printf("cost probe (primary batch, cycle-accurate, active "
               "config at 1 GHz):\n");
        probeRow("active config", rep.unit, n);
        printf(", %.3f mm^2, %.3f W, %.0f rays/kcycle/W\n",
               area.total_mm2(), power.total_w(),
               kcycles > 0 && power.total_w() > 0
                   ? n / kcycles / power.total_w()
                   : 0.0);
        printf("  components:");
        for (size_t i = 0; i < power.components.size(); ++i) {
            const synth::ComponentCost &c = power.components[i];
            printf("%s %s %.3f mm^2 / %.1f mW",
                   i ? "," : "", c.name.c_str(),
                   area.components[i].area_um2 * 1e-6,
                   (c.dynamic_w + c.leakage_w) * 1e3);
        }
        printf("\n");
    }
    return 0;
}
