/**
 * @file
 * Render a procedural scene through the RayFlex datapath.
 *
 * The graphics workload from the paper's introduction: primary rays
 * from a pinhole camera traverse a 4-wide BVH; every intersection
 * decision (ray-box and ray-triangle) is computed by the RayFlex
 * datapath model. Rendering is engine-driven and two-pass: all primary
 * rays are sharded across worker threads by sim::Engine, shading then
 * emits one shadow ray per hit pixel and the shadow batch goes through
 * the engine as a second pass. Simple Lambertian shading writes a PPM
 * image, and the merged datapath-beat statistics are reported - the
 * quantity a hardware architect cares about. The image is bit-identical
 * for every value of [threads].
 *
 * Usage: render_scene [width] [height] [scene] [out.ppm] [threads]
 *   scene: sphere | torus | terrain | mixed (default mixed)
 *   threads: engine workers, 0 = all cores (default 0)
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bvh/builder.hh"
#include "bvh/scene.hh"
#include "sim/engine.hh"

using namespace rayflex;
using namespace rayflex::bvh;
using namespace rayflex::core;

namespace
{

std::vector<SceneTriangle>
buildScene(const std::string &name)
{
    if (name == "sphere")
        return makeSphere({0, 0, 0}, 2.5f, 32, 48);
    if (name == "torus")
        return makeTorus({0, 0, 0}, 2.5f, 0.9f, 48, 32);
    if (name == "terrain")
        return makeTerrain(12.0f, 64, 0.7f, 3);
    // mixed: a sphere resting on a terrain patch with a torus around it
    auto tris = makeTerrain(14.0f, 48, 0.35f, 3);
    uint32_t id = uint32_t(tris.size());
    auto sphere = makeSphere({0, 2.0f, 0}, 1.6f, 24, 32, id);
    tris.insert(tris.end(), sphere.begin(), sphere.end());
    id = uint32_t(tris.size());
    auto torus = makeTorus({0, 2.0f, 0}, 3.2f, 0.45f, 40, 20, id);
    tris.insert(tris.end(), torus.begin(), torus.end());
    return tris;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned width = argc > 1 ? unsigned(atoi(argv[1])) : 160;
    unsigned height = argc > 2 ? unsigned(atoi(argv[2])) : 120;
    std::string scene_name = argc > 3 ? argv[3] : "mixed";
    std::string out_path = argc > 4 ? argv[4] : "render.ppm";
    unsigned threads = argc > 5 ? unsigned(atoi(argv[5])) : 0;

    auto tris = buildScene(scene_name);
    Bvh4 bvh = buildBvh4(tris);
    printf("scene '%s': %zu triangles, %zu wide nodes, depth %u\n",
           scene_name.c_str(), bvh.tris.size(), bvh.nodes.size(),
           bvh.depth());

    Camera cam;
    Vec3 c = bvh.root_bounds.centre();
    Vec3 ext = bvh.root_bounds.hi - bvh.root_bounds.lo;
    cam.look_at = c;
    cam.eye = c + Vec3{0.8f * ext.x, 0.7f * ext.y, 1.1f * ext.z};
    cam.width = width;
    cam.height = height;

    const Vec3 light_dir = normalize({0.5f, 1.0f, 0.3f});

    sim::EngineConfig ecfg;
    ecfg.threads = threads;
    ecfg.batch_size = 2048;
    ecfg.model = sim::ExecutionModel::Functional;
    sim::Engine engine(ecfg);

    // ---- pass 1: every primary ray through the sharded engine ----
    std::vector<Ray> primary;
    primary.reserve(size_t(width) * height);
    for (unsigned y = 0; y < height; ++y)
        for (unsigned x = 0; x < width; ++x)
            primary.push_back(cam.primaryRay(x, y, 1000.0f));
    sim::EngineReport prim = engine.run(bvh, primary);

    // Triangle lookup by id (ids survive the builder's reordering).
    std::vector<const SceneTriangle *> by_id(bvh.tris.size());
    for (const auto &t : bvh.tris)
        by_id[t.id] = &t;

    // ---- shading prologue: diffuse terms, shadow batch ----
    std::vector<float> diffuse(primary.size(), 0.0f);
    std::vector<Ray> shadow_rays;
    std::vector<size_t> shadow_pixel; // shadow ray -> pixel index
    for (size_t i = 0; i < primary.size(); ++i) {
        const HitRecord &hit = prim.hits[i];
        if (!hit.hit)
            continue;
        const Ray &ray = primary[i];
        const SceneTriangle *hit_tri = by_id[hit.triangle_id];
        Vec3 n = normalize(cross(hit_tri->v1 - hit_tri->v0,
                                 hit_tri->v2 - hit_tri->v0));
        Vec3 org{fp::fromBits(ray.origin[0]), fp::fromBits(ray.origin[1]),
                 fp::fromBits(ray.origin[2])};
        Vec3 dir{fp::fromBits(ray.dir[0]), fp::fromBits(ray.dir[1]),
                 fp::fromBits(ray.dir[2])};
        if (dot(n, dir) > 0)
            n = n * -1.0f;
        Vec3 p = org + dir * hit.t;
        diffuse[i] = std::max(0.0f, dot(n, light_dir));

        Vec3 sp = p + n * 1e-3f;
        shadow_rays.push_back(makeRay(sp.x, sp.y, sp.z, light_dir.x,
                                      light_dir.y, light_dir.z, 1e-3f,
                                      1000.0f));
        shadow_pixel.push_back(i);
    }

    // ---- pass 2: the shadow batch, any-hit (first occluder wins) ----
    sim::EngineConfig scfg = ecfg;
    scfg.any_hit = true;
    sim::EngineReport shad = sim::Engine(scfg).run(bvh, shadow_rays);
    std::vector<uint8_t> lit(primary.size(), 0);
    for (size_t s = 0; s < shadow_rays.size(); ++s)
        lit[shadow_pixel[s]] = shad.hits[s].hit ? 0 : 1;

    // ---- resolve to the image ----
    std::vector<unsigned char> img(size_t(width) * height * 3);
    size_t shaded = 0;
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            size_t i = size_t(y) * width + x;
            const HitRecord &hit = prim.hits[i];
            float r, g, b;
            if (!hit.hit) {
                // Sky gradient.
                float t = float(y) / float(height);
                r = 0.45f + 0.25f * t;
                g = 0.60f + 0.20f * t;
                b = 0.90f;
            } else {
                ++shaded;
                float shade =
                    0.15f + (lit[i] ? 0.85f * diffuse[i] : 0.0f);
                // Stable per-triangle albedo from the id.
                uint32_t h = hit.triangle_id * 2654435761u;
                r = shade * (0.4f + 0.6f * float((h >> 0) & 0xFF) / 255);
                g = shade * (0.4f + 0.6f * float((h >> 8) & 0xFF) / 255);
                b = shade * (0.4f + 0.6f * float((h >> 16) & 0xFF) / 255);
            }
            size_t idx = i * 3;
            img[idx + 0] = static_cast<unsigned char>(
                255.0f * std::min(1.0f, r));
            img[idx + 1] = static_cast<unsigned char>(
                255.0f * std::min(1.0f, g));
            img[idx + 2] = static_cast<unsigned char>(
                255.0f * std::min(1.0f, b));
        }
    }

    std::ofstream f(out_path, std::ios::binary);
    f << "P6\n" << width << " " << height << "\n255\n";
    f.write(reinterpret_cast<const char *>(img.data()),
            std::streamsize(img.size()));
    f.close();

    TraversalStats st = prim.traversal;
    st.merge(shad.traversal);
    uint64_t rays = primary.size() + shadow_rays.size();
    double wall = prim.elapsed_seconds + shad.elapsed_seconds;
    printf("wrote %s (%ux%u), %zu/%u pixels shaded\n", out_path.c_str(),
           width, height, shaded, width * height);
    printf("engine: %u worker(s), %zu + %zu batches, %llu rays in "
           "%.3f s (%.0f rays/s host-side)\n",
           prim.threads_used, prim.batches, shad.batches,
           (unsigned long long)rays, wall,
           wall > 0 ? double(rays) / wall : 0.0);
    printf("datapath work: %llu ray-box beats, %llu ray-triangle beats "
           "over %llu rays\n",
           (unsigned long long)st.box_ops,
           (unsigned long long)st.tri_ops, (unsigned long long)rays);
    printf("  %.1f box + %.1f triangle beats per ray; at 1 op/cycle and "
           "1455 MHz one datapath\n  sustains %.1f Mray/s on this "
           "scene\n",
           double(st.box_ops) / double(rays),
           double(st.tri_ops) / double(rays),
           1455.0 / (double(st.box_ops + st.tri_ops) / double(rays)));
    return 0;
}
