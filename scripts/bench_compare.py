#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

Used by CI to track the simulation-engine trajectory across commits:
the current BENCH_sim_engine.json is diffed against the artifact of the
previous successful run on main, and the build fails when a tracked
counter regresses by more than the threshold.

The tracked counter defaults to ``cycles_per_ray``, which the RT-unit
benchmarks (BM_NodeCacheSceneSweep, BM_PacketCoherenceSweep) report
from SIMULATED cycles. Simulated counters are bit-deterministic — they
do not wobble with runner load the way wall-clock does — so a small
threshold compares real model changes, not noise. Benchmarks missing
the counter in either file are skipped (wall-clock-only benchmarks are
not gated).

Renames and removals do NOT silently disable the gate: baseline
benchmarks missing from the current file are reported, and any
benchmark named with ``--require`` must be present (with the tracked
counter) in the current file or the gate fails — so renaming a stable
benchmark makes CI fail loudly instead of comparing nothing and
passing.

A single global threshold is the wrong bound for a mixed suite: the
deterministic cache sweeps barely move between commits (20% would hide
a real model change) while contended chip sweeps legitimately shift
more. ``--threshold-for NAME=T`` overrides the global bound per
benchmark; NAME may end with ``*`` to prefix-match a family (e.g.
``BM_NodeCacheSceneSweep/*=0.05``), and when several patterns match a
benchmark the longest (most specific) one wins, with an exact name
beating any prefix.

Usage:
    bench_compare.py BASELINE.json CURRENT.json
                     [--counter cycles_per_ray] [--threshold 0.20]
                     [--threshold-for NAME=T]... [--require NAME]...

Exit status: 0 when no tracked counter regressed and every required
benchmark is present (a run with nothing comparable and no --require
still passes, with a notice), 1 on regression or missing required
benchmark, 2 on unreadable input or a malformed --threshold-for.
"""

import argparse
import json
import sys


def load_counters(path, counter):
    """Map benchmark name -> counter value for runs that report it."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) would double-count.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        value = bench.get(counter)
        if name is not None and isinstance(value, (int, float)):
            out[name] = float(value)
    return out


def parse_threshold_overrides(specs):
    """Parse NAME=T (T a non-negative float) into an ordered list of
    (pattern, threshold). Malformed specs are a usage error (exit 2):
    a typo must not silently fall back to the loose global bound."""
    overrides = []
    for spec in specs:
        name, sep, value = spec.rpartition("=")
        try:
            if not sep or not name:
                raise ValueError("expected NAME=T")
            t = float(value)
            if t < 0 or t != t:  # negative or NaN
                raise ValueError("threshold must be >= 0")
        except ValueError as e:
            print(f"bench_compare: bad --threshold-for '{spec}': {e}",
                  file=sys.stderr)
            sys.exit(2)
        overrides.append((name, t))
    return overrides


def threshold_for(name, overrides, default):
    """Threshold for one benchmark: the most specific matching
    override, or the global default. A pattern ending in '*' matches
    any benchmark it prefixes; longer patterns are more specific, and
    an exact name outranks every prefix."""
    best, best_len, best_exact = default, -1, False
    for pattern, t in overrides:
        if pattern.endswith("*"):
            if not name.startswith(pattern[:-1]):
                continue
            exact = False
        elif name == pattern:
            exact = True
        else:
            continue
        if (exact, len(pattern)) > (best_exact, best_len):
            best, best_len, best_exact = t, len(pattern), exact
    return best


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="previous run's benchmark JSON")
    ap.add_argument("current", help="this run's benchmark JSON")
    ap.add_argument("--counter", default="cycles_per_ray",
                    help="benchmark counter to gate on "
                         "(default: %(default)s)")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="fail when current > baseline * (1 + T) "
                         "(default: %(default)s)")
    ap.add_argument("--threshold-for", action="append", default=[],
                    metavar="NAME=T", dest="threshold_for",
                    help="per-benchmark threshold override "
                         "(repeatable). NAME may end in '*' to "
                         "prefix-match a family; the longest matching "
                         "pattern wins, exact names beat prefixes.")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME",
                    help="benchmark name that must report the counter "
                         "in CURRENT; fail when absent (repeatable). "
                         "Keeps a rename/removal from silently "
                         "disabling the gate.")
    args = ap.parse_args()

    overrides = parse_threshold_overrides(args.threshold_for)
    base = load_counters(args.baseline, args.counter)
    cur = load_counters(args.current, args.counter)

    failed = False

    # A required benchmark missing from the current run is a hard
    # failure: the gate would otherwise pass vacuously after a rename.
    missing_required = sorted(n for n in args.require if n not in cur)
    if missing_required:
        failed = True
        print(f"bench_compare: {len(missing_required)} required "
              f"benchmark(s) missing '{args.counter}' in "
              f"{args.current}:", file=sys.stderr)
        for name in missing_required:
            print(f"  {name}", file=sys.stderr)
    for name in args.require:
        if name in cur and name not in base:
            print(f"bench_compare: note: required '{name}' has no "
                  "baseline yet; it will be gated from the next run")

    # Baseline benchmarks that vanished from the current run are worth
    # a loud notice even when not required — a rename shrinks coverage.
    vanished = sorted(set(base) - set(cur))
    if vanished:
        print(f"bench_compare: warning: {len(vanished)} baseline "
              f"benchmark(s) report no '{args.counter}' in the "
              "current run (renamed or removed?):")
        for name in vanished:
            print(f"  {name}")

    common = sorted(set(base) & set(cur))
    if not common:
        print(f"bench_compare: no benchmark reports '{args.counter}' "
              "in both files; nothing to gate")
        return 1 if failed else 0

    width = max(len(n) for n in common)
    regressions = []
    print(f"{'benchmark':<{width}}  {args.counter}: baseline -> "
          f"current (ratio)")
    for name in common:
        b, c = base[name], cur[name]
        t = threshold_for(name, overrides, args.threshold)
        ratio = c / b if b > 0 else float("inf") if c > 0 else 1.0
        flag = ""
        if ratio > 1.0 + t:
            regressions.append((name, b, c, ratio, t))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {b:.4g} -> {c:.4g} "
              f"({ratio:.3f}x, limit {100 * t:.0f}%){flag}")

    if regressions:
        print(f"\nbench_compare: {len(regressions)} benchmark(s) "
              f"regressed '{args.counter}' beyond their threshold:",
              file=sys.stderr)
        for name, b, c, ratio, t in regressions:
            print(f"  {name}: {b:.4g} -> {c:.4g} ({ratio:.3f}x, "
                  f"limit {100 * t:.0f}%)", file=sys.stderr)
        return 1
    if failed:
        return 1
    print(f"\nbench_compare: OK — {len(common)} benchmark(s) within "
          "threshold of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
