#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

Used by CI to track the simulation-engine trajectory across commits:
the current BENCH_sim_engine.json is diffed against the artifact of the
previous successful run on main, and the build fails when a tracked
counter regresses by more than the threshold.

The tracked counter defaults to ``cycles_per_ray``, which the RT-unit
benchmarks (BM_NodeCacheSceneSweep, BM_PacketCoherenceSweep) report
from SIMULATED cycles. Simulated counters are bit-deterministic — they
do not wobble with runner load the way wall-clock does — so a small
threshold compares real model changes, not noise. Benchmarks missing
the counter in either file are skipped (wall-clock-only benchmarks are
not gated).

Usage:
    bench_compare.py BASELINE.json CURRENT.json
                     [--counter cycles_per_ray] [--threshold 0.20]

Exit status: 0 when no tracked counter regressed (or nothing was
comparable), 1 on regression, 2 on unreadable input.
"""

import argparse
import json
import sys


def load_counters(path, counter):
    """Map benchmark name -> counter value for runs that report it."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) would double-count.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        value = bench.get(counter)
        if name is not None and isinstance(value, (int, float)):
            out[name] = float(value)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="previous run's benchmark JSON")
    ap.add_argument("current", help="this run's benchmark JSON")
    ap.add_argument("--counter", default="cycles_per_ray",
                    help="benchmark counter to gate on "
                         "(default: %(default)s)")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="fail when current > baseline * (1 + T) "
                         "(default: %(default)s)")
    args = ap.parse_args()

    base = load_counters(args.baseline, args.counter)
    cur = load_counters(args.current, args.counter)
    common = sorted(set(base) & set(cur))
    if not common:
        print(f"bench_compare: no benchmark reports '{args.counter}' "
              "in both files; nothing to gate")
        return 0

    width = max(len(n) for n in common)
    regressions = []
    print(f"{'benchmark':<{width}}  {args.counter}: baseline -> "
          f"current (ratio)")
    for name in common:
        b, c = base[name], cur[name]
        ratio = c / b if b > 0 else float("inf") if c > 0 else 1.0
        flag = ""
        if ratio > 1.0 + args.threshold:
            regressions.append((name, b, c, ratio))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {b:.4g} -> {c:.4g} "
              f"({ratio:.3f}x){flag}")

    if regressions:
        print(f"\nbench_compare: {len(regressions)} benchmark(s) "
              f"regressed '{args.counter}' by more than "
              f"{100 * args.threshold:.0f}%:", file=sys.stderr)
        for name, b, c, ratio in regressions:
            print(f"  {name}: {b:.4g} -> {c:.4g} ({ratio:.3f}x)",
                  file=sys.stderr)
        return 1
    print(f"\nbench_compare: OK — {len(common)} benchmark(s) within "
          f"{100 * args.threshold:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
