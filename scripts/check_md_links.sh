#!/usr/bin/env bash
# Fail on broken relative links in the repo's markdown files.
#
# Checks every inline markdown link target ( [text](target) ) that is
# not an absolute URL or a pure in-page anchor: the target, resolved
# relative to the file containing it and with any #fragment stripped,
# must exist. Grep-based on purpose - no network, no dependencies -
# so it runs identically in CI and locally:
#
#   scripts/check_md_links.sh [dir]
set -u

root="${1:-.}"
status=0
checked=0

list_md_files() {
    # Tracked + untracked (non-ignored) markdown inside a git checkout;
    # plain find otherwise. One path per line.
    if git -C "$root" rev-parse --is-inside-work-tree >/dev/null 2>&1; then
        git -C "$root" ls-files --cached --others --exclude-standard \
            '*.md'
    else
        (cd "$root" && find . -name '*.md' -not -path './build*')
    fi
}

while IFS= read -r f; do
    [ -n "$f" ] || continue
    dir=$(dirname "$root/$f")
    # Inline link targets, one per line: fenced code blocks are
    # stripped first (example links in ``` fences are not rendered
    # links), optional '"title"' suffixes are dropped, and schemes
    # (http:, https:, mailto:), protocol-relative // and in-page
    # #anchors are excluded.
    while IFS= read -r t; do
        [ -n "$t" ] || continue
        path="${t%%#*}" # strip fragment
        [ -n "$path" ] || continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN: $f -> $t" >&2
            status=1
        fi
    done < <(awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' \
                 "$root/$f" 2>/dev/null \
             | grep -oE '\]\([^)]+\)' \
             | sed -e 's/^](//' -e 's/)$//' \
                   -e 's/[[:space:]]\{1,\}"[^"]*"$//' \
             | grep -vE '^([a-z]+:|//|#)' || true)
done < <(list_md_files)

echo "check_md_links: $checked relative link(s) checked"
exit $status
