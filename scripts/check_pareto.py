#!/usr/bin/env python3
"""Validate a BENCH_design_space.json emitted by bench_design_space.

Used by CI on the design-space sweep artifact, and handy locally: a
schema drift or a broken dominance computation would otherwise ship a
plausible-looking but wrong Pareto front.

Checks, in order:

  1. the file parses as JSON and carries the expected top-level shape:
     {"workload": {...}, "clock_ghz": N, "dimensions": {...},
      "points": [...]};
  2. at least --min-dimensions knob dimensions are declared (the sweep
     must actually be a multi-knob design space, default 3), and every
     declared value of every dimension appears in at least one point —
     a silently dropped grid row cannot pass;
  3. every point carries every dimension key plus the metric keys
     (rays_per_kcycle, area_mm2, power_w, perf_per_mm2, perf_per_watt,
     pareto), with finite non-negative metrics;
  4. the pareto flags are exactly the non-dominated set over
     (rays_per_kcycle max, area_mm2 min, power_w min): no flagged
     point is dominated by any other point, every unflagged point is
     dominated by someone, and the front is non-empty.

Usage:
    check_pareto.py BENCH_design_space.json [--min-dimensions N]
                                            [--min-points N]

Exit status: 0 when every check passes, 1 otherwise (all violations
are reported, not just the first).
"""

import argparse
import json
import math
import sys


METRICS = (
    "rays_per_kcycle",
    "area_mm2",
    "power_w",
    "perf_per_mm2",
    "perf_per_watt",
)


def dominates(a, b):
    """a dominates b over (perf max, area min, power min)."""
    if (
        a["rays_per_kcycle"] < b["rays_per_kcycle"]
        or a["area_mm2"] > b["area_mm2"]
        or a["power_w"] > b["power_w"]
    ):
        return False
    return (
        a["rays_per_kcycle"] > b["rays_per_kcycle"]
        or a["area_mm2"] < b["area_mm2"]
        or a["power_w"] < b["power_w"]
    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="BENCH_design_space.json file")
    ap.add_argument(
        "--min-dimensions",
        type=int,
        default=3,
        metavar="N",
        help="minimum swept knob dimensions (default 3)",
    )
    ap.add_argument(
        "--min-points",
        type=int,
        default=2,
        metavar="N",
        help="minimum swept points (default 2)",
    )
    args = ap.parse_args()

    try:
        with open(args.report) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: {args.report}: {e}")
        return 1

    errors = []

    if not isinstance(doc, dict):
        print("FAIL: top level is not an object")
        return 1
    for key in ("workload", "clock_ghz", "dimensions", "points"):
        if key not in doc:
            errors.append(f"missing top-level key {key!r}")
    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1

    dims = doc["dimensions"]
    points = doc["points"]
    if not isinstance(dims, dict) or not isinstance(points, list):
        print("FAIL: dimensions must be an object, points a list")
        return 1

    if len(dims) < args.min_dimensions:
        errors.append(
            f"only {len(dims)} dimension(s) "
            f"(--min-dimensions {args.min_dimensions})"
        )
    if len(points) < args.min_points:
        errors.append(
            f"only {len(points)} point(s) (--min-points {args.min_points})"
        )

    # Per-point shape.
    valid = []
    for i, p in enumerate(points):
        if not isinstance(p, dict):
            errors.append(f"point {i}: not an object")
            continue
        bad = False
        for d in dims:
            if d not in p:
                errors.append(f"point {i}: missing dimension {d!r}")
                bad = True
        for m in METRICS:
            v = p.get(m)
            if not isinstance(v, (int, float)) or not math.isfinite(v):
                errors.append(f"point {i}: metric {m!r} is {v!r}")
                bad = True
            elif v < 0:
                errors.append(f"point {i}: metric {m!r} is negative ({v})")
                bad = True
        if not isinstance(p.get("pareto"), bool):
            errors.append(f"point {i}: 'pareto' is not a boolean")
            bad = True
        if not bad:
            valid.append((i, p))

    # Every declared dimension value must appear among the points.
    for d, values in dims.items():
        if not isinstance(values, list) or not values:
            errors.append(f"dimension {d!r}: not a non-empty list")
            continue
        seen = {p.get(d) for _, p in valid}
        for v in values:
            if v not in seen:
                errors.append(
                    f"dimension {d!r}: declared value {v!r} appears in "
                    "no point"
                )

    # The pareto flags must be exactly the non-dominated set.
    flagged = [i for i, p in valid if p["pareto"]]
    if valid and not flagged:
        errors.append("pareto front is empty")
    for i, p in valid:
        dominators = [
            j for j, q in valid if j != i and dominates(q, p)
        ]
        if p["pareto"] and dominators:
            errors.append(
                f"point {i} is flagged pareto but dominated by "
                f"point(s) {dominators}"
            )
        if not p["pareto"] and not dominators:
            errors.append(
                f"point {i} is not flagged pareto but nothing "
                "dominates it"
            )

    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        print(f"check_pareto: {len(errors)} violation(s) in {args.report}")
        return 1
    print(
        f"check_pareto: OK — {len(points)} points over {len(dims)} "
        f"dimensions, {len(flagged)}-point Pareto front"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
