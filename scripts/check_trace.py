#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by obs::writeChromeTrace.

Used by CI on the render_scene [trace] smoke run, and handy locally
before loading a trace into Perfetto: a malformed trace often still
loads (viewers are lenient), silently dropping events — this script
fails loudly instead.

Checks, in order:

  1. the file parses as JSON and is the object form of the trace-event
     format: {"traceEvents": [...]};
  2. every event carries the keys its phase requires (name/ph/pid/tid
     always; ts for everything but metadata; args for counter and
     metadata events);
  3. per (pid, tid) track, timestamps are non-decreasing in file order
     for non-metadata events — the exporter sorts by (pid, tid, ts,
     seq), so any inversion means a broken emitter or a corrupted file;
  4. B/E duration slices balance per track: every E closes the most
     recent open B of the same name, and no B is left open at EOF.

Optional coverage gates (for CI smoke runs): --expect-counter NAME
requires at least one counter ('C') event whose name starts with NAME,
and --min-events bounds the total from below, so an accidentally-empty
trace cannot pass.

Usage:
    check_trace.py TRACE.json [--expect-counter NAME]... [--min-events N]

Exit status: 0 when every check passes, 1 otherwise (all violations are
reported, not just the first).
"""

import argparse
import json
import sys


REQUIRED_ALWAYS = ("name", "ph", "pid", "tid")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument(
        "--expect-counter",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one counter event whose name starts "
        "with NAME (repeatable)",
    )
    ap.add_argument(
        "--min-events",
        type=int,
        default=1,
        metavar="N",
        help="minimum number of events (default 1: non-empty)",
    )
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: {args.trace}: {e}")
        return 1

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        print('FAIL: top level is not {"traceEvents": [...]}')
        return 1
    events = doc["traceEvents"]
    if not isinstance(events, list):
        print("FAIL: traceEvents is not a list")
        return 1

    errors = []

    def err(i, ev, msg):
        errors.append(f"event {i} ({ev.get('name', '?')!r}): {msg}")

    # last seen ts and open B-slice name stack, per (pid, tid) track
    last_ts = {}
    open_slices = {}
    counter_names = set()

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        missing = [k for k in REQUIRED_ALWAYS if k not in ev]
        if ph != "M" and "ts" not in ev:
            missing.append("ts")
        if ph in ("C", "M") and "args" not in ev:
            missing.append("args")
        if missing:
            err(i, ev, f"missing keys {missing}")
            continue
        if ph == "M":
            continue

        track = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if not isinstance(ts, (int, float)):
            err(i, ev, f"non-numeric ts {ts!r}")
            continue
        if track in last_ts and ts < last_ts[track]:
            err(
                i,
                ev,
                f"ts {ts} goes backwards on track {track} "
                f"(previous {last_ts[track]})",
            )
        last_ts[track] = ts

        if ph == "C":
            counter_names.add(ev["name"])
        elif ph == "B":
            open_slices.setdefault(track, []).append(ev["name"])
        elif ph == "E":
            stack = open_slices.get(track, [])
            if not stack:
                err(i, ev, f"E with no open B on track {track}")
            elif stack[-1] != ev["name"]:
                err(
                    i,
                    ev,
                    f"E {ev['name']!r} does not close open B "
                    f"{stack[-1]!r} on track {track}",
                )
            else:
                stack.pop()

    for track, stack in open_slices.items():
        for name in stack:
            errors.append(f"B {name!r} on track {track} never closed")

    if len(events) < args.min_events:
        errors.append(
            f"only {len(events)} events (--min-events {args.min_events})"
        )
    for want in args.expect_counter:
        if not any(n.startswith(want) for n in counter_names):
            errors.append(f"no counter track named {want!r}*")

    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        print(f"check_trace: {len(errors)} violation(s) in {args.trace}")
        return 1
    n_tracks = len(last_ts)
    print(
        f"check_trace: OK — {len(events)} events on {n_tracks} tracks, "
        f"{len(counter_names)} counter track(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
