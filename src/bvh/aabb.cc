/**
 * @file
 * IO-type conversions for the BVH substrate.
 */
#include "bvh/aabb.hh"

namespace rayflex::bvh
{

using fp::toBits;

core::Box
Aabb::toIoBox() const
{
    core::Box b;
    b.lo = {toBits(lo.x), toBits(lo.y), toBits(lo.z)};
    b.hi = {toBits(hi.x), toBits(hi.y), toBits(hi.z)};
    return b;
}

core::Triangle
SceneTriangle::toIoTriangle() const
{
    core::Triangle t;
    t.v[0] = {toBits(v0.x), toBits(v0.y), toBits(v0.z)};
    t.v[1] = {toBits(v1.x), toBits(v1.y), toBits(v1.z)};
    t.v[2] = {toBits(v2.x), toBits(v2.y), toBits(v2.z)};
    return t;
}

} // namespace rayflex::bvh
