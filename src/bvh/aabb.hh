/**
 * @file
 * Vector math and axis-aligned bounding boxes for the BVH substrate.
 *
 * This is the "GPU core side" of the system: plain host-float geometry
 * used to build acceleration structures and generate rays. The datapath
 * side consumes these through the IO types in core/io_spec.hh.
 */
#ifndef RAYFLEX_BVH_AABB_HH
#define RAYFLEX_BVH_AABB_HH

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "core/io_spec.hh"

namespace rayflex::bvh
{

/** A 3-component float vector. */
struct Vec3
{
    float x = 0, y = 0, z = 0;

    float
    operator[](int i) const
    {
        return i == 0 ? x : i == 1 ? y : z;
    }

    friend Vec3 operator+(Vec3 a, Vec3 b)
    {
        return {a.x + b.x, a.y + b.y, a.z + b.z};
    }
    friend Vec3 operator-(Vec3 a, Vec3 b)
    {
        return {a.x - b.x, a.y - b.y, a.z - b.z};
    }
    friend Vec3 operator*(Vec3 a, float s)
    {
        return {a.x * s, a.y * s, a.z * s};
    }
    friend Vec3 operator*(float s, Vec3 a) { return a * s; }
};

/** Dot product. */
inline float dot(Vec3 a, Vec3 b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

/** Cross product. */
inline Vec3
cross(Vec3 a, Vec3 b)
{
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

/** Euclidean length. */
inline float length(Vec3 a) { return std::sqrt(dot(a, a)); }

/** Unit vector in the direction of a (a must be nonzero). */
inline Vec3 normalize(Vec3 a) { return a * (1.0f / length(a)); }

/** Component-wise min. */
inline Vec3
vmin(Vec3 a, Vec3 b)
{
    return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
}

/** Component-wise max. */
inline Vec3
vmax(Vec3 a, Vec3 b)
{
    return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
}

/** An axis-aligned bounding box. */
struct Aabb
{
    Vec3 lo{std::numeric_limits<float>::infinity(),
            std::numeric_limits<float>::infinity(),
            std::numeric_limits<float>::infinity()};
    Vec3 hi{-std::numeric_limits<float>::infinity(),
            -std::numeric_limits<float>::infinity(),
            -std::numeric_limits<float>::infinity()};

    /** Grow to contain a point. */
    void
    grow(Vec3 p)
    {
        lo = vmin(lo, p);
        hi = vmax(hi, p);
    }

    /** Grow to contain another box. */
    void
    grow(const Aabb &b)
    {
        lo = vmin(lo, b.lo);
        hi = vmax(hi, b.hi);
    }

    /** True when at least one point has been added. */
    bool valid() const { return lo.x <= hi.x; }

    /** Box centre. */
    Vec3 centre() const { return (lo + hi) * 0.5f; }

    /** Surface area (for SAH). */
    float
    surfaceArea() const
    {
        if (!valid())
            return 0.0f;
        Vec3 d = hi - lo;
        return 2.0f * (d.x * d.y + d.y * d.z + d.z * d.x);
    }

    /** Convert to the datapath IO box type. */
    core::Box toIoBox() const;
};

/** A scene triangle with its id. */
struct SceneTriangle
{
    Vec3 v0, v1, v2;
    uint32_t id = 0;

    /** Bounding box of the triangle. */
    Aabb
    bounds() const
    {
        Aabb b;
        b.grow(v0);
        b.grow(v1);
        b.grow(v2);
        return b;
    }

    /** Centroid. */
    Vec3 centroid() const { return (v0 + v1 + v2) * (1.0f / 3.0f); }

    /** Convert to the datapath IO triangle type. */
    core::Triangle toIoTriangle() const;
};

} // namespace rayflex::bvh

#endif // RAYFLEX_BVH_AABB_HH
