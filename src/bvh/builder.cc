/**
 * @file
 * Binned-SAH binary build followed by collapse into 4-wide nodes.
 */
#include "bvh/builder.hh"

#include <algorithm>
#include <functional>
#include <numeric>
#include <string>

namespace rayflex::bvh
{

namespace
{

/** Temporary binary node used during the build. */
struct BinNode
{
    Aabb bounds;
    int left = -1, right = -1; ///< children when internal
    uint32_t first = 0, count = 0; ///< triangle range when leaf
    bool leaf = false;
};

struct Builder
{
    const BuildParams &params;
    std::vector<SceneTriangle> &tris;
    std::vector<BinNode> nodes;

    int
    build(uint32_t first, uint32_t count)
    {
        Aabb bounds, centroid_bounds;
        for (uint32_t i = first; i < first + count; ++i) {
            bounds.grow(tris[i].bounds());
            centroid_bounds.grow(tris[i].centroid());
        }

        int idx = int(nodes.size());
        nodes.push_back({});
        nodes[idx].bounds = bounds;

        if (count <= params.max_leaf_size) {
            makeLeaf(idx, first, count);
            return idx;
        }

        // Pick the split from binned SAH over the widest centroid axis.
        Vec3 ext = centroid_bounds.hi - centroid_bounds.lo;
        int axis = 0;
        if (ext.y > ext[axis])
            axis = 1;
        if (ext.z > ext[axis])
            axis = 2;
        float lo = centroid_bounds.lo[axis];
        float width = ext[axis];
        if (width <= 0.0f) {
            // Degenerate spread: median split by index.
            uint32_t half = count / 2;
            int l = build(first, half);
            int r = build(first + half, count - half);
            nodes[idx].left = l;
            nodes[idx].right = r;
            return idx;
        }

        const unsigned nbins = params.sah_bins;
        std::vector<Aabb> bin_bounds(nbins);
        std::vector<uint32_t> bin_count(nbins, 0);
        auto bin_of = [&](const SceneTriangle &t) {
            float rel = (t.centroid()[axis] - lo) / width;
            int b = int(rel * float(nbins));
            return std::clamp(b, 0, int(nbins) - 1);
        };
        for (uint32_t i = first; i < first + count; ++i) {
            int b = bin_of(tris[i]);
            bin_bounds[b].grow(tris[i].bounds());
            ++bin_count[b];
        }

        // Sweep for the cheapest partition boundary.
        std::vector<float> right_area(nbins, 0.0f);
        std::vector<uint32_t> right_count(nbins, 0);
        Aabb acc;
        uint32_t cnt = 0;
        for (int b = int(nbins) - 1; b >= 1; --b) {
            acc.grow(bin_bounds[b]);
            cnt += bin_count[b];
            right_area[b] = acc.surfaceArea();
            right_count[b] = cnt;
        }
        float best_cost = std::numeric_limits<float>::infinity();
        int best_split = -1;
        acc = {};
        cnt = 0;
        const float parent_area = bounds.surfaceArea();
        for (unsigned b = 0; b + 1 < nbins; ++b) {
            acc.grow(bin_bounds[b]);
            cnt += bin_count[b];
            if (cnt == 0 || right_count[b + 1] == 0)
                continue;
            float cost =
                params.traversal_cost +
                params.intersect_cost *
                    (acc.surfaceArea() * float(cnt) +
                     right_area[b + 1] * float(right_count[b + 1])) /
                    std::max(parent_area, 1e-20f);
            if (cost < best_cost) {
                best_cost = cost;
                best_split = int(b);
            }
        }

        float leaf_cost = params.intersect_cost * float(count);
        if (best_split < 0 ||
            (best_cost >= leaf_cost &&
             count <= 4 * params.max_leaf_size)) {
            makeLeaf(idx, first, count);
            return idx;
        }

        auto mid_it = std::partition(
            tris.begin() + first, tris.begin() + first + count,
            [&](const SceneTriangle &t) {
                return bin_of(t) <= best_split;
            });
        uint32_t mid = uint32_t(mid_it - tris.begin());
        if (mid == first || mid == first + count)
            mid = first + count / 2; // numeric corner case: force split

        int l = build(first, mid - first);
        int r = build(mid, first + count - mid);
        nodes[idx].left = l;
        nodes[idx].right = r;
        return idx;
    }

    void
    makeLeaf(int idx, uint32_t first, uint32_t count)
    {
        nodes[idx].leaf = true;
        nodes[idx].first = first;
        nodes[idx].count = count;
    }
};

/**
 * Collapse the binary tree into 4-wide nodes: each wide node adopts up
 * to four binary descendants found by repeatedly expanding the child
 * with the largest surface area (a standard widening heuristic).
 */
struct Collapser
{
    const std::vector<BinNode> &bin;
    Bvh4 &out;

    uint32_t
    collapse(int root)
    {
        uint32_t wide_idx = uint32_t(out.nodes.size());
        out.nodes.push_back({});

        // Gather up to 4 binary subtree roots under `root`.
        std::vector<int> slots;
        slots.push_back(bin[root].leaf ? root : bin[root].left);
        if (!bin[root].leaf)
            slots.push_back(bin[root].right);
        while (slots.size() < 4) {
            // Expand the internal slot with the largest surface area.
            int pick = -1;
            float best = -1.0f;
            for (size_t i = 0; i < slots.size(); ++i) {
                if (!bin[slots[i]].leaf &&
                    bin[slots[i]].bounds.surfaceArea() > best) {
                    best = bin[slots[i]].bounds.surfaceArea();
                    pick = int(i);
                }
            }
            if (pick < 0)
                break;
            int node = slots[pick];
            slots[pick] = bin[node].left;
            slots.push_back(bin[node].right);
        }

        WideNode wn;
        std::vector<int> pending_internal; // slot -> binary node
        for (size_t i = 0; i < slots.size() && i < 4; ++i) {
            const BinNode &b = bin[slots[i]];
            wn.child[i].bounds = b.bounds;
            if (b.leaf) {
                wn.child[i].kind = WideNode::Kind::Leaf;
                wn.child[i].index = b.first;
                wn.child[i].count = b.count;
            } else {
                wn.child[i].kind = WideNode::Kind::Internal;
                pending_internal.push_back(int(i));
            }
        }
        out.nodes[wide_idx] = wn;

        for (int slot : pending_internal) {
            uint32_t child_idx = collapse(slots[size_t(slot)]);
            out.nodes[wide_idx].child[slot].index = child_idx;
        }
        return wide_idx;
    }
};

} // namespace

size_t
Bvh4::childCount() const
{
    size_t n = 0;
    for (const auto &node : nodes)
        for (const auto &c : node.child)
            if (c.kind != WideNode::Kind::Empty)
                ++n;
    return n;
}

unsigned
Bvh4::depth() const
{
    if (nodes.empty())
        return 0;
    std::function<unsigned(uint32_t)> rec = [&](uint32_t idx) {
        unsigned d = 1;
        for (const auto &c : nodes[idx].child)
            if (c.kind == WideNode::Kind::Internal)
                d = std::max(d, 1 + rec(c.index));
        return d;
    };
    return rec(0);
}

Bvh4
buildBvh4(std::vector<SceneTriangle> tris, const BuildParams &params)
{
    Bvh4 out;
    if (tris.empty()) {
        out.nodes.push_back({});
        return out;
    }
    Builder b{params, tris, {}};
    int root = b.build(0, uint32_t(tris.size()));
    out.root_bounds = b.nodes[root].bounds;
    out.tris = std::move(tris);

    if (b.nodes[root].leaf) {
        // Single-leaf scene: wrap in one wide node.
        WideNode wn;
        wn.child[0].bounds = b.nodes[root].bounds;
        wn.child[0].kind = WideNode::Kind::Leaf;
        wn.child[0].index = b.nodes[root].first;
        wn.child[0].count = b.nodes[root].count;
        out.nodes.push_back(wn);
        return out;
    }

    Collapser c{b.nodes, out};
    c.collapse(root);
    return out;
}

std::string
validateBvh4(const Bvh4 &bvh)
{
    if (bvh.nodes.empty())
        return "no nodes";
    std::vector<unsigned> seen(bvh.tris.size(), 0);

    std::function<std::string(uint32_t, const Aabb *)> rec =
        [&](uint32_t idx, const Aabb *parent) -> std::string {
        if (idx >= bvh.nodes.size())
            return "child index out of range";
        const WideNode &n = bvh.nodes[idx];
        for (const auto &c : n.child) {
            if (c.kind == WideNode::Kind::Empty)
                continue;
            if (parent) {
                // Child boxes must be inside the parent slot's box.
                const float eps = 1e-4f;
                for (int d = 0; d < 3; ++d) {
                    if (c.bounds.lo[d] < parent->lo[d] - eps ||
                        c.bounds.hi[d] > parent->hi[d] + eps)
                        return "child box escapes parent box";
                }
            }
            if (c.kind == WideNode::Kind::Leaf) {
                if (c.index + c.count > bvh.tris.size())
                    return "leaf range out of bounds";
                for (uint32_t i = c.index; i < c.index + c.count; ++i) {
                    ++seen[i];
                    Aabb tb = bvh.tris[i].bounds();
                    const float eps = 1e-4f;
                    for (int d = 0; d < 3; ++d) {
                        if (tb.lo[d] < c.bounds.lo[d] - eps ||
                            tb.hi[d] > c.bounds.hi[d] + eps)
                            return "triangle escapes leaf box";
                    }
                }
            } else {
                if (c.index <= idx)
                    return "non-forward child index (cycle risk)";
                std::string err = rec(c.index, &c.bounds);
                if (!err.empty())
                    return err;
            }
        }
        return std::string();
    };

    std::string err = rec(0, nullptr);
    if (!err.empty())
        return err;
    for (size_t i = 0; i < seen.size(); ++i) {
        if (seen[i] != 1)
            return "triangle " + std::to_string(i) + " referenced " +
                   std::to_string(seen[i]) + " times";
    }
    return {};
}

} // namespace rayflex::bvh
