/**
 * @file
 * Bounding Volume Hierarchy builder.
 *
 * Builds the acceleration structure described in Section II-A: triangles
 * grouped hierarchically into nested axis-aligned bounding boxes. A
 * binary BVH is built with binned surface-area-heuristic (SAH) splits
 * (median split as fallback), then collapsed into the 4-wide layout the
 * RDNA3 IMAGE_BVH_INTERSECT_RAY instruction traverses: each internal
 * node holds up to four children whose boxes are tested by one datapath
 * beat.
 */
#ifndef RAYFLEX_BVH_BUILDER_HH
#define RAYFLEX_BVH_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bvh/aabb.hh"

namespace rayflex::bvh
{

/** One node of the 4-wide BVH. */
struct WideNode
{
    /** Child slot kinds. */
    enum class Kind : uint8_t { Empty, Internal, Leaf };

    struct Child
    {
        Aabb bounds;
        Kind kind = Kind::Empty;
        /** Node index when Internal; first-triangle index when Leaf. */
        uint32_t index = 0;
        /** Triangle count when Leaf. */
        uint32_t count = 0;
    };

    std::array<Child, 4> child{};
};

/** The 4-wide BVH over a triangle set. */
struct Bvh4
{
    std::vector<WideNode> nodes;        ///< node 0 is the root
    std::vector<SceneTriangle> tris;    ///< leaf triangles, reordered
    Aabb root_bounds;

    /** Number of non-empty child slots across all nodes. */
    size_t childCount() const;

    /** Maximum depth of the tree. */
    unsigned depth() const;
};

/** BVH build parameters. */
struct BuildParams
{
    unsigned max_leaf_size = 4;  ///< triangles per leaf
    unsigned sah_bins = 16;      ///< binned-SAH bucket count
    float traversal_cost = 1.0f; ///< SAH node cost
    float intersect_cost = 1.5f; ///< SAH triangle cost
};

/**
 * Build a 4-wide BVH over the given triangles. The input order is not
 * preserved; triangle ids survive in SceneTriangle::id.
 */
Bvh4 buildBvh4(std::vector<SceneTriangle> tris,
               const BuildParams &params = {});

/**
 * Structural validation used by the tests: every triangle is referenced
 * exactly once, every child box contains its subtree's geometry, and
 * node indices are acyclic (forward-only).
 * @return empty string when valid, otherwise a description of the first
 *         violation.
 */
std::string validateBvh4(const Bvh4 &bvh);

} // namespace rayflex::bvh

#endif // RAYFLEX_BVH_BUILDER_HH
