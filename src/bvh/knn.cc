/**
 * @file
 * k-NN index construction and the functional best-first traversal.
 */
#include "bvh/knn.hh"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace rayflex::bvh
{

using core::DatapathInput;
using core::Opcode;
using fp::toBits;

KnnIndex
buildKnnIndex(std::vector<DataPoint> points, const BuildParams &params)
{
    KnnIndex index;
    index.points = std::move(points);
    if (index.points.empty())
        return index;

    index.dims = unsigned(index.points.front().coords.size());
    if (index.dims == 0)
        throw std::invalid_argument("knn: zero-dimensional points");
    for (const DataPoint &p : index.points)
        if (p.coords.size() != index.dims)
            throw std::invalid_argument(
                "knn: inconsistent point dimensions");

    // Degenerate proxy triangles at the first three coordinates;
    // tri.id indexes back into `points` across the builder's reorder.
    std::vector<SceneTriangle> proxies;
    proxies.reserve(index.points.size());
    for (size_t i = 0; i < index.points.size(); ++i) {
        const std::vector<float> &c = index.points[i].coords;
        Vec3 p{c[0], index.dims > 1 ? c[1] : 0.0f,
               index.dims > 2 ? c[2] : 0.0f};
        SceneTriangle t;
        t.v0 = t.v1 = t.v2 = p;
        t.id = uint32_t(i);
        proxies.push_back(t);
    }
    index.bvh = buildBvh4(std::move(proxies), params);
    return index;
}

size_t
knnBeatsPerJob(size_t dims, KnnMetric metric)
{
    const size_t width = metric == KnnMetric::Cosine
                             ? core::kCosineWidth
                             : core::kEuclideanWidth;
    return (dims + width - 1) / width;
}

std::vector<DatapathInput>
knnJobBeats(const float *query, const float *candidate, size_t dims,
            KnnMetric metric, uint64_t tag)
{
    const bool cosine = metric == KnnMetric::Cosine;
    const size_t width =
        cosine ? core::kCosineWidth : core::kEuclideanWidth;
    std::vector<DatapathInput> beats;
    beats.reserve(knnBeatsPerJob(dims, metric));
    for (size_t base = 0; base < dims; base += width) {
        DatapathInput in;
        in.op = cosine ? Opcode::Cosine : Opcode::Euclidean;
        in.tag = tag;
        in.mask = 0;
        for (size_t i = 0; i < width && base + i < dims; ++i) {
            in.vec_a[i] = toBits(query[base + i]);
            in.vec_b[i] = toBits(candidate[base + i]);
            in.mask |= uint16_t(1u << i);
        }
        in.reset_accumulator = base + width >= dims;
        beats.push_back(in);
    }
    return beats;
}

double
knnBoxLowerBound(const Aabb &box, const float *query, size_t dims)
{
    double lb = 0.0;
    for (int axis = 0; axis < 3; ++axis) {
        double q = size_t(axis) < dims ? double(query[axis]) : 0.0;
        double lo = double(box.lo[axis]);
        double hi = double(box.hi[axis]);
        double d = q < lo ? lo - q : q > hi ? q - hi : 0.0;
        lb += d * d;
    }
    return lb;
}

void
KnnTopK::offer(float score, uint32_t id)
{
    if (k_ == 0)
        return;
    KnnNeighbor cand{score, id};
    if (heap_.size() < k_) {
        heap_.push_back(cand);
        std::push_heap(heap_.begin(), heap_.end(),
                       core::golden::knnCloser);
        return;
    }
    if (core::golden::knnCloser(cand, heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(),
                      core::golden::knnCloser);
        heap_.back() = cand;
        std::push_heap(heap_.begin(), heap_.end(),
                       core::golden::knnCloser);
    }
}

std::vector<KnnNeighbor>
KnnTopK::sorted() const
{
    std::vector<KnnNeighbor> out = heap_;
    std::sort(out.begin(), out.end(), core::golden::knnCloser);
    return out;
}

namespace
{

using Frontier =
    std::priority_queue<KnnFrontierItem, std::vector<KnnFrontierItem>,
                        KnnFrontierAfter>;

} // namespace

KnnResult
KnnTraversal::search(const KnnQuery &query)
{
    if (!index_.points.empty() &&
        query.point.size() != index_.dims)
        throw std::invalid_argument("knn: query dimension mismatch");

    KnnTopK topk;
    topk.reset(query.k);
    ++stats_.queries;
    if (index_.points.empty() || query.k == 0)
        return {};

    const bool prune = query.metric == KnnMetric::Euclidean;
    const float *q = query.point.data();

    Frontier frontier;
    uint64_t seq = 0;
    if (!index_.bvh.nodes.empty())
        frontier.push({0.0, false, 0, 0, seq++});

    auto note_peak = [&] {
        if (frontier.size() > stats_.frontier_peak)
            stats_.frontier_peak = frontier.size();
    };
    note_peak();

    while (!frontier.empty()) {
        KnnFrontierItem item = frontier.top();
        frontier.pop();
        if (prune && topk.full() &&
            knnPrunable(item.lb, topk.radius())) {
            // The frontier is ordered by lower bound: once the best
            // remaining item is prunable, so is everything behind it.
            stats_.pruned += 1 + frontier.size();
            break;
        }
        if (!item.is_leaf) {
            ++stats_.nodes_visited;
            const WideNode &node = index_.bvh.nodes[item.index];
            for (const WideNode::Child &c : node.child) {
                if (c.kind == WideNode::Kind::Empty)
                    continue;
                double lb =
                    prune ? knnBoxLowerBound(c.bounds, q, index_.dims)
                          : 0.0;
                if (prune && topk.full() &&
                    knnPrunable(lb, topk.radius())) {
                    ++stats_.pruned;
                    continue;
                }
                frontier.push({lb,
                               c.kind == WideNode::Kind::Leaf,
                               c.index, c.count, seq++});
            }
            note_peak();
            continue;
        }
        ++stats_.leaves_visited;
        for (uint32_t t = item.index; t < item.index + item.count;
             ++t) {
            const DataPoint &p =
                index_.points[index_.bvh.tris[t].id];
            ++stats_.candidates;
            std::vector<DatapathInput> beats = knnJobBeats(
                q, p.coords.data(), index_.dims, query.metric, p.id);
            stats_.distance_beats += beats.size();
            core::DatapathOutput out{};
            for (const DatapathInput &in : beats)
                out = core::functionalEval(in, acc_);
            float score =
                query.metric == KnnMetric::Euclidean
                    ? fp::fromBits(out.euclidean_accumulator)
                    : core::golden::knnAngularScore(
                          fp::fromBits(out.angular_dot_product),
                          fp::fromBits(out.angular_norm));
            topk.offer(score, p.id);
        }
    }

    return {topk.sorted()};
}

} // namespace rayflex::bvh
