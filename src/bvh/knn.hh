/**
 * @file
 * Exact k-nearest-neighbor traversal over the BVH substrate.
 *
 * The paper's Section V-A case study motivates the extended datapath
 * with nearest-neighbor search: instead of reformulating k-NN as ray
 * tracing (the RTNN / Arkade line of work), the extended pipeline
 * computes exact Euclidean and cosine distances of arbitrary dimension
 * in 16-wide (Euclidean) or 8-wide (cosine) beats with multi-beat
 * accumulation. This module supplies the query engine around those
 * beats:
 *
 *   * KnnIndex — the point cloud behind the existing 4-wide BVH. Each
 *     DataPoint becomes a degenerate proxy triangle at its first three
 *     coordinates, so the unmodified builder, validator and the RT
 *     unit's synthetic node/leaf address map all apply verbatim; a
 *     leaf "triangle" is one 48-byte candidate record.
 *   * KnnTraversal — the functional engine: best-first node visits
 *     ordered by a point-to-box lower bound, a search radius that
 *     shrinks as better neighbors arrive, and candidate distances
 *     evaluated through core::functionalEval — exactly the arithmetic
 *     the pipelined datapath implements. bvh::RtUnit runs the same
 *     algorithm cycle-accurately (see RtUnit's k-NN constructor) and
 *     returns bit-identical results.
 *
 * Exactness contract: pruning only ever skips a subtree whose 3-D
 * lower bound (a true lower bound of every member's full-dimension
 * distance, since the remaining dimensions contribute nonnegatively)
 * strictly exceeds the current k-th best score with kKnnPruneSlack of
 * headroom for FP32 beat rounding — so the result set is the exact
 * k smallest (score, id) pairs, identical to the brute-force
 * core::golden::knnScan, no matter how much is pruned or in what
 * order candidates complete. The cosine metric has no valid box bound
 * in the 3-D proxy space, so cosine queries visit every leaf (still
 * exact, just unpruned); the radius-shrink early-out is Euclidean
 * only.
 */
#ifndef RAYFLEX_BVH_KNN_HH
#define RAYFLEX_BVH_KNN_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "bvh/builder.hh"
#include "bvh/scene.hh"
#include "core/golden.hh"
#include "core/io_spec.hh"
#include "core/stages.hh"

namespace rayflex::bvh
{

/** Distance metric of one k-NN query (selects the datapath opcode). */
enum class KnnMetric : uint8_t {
    /** Squared Euclidean distance, 16 dimensions per beat. */
    Euclidean,
    /** Angular distance 1 - cos(q, c), 8 dimensions per beat. The
     *  query norm is a positive per-query constant and cancels in the
     *  ranking, so the score uses only the datapath's dot and
     *  candidate-norm accumulators (core::golden::knnAngularScore). */
    Cosine,
};

/** One k-NN query: a point, how many neighbors, which metric. The
 *  point must have exactly KnnIndex::dims coordinates. */
struct KnnQuery
{
    std::vector<float> point;
    uint32_t k = 1;
    KnnMetric metric = KnnMetric::Euclidean;
};

/** A scored neighbor (shared with the golden reference). */
using KnnNeighbor = core::golden::KnnNeighbor;

/** Result of one query: the k nearest neighbors sorted ascending by
 *  (score, id) — ties at equal distance order by id, which makes the
 *  result a pure function of the point set and never of traversal or
 *  completion order. Shorter than k when the index holds fewer
 *  points. */
struct KnnResult
{
    std::vector<KnnNeighbor> neighbors;

    friend bool operator==(const KnnResult &,
                           const KnnResult &) = default;
};

/** k-NN traversal statistics. Lives inside RtUnitStats (cycle model)
 *  and stands alone for the functional KnnTraversal; all-zero for ray
 *  workloads. */
struct KnnStats
{
    uint64_t queries = 0;        ///< queries completed
    uint64_t candidates = 0;     ///< point distances evaluated
    uint64_t distance_beats = 0; ///< Euclidean + cosine beats issued
    uint64_t nodes_visited = 0;  ///< internal nodes expanded
    uint64_t leaves_visited = 0; ///< leaves fetched
    uint64_t pruned = 0;         ///< frontier items cut by the radius
    uint64_t frontier_peak = 0;  ///< priority-queue high-water mark

    /** Accumulate another run's counters: sums except the frontier
     *  high-water mark, which takes the maximum. Both are commutative
     *  and associative, so sharded aggregation is order-independent
     *  (the same contract as the rest of RtUnitStats). */
    KnnStats &
    merge(const KnnStats &o)
    {
        queries += o.queries;
        candidates += o.candidates;
        distance_beats += o.distance_beats;
        nodes_visited += o.nodes_visited;
        leaves_visited += o.leaves_visited;
        pruned += o.pruned;
        frontier_peak =
            frontier_peak > o.frontier_peak ? frontier_peak
                                            : o.frontier_peak;
        return *this;
    }

    friend bool operator==(const KnnStats &, const KnnStats &) = default;
};

/** The searchable point cloud: the unmodified 4-wide BVH over
 *  degenerate proxy triangles plus the full-dimension coordinates.
 *  bvh.tris[i].id indexes `points` (the caller's order); the reported
 *  neighbor ids are the caller's DataPoint::id labels, which must be
 *  unique for the tie-ordering contract to be meaningful. */
struct KnnIndex
{
    Bvh4 bvh;                      ///< proxy BVH; leaves are candidates
    std::vector<DataPoint> points; ///< caller order, indexed by tris.id
    unsigned dims = 0;             ///< coordinates per point
};

/** Build a k-NN index over a point cloud. Every point must have the
 *  same nonzero dimension count (throws std::invalid_argument
 *  otherwise); an empty cloud yields an empty index every query
 *  answers with zero neighbors. */
KnnIndex buildKnnIndex(std::vector<DataPoint> points,
                       const BuildParams &params = {});

/** Beats per candidate distance job. */
size_t knnBeatsPerJob(size_t dims, KnnMetric metric);

/**
 * The datapath beats of one query-vs-candidate distance job — the
 * single source of truth for beat packing (mask covers exactly the
 * valid dimensions of each chunk, reset_accumulator set on the last
 * beat only), shared by the functional traversal, the cycle-accurate
 * RT unit, examples/knn_search.cpp and the golden-pinning tests.
 */
std::vector<core::DatapathInput> knnJobBeats(const float *query,
                                             const float *candidate,
                                             size_t dims,
                                             KnnMetric metric,
                                             uint64_t tag);

/** Squared point-to-box lower bound in the 3-D proxy space, computed
 *  in double from the FP32 inputs. A true lower bound of every member
 *  point's full-dimension squared distance (missing dimensions only
 *  add), so pruning against it is exact for the Euclidean metric. */
double knnBoxLowerBound(const Aabb &box, const float *query,
                        size_t dims);

/** Relative headroom the pruning test concedes to FP32 beat rounding:
 *  the datapath's accumulated score can undershoot the real-valued
 *  distance by at most ~dims * 2^-24 relative, so a subtree is pruned
 *  only when its lower bound clears the radius by more than this. */
inline constexpr double kKnnPruneSlack = 1e-5;

/** True when a frontier item at lower bound `lb` cannot contain any
 *  neighbor better than the current k-th best score `radius`. */
inline bool
knnPrunable(double lb, float radius)
{
    return lb * (1.0 - kKnnPruneSlack) > double(radius);
}

/** One frontier entry of the best-first walk: a subtree (or leaf) and
 *  its lower bound. The insertion sequence number breaks lower-bound
 *  ties, so the visit order — and with it every statistic — is a pure
 *  function of the query, never of container internals. Shared by the
 *  functional KnnTraversal and the cycle-accurate RtUnit so the two
 *  walks cannot diverge structurally. */
struct KnnFrontierItem
{
    double lb = 0.0;
    bool is_leaf = false;
    uint32_t index = 0; ///< node index, or first-triangle index
    uint32_t count = 0; ///< triangle count when leaf
    uint64_t seq = 0;
};

/** Min-heap comparator: true when `a` is visited after `b`. */
struct KnnFrontierAfter
{
    bool
    operator()(const KnnFrontierItem &a, const KnnFrontierItem &b) const
    {
        return a.lb != b.lb ? a.lb > b.lb : a.seq > b.seq;
    }
};

/** Bounded best-k set ordered by (score, id). The kept set is a pure
 *  function of the offered multiset — offer order never matters —
 *  which is what keeps out-of-order candidate completion in the
 *  cycle-accurate unit bit-identical to the sequential scan. */
class KnnTopK
{
  public:
    KnnTopK() = default;

    /** Start a query keeping the best `k`. */
    void
    reset(size_t k)
    {
        k_ = k;
        heap_.clear();
    }

    void offer(float score, uint32_t id);

    bool full() const { return heap_.size() >= k_; }

    /** Current k-th best score: the shrinking search radius. +inf
     *  until k candidates have been seen. */
    float
    radius() const
    {
        return full() && k_ > 0
                   ? heap_.front().score
                   : std::numeric_limits<float>::infinity();
    }

    /** The kept neighbors sorted ascending by (score, id). */
    std::vector<KnnNeighbor> sorted() const;

  private:
    size_t k_ = 0;
    std::vector<KnnNeighbor> heap_; ///< max-heap on (score, id)
};

/**
 * The functional k-NN engine: same node visits, same pruning bound and
 * bit-identical scores as the cycle-accurate RT unit, without timing.
 * Statistics accumulate over all queries since construction.
 */
class KnnTraversal
{
  public:
    explicit KnnTraversal(const KnnIndex &index) : index_(index) {}

    /** Exact k nearest neighbors of one query.
     *  @throws std::invalid_argument when the query dimension does not
     *          match the index. */
    KnnResult search(const KnnQuery &query);

    const KnnStats &stats() const { return stats_; }

  private:
    const KnnIndex &index_;
    KnnStats stats_;
    core::DistanceAccumulators acc_;
};

} // namespace rayflex::bvh

#endif // RAYFLEX_BVH_KNN_HH
