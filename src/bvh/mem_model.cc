/**
 * @file
 * NodeCache implementation.
 *
 * Line indexing uses plain division/modulo rather than bit shifts, so
 * line_bytes and sets need not be powers of two; any positive geometry
 * is a valid cache and any zero dimension degenerates to a cache that
 * misses every access without ever holding a line.
 */
#include "bvh/mem_model.hh"

namespace rayflex::bvh
{

NodeCache::NodeCache(const NodeCacheConfig &cfg) : cfg_(cfg)
{
    lines_.resize(size_t(cfg_.sets) * cfg_.ways);
}

void
NodeCache::reset()
{
    lines_.assign(lines_.size(), Line{});
    tick_ = 0;
    stats_ = {};
}

bool
NodeCache::touchLine(uint64_t line)
{
    Line *set = lines_.data() + size_t(line % cfg_.sets) * cfg_.ways;
    ++tick_;

    Line *victim = set;
    for (uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &l = set[w];
        if (l.valid && l.tag == line) {
            l.last_used = tick_;
            ++stats_.hits;
            return true;
        }
        // Victim preference: first invalid way, else the least recently
        // used one; ties break toward the lowest way index, keeping
        // replacement a pure function of the access sequence.
        if (!victim->valid)
            continue;
        if (!l.valid || l.last_used < victim->last_used)
            victim = &l;
    }

    ++stats_.misses;
    if (victim->valid)
        ++stats_.evictions;
    victim->tag = line;
    victim->last_used = tick_;
    victim->valid = true;
    return false;
}

unsigned
NodeCache::access(uint64_t addr, uint32_t bytes)
{
    // Per-missed-line charge: hit_latency for the access itself plus
    // one fill penalty per missed line, so the latency agrees with the
    // hit/miss counters on what an access is (a K-line fetch is K line
    // touches, not one). A non-positive penalty (miss <= hit) charges
    // a uniform hit_latency, preserving the FixedLatency-equivalence
    // configuration.
    const unsigned fill = cfg_.miss_latency > cfg_.hit_latency
                              ? cfg_.miss_latency - cfg_.hit_latency
                              : 0;
    if (bytes == 0)
        bytes = 1;
    if (cfg_.line_bytes == 0 || cfg_.sets == 0 || cfg_.ways == 0) {
        // Zero-capacity degenerate: nothing can be resident, but the
        // miss counter keeps its line-fill semantics — one miss per
        // touched line (one per access when lines are unaddressable).
        const uint64_t touched =
            cfg_.line_bytes ? (addr + bytes - 1) / cfg_.line_bytes -
                                  addr / cfg_.line_bytes + 1
                            : 1;
        stats_.misses += touched;
        return cfg_.hit_latency + unsigned(touched) * fill;
    }
    const uint64_t first = addr / cfg_.line_bytes;
    const uint64_t last = (addr + bytes - 1) / cfg_.line_bytes;
    unsigned missed = 0;
    for (uint64_t line = first; line <= last; ++line)
        missed += touchLine(line) ? 0 : 1;
    return cfg_.hit_latency + missed * fill;
}

std::unique_ptr<MemoryModel>
makeMemoryModel(MemBackend backend, unsigned fixed_latency,
                const NodeCacheConfig &cache)
{
    if (backend == MemBackend::NodeCache)
        return std::make_unique<NodeCache>(cache);
    return std::make_unique<FixedLatencyMemory>(fixed_latency);
}

} // namespace rayflex::bvh
