/**
 * @file
 * NodeCache and SharedL2 implementations.
 *
 * Line indexing uses plain division/modulo rather than bit shifts, so
 * line_bytes, sets and banks need not be powers of two; any positive
 * geometry is a valid cache and any zero dimension degenerates to a
 * cache that misses every access without ever holding a line.
 */
#include "bvh/mem_model.hh"

#include <algorithm>

namespace rayflex::bvh
{

NodeCache::NodeCache(const NodeCacheConfig &cfg) : cfg_(cfg)
{
    lines_.resize(size_t(cfg_.sets) * cfg_.ways);
}

void
NodeCache::reset()
{
    lines_.assign(lines_.size(), Line{});
    tick_ = 0;
    stats_ = {};
}

bool
NodeCache::touchLine(uint64_t line)
{
    Line *set = lines_.data() + size_t(line % cfg_.sets) * cfg_.ways;
    ++tick_;

    Line *victim = set;
    for (uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &l = set[w];
        if (l.valid && l.tag == line) {
            l.last_used = tick_;
            ++stats_.hits;
            return true;
        }
        // Victim preference: first invalid way, else the least recently
        // used one; ties break toward the lowest way index, keeping
        // replacement a pure function of the access sequence.
        if (!victim->valid)
            continue;
        if (!l.valid || l.last_used < victim->last_used)
            victim = &l;
    }

    ++stats_.misses;
    if (victim->valid)
        ++stats_.evictions;
    victim->tag = line;
    victim->last_used = tick_;
    victim->valid = true;
    return false;
}

unsigned
NodeCache::access(uint64_t addr, uint32_t bytes, uint64_t now,
                  AccessBreakdown *bd)
{
    // Per-missed-line charge: hit_latency for the access itself plus
    // one fill penalty per missed line, so the latency agrees with the
    // hit/miss counters on what an access is (a K-line fetch is K line
    // touches, not one). A non-positive penalty (miss <= hit) charges
    // a uniform hit_latency, preserving the FixedLatency-equivalence
    // configuration.
    const unsigned fill = cfg_.miss_latency > cfg_.hit_latency
                              ? cfg_.miss_latency - cfg_.hit_latency
                              : 0;
    if (bytes == 0)
        bytes = 1;
    if (cfg_.line_bytes == 0 || cfg_.sets == 0 || cfg_.ways == 0) {
        // Zero-capacity degenerate: nothing can be resident, but the
        // miss counter keeps its line-fill semantics — one miss per
        // touched line (one per access when lines are unaddressable).
        const uint64_t touched =
            cfg_.line_bytes ? (addr + bytes - 1) / cfg_.line_bytes -
                                  addr / cfg_.line_bytes + 1
                            : 1;
        stats_.misses += touched;
        if (next_) {
            // Everything misses here, so the whole range goes to the
            // L2 as one fill (it splits into its own lines and takes
            // the slowest).
            const unsigned below =
                next_->fill(addr, bytes, now, unit_, bd);
            if (bd)
                bd->l1 = cfg_.hit_latency;
            return cfg_.hit_latency + below;
        }
        const unsigned lat =
            cfg_.hit_latency + unsigned(touched) * fill;
        if (bd)
            bd->l1 = lat;
        return lat;
    }
    const uint64_t first = addr / cfg_.line_bytes;
    const uint64_t last = (addr + bytes - 1) / cfg_.line_bytes;
    if (next_) {
        // Chip mode: missed L1 lines fill in parallel through the L2's
        // banks, so the access costs the slowest fill, not the sum.
        // The breakdown is the slowest line's: that fill is the one
        // gating the access.
        unsigned worst = 0;
        AccessBreakdown worst_bd;
        for (uint64_t line = first; line <= last; ++line)
            if (!touchLine(line)) {
                AccessBreakdown line_bd;
                const unsigned lat = next_->fill(
                    line * uint64_t(cfg_.line_bytes), cfg_.line_bytes,
                    now, unit_, bd ? &line_bd : nullptr);
                if (lat > worst) {
                    worst = lat;
                    worst_bd = line_bd;
                }
            }
        if (bd) {
            *bd = worst_bd;
            bd->l1 = cfg_.hit_latency;
        }
        return cfg_.hit_latency + worst;
    }
    unsigned missed = 0;
    for (uint64_t line = first; line <= last; ++line)
        missed += touchLine(line) ? 0 : 1;
    const unsigned lat = cfg_.hit_latency + missed * fill;
    if (bd)
        bd->l1 = lat;
    return lat;
}

SharedL2::SharedL2(const L2Config &cfg) : cfg_(cfg)
{
    const size_t n_banks = cfg_.banks ? cfg_.banks : 1;
    banks_.resize(n_banks);
    for (Bank &b : banks_)
        b.lines.resize(size_t(cfg_.sets) * cfg_.ways);
    stats_.resize(n_banks);
}

void
SharedL2::reset()
{
    for (Bank &b : banks_) {
        b.lines.assign(b.lines.size(), Line{});
        b.inflight.clear();
        b.free_at = 0;
        b.tick = 0;
    }
    stats_.assign(stats_.size(), L2Stats{});
}

L2Stats
SharedL2::totals() const
{
    L2Stats t;
    for (const L2Stats &s : stats_)
        t.merge(s);
    return t;
}

unsigned
SharedL2::fillLine(uint64_t line, uint64_t arrival, unsigned unit,
                   unsigned *queue_out, unsigned *fill_out)
{
    const size_t bank_idx = size_t(line % banks_.size());
    Bank &bank = banks_[bank_idx];
    L2Stats &st = stats_[bank_idx];

    // Fills whose data has arrived by now are done: their line is in
    // the array (installed at miss time), so late lookups hit there.
    std::erase_if(bank.inflight, [arrival](const Inflight &e) {
        return e.done <= arrival;
    });

    // An outstanding fill of the same line absorbs this lookup: it
    // completes when the fill does (never before this request's own
    // arrival), pays no DRAM access and no bank occupancy. The whole
    // merged wait is "fill" for attribution: the requester is waiting
    // on the in-flight DRAM fill, not on the bank's queue.
    for (const Inflight &e : bank.inflight)
        if (e.line == line) {
            ++st.merges;
            if (e.unit != unit)
                ++st.cross_unit_merges;
            const unsigned lat =
                unsigned(std::max(e.done, arrival) - arrival);
            *queue_out = 0;
            *fill_out = lat;
            return lat;
        }

    // Single-server bank queue: service starts when the bank frees.
    const uint64_t start = std::max(arrival, bank.free_at);
    st.queue_stalls += start - arrival;
    bank.free_at = start + cfg_.bank_cycles_per_request;
    *queue_out = unsigned(start - arrival);
    if (trace_) {
        trace_->record({arrival, uint32_t(bank_idx),
                        obs::TraceEvent::BankEnqueue, unit,
                        start - arrival});
        trace_->record({start, uint32_t(bank_idx),
                        obs::TraceEvent::BankDequeue, unit, 0});
        // Queue depth at this arrival: requests the bank has accepted
        // but not started by then (service is one request every
        // bank_cycles_per_request cycles, so the backlog is the lead
        // of free_at over the clock in service quanta).
        const uint64_t lead =
            bank.free_at > arrival ? bank.free_at - arrival : 0;
        const uint64_t depth =
            cfg_.bank_cycles_per_request
                ? (lead + cfg_.bank_cycles_per_request - 1) /
                      cfg_.bank_cycles_per_request
                : lead;
        trace_->record({arrival, uint32_t(bank_idx),
                        obs::TraceEvent::BankQueueDepth, depth, 0});
    }

    if (cfg_.sets == 0 || cfg_.ways == 0) {
        // Zero-capacity degenerate: every lookup is a DRAM fill and
        // nothing merges (no line is ever resident or tracked).
        ++st.misses;
        *fill_out = cfg_.miss_latency;
        return unsigned(start + cfg_.miss_latency - arrival);
    }

    Line *set =
        bank.lines.data() + size_t(line % cfg_.sets) * cfg_.ways;
    ++bank.tick;
    Line *victim = set;
    for (uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &l = set[w];
        if (l.valid && l.tag == line) {
            l.last_used = bank.tick;
            ++st.hits;
            *fill_out = cfg_.hit_latency;
            return unsigned(start + cfg_.hit_latency - arrival);
        }
        // Same victim preference as NodeCache: first invalid way, else
        // least recently used, ties toward the lowest way index.
        if (!victim->valid)
            continue;
        if (!l.valid || l.last_used < victim->last_used)
            victim = &l;
    }

    ++st.misses;
    victim->tag = line;
    victim->last_used = bank.tick;
    victim->valid = true;
    const uint64_t done = start + cfg_.miss_latency;
    bank.inflight.push_back({line, done, unit});
    *fill_out = cfg_.miss_latency;
    return unsigned(done - arrival);
}

unsigned
SharedL2::fill(uint64_t addr, uint32_t bytes, uint64_t now,
               unsigned unit, AccessBreakdown *bd)
{
    if (bytes == 0)
        bytes = 1;
    // Unaddressable lines: the whole range is one DRAM-class fill keyed
    // by its base address.
    const uint64_t first =
        cfg_.line_bytes ? addr / cfg_.line_bytes : addr;
    const uint64_t last =
        cfg_.line_bytes ? (addr + bytes - 1) / cfg_.line_bytes : addr;

    const size_t n_banks = banks_.size();
    const size_t stop = size_t(unit) % n_banks; ///< unit's ring stop
    unsigned worst = 0;
    AccessBreakdown worst_bd;
    for (uint64_t line = first; line <= last; ++line) {
        // Ring distance between the unit's stop and the line's bank,
        // paid in hop_latency cycles on the request AND response path.
        const size_t bank_idx = size_t(line % n_banks);
        const size_t d = stop > bank_idx ? stop - bank_idx
                                         : bank_idx - stop;
        const size_t hops = std::min(d, n_banks - d);
        stats_[bank_idx].hops += 2 * hops;
        const uint64_t ride = uint64_t(hops) * cfg_.hop_latency;
        const uint64_t arrival = now + ride;
        unsigned queue = 0, service = 0;
        const unsigned at_bank =
            fillLine(line, arrival, unit, &queue, &service);
        const unsigned total = unsigned(ride + at_bank + ride);
        if (total >= worst) {
            // >= so a zero-latency fill still yields a breakdown.
            worst = total;
            worst_bd = {0, unsigned(2 * ride), queue, service};
        }
    }
    if (bd)
        *bd = worst_bd;
    return worst;
}

std::unique_ptr<MemoryModel>
makeMemoryModel(MemBackend backend, unsigned fixed_latency,
                const NodeCacheConfig &cache)
{
    if (backend == MemBackend::NodeCache)
        return std::make_unique<NodeCache>(cache);
    return std::make_unique<FixedLatencyMemory>(fixed_latency);
}

} // namespace rayflex::bvh
