/**
 * @file
 * Pluggable memory models for the RT unit's node-fetch path.
 *
 * The paper models only the intersection-test datapath and defers
 * memory scheduling to the enclosing RT unit; bvh::RtUnit stands in for
 * that unit and originally charged one flat latency for every BVH
 * fetch, which made its stall_on_memory counter insensitive to the
 * working-set size. This module is the seam that fixes that: the unit
 * asks a MemoryModel for the latency of each fetch, and two backends
 * are provided —
 *
 *   * FixedLatencyMemory reproduces the original flat-latency timing
 *     bit-for-bit (every access costs the same number of cycles), and
 *   * NodeCache models a small set-associative cache over the BVH
 *     address space (configurable line size, sets, ways and hit/miss
 *     latencies) with LRU replacement and per-run CacheStats.
 *
 * One MemoryModel instance is the unit's SHARED L1: every ray-buffer
 * slot (scalar entry or packet) of an RtUnit fetches through the same
 * model, so slots contend for the same lines. The MshrFile in this
 * header is the bounded outstanding-request file that fronts that L1
 * (RtUnitConfig::mshrs): duplicate in-flight fetches of the same
 * object merge onto one entry and a full file back-pressures
 * requesters, which is what makes the contention visible in the
 * timing instead of every slot enjoying a private stream.
 *
 * The memory path has a second tier. SharedL2 is the chip-level cache
 * BEHIND the per-unit L1s (sim::EngineConfig::chip): a banked,
 * set-associative LRU cache, address-interleaved by L2 line, with a
 * per-bank service queue, a ring hop-latency model between units and
 * banks, and an MSHR-style in-flight merge so two UNITS filling the
 * same line pay one DRAM miss — the cross-unit analogue of the
 * per-unit MshrFile merge. An L1 with an attached next level
 * (MemoryModel::attachNextLevel) routes every missed line through
 * SharedL2::fill instead of charging its flat miss penalty; with no
 * next level attached (the default), every backend terminates at its
 * own latency, bit-for-bit the pre-chip behavior.
 *
 * Addresses are synthetic but stable: nodes and triangles live at
 * fixed strides in a flat address space (see kNodeStrideBytes /
 * kTriStrideBytes and RtUnit's address map), so cache behavior depends
 * only on the traversal order and the BVH shape — never on host
 * pointers — and stays deterministic across runs and worker counts.
 *
 * CacheStats merges with commutative-associative sums exactly like
 * RtUnitStats, so sim::Engine's sharded workers can aggregate cache
 * counters batch-by-batch in any order and always produce the same
 * totals.
 */
#ifndef RAYFLEX_BVH_MEM_MODEL_HH
#define RAYFLEX_BVH_MEM_MODEL_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "obs/trace.hh"

namespace rayflex::bvh
{

/** Where the cycles of one access went, phase by phase. The four
 *  fields always sum to the returned latency; backends without a
 *  chip-level tier report everything in `l1`. The RT unit turns these
 *  into absolute phase boundaries on each in-flight request, which is
 *  what the top-down stall attribution (obs::SlotAccounting)
 *  classifies against. Both interconnect directions fold into the one
 *  `ring` phase (charged up front), so the layout is an attribution of
 *  the latency, not a literal timeline. */
struct AccessBreakdown
{
    unsigned l1 = 0;    ///< L1 lookup / flat-memory fill
    unsigned ring = 0;  ///< interconnect hops, request + response
    unsigned queue = 0; ///< L2 bank-queue wait
    unsigned fill = 0;  ///< L2 service / DRAM fill / in-flight merge
};

/** Byte stride of one WideNode in the synthetic BVH address space:
 *  four children of 32 bytes each (six bounds floats + index + count). */
inline constexpr uint32_t kNodeStrideBytes = 128;

/** Byte stride of one SceneTriangle: three 12-byte vertices plus the
 *  id, padded to a 16-byte boundary. */
inline constexpr uint32_t kTriStrideBytes = 48;

/** Per-run cache counters. All fields are sums of uint64 counts, so
 *  merging is commutative and associative like RtUnitStats: aggregates
 *  over many batches are identical no matter which worker ran which
 *  batch or in what order merges happen. */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;    ///< line fills (compulsory + capacity/conflict)
    uint64_t evictions = 0; ///< valid lines displaced by a fill

    /** Fraction of line touches that hit; 0 when nothing was accessed
     *  (including every FixedLatencyMemory run). */
    double
    hitRate() const
    {
        const uint64_t total = hits + misses;
        return total ? double(hits) / double(total) : 0.0;
    }

    CacheStats &
    merge(const CacheStats &o)
    {
        hits += o.hits;
        misses += o.misses;
        evictions += o.evictions;
        return *this;
    }

    /** Counters accumulated since an `earlier` snapshot of the same
     *  model. All fields are monotone, so the difference is the
     *  activity of the interval — how a shared (warm-cache) model's
     *  per-run stats are carved out of its cumulative totals. */
    CacheStats
    deltaSince(const CacheStats &earlier) const
    {
        return {hits - earlier.hits, misses - earlier.misses,
                evictions - earlier.evictions};
    }

    friend bool operator==(const CacheStats &,
                           const CacheStats &) = default;
};

/** Per-run MSHR-file counters (RtUnitConfig::mshrs). All fields are
 *  sums of uint64 counts, so merging is commutative and associative
 *  like the rest of the stats structs. All-zero when the file is
 *  disabled (mshrs == 0). */
struct MshrStats
{
    uint64_t allocations = 0; ///< fetches that went to memory
    uint64_t merges = 0;      ///< fetches folded onto an in-flight entry
    uint64_t stalls_full = 0; ///< issue attempts refused: file was full

    MshrStats &
    merge(const MshrStats &o)
    {
        allocations += o.allocations;
        merges += o.merges;
        stalls_full += o.stalls_full;
        return *this;
    }

    friend bool operator==(const MshrStats &,
                           const MshrStats &) = default;
};

/**
 * Bounded outstanding-request file fronting the unit's shared L1.
 *
 * Each entry tracks one in-flight fetch, keyed by its target address
 * (the synthetic address map gives every node and leaf a unique base
 * address, so the key identifies the object). A second requester for
 * the same address MERGES: it completes when the in-flight fill does,
 * without touching the L1 or consuming memory-issue bandwidth — two
 * packets fetching the same node pay one miss. When every entry is
 * busy, new allocations are refused and the requester must retry
 * (NeedFetch back-pressure in the RT unit).
 *
 * The file is a pure function of the (request, retire) call sequence —
 * no clocks of its own, no host pointers — so it inherits the
 * engine's bit-identical-across-worker-counts contract. Entry count 0
 * disables the file entirely (the legacy unbounded path: every fetch
 * goes straight to the MemoryModel).
 */
class MshrFile
{
  public:
    explicit MshrFile(unsigned entries) : entries_(entries) {}

    /** True when the file models anything (mshrs > 0). */
    bool enabled() const { return entries_ > 0; }

    /** One in-flight fill: its merge key, completion cycle, and the
     *  absolute phase boundaries of the fill's latency (from its
     *  AccessBreakdown at allocation) — a merged requester copies
     *  them, since it waits on the same fill through the same phases. */
    struct Entry
    {
        uint64_t addr = 0;
        uint64_t done_cycle = 0;
        uint64_t l1_until = 0;    ///< end of the L1 phase
        uint64_t ring_until = 0;  ///< end of the interconnect phase
        uint64_t queue_until = 0; ///< end of the bank-queue phase
    };

    /** In-flight fill whose target matches `addr`, if any.
     *  @return completion cycle of the matching entry, or 0. Fills
     *  complete strictly after their allocation cycle, so 0 is never a
     *  legal completion and doubles as "no match". */
    uint64_t
    inflightCompletion(uint64_t addr) const
    {
        for (const Entry &e : inflight_)
            if (e.addr == addr)
                return e.done_cycle;
        return 0;
    }

    /** The in-flight entry matching `addr`, or nullptr. Like
     *  inflightCompletion but with the phase boundaries along — what a
     *  merged requester copies into its own request record. The
     *  pointer is invalidated by the next allocate/retire/reset. */
    const Entry *
    lookup(uint64_t addr) const
    {
        for (const Entry &e : inflight_)
            if (e.addr == addr)
                return &e;
        return nullptr;
    }

    /** True when no entry is free for a new allocation. */
    bool full() const { return inflight_.size() >= entries_; }

    /** Entries currently in flight (the MSHR residency counter). */
    size_t inflightCount() const { return inflight_.size(); }

    /** Track a new fill of `addr` completing at `done_cycle`, with the
     *  absolute phase boundaries of its latency (defaulted to
     *  done_cycle: an all-L1 fill). The caller checks full() and
     *  lookup() first. */
    void
    allocate(uint64_t addr, uint64_t done_cycle, uint64_t l1_until = 0,
             uint64_t ring_until = 0, uint64_t queue_until = 0)
    {
        inflight_.push_back({addr, done_cycle,
                             l1_until ? l1_until : done_cycle,
                             ring_until ? ring_until : done_cycle,
                             queue_until ? queue_until : done_cycle});
    }

    /** Release every entry whose fill has completed by `now` (same
     *  done_cycle <= now rule the RT unit's response queue uses, so an
     *  entry frees exactly when its requester is served). */
    void
    retire(uint64_t now)
    {
        std::erase_if(inflight_, [now](const Entry &e) {
            return e.done_cycle <= now;
        });
    }

    /** Drop all in-flight entries (start of an RtUnit::run). */
    void reset() { inflight_.clear(); }

  private:
    unsigned entries_;
    std::vector<Entry> inflight_;
};

/** Per-run counters of one SharedL2 bank (or of a whole L2 when the
 *  per-bank vectors are summed). All fields are sums of uint64 counts,
 *  so merging is commutative and associative like the rest of the
 *  stats structs — chip batches aggregate bank-by-bank in any order. */
struct L2Stats
{
    uint64_t hits = 0;   ///< line lookups served from the L2 array
    uint64_t misses = 0; ///< line fills that went to DRAM
    uint64_t merges = 0; ///< lookups folded onto an in-flight fill
    /** Subset of `merges` where the requesting unit differs from the
     *  unit whose miss started the fill — two units walking the same
     *  subtree paying one DRAM miss. */
    uint64_t cross_unit_merges = 0;
    uint64_t queue_stalls = 0; ///< cycles requests waited on a busy bank
    uint64_t hops = 0;         ///< interconnect hops (request + response)

    /** Fraction of line lookups that avoided DRAM (array hits plus
     *  in-flight merges); 0 when nothing was accessed. */
    double
    hitRate() const
    {
        const uint64_t total = hits + misses + merges;
        return total ? double(hits + merges) / double(total) : 0.0;
    }

    L2Stats &
    merge(const L2Stats &o)
    {
        hits += o.hits;
        misses += o.misses;
        merges += o.merges;
        cross_unit_merges += o.cross_unit_merges;
        queue_stalls += o.queue_stalls;
        hops += o.hops;
        return *this;
    }

    friend bool operator==(const L2Stats &, const L2Stats &) = default;
};

/** Geometry and timing of the chip-level SharedL2 tier. */
struct L2Config
{
    uint32_t line_bytes = 64; ///< bytes per L2 line
    uint32_t banks = 4;       ///< address-interleaved banks (by line)
    uint32_t sets = 128;      ///< sets PER BANK
    uint32_t ways = 8;        ///< lines per set
    /** Cycles from bank service start to data for a resident line. */
    unsigned hit_latency = 8;
    /** Cycles from bank service start to data for a DRAM fill. */
    unsigned miss_latency = 80;
    /** Cycles per interconnect hop between a unit's ring stop and a
     *  bank's; charged on both the request and the response path. */
    unsigned hop_latency = 1;
    /** Bank occupancy per serviced request: a bank accepts a new
     *  request at most once every this many cycles; later arrivals
     *  queue (L2Stats::queue_stalls counts the waited cycles). */
    unsigned bank_cycles_per_request = 1;

    /** Total capacity across all banks; 0 for any degenerate
     *  dimension (a zero-capacity L2 is legal: every fill misses). */
    uint64_t
    capacityBytes() const
    {
        return uint64_t(line_bytes) * banks * sets * ways;
    }

    /** This L2's capacity divided evenly across `units` PRIVATE
     *  copies: same line size, banks, ways and timings, sets / units
     *  sets per bank — so units private L2s of the returned geometry
     *  total exactly capacityBytes(). This is the iso-capacity
     *  L2Mode::Private baseline helper: callers used to divide
     *  l2cfg.sets by hand, silently truncating when it did not divide.
     *  @throws std::invalid_argument when units == 0 or sets is not a
     *          multiple of units (a truncated split would compare
     *          unequal capacities and call it an architecture win). */
    L2Config
    dividedAcross(unsigned units) const
    {
        if (units == 0)
            throw std::invalid_argument(
                "L2Config::dividedAcross: units must be >= 1");
        if (sets % units != 0)
            throw std::invalid_argument(
                "L2Config::dividedAcross: sets must divide evenly "
                "across units (an uneven split silently changes the "
                "total capacity under comparison)");
        L2Config per = *this;
        per.sets = sets / units;
        return per;
    }

    friend bool operator==(const L2Config &, const L2Config &) = default;
};

/** The canonical probe L2 shared by BM_UnitScalingSweep, the
 *  render_scene chip probe and the chip tests: 128 KiB as 4 banks x
 *  64 sets x 8 ways x 64-byte lines, default timings. Sized so the
 *  bench scene's working set thrashes a per-unit 4 KiB L1 but largely
 *  fits the L2 — the regime where sharing wins. */
inline constexpr L2Config kProbeL2_128KiB{
    /*line_bytes=*/64, /*banks=*/4, /*sets=*/64, /*ways=*/8};

/**
 * Chip-level banked cache behind the per-unit L1s.
 *
 * Address-interleaved by L2 line across `banks` banks, each bank a
 * set-associative LRU array (same deterministic lowest-way tie-break
 * as NodeCache) with a single-server service queue. Units and banks
 * sit on a ring: a request from unit u to bank b pays
 * min(|u%B - b|, B - |u%B - b|) hops each way at hop_latency cycles
 * per hop. A fill that misses the array goes to DRAM and is recorded
 * in-flight; a second lookup of the same line while the fill is
 * outstanding MERGES onto it (completing no earlier than the fill,
 * paying no DRAM access and no bank occupancy) — when the two
 * requesters are different units that is a cross_unit_merge, the
 * chip-level analogue of the MshrFile merge.
 *
 * The model is a pure function of the (addr, bytes, now, unit) call
 * sequence — no clocks of its own, no host pointers — so a chip of
 * units stepping in deterministic lock-step over one SharedL2 inherits
 * the engine's bit-identical-across-worker-counts contract.
 */
class SharedL2
{
  public:
    explicit SharedL2(const L2Config &cfg);

    /** Latency in cycles, from `now`, of filling the `bytes`-byte range
     *  at `addr` on behalf of `unit`. Touched L2 lines fill in parallel
     *  across their banks; the returned latency is the slowest line's
     *  (max, not sum), each including both interconnect directions.
     *  When `bd` is non-null it receives the slowest line's phase
     *  breakdown (ring / queue / fill summing to the return value;
     *  `l1` stays 0 — that phase belongs to the caller). */
    unsigned fill(uint64_t addr, uint32_t bytes, uint64_t now,
                  unsigned unit, AccessBreakdown *bd = nullptr);

    /** Emit bank enqueue/dequeue events and queue-depth counter
     *  samples to `sink` (nullptr — the default — disables emission
     *  entirely; the seam idiom of obs/trace.hh). Borrowed, not
     *  owned; outlives the runs it observes. */
    void setTraceSink(obs::TraceSink *sink) { trace_ = sink; }

    /** Per-bank counters accumulated since construction or reset(). */
    const std::vector<L2Stats> &bankStats() const { return stats_; }

    /** Sum of the per-bank counters. */
    L2Stats totals() const;

    /** Drop all cached state and counters. */
    void reset();

    const L2Config &config() const { return cfg_; }

  private:
    struct Line
    {
        uint64_t tag = 0;       ///< full line index (addr / line_bytes)
        uint64_t last_used = 0; ///< LRU clock value of the last touch
        bool valid = false;
    };

    /** One outstanding DRAM fill. */
    struct Inflight
    {
        uint64_t line = 0;
        uint64_t done = 0; ///< cycle the fill data arrives at the bank
        unsigned unit = 0; ///< unit whose miss started the fill
    };

    struct Bank
    {
        std::vector<Line> lines; ///< sets * ways, set-major
        std::vector<Inflight> inflight;
        uint64_t free_at = 0; ///< next cycle the bank can start service
        uint64_t tick = 0;    ///< LRU clock
    };

    /** Fill one line; @return cycles from `arrival` (at the bank) to
     *  data at the bank, excluding interconnect. `queue_out`/`fill_out`
     *  receive the queue-wait / service split of that latency. */
    unsigned fillLine(uint64_t line, uint64_t arrival, unsigned unit,
                      unsigned *queue_out, unsigned *fill_out);

    L2Config cfg_;
    std::vector<Bank> banks_;
    std::vector<L2Stats> stats_; ///< one entry per bank
    obs::TraceSink *trace_ = nullptr; ///< borrowed; null = disabled
};

/** Which MemoryModel backend an RT unit instantiates. */
enum class MemBackend : uint8_t {
    /** Flat per-fetch latency (RtUnitConfig::mem_latency); the
     *  original RT-unit timing, reproduced bit-for-bit. */
    FixedLatency,
    /** Set-associative node cache (NodeCacheConfig). */
    NodeCache,
};

/** Geometry and timing of the NodeCache backend. */
struct NodeCacheConfig
{
    uint32_t line_bytes = 64; ///< bytes per cache line
    uint32_t sets = 64;       ///< number of sets
    uint32_t ways = 4;        ///< lines per set
    unsigned hit_latency = 2; ///< cycles when every touched line hits
    /** Cycles of an access whose single touched line misses. An access
     *  spanning K lines is charged per missed line:
     *  hit_latency + misses * (miss_latency - hit_latency), so the
     *  latency agrees with what CacheStats counts (each touched line
     *  is one hit or one miss). miss_latency <= hit_latency degrades
     *  to a uniform hit_latency charge. */
    unsigned miss_latency = 20;

    /** Total capacity; 0 for any degenerate dimension (a zero-capacity
     *  cache is legal: every access misses, nothing is ever resident). */
    uint64_t
    capacityBytes() const
    {
        return uint64_t(line_bytes) * sets * ways;
    }

    friend bool operator==(const NodeCacheConfig &,
                           const NodeCacheConfig &) = default;
};

/** The canonical probe cache shared by the scene-size sweep
 *  (BM_NodeCacheSceneSweep), the render_scene memory probe and the
 *  monotonicity tests: 4 KiB as 16 sets x 4 ways x 64-byte lines,
 *  default hit/miss latencies. Small on purpose — real scenes outgrow
 *  it, which is the signal the sweep exists to show. */
inline constexpr NodeCacheConfig kProbeCache4KiB{
    /*line_bytes=*/64, /*sets=*/16, /*ways=*/4};

/**
 * The memory-path seam of the RT unit. One instance serves one unit;
 * implementations are deterministic functions of the access sequence,
 * which keeps the engine's bit-identical-across-thread-counts contract
 * intact (each worker's unit owns a private model).
 */
class MemoryModel
{
  public:
    virtual ~MemoryModel() = default;

    /** Latency in cycles of fetching the `bytes`-byte object at `addr`
     *  when the request is issued at cycle `now`. Called once per
     *  RT-unit fetch, in traversal order. Backends without an attached
     *  next level are pure functions of (addr, bytes) and ignore
     *  `now`; with a SharedL2 attached, `now` anchors bank queueing
     *  and in-flight merges on the chip clock. When `bd` is non-null
     *  it receives the phase breakdown of the returned latency (the
     *  four fields sum to it); filling it never changes the latency
     *  arithmetic — the breakdown is observation, not timing. */
    virtual unsigned access(uint64_t addr, uint32_t bytes, uint64_t now,
                            AccessBreakdown *bd) = 0;

    /** Convenience without a breakdown. */
    unsigned access(uint64_t addr, uint32_t bytes, uint64_t now)
    {
        return access(addr, bytes, now, nullptr);
    }

    /** Convenience for callers without a clock (tests, probes):
     *  equivalent to access(addr, bytes, 0). */
    unsigned access(uint64_t addr, uint32_t bytes)
    {
        return access(addr, bytes, 0, nullptr);
    }

    /** Route this L1's misses through a chip-level `l2` on behalf of
     *  `unit` (sim::Engine chip mode). Default: no second tier;
     *  backends that terminate at their own latency ignore the call.
     *  Pass nullptr to detach. The L2 is borrowed, not owned. */
    virtual void attachNextLevel(SharedL2 *l2, unsigned unit)
    {
        (void)l2;
        (void)unit;
    }

    /** Counters accumulated since construction or the last reset().
     *  Backends without cache state report all-zero stats. */
    virtual CacheStats stats() const { return {}; }

    /** Drop all cached state and counters (start of an RtUnit::run). */
    virtual void reset() {}
};

/** The original flat-latency backend: every access costs the same.
 *  The flat latency stands in for the whole memory system, so an
 *  attached next level is ignored (attachNextLevel's default). */
class FixedLatencyMemory final : public MemoryModel
{
  public:
    explicit FixedLatencyMemory(unsigned latency) : latency_(latency) {}

    using MemoryModel::access;
    unsigned access(uint64_t, uint32_t, uint64_t,
                    AccessBreakdown *bd) override
    {
        if (bd)
            bd->l1 = latency_;
        return latency_;
    }

  private:
    unsigned latency_;
};

/**
 * Set-associative cache with LRU replacement over the synthetic BVH
 * address space. A fetch touches every line overlapping
 * [addr, addr + bytes); it costs hit_latency when all touched lines
 * are resident, plus (miss_latency - hit_latency) per line that must
 * be filled, so a K-line leaf fetch that misses everywhere costs
 * proportionally more than one that misses a single line — the latency
 * and the CacheStats counters agree on what an "access" is. Fills
 * happen as part of the access, so a revisit hits. Replacement is
 * least-recently-used with a deterministic tie-break (lowest way), so
 * the model is a pure function of the access sequence.
 *
 * With a SharedL2 attached (chip mode) the flat per-line fill penalty
 * is replaced by the L2's answer: the access costs hit_latency plus
 * the slowest missed line's SharedL2::fill latency (missed lines fill
 * in parallel through their banks). Hit/miss/eviction accounting is
 * unchanged, so CacheStats means the same thing in both modes.
 */
class NodeCache final : public MemoryModel
{
  public:
    explicit NodeCache(const NodeCacheConfig &cfg);

    using MemoryModel::access;
    unsigned access(uint64_t addr, uint32_t bytes, uint64_t now,
                    AccessBreakdown *bd) override;
    void attachNextLevel(SharedL2 *l2, unsigned unit) override
    {
        next_ = l2;
        unit_ = unit;
    }
    CacheStats stats() const override { return stats_; }
    void reset() override;

    const NodeCacheConfig &config() const { return cfg_; }

  private:
    struct Line
    {
        uint64_t tag = 0;       ///< full line index (addr / line_bytes)
        uint64_t last_used = 0; ///< LRU clock value of the last touch
        bool valid = false;
    };

    /** Touch one line; fills on miss. @return true on hit. */
    bool touchLine(uint64_t line);

    NodeCacheConfig cfg_;
    std::vector<Line> lines_; ///< sets * ways, set-major
    uint64_t tick_ = 0;       ///< LRU clock
    CacheStats stats_;
    SharedL2 *next_ = nullptr; ///< borrowed chip-level tier, if any
    unsigned unit_ = 0;        ///< this L1's unit id on the ring
};

/** Instantiate the backend an RtUnitConfig selects. */
std::unique_ptr<MemoryModel>
makeMemoryModel(MemBackend backend, unsigned fixed_latency,
                const NodeCacheConfig &cache);

} // namespace rayflex::bvh

#endif // RAYFLEX_BVH_MEM_MODEL_HH
