/**
 * @file
 * Packet traversal implementation.
 *
 * Lifecycle of one work item, packet-wide: popNext() pops the shared
 * stack, applying the scalar pruning rule per lane (a lane whose best
 * hit already beats the item's entry distance is masked off, not the
 * whole item); the unit fetches the node or leaf once for the surviving
 * mask; fetchArrived() expands the item into datapath beats (one
 * ray-box beat per active lane, or one ray-triangle beat per
 * (triangle, active lane) pair, triangle-major so each lane sees the
 * leaf in leaf order); handleResult() folds results back in issue
 * order; completeItem() merges per-lane box results into child items
 * (mask = lanes whose slab test hit the child, pushed farthest-first
 * by minimum entry distance) and retires lanes whose pending work
 * dropped to zero.
 *
 * All decisions are pure functions of the admitted rays and the BVH:
 * no clocks, no host pointers, no randomness — the packet inherits the
 * engine's determinism contract unchanged.
 */
#include "bvh/packet.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

namespace rayflex::bvh
{

using namespace rayflex::core;
using fp::fromBits;

PacketTraversal::PacketTraversal(const Bvh4 &bvh, unsigned width,
                                 Mode mode, PacketStats *stats)
    : bvh_(bvh), width_(width), mode_(mode), stats_(stats)
{
    assert(width_ >= 1 && width_ <= kMaxPacketWidth);
}

unsigned
PacketTraversal::admit(std::deque<PendingRay> &queue)
{
    assert(state_ == State::Idle);
    n_lanes_ = 0;
    while (n_lanes_ < width_ && !queue.empty()) {
        const PendingRay pr = queue.front();
        queue.pop_front();
        Lane &ln = lanes_[n_lanes_];
        ln = Lane{};
        ln.ray = pr.ray;
        ln.ray_id = pr.ray_id;
        ln.job = pr.job;
        ln.t_beg = fromBits(pr.ray.t_beg);
        ln.t_max = fromBits(pr.ray.t_end);
        ++n_lanes_;
    }
    if (n_lanes_ == 0)
        return 0;

    if (bvh_.tris.empty()) {
        // Nothing to traverse: every lane completes with a miss, the
        // packet never forms (mirrors the scalar empty-scene refill).
        for (unsigned r = 0; r < n_lanes_; ++r)
            completed_.emplace_back(lanes_[r].ray_id, HitRecord{});
        unsigned admitted = n_lanes_;
        n_lanes_ = 0;
        return admitted;
    }

    ++stats_->packets_formed;
    Item root;
    root.is_leaf = false;
    root.index = 0;
    root.mask = (1u << n_lanes_) - 1u; // n_lanes_ <= kMaxPacketWidth
    for (unsigned r = 0; r < n_lanes_; ++r) {
        root.entry[r] = 0.0f;
        lanes_[r].pending = 1;
    }
    stack_.clear();
    stack_.push_back(root);
    popNext();
    return n_lanes_;
}

void
PacketTraversal::retireLane(unsigned lane, const HitRecord &rec)
{
    unsigned occupancy = 0;
    for (unsigned r = 0; r < n_lanes_; ++r)
        if (!lanes_[r].retired)
            ++occupancy; // includes `lane` (not yet marked)
    stats_->occupancy_at_retire += occupancy;
    ++stats_->rays_retired;
    lanes_[lane].retired = true;
    completed_.emplace_back(lanes_[lane].ray_id, rec);
}

void
PacketTraversal::dropLaneFromItem(unsigned lane)
{
    Lane &ln = lanes_[lane];
    --ln.pending;
    if (ln.pending == 0 && !ln.retired)
        retireLane(lane, ln.best);
}

void
PacketTraversal::popNext()
{
    for (;;) {
        if (stack_.empty()) {
            // Every lane's pending work is gone, so every lane retired
            // through dropLaneFromItem/completeItem on the way here.
            state_ = State::Idle;
            n_lanes_ = 0;
            return;
        }
        Item it = stack_.back();
        stack_.pop_back();
        uint32_t live = 0;
        for (unsigned r = 0; r < n_lanes_; ++r) {
            if (!(it.mask & (1u << r)))
                continue;
            Lane &ln = lanes_[r];
            // The scalar pruning rule, applied per lane: a retired or
            // pruned lane leaves the item; the item survives for the
            // rest.
            if (ln.retired || (ln.best.hit && it.entry[r] > ln.best.t))
                dropLaneFromItem(r);
            else
                live |= 1u << r;
        }
        if (live == 0)
            continue; // pruned packet-wide: no fetch, no beats
        cur_ = it;
        live_ = live;
        state_ = State::NeedFetch;
        return;
    }
}

void
PacketTraversal::fetchIssued()
{
    assert(state_ == State::NeedFetch);
    state_ = State::Fetching;
    const unsigned active = unsigned(std::popcount(live_));
    ++stats_->node_visits;
    stats_->active_ray_visits += active;
    stats_->fetches_shared += active - 1; // fetches scalar would issue
    // Attribute the shared fetches: the lowest active lane "owns" the
    // fetch, and every other active lane from a DIFFERENT job shares
    // it across a job boundary. Pure accounting — the fetch itself is
    // identical whatever the tags.
    const unsigned owner = unsigned(std::countr_zero(live_));
    for (unsigned r = owner + 1; r < n_lanes_; ++r)
        if ((live_ & (1u << r)) &&
            lanes_[r].job != lanes_[owner].job)
            ++stats_->cross_job_fetches_shared;
}

void
PacketTraversal::fetchArrived()
{
    assert(state_ == State::Fetching);
    state_ = State::Issue;
    pending_.clear();
    if (cur_.is_leaf) {
        // Triangle-major: each lane sees the leaf's triangles in leaf
        // order, exactly as the scalar entry does.
        for (uint32_t t = cur_.index; t < cur_.index + cur_.count; ++t)
            for (unsigned r = 0; r < n_lanes_; ++r)
                if (live_ & (1u << r))
                    pending_.push_back({uint8_t(r), t});
    } else {
        for (unsigned r = 0; r < n_lanes_; ++r)
            if (live_ & (1u << r))
                pending_.push_back({uint8_t(r), 0});
    }
}

void
PacketTraversal::pruneDeadBeats()
{
    // Beats for lanes retired mid-leaf (any-hit) are never issued.
    // Pruning the whole queue (not just the front) never changes the
    // issued-beat sequence — dead beats would be skipped on their way
    // to the front anyway — and keeps pendingCount()/makeBeatAt()
    // indices dense for the multi-issue offer loop.
    std::erase_if(pending_, [this](const PacketBeat &b) {
        return lanes_[b.lane].retired;
    });
}

core::DatapathInput
PacketTraversal::makeBeatAt(size_t j, uint64_t tag) const
{
    const PacketBeat &b = pending_[j];
    DatapathInput in;
    in.tag = tag;
    in.ray = lanes_[b.lane].ray;
    if (cur_.is_leaf) {
        in.op = Opcode::RayTriangle;
        in.tri = bvh_.tris[b.tri].toIoTriangle();
    } else {
        in.op = Opcode::RayBox;
        const WideNode &node = bvh_.nodes[cur_.index];
        for (int c = 0; c < 4; ++c) {
            in.boxes[c] = node.child[c].kind == WideNode::Kind::Empty
                              ? emptySlotBox()
                              : node.child[c].bounds.toIoBox();
        }
    }
    return in;
}

PacketBeat
PacketTraversal::takeBeatAt(size_t j)
{
    assert(j < pending_.size());
    const PacketBeat b = pending_[j];
    pending_.erase(pending_.begin() + std::ptrdiff_t(j));
    ++outstanding_;
    return b;
}

void
PacketTraversal::handleResult(const core::DatapathOutput &out,
                              const PacketBeat &beat)
{
    assert(outstanding_ > 0);
    --outstanding_;
    const PacketBeat &b = beat;
    Lane &ln = lanes_[b.lane];

    if (out.op == Opcode::RayBox) {
        box_res_[b.lane] = out.box;
    } else if (!ln.retired) { // drop results for lanes dead mid-leaf
        const SceneTriangle &tri = bvh_.tris[b.tri];
        if (out.tri.hit) {
            float den = fromBits(out.tri.t_den);
            if (den != 0.0f) {
                float t = fromBits(out.tri.t_num) / den;
                if (t >= ln.t_beg && t <= ln.t_max &&
                    (!ln.best.hit || t < ln.best.t)) {
                    if (mode_ == Mode::Any) {
                        // First in-extent hit retires the lane; the
                        // record carries only the flag (the any-hit
                        // contract).
                        HitRecord occluded;
                        occluded.hit = true;
                        retireLane(b.lane, occluded);
                    } else {
                        ln.best.hit = true;
                        ln.best.t = t;
                        ln.best.triangle_id = tri.id;
                        float u = fromBits(out.tri.uvw[0]);
                        float v = fromBits(out.tri.uvw[1]);
                        float w = fromBits(out.tri.uvw[2]);
                        ln.best.u = u / den;
                        ln.best.v = v / den;
                        ln.best.w = w / den;
                    }
                }
            }
        }
    }

    pruneDeadBeats();
    if (pending_.empty() && outstanding_ == 0)
        completeItem();
}

void
PacketTraversal::completeItem()
{
    if (!cur_.is_leaf)
        mergeBoxResults();
    // The item is done for every lane that was testing it; lanes left
    // with no pending work retire out of the packet independently.
    for (unsigned r = 0; r < n_lanes_; ++r)
        if (live_ & (1u << r))
            dropLaneFromItem(r);
    popNext();
}

unsigned
PacketTraversal::liveLanes() const
{
    unsigned n = 0;
    for (unsigned r = 0; r < n_lanes_; ++r)
        if (!lanes_[r].retired)
            ++n;
    return n;
}

void
PacketTraversal::scrubRetiredLanes()
{
    // An item's mask can still name lanes that retired after it was
    // pushed; popNext() would drop them lazily (dropLaneFromItem on a
    // retired lane only decrements its dead pending counter). Clearing
    // the bits eagerly is equivalent — and required before a retired
    // lane's slot is handed to an absorbed lane, or stale masks would
    // apply old work items to the new occupant.
    uint32_t retired = 0;
    for (unsigned r = 0; r < n_lanes_; ++r)
        if (lanes_[r].retired)
            retired |= 1u << r;
    if (retired == 0)
        return;
    for (Item &it : stack_)
        it.mask &= ~retired;
    cur_.mask &= ~retired;
    std::erase_if(stack_, [](const Item &it) { return it.mask == 0; });
}

void
PacketTraversal::absorb(PacketTraversal &donor)
{
    assert(compactable() && donor.compactable());
    assert(donor.completed_.empty());
    ++stats_->compactions;

    scrubRetiredLanes();
    donor.scrubRetiredLanes();

    // Map each surviving donor lane onto a free slot here: retired
    // slots are re-used first, then the packet widens toward width_.
    std::array<int, kMaxPacketWidth> remap;
    remap.fill(-1);
    unsigned next_free = 0;
    auto claimSlot = [&]() -> unsigned {
        while (next_free < n_lanes_ && !lanes_[next_free].retired)
            ++next_free;
        const unsigned slot = next_free++;
        assert(slot < width_);
        return slot;
    };
    for (unsigned r = 0; r < donor.n_lanes_; ++r) {
        if (donor.lanes_[r].retired)
            continue;
        const unsigned slot = claimSlot();
        remap[r] = int(slot);
        lanes_[slot] = donor.lanes_[r];
        if (slot >= n_lanes_)
            n_lanes_ = slot + 1;
        ++stats_->lanes_repacked;
    }

    // Translate the donor's pending work into this packet's lane
    // numbering: its stack bottom-to-top, then its current (nearest)
    // item on top. Per-lane entry distances and pending counts move
    // verbatim, so every lane still prunes and retires exactly as it
    // would have in the donor — only the fetch grouping changes. A
    // donor item naming the same node (or leaf run) as an item
    // already on this stack FUSES into it instead — lane masks are
    // disjoint, so the union visits the target once for both groups:
    // this is the shared fetch (and the beat-slot occupancy) that
    // compaction recovers after divergence.
    auto place = [&](const Item &it, uint32_t mask) {
        Item t;
        t.is_leaf = it.is_leaf;
        t.index = it.index;
        t.count = it.count;
        for (unsigned r = 0; r < donor.n_lanes_; ++r) {
            if (!(mask & (1u << r)) || remap[r] < 0)
                continue;
            t.mask |= 1u << unsigned(remap[r]);
            t.entry[unsigned(remap[r])] = it.entry[r];
        }
        if (t.mask == 0)
            return;
        // The recipient's own current item is a fuse target too — the
        // headline pairing has both packets at a fetch boundary about
        // to visit the same node, and cur_'s fetch has not issued yet,
        // so the newcomers simply join its active mask. (They skip the
        // pop-time prune check, which is conservative: a would-have-
        // been-pruned subtree can only yield strictly-worse hits.)
        if (cur_.is_leaf == t.is_leaf && cur_.index == t.index &&
            cur_.count == t.count) {
            for (unsigned r = 0; r < width_; ++r)
                if (t.mask & (1u << r))
                    cur_.entry[r] = t.entry[r];
            cur_.mask |= t.mask;
            live_ |= t.mask;
            return;
        }
        for (Item &mine : stack_) {
            if (mine.is_leaf == t.is_leaf && mine.index == t.index &&
                mine.count == t.count) {
                for (unsigned r = 0; r < width_; ++r)
                    if (t.mask & (1u << r))
                        mine.entry[r] = t.entry[r];
                mine.mask |= t.mask;
                return;
            }
        }
        stack_.push_back(t);
    };
    for (const Item &it : donor.stack_)
        place(it, it.mask);
    place(donor.cur_, donor.live_);

    donor.stack_.clear();
    donor.pending_.clear();
    donor.n_lanes_ = 0;
    donor.state_ = State::Idle;
}

void
PacketTraversal::mergeBoxResults()
{
    const WideNode &node = bvh_.nodes[cur_.index];

    // Invert each lane's sorted result into a slot-indexed entry table.
    std::array<std::array<float, 4>, kMaxPacketWidth> entry{};
    for (unsigned r = 0; r < n_lanes_; ++r) {
        if (!(live_ & (1u << r)))
            continue;
        const BoxResult &br = box_res_[r];
        for (int i = 0; i < 4; ++i)
            entry[r][br.order[i]] = fromBits(br.sorted_dist[i]);
    }

    // One candidate child item per slot some lane hit.
    struct Cand
    {
        Item item;
        float key; ///< nearest entry distance over member lanes
        int slot;
    };
    std::array<Cand, 4> cands;
    int n_cands = 0;
    bool split = false;
    for (int slot = 0; slot < 4; ++slot) {
        const WideNode::Child &c = node.child[slot];
        if (c.kind == WideNode::Kind::Empty)
            continue;
        uint32_t mask = 0;
        float key = std::numeric_limits<float>::infinity();
        Item it;
        for (unsigned r = 0; r < n_lanes_; ++r) {
            if (!(live_ & (1u << r)) || !box_res_[r].hit[slot])
                continue;
            mask |= 1u << r;
            it.entry[r] = entry[r][slot];
            key = std::min(key, entry[r][slot]);
        }
        if (mask == 0)
            continue;
        if (mask != live_)
            split = true; // the children partition the packet
        it.mask = mask;
        if (c.kind == WideNode::Kind::Internal) {
            it.is_leaf = false;
            it.index = c.index;
        } else {
            it.is_leaf = true;
            it.index = c.index;
            it.count = c.count;
        }
        cands[size_t(n_cands++)] = {it, key, slot};
    }
    if (split)
        ++stats_->divergence_splits;

    // Push farthest-first so the packet-nearest child pops first;
    // slot index breaks exact-distance ties deterministically.
    std::sort(cands.begin(), cands.begin() + n_cands,
              [](const Cand &a, const Cand &b) {
                  return a.key != b.key ? a.key < b.key
                                        : a.slot < b.slot;
              });
    for (int i = n_cands - 1; i >= 0; --i) {
        stack_.push_back(cands[size_t(i)].item);
        for (unsigned r = 0; r < n_lanes_; ++r)
            if (cands[size_t(i)].item.mask & (1u << r))
                ++lanes_[r].pending;
    }
}

} // namespace rayflex::bvh
