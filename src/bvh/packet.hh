/**
 * @file
 * Packet/wavefront traversal: coherent ray packets with shared BVH
 * fetches.
 *
 * The paper models only the intersection-test datapath and defers warp
 * management to the enclosing RT unit. The scalar RtUnit feeds that
 * datapath one independent ray per ray-buffer entry, so a coherent
 * camera batch pays a full node fetch per ray even when neighbouring
 * rays walk the same subtree. PacketTraversal is the warp-level
 * counterpart: up to PacketConfig::width rays share ONE traversal stack
 * and ONE MemoryModel fetch per node visited — every member ray
 * consumes the fetched data — with per-ray active masks tracking
 * divergence. The datapath interface is unchanged: a packet visiting a
 * node issues one ray-box beat per active ray (SIMD-style multi-ray
 * AABB beats, pipelined back-to-back), and a leaf issues the usual
 * ray-triangle beats per (triangle, active ray) pair.
 *
 * Contract: packets change timing and memory traffic, never hits. A
 * packetized run produces bit-identical hit records to scalar
 * traversal: per-ray pruning uses exactly the scalar condition
 * (entry_t > best.t masks the ray off a work item instead of popping
 * it), triangle acceptance is the scalar code verbatim, and each ray
 * sees a leaf's triangles in leaf order. Rays retire out of a packet
 * independently: a ray whose pending work drops to zero completes even
 * while its packet continues traversing for the other lanes.
 *
 * PacketStats counts the wavefront-level quantities (packets formed,
 * occupancy, fetches shared, divergence splits) and merges with the
 * same commutative sums as every other stats struct, so sharded
 * engine runs stay bit-identical at every worker count.
 */
#ifndef RAYFLEX_BVH_PACKET_HH
#define RAYFLEX_BVH_PACKET_HH

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "bvh/traversal.hh"
#include "core/io_spec.hh"

namespace rayflex::bvh
{

/** Widest packet the mask/lane bookkeeping supports. */
inline constexpr unsigned kMaxPacketWidth = 16;

/** One ray awaiting admission into a packet (the RT unit's refill
 *  queue element). `job` tags which submission stream the ray belongs
 *  to (sim::StreamingService packs rays of several concurrent jobs
 *  into one batch); the tag NEVER influences packet formation or
 *  traversal — packets admit rays strictly in queue order whatever
 *  their tags, which is what keeps job-tagged runs bit-identical to
 *  untagged ones — it only attributes shared fetches to
 *  PacketStats::cross_job_fetches_shared. */
struct PendingRay
{
    core::Ray ray;
    uint32_t ray_id = 0;
    uint32_t job = 0;
};

/** One datapath beat of a packet's current work item: which member
 *  lane it tests and, for leaf items, which triangle. The RT unit
 *  holds the accepted beat in its per-datapath-lane in-flight queue
 *  and hands it back to handleResult() with the datapath output, so
 *  result routing never depends on cross-lane arrival order (the
 *  multi-issue datapath drains several lanes per cycle). */
struct PacketBeat
{
    uint8_t lane = 0;
    uint32_t tri = 0; ///< triangle index (leaf items only)
};

/** Packet-mode configuration of the RT unit. */
struct PacketConfig
{
    /** Rays grouped per packet. 1 (the default) keeps the scalar
     *  one-ray-per-entry path bit-for-bit; widths 2..kMaxPacketWidth
     *  enable the shared-stack wavefront scheduler. */
    unsigned width = 1;

    /** Occupancy-driven compaction threshold. 0 (the default)
     *  disables compaction, preserving the pre-compaction schedule
     *  bit-for-bit. When > 0, a packet whose live occupancy has
     *  fallen below this value repacks at its next fetch boundary
     *  with the surviving lanes of another below-threshold packet
     *  (combined occupancy permitting), recovering beat slots lost to
     *  divergence and freeing the donor slot to admit fresh rays.
     *  Hit records never change — only the schedule does. */
    unsigned compact_below = 0;

    friend bool operator==(const PacketConfig &,
                           const PacketConfig &) = default;
};

/** Per-run packet counters. All fields are sums of uint64 counts, so
 *  merging is commutative and associative like RtUnitStats: aggregates
 *  over many batches are identical no matter which worker ran which
 *  batch or in what order merges happen. All-zero in scalar mode. */
struct PacketStats
{
    uint64_t packets_formed = 0;   ///< packets admitted from the queue
    uint64_t node_visits = 0;      ///< shared work items fetched
    uint64_t active_ray_visits = 0;///< sum of active lanes over visits
    uint64_t fetches_shared = 0;   ///< fetches avoided vs scalar:
                                   ///< sum(active lanes - 1) per visit
    /** Subset of fetches_shared where the sharing lanes carry
     *  different PendingRay::job tags — one job's coherent rays
     *  filling another's packets (cross-job packing). Zero whenever
     *  every admitted ray carries the same tag (every non-streaming
     *  path). */
    uint64_t cross_job_fetches_shared = 0;
    uint64_t divergence_splits = 0;///< node visits whose hit children
                                   ///< partition the active mask
    uint64_t rays_retired = 0;     ///< lanes retired from packets
    uint64_t occupancy_at_retire = 0; ///< unretired lanes (incl. self)
                                      ///< summed at each retirement
    uint64_t compactions = 0;      ///< donor packets absorbed
    uint64_t lanes_repacked = 0;   ///< live lanes moved by compaction

    /** Mean active lanes per shared node visit. */
    double
    avgOccupancy() const
    {
        return node_visits ? double(active_ray_visits) /
                                 double(node_visits)
                           : 0.0;
    }

    /** Mean packet occupancy observed at ray retirement. */
    double
    avgOccupancyAtRetire() const
    {
        return rays_retired ? double(occupancy_at_retire) /
                                  double(rays_retired)
                            : 0.0;
    }

    PacketStats &
    merge(const PacketStats &o)
    {
        packets_formed += o.packets_formed;
        node_visits += o.node_visits;
        active_ray_visits += o.active_ray_visits;
        fetches_shared += o.fetches_shared;
        cross_job_fetches_shared += o.cross_job_fetches_shared;
        divergence_splits += o.divergence_splits;
        rays_retired += o.rays_retired;
        occupancy_at_retire += o.occupancy_at_retire;
        compactions += o.compactions;
        lanes_repacked += o.lanes_repacked;
        return *this;
    }

    friend bool operator==(const PacketStats &,
                           const PacketStats &) = default;
};

/**
 * One ray packet: the shared-stack traversal state machine for up to
 * PacketConfig::width rays. The RT unit owns a vector of these and
 * drives them through four service points per cycle — memory
 * (needsFetch/fetchIssued/fetchArrived), datapath issue
 * (issueReady/makeBeatAt/takeBeatAt, up to issue_width beats per
 * cycle), datapath drain (handleResult) and refill (admit) —
 * mirroring the scalar Entry lifecycle, packet-wide. Between work
 * items (compactable()) a divergence-thinned packet can absorb()
 * another's surviving lanes, so the beat slots divergence emptied are
 * recovered instead of riding along dead.
 *
 * The class is a pure function of the admitted rays and the shared BVH
 * (no clocks, no host pointers in decisions), which is what lets the
 * engine keep its bit-identical-across-worker-counts contract in
 * packet mode.
 */
class PacketTraversal
{
  public:
    /** What the unit resolves per ray; mirrors bvh::TraversalMode
     *  (redeclared loosely to avoid a header cycle with rt_unit.hh). */
    enum class Mode : uint8_t { Closest, Any };

    PacketTraversal(const Bvh4 &bvh, unsigned width, Mode mode,
                    PacketStats *stats);

    /** True when the packet holds no rays and can admit new ones. */
    bool idle() const { return state_ == State::Idle; }

    /** Form a packet from up to width rays at the front of `queue`.
     *  Rays against an empty BVH complete immediately (miss records
     *  land in completed()). Job tags ride along per lane; they never
     *  affect which rays are grouped. @return rays admitted. */
    unsigned
    admit(std::deque<PendingRay> &queue);

    // ---- memory service ------------------------------------------------
    /** True when the packet's current work item awaits its fetch. */
    bool needsFetch() const { return state_ == State::NeedFetch; }
    /** True while the packet is stalled on memory (either waiting to
     *  issue a fetch or waiting for one to return). */
    bool
    waitingOnMemory() const
    {
        return state_ == State::NeedFetch || state_ == State::Fetching;
    }
    /** Current work item the fetch targets (valid in NeedFetch). */
    bool fetchIsLeaf() const { return cur_.is_leaf; }
    uint32_t fetchIndex() const { return cur_.index; }
    uint32_t fetchCount() const { return cur_.count; }
    /** The fetch left for memory; counts the visit into PacketStats. */
    void fetchIssued();
    /** The fetch returned; builds the beat list for the datapath. */
    void fetchArrived();

    // ---- datapath service ----------------------------------------------
    /** True when the packet is in its issue phase (fetched data
     *  present; beats pending and/or results outstanding). */
    bool issueReady() const { return state_ == State::Issue; }
    /** Drop every queued beat whose lane has retired (any-hit lanes
     *  die mid-leaf); such beats are never issued. Call before
    *   peeking the pending queue. */
    void pruneDeadBeats();
    /** Beats awaiting issue (after pruneDeadBeats()). The multi-issue
     *  unit offers pending beats 0..N-1 to its N datapath lanes in one
     *  cycle — SIMD-style back-to-back member-lane beats. */
    size_t pendingCount() const { return pending_.size(); }
    /** Datapath input for pending beat `j`; `tag` is echoed on the
     *  datapath output so the unit can route the result back here. */
    core::DatapathInput makeBeatAt(size_t j, uint64_t tag) const;
    /** Pending beat `j` was accepted by a datapath lane: remove it
     *  from the queue and count it outstanding. @return the beat, for
     *  the unit's per-lane in-flight queue. */
    PacketBeat takeBeatAt(size_t j);
    /** Fold one datapath result back into the packet. `beat` is the
     *  value takeBeatAt() returned when this result's input was
     *  accepted — the unit's per-lane queues preserve it, so routing
     *  is explicit rather than inferred from arrival order. */
    void handleResult(const core::DatapathOutput &out,
                      const PacketBeat &beat);

    // ---- occupancy-driven compaction -----------------------------------
    /** Lanes admitted and not yet retired. */
    unsigned liveLanes() const;
    /** True when the packet sits at a fetch boundary (NeedFetch): no
     *  beats pending or in flight, so its lanes and stack can be
     *  repacked without disturbing any in-flight state. */
    bool compactable() const { return state_ == State::NeedFetch; }
    /** Move `donor`'s live lanes and their pending work into this
     *  packet's free lane slots (the caller checks the combined live
     *  count fits the width). Both packets must be compactable().
     *  Donor becomes Idle and can admit fresh rays. Per-lane
     *  traversal state moves verbatim, so hit records are unchanged —
     *  only the schedule (and the shared-fetch grouping) moves. */
    void absorb(PacketTraversal &donor);

    // ---- retirement ----------------------------------------------------
    /** Rays completed since the last drain, as (ray_id, record) pairs
     *  in retirement order. The unit moves these into its results. */
    std::vector<std::pair<uint32_t, HitRecord>> &
    completed()
    {
        return completed_;
    }

  private:
    enum class State : uint8_t {
        Idle,      ///< no rays admitted
        NeedFetch, ///< work item chosen, fetch not yet issued
        Fetching,  ///< waiting on node/leaf memory
        Issue,     ///< beats pending issue and/or results outstanding
    };

    /** One shared unit of traversal work with its member-lane mask. */
    struct Item
    {
        bool is_leaf = false;
        uint32_t index = 0; ///< node index or first triangle
        uint32_t count = 0; ///< triangle count when leaf
        uint32_t mask = 0;  ///< lanes this item belongs to
        /** Per-lane child entry distance (for scalar-equivalent
         *  pruning); only lanes in `mask` are meaningful. */
        std::array<float, kMaxPacketWidth> entry{};
    };

    /** One ray slot of the packet. */
    struct Lane
    {
        core::Ray ray;
        uint32_t ray_id = 0;
        uint32_t job = 0; ///< submission stream (stats only)
        HitRecord best;
        float t_beg = 0;
        float t_max = 0;
        bool retired = false; ///< result recorded (lane is dead)
        uint32_t pending = 0; ///< stack items (+ current) naming it
    };

    void popNext();
    void completeItem();
    void mergeBoxResults();
    void dropLaneFromItem(unsigned lane);
    void retireLane(unsigned lane, const HitRecord &rec);
    /** Clear retired lanes out of this packet's stack masks (and
     *  cur_), so their lane slots can be re-used by absorbed lanes. */
    void scrubRetiredLanes();

    const Bvh4 &bvh_;
    unsigned width_;
    Mode mode_;
    PacketStats *stats_;

    State state_ = State::Idle;
    std::vector<Item> stack_; ///< shared stack, nearest on top
    Item cur_;                ///< item being fetched/tested
    uint32_t live_ = 0;       ///< cur_'s mask minus retired/pruned lanes
    std::array<Lane, kMaxPacketWidth> lanes_;
    unsigned n_lanes_ = 0;

    std::deque<PacketBeat> pending_; ///< beats not yet issued
    unsigned outstanding_ = 0; ///< accepted beats not yet resolved
                               ///< (held in the unit's per-lane queues)
    std::array<core::BoxResult, kMaxPacketWidth> box_res_;

    std::vector<std::pair<uint32_t, HitRecord>> completed_;
};

} // namespace rayflex::bvh

#endif // RAYFLEX_BVH_PACKET_HH
