/**
 * @file
 * Cycle-level RT-unit implementation.
 *
 * Per cycle the unit (a) drives at most one beat into the datapath from
 * a ready ray, (b) drains one datapath result, (c) retires memory
 * responses and issues new node fetches, and (d) refills free ray-buffer
 * slots from the submission queue. All interactions with the datapath go
 * through the ordinary valid-ready handshake, so the unit observes real
 * pipeline back-pressure.
 *
 * The same four-step loop drives both schedulers: the scalar mode
 * iterates per-ray Entry slots, the packet mode (packet.width > 1,
 * bvh/packet.hh) iterates PacketTraversal slots — a packet in NeedFetch
 * issues ONE fetch for its whole active mask, and a packet with fetched
 * data issues one beat per active lane back-to-back. The scalar path is
 * bit-for-bit the pre-packet unit; no packet code runs at width 1.
 *
 * Fetch latency comes from the configured MemoryModel. The address map
 * is synthetic but stable: node i occupies
 * [i * kNodeStrideBytes, (i+1) * kNodeStrideBytes) and the triangle
 * region starts immediately after the last node, with triangle j at
 * tri_base + j * kTriStrideBytes. A leaf fetch reads all of the leaf's
 * triangles in one request, so the cache sees the same spatial
 * locality the traversal order produces.
 */
#include "bvh/rt_unit.hh"

#include <algorithm>
#include <stdexcept>

namespace rayflex::bvh
{

using namespace rayflex::core;
using fp::fromBits;

RtUnit::RtUnit(const Bvh4 &bvh, core::RayFlexDatapath &dp,
               const RtUnitConfig &cfg, MemoryModel *shared_mem)
    : pipeline::Component("rt-unit"), bvh_(bvh), dp_(dp), cfg_(cfg),
      tri_base_(uint64_t(bvh.nodes.size()) * kNodeStrideBytes)
{
    cfg_.packet.width =
        std::clamp(cfg_.packet.width, 1u, kMaxPacketWidth);
    if (shared_mem) {
        mem_ = shared_mem;
        mem_is_shared_ = true;
    } else {
        owned_mem_ = makeMemoryModel(cfg_.mem_backend, cfg_.mem_latency,
                                     cfg_.cache);
        mem_ = owned_mem_.get();
    }
    if (packetized()) {
        // The ray buffer holds the same number of rays either way; a
        // packet slot stands in for `width` scalar entries.
        const unsigned slots = std::max(
            1u, cfg_.ray_buffer_entries / cfg_.packet.width);
        const auto mode = cfg_.mode == TraversalMode::Any
                              ? PacketTraversal::Mode::Any
                              : PacketTraversal::Mode::Closest;
        packets_.reserve(slots);
        for (unsigned i = 0; i < slots; ++i)
            packets_.emplace_back(bvh_, cfg_.packet.width, mode,
                                  &stats_.packet);
    } else {
        entries_.resize(cfg_.ray_buffer_entries);
    }
}

/** Latency of one fetch in the synthetic address map: the whole leaf
 *  for leaf work, one wide node otherwise. Both schedulers go through
 *  here, so scalar and packet mode can never diverge on addresses. */
unsigned
RtUnit::accessLatency(bool is_leaf, uint32_t index, uint32_t count)
{
    if (is_leaf)
        return mem_->access(tri_base_ +
                                uint64_t(index) * kTriStrideBytes,
                            count * kTriStrideBytes);
    return mem_->access(uint64_t(index) * kNodeStrideBytes,
                        kNodeStrideBytes);
}

/** Latency of the fetch an entry in NeedFetch is about to issue. */
unsigned
RtUnit::fetchLatency(const Entry &e)
{
    return e.leaf_count > 0
               ? accessLatency(true, e.leaf_first, e.leaf_count)
               : accessLatency(false, e.node, 0);
}

void
RtUnit::submit(const core::Ray &ray, uint32_t ray_id)
{
    pending_rays_.emplace_back(ray, ray_id);
    if (results_.size() <= ray_id)
        results_.resize(ray_id + 1);
    ++outstanding_;
}

void
RtUnit::popWork(Entry &e)
{
    // Pop past work items pruned by the current best hit.
    while (!e.stack.empty()) {
        WorkItem w = e.stack.back();
        e.stack.pop_back();
        if (e.best.hit && w.entry_t > e.best.t)
            continue;
        if (w.is_leaf) {
            e.leaf_first = w.index;
            e.leaf_count = w.count;
            e.leaf_next = w.index;
        } else {
            e.node = w.index;
        }
        // Both node and leaf data come from memory.
        e.state = EntryState::NeedFetch;
        // Remember what kind of data the fetch returns.
        e.leaf_count = w.is_leaf ? w.count : 0;
        return;
    }
    // Traversal complete.
    finishRay(e, e.best);
}

void
RtUnit::finishRay(Entry &e, const HitRecord &rec)
{
    results_[e.ray_id] = rec;
    e.state = EntryState::Idle;
    e.stack.clear();
    --outstanding_;
    ++stats_.rays_completed;
}

/** Latency of the fetch a packet in NeedFetch is about to issue (one
 *  fetch serves the packet's whole active mask — that IS the sharing). */
unsigned
RtUnit::packetFetchLatency(const PacketTraversal &p)
{
    return accessLatency(p.fetchIsLeaf(), p.fetchIndex(),
                         p.fetchCount());
}

/** Move a packet's retired rays into the unit's results. */
void
RtUnit::drainCompleted(PacketTraversal &p)
{
    for (const auto &[id, rec] : p.completed()) {
        results_[id] = rec;
        --outstanding_;
        ++stats_.rays_completed;
    }
    p.completed().clear();
}

/** Packet-mode publish: offer one beat from the first packet with
 *  pending work (same first-ready policy as the scalar path). */
void
RtUnit::publishPacket()
{
    for (size_t i = 0; i < packets_.size(); ++i) {
        if (packets_[i].hasBeat()) {
            dp_.in().valid = true;
            dp_.in().bits = packets_[i].makeBeat(i);
            drove_input_ = true;
            issue_entry_ = i;
            return;
        }
    }
    dp_.in().valid = false;
}

void
RtUnit::publish(uint64_t)
{
    // Always willing to drain results.
    dp_.out().ready = true;

    drove_input_ = false;
    if (packetized()) {
        publishPacket();
        return;
    }

    // Offer one beat from the first ready entry (round-robin would be
    // fairer; first-ready is sufficient for utilization studies).
    for (size_t i = 0; i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        if (e.state == EntryState::ReadyBox) {
            DatapathInput in;
            in.op = Opcode::RayBox;
            in.ray = e.ray;
            in.tag = i;
            const WideNode &node = bvh_.nodes[e.node];
            for (int c = 0; c < 4; ++c) {
                in.boxes[c] =
                    node.child[c].kind == WideNode::Kind::Empty
                        ? emptySlotBox()
                        : node.child[c].bounds.toIoBox();
            }
            dp_.in().valid = true;
            dp_.in().bits = in;
            drove_input_ = true;
            issue_entry_ = i;
            return;
        }
        if (e.state == EntryState::ReadyTri) {
            DatapathInput in;
            in.op = Opcode::RayTriangle;
            in.ray = e.ray;
            in.tag = i;
            in.tri = bvh_.tris[e.leaf_next].toIoTriangle();
            dp_.in().valid = true;
            dp_.in().bits = in;
            drove_input_ = true;
            issue_entry_ = i;
            return;
        }
    }
    dp_.in().valid = false;
}

void
RtUnit::handleResult(const core::DatapathOutput &out)
{
    Entry &e = entries_[out.tag];
    if (out.op == Opcode::RayBox) {
        const WideNode &node = bvh_.nodes[e.node];
        // Push hit children farthest-first so the nearest pops first.
        for (int i = 3; i >= 0; --i) {
            uint8_t slot = out.box.order[i];
            if (!out.box.hit[slot])
                continue;
            const auto &c = node.child[slot];
            WorkItem w;
            w.entry_t = fromBits(out.box.sorted_dist[i]);
            if (c.kind == WideNode::Kind::Internal) {
                w.is_leaf = false;
                w.index = c.index;
            } else {
                w.is_leaf = true;
                w.index = c.index;
                w.count = c.count;
            }
            e.stack.push_back(w);
        }
        popWork(e);
    } else {
        // Triangle result for e.leaf_next - 1 was issued; actually the
        // in-flight triangle index is tracked in e.leaf_next at issue
        // time and advanced on acceptance, so the result corresponds to
        // inflight_tri_.
        const SceneTriangle &tri = bvh_.tris[e.inflight_tri];
        if (out.tri.hit) {
            float den = fromBits(out.tri.t_den);
            if (den != 0.0f) {
                float t = fromBits(out.tri.t_num) / den;
                if (t >= e.t_beg && t <= e.t_max &&
                    (!e.best.hit || t < e.best.t)) {
                    if (cfg_.mode == TraversalMode::Any) {
                        // First in-extent hit retires the ray; the
                        // record carries only the flag (see
                        // TraversalMode::Any).
                        HitRecord occluded;
                        occluded.hit = true;
                        finishRay(e, occluded);
                        return;
                    }
                    e.best.hit = true;
                    e.best.t = t;
                    e.best.triangle_id = tri.id;
                    float u = fromBits(out.tri.uvw[0]);
                    float v = fromBits(out.tri.uvw[1]);
                    float w = fromBits(out.tri.uvw[2]);
                    e.best.u = u / den;
                    e.best.v = v / den;
                    e.best.w = w / den;
                }
            }
        }
        if (e.leaf_next < e.leaf_first + e.leaf_count) {
            e.state = EntryState::ReadyTri; // more triangles in leaf
        } else {
            popWork(e);
        }
    }
}

/** Packet-mode advance: the same (a)–(d) steps over packet slots. */
void
RtUnit::advancePacket()
{
    // (a) Input handshake outcome.
    if (drove_input_ && dp_.in().valid && dp_.in().ready) {
        ++stats_.datapath_beats;
        packets_[issue_entry_].beatAccepted();
    } else {
        ++stats_.datapath_idle;
        bool waiting_mem = false;
        for (const PacketTraversal &p : packets_) {
            if (p.waitingOnMemory()) {
                waiting_mem = true;
                break;
            }
        }
        if (waiting_mem)
            ++stats_.stall_on_memory;
    }

    // (b) Output handshake outcome. A result can complete the packet's
    // current item, push children and retire lanes whose work ran out.
    if (dp_.out().valid && dp_.out().ready) {
        const DatapathOutput &out = dp_.out().bits;
        PacketTraversal &p = packets_[out.tag];
        p.handleResult(out);
        drainCompleted(p);
    }

    // (c) Memory: completion-ordered retirement, then issue — one
    // fetch serves a packet's whole active mask.
    for (auto it = mem_queue_.begin(); it != mem_queue_.end();) {
        if (it->done_cycle <= now_) {
            packets_[it->entry].fetchArrived();
            it = mem_queue_.erase(it);
        } else {
            ++it;
        }
    }
    unsigned issued = 0;
    for (size_t i = 0;
         i < packets_.size() && issued < cfg_.mem_requests_per_cycle;
         ++i) {
        PacketTraversal &p = packets_[i];
        if (p.needsFetch()) {
            mem_queue_.push_back({i, now_ + packetFetchLatency(p)});
            p.fetchIssued();
            ++stats_.mem_requests;
            ++issued;
        }
    }

    // (d) Refill idle packet slots with queued rays. Consecutive rays
    // form one packet, so coherent submissions (camera batches) become
    // coherent packets.
    for (size_t i = 0; i < packets_.size() && !pending_rays_.empty();
         ++i) {
        PacketTraversal &p = packets_[i];
        if (!p.idle())
            continue;
        p.admit(pending_rays_);
        drainCompleted(p); // empty-scene rays complete at admission
    }
}

void
RtUnit::advance(uint64_t cycle)
{
    now_ = cycle;
    ++stats_.cycles;

    if (packetized()) {
        advancePacket();
        return;
    }

    // (a) Input handshake outcome.
    if (drove_input_ && dp_.in().valid && dp_.in().ready) {
        Entry &e = entries_[issue_entry_];
        ++stats_.datapath_beats;
        if (e.state == EntryState::ReadyBox) {
            e.state = EntryState::InFlight;
        } else {
            e.inflight_tri = e.leaf_next;
            ++e.leaf_next;
            e.state = EntryState::InFlight;
        }
    } else {
        ++stats_.datapath_idle;
        bool waiting_mem = false;
        for (const Entry &e : entries_) {
            if (e.state == EntryState::Fetching ||
                e.state == EntryState::NeedFetch) {
                waiting_mem = true;
                break;
            }
        }
        if (waiting_mem)
            ++stats_.stall_on_memory;
    }

    // (b) Output handshake outcome.
    if (dp_.out().valid && dp_.out().ready)
        handleResult(dp_.out().bits);

    // (c) Memory: retire due responses, issue new fetches. Retirement
    // is completion-ordered, not FIFO: with the cache backend a cheap
    // hit issued behind an expensive miss completes first and must not
    // be held at the queue head, or the hit latency the cache model
    // exists to expose would be masked. (Under a uniform-latency
    // backend completion order equals issue order, so this retires
    // exactly what the original FIFO pop did, cycle for cycle.)
    for (auto it = mem_queue_.begin(); it != mem_queue_.end();) {
        if (it->done_cycle <= now_) {
            Entry &e = entries_[it->entry];
            e.state = e.leaf_count > 0 ? EntryState::ReadyTri
                                       : EntryState::ReadyBox;
            it = mem_queue_.erase(it);
        } else {
            ++it;
        }
    }
    unsigned issued = 0;
    for (size_t i = 0;
         i < entries_.size() && issued < cfg_.mem_requests_per_cycle;
         ++i) {
        Entry &e = entries_[i];
        if (e.state == EntryState::NeedFetch) {
            mem_queue_.push_back({i, now_ + fetchLatency(e)});
            e.state = EntryState::Fetching;
            ++stats_.mem_requests;
            ++issued;
        }
    }

    // (d) Refill free slots with queued rays.
    for (size_t i = 0; i < entries_.size() && !pending_rays_.empty();
         ++i) {
        Entry &e = entries_[i];
        if (e.state != EntryState::Idle)
            continue;
        auto [ray, id] = pending_rays_.front();
        pending_rays_.pop_front();
        e = Entry{};
        e.ray = ray;
        e.ray_id = id;
        e.t_beg = fromBits(ray.t_beg);
        e.t_max = fromBits(ray.t_end);
        if (bvh_.tris.empty()) {
            results_[e.ray_id] = HitRecord{};
            --outstanding_;
            ++stats_.rays_completed;
            continue;
        }
        e.stack.push_back({false, 0, 0, 0.0f});
        popWork(e);
    }
}

RtUnitStats
RtUnit::run(uint64_t max_cycles)
{
    pipeline::Simulator sim;
    dp_.registerWith(sim);
    sim.add(this);
    stats_ = {};
    CacheStats mem_before;
    if (mem_is_shared_)
        mem_before = mem_->stats(); // warm: keep contents, report delta
    else
        mem_->reset(); // cold cache per run: runs are reproducible
    while (outstanding_ > 0 && stats_.cycles < max_cycles)
        sim.tick();
    stats_.mem = mem_->stats().deltaSince(mem_before);
    if (outstanding_ > 0)
        throw std::runtime_error("RtUnit::run: rays did not complete");
    return stats_;
}

} // namespace rayflex::bvh
