/**
 * @file
 * Cycle-level RT-unit implementation.
 *
 * Per cycle the unit (a) drives up to issue_width beats into the
 * datapath lanes from ready rays, (b) drains one datapath result per
 * lane, (c) retires memory responses and issues new node fetches
 * through the shared L1 (optionally via the bounded MSHR file), and
 * (d) refills free ray-buffer slots from the submission queue. All
 * interactions with the datapath go through the ordinary valid-ready
 * handshake — one handshake per lane — so the unit observes real
 * pipeline back-pressure.
 *
 * The same four-step loop drives both schedulers: the scalar mode
 * iterates per-ray Entry slots, the packet mode (packet.width > 1,
 * bvh/packet.hh) iterates PacketTraversal slots — a packet in NeedFetch
 * issues ONE fetch for its whole active mask, and a packet with fetched
 * data issues one beat per active lane, up to issue_width of them in
 * the same cycle. With packet.compact_below > 0 a step between (b) and
 * (c) repacks divergence-thinned packets at their fetch boundaries.
 * The scalar path at issue_width == 1 is bit-for-bit the pre-packet
 * unit; no packet code runs at width 1.
 *
 * Fetch latency comes from the configured MemoryModel — the unit's
 * shared L1: one instance serves every slot. The address map is
 * synthetic but stable: node i occupies
 * [i * kNodeStrideBytes, (i+1) * kNodeStrideBytes) and the triangle
 * region starts immediately after the last node, with triangle j at
 * tri_base + j * kTriStrideBytes. A leaf fetch reads all of the leaf's
 * triangles in one request, so the cache sees the same spatial
 * locality the traversal order produces. With RtUnitConfig::mshrs > 0
 * every fetch routes through a bounded MSHR file first: a fetch whose
 * target is already in flight merges onto the existing entry (one miss
 * serves both requesters, no L1 touch, no issue bandwidth), and a full
 * file refuses new allocations, holding the requester in NeedFetch.
 */
#include "bvh/rt_unit.hh"

#include <algorithm>
#include <stdexcept>

namespace rayflex::bvh
{

using namespace rayflex::core;
using fp::fromBits;

RtUnit::RtUnit(const Bvh4 &bvh, core::RayFlexDatapath &dp,
               const RtUnitConfig &cfg, MemoryModel *shared_mem)
    : pipeline::Component("rt-unit"), bvh_(bvh), dp_(dp), cfg_(cfg),
      mshrs_(cfg.mshrs),
      tri_base_(uint64_t(bvh.nodes.size()) * kNodeStrideBytes)
{
    cfg_.packet.width =
        std::clamp(cfg_.packet.width, 1u, kMaxPacketWidth);
    cfg_.issue_width =
        std::clamp(cfg_.issue_width, 1u, kMaxIssueWidth);
    if (shared_mem) {
        mem_ = shared_mem;
        mem_is_shared_ = true;
    } else {
        owned_mem_ = makeMemoryModel(cfg_.mem_backend, cfg_.mem_latency,
                                     cfg_.cache);
        mem_ = owned_mem_.get();
    }
    // Lane 0 is the caller's datapath; lanes 1..N-1 are private
    // replicas of the same configuration, one handshake each.
    lanes_.push_back(&dp_);
    for (unsigned l = 1; l < cfg_.issue_width; ++l) {
        extra_lanes_.push_back(
            std::make_unique<core::RayFlexDatapath>(dp_.config()));
        lanes_.push_back(extra_lanes_.back().get());
    }
    offers_.resize(lanes_.size());
    lane_inflight_.resize(lanes_.size());
    if (packetized()) {
        // The ray buffer holds the same number of rays either way; a
        // packet slot stands in for `width` scalar entries.
        const unsigned slots = std::max(
            1u, cfg_.ray_buffer_entries / cfg_.packet.width);
        const auto mode = cfg_.mode == TraversalMode::Any
                              ? PacketTraversal::Mode::Any
                              : PacketTraversal::Mode::Closest;
        packets_.reserve(slots);
        for (unsigned i = 0; i < slots; ++i)
            packets_.emplace_back(bvh_, cfg_.packet.width, mode,
                                  &stats_.packet);
        cfg_.packet.compact_below =
            std::min(cfg_.packet.compact_below, cfg_.packet.width);
        compact_hold_.assign(slots, 0);
    } else {
        entries_.resize(cfg_.ray_buffer_entries);
    }
}

RtUnit::RtUnit(const KnnIndex &index, core::RayFlexDatapath &dp,
               const RtUnitConfig &cfg, MemoryModel *shared_mem)
    : RtUnit(index.bvh, dp, cfg, shared_mem)
{
    if (!dp.config().extended)
        throw std::invalid_argument(
            "RtUnit k-NN mode: datapath lacks the extended distance "
            "opcodes (build it with an extended DatapathConfig)");
    knn_index_ = &index;
    knn_entries_.resize(cfg_.ray_buffer_entries);
    knn_lane_.resize(lanes_.size());
}

/** Synthetic address map shared by both schedulers (so scalar and
 *  packet mode can never diverge on addresses): the whole leaf for
 *  leaf work, one wide node otherwise. The address doubles as the
 *  MSHR merge key — each node and leaf has a unique base address. */
void
RtUnit::fetchTarget(bool is_leaf, uint32_t index, uint32_t count,
                    uint64_t *addr, uint32_t *bytes) const
{
    if (is_leaf) {
        *addr = tri_base_ + uint64_t(index) * kTriStrideBytes;
        *bytes = count * kTriStrideBytes;
    } else {
        *addr = uint64_t(index) * kNodeStrideBytes;
        *bytes = kNodeStrideBytes;
    }
}

/** Step-(c) preamble shared by all three schedulers: release
 *  completed MSHR entries (sampling the residency counter when it
 *  changed and tracing is on) and re-arm the MSHR-refusal flag for
 *  this cycle's issue loop (classifyIdle reads last cycle's value in
 *  step (a), which runs before this). */
void
RtUnit::retireMshrs()
{
    if (trace_) {
        const size_t before = mshrs_.inflightCount();
        mshrs_.retire(now_);
        if (mshrs_.inflightCount() != before)
            trace_->record({now_, trace_unit_,
                            obs::TraceEvent::MshrResidency,
                            mshrs_.inflightCount(), 0});
    } else {
        mshrs_.retire(now_);
    }
    mshr_refused_ = false;
}

/** Exclusive cause of this cycle's idle issue slots. The priority and
 *  the phase-boundary walk are documented in obs/slot_accounting.hh;
 *  the scheduler-specific inputs (`have_work`: any work submitted and
 *  not yet retired; `need_fetch`: a slot sits in NeedFetch;
 *  `in_datapath`: work is ready for or riding the lanes) are computed
 *  by the caller from state that is constant across step (a), so the
 *  answer is the same whichever lane triggers the lazy evaluation. */
obs::Slot
RtUnit::classifyIdle(bool have_work, bool need_fetch,
                     bool in_datapath) const
{
    if (!have_work)
        return obs::Slot::IdleNoWork;
    if (mshr_refused_)
        return obs::Slot::StallMshrFull;
    if (!mem_queue_.empty()) {
        // The gating request: the earliest-completing in-flight fetch
        // (queue order breaks ties) — the one the unit is actually
        // waiting out. Attribute this cycle to the phase containing
        // it, clamped into the request's lifetime so a fetch retiring
        // later this same cycle still lands in its last real phase.
        const MemRequest *g = &mem_queue_.front();
        for (const MemRequest &r : mem_queue_)
            if (r.done_cycle < g->done_cycle)
                g = &r;
        const uint64_t t =
            now_ < g->done_cycle
                ? now_
                : (g->done_cycle ? g->done_cycle - 1 : 0);
        if (t < g->l1_until)
            return obs::Slot::StallL1Miss;
        if (t < g->ring_until)
            return obs::Slot::StallRingHop;
        if (t < g->queue_until)
            return obs::Slot::StallL2BankQueue;
        return obs::Slot::StallL2Fill;
    }
    if (need_fetch)
        return obs::Slot::StallL1Miss; // waiting on issue bandwidth
    if (in_datapath)
        return obs::Slot::StallDrain;
    return obs::Slot::IdleNoWork;
}

/** Route one slot's fetch to memory: straight to the L1 when the MSHR
 *  file is disabled (the legacy unbounded path, bit-for-bit), else
 *  merge-or-allocate through the file. `issued` is the memory-issue
 *  bandwidth consumed this cycle; merges are free (they ride an
 *  in-flight fill instead of going to memory). The current cycle rides
 *  into MemoryModel::access so a chip-mode L1 can anchor its SharedL2
 *  requests (bank queues, in-flight merges) on the lock-step chip
 *  clock; single-unit backends ignore it. The access's phase breakdown
 *  becomes absolute boundaries on the queued request — what
 *  classifyIdle() attributes stalled slots against. */
bool
RtUnit::issueFetch(size_t slot, bool is_leaf, uint32_t index,
                   uint32_t count, unsigned &issued)
{
    uint64_t addr;
    uint32_t bytes;
    fetchTarget(is_leaf, index, count, &addr, &bytes);
    if (!mshrs_.enabled()) {
        AccessBreakdown bd;
        const unsigned lat = mem_->access(addr, bytes, now_, &bd);
        MemRequest req{slot, now_ + lat, addr};
        req.l1_until = now_ + bd.l1;
        req.ring_until = req.l1_until + bd.ring;
        req.queue_until = req.ring_until + bd.queue;
        mem_queue_.push_back(req);
        ++stats_.mem_requests;
        ++issued;
        if (trace_)
            trace_->record({now_, trace_unit_,
                            obs::TraceEvent::FetchIssue, addr,
                            uint64_t(slot)});
        return true;
    }
    if (const MshrFile::Entry *inflight = mshrs_.lookup(addr)) {
        // Duplicate of an in-flight fill: complete when it does, and
        // wait through the same phases it does.
        MemRequest req{slot, inflight->done_cycle, addr};
        req.l1_until = inflight->l1_until;
        req.ring_until = inflight->ring_until;
        req.queue_until = inflight->queue_until;
        mem_queue_.push_back(req);
        ++stats_.mshr.merges;
        if (trace_)
            trace_->record({now_, trace_unit_,
                            obs::TraceEvent::MshrMerge, addr,
                            uint64_t(slot)});
        return true;
    }
    if (mshrs_.full()) {
        ++stats_.mshr.stalls_full;
        mshr_refused_ = true;
        if (trace_)
            trace_->record({now_, trace_unit_,
                            obs::TraceEvent::MshrStallFull, addr,
                            uint64_t(slot)});
        return false; // back-pressure: slot retries next cycle
    }
    if (issued >= cfg_.mem_requests_per_cycle)
        return false;
    AccessBreakdown bd;
    const unsigned lat = mem_->access(addr, bytes, now_, &bd);
    const uint64_t done = now_ + lat;
    MemRequest req{slot, done, addr};
    req.l1_until = now_ + bd.l1;
    req.ring_until = req.l1_until + bd.ring;
    req.queue_until = req.ring_until + bd.queue;
    mshrs_.allocate(addr, done, req.l1_until, req.ring_until,
                    req.queue_until);
    mem_queue_.push_back(req);
    ++stats_.mshr.allocations;
    ++stats_.mem_requests;
    ++issued;
    if (trace_) {
        trace_->record({now_, trace_unit_, obs::TraceEvent::FetchIssue,
                        addr, uint64_t(slot)});
        trace_->record({now_, trace_unit_, obs::TraceEvent::MshrAlloc,
                        addr, mshrs_.inflightCount()});
        trace_->record({now_, trace_unit_,
                        obs::TraceEvent::MshrResidency,
                        mshrs_.inflightCount(), 0});
    }
    return true;
}

void
RtUnit::submit(const core::Ray &ray, uint32_t ray_id, uint32_t job)
{
    pending_rays_.push_back(PendingRay{ray, ray_id, job});
    if (results_.size() <= ray_id)
        results_.resize(ray_id + 1);
    ++outstanding_;
}

void
RtUnit::submitKnn(const KnnQuery &query, uint32_t query_id)
{
    if (!knnMode())
        throw std::logic_error(
            "RtUnit::submitKnn: unit was not constructed over a "
            "KnnIndex");
    if (!knn_index_->points.empty() &&
        query.point.size() != knn_index_->dims)
        throw std::invalid_argument("knn: query dimension mismatch");
    pending_knn_.push_back({query, query_id});
    if (knn_results_.size() <= query_id)
        knn_results_.resize(query_id + 1);
    ++outstanding_;
}

std::vector<core::DatapathInput>
RtUnit::knnCandidateBeats(size_t slot, uint32_t tri) const
{
    const KnnEntry &e = knn_entries_[slot];
    const DataPoint &p = knn_index_->points[bvh_.tris[tri].id];
    // The tag routes the out-of-order final beat back to its query and
    // candidate: entry slot in the high half, triangle index (unique
    // per candidate) in the low half.
    return knnJobBeats(e.point.data(), p.coords.data(),
                       knn_index_->dims, e.metric,
                       (uint64_t(slot) << 32) | tri);
}

/** k-NN publish: each lane first finishes the candidate it is
 *  streaming (all beats of one job stay on one lane, in order, so the
 *  lane's accumulator only ever holds that job's partial sums); free
 *  lanes claim the first pending candidates in entry order, distinct
 *  candidates per lane. */
void
RtUnit::publishKnn()
{
    std::vector<uint32_t> claimed(knn_entries_.size(), 0);
    for (size_t l = 0; l < lanes_.size(); ++l) {
        KnnLaneJob &job = knn_lane_[l];
        if (job.active) {
            lanes_[l]->in().valid = true;
            lanes_[l]->in().bits = job.beats[job.next_beat];
            offers_[l].entry =
                size_t(job.beats[job.next_beat].tag >> 32);
            continue;
        }
        bool found = false;
        for (size_t i = 0; i < knn_entries_.size(); ++i) {
            const KnnEntry &e = knn_entries_[i];
            if (e.state != EntryState::ReadyTri ||
                claimed[i] >= e.pending_cands.size())
                continue;
            const uint32_t tri = e.pending_cands[claimed[i]];
            lanes_[l]->in().valid = true;
            lanes_[l]->in().bits = knnCandidateBeats(i, tri).front();
            offers_[l] = {i, claimed[i]};
            ++claimed[i];
            found = true;
            break;
        }
        if (!found)
            lanes_[l]->in().valid = false;
    }
}

void
RtUnit::finishKnnQuery(KnnEntry &e)
{
    knn_results_[e.query_id] = KnnResult{e.topk.sorted()};
    ++stats_.knn.queries;
    --outstanding_;
    e.state = EntryState::Idle;
    e.draining = false;
}

void
RtUnit::popKnnFrontier(KnnEntry &e)
{
    const bool prune = e.metric == KnnMetric::Euclidean;
    while (!e.frontier.empty()) {
        std::pop_heap(e.frontier.begin(), e.frontier.end(),
                      KnnFrontierAfter{});
        const KnnFrontierItem item = e.frontier.back();
        e.frontier.pop_back();
        if (prune && e.topk.full() &&
            knnPrunable(item.lb, e.topk.radius())) {
            // Heap-ordered frontier: once the best remaining item is
            // prunable, so is everything behind it.
            stats_.knn.pruned += 1 + e.frontier.size();
            e.frontier.clear();
            break;
        }
        e.fetch_is_leaf = item.is_leaf;
        e.fetch_index = item.index;
        e.fetch_count = item.count;
        e.state = EntryState::NeedFetch;
        return;
    }
    // No work left to fetch; the query finishes once every started
    // candidate's score has drained from the pipeline.
    e.state = EntryState::InFlight;
    e.draining = true;
    maybeFinishKnn(e);
}

void
RtUnit::expandKnnNode(KnnEntry &e)
{
    ++stats_.knn.nodes_visited;
    const bool prune = e.metric == KnnMetric::Euclidean;
    const WideNode &node = bvh_.nodes[e.fetch_index];
    for (const WideNode::Child &c : node.child) {
        if (c.kind == WideNode::Kind::Empty)
            continue;
        const double lb =
            prune ? knnBoxLowerBound(c.bounds, e.point.data(),
                                     knn_index_->dims)
                  : 0.0;
        if (prune && e.topk.full() &&
            knnPrunable(lb, e.topk.radius())) {
            ++stats_.knn.pruned;
            continue;
        }
        e.frontier.push_back({lb, c.kind == WideNode::Kind::Leaf,
                              c.index, c.count, e.seq++});
        std::push_heap(e.frontier.begin(), e.frontier.end(),
                       KnnFrontierAfter{});
    }
    if (e.frontier.size() > stats_.knn.frontier_peak)
        stats_.knn.frontier_peak = e.frontier.size();
}

void
RtUnit::handleKnnResult(const core::DatapathOutput &out)
{
    // Every beat of a job produces an output; only the final beat
    // (reset echo set) carries the fully accumulated distance.
    const bool final_beat = out.op == Opcode::Euclidean
                                ? out.euclidean_reset
                                : out.angular_reset;
    if (!final_beat)
        return;
    KnnEntry &e = knn_entries_[size_t(out.tag >> 32)];
    const uint32_t tri = uint32_t(out.tag);
    const float score =
        out.op == Opcode::Euclidean
            ? fromBits(out.euclidean_accumulator)
            : golden::knnAngularScore(
                  fromBits(out.angular_dot_product),
                  fromBits(out.angular_norm));
    e.topk.offer(score, knn_index_->points[bvh_.tris[tri].id].id);
    --e.inflight_cands;
    maybeFinishKnn(e);
}

/** k-NN advance: the same (a)-(d) steps over query entries. Node
 *  expansion (the double-precision box lower bound) happens host-side
 *  at fetch arrival; only candidate distances consume datapath
 *  beats. */
void
RtUnit::advanceKnn()
{
    // (a) Input handshake outcome, per lane. Accepted starts are
    // claimed in descending lane order so a shared entry's pending
    // positions (claimed ascending in publishKnn) stay valid.
    int waiting_mem = -1;
    obs::Slot idle_cause = obs::Slot::kCount; // lazily classified
    std::array<bool, kMaxIssueWidth> fired{};
    for (size_t l = 0; l < lanes_.size(); ++l) {
        const auto &in = lanes_[l]->in();
        if (offers_[l].entry != kNoOffer && in.valid && in.ready) {
            fired[l] = true;
            ++stats_.datapath_beats;
            ++stats_.beats_by_op[size_t(in.bits.op)];
            ++stats_.knn.distance_beats;
            ++stats_.slots[obs::Slot::Issued];
        } else {
            ++stats_.datapath_idle;
            if (waiting_mem < 0) {
                waiting_mem = 0;
                for (const KnnEntry &e : knn_entries_) {
                    if (e.state == EntryState::Fetching ||
                        e.state == EntryState::NeedFetch) {
                        waiting_mem = 1;
                        break;
                    }
                }
            }
            if (waiting_mem)
                ++stats_.stall_on_memory;
            if (idle_cause == obs::Slot::kCount) {
                bool need_fetch = false, in_dp = false;
                for (const KnnEntry &e : knn_entries_) {
                    if (e.state == EntryState::NeedFetch)
                        need_fetch = true;
                    else if (e.state == EntryState::ReadyTri ||
                             e.state == EntryState::InFlight)
                        in_dp = true;
                }
                for (const KnnLaneJob &j : knn_lane_)
                    in_dp = in_dp || j.active;
                idle_cause = classifyIdle(
                    outstanding_ > 0 || !pending_knn_.empty(),
                    need_fetch, in_dp);
            }
            ++stats_.slots[idle_cause];
        }
    }
    for (size_t l = lanes_.size(); l-- > 0;) {
        if (!fired[l])
            continue;
        KnnLaneJob &job = knn_lane_[l];
        if (job.active) {
            ++job.next_beat;
            if (job.next_beat == job.beats.size())
                job = KnnLaneJob{}; // last beat accepted: lane free
            continue;
        }
        // First beat of a new candidate: take it off the entry and
        // lock the lane until the job's last beat is accepted.
        KnnEntry &e = knn_entries_[offers_[l].entry];
        const size_t pos = offers_[l].beat;
        const uint32_t tri = e.pending_cands[pos];
        e.pending_cands.erase(e.pending_cands.begin() +
                              ptrdiff_t(pos));
        ++e.inflight_cands;
        ++stats_.knn.candidates;
        job.beats = knnCandidateBeats(offers_[l].entry, tri);
        job.next_beat = 1;
        job.active = job.next_beat < job.beats.size();
        if (!job.active)
            job = KnnLaneJob{};
    }
    // Entries whose leaf work fully issued move on to the next
    // frontier item (the next fetch overlaps the in-flight scores).
    for (KnnEntry &e : knn_entries_) {
        if (e.state == EntryState::ReadyTri &&
            e.pending_cands.empty())
            popKnnFrontier(e);
    }

    // (b) Output handshake outcome, per lane.
    for (core::RayFlexDatapath *lane : lanes_) {
        if (lane->out().valid && lane->out().ready)
            handleKnnResult(lane->out().bits);
    }

    // (c) Memory: completion-ordered retirement, then issue — same
    // shared L1 / MSHR path as the ray schedulers.
    retireMshrs();
    for (auto it = mem_queue_.begin(); it != mem_queue_.end();) {
        if (it->done_cycle <= now_) {
            if (trace_)
                trace_->record({now_, trace_unit_,
                                obs::TraceEvent::FetchFill, it->addr,
                                uint64_t(it->entry)});
            KnnEntry &e = knn_entries_[it->entry];
            if (e.fetch_is_leaf) {
                ++stats_.knn.leaves_visited;
                for (uint32_t t = 0; t < e.fetch_count; ++t)
                    e.pending_cands.push_back(e.fetch_index + t);
                e.state = EntryState::ReadyTri;
            } else {
                expandKnnNode(e);
                popKnnFrontier(e);
            }
            it = mem_queue_.erase(it);
        } else {
            ++it;
        }
    }
    unsigned issued = 0;
    for (size_t i = 0; i < knn_entries_.size(); ++i) {
        KnnEntry &e = knn_entries_[i];
        if (e.state != EntryState::NeedFetch)
            continue;
        if (!mshrs_.enabled() &&
            issued >= cfg_.mem_requests_per_cycle)
            break;
        if (issueFetch(i, e.fetch_is_leaf, e.fetch_index,
                       e.fetch_count, issued))
            e.state = EntryState::Fetching;
    }

    // (d) Refill free slots with queued queries.
    for (size_t i = 0;
         i < knn_entries_.size() && !pending_knn_.empty(); ++i) {
        KnnEntry &e = knn_entries_[i];
        if (e.state != EntryState::Idle)
            continue;
        PendingKnn pk = std::move(pending_knn_.front());
        pending_knn_.pop_front();
        e = KnnEntry{};
        e.query_id = pk.query_id;
        e.k = pk.query.k;
        e.metric = pk.query.metric;
        e.point = std::move(pk.query.point);
        e.topk.reset(e.k);
        if (knn_index_->points.empty() || e.k == 0) {
            finishKnnQuery(e); // degenerate queries finish at admission
            continue;
        }
        e.frontier.push_back({0.0, false, 0, 0, e.seq++});
        if (e.frontier.size() > stats_.knn.frontier_peak)
            stats_.knn.frontier_peak = e.frontier.size();
        popKnnFrontier(e);
    }
}

void
RtUnit::popWork(Entry &e)
{
    // Pop past work items pruned by the current best hit.
    while (!e.stack.empty()) {
        WorkItem w = e.stack.back();
        e.stack.pop_back();
        if (e.best.hit && w.entry_t > e.best.t)
            continue;
        if (w.is_leaf) {
            e.leaf_first = w.index;
            e.leaf_next = w.index;
        } else {
            e.node = w.index;
        }
        // Both node and leaf data come from memory; leaf_count doubles
        // as the fetched-data kind (> 0 leaf, 0 node).
        e.leaf_count = w.is_leaf ? w.count : 0;
        e.state = EntryState::NeedFetch;
        return;
    }
    // Traversal complete.
    finishRay(e, e.best);
}

void
RtUnit::finishRay(Entry &e, const HitRecord &rec)
{
    results_[e.ray_id] = rec;
    e.state = EntryState::Idle;
    e.stack.clear();
    --outstanding_;
    ++stats_.rays_completed;
}

/** Move a packet's retired rays into the unit's results. */
void
RtUnit::drainCompleted(PacketTraversal &p)
{
    if (p.completed().empty())
        return;
    if (trace_)
        trace_->record({now_, trace_unit_,
                        obs::TraceEvent::PacketRetire,
                        uint64_t(&p - packets_.data()),
                        p.completed().size()});
    for (const auto &[id, rec] : p.completed()) {
        results_[id] = rec;
        --outstanding_;
        ++stats_.rays_completed;
    }
    p.completed().clear();
}

/** Occupancy-driven compaction (packet.compact_below > 0): pair
 *  packets sitting at a fetch boundary whose live occupancy fell
 *  below the threshold and repack the donor's surviving lanes into
 *  the recipient, freeing the donor slot for fresh rays. Greedy in
 *  slot order, so the pairing is a pure function of packet state and
 *  the engine's determinism contract holds. Two thinned packets
 *  rarely reach a fetch boundary on the same cycle, so a
 *  below-threshold packet DEFERS its next fetch for up to
 *  kCompactWaitCycles (see the issue loop in advancePacket) — the
 *  repacking window in which a partner can appear. */
void
RtUnit::compactPackets()
{
    const unsigned threshold = cfg_.packet.compact_below;
    if (threshold == 0)
        return;
    for (size_t i = 0; i < packets_.size(); ++i) {
        PacketTraversal &p = packets_[i];
        if (!p.compactable())
            continue;
        unsigned live = p.liveLanes();
        if (live == 0 || live >= threshold)
            continue;
        for (size_t j = i + 1;
             j < packets_.size() && live < threshold; ++j) {
            PacketTraversal &q = packets_[j];
            if (!q.compactable())
                continue;
            const unsigned ql = q.liveLanes();
            if (ql == 0 || ql >= threshold ||
                live + ql > cfg_.packet.width)
                continue;
            p.absorb(q);
            if (trace_)
                trace_->record({now_, trace_unit_,
                                obs::TraceEvent::PacketCompact,
                                uint64_t(j), uint64_t(i)});
            compact_hold_[i] = 0;
            compact_hold_[j] = 0;
            live += ql;
        }
    }
}

/** Packet-mode publish: offer up to issue_width beats, scanning
 *  packets first-ready (same policy as the scalar path); one packet
 *  with several pending beats may fill several lanes in one cycle —
 *  the SIMD-style multi-ray beats of the wavefront scheduler. */
void
RtUnit::publishPacket()
{
    size_t lane = 0;
    for (size_t i = 0; i < packets_.size() && lane < lanes_.size();
         ++i) {
        PacketTraversal &p = packets_[i];
        if (!p.issueReady())
            continue;
        p.pruneDeadBeats();
        const size_t nb = p.pendingCount();
        for (size_t j = 0; j < nb && lane < lanes_.size();
             ++j, ++lane) {
            lanes_[lane]->in().valid = true;
            lanes_[lane]->in().bits = p.makeBeatAt(j, i);
            offers_[lane] = {i, j};
        }
    }
    for (; lane < lanes_.size(); ++lane)
        lanes_[lane]->in().valid = false;
}

void
RtUnit::publish(uint64_t)
{
    // Always willing to drain results, every lane.
    for (core::RayFlexDatapath *l : lanes_)
        l->out().ready = true;
    for (LaneOffer &o : offers_)
        o = LaneOffer{};

    if (knnMode()) {
        publishKnn();
        return;
    }
    if (packetized()) {
        publishPacket();
        return;
    }

    // Offer one beat per lane from the first ready entries
    // (round-robin would be fairer; first-ready is sufficient for
    // utilization studies). An entry has at most one beat in flight,
    // so the scan hands each lane a distinct entry.
    size_t next = 0;
    for (size_t l = 0; l < lanes_.size(); ++l) {
        bool found = false;
        for (size_t i = next; i < entries_.size(); ++i) {
            Entry &e = entries_[i];
            if (e.state == EntryState::ReadyBox) {
                DatapathInput in;
                in.op = Opcode::RayBox;
                in.ray = e.ray;
                in.tag = i;
                const WideNode &node = bvh_.nodes[e.node];
                for (int c = 0; c < 4; ++c) {
                    in.boxes[c] =
                        node.child[c].kind == WideNode::Kind::Empty
                            ? emptySlotBox()
                            : node.child[c].bounds.toIoBox();
                }
                lanes_[l]->in().valid = true;
                lanes_[l]->in().bits = in;
            } else if (e.state == EntryState::ReadyTri) {
                DatapathInput in;
                in.op = Opcode::RayTriangle;
                in.ray = e.ray;
                in.tag = i;
                in.tri = bvh_.tris[e.leaf_next].toIoTriangle();
                lanes_[l]->in().valid = true;
                lanes_[l]->in().bits = in;
            } else {
                continue;
            }
            offers_[l].entry = i;
            next = i + 1;
            found = true;
            break;
        }
        if (!found)
            lanes_[l]->in().valid = false;
    }
}

void
RtUnit::handleResult(const core::DatapathOutput &out)
{
    Entry &e = entries_[out.tag];
    if (out.op == Opcode::RayBox) {
        const WideNode &node = bvh_.nodes[e.node];
        // Push hit children farthest-first so the nearest pops first.
        for (int i = 3; i >= 0; --i) {
            uint8_t slot = out.box.order[i];
            if (!out.box.hit[slot])
                continue;
            const auto &c = node.child[slot];
            WorkItem w;
            w.entry_t = fromBits(out.box.sorted_dist[i]);
            if (c.kind == WideNode::Kind::Internal) {
                w.is_leaf = false;
                w.index = c.index;
            } else {
                w.is_leaf = true;
                w.index = c.index;
                w.count = c.count;
            }
            e.stack.push_back(w);
        }
        popWork(e);
    } else {
        // e.inflight_tri was latched at issue time (when leaf_next
        // advanced past it), so it names exactly the triangle this
        // result tested.
        const SceneTriangle &tri = bvh_.tris[e.inflight_tri];
        if (out.tri.hit) {
            float den = fromBits(out.tri.t_den);
            if (den != 0.0f) {
                float t = fromBits(out.tri.t_num) / den;
                if (t >= e.t_beg && t <= e.t_max &&
                    (!e.best.hit || t < e.best.t)) {
                    if (cfg_.mode == TraversalMode::Any) {
                        // First in-extent hit retires the ray; the
                        // record carries only the flag (see
                        // TraversalMode::Any).
                        HitRecord occluded;
                        occluded.hit = true;
                        finishRay(e, occluded);
                        return;
                    }
                    e.best.hit = true;
                    e.best.t = t;
                    e.best.triangle_id = tri.id;
                    float u = fromBits(out.tri.uvw[0]);
                    float v = fromBits(out.tri.uvw[1]);
                    float w = fromBits(out.tri.uvw[2]);
                    e.best.u = u / den;
                    e.best.v = v / den;
                    e.best.w = w / den;
                }
            }
        }
        if (e.leaf_next < e.leaf_first + e.leaf_count) {
            e.state = EntryState::ReadyTri; // more triangles in leaf
        } else {
            popWork(e);
        }
    }
}

/** Packet-mode advance: the same (a)-(d) steps over packet slots. */
void
RtUnit::advancePacket()
{
    // (a) Input handshake outcome, per lane. Accepted beats are popped
    // in descending lane order so a packet's remaining pending-beat
    // indices stay valid (its offers were taken in ascending order).
    // waiting-on-memory is computed lazily on the first idle lane and
    // cached for the cycle (no packet changes NeedFetch/Fetching state
    // during this step, so the first answer holds for every lane).
    int waiting_mem = -1;
    obs::Slot idle_cause = obs::Slot::kCount; // lazily classified
    std::array<bool, kMaxIssueWidth> fired{};
    for (size_t l = 0; l < lanes_.size(); ++l) {
        const auto &in = lanes_[l]->in();
        if (offers_[l].entry != kNoOffer && in.valid && in.ready) {
            fired[l] = true;
            ++stats_.datapath_beats;
            ++stats_.beats_by_op[size_t(in.bits.op)];
            ++stats_.slots[obs::Slot::Issued];
        } else {
            ++stats_.datapath_idle;
            if (waiting_mem < 0) {
                waiting_mem = 0;
                for (const PacketTraversal &p : packets_) {
                    if (p.waitingOnMemory()) {
                        waiting_mem = 1;
                        break;
                    }
                }
            }
            if (waiting_mem)
                ++stats_.stall_on_memory;
            if (idle_cause == obs::Slot::kCount) {
                bool need_fetch = false, in_dp = false;
                for (const PacketTraversal &p : packets_) {
                    if (p.needsFetch())
                        need_fetch = true;
                    else if (p.issueReady())
                        in_dp = true;
                }
                for (const auto &q : lane_inflight_)
                    in_dp = in_dp || !q.empty();
                idle_cause = classifyIdle(
                    outstanding_ > 0 || !pending_rays_.empty(),
                    need_fetch, in_dp);
            }
            ++stats_.slots[idle_cause];
        }
    }
    for (size_t l = lanes_.size(); l-- > 0;) {
        if (!fired[l])
            continue;
        const LaneOffer o = offers_[l];
        lane_inflight_[l].push_back(
            {o.entry, packets_[o.entry].takeBeatAt(o.beat)});
    }

    // (b) Output handshake outcome, per lane. Each lane is in order,
    // so its front in-flight beat identifies the result's packet,
    // member lane and triangle. A result can complete the packet's
    // current item, push children and retire lanes whose work ran out.
    for (size_t l = 0; l < lanes_.size(); ++l) {
        const auto &out = lanes_[l]->out();
        if (out.valid && out.ready) {
            const InflightBeat ib = lane_inflight_[l].front();
            lane_inflight_[l].pop_front();
            PacketTraversal &p = packets_[ib.slot];
            p.handleResult(out.bits, ib.beat);
            drainCompleted(p);
        }
    }

    // Occupancy-driven repacking at fetch boundaries, before new
    // fetches are issued for the packets involved.
    compactPackets();

    // (c) Memory: completion-ordered retirement, then issue — one
    // fetch serves a packet's whole active mask, and the MSHR file
    // (when enabled) merges duplicate in-flight targets across
    // packets.
    retireMshrs();
    for (auto it = mem_queue_.begin(); it != mem_queue_.end();) {
        if (it->done_cycle <= now_) {
            if (trace_)
                trace_->record({now_, trace_unit_,
                                obs::TraceEvent::FetchFill, it->addr,
                                uint64_t(it->entry)});
            packets_[it->entry].fetchArrived();
            it = mem_queue_.erase(it);
        } else {
            ++it;
        }
    }
    unsigned issued = 0;
    for (size_t i = 0; i < packets_.size(); ++i) {
        PacketTraversal &p = packets_[i];
        if (!p.needsFetch())
            continue;
        if (!mshrs_.enabled() &&
            issued >= cfg_.mem_requests_per_cycle)
            break;
        // A below-threshold packet defers its fetch inside the
        // repacking window, waiting for a partner to reach a fetch
        // boundary (compactPackets pairs them). The window is bounded,
        // so an unlucky packet resumes alone after it expires.
        if (cfg_.packet.compact_below > 0 &&
            compact_hold_[i] < kCompactWaitCycles) {
            const unsigned live = p.liveLanes();
            if (live > 0 && live < cfg_.packet.compact_below) {
                ++compact_hold_[i];
                continue;
            }
        }
        if (issueFetch(i, p.fetchIsLeaf(), p.fetchIndex(),
                       p.fetchCount(), issued)) {
            p.fetchIssued();
            compact_hold_[i] = 0;
        }
    }

    // (d) Refill idle packet slots with queued rays. Consecutive rays
    // form one packet, so coherent submissions (camera batches) become
    // coherent packets.
    for (size_t i = 0; i < packets_.size() && !pending_rays_.empty();
         ++i) {
        PacketTraversal &p = packets_[i];
        if (!p.idle())
            continue;
        p.admit(pending_rays_);
        if (trace_)
            trace_->record({now_, trace_unit_,
                            obs::TraceEvent::PacketForm, uint64_t(i),
                            p.liveLanes()});
        drainCompleted(p); // empty-scene rays complete at admission
    }

    // Occupancy counter sample: live lanes across all packet slots,
    // emitted on change only (tracing off costs one pointer test).
    if (trace_) {
        uint64_t occ = 0;
        for (const PacketTraversal &p : packets_)
            occ += p.liveLanes();
        if (occ != trace_occupancy_last_) {
            trace_occupancy_last_ = occ;
            trace_->record({now_, trace_unit_,
                            obs::TraceEvent::PacketOccupancy, occ, 0});
        }
    }
}

void
RtUnit::advance(uint64_t cycle)
{
    // A finished unit idles: in chip mode the shared simulator keeps
    // ticking until the slowest unit drains, and a done unit must stop
    // accumulating cycles/idle-slot counters (its per-unit `cycles` is
    // the cycle its own rays completed). Unreachable under run(),
    // whose loop stops at outstanding_ == 0 — single-unit schedules
    // are bit-for-bit unaffected.
    if (outstanding_ == 0 && pending_rays_.empty() &&
        pending_knn_.empty())
        return;
    now_ = cycle;
    ++stats_.cycles;

    if (knnMode()) {
        advanceKnn();
        return;
    }
    if (packetized()) {
        advancePacket();
        return;
    }

    // (a) Input handshake outcome, per lane. waiting-on-memory is
    // computed lazily on the first idle lane and cached for the cycle
    // (accepted beats only move Ready* entries to InFlight, never in
    // or out of NeedFetch/Fetching, so the first answer holds).
    int waiting_mem = -1;
    obs::Slot idle_cause = obs::Slot::kCount; // lazily classified
    for (size_t l = 0; l < lanes_.size(); ++l) {
        const auto &in = lanes_[l]->in();
        if (offers_[l].entry != kNoOffer && in.valid && in.ready) {
            Entry &e = entries_[offers_[l].entry];
            ++stats_.datapath_beats;
            ++stats_.beats_by_op[size_t(in.bits.op)];
            ++stats_.slots[obs::Slot::Issued];
            if (e.state == EntryState::ReadyBox) {
                e.state = EntryState::InFlight;
            } else {
                e.inflight_tri = e.leaf_next;
                ++e.leaf_next;
                e.state = EntryState::InFlight;
            }
        } else {
            ++stats_.datapath_idle;
            if (waiting_mem < 0) {
                waiting_mem = 0;
                for (const Entry &e : entries_) {
                    if (e.state == EntryState::Fetching ||
                        e.state == EntryState::NeedFetch) {
                        waiting_mem = 1;
                        break;
                    }
                }
            }
            if (waiting_mem)
                ++stats_.stall_on_memory;
            if (idle_cause == obs::Slot::kCount) {
                // Ready* counts as in-datapath work: accepted offers
                // move Ready -> InFlight during this very loop, so
                // folding both states keeps the answer constant
                // whichever lane classifies first.
                bool need_fetch = false, in_dp = false;
                for (const Entry &e : entries_) {
                    if (e.state == EntryState::NeedFetch)
                        need_fetch = true;
                    else if (e.state == EntryState::ReadyBox ||
                             e.state == EntryState::ReadyTri ||
                             e.state == EntryState::InFlight)
                        in_dp = true;
                }
                idle_cause = classifyIdle(
                    outstanding_ > 0 || !pending_rays_.empty(),
                    need_fetch, in_dp);
            }
            ++stats_.slots[idle_cause];
        }
    }

    // (b) Output handshake outcome, per lane.
    for (core::RayFlexDatapath *lane : lanes_) {
        if (lane->out().valid && lane->out().ready)
            handleResult(lane->out().bits);
    }

    // (c) Memory: retire due responses, issue new fetches. Retirement
    // is completion-ordered, not FIFO: with the cache backend a cheap
    // hit issued behind an expensive miss completes first and must not
    // be held at the queue head, or the hit latency the cache model
    // exists to expose would be masked. (Under a uniform-latency
    // backend completion order equals issue order, so this retires
    // exactly what the original FIFO pop did, cycle for cycle.)
    retireMshrs();
    for (auto it = mem_queue_.begin(); it != mem_queue_.end();) {
        if (it->done_cycle <= now_) {
            if (trace_)
                trace_->record({now_, trace_unit_,
                                obs::TraceEvent::FetchFill, it->addr,
                                uint64_t(it->entry)});
            Entry &e = entries_[it->entry];
            e.state = e.leaf_count > 0 ? EntryState::ReadyTri
                                       : EntryState::ReadyBox;
            it = mem_queue_.erase(it);
        } else {
            ++it;
        }
    }
    unsigned issued = 0;
    for (size_t i = 0; i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        if (e.state != EntryState::NeedFetch)
            continue;
        if (!mshrs_.enabled() &&
            issued >= cfg_.mem_requests_per_cycle)
            break;
        if (issueFetch(i, e.leaf_count > 0, e.leaf_count > 0
                                                ? e.leaf_first
                                                : e.node,
                       e.leaf_count, issued))
            e.state = EntryState::Fetching;
    }

    // (d) Refill free slots with queued rays.
    for (size_t i = 0; i < entries_.size() && !pending_rays_.empty();
         ++i) {
        Entry &e = entries_[i];
        if (e.state != EntryState::Idle)
            continue;
        const PendingRay pr = pending_rays_.front();
        pending_rays_.pop_front();
        e = Entry{};
        e.ray = pr.ray;
        e.ray_id = pr.ray_id;
        e.t_beg = fromBits(pr.ray.t_beg);
        e.t_max = fromBits(pr.ray.t_end);
        if (bvh_.tris.empty()) {
            results_[e.ray_id] = HitRecord{};
            --outstanding_;
            ++stats_.rays_completed;
            continue;
        }
        e.stack.push_back({false, 0, 0, 0.0f});
        popWork(e);
    }
}

void
RtUnit::registerWith(pipeline::Simulator &sim)
{
    for (core::RayFlexDatapath *lane : lanes_)
        lane->registerWith(sim);
    sim.add(this);
}

void
RtUnit::beginRun()
{
    stats_ = {};
    mshrs_.reset();
    mshr_refused_ = false;
    trace_occupancy_last_ = ~uint64_t(0);
    for (auto &q : lane_inflight_)
        q.clear();
    for (KnnLaneJob &j : knn_lane_)
        j = KnnLaneJob{};
    if (mem_is_shared_)
        mem_before_ = mem_->stats(); // warm: keep contents, report delta
    else {
        mem_before_ = {};
        mem_->reset(); // cold cache per run: runs are reproducible
    }
}

RtUnitStats
RtUnit::endRun()
{
    stats_.mem = mem_->stats().deltaSince(mem_before_);
    if (outstanding_ > 0)
        throw std::runtime_error("RtUnit::run: rays did not complete");
    return stats_;
}

RtUnitStats
RtUnit::run(uint64_t max_cycles)
{
    pipeline::Simulator sim;
    registerWith(sim);
    beginRun();
    while (outstanding_ > 0 && stats_.cycles < max_cycles)
        sim.tick();
    return endRun();
}

} // namespace rayflex::bvh
