/**
 * @file
 * A cycle-level RT-unit wrapper around the RayFlex pipeline.
 *
 * The paper models only the intersection-test datapath (the highlighted
 * box of Fig. 2) and defers warp management and memory scheduling to the
 * enclosing RT unit (as modelled by Vulkan-Sim). This module provides a
 * simplified version of that enclosing unit so the pipelined datapath
 * can be exercised under realistic traversal traffic: a ray buffer holds
 * in-flight rays with their traversal stacks, a pluggable MemoryModel
 * (bvh/mem_model.hh) — the unit's SHARED L1, serving every slot, and
 * optionally fronted by a bounded MSHR file (RtUnitConfig::mshrs)
 * that merges duplicate in-flight fetches and back-pressures slots
 * when full — supplies BVH data, and a scheduler feeds ready rays
 * into a datapath of RtUnitConfig::issue_width replicated lanes, up
 * to one beat per lane per cycle. Two scheduling modes exist: the
 * scalar mode traces one independent ray per ray-buffer entry, and
 * the packet/wavefront mode (RtUnitConfig::packet, bvh/packet.hh)
 * groups coherent rays into packets that share a traversal stack and
 * one BVH fetch per visited node, optionally repacking
 * divergence-thinned packets (PacketConfig::compact_below). This is
 * the model used to measure datapath utilization, memory sensitivity
 * and rays/cycle on real scenes.
 */
#ifndef RAYFLEX_BVH_RT_UNIT_HH
#define RAYFLEX_BVH_RT_UNIT_HH

#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "bvh/knn.hh"
#include "bvh/mem_model.hh"
#include "bvh/packet.hh"
#include "bvh/traversal.hh"
#include "core/datapath.hh"
#include "obs/slot_accounting.hh"
#include "obs/trace.hh"
#include "pipeline/component.hh"

namespace rayflex::bvh
{

/** What the unit resolves per ray. */
enum class TraversalMode : uint8_t {
    /** Resolve the closest hit inside the ray extent. */
    Closest,
    /** Retire the ray on the first hit inside the ray extent
     *  (shadow/occlusion queries). The result record carries only the
     *  `hit` flag; t, triangle id and barycentrics stay zero. */
    Any,
};

/** Widest datapath the unit can drive (issue lanes per cycle). */
inline constexpr unsigned kMaxIssueWidth = 8;

/** RT-unit configuration. */
struct RtUnitConfig
{
    unsigned ray_buffer_entries = 32; ///< rays concurrently in flight
    /** Node fetch latency, cycles (MemBackend::FixedLatency). */
    unsigned mem_latency = 20;
    unsigned mem_requests_per_cycle = 1;
    TraversalMode mode = TraversalMode::Closest;

    /** Datapath issue lanes, 1..kMaxIssueWidth. The unit drives up to
     *  this many beats per cycle into the datapath by replicating the
     *  pipeline lane behind one valid/ready handshake per lane: lane 0
     *  is the caller's datapath, lanes 1..N-1 are private replicas
     *  built from the same DatapathConfig. issue_width == 1 (the
     *  default) preserves the single-beat scalar and packet schedules
     *  bit-for-bit. */
    unsigned issue_width = 1;

    /** Bounded MSHR file fronting the unit's shared L1 (bvh::MshrFile).
     *  0 (the default) disables the file — the legacy unbounded path,
     *  bit-for-bit. When > 0, duplicate in-flight fetches of the same
     *  node/leaf merge onto one outstanding entry (one miss serves
     *  them all) and a full file back-pressures NeedFetch slots until
     *  an entry retires. */
    unsigned mshrs = 0;

    /** Which memory model serves BVH fetches. The default reproduces
     *  the original flat-latency timing bit-for-bit. */
    MemBackend mem_backend = MemBackend::FixedLatency;
    /** Cache geometry and timing (MemBackend::NodeCache). */
    NodeCacheConfig cache;

    /** Packet/wavefront traversal (bvh/packet.hh). width == 1 (the
     *  default) keeps the scalar one-ray-per-entry scheduler
     *  bit-for-bit; wider packets share one node fetch across the
     *  member rays. Hit records are bit-identical either way. */
    PacketConfig packet;
};

/** Per-run statistics. */
struct RtUnitStats
{
    uint64_t cycles = 0;
    uint64_t rays_completed = 0;
    uint64_t datapath_beats = 0;   ///< beats issued into the pipeline
    /** datapath_beats broken down by opcode (the index is
     *  core::Opcode). This is the dynamic-power stimulus for
     *  synth::ChipCostModel: each issued beat energizes exactly the
     *  functional units and route legs its opcode uses, so
     *  sum(beats_by_op) == datapath_beats == slots[Issued] on every
     *  run and across merge(). */
    std::array<uint64_t, core::kNumOpcodes> beats_by_op{};
    /** Issue slots (lanes x cycles) with no beat issued. At
     *  issue_width == 1 this is exactly the legacy cycles-with-no-beat
     *  counter; wider units can lose several slots per cycle. */
    uint64_t datapath_idle = 0;
    uint64_t mem_requests = 0;     ///< fetches that reached the L1
    uint64_t stall_on_memory = 0;  ///< issue slots lost waiting on fetch

    /** Node-cache counters; all-zero under MemBackend::FixedLatency.
     *  Merges with the same commutative sums as the rest of the
     *  struct, so sharded aggregation stays order-independent. */
    CacheStats mem;

    /** Packet-traversal counters; all-zero in scalar mode
     *  (packet.width == 1). Same commutative-sum merge contract. */
    PacketStats packet;

    /** MSHR-file counters; all-zero when the file is disabled
     *  (mshrs == 0). Same commutative-sum merge contract. */
    MshrStats mshr;

    /** k-NN traversal counters; all-zero for ray workloads. Sums plus
     *  a max-merged frontier high-water mark — still commutative and
     *  associative, so the sharded-aggregation contract holds. */
    KnnStats knn;

    /** Top-down issue-slot attribution (obs/slot_accounting.hh): every
     *  slot of every cycle lands in exactly one bucket, so
     *  slots.total() == cycles * issue_width for a single run and the
     *  identity survives merge() (both sides are sums). The Issued
     *  bucket equals datapath_beats and the others partition
     *  datapath_idle by cause. */
    obs::SlotAccounting slots;

    /** Chip wall-clock cycles (sim::Engine chip mode): lock-step ticks
     *  of the whole chip, summed across batches. Unlike `cycles` (which
     *  every unit accumulates until its OWN rays complete), one chip
     *  tick counts once however many units it steps. 0 outside chip
     *  mode. */
    uint64_t chip_cycles = 0;

    /** Per-bank SharedL2 counters (chip mode); empty otherwise. Merges
     *  bank-by-bank (elementwise, shorter vector zero-extended), so
     *  the commutative-sum contract extends to the bank breakdown. */
    std::vector<L2Stats> l2_banks;

    /** Sum of the per-bank L2 counters. */
    L2Stats
    l2Total() const
    {
        L2Stats t;
        for (const L2Stats &b : l2_banks)
            t.merge(b);
        return t;
    }

    /** Mean beats accepted per cycle: at most 1.0 for a single-issue
     *  unit, up to issue_width for a multi-issue one. */
    double
    utilization() const
    {
        return cycles ? double(datapath_beats) / double(cycles) : 0.0;
    }

    /** Accumulate another run's counters. Every field is a sum of
     *  uint64 counts (the bank vector sums elementwise), so merging is
     *  commutative and associative: an aggregate over many batches is
     *  identical no matter which worker ran which batch or in what
     *  order the merges happen. */
    RtUnitStats &
    merge(const RtUnitStats &o)
    {
        cycles += o.cycles;
        rays_completed += o.rays_completed;
        datapath_beats += o.datapath_beats;
        for (size_t op = 0; op < beats_by_op.size(); ++op)
            beats_by_op[op] += o.beats_by_op[op];
        datapath_idle += o.datapath_idle;
        mem_requests += o.mem_requests;
        stall_on_memory += o.stall_on_memory;
        mem.merge(o.mem);
        packet.merge(o.packet);
        mshr.merge(o.mshr);
        knn.merge(o.knn);
        slots.merge(o.slots);
        chip_cycles += o.chip_cycles;
        if (l2_banks.size() < o.l2_banks.size())
            l2_banks.resize(o.l2_banks.size());
        for (size_t b = 0; b < o.l2_banks.size(); ++b)
            l2_banks[b].merge(o.l2_banks[b]);
        return *this;
    }

    friend bool operator==(const RtUnitStats &,
                           const RtUnitStats &) = default;
};

/**
 * The RT unit: traverses a BVH for a batch of rays using a pipelined
 * RayFlex datapath instance.
 */
class RtUnit : public pipeline::Component
{
  public:
    /** @param shared_mem Optional non-owning MemoryModel override: the
     *  unit uses it instead of constructing its own and does NOT reset
     *  it at run() start, so a caller can carry cache contents across
     *  units (the engine's warm-cache batch mode). CacheStats are
     *  reported as the delta accumulated during the run. */
    RtUnit(const Bvh4 &bvh, core::RayFlexDatapath &dp,
           const RtUnitConfig &cfg = {},
           MemoryModel *shared_mem = nullptr);

    /**
     * k-NN mode: the unit walks `index` for submitKnn() queries
     * instead of tracing rays. Same memory system (shared L1, MSHR
     * file, optional chip-level L2 via attachSharedL2) and the same
     * synthetic address map over index.bvh; node expansion and the
     * best-first frontier live in the unit while every candidate
     * distance is evaluated as Euclidean/cosine beats through the
     * datapath lanes. The packet scheduler does not apply to k-NN
     * queries (a query is its own traversal; PacketConfig is accepted
     * and ignored). The index must outlive the unit.
     * @throws std::invalid_argument when `dp` was not built with an
     *         extended DatapathConfig (the distance opcodes are
     *         missing otherwise).
     */
    RtUnit(const KnnIndex &index, core::RayFlexDatapath &dp,
           const RtUnitConfig &cfg = {},
           MemoryModel *shared_mem = nullptr);

    /** Queue a k-NN query (k-NN mode only); the result appears at
     *  knnResults()[query_id]. */
    void submitKnn(const KnnQuery &query, uint32_t query_id);

    /** k-NN results in query-id order (parallel to submissions). */
    const std::vector<KnnResult> &
    knnResults() const
    {
        return knn_results_;
    }

    /** Queue a ray for traversal; results appear in results(). `job`
     *  tags the submission stream the ray belongs to (bvh::PendingRay)
     *  — it never changes scheduling or results, only the cross-job
     *  attribution of shared packet fetches. */
    void submit(const core::Ray &ray, uint32_t ray_id,
                uint32_t job = 0);

    /** Route this unit's L1 misses through a chip-level shared L2 as
     *  unit `unit_id` on the ring (sim::Engine chip mode). Forwards to
     *  MemoryModel::attachNextLevel; backends without a second-tier
     *  path (FixedLatency) ignore it. Call before run()/beginRun(). */
    void
    attachSharedL2(SharedL2 *l2, unsigned unit_id)
    {
        mem_->attachNextLevel(l2, unit_id);
    }

    /** Emit cycle-stamped fetch/MSHR/packet events to `sink` as unit
     *  `unit_id` (nullptr — the default state — disables emission; the
     *  seam idiom of obs/trace.hh). Borrowed, not owned. Call before
     *  run()/beginRun(); tracing never changes timing or counters. */
    void
    attachTrace(obs::TraceSink *sink, unsigned unit_id)
    {
        trace_ = sink;
        trace_unit_ = unit_id;
    }

    /** Run the unit until all submitted rays complete.
     *  @return statistics for the run. */
    RtUnitStats run(uint64_t max_cycles = 100000000ull);

    /**
     * Lock-step chip API: run() decomposed so N units can share one
     * pipeline::Simulator and tick together over a shared L2.
     * registerWith() registers the unit's lanes and the unit itself;
     * beginRun() resets per-run state (run()'s preamble); done() is
     * true when every submitted ray completed; endRun() finalizes and
     * returns the stats (run()'s postamble — throws if rays remain).
     * run() itself is exactly registerWith + beginRun + tick-until-done
     * + endRun on a private simulator.
     */
    void registerWith(pipeline::Simulator &sim);
    void beginRun();
    bool done() const { return outstanding_ == 0; }
    RtUnitStats endRun();

    /** Results in ray-id order (parallel to submissions). In
     *  TraversalMode::Any only the `hit` flag is meaningful. */
    const std::vector<HitRecord> &results() const { return results_; }

    void publish(uint64_t cycle) override;
    void advance(uint64_t cycle) override;

  private:
    enum class EntryState : uint8_t {
        Idle,        ///< slot free
        NeedFetch,   ///< next node known, fetch not yet issued
        Fetching,    ///< waiting on node memory
        ReadyBox,    ///< node data present, box beat pending
        ReadyTri,    ///< leaf data present, triangle beats pending
        InFlight,    ///< beat inside the datapath
    };

    /** One deferred unit of traversal work for a ray. */
    struct WorkItem
    {
        bool is_leaf = false;
        uint32_t index = 0; ///< node index or first triangle
        uint32_t count = 0; ///< triangle count when leaf
        float entry_t = 0;  ///< child entry distance (for pruning)
    };

    struct Entry
    {
        EntryState state = EntryState::Idle;
        core::Ray ray;
        uint32_t ray_id = 0;
        std::vector<WorkItem> stack; ///< pending work, nearest on top
        uint32_t node = 0;           ///< node being processed
        uint32_t leaf_first = 0, leaf_count = 0, leaf_next = 0;
        uint32_t inflight_tri = 0;   ///< triangle of the in-flight beat
        HitRecord best;
        float t_beg = 0;
        float t_max = 0;
    };

    struct MemRequest
    {
        size_t entry;
        uint64_t done_cycle;
        uint64_t addr = 0; ///< fetch target (trace / attribution key)
        /** Absolute phase boundaries of the fetch's latency, from its
         *  AccessBreakdown at issue (merged requesters copy the
         *  in-flight entry's): issue <= l1_until <= ring_until <=
         *  queue_until <= done_cycle. classifyIdle() attributes a
         *  stalled cycle to the phase `now` falls in. */
        uint64_t l1_until = 0;
        uint64_t ring_until = 0;
        uint64_t queue_until = 0;
    };

    void popWork(Entry &e);
    void finishRay(Entry &e, const HitRecord &rec);
    void handleResult(const core::DatapathOutput &out);
    /** Synthetic address and size of a fetch target (the MSHR merge
     *  key and what the shared L1 is charged for). */
    void fetchTarget(bool is_leaf, uint32_t index, uint32_t count,
                     uint64_t *addr, uint32_t *bytes) const;
    /** Exclusive cause of an idle issue slot this cycle (the
     *  non-Issued buckets of obs::Slot). All idle slots of one cycle
     *  share one cause, so callers classify lazily once per cycle.
     *  `have_work`: work was submitted and not yet retired;
     *  `need_fetch`: a slot sits in NeedFetch; `in_datapath`: work is
     *  ready for or riding the issue lanes. */
    obs::Slot classifyIdle(bool have_work, bool need_fetch,
                           bool in_datapath) const;
    /** Step-(c) MSHR retirement shared by the schedulers (residency
     *  trace sample + refusal-flag re-arm). */
    void retireMshrs();
    /** Route one fetch through the MSHR file (when enabled) or
     *  straight to the L1. @return true when the fetch left the slot
     *  (allocated or merged); false on MSHR-full or exhausted
     *  mem-issue bandwidth, leaving the slot in NeedFetch. */
    bool issueFetch(size_t slot, bool is_leaf, uint32_t index,
                    uint32_t count, unsigned &issued);

    // ----- k-NN mode (constructed over a KnnIndex) -----

    /** One in-flight k-NN query: its own best-first frontier, fetch
     *  target, pending candidate jobs and top-k set. */
    struct KnnEntry
    {
        EntryState state = EntryState::Idle;
        uint32_t query_id = 0;
        uint32_t k = 0;
        KnnMetric metric = KnnMetric::Euclidean;
        std::vector<float> point;
        KnnTopK topk;
        /** Min-heap (KnnFrontierAfter) of unvisited subtrees. */
        std::vector<KnnFrontierItem> frontier;
        uint64_t seq = 0; ///< frontier tie-break sequence
        bool fetch_is_leaf = false;
        uint32_t fetch_index = 0, fetch_count = 0;
        /** Fetched-leaf candidates (tri indices) not yet started. */
        std::deque<uint32_t> pending_cands;
        /** Candidates started on a lane, score not yet drained. */
        uint32_t inflight_cands = 0;
        /** All frontier/pending work exhausted; waiting on inflight
         *  scores (EntryState::Idle plus this flag would be ambiguous
         *  with a free slot, hence the extra state). */
        bool draining = false;
    };

    /** A candidate's beats streaming down one lane. The lane is locked
     *  to the candidate from the first accepted beat until the last
     *  beat is accepted, so two same-kind jobs never interleave within
     *  one lane's accumulator. */
    struct KnnLaneJob
    {
        bool active = false;
        std::vector<core::DatapathInput> beats;
        size_t next_beat = 0;
    };

    /** A queued query waiting for a free entry slot. */
    struct PendingKnn
    {
        KnnQuery query;
        uint32_t query_id = 0;
    };

    bool knnMode() const { return knn_index_ != nullptr; }
    void publishKnn();
    void advanceKnn();
    /** Pop the next non-prunable frontier item into the fetch target
     *  (state NeedFetch), or mark the entry draining. */
    void popKnnFrontier(KnnEntry &e);
    /** Host-side expansion of a fetched node: push surviving children
     *  onto the frontier. */
    void expandKnnNode(KnnEntry &e);
    void handleKnnResult(const core::DatapathOutput &out);
    void finishKnnQuery(KnnEntry &e);
    /** Finish a draining entry once its last in-flight score landed. */
    void
    maybeFinishKnn(KnnEntry &e)
    {
        if (e.draining && e.inflight_cands == 0)
            finishKnnQuery(e);
    }
    /** The distance beats of candidate (triangle) `tri` for entry
     *  slot `slot`'s query. */
    std::vector<core::DatapathInput> knnCandidateBeats(size_t slot,
                                                      uint32_t tri) const;

    const KnnIndex *knn_index_ = nullptr;
    std::vector<KnnEntry> knn_entries_;
    std::vector<KnnLaneJob> knn_lane_;
    std::deque<PendingKnn> pending_knn_;
    std::vector<KnnResult> knn_results_;

    /** True when the packet/wavefront scheduler is active. */
    bool packetized() const { return cfg_.packet.width > 1; }
    void drainCompleted(PacketTraversal &p);
    void compactPackets();
    void publishPacket();
    void advancePacket();

    const Bvh4 &bvh_;
    core::RayFlexDatapath &dp_;
    RtUnitConfig cfg_;
    std::unique_ptr<MemoryModel> owned_mem_;
    MemoryModel *mem_ = nullptr; ///< owned_mem_ or the shared override
    bool mem_is_shared_ = false; ///< skip reset, report delta stats
    MshrFile mshrs_;        ///< outstanding-request file (may be off)
    uint64_t tri_base_ = 0; ///< triangle region base address

    /** Issue lanes: lanes_[0] is the caller's datapath, the rest are
     *  private replicas (extra_lanes_) built from the same config. */
    std::vector<core::RayFlexDatapath *> lanes_;
    std::vector<std::unique_ptr<core::RayFlexDatapath>> extra_lanes_;

    /** Repacking window: cycles a below-threshold packet defers its
     *  next fetch waiting for a compaction partner to reach a fetch
     *  boundary, before giving up and continuing alone. Sized to the
     *  order of one fetch round-trip, so a thinned packet can catch a
     *  partner that is still waiting on memory. */
    static constexpr unsigned kCompactWaitCycles = 16;

    std::vector<Entry> entries_;   ///< scalar mode (packet.width == 1)
    std::vector<PacketTraversal> packets_; ///< packet mode
    /** Per-packet repacking-window progress (packet mode). */
    std::vector<unsigned> compact_hold_;
    std::deque<PendingRay> pending_rays_;
    std::deque<MemRequest> mem_queue_;
    std::vector<HitRecord> results_;
    size_t outstanding_ = 0;
    uint64_t now_ = 0;
    RtUnitStats stats_;
    obs::TraceSink *trace_ = nullptr; ///< borrowed; null = disabled
    unsigned trace_unit_ = 0;         ///< unit id stamped on events
    /** Last emitted PacketOccupancy sample (~0 = none yet), so the
     *  counter track only records changes. */
    uint64_t trace_occupancy_last_ = ~uint64_t(0);
    /** Set by issueFetch when a full MSHR file refused a fetch this
     *  cycle; read (and reset) by the schedulers' idle classification. */
    bool mshr_refused_ = false;
    /** L1 snapshot at beginRun (shared/warm models report deltas). */
    CacheStats mem_before_;

    /** Per-lane issue bookkeeping, reset each publish(). A lane with
     *  no offer this cycle holds entry == kNoOffer. */
    static constexpr size_t kNoOffer = ~size_t(0);
    struct LaneOffer
    {
        size_t entry = kNoOffer; ///< entry (scalar) or packet slot
        size_t beat = 0;         ///< pending-beat index (packet mode)
    };
    std::vector<LaneOffer> offers_;
    /** Per-lane in-flight beats (packet mode): each accepted beat,
     *  with its packet slot, in issue order. Lanes are in-order, so
     *  the front matches the lane's next output. */
    struct InflightBeat
    {
        size_t slot = 0;
        PacketBeat beat;
    };
    std::vector<std::deque<InflightBeat>> lane_inflight_;
};

} // namespace rayflex::bvh

#endif // RAYFLEX_BVH_RT_UNIT_HH
