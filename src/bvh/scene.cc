/**
 * @file
 * Procedural scene generation implementation.
 */
#include "bvh/scene.hh"

#include <cmath>
#include <random>

#include "core/raygen.hh"

namespace rayflex::bvh
{

namespace
{
constexpr float kPi = 3.14159265358979323846f;
} // namespace

std::vector<SceneTriangle>
makeSphere(Vec3 centre, float radius, unsigned rings, unsigned sectors,
           uint32_t first_id)
{
    // Vertex grid over latitude (rings+1) x longitude (sectors).
    auto vertex = [&](unsigned r, unsigned s) {
        float lat = kPi * float(r) / float(rings);     // 0..pi
        float lon = 2 * kPi * float(s) / float(sectors);
        return centre + Vec3{radius * std::sin(lat) * std::cos(lon),
                             radius * std::cos(lat),
                             radius * std::sin(lat) * std::sin(lon)};
    };
    std::vector<SceneTriangle> tris;
    uint32_t id = first_id;
    for (unsigned r = 0; r < rings; ++r) {
        for (unsigned s = 0; s < sectors; ++s) {
            unsigned s1 = (s + 1) % sectors;
            Vec3 a = vertex(r, s), b = vertex(r + 1, s);
            Vec3 c = vertex(r + 1, s1), d = vertex(r, s1);
            if (r != 0)
                tris.push_back({a, d, b, id++}); // outward winding
            if (r + 1 != rings)
                tris.push_back({b, d, c, id++});
        }
    }
    return tris;
}

std::vector<SceneTriangle>
makeTorus(Vec3 centre, float major, float minor, unsigned rings,
          unsigned sectors, uint32_t first_id)
{
    auto vertex = [&](unsigned r, unsigned s) {
        float u = 2 * kPi * float(r) / float(rings);
        float v = 2 * kPi * float(s) / float(sectors);
        float w = major + minor * std::cos(v);
        return centre + Vec3{w * std::cos(u), minor * std::sin(v),
                             w * std::sin(u)};
    };
    std::vector<SceneTriangle> tris;
    uint32_t id = first_id;
    for (unsigned r = 0; r < rings; ++r) {
        for (unsigned s = 0; s < sectors; ++s) {
            unsigned r1 = (r + 1) % rings, s1 = (s + 1) % sectors;
            Vec3 a = vertex(r, s), b = vertex(r1, s);
            Vec3 c = vertex(r1, s1), d = vertex(r, s1);
            tris.push_back({a, b, d, id++});
            tris.push_back({b, c, d, id++});
        }
    }
    return tris;
}

std::vector<SceneTriangle>
makeTerrain(float size, unsigned grid, float roughness, uint64_t seed,
            uint32_t first_id)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<float> jitter(-1.0f, 1.0f);

    // Height field from summed octaves of value noise on the grid.
    std::vector<float> h((grid + 1) * (grid + 1), 0.0f);
    auto at = [&](unsigned x, unsigned y) -> float & {
        return h[y * (grid + 1) + x];
    };
    float amp = roughness * size * 0.25f;
    for (unsigned step = grid; step >= 1; step /= 2) {
        for (unsigned y = 0; y <= grid; y += step)
            for (unsigned x = 0; x <= grid; x += step)
                at(x, y) += amp * jitter(rng);
        amp *= 0.55f;
        if (step == 1)
            break;
    }

    std::vector<SceneTriangle> tris;
    uint32_t id = first_id;
    auto vtx = [&](unsigned x, unsigned y) {
        float fx = size * (float(x) / float(grid) - 0.5f);
        float fz = size * (float(y) / float(grid) - 0.5f);
        return Vec3{fx, at(x, y), fz};
    };
    for (unsigned y = 0; y < grid; ++y) {
        for (unsigned x = 0; x < grid; ++x) {
            Vec3 a = vtx(x, y), b = vtx(x + 1, y);
            Vec3 c = vtx(x + 1, y + 1), d = vtx(x, y + 1);
            tris.push_back({a, c, b, id++}); // upward-facing winding
            tris.push_back({a, d, c, id++});
        }
    }
    return tris;
}

std::vector<SceneTriangle>
makeSoup(size_t count, float extent, float max_edge, uint64_t seed,
         uint32_t first_id)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<float> pos(-extent, extent);
    std::uniform_real_distribution<float> edge(-max_edge, max_edge);
    std::vector<SceneTriangle> tris;
    tris.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        Vec3 a{pos(rng), pos(rng), pos(rng)};
        Vec3 b = a + Vec3{edge(rng), edge(rng), edge(rng)};
        Vec3 c = a + Vec3{edge(rng), edge(rng), edge(rng)};
        tris.push_back({a, b, c, first_id + uint32_t(i)});
    }
    return tris;
}

core::Ray
Camera::primaryRay(unsigned px, unsigned py, float t_max) const
{
    core::Pinhole cam;
    cam.eye = {eye.x, eye.y, eye.z};
    cam.look_at = {look_at.x, look_at.y, look_at.z};
    cam.up = {up.x, up.y, up.z};
    cam.fov_deg = fov_deg;
    cam.width = width;
    cam.height = height;
    return core::RayGen::primaryRay(cam, px, py, t_max);
}

std::vector<DataPoint>
makePointCloud(size_t count, unsigned dims, unsigned clusters,
               uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<float> centre_dist(-50.0f, 50.0f);
    std::normal_distribution<float> spread(0.0f, 3.0f);

    std::vector<std::vector<float>> centres(clusters);
    for (auto &c : centres) {
        c.resize(dims);
        for (float &v : c)
            v = centre_dist(rng);
    }

    std::vector<DataPoint> pts(count);
    for (size_t i = 0; i < count; ++i) {
        const auto &c = centres[i % clusters];
        pts[i].id = uint32_t(i);
        pts[i].coords.resize(dims);
        for (unsigned d = 0; d < dims; ++d)
            pts[i].coords[d] = c[d] + spread(rng);
    }
    return pts;
}

} // namespace rayflex::bvh
