/**
 * @file
 * Procedural scene generation and cameras.
 *
 * The paper's motivating workloads are rendered meshes (the bunny of
 * Fig. 1) and point datasets for hierarchical search. Neither asset
 * ships with this reproduction, so this module generates the synthetic
 * equivalents: tessellated spheres and tori, a fractal height field and
 * random triangle soups for rendering; Gaussian-mixture point clouds
 * for nearest-neighbor search. Sizes are parameterized so tests stay
 * fast while examples can scale up.
 */
#ifndef RAYFLEX_BVH_SCENE_HH
#define RAYFLEX_BVH_SCENE_HH

#include <cstdint>
#include <vector>

#include "bvh/aabb.hh"

namespace rayflex::bvh
{

/** UV-sphere mesh centred at `centre`. */
std::vector<SceneTriangle> makeSphere(Vec3 centre, float radius,
                                      unsigned rings, unsigned sectors,
                                      uint32_t first_id = 0);

/** Torus mesh in the xz-plane. */
std::vector<SceneTriangle> makeTorus(Vec3 centre, float major, float minor,
                                     unsigned rings, unsigned sectors,
                                     uint32_t first_id = 0);

/** Diamond-square style fractal terrain over [-size/2, size/2]^2. */
std::vector<SceneTriangle> makeTerrain(float size, unsigned grid,
                                       float roughness, uint64_t seed,
                                       uint32_t first_id = 0);

/** Random triangle soup in [-extent, extent]^3 with bounded edge
 *  length. */
std::vector<SceneTriangle> makeSoup(size_t count, float extent,
                                    float max_edge, uint64_t seed,
                                    uint32_t first_id = 0);

/** A pinhole camera generating primary rays. */
struct Camera
{
    Vec3 eye{0, 0, 5};
    Vec3 look_at{0, 0, 0};
    Vec3 up{0, 1, 0};
    float fov_deg = 60.0f;
    unsigned width = 64;
    unsigned height = 64;

    /** Primary ray through pixel (px, py), centred on the pixel. */
    core::Ray primaryRay(unsigned px, unsigned py, float t_max) const;
};

/** A labelled point for nearest-neighbor workloads. */
struct DataPoint
{
    std::vector<float> coords;
    uint32_t id = 0;
};

/** Gaussian-mixture point cloud in `dims` dimensions. */
std::vector<DataPoint> makePointCloud(size_t count, unsigned dims,
                                      unsigned clusters, uint64_t seed);

} // namespace rayflex::bvh

#endif // RAYFLEX_BVH_SCENE_HH
