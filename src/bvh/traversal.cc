/**
 * @file
 * Datapath-driven BVH traversal implementation.
 */
#include "bvh/traversal.hh"

#include <vector>

namespace rayflex::bvh
{

using namespace rayflex::core;
using fp::fromBits;
using fp::kPosInf;

core::Box
emptySlotBox()
{
    core::Box b;
    b.lo = {kPosInf, kPosInf, kPosInf};
    b.hi = {kPosInf, kPosInf, kPosInf};
    return b;
}

namespace
{

/** Issue one ray-box beat for a wide node's children. */
DatapathInput
boxBeat(const core::Ray &ray, const WideNode &node)
{
    DatapathInput in;
    in.op = Opcode::RayBox;
    in.ray = ray;
    for (int i = 0; i < 4; ++i) {
        if (node.child[i].kind == WideNode::Kind::Empty) {
            in.boxes[i] = emptySlotBox();
        } else {
            Aabb b = node.child[i].bounds;
            in.boxes[i] = b.toIoBox();
        }
    }
    return in;
}

/** Resolve a triangle beat into a distance, honoring the
 *  numerator/denominator contract (division happens GPU-side). */
std::optional<float>
triDistance(const DatapathOutput &out)
{
    if (!out.tri.hit)
        return std::nullopt;
    float num = fromBits(out.tri.t_num);
    float den = fromBits(out.tri.t_den);
    if (den == 0.0f)
        return std::nullopt;
    return num / den;
}

} // namespace

HitRecord
Traverser::closestHit(const core::Ray &ray)
{
    HitRecord best;
    const float t_min = fromBits(ray.t_beg);
    const float t_max = fromBits(ray.t_end);
    if (bvh_.tris.empty())
        return best;

    std::vector<uint32_t> stack;
    stack.push_back(0);
    while (!stack.empty()) {
        stats_.max_stack = std::max<uint64_t>(stats_.max_stack,
                                              stack.size());
        uint32_t idx = stack.back();
        stack.pop_back();
        const WideNode &node = bvh_.nodes[idx];
        ++stats_.nodes_visited;

        DatapathOutput out = functionalEval(boxBeat(ray, node), acc_);
        ++stats_.box_ops;

        // Children arrive sorted by entry distance; push in reverse so
        // the nearest is processed first (stack order).
        std::array<uint8_t, 4> hit_slots{};
        int n_hits = 0;
        for (int i = 0; i < 4; ++i) {
            uint8_t slot = out.box.order[i];
            if (!out.box.hit[slot])
                continue;
            // Prune children beyond the best hit found so far.
            if (best.hit &&
                fromBits(out.box.sorted_dist[i]) > best.t)
                continue;
            hit_slots[n_hits++] = slot;
        }
        for (int i = n_hits - 1; i >= 0; --i) {
            const auto &c = node.child[hit_slots[i]];
            if (c.kind == WideNode::Kind::Internal) {
                stack.push_back(c.index);
            } else {
                for (uint32_t t = c.index; t < c.index + c.count; ++t) {
                    DatapathInput tin;
                    tin.op = Opcode::RayTriangle;
                    tin.ray = ray;
                    tin.tri = bvh_.tris[t].toIoTriangle();
                    DatapathOutput tout = functionalEval(tin, acc_);
                    ++stats_.tri_ops;
                    auto d = triDistance(tout);
                    if (d && *d >= t_min && *d <= t_max &&
                        (!best.hit || *d < best.t)) {
                        best.hit = true;
                        best.t = *d;
                        best.triangle_id = bvh_.tris[t].id;
                        float u = fromBits(tout.tri.uvw[0]);
                        float v = fromBits(tout.tri.uvw[1]);
                        float w = fromBits(tout.tri.uvw[2]);
                        float den = fromBits(tout.tri.t_den);
                        best.u = u / den;
                        best.v = v / den;
                        best.w = w / den;
                    }
                }
            }
        }
    }
    return best;
}

bool
Traverser::anyHit(const core::Ray &ray)
{
    if (bvh_.tris.empty())
        return false;
    const float t_min = fromBits(ray.t_beg);
    const float t_max = fromBits(ray.t_end);
    std::vector<uint32_t> stack;
    stack.push_back(0);
    while (!stack.empty()) {
        stats_.max_stack = std::max<uint64_t>(stats_.max_stack,
                                              stack.size());
        uint32_t idx = stack.back();
        stack.pop_back();
        const WideNode &node = bvh_.nodes[idx];
        ++stats_.nodes_visited;

        DatapathOutput out = functionalEval(boxBeat(ray, node), acc_);
        ++stats_.box_ops;
        for (int i = 0; i < 4; ++i) {
            if (!out.box.hit[i])
                continue;
            const auto &c = node.child[i];
            if (c.kind == WideNode::Kind::Internal) {
                stack.push_back(c.index);
            } else {
                for (uint32_t t = c.index; t < c.index + c.count; ++t) {
                    DatapathInput tin;
                    tin.op = Opcode::RayTriangle;
                    tin.ray = ray;
                    tin.tri = bvh_.tris[t].toIoTriangle();
                    DatapathOutput tout = functionalEval(tin, acc_);
                    ++stats_.tri_ops;
                    auto d = triDistance(tout);
                    if (d && *d >= t_min && *d <= t_max)
                        return true;
                }
            }
        }
    }
    return false;
}

HitRecord
Traverser::bruteForceClosest(const core::Ray &ray) const
{
    HitRecord best;
    const float t_min = fromBits(ray.t_beg);
    const float t_max = fromBits(ray.t_end);
    core::DistanceAccumulators acc;
    for (const SceneTriangle &tri : bvh_.tris) {
        DatapathInput in;
        in.op = Opcode::RayTriangle;
        in.ray = ray;
        in.tri = tri.toIoTriangle();
        DatapathOutput out = functionalEval(in, acc);
        auto d = triDistance(out);
        if (d && *d >= t_min && *d <= t_max && (!best.hit || *d < best.t)) {
            best.hit = true;
            best.t = *d;
            best.triangle_id = tri.id;
        }
    }
    return best;
}

} // namespace rayflex::bvh
