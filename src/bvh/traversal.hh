/**
 * @file
 * BVH traversal driven by the RayFlex datapath operations.
 *
 * Implements the traversal loop that the RT unit performs around the
 * datapath (Fig. 3): internal nodes issue one ray-box beat testing the
 * four child boxes (the datapath returns hit flags and children sorted
 * by entry distance), leaves issue one ray-triangle beat per triangle.
 * The datapath is invoked through core::functionalEval, so every
 * intersection decision is taken by exactly the arithmetic the hardware
 * model implements.
 */
#ifndef RAYFLEX_BVH_TRAVERSAL_HH
#define RAYFLEX_BVH_TRAVERSAL_HH

#include <optional>

#include "bvh/builder.hh"
#include "core/stages.hh"

namespace rayflex::bvh
{

/** Result of tracing one ray. */
struct HitRecord
{
    bool hit = false;
    float t = 0;           ///< distance along the (unnormalized) ray
    uint32_t triangle_id = 0;
    float u = 0, v = 0, w = 0; ///< normalized barycentrics

    friend bool operator==(const HitRecord &,
                           const HitRecord &) = default;
};

/** Traversal statistics (datapath beats issued). */
struct TraversalStats
{
    uint64_t box_ops = 0;  ///< ray-box beats (4 boxes each)
    uint64_t tri_ops = 0;  ///< ray-triangle beats
    uint64_t nodes_visited = 0;
    uint64_t max_stack = 0;

    /** Accumulate another traverser's counters; counts sum, the stack
     *  high-water mark takes the maximum. Both are commutative and
     *  associative, so merge order never changes the aggregate. */
    TraversalStats &
    merge(const TraversalStats &o)
    {
        box_ops += o.box_ops;
        tri_ops += o.tri_ops;
        nodes_visited += o.nodes_visited;
        max_stack = max_stack > o.max_stack ? max_stack : o.max_stack;
        return *this;
    }

    friend bool operator==(const TraversalStats &,
                           const TraversalStats &) = default;
};

/** BVH traversal engine. */
class Traverser
{
  public:
    explicit Traverser(const Bvh4 &bvh) : bvh_(bvh) {}

    /** Find the closest hit with t inside the ray extent
     *  [t_beg, t_end], or miss. Triangles in front of t_beg are
     *  rejected exactly like triangles beyond t_end (the contract
     *  shadow and secondary rays rely on). */
    HitRecord closestHit(const core::Ray &ray);

    /** True as soon as any hit with t in [t_beg, t_end] exists
     *  (shadow-ray style early out). */
    bool anyHit(const core::Ray &ray);

    /** Statistics accumulated over all queries since construction. */
    const TraversalStats &stats() const { return stats_; }

    /**
     * Brute-force closest hit testing every triangle through the
     * datapath (no BVH). Used by the tests as the traversal oracle.
     */
    HitRecord bruteForceClosest(const core::Ray &ray) const;

  private:
    const Bvh4 &bvh_;
    TraversalStats stats_;
    core::DistanceAccumulators acc_; // unused by box/tri beats
};

/** An always-miss box for padding empty child slots: +inf corners make
 *  every slab interval empty for any ray. */
core::Box emptySlotBox();

} // namespace rayflex::bvh

#endif // RAYFLEX_BVH_TRAVERSAL_HH
