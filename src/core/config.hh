/**
 * @file
 * Datapath configuration: the design space explored by the paper.
 *
 * The paper's evaluation (Section VI) sweeps three dimensions:
 *  1. target clock frequency (synthesis model only),
 *  2. baseline vs extended functionality,
 *  3. unified vs disjoint functional-unit pools.
 *
 * Functionally, only the baseline/extended axis matters (baseline rejects
 * Euclidean/cosine opcodes); unified/disjoint changes the hardware
 * provisioning, which the synthesis library models. The perturb_squarers
 * flag reproduces the paper's squarer-specialization ablation
 * (Section VII-B): when set, stage-3 multipliers of the disjoint design
 * are prevented from receiving both inputs from the same wire, which
 * removes the synthesizer's ability to specialize them into squarers.
 */
#ifndef RAYFLEX_CORE_CONFIG_HH
#define RAYFLEX_CORE_CONFIG_HH

#if __cplusplus < 202002L
#error "rayflex requires C++20 (std::countl_zero, defaulted operator==); \
build through the provided CMakeLists.txt or pass -std=c++20"
#endif

#include <string>

namespace rayflex::core
{

/**
 * How per-operation SRFDS fields map onto physical pipeline registers
 * (the Section VII-A discussion). RayFlex's released design registers
 * each operation's fields disjointly; the paper sketches an alternative
 * that shares registers across operations by casting the SRFDS with
 * .asTypeOf (a union in C terms), whose benefit depends on how well
 * field lifetimes align.
 */
enum class RegisterPolicy : uint8_t {
    /** Disjoint registers per operation (the paper's choice): at each
     *  stage the register bits are the *sum* of every supported
     *  operation's live bits. Simple, but sequential area grows ~64%
     *  when the distance ops are added. */
    DisjointPerOp,
    /** Shared union with optimally aligned lifetimes: fields of
     *  different operations with the same lifetime occupy the same
     *  bits, so each stage registers the *maximum* of the per-op live
     *  bits - the best case the paper's optimization aims for. */
    SharedUnionAligned,
    /** Shared union with pessimal alignment: every bit of the union
     *  stays live at every stage because some operation reads it late -
     *  dead-node elimination removes nothing (the worst case described
     *  in Section VII-A). */
    SharedUnionWorstCase,
};

/** Short label for reports. */
const char *registerPolicyName(RegisterPolicy p);

/** Configuration of a RayFlex datapath instance. */
struct DatapathConfig
{
    /** Support Euclidean/cosine distance ops (the Section V-A case
     *  study). */
    bool extended = false;

    /** Use private functional units per operation at each stage instead
     *  of the shared pool (the Section V-B case study). All operations
     *  still enter the same pipeline. */
    bool disjoint = false;

    /** Ablation: defeat squarer specialization in the disjoint stage-3
     *  multiplier pool (Section VII-B). */
    bool perturb_squarers = false;

    /** BVH node width: boxes tested per ray-box beat. 4 matches the
     *  RDNA2/3 ISA, 6 the Mesa software BVH, up to kMaxBoxesPerOp.
     *  Every box-lane resource in the datapath and the synthesis model
     *  scales with this. */
    unsigned box_width = 4;

    /** Pipeline-register organization (synthesis model only; the
     *  functional behaviour is identical). */
    RegisterPolicy register_policy = RegisterPolicy::DisjointPerOp;

    /** Section III-F study: forgo rounding after intermediate
     *  additions/multiplications. The synthesis model drops the
     *  rounding-circuit share of each adder/multiplier; the numerical
     *  consequence (results drifting from the per-op-rounded golden
     *  model) is quantified by bench_ablation_rounding with the
     *  unrounded golden variants. */
    bool skip_intermediate_rounding = false;

    /** Short identifier such as "baseline-unified", as used in the
     *  paper's figures. */
    std::string
    name() const
    {
        std::string s = extended ? "extended" : "baseline";
        s += disjoint ? "-disjoint" : "-unified";
        if (perturb_squarers)
            s += "-perturbed";
        if (box_width != 4)
            s += "-w" + std::to_string(box_width);
        if (register_policy == RegisterPolicy::SharedUnionAligned)
            s += "-sharedreg";
        else if (register_policy == RegisterPolicy::SharedUnionWorstCase)
            s += "-sharedreg-worst";
        if (skip_intermediate_rounding)
            s += "-norounding";
        return s;
    }
};

/** The four configurations evaluated in Figures 7-9. */
inline constexpr DatapathConfig kBaselineUnified{false, false, false};
inline constexpr DatapathConfig kBaselineDisjoint{false, true, false};
inline constexpr DatapathConfig kExtendedUnified{true, false, false};
inline constexpr DatapathConfig kExtendedDisjoint{true, true, false};

/** Number of pipeline stages (fixed latency, Section III-D). */
inline constexpr unsigned kNumStages = 11;

/** Pipeline latency in cycles (one per stage). */
inline constexpr unsigned kPipelineLatency = 11;

} // namespace rayflex::core

#endif // RAYFLEX_CORE_CONFIG_HH
