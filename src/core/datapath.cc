/**
 * @file
 * Pipeline assembly for the RayFlex datapath.
 */
#include "core/datapath.hh"

#include <stdexcept>

#include "pipeline/drivers.hh"

namespace rayflex::core
{

using pipeline::SkidBuffer;

RayFlexDatapath::RayFlexDatapath(const DatapathConfig &cfg) : cfg_(cfg)
{
    // Stage 1: IO -> SRFDS format conversion. Also the observation point
    // for the activity trace (one count per accepted beat) and the
    // opcode legality check: the baseline hardware simply has no datapath
    // for the distance opcodes.
    stage1_ = std::make_unique<SkidBuffer<DatapathInput, Srfds>>(
        "stage1-fmt-in", [this](const DatapathInput &in) {
            if (!supports(in.op)) {
                throw std::invalid_argument(
                    std::string("opcode ") + opcodeName(in.op) +
                    " not supported by " + cfg_.name() + " datapath");
            }
            ++activity_.beats[static_cast<size_t>(in.op)];
            return stages::stage1(in, cfg_.box_width);
        });

    // Stages 2..10: SRFDS -> SRFDS. Blank combinations inside the stage
    // functions copy input to output, exactly like the blank cells of
    // Fig. 4c.
    auto mid = [this](const char *name, auto fn) {
        mids_.push_back(std::make_unique<MidBuffer>(name, fn));
    };
    mid("stage2-add", [](const Srfds &s) { return stages::stage2(s); });
    mid("stage3-mul", [](const Srfds &s) { return stages::stage3(s); });
    mid("stage4-cmp", [](const Srfds &s) { return stages::stage4(s); });
    mid("stage5-mul", [](const Srfds &s) { return stages::stage5(s); });
    mid("stage6-add", [](const Srfds &s) { return stages::stage6(s); });
    mid("stage7-mul", [](const Srfds &s) { return stages::stage7(s); });
    mid("stage8-add", [](const Srfds &s) { return stages::stage8(s); });
    mid("stage9-add",
        [this](const Srfds &s) { return stages::stage9(s, acc_); });
    mid("stage10-sort",
        [this](const Srfds &s) { return stages::stage10(s, acc_); });

    // Stage 11: SRFDS -> IO format conversion.
    stage11_ = std::make_unique<SkidBuffer<Srfds, DatapathOutput>>(
        "stage11-fmt-out",
        [](const Srfds &s) { return stages::stage11(s); });

    // Chain the handshakes: each stage drives the next stage's input
    // port.
    stage1_->bindOut(&mids_[0]->in());
    for (size_t i = 0; i + 1 < mids_.size(); ++i)
        mids_[i]->bindOut(&mids_[i + 1]->in());
    mids_.back()->bindOut(&stage11_->in());
}

void
RayFlexDatapath::registerWith(pipeline::Simulator &sim)
{
    sim.add(stage1_.get());
    for (auto &m : mids_)
        sim.add(m.get());
    sim.add(stage11_.get());
}

std::vector<const pipeline::SkidBufferBase *>
RayFlexDatapath::stages() const
{
    std::vector<const pipeline::SkidBufferBase *> v;
    v.push_back(stage1_.get());
    for (const auto &m : mids_)
        v.push_back(m.get());
    v.push_back(stage11_.get());
    return v;
}

std::vector<DatapathOutput>
runBatch(RayFlexDatapath &dp, const std::vector<DatapathInput> &in,
         uint64_t *cycles_out)
{
    pipeline::Simulator sim;
    pipeline::Source<DatapathInput> src("src", &dp.in());
    pipeline::Sink<DatapathOutput> sink("sink", &dp.out());
    dp.registerWith(sim);
    sim.add(&src);
    sim.add(&sink);
    src.pushAll(in);

    const uint64_t limit = in.size() + 16 * kPipelineLatency + 64;
    while (sink.count() < in.size() && sim.cycle() < limit) {
        sim.tick();
        dp.countCycle();
    }
    if (sink.count() < in.size())
        throw std::runtime_error("runBatch: pipeline did not drain");
    if (cycles_out)
        *cycles_out = sim.cycle();
    return sink.received();
}

} // namespace rayflex::core
