/**
 * @file
 * The assembled RayFlex datapath: an elastic pipeline of eleven RayFlex
 * Skid Buffer modules (Sections III-C and III-D).
 *
 * The first stage converts the external IO layout into the Shared RayFlex
 * Data Structure, the last stage converts back; every intermediate stage
 * carries the same SRFDS (Fig. 5b). The pipeline has a fixed latency of
 * 11 cycles and a throughput of one operation per cycle; there is no
 * central controller - stages synchronize only through their local
 * valid-ready handshakes.
 */
#ifndef RAYFLEX_CORE_DATAPATH_HH
#define RAYFLEX_CORE_DATAPATH_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/io_spec.hh"
#include "core/srfds.hh"
#include "core/stages.hh"
#include "pipeline/component.hh"
#include "pipeline/skid_buffer.hh"

namespace rayflex::core
{

/**
 * Operation-mode activity observed by a datapath instance: beats
 * processed per opcode plus total cycles. This is the model's analogue
 * of the VCD stimulus the paper feeds to the power tool - together with
 * the per-stage functional-unit inventory it determines dynamic power.
 */
struct ActivityTrace
{
    std::array<uint64_t, kNumOpcodes> beats{}; ///< beats per opcode
    uint64_t cycles = 0;                       ///< cycles simulated

    /** Total beats across all opcodes. */
    uint64_t
    totalBeats() const
    {
        uint64_t t = 0;
        for (uint64_t b : beats)
            t += b;
        return t;
    }
};

/**
 * The RayFlex intersection-test datapath.
 *
 * Drive DatapathInput beats into in() (e.g. with pipeline::Source) and
 * drain DatapathOutput beats from out() (e.g. with pipeline::Sink);
 * register the instance's components with a pipeline::Simulator via
 * registerWith(). Outputs appear exactly kPipelineLatency cycles after
 * their input beat is accepted when the pipeline is not back-pressured.
 *
 * A multi-issue consumer replicates the lane rather than widening it:
 * construct N instances from one DatapathConfig (config() hands back
 * the original, so replicas always match lane 0), register each with
 * the same Simulator and drive one valid/ready handshake per lane —
 * the pipeline itself stays one-beat-per-cycle and in order, which is
 * what lets a lane's consumer match results to inputs positionally.
 * bvh::RtUnit (RtUnitConfig::issue_width) is the canonical example.
 */
class RayFlexDatapath
{
  public:
    explicit RayFlexDatapath(const DatapathConfig &cfg = kBaselineUnified);

    /** The datapath input port (producer side drives valid/bits). */
    pipeline::Decoupled<DatapathInput> &in() { return stage1_->in(); }

    /** The datapath output port (consumer side drives ready). */
    pipeline::Decoupled<DatapathOutput> &out() { return stage11_->out(); }

    /** Register every pipeline stage with the simulation kernel. */
    void registerWith(pipeline::Simulator &sim);

    /** This instance's configuration. */
    const DatapathConfig &config() const { return cfg_; }

    /** True when the configuration implements the given opcode.
     *  The baseline pipeline supports only ray-box and ray-triangle. */
    bool
    supports(Opcode op) const
    {
        return cfg_.extended ||
               (op == Opcode::RayBox || op == Opcode::RayTriangle);
    }

    /** Activity observed so far (input: beats per op; set by stage 1). */
    const ActivityTrace &activity() const { return activity_; }

    /** Reset activity counters (not accumulator state). */
    void resetActivity() { activity_ = {}; }

    /** Count cycles into the activity trace; call once per simulated
     *  cycle when collecting power stimuli. */
    void countCycle() { ++activity_.cycles; }

    /** Per-stage statistics, stage 1 first. */
    std::vector<const pipeline::SkidBufferBase *> stages() const;

    /** Current accumulator registers (testing/inspection). */
    const DistanceAccumulators &accumulators() const { return acc_; }

  private:
    using MidBuffer = pipeline::SkidBuffer<Srfds, Srfds>;

    DatapathConfig cfg_;
    DistanceAccumulators acc_;
    ActivityTrace activity_;

    std::unique_ptr<pipeline::SkidBuffer<DatapathInput, Srfds>> stage1_;
    std::vector<std::unique_ptr<MidBuffer>> mids_; ///< stages 2..10
    std::unique_ptr<pipeline::SkidBuffer<Srfds, DatapathOutput>> stage11_;
};

/**
 * Convenience single-threaded driver: pushes a batch of inputs through a
 * freshly simulated datapath at full throughput and returns the outputs
 * in order. Also returns the cycle count via out-parameter when given.
 */
std::vector<DatapathOutput> runBatch(RayFlexDatapath &dp,
                                     const std::vector<DatapathInput> &in,
                                     uint64_t *cycles_out = nullptr);

} // namespace rayflex::core

#endif // RAYFLEX_CORE_DATAPATH_HH
