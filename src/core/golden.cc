/**
 * @file
 * Golden software model implementation.
 *
 * The FP32 golden functions use host float arithmetic. The build forces
 * -ffp-contract=off, so every add/mul rounds to binary32 exactly like the
 * datapath's per-operation rounding; results are bit-identical to the
 * hardware model by construction, which the randomized tests verify.
 */
#include "core/golden.hh"

#include <algorithm>
#include <cmath>

#include "core/quadsort.hh"

namespace rayflex::core::golden
{

using namespace rayflex::fp;

namespace
{

/** NaN-propagating min mirroring the hardware comparator + mux. */
float
minProp(float a, float b)
{
    if (std::isnan(a) || std::isnan(b))
        return fromBits(kDefaultNaN);
    return a > b ? b : a;
}

/** NaN-propagating max mirroring the hardware comparator + mux. */
float
maxProp(float a, float b)
{
    if (std::isnan(a) || std::isnan(b))
        return fromBits(kDefaultNaN);
    return a < b ? b : a;
}

} // namespace

BoxHit
rayBox(const Ray &ray, const Box &box)
{
    float org[3], inv[3], lo[3], hi[3];
    for (int d = 0; d < 3; ++d) {
        org[d] = fromBits(ray.origin[d]);
        inv[d] = fromBits(ray.inv_dir[d]);
        lo[d] = fromBits(box.lo[d]);
        hi[d] = fromBits(box.hi[d]);
    }
    float near_d[3], far_d[3];
    for (int d = 0; d < 3; ++d) {
        // Same op order as stages 2-4: translate, multiply, swap.
        float t0 = (lo[d] - org[d]) * inv[d];
        float t1 = (hi[d] - org[d]) * inv[d];
        near_d[d] = minProp(t0, t1);
        far_d[d] = maxProp(t0, t1);
    }
    float t_beg = fromBits(ray.t_beg);
    float t_end = fromBits(ray.t_end);
    float near = maxProp(maxProp(near_d[0], near_d[1]),
                         maxProp(near_d[2], t_beg));
    float far =
        minProp(minProp(far_d[0], far_d[1]), minProp(far_d[2], t_end));
    BoxHit r;
    // NaN anywhere makes the comparison false: miss.
    r.hit = !(std::isnan(near) || std::isnan(far)) && near <= far;
    r.t_near = toBits(near);
    return r;
}

BoxResult
rayBoxN(const Ray &ray, const std::array<Box, kMaxBoxesPerOp> &boxes,
        unsigned width)
{
    BoxResult out;
    std::array<SortRecord<uint8_t>, kMaxBoxesPerOp> recs;
    for (size_t b = 0; b < kMaxBoxesPerOp; ++b) {
        F32 key = kPosInf;
        if (b < width) {
            BoxHit h = rayBox(ray, boxes[b]);
            out.hit[b] = h.hit;
            if (h.hit)
                key = h.t_near;
        }
        if (isNaNF32(key))
            key = kPosInf;
        recs[b] = {key, static_cast<uint8_t>(b)};
    }
    sortNetwork(recs, width);
    for (size_t i = 0; i < kMaxBoxesPerOp; ++i) {
        out.order[i] = recs[i].payload;
        out.sorted_dist[i] = recs[i].key;
    }
    return out;
}

BoxResult
rayBox4(const Ray &ray, const std::array<Box, kMaxBoxesPerOp> &boxes)
{
    return rayBoxN(ray, boxes, kBoxesPerOp);
}

TriangleResult
rayTriangle(const Ray &ray, const Triangle &tri)
{
    const int kx = ray.kx, ky = ray.ky, kz = ray.kz;
    const float sx = fromBits(ray.shear[0]);
    const float sy = fromBits(ray.shear[1]);
    const float sz = fromBits(ray.shear[2]);

    float v[3][3]; // translated vertices A, B, C
    for (int i = 0; i < 3; ++i)
        for (int d = 0; d < 3; ++d)
            v[i][d] = fromBits(tri.v[i][d]) - fromBits(ray.origin[d]);

    // Shear and scale (same op order as stages 3-4).
    float x[3], y[3], z[3];
    for (int i = 0; i < 3; ++i) {
        x[i] = v[i][kx] - sx * v[i][kz];
        y[i] = v[i][ky] - sy * v[i][kz];
        z[i] = sz * v[i][kz];
    }

    float u = x[2] * y[1] - y[2] * x[1]; // Cx*By - Cy*Bx
    float vv = x[0] * y[2] - y[0] * x[2]; // Ax*Cy - Ay*Cx
    float w = x[1] * y[0] - y[1] * x[0]; // Bx*Ay - By*Ax

    float det = (u + vv) + w;
    float t_num = (u * z[0] + vv * z[1]) + w * z[2];

    TriangleResult r;
    r.t_num = toBits(t_num);
    r.t_den = toBits(det);
    r.uvw = {toBits(u), toBits(vv), toBits(w)};
    // Backface culling: det must be strictly positive. All comparisons
    // are false on NaN.
    r.hit = (u >= 0.0f) && (vv >= 0.0f) && (w >= 0.0f) && (det > 0.0f) &&
            (t_num >= 0.0f);
    return r;
}

F32
euclideanBeat(const std::array<F32, kEuclideanWidth> &a,
              const std::array<F32, kEuclideanWidth> &b, uint16_t mask)
{
    float sq[kEuclideanWidth];
    for (size_t i = 0; i < kEuclideanWidth; ++i) {
        if (mask & (1u << i)) {
            float d = fromBits(a[i]) - fromBits(b[i]);
            sq[i] = d * d;
        } else {
            sq[i] = 0.0f;
        }
    }
    // Balanced reduction tree, identical association to stages 4-9.
    for (int width = 8; width >= 1; width /= 2)
        for (int i = 0; i < width; ++i)
            sq[i] = sq[2 * i] + sq[2 * i + 1];
    return toBits(sq[0]);
}

CosineBeat
cosineBeat(const std::array<F32, kEuclideanWidth> &a,
           const std::array<F32, kEuclideanWidth> &b, uint16_t mask)
{
    float dot[kCosineWidth], sq[kCosineWidth];
    for (size_t i = 0; i < kCosineWidth; ++i) {
        if (mask & (1u << i)) {
            dot[i] = fromBits(a[i]) * fromBits(b[i]);
            sq[i] = fromBits(b[i]) * fromBits(b[i]);
        } else {
            dot[i] = 0.0f;
            sq[i] = 0.0f;
        }
    }
    for (int width = 4; width >= 1; width /= 2) {
        for (int i = 0; i < width; ++i) {
            dot[i] = dot[2 * i] + dot[2 * i + 1];
            sq[i] = sq[2 * i] + sq[2 * i + 1];
        }
    }
    return {toBits(dot[0]), toBits(sq[0])};
}

float
knnScore(const float *query, const float *candidate, size_t dims,
         bool cosine)
{
    const size_t width = cosine ? kCosineWidth : kEuclideanWidth;
    if (!cosine) {
        float acc = 0.0f;
        for (size_t base = 0; base < dims; base += width) {
            std::array<F32, kEuclideanWidth> a{}, b{};
            uint16_t mask = 0;
            for (size_t i = 0; i < width && base + i < dims; ++i) {
                a[i] = toBits(query[base + i]);
                b[i] = toBits(candidate[base + i]);
                mask |= uint16_t(1u << i);
            }
            acc = acc + fromBits(euclideanBeat(a, b, mask));
        }
        return acc;
    }
    float dot = 0.0f, norm = 0.0f;
    for (size_t base = 0; base < dims; base += width) {
        std::array<F32, kEuclideanWidth> a{}, b{};
        uint16_t mask = 0;
        for (size_t i = 0; i < width && base + i < dims; ++i) {
            a[i] = toBits(query[base + i]);
            b[i] = toBits(candidate[base + i]);
            mask |= uint16_t(1u << i);
        }
        CosineBeat cb = cosineBeat(a, b, mask);
        dot = dot + fromBits(cb.dot);
        norm = norm + fromBits(cb.norm);
    }
    return knnAngularScore(dot, norm);
}

std::vector<KnnNeighbor>
knnScan(const float *query, size_t dims,
        const std::vector<KnnCandidate> &candidates, size_t k,
        bool cosine)
{
    std::vector<KnnNeighbor> all;
    all.reserve(candidates.size());
    for (const KnnCandidate &c : candidates)
        all.push_back({knnScore(query, c.coords, dims, cosine), c.id});
    std::sort(all.begin(), all.end(), knnCloser);
    if (all.size() > k)
        all.resize(k);
    return all;
}

namespace
{

/** NaN-propagating double min/max mirroring the comparator + mux. */
double
minPropD(double a, double b)
{
    if (std::isnan(a) || std::isnan(b))
        return double(fromBits(kDefaultNaN));
    return a > b ? b : a;
}

double
maxPropD(double a, double b)
{
    if (std::isnan(a) || std::isnan(b))
        return double(fromBits(kDefaultNaN));
    return a < b ? b : a;
}

} // namespace

BoxHit
rayBoxUnrounded(const Ray &ray, const Box &box)
{
    double org[3], inv[3], lo[3], hi[3];
    for (int d = 0; d < 3; ++d) {
        org[d] = fromBits(ray.origin[d]);
        inv[d] = fromBits(ray.inv_dir[d]);
        lo[d] = fromBits(box.lo[d]);
        hi[d] = fromBits(box.hi[d]);
    }
    double near_d[3], far_d[3];
    for (int d = 0; d < 3; ++d) {
        double t0 = (lo[d] - org[d]) * inv[d];
        double t1 = (hi[d] - org[d]) * inv[d];
        near_d[d] = minPropD(t0, t1);
        far_d[d] = maxPropD(t0, t1);
    }
    double near = maxPropD(maxPropD(near_d[0], near_d[1]),
                           maxPropD(near_d[2], fromBits(ray.t_beg)));
    double far = minPropD(minPropD(far_d[0], far_d[1]),
                          minPropD(far_d[2], fromBits(ray.t_end)));
    BoxHit r;
    r.hit = !(std::isnan(near) || std::isnan(far)) && near <= far;
    // One rounding at the output converter.
    r.t_near = toBits(float(near));
    return r;
}

TriangleResult
rayTriangleUnrounded(const Ray &ray, const Triangle &tri)
{
    const int kx = ray.kx, ky = ray.ky, kz = ray.kz;
    const double sx = fromBits(ray.shear[0]);
    const double sy = fromBits(ray.shear[1]);
    const double sz = fromBits(ray.shear[2]);

    double v[3][3];
    for (int i = 0; i < 3; ++i)
        for (int d = 0; d < 3; ++d)
            v[i][d] = double(fromBits(tri.v[i][d])) -
                      double(fromBits(ray.origin[d]));

    double x[3], y[3], z[3];
    for (int i = 0; i < 3; ++i) {
        x[i] = v[i][kx] - sx * v[i][kz];
        y[i] = v[i][ky] - sy * v[i][kz];
        z[i] = sz * v[i][kz];
    }
    double u = x[2] * y[1] - y[2] * x[1];
    double vv = x[0] * y[2] - y[0] * x[2];
    double w = x[1] * y[0] - y[1] * x[0];
    double det = (u + vv) + w;
    double t_num = (u * z[0] + vv * z[1]) + w * z[2];

    TriangleResult r;
    r.t_num = toBits(float(t_num));
    r.t_den = toBits(float(det));
    r.uvw = {toBits(float(u)), toBits(float(vv)), toBits(float(w))};
    r.hit = (u >= 0.0) && (vv >= 0.0) && (w >= 0.0) && (det > 0.0) &&
            (t_num >= 0.0);
    return r;
}

F32
euclideanBeatUnrounded(const std::array<F32, kEuclideanWidth> &a,
                       const std::array<F32, kEuclideanWidth> &b,
                       uint16_t mask)
{
    double sum = 0.0;
    for (size_t i = 0; i < kEuclideanWidth; ++i) {
        if (mask & (1u << i)) {
            double d = double(fromBits(a[i])) - double(fromBits(b[i]));
            sum += d * d;
        }
    }
    return toBits(float(sum));
}

std::optional<double>
refRayBox(const Ray &ray, const Box &box)
{
    double t_near = fromBits(ray.t_beg);
    double t_far = fromBits(ray.t_end);
    for (int d = 0; d < 3; ++d) {
        double org = fromBits(ray.origin[d]);
        double dir = fromBits(ray.dir[d]);
        double lo = fromBits(box.lo[d]);
        double hi = fromBits(box.hi[d]);
        if (dir == 0.0) {
            // Parallel to the slab: on-boundary counts as outside to
            // match the hardware's NaN-miss convention.
            if (!(org > lo && org < hi))
                return std::nullopt;
            continue;
        }
        double t0 = (lo - org) / dir;
        double t1 = (hi - org) / dir;
        if (t0 > t1)
            std::swap(t0, t1);
        t_near = std::max(t_near, t0);
        t_far = std::min(t_far, t1);
        if (t_near > t_far)
            return std::nullopt;
    }
    return t_near;
}

std::optional<double>
refRayTriangle(const Ray &ray, const Triangle &tri)
{
    double org[3], dir[3], a[3], b[3], c[3];
    for (int d = 0; d < 3; ++d) {
        org[d] = fromBits(ray.origin[d]);
        dir[d] = fromBits(ray.dir[d]);
        a[d] = fromBits(tri.v[0][d]);
        b[d] = fromBits(tri.v[1][d]);
        c[d] = fromBits(tri.v[2][d]);
    }
    double e1[3], e2[3];
    for (int d = 0; d < 3; ++d) {
        e1[d] = b[d] - a[d];
        e2[d] = c[d] - a[d];
    }
    auto cross = [](const double *u, const double *v, double *out) {
        out[0] = u[1] * v[2] - u[2] * v[1];
        out[1] = u[2] * v[0] - u[0] * v[2];
        out[2] = u[0] * v[1] - u[1] * v[0];
    };
    auto dot = [](const double *u, const double *v) {
        return u[0] * v[0] + u[1] * v[1] + u[2] * v[2];
    };
    double p[3];
    cross(dir, e2, p);
    double det = dot(e1, p);
    if (det <= 0.0)
        return std::nullopt; // backface or coplanar
    double tvec[3] = {org[0] - a[0], org[1] - a[1], org[2] - a[2]};
    double u = dot(tvec, p) / det;
    if (u < 0.0 || u > 1.0)
        return std::nullopt;
    double q[3];
    cross(tvec, e1, q);
    double v = dot(dir, q) / det;
    if (v < 0.0 || u + v > 1.0)
        return std::nullopt;
    double t = dot(e2, q) / det;
    if (t < 0.0)
        return std::nullopt;
    return t;
}

double
refEuclidean(const std::array<F32, kEuclideanWidth> &a,
             const std::array<F32, kEuclideanWidth> &b, uint16_t mask)
{
    double sum = 0.0;
    for (size_t i = 0; i < kEuclideanWidth; ++i) {
        if (mask & (1u << i)) {
            double d = double(fromBits(a[i])) - double(fromBits(b[i]));
            sum += d * d;
        }
    }
    return sum;
}

} // namespace rayflex::core::golden
