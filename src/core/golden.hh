/**
 * @file
 * Golden software models (Section IV-A).
 *
 * Two layers of reference:
 *
 *  1. The *golden* model: host IEEE FP32 arithmetic mirroring the
 *     datapath's exact operation order, rounding and NaN semantics.
 *     Hardware results must match it bit-for-bit; this is the ground
 *     truth the paper verifies against with hundreds of thousands of
 *     random cases.
 *
 *  2. The *geometric reference*: double-precision, algorithm-independent
 *     implementations used by property tests to check that the golden
 *     model itself is geometrically sane away from degenerate inputs.
 */
#ifndef RAYFLEX_CORE_GOLDEN_HH
#define RAYFLEX_CORE_GOLDEN_HH

#include <optional>

#include "core/io_spec.hh"

namespace rayflex::core::golden
{

/** Golden result of one slab test. */
struct BoxHit
{
    bool hit = false;
    F32 t_near = 0; ///< entry distance (meaningful when hit)
};

/** Golden slab ray-box test in FP32 with hardware NaN semantics. */
BoxHit rayBox(const Ray &ray, const Box &box);

/** Golden multi-box test plus the stage-10 sort, matching BoxResult.
 *  Slots at index >= width are reported as misses with +inf keys. */
BoxResult rayBoxN(const Ray &ray,
                  const std::array<Box, kMaxBoxesPerOp> &boxes,
                  unsigned width);

/** Golden 4-box test (the RDNA3 default width). */
BoxResult rayBox4(const Ray &ray,
                  const std::array<Box, kMaxBoxesPerOp> &boxes);

/** Golden watertight ray-triangle test in FP32. */
TriangleResult rayTriangle(const Ray &ray, const Triangle &tri);

/** Golden 16-wide Euclidean beat partial sum (same reduction tree). */
F32 euclideanBeat(const std::array<F32, kEuclideanWidth> &a,
                  const std::array<F32, kEuclideanWidth> &b, uint16_t mask);

/** Golden 8-wide cosine beat partial sums (dot, norm). */
struct CosineBeat
{
    F32 dot = 0;
    F32 norm = 0;
};
CosineBeat cosineBeat(const std::array<F32, kEuclideanWidth> &a,
                      const std::array<F32, kEuclideanWidth> &b,
                      uint16_t mask);

// ----- unrounded-intermediate variants (Section III-F study) -----
//
// RayFlex rounds to binary32 after every addition/multiplication; the
// paper flags "forgo rounding at some or all stages" as an unexplored
// trade for area/frequency. These variants model the no-intermediate-
// rounding datapath: identical operation order, but intermediates keep
// extra precision (modelled with double) and a single rounding to FP32
// happens at the output converter. Used by bench_ablation_rounding to
// quantify how far the unrounded results drift from the rounded
// ("golden") ones - the verification complication the paper predicts.

/** Slab test with unrounded intermediates. */
BoxHit rayBoxUnrounded(const Ray &ray, const Box &box);

/** Watertight triangle test with unrounded intermediates. */
TriangleResult rayTriangleUnrounded(const Ray &ray, const Triangle &tri);

/** Euclidean beat partial sum with unrounded intermediates. */
F32 euclideanBeatUnrounded(const std::array<F32, kEuclideanWidth> &a,
                           const std::array<F32, kEuclideanWidth> &b,
                           uint16_t mask);

// ----- double-precision geometric references (property tests) -----

/** Double-precision slab test; returns entry distance when the ray
 *  segment [t_beg, t_end] intersects the box, nullopt otherwise.
 *  Boundary cases are resolved with closed intervals. */
std::optional<double> refRayBox(const Ray &ray, const Box &box);

/** Double-precision Moller-Trumbore style test with backface culling;
 *  returns t when hit. */
std::optional<double> refRayTriangle(const Ray &ray, const Triangle &tri);

/** Double-precision masked squared Euclidean distance. */
double refEuclidean(const std::array<F32, kEuclideanWidth> &a,
                    const std::array<F32, kEuclideanWidth> &b,
                    uint16_t mask);

} // namespace rayflex::core::golden

#endif // RAYFLEX_CORE_GOLDEN_HH
