/**
 * @file
 * Golden software models (Section IV-A).
 *
 * Two layers of reference:
 *
 *  1. The *golden* model: host IEEE FP32 arithmetic mirroring the
 *     datapath's exact operation order, rounding and NaN semantics.
 *     Hardware results must match it bit-for-bit; this is the ground
 *     truth the paper verifies against with hundreds of thousands of
 *     random cases.
 *
 *  2. The *geometric reference*: double-precision, algorithm-independent
 *     implementations used by property tests to check that the golden
 *     model itself is geometrically sane away from degenerate inputs.
 */
#ifndef RAYFLEX_CORE_GOLDEN_HH
#define RAYFLEX_CORE_GOLDEN_HH

#include <cmath>
#include <optional>
#include <vector>

#include "core/io_spec.hh"

namespace rayflex::core::golden
{

/** Golden result of one slab test. */
struct BoxHit
{
    bool hit = false;
    F32 t_near = 0; ///< entry distance (meaningful when hit)
};

/** Golden slab ray-box test in FP32 with hardware NaN semantics. */
BoxHit rayBox(const Ray &ray, const Box &box);

/** Golden multi-box test plus the stage-10 sort, matching BoxResult.
 *  Slots at index >= width are reported as misses with +inf keys. */
BoxResult rayBoxN(const Ray &ray,
                  const std::array<Box, kMaxBoxesPerOp> &boxes,
                  unsigned width);

/** Golden 4-box test (the RDNA3 default width). */
BoxResult rayBox4(const Ray &ray,
                  const std::array<Box, kMaxBoxesPerOp> &boxes);

/** Golden watertight ray-triangle test in FP32. */
TriangleResult rayTriangle(const Ray &ray, const Triangle &tri);

/** Golden 16-wide Euclidean beat partial sum (same reduction tree). */
F32 euclideanBeat(const std::array<F32, kEuclideanWidth> &a,
                  const std::array<F32, kEuclideanWidth> &b, uint16_t mask);

/** Golden 8-wide cosine beat partial sums (dot, norm). */
struct CosineBeat
{
    F32 dot = 0;
    F32 norm = 0;
};
CosineBeat cosineBeat(const std::array<F32, kEuclideanWidth> &a,
                      const std::array<F32, kEuclideanWidth> &b,
                      uint16_t mask);

// ----- unrounded-intermediate variants (Section III-F study) -----
//
// RayFlex rounds to binary32 after every addition/multiplication; the
// paper flags "forgo rounding at some or all stages" as an unexplored
// trade for area/frequency. These variants model the no-intermediate-
// rounding datapath: identical operation order, but intermediates keep
// extra precision (modelled with double) and a single rounding to FP32
// happens at the output converter. Used by bench_ablation_rounding to
// quantify how far the unrounded results drift from the rounded
// ("golden") ones - the verification complication the paper predicts.

/** Slab test with unrounded intermediates. */
BoxHit rayBoxUnrounded(const Ray &ray, const Box &box);

/** Watertight triangle test with unrounded intermediates. */
TriangleResult rayTriangleUnrounded(const Ray &ray, const Triangle &tri);

/** Euclidean beat partial sum with unrounded intermediates. */
F32 euclideanBeatUnrounded(const std::array<F32, kEuclideanWidth> &a,
                           const std::array<F32, kEuclideanWidth> &b,
                           uint16_t mask);

// ----- k-NN brute-force reference (Section V-A case study) -----
//
// Golden-model layer for the k-NN query engines: the per-candidate
// score walks the vectors in datapath beat order (euclideanBeat /
// cosineBeat chunks accumulated one FP32 addition per beat), so the
// pipelined datapath, the functional traversal and this brute-force
// scan all agree bit-for-bit — knnScan is the ground truth every k-NN
// result in the repo is pinned against.

/** A scored neighbor: the metric score and the caller's point label. */
struct KnnNeighbor
{
    float score = 0;
    uint32_t id = 0;

    friend bool operator==(const KnnNeighbor &,
                           const KnnNeighbor &) = default;
};

/** Strict total order on neighbors: ascending (score, id). Ids are
 *  unique per point set, so ties at equal distance resolve
 *  deterministically and every top-k set has exactly one sorted form. */
inline bool
knnCloser(const KnnNeighbor &a, const KnnNeighbor &b)
{
    return a.score < b.score || (a.score == b.score && a.id < b.id);
}

/** One candidate point offered to knnScan: a borrowed coordinate
 *  pointer (dims floats) and its label. */
struct KnnCandidate
{
    const float *coords = nullptr;
    uint32_t id = 0;
};

/** Angular score from the datapath's two cosine accumulators. The
 *  query norm is a positive per-query constant, so dropping it
 *  preserves the neighbor ranking; a zero-norm candidate scores a
 *  sentinel 2 (beyond any true angular distance). Shared by golden,
 *  functional and cycle-accurate paths so the score arithmetic cannot
 *  diverge. */
inline float
knnAngularScore(float dot, float norm)
{
    return norm > 0.0f ? 1.0f - dot / std::sqrt(norm) : 2.0f;
}

/** Golden distance of one query/candidate pair: beat-ordered FP32
 *  partial sums, one accumulation per beat — bit-identical to the
 *  extended pipeline evaluating the same job. Squared Euclidean
 *  distance, or the knnAngularScore when `cosine` is set. */
float knnScore(const float *query, const float *candidate, size_t dims,
               bool cosine);

/** Brute-force exact k-NN: score every candidate with knnScore, sort
 *  ascending by (score, id), keep the first min(k, n). */
std::vector<KnnNeighbor> knnScan(const float *query, size_t dims,
                                 const std::vector<KnnCandidate> &candidates,
                                 size_t k, bool cosine);

// ----- double-precision geometric references (property tests) -----

/** Double-precision slab test; returns entry distance when the ray
 *  segment [t_beg, t_end] intersects the box, nullopt otherwise.
 *  Boundary cases are resolved with closed intervals. */
std::optional<double> refRayBox(const Ray &ray, const Box &box);

/** Double-precision Moller-Trumbore style test with backface culling;
 *  returns t when hit. */
std::optional<double> refRayTriangle(const Ray &ray, const Triangle &tri);

/** Double-precision masked squared Euclidean distance. */
double refEuclidean(const std::array<F32, kEuclideanWidth> &a,
                    const std::array<F32, kEuclideanWidth> &b,
                    uint16_t mask);

} // namespace rayflex::core::golden

#endif // RAYFLEX_CORE_GOLDEN_HH
