/**
 * @file
 * Ray-creation precompute and IO convenience constructors.
 */
#include "core/io_spec.hh"

#include "core/config.hh"

namespace rayflex::core
{

using namespace rayflex::fp;

const char *
registerPolicyName(RegisterPolicy p)
{
    switch (p) {
      case RegisterPolicy::DisjointPerOp: return "disjoint-per-op";
      case RegisterPolicy::SharedUnionAligned: return "shared-aligned";
      case RegisterPolicy::SharedUnionWorstCase: return "shared-worst";
    }
    return "unknown";
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::RayBox: return "ray-box";
      case Opcode::RayTriangle: return "ray-triangle";
      case Opcode::Euclidean: return "euclidean";
      case Opcode::Cosine: return "cosine";
    }
    return "unknown";
}

Ray
makeRay(const std::array<F32, 3> &origin, const std::array<F32, 3> &dir,
        F32 t_beg, F32 t_end)
{
    Ray r;
    r.origin = origin;
    r.dir = dir;
    r.t_beg = t_beg;
    r.t_end = t_end;

    constexpr F32 one = 0x3F800000u; // 1.0f
    for (int d = 0; d < 3; ++d)
        r.inv_dir[d] = divF32(one, dir[d]);

    // kz: the dimension where |dir| is maximal (2 comparisons).
    F32 ax = dir[0] & 0x7FFFFFFFu;
    F32 ay = dir[1] & 0x7FFFFFFFu;
    F32 az = dir[2] & 0x7FFFFFFFu;
    uint8_t kz = 2;
    if (geF32(ax, ay) && geF32(ax, az))
        kz = 0;
    else if (geF32(ay, az))
        kz = 1;
    uint8_t kx = (kz + 1) % 3;
    uint8_t ky = (kx + 1) % 3;
    // Swap kx/ky to preserve the winding direction of triangles when the
    // dominant component is negative (1 comparison).
    if (signF32(dir[kz]) && !isZeroF32(dir[kz]))
        std::swap(kx, ky);
    r.kx = kx;
    r.ky = ky;
    r.kz = kz;

    // Shear constants (3 divisions, done here so the datapath has none).
    r.shear[0] = divF32(dir[kx], dir[kz]); // Sx
    r.shear[1] = divF32(dir[ky], dir[kz]); // Sy
    r.shear[2] = divF32(one, dir[kz]);     // Sz
    return r;
}

Ray
makeRay(float ox, float oy, float oz, float dx, float dy, float dz,
        float t_beg, float t_end)
{
    return makeRay({toBits(ox), toBits(oy), toBits(oz)},
                   {toBits(dx), toBits(dy), toBits(dz)}, toBits(t_beg),
                   toBits(t_end));
}

Box
makeBox(float lx, float ly, float lz, float hx, float hy, float hz)
{
    Box b;
    b.lo = {toBits(lx), toBits(ly), toBits(lz)};
    b.hi = {toBits(hx), toBits(hy), toBits(hz)};
    return b;
}

Triangle
makeTriangle(float ax, float ay, float az, float bx, float by, float bz,
             float cx, float cy, float cz)
{
    Triangle t;
    t.v[0] = {toBits(ax), toBits(ay), toBits(az)};
    t.v[1] = {toBits(bx), toBits(by), toBits(bz)};
    t.v[2] = {toBits(cx), toBits(cy), toBits(cz)};
    return t;
}

} // namespace rayflex::core
