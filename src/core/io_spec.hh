/**
 * @file
 * RayFlex IO specification (Section III-A of the paper).
 *
 * The interface follows the RDNA3 IMAGE_BVH_INTERSECT_RAY instruction:
 * each beat carries one opcode, one ray, one triangle and four boxes;
 * depending on the opcode either the triangle or the box data is valid.
 * The ray format follows RDNA3 (origin, direction inverse, extent) plus
 * the six extra values the paper adds: the 3-dimensional k (axis
 * permutation) and S (shear constants) of the watertight triangle test,
 * pre-computed at ray-creation time on the general-purpose GPU core so
 * that RayFlex needs no dividers.
 *
 * The extended datapath (case study, Section V-A) adds two 16-element
 * FP32 vectors, a 16-bit dimension mask and a reset_accumulator flag on
 * the input side, and the Euclidean/angular accumulator outputs with
 * their reset echoes on the output side.
 */
#ifndef RAYFLEX_CORE_IO_SPEC_HH
#define RAYFLEX_CORE_IO_SPEC_HH

#include <array>
#include <cstdint>

#include "fp/float32.hh"

namespace rayflex::core
{

using fp::F32;

/** Operation selected by each input beat. */
enum class Opcode : uint8_t {
    RayBox,      ///< four parallel ray-box slab tests + QuadSort
    RayTriangle, ///< watertight ray-triangle test
    Euclidean,   ///< 16-wide squared-Euclidean-distance partial sum
    Cosine,      ///< 8-wide dot-product and norm partial sums
};

/** Number of distinct opcodes (used for per-op statistics tables). */
inline constexpr size_t kNumOpcodes = 4;

/** Human-readable opcode name. */
const char *opcodeName(Opcode op);

/**
 * A ray in the RDNA3-style format used by RayFlex.
 *
 * k and shear are properties of the ray only (they involve divisions) and
 * are produced by makeRay() at ray-creation time, mirroring the paper's
 * decision to keep division out of the datapath.
 */
struct Ray
{
    std::array<F32, 3> origin{};  ///< ray origin point
    std::array<F32, 3> dir{};     ///< ray direction vector
    std::array<F32, 3> inv_dir{}; ///< element-wise reciprocal of dir
    F32 t_beg = 0;                ///< start of the ray extent
    F32 t_end = 0;                ///< end of the ray extent
    uint8_t kx = 0;               ///< permuted x axis index
    uint8_t ky = 1;               ///< permuted y axis index
    uint8_t kz = 2;               ///< axis where |dir| is maximal
    std::array<F32, 3> shear{};   ///< watertight shear constants Sx,Sy,Sz
};

/** An axis-aligned bounding box: minimum and maximum corner. */
struct Box
{
    std::array<F32, 3> lo{};
    std::array<F32, 3> hi{};
};

/** A triangle given by three vertices in counter-clockwise front-face
 *  order (the datapath applies backface culling). */
struct Triangle
{
    std::array<std::array<F32, 3>, 3> v{};
};

/** Default boxes tested per ray-box beat (RDNA3 4-wide BVH node). The
 *  paper stresses that the IO interface is decoupled from the datapath
 *  so other node widths are easy to model - e.g. the 6-wide BVH used by
 *  Mesa; DatapathConfig::box_width selects the instantiated width. */
inline constexpr size_t kBoxesPerOp = 4;

/** Maximum supported BVH node width. */
inline constexpr size_t kMaxBoxesPerOp = 8;

/** Width of one Euclidean-distance beat. */
inline constexpr size_t kEuclideanWidth = 16;

/** Width of one cosine-distance beat. */
inline constexpr size_t kCosineWidth = 8;

/** One input beat of the datapath. */
struct DatapathInput
{
    Opcode op = Opcode::RayBox;
    uint64_t tag = 0; ///< opaque user tag carried to the output

    Ray ray;                              ///< valid for box/triangle ops
    Triangle tri;                         ///< valid for RayTriangle
    std::array<Box, kMaxBoxesPerOp> boxes{}; ///< valid for RayBox

    // --- extended-pipeline fields (Section V-A) ---
    std::array<F32, kEuclideanWidth> vec_a{}; ///< query coordinates
    std::array<F32, kEuclideanWidth> vec_b{}; ///< candidate coordinates
    uint16_t mask = 0xFFFF; ///< set bits keep the dimension, clear drop it
    bool reset_accumulator = false; ///< set on the last beat of a job
};

/** Result of the four parallel ray-box tests, sorted by entry distance. */
struct BoxResult
{
    /** Hit flag per input box slot (unsorted). Slots beyond the
     *  datapath's box width always read as misses. */
    std::array<bool, kMaxBoxesPerOp> hit{};
    /** Input slot indices ("child pointers") sorted by order of
     *  intersection; misses sort after all hits. */
    std::array<uint8_t, kMaxBoxesPerOp> order{};
    /** Entry distance per sorted position (+inf for misses). */
    std::array<F32, kMaxBoxesPerOp> sorted_dist{};
};

/**
 * Result of the watertight ray-triangle test. The intersection distance
 * is returned as a numerator/denominator pair (t = t_num / t_den); the
 * division happens on the GPU core, not in the datapath.
 */
struct TriangleResult
{
    bool hit = false;
    F32 t_num = 0;                ///< distance numerator (T)
    F32 t_den = 0;                ///< distance denominator (determinant)
    std::array<F32, 3> uvw{};     ///< scaled barycentric coordinates
};

/** One output beat of the datapath, 11 cycles after its input beat. */
struct DatapathOutput
{
    Opcode op = Opcode::RayBox;
    uint64_t tag = 0;

    BoxResult box;      ///< valid for RayBox
    TriangleResult tri; ///< valid for RayTriangle

    // --- extended-pipeline fields ---
    F32 euclidean_accumulator = 0; ///< running squared distance
    bool euclidean_reset = false;  ///< reset_accumulator echoed (11 cyc)
    F32 angular_dot_product = 0;   ///< running dot-product accumulator
    F32 angular_norm = 0;          ///< running candidate-norm accumulator
    bool angular_reset = false;    ///< reset_accumulator echoed (11 cyc)
};

/**
 * Ray-creation routine (the shaded steps 1-3 of Fig. 4b, performed on the
 * GPU core): computes the inverse direction, the winding-preserving axis
 * permutation k, and the shear constants S. All arithmetic is IEEE FP32.
 *
 * @param origin Ray origin.
 * @param dir    Ray direction (need not be normalized, must be nonzero).
 * @param t_beg  Start of ray extent.
 * @param t_end  End of ray extent.
 */
Ray makeRay(const std::array<F32, 3> &origin, const std::array<F32, 3> &dir,
            F32 t_beg, F32 t_end);

/** Convenience: makeRay from host floats. */
Ray makeRay(float ox, float oy, float oz, float dx, float dy, float dz,
            float t_beg, float t_end);

/** Convenience: build a Box from host floats. */
Box makeBox(float lx, float ly, float lz, float hx, float hy, float hz);

/** Convenience: build a Triangle from host floats. */
Triangle makeTriangle(float ax, float ay, float az, float bx, float by,
                      float bz, float cx, float cy, float cz);

} // namespace rayflex::core

#endif // RAYFLEX_CORE_IO_SPEC_HH
