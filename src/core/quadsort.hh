/**
 * @file
 * QuadSort: the 4-element sorting network of pipeline stage 10.
 *
 * After the four parallel ray-box tests, the RDNA3 instruction returns
 * the children sorted by their order of intersection. A sorting network
 * can sort four elements with just five compare-exchange units arranged
 * in three levels (Section III-B1):
 *
 *   level 1: CE(0,1)  CE(2,3)
 *   level 2: CE(0,2)  CE(1,3)
 *   level 3: CE(1,2)
 *
 * An exchange happens only on a strictly-greater comparison, so equal
 * keys never swap with each other (though the network is not fully
 * stable: the level-2 (1,3) exchange can move a key past slot 2), and
 * NaN keys never swap (hardware comparators report unordered, which the
 * exchange treats as "do not swap").
 */
#ifndef RAYFLEX_CORE_QUADSORT_HH
#define RAYFLEX_CORE_QUADSORT_HH

#include <array>
#include <utility>

#include "fp/float32.hh"

namespace rayflex::core
{

/** One record flowing through the sorting network. */
template <typename Payload>
struct SortRecord
{
    fp::F32 key;     ///< sort key (entry distance; +inf for misses)
    Payload payload; ///< carried data (box slot index)
};

/**
 * Sort four records by ascending key using the 5-comparator network.
 * Misses should be encoded with a +inf key so they sort last.
 */
template <typename Payload>
std::array<SortRecord<Payload>, 4>
quadSort(std::array<SortRecord<Payload>, 4> r)
{
    auto ce = [](SortRecord<Payload> &a, SortRecord<Payload> &b) {
        // Compare-exchange: swap only when strictly greater; unordered
        // comparisons (NaN) never swap.
        if (fp::gtF32(a.key, b.key))
            std::swap(a, b);
    };
    ce(r[0], r[1]);
    ce(r[2], r[3]);
    ce(r[0], r[2]);
    ce(r[1], r[3]);
    ce(r[1], r[2]);
    return r;
}

/**
 * Generic Batcher odd-even mergesort network over the first n records,
 * supporting the non-4-wide BVH node configurations (e.g. Mesa's 6-wide
 * nodes). For n == 4 the generated compare-exchange sequence is exactly
 * the QuadSort network above. The comparator count grows
 * O(n log^2 n): 1 -> 0, 2 -> 1, 4 -> 5, 6 -> 12, 8 -> 19.
 *
 * @param r Records; entries at index >= n are left untouched.
 * @param n Number of records to sort (n <= r.size()).
 */
template <typename Payload, size_t N>
void
sortNetwork(std::array<SortRecord<Payload>, N> &r, size_t n)
{
    auto ce = [&](size_t a, size_t b) {
        if (fp::gtF32(r[a].key, r[b].key))
            std::swap(r[a], r[b]);
    };
    for (size_t p = 1; p < n; p *= 2) {
        for (size_t k = p; k >= 1; k /= 2) {
            for (size_t j = k % p; j + k < n; j += 2 * k) {
                for (size_t i = 0; i < k && i + j + k < n; ++i) {
                    if ((i + j) / (2 * p) == (i + j + k) / (2 * p))
                        ce(i + j, i + j + k);
                }
            }
            if (k == 1)
                break;
        }
    }
}

/** Number of compare-exchange units in the n-input Batcher network
 *  (used by the synthesis model to cost non-default node widths). */
constexpr unsigned
sortNetworkComparators(unsigned n)
{
    unsigned count = 0;
    for (unsigned p = 1; p < n; p *= 2) {
        for (unsigned k = p; k >= 1; k /= 2) {
            for (unsigned j = k % p; j + k < n; j += 2 * k)
                for (unsigned i = 0; i < k && i + j + k < n; ++i)
                    if ((i + j) / (2 * p) == (i + j + k) / (2 * p))
                        ++count;
            if (k == 1)
                break;
        }
    }
    return count;
}

} // namespace rayflex::core

#endif // RAYFLEX_CORE_QUADSORT_HH
