/**
 * @file
 * Deterministic scenario ray generation.
 *
 * Every function here is straight-line FP32 arithmetic with a fixed
 * operation order; combined with the build-wide -ffp-contract=off this
 * makes each generated ray a bit-reproducible function of the inputs
 * (and, for the AO fan, of the seed).
 */
#include "core/raygen.hh"

#include <cmath>

namespace rayflex::core
{

namespace
{

constexpr float kPi = 3.14159265358979323846f;

Float3
sub(const Float3 &a, const Float3 &b)
{
    return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}

Float3
add(const Float3 &a, const Float3 &b)
{
    return {a[0] + b[0], a[1] + b[1], a[2] + b[2]};
}

Float3
scale(const Float3 &a, float s)
{
    return {a[0] * s, a[1] * s, a[2] * s};
}

float
dot(const Float3 &a, const Float3 &b)
{
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

Float3
cross(const Float3 &a, const Float3 &b)
{
    return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
            a[0] * b[1] - a[1] * b[0]};
}

Float3
normalized(const Float3 &a)
{
    return scale(a, 1.0f / std::sqrt(dot(a, a)));
}

/** SplitMix64: the standard 64-bit finalizer used to whiten a seed. */
uint64_t
splitmix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** A deterministic tangent frame (t1, t2) completing `n` (unit). The
 *  reference axis is the coordinate where |n| is smallest, which keeps
 *  the cross product well conditioned for every normal. */
void
tangentFrame(const Float3 &n, Float3 &t1, Float3 &t2)
{
    Float3 ref{1, 0, 0};
    float ax = std::fabs(n[0]), ay = std::fabs(n[1]),
          az = std::fabs(n[2]);
    if (ay <= ax && ay <= az)
        ref = {0, 1, 0};
    else if (az <= ax && az <= ay)
        ref = {0, 0, 1};
    t1 = normalized(cross(n, ref));
    t2 = cross(n, t1); // already unit: n and t1 are orthonormal
}

} // namespace

RayGen::RayGen(uint64_t seed)
{
    // Fold the whitened seed into a 24-bit value (exact in FP32) and
    // spread it over one turn.
    uint64_t bits = splitmix64(seed) >> 40;
    phase_ = float(bits) * (2.0f * kPi / 16777216.0f);
}

namespace
{

/** The pixel-independent part of the pinhole model. */
struct CameraBasis
{
    Float3 fwd, right, v_up;
    float half_w, half_h;
};

/** Identical operation order to the historical bvh::Camera math (the
 *  BVH-layer camera now delegates here). */
CameraBasis
cameraBasis(const Pinhole &cam)
{
    CameraBasis b;
    b.fwd = normalized(sub(cam.look_at, cam.eye));
    b.right = normalized(cross(b.fwd, cam.up));
    b.v_up = cross(b.right, b.fwd);
    float aspect = float(cam.width) / float(cam.height);
    b.half_h = std::tan(cam.fov_deg * kPi / 360.0f);
    b.half_w = b.half_h * aspect;
    return b;
}

Ray
pixelRay(const Pinhole &cam, const CameraBasis &b, unsigned px,
         unsigned py, float t_max)
{
    float sx = (2.0f * (float(px) + 0.5f) / float(cam.width) - 1.0f) *
               b.half_w;
    float sy = (1.0f - 2.0f * (float(py) + 0.5f) / float(cam.height)) *
               b.half_h;
    Float3 dir = normalized(
        add(add(b.fwd, scale(b.right, sx)), scale(b.v_up, sy)));
    return makeRay(cam.eye[0], cam.eye[1], cam.eye[2], dir[0], dir[1],
                   dir[2], 0.0f, t_max);
}

} // namespace

Ray
RayGen::primaryRay(const Pinhole &cam, unsigned px, unsigned py,
                   float t_max)
{
    return pixelRay(cam, cameraBasis(cam), px, py, t_max);
}

std::vector<Ray>
RayGen::primaryRays(const Pinhole &cam, float t_max)
{
    // One basis derivation for the whole frame; the per-ray arithmetic
    // is unchanged, so bulk and per-pixel rays are bit-identical.
    const CameraBasis basis = cameraBasis(cam);
    std::vector<Ray> rays;
    rays.reserve(size_t(cam.width) * cam.height);
    for (unsigned y = 0; y < cam.height; ++y)
        for (unsigned x = 0; x < cam.width; ++x)
            rays.push_back(pixelRay(cam, basis, x, y, t_max));
    return rays;
}

Ray
RayGen::shadowRay(const Float3 &point, const Float3 &normal,
                  const Float3 &light_dir, float eps, float t_max)
{
    Float3 org = add(point, scale(normal, eps));
    Float3 dir = normalized(light_dir);
    return makeRay(org[0], org[1], org[2], dir[0], dir[1], dir[2], eps,
                   t_max);
}

std::vector<Ray>
RayGen::aoFan(const Float3 &point, const Float3 &normal, unsigned count,
              float eps, float radius) const
{
    std::vector<Ray> fan;
    fan.reserve(count);
    appendAoFan(fan, point, normal, count, eps, radius);
    return fan;
}

void
RayGen::appendAoFan(std::vector<Ray> &out, const Float3 &point,
                    const Float3 &normal, unsigned count, float eps,
                    float radius) const
{
    // Equal-area spiral over the hemisphere: elevations z_i uniform in
    // (0, 1], azimuths advancing by the golden angle from the seed
    // phase. Deliberately not cosine-weighted - the fan measures plain
    // geometric openness, and equal weights keep the visible fraction a
    // simple ratio.
    constexpr float kGoldenAngle = 2.39996323f; // pi * (3 - sqrt 5)
    Float3 t1, t2;
    tangentFrame(normal, t1, t2);
    Float3 org = add(point, scale(normal, eps));

    // No reserve here: repeated appends into one growing batch rely on
    // the vector's geometric growth.
    for (unsigned i = 0; i < count; ++i) {
        float z = 1.0f - (float(i) + 0.5f) / float(count);
        float r = std::sqrt(1.0f - z * z);
        float phi = phase_ + kGoldenAngle * float(i);
        float cx = r * std::cos(phi);
        float cy = r * std::sin(phi);
        Float3 dir = add(add(scale(t1, cx), scale(t2, cy)),
                         scale(normal, z));
        out.push_back(makeRay(org[0], org[1], org[2], dir[0], dir[1],
                              dir[2], eps, radius));
    }
}

Ray
RayGen::bounceRay(const Float3 &point, const Float3 &normal,
                  const Float3 &incoming, float eps, float t_max)
{
    float d = dot(incoming, normal);
    Float3 dir = sub(incoming, scale(normal, 2.0f * d));
    Float3 org = add(point, scale(normal, eps));
    return makeRay(org[0], org[1], org[2], dir[0], dir[1], dir[2], eps,
                   t_max);
}

} // namespace rayflex::core
