/**
 * @file
 * Deterministic ray generation for multi-pass secondary-ray scenarios.
 *
 * The paper's datapath consumes rays whose division-dependent fields
 * (inverse direction, shear constants) are precomputed at ray-creation
 * time on the GPU core (makeRay). This module is that GPU-core side for
 * whole scenario passes: pinhole-camera primary rays, shadow rays
 * toward a light, cosine-free ambient-occlusion fans and one-bounce
 * mirror rays. Every generator is a pure function of its inputs (the
 * AO fan additionally of the construction seed), computed in plain
 * IEEE FP32 with a fixed operation order, so generated batches are
 * bit-reproducible across runs, machines and engine thread counts -
 * the property the sim::Engine determinism contract extends through
 * multi-pass rendering.
 *
 * All secondary rays carry a non-zero lower extent bound t_beg (plus an
 * epsilon offset of the origin along the surface normal), which is why
 * every traversal path honors t_beg: a triangle in front of t_beg must
 * be rejected exactly like one beyond t_end.
 */
#ifndef RAYFLEX_CORE_RAYGEN_HH
#define RAYFLEX_CORE_RAYGEN_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/io_spec.hh"

namespace rayflex::core
{

/** A host-float point or vector for ray generation (the core layer
 *  keeps geometry in plain floats until makeRay packs it into bits). */
using Float3 = std::array<float, 3>;

/** A pinhole camera. The BVH layer's bvh::Camera delegates here, so
 *  there is exactly one implementation of the primary-ray math. */
struct Pinhole
{
    Float3 eye{0, 0, 5};
    Float3 look_at{0, 0, 0};
    Float3 up{0, 1, 0};
    float fov_deg = 60.0f;
    unsigned width = 64;
    unsigned height = 64;
};

/** Deterministic scenario ray generator. Static members are pure
 *  functions; the AO fan also folds in the seed (as a fixed azimuth
 *  phase), so distinct seeds give distinct - but each bit-reproducible
 *  - fans. */
class RayGen
{
  public:
    explicit RayGen(uint64_t seed = 1);

    /** Azimuth phase in [0, 2*pi) derived from the seed. */
    float fanPhase() const { return phase_; }

    /** Primary ray through the centre of pixel (px, py); the ray
     *  extent is [0, t_max]. */
    static Ray primaryRay(const Pinhole &cam, unsigned px, unsigned py,
                          float t_max);

    /** All width*height primary rays in row-major pixel order. */
    static std::vector<Ray> primaryRays(const Pinhole &cam, float t_max);

    /** Shadow ray from a surface point toward a directional light:
     *  origin offset by eps along the normal, extent [eps, t_max].
     *  `light_dir` is normalized internally, so the extent is in world
     *  units and occluders closer than eps (self-intersection) are
     *  outside it by construction. `normal` must be unit length. */
    static Ray shadowRay(const Float3 &point, const Float3 &normal,
                         const Float3 &light_dir, float eps, float t_max);

    /** Deterministic ambient-occlusion fan: `count` rays covering the
     *  hemisphere around `normal` (unit length) on an equal-area
     *  spiral (no cosine weighting, no rejection sampling), azimuth
     *  rotated by the seed phase. Origins are offset by eps along the
     *  normal; extents are [eps, radius], so occlusion is evaluated
     *  inside a bounded neighborhood. */
    std::vector<Ray> aoFan(const Float3 &point, const Float3 &normal,
                           unsigned count, float eps, float radius) const;

    /** As aoFan(), appending to `out` (the bulk form scenario passes
     *  use: one growing batch, no per-fan allocation). */
    void appendAoFan(std::vector<Ray> &out, const Float3 &point,
                     const Float3 &normal, unsigned count, float eps,
                     float radius) const;

    /** One-bounce mirror ray: `incoming` reflected about `normal`
     *  (unit length), origin offset by eps along the normal, extent
     *  [eps, t_max] in units of |incoming| (reflection preserves the
     *  incoming length). */
    static Ray bounceRay(const Float3 &point, const Float3 &normal,
                         const Float3 &incoming, float eps, float t_max);

  private:
    float phase_ = 0;
};

} // namespace rayflex::core

#endif // RAYFLEX_CORE_RAYGEN_HH
