/**
 * @file
 * The Shared RayFlex Data Structure (SRFDS), Section III-E of the paper.
 *
 * One very wide structure contains every field that needs to be
 * registered at any stage of the entire pipeline, for every operation.
 * The same structure is instantiated as the payload of every intermediate
 * skid buffer ("defined once, instantiated everywhere"); only the first
 * and last stages use the external IO layout. A stage's logic copies its
 * input SRFDS to its output and overwrites just the fields it produces.
 *
 * In RTL, unused fields of each stage's register are removed by the
 * synthesizer's dead-node elimination; in this model the equivalent
 * bookkeeping lives in the synthesis library's field-liveness table
 * (synth/liveness.hh), which the area model uses to count surviving
 * register bits per stage.
 *
 * All floating-point fields are in the internal 33-bit recoded format
 * between stages 1 and 11.
 */
#ifndef RAYFLEX_CORE_SRFDS_HH
#define RAYFLEX_CORE_SRFDS_HH

#include <array>
#include <cstdint>

#include "core/io_spec.hh"
#include "fp/recoded.hh"

namespace rayflex::core
{

using fp::Rec32;

/** The Shared RayFlex Data Structure. */
struct Srfds
{
    // ----- control, live at every stage -----
    Opcode op = Opcode::RayBox;
    uint64_t tag = 0;
    bool reset_accumulator = false;

    // ----- ray fields (box + triangle lanes) -----
    std::array<Rec32, 3> org{};      ///< ray origin
    std::array<Rec32, 3> inv{};      ///< inverse direction
    Rec32 t_beg{};                   ///< ray extent start
    Rec32 t_end{};                   ///< ray extent end
    std::array<Rec32, 3> shear{};    ///< Sx, Sy, Sz
    uint8_t kx = 0, ky = 1, kz = 2;  ///< axis permutation

    // ----- ray-box lane -----
    /** Instantiated BVH node width (from DatapathConfig::box_width);
     *  only the first box_width slots of the arrays below are live. */
    uint8_t box_width = kBoxesPerOp;
    /** Box corner values; reused in place: raw corners (stage 1), then
     *  origin-translated corners (stage 2), then slab t-values
     *  (stage 3). */
    std::array<std::array<Rec32, 3>, kMaxBoxesPerOp> box_lo{};
    std::array<std::array<Rec32, 3>, kMaxBoxesPerOp> box_hi{};
    /** Slab entry distance per box (stage 4). */
    std::array<Rec32, kMaxBoxesPerOp> box_near{};
    /** Slab exit distance per box (stage 4). */
    std::array<Rec32, kMaxBoxesPerOp> box_far{};
    /** Per-box hit flag (stage 4). */
    std::array<bool, kMaxBoxesPerOp> box_hit{};
    /** Box slot indices sorted by entry distance (stage 10). */
    std::array<uint8_t, kMaxBoxesPerOp> box_order{};
    /** Entry distance per sorted position (stage 10). */
    std::array<Rec32, kMaxBoxesPerOp> box_sorted_dist{};

    // ----- ray-triangle lane -----
    /** Vertices; raw (stage 1), then origin-translated A,B,C (stage 2). */
    std::array<std::array<Rec32, 3>, 3> tri_v{};
    /** Shear products per vertex: S * v[kz] (stage 3). */
    std::array<std::array<Rec32, 3>, 3> shear_prod{};
    /** Sheared 2D coordinates Ax,Ay / Bx,By / Cx,Cy (stage 4). */
    std::array<std::array<Rec32, 2>, 3> txy{};
    /** Sheared z coordinates Az, Bz, Cz (stage 4, copied from
     *  shear_prod). */
    std::array<Rec32, 3> tz{};
    /** Barycentric cross products (stage 5):
     *  Cx*By, Cy*Bx, Ax*Cy, Ay*Cx, Bx*Ay, By*Ax. */
    std::array<Rec32, 6> uvw_prod{};
    /** Scaled barycentric coordinates U, V, W (stage 6). */
    std::array<Rec32, 3> uvw{};
    /** Distance products U*Az, V*Bz, W*Cz (stage 7). */
    std::array<Rec32, 3> t_prod{};
    Rec32 det_partial{}; ///< U+V (stage 8)
    Rec32 t_partial{};   ///< U*Az + V*Bz (stage 8)
    Rec32 det{};         ///< determinant = U+V+W (stage 9)
    Rec32 t_num{};       ///< distance numerator (stage 9)
    bool tri_hit = false; ///< hit flag (stage 10)

    // ----- distance lane (extended pipeline only) -----
    uint16_t mask = 0xFFFF; ///< dimension validity mask
    /** Euclidean working vector, reused in place: recoded a (stage 1),
     *  differences (stage 2), squares (stage 3), then the reduction tree
     *  uses slots [0,8) / [0,4) / [0,2) / [0,1) at stages 4/6/8/9. */
    std::array<Rec32, kEuclideanWidth> dvec{};
    /** Recoded candidate vector b (stage 1; consumed at stage 2/3). */
    std::array<Rec32, kEuclideanWidth> dvec_b{};
    /** Cosine dot-product lane: products (stage 3), reduced at
     *  stages 4/6/8 using slots [0,4) / [0,2) / [0,1). */
    std::array<Rec32, kCosineWidth> cos_dot{};
    /** Cosine candidate-norm lane, same reduction schedule. */
    std::array<Rec32, kCosineWidth> cos_sq{};
    Rec32 euclid_out{};              ///< accumulator output (stage 10)
    bool euclid_reset_out = false;   ///< reset echo (stage 10)
    Rec32 dot_out{};                 ///< dot accumulator output (stage 9)
    Rec32 norm_out{};                ///< norm accumulator output (stage 9)
    bool angular_reset_out = false;  ///< reset echo (stage 9)
};

} // namespace rayflex::core

#endif // RAYFLEX_CORE_SRFDS_HH
