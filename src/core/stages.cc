/**
 * @file
 * Implementation of the eleven pipeline stage functions.
 *
 * Every floating-point operation here corresponds to one functional-unit
 * activation in the RTL: an adder (addRec/subRec), a multiplier (mulRec)
 * or a comparator (compareRec and the min/max select trees). Rounding to
 * binary32 precision happens inside every addRec/subRec/mulRec call,
 * matching the paper's per-operation rounding (Section III-F).
 */
#include "core/stages.hh"

#include "core/quadsort.hh"

namespace rayflex::core
{

using namespace rayflex::fp;

namespace stages
{

Srfds
stage1(const DatapathInput &in, unsigned box_width)
{
    Srfds s;
    s.box_width = static_cast<uint8_t>(box_width);
    s.op = in.op;
    s.tag = in.tag;
    s.reset_accumulator = in.reset_accumulator;
    s.mask = in.mask;

    for (int d = 0; d < 3; ++d) {
        s.org[d] = recode(in.ray.origin[d]);
        s.inv[d] = recode(in.ray.inv_dir[d]);
        s.shear[d] = recode(in.ray.shear[d]);
    }
    s.t_beg = recode(in.ray.t_beg);
    s.t_end = recode(in.ray.t_end);
    s.kx = in.ray.kx;
    s.ky = in.ray.ky;
    s.kz = in.ray.kz;

    switch (in.op) {
      case Opcode::RayBox:
        for (size_t b = 0; b < box_width; ++b) {
            for (int d = 0; d < 3; ++d) {
                s.box_lo[b][d] = recode(in.boxes[b].lo[d]);
                s.box_hi[b][d] = recode(in.boxes[b].hi[d]);
            }
        }
        break;
      case Opcode::RayTriangle:
        for (int v = 0; v < 3; ++v)
            for (int d = 0; d < 3; ++d)
                s.tri_v[v][d] = recode(in.tri.v[v][d]);
        break;
      case Opcode::Euclidean:
        for (size_t i = 0; i < kEuclideanWidth; ++i) {
            s.dvec[i] = recode(in.vec_a[i]);
            s.dvec_b[i] = recode(in.vec_b[i]);
        }
        break;
      case Opcode::Cosine:
        for (size_t i = 0; i < kCosineWidth; ++i) {
            s.dvec[i] = recode(in.vec_a[i]);
            s.dvec_b[i] = recode(in.vec_b[i]);
        }
        break;
    }
    return s;
}

Srfds
stage2(Srfds s)
{
    switch (s.op) {
      case Opcode::RayBox:
        // Translate box corners to the ray origin (24 subtractions at
        // the default width: 6 per box).
        for (size_t b = 0; b < s.box_width; ++b) {
            for (int d = 0; d < 3; ++d) {
                s.box_lo[b][d] = subRec(s.box_lo[b][d], s.org[d]);
                s.box_hi[b][d] = subRec(s.box_hi[b][d], s.org[d]);
            }
        }
        break;
      case Opcode::RayTriangle:
        // Translate triangle vertices to the ray origin
        // (9 subtractions).
        for (int v = 0; v < 3; ++v)
            for (int d = 0; d < 3; ++d)
                s.tri_v[v][d] = subRec(s.tri_v[v][d], s.org[d]);
        break;
      case Opcode::Euclidean:
        // Element-wise difference; masked dimensions contribute zero
        // (16 subtractions).
        for (size_t i = 0; i < kEuclideanWidth; ++i) {
            if (s.mask & (1u << i))
                s.dvec[i] = subRec(s.dvec[i], s.dvec_b[i]);
            else
                s.dvec[i] = recZero();
        }
        break;
      case Opcode::Cosine:
        break; // nothing at this stage
    }
    return s;
}

Srfds
stage3(Srfds s)
{
    switch (s.op) {
      case Opcode::RayBox:
        // Slab t-values: translated corner times inverse direction
        // (24 multiplications). A zero corner against an infinite
        // inverse direction produces NaN here, which later poisons the
        // compare trees into a miss (Section IV-A).
        for (size_t b = 0; b < s.box_width; ++b) {
            for (int d = 0; d < 3; ++d) {
                s.box_lo[b][d] = mulRec(s.box_lo[b][d], s.inv[d]);
                s.box_hi[b][d] = mulRec(s.box_hi[b][d], s.inv[d]);
            }
        }
        break;
      case Opcode::RayTriangle:
        // Shear products S * v[kz] per vertex (9 multiplications).
        for (int v = 0; v < 3; ++v) {
            Rec32 vkz = s.tri_v[v][s.kz];
            for (int c = 0; c < 3; ++c)
                s.shear_prod[v][c] = mulRec(s.shear[c], vkz);
        }
        break;
      case Opcode::Euclidean:
        // Squares of the differences (16 multiplications, all squarers).
        for (size_t i = 0; i < kEuclideanWidth; ++i)
            s.dvec[i] = mulRec(s.dvec[i], s.dvec[i]);
        break;
      case Opcode::Cosine:
        // Dot products a*b and candidate squares b*b; masked dimensions
        // contribute zero (16 multiplications, 8 of them squarers).
        for (size_t i = 0; i < kCosineWidth; ++i) {
            if (s.mask & (1u << i)) {
                s.cos_dot[i] = mulRec(s.dvec[i], s.dvec_b[i]);
                s.cos_sq[i] = mulRec(s.dvec_b[i], s.dvec_b[i]);
            } else {
                s.cos_dot[i] = recZero();
                s.cos_sq[i] = recZero();
            }
        }
        break;
    }
    return s;
}

Srfds
stage4(Srfds s)
{
    switch (s.op) {
      case Opcode::RayBox: {
        // Per box: 3 swap comparators + two balanced 4-input select
        // trees (3 comparators each) + 1 hit comparator = 10; 40 total
        // at the default 4-wide configuration.
        for (size_t b = 0; b < s.box_width; ++b) {
            Rec32 near_d[3], far_d[3];
            for (int d = 0; d < 3; ++d) {
                near_d[d] = minPropRec(s.box_lo[b][d], s.box_hi[b][d]);
                far_d[d] = maxPropRec(s.box_lo[b][d], s.box_hi[b][d]);
            }
            Rec32 near = maxPropRec(maxPropRec(near_d[0], near_d[1]),
                                    maxPropRec(near_d[2], s.t_beg));
            Rec32 far = minPropRec(minPropRec(far_d[0], far_d[1]),
                                   minPropRec(far_d[2], s.t_end));
            s.box_near[b] = near;
            s.box_far[b] = far;
            s.box_hit[b] = leRec(near, far);
        }
        break;
      }
      case Opcode::RayTriangle:
        // Shear the permuted x/y coordinates (6 subtractions) and pick
        // up the scaled z coordinates.
        for (int v = 0; v < 3; ++v) {
            s.txy[v][0] = subRec(s.tri_v[v][s.kx], s.shear_prod[v][0]);
            s.txy[v][1] = subRec(s.tri_v[v][s.ky], s.shear_prod[v][1]);
            s.tz[v] = s.shear_prod[v][2];
        }
        break;
      case Opcode::Euclidean:
        // Reduction 16 -> 8 (8 additions; needs the 2 extra extended
        // adders on top of the 6 baseline ones).
        for (int i = 0; i < 8; ++i)
            s.dvec[i] = addRec(s.dvec[2 * i], s.dvec[2 * i + 1]);
        break;
      case Opcode::Cosine:
        // Reductions 8 -> 4 on both lanes (8 additions).
        for (int i = 0; i < 4; ++i) {
            s.cos_dot[i] = addRec(s.cos_dot[2 * i], s.cos_dot[2 * i + 1]);
            s.cos_sq[i] = addRec(s.cos_sq[2 * i], s.cos_sq[2 * i + 1]);
        }
        break;
    }
    return s;
}

Srfds
stage5(Srfds s)
{
    if (s.op == Opcode::RayTriangle) {
        // Barycentric cross products (6 multiplications).
        const Rec32 ax = s.txy[0][0], ay = s.txy[0][1];
        const Rec32 bx = s.txy[1][0], by = s.txy[1][1];
        const Rec32 cx = s.txy[2][0], cy = s.txy[2][1];
        s.uvw_prod[0] = mulRec(cx, by);
        s.uvw_prod[1] = mulRec(cy, bx);
        s.uvw_prod[2] = mulRec(ax, cy);
        s.uvw_prod[3] = mulRec(ay, cx);
        s.uvw_prod[4] = mulRec(bx, ay);
        s.uvw_prod[5] = mulRec(by, ax);
    }
    return s;
}

Srfds
stage6(Srfds s)
{
    switch (s.op) {
      case Opcode::RayTriangle:
        // U, V, W (3 subtractions).
        s.uvw[0] = subRec(s.uvw_prod[0], s.uvw_prod[1]);
        s.uvw[1] = subRec(s.uvw_prod[2], s.uvw_prod[3]);
        s.uvw[2] = subRec(s.uvw_prod[4], s.uvw_prod[5]);
        break;
      case Opcode::Euclidean:
        // Reduction 8 -> 4 (4 additions; needs the 1 extra extended
        // adder).
        for (int i = 0; i < 4; ++i)
            s.dvec[i] = addRec(s.dvec[2 * i], s.dvec[2 * i + 1]);
        break;
      case Opcode::Cosine:
        // Reductions 4 -> 2 on both lanes (4 additions).
        for (int i = 0; i < 2; ++i) {
            s.cos_dot[i] = addRec(s.cos_dot[2 * i], s.cos_dot[2 * i + 1]);
            s.cos_sq[i] = addRec(s.cos_sq[2 * i], s.cos_sq[2 * i + 1]);
        }
        break;
      default:
        break;
    }
    return s;
}

Srfds
stage7(Srfds s)
{
    if (s.op == Opcode::RayTriangle) {
        // Distance products (3 multiplications).
        for (int i = 0; i < 3; ++i)
            s.t_prod[i] = mulRec(s.uvw[i], s.tz[i]);
    }
    return s;
}

Srfds
stage8(Srfds s)
{
    switch (s.op) {
      case Opcode::RayTriangle:
        // First halves of determinant and distance (2 additions).
        s.det_partial = addRec(s.uvw[0], s.uvw[1]);
        s.t_partial = addRec(s.t_prod[0], s.t_prod[1]);
        break;
      case Opcode::Euclidean:
        // Reduction 4 -> 2 (2 additions).
        s.dvec[0] = addRec(s.dvec[0], s.dvec[1]);
        s.dvec[1] = addRec(s.dvec[2], s.dvec[3]);
        break;
      case Opcode::Cosine:
        // Final beat sums on both lanes (2 additions).
        s.cos_dot[0] = addRec(s.cos_dot[0], s.cos_dot[1]);
        s.cos_sq[0] = addRec(s.cos_sq[0], s.cos_sq[1]);
        break;
      default:
        break;
    }
    return s;
}

Srfds
stage9(Srfds s, DistanceAccumulators &acc)
{
    switch (s.op) {
      case Opcode::RayTriangle:
        // Determinant and distance numerator complete (2 additions).
        s.det = addRec(s.det_partial, s.uvw[2]);
        s.t_num = addRec(s.t_partial, s.t_prod[2]);
        break;
      case Opcode::Euclidean:
        // Beat partial sum completes (1 addition).
        s.dvec[0] = addRec(s.dvec[0], s.dvec[1]);
        break;
      case Opcode::Cosine: {
        // Accumulate both lanes (2 additions into the 2 extra stage-9
        // registers). The output reports the post-accumulation value;
        // reset clears the registers for the next job.
        Rec32 new_dot = addRec(acc.dot, s.cos_dot[0]);
        Rec32 new_norm = addRec(acc.norm, s.cos_sq[0]);
        s.dot_out = new_dot;
        s.norm_out = new_norm;
        s.angular_reset_out = s.reset_accumulator;
        acc.dot = s.reset_accumulator ? recZero() : new_dot;
        acc.norm = s.reset_accumulator ? recZero() : new_norm;
        break;
      }
      default:
        break;
    }
    return s;
}

Srfds
stage10(Srfds s, DistanceAccumulators &acc)
{
    switch (s.op) {
      case Opcode::RayBox: {
        // Sort the boxes by entry distance; misses (and NaN distances,
        // which imply miss) are keyed +inf and sort last. The default
        // 4-wide width uses the 5-comparator QuadSort network; other
        // widths use the generic Batcher network.
        std::array<SortRecord<uint8_t>, kMaxBoxesPerOp> recs;
        for (size_t b = 0; b < kMaxBoxesPerOp; ++b) {
            F32 key = (b < s.box_width && s.box_hit[b])
                          ? decode(s.box_near[b])
                          : kPosInf;
            if (isNaNF32(key))
                key = kPosInf;
            recs[b] = {key, static_cast<uint8_t>(b)};
        }
        sortNetwork(recs, s.box_width);
        for (size_t i = 0; i < kMaxBoxesPerOp; ++i) {
            s.box_order[i] = recs[i].payload;
            s.box_sorted_dist[i] = recode(recs[i].key);
        }
        break;
      }
      case Opcode::RayTriangle: {
        // Hit test (5 comparisons, depth 1). Backface culling requires a
        // strictly positive determinant; coplanar rays give det == 0 and
        // therefore miss. NaN in any operand fails its comparison.
        const Rec32 zero = recZero();
        bool u_ok = geRec(s.uvw[0], zero);
        bool v_ok = geRec(s.uvw[1], zero);
        bool w_ok = geRec(s.uvw[2], zero);
        bool det_ok = gtRec(s.det, zero);
        bool t_ok = geRec(s.t_num, zero);
        s.tri_hit = u_ok && v_ok && w_ok && det_ok && t_ok;
        break;
      }
      case Opcode::Euclidean: {
        // Accumulate the beat partial sum (1 addition into the stage-10
        // register).
        Rec32 new_acc = addRec(acc.euclid, s.dvec[0]);
        s.euclid_out = new_acc;
        s.euclid_reset_out = s.reset_accumulator;
        acc.euclid = s.reset_accumulator ? recZero() : new_acc;
        break;
      }
      default:
        break;
    }
    return s;
}

DatapathOutput
stage11(const Srfds &s)
{
    DatapathOutput out;
    out.op = s.op;
    out.tag = s.tag;

    switch (s.op) {
      case Opcode::RayBox:
        for (size_t b = 0; b < kMaxBoxesPerOp; ++b) {
            out.box.hit[b] = b < s.box_width && s.box_hit[b];
            out.box.order[b] = s.box_order[b];
            out.box.sorted_dist[b] = decode(s.box_sorted_dist[b]);
        }
        break;
      case Opcode::RayTriangle:
        out.tri.hit = s.tri_hit;
        out.tri.t_num = decode(s.t_num);
        out.tri.t_den = decode(s.det);
        for (int i = 0; i < 3; ++i)
            out.tri.uvw[i] = decode(s.uvw[i]);
        break;
      case Opcode::Euclidean:
        out.euclidean_accumulator = decode(s.euclid_out);
        out.euclidean_reset = s.euclid_reset_out;
        break;
      case Opcode::Cosine:
        out.angular_dot_product = decode(s.dot_out);
        out.angular_norm = decode(s.norm_out);
        out.angular_reset = s.angular_reset_out;
        break;
    }
    return out;
}

} // namespace stages

DatapathOutput
functionalEval(const DatapathInput &in, DistanceAccumulators &acc,
               unsigned box_width)
{
    using namespace stages;
    Srfds s = stage1(in, box_width);
    s = stage2(std::move(s));
    s = stage3(std::move(s));
    s = stage4(std::move(s));
    s = stage5(std::move(s));
    s = stage6(std::move(s));
    s = stage7(std::move(s));
    s = stage8(std::move(s));
    s = stage9(std::move(s), acc);
    s = stage10(std::move(s), acc);
    return stage11(s);
}

} // namespace rayflex::core
