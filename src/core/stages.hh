/**
 * @file
 * The combinational logic of the eleven RayFlex pipeline stages.
 *
 * Each stage is a pure function from its input bundle to its output
 * bundle, matching the mapping of BVH-operation steps to stages in
 * Fig. 4c (baseline ops) and Fig. 6c (extended ops):
 *
 *  stage 1  format conversion FP32 -> rec33
 *  stage 2  24 adders    box translate (24) / tri translate (9) /
 *                        euclidean difference (16)
 *  stage 3  24 mults     box t-planes (24) / tri shear products (9) /
 *                        euclidean squares (16) / cosine products (16)
 *  stage 4  40 cmps, 6(+2) adders
 *                        box slab min/max trees + hit (40) /
 *                        tri shear subtract (6) / distance reduce (8)
 *  stage 5  6 mults      tri barycentric products
 *  stage 6  3(+1) adders tri U,V,W / distance reduce (4)
 *  stage 7  3 mults      tri distance products
 *  stage 8  2 adders     tri det,T partials / distance reduce (2)
 *  stage 9  2 adders (+2 regs)
 *                        tri det,T / euclidean final reduce (1) /
 *                        cosine accumulate (2, stateful)
 *  stage 10 2 QuadSorts + 5 cmps (+1 adder, +1 reg)
 *                        box sort / tri hit test / euclidean accumulate
 *  stage 11 format conversion rec33 -> FP32
 *
 * Stages 9 and 10 of the extended pipeline hold the distance
 * accumulators; their state lives in DistanceAccumulators, owned by the
 * enclosing datapath and captured by the stage's skid-buffer logic
 * (the paper notes that programmer-supplied logic may be stateful).
 */
#ifndef RAYFLEX_CORE_STAGES_HH
#define RAYFLEX_CORE_STAGES_HH

#include "core/io_spec.hh"
#include "core/srfds.hh"

namespace rayflex::core
{

/** Accumulator registers of the extended pipeline (Section V-A).
 *  Euclidean and cosine jobs use separate registers, so multi-beat jobs
 *  of the two kinds may be freely interleaved. */
struct DistanceAccumulators
{
    Rec32 euclid = fp::recZero(); ///< stage-10 register
    Rec32 dot = fp::recZero();    ///< stage-9 register
    Rec32 norm = fp::recZero();   ///< stage-9 register
};

namespace stages
{

/** Stage 1: convert the external IO layout into the SRFDS (FP32 ->
 *  recoded). box_width is the instantiated BVH node width. */
Srfds stage1(const DatapathInput &in, unsigned box_width = kBoxesPerOp);

/** Stage 2: translation subtractions / Euclidean differences. */
Srfds stage2(Srfds s);

/** Stage 3: slab / shear / square / product multiplications. */
Srfds stage3(Srfds s);

/** Stage 4: slab compare trees and box hit; triangle shear subtracts;
 *  first distance reduction level. */
Srfds stage4(Srfds s);

/** Stage 5: barycentric cross products. */
Srfds stage5(Srfds s);

/** Stage 6: barycentric subtractions; distance reduction level 2. */
Srfds stage6(Srfds s);

/** Stage 7: hit-distance products. */
Srfds stage7(Srfds s);

/** Stage 8: determinant/distance partial sums; distance reduction
 *  level 3. */
Srfds stage8(Srfds s);

/** Stage 9: determinant/distance final sums; Euclidean final reduction;
 *  cosine accumulation (stateful). */
Srfds stage9(Srfds s, DistanceAccumulators &acc);

/** Stage 10: QuadSort; triangle hit test; Euclidean accumulation
 *  (stateful). */
Srfds stage10(Srfds s, DistanceAccumulators &acc);

/** Stage 11: convert the SRFDS into the external output layout
 *  (recoded -> FP32). */
DatapathOutput stage11(const Srfds &s);

} // namespace stages

/**
 * Single-shot functional evaluation of the whole datapath: applies the
 * eleven stages back to back without pipelining. Used by the golden
 * cross-checks, the BVH traversal engine and fast workload generation.
 * Accumulator state behaves exactly as in the pipelined model (beats are
 * observed in call order).
 */
DatapathOutput functionalEval(const DatapathInput &in,
                              DistanceAccumulators &acc,
                              unsigned box_width = kBoxesPerOp);

} // namespace rayflex::core

#endif // RAYFLEX_CORE_STAGES_HH
