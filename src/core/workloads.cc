/**
 * @file
 * Random workload generator implementation.
 */
#include "core/workloads.hh"

#include <algorithm>
#include <cmath>

namespace rayflex::core
{

using namespace rayflex::fp;

std::vector<BatchRange>
sliceBatches(size_t total, size_t batch_size)
{
    std::vector<BatchRange> out;
    if (total == 0)
        return out;
    if (batch_size == 0)
        batch_size = total;
    out.reserve((total + batch_size - 1) / batch_size);
    for (size_t begin = 0; begin < total; begin += batch_size)
        out.push_back({begin, std::min(begin + batch_size, total)});
    return out;
}

std::vector<std::vector<DatapathInput>>
sliceWorkload(const std::vector<DatapathInput> &beats, size_t batch_size)
{
    std::vector<std::vector<DatapathInput>> out;
    for (const BatchRange &r : sliceBatches(beats.size(), batch_size))
        out.emplace_back(beats.begin() + std::ptrdiff_t(r.begin),
                         beats.begin() + std::ptrdiff_t(r.end));
    return out;
}

float
WorkloadGen::uniform(float lo, float hi)
{
    std::uniform_real_distribution<float> d(lo, hi);
    return d(rng_);
}

Ray
WorkloadGen::ray(float s)
{
    float o[3], d[3];
    for (int i = 0; i < 3; ++i) {
        o[i] = uniform(-s, s);
        d[i] = uniform(-1.0f, 1.0f);
        // Occasionally force an exactly-zero component to exercise the
        // infinite inverse-direction paths.
        if ((rng_() & 7u) == 0)
            d[i] = 0.0f;
    }
    if (d[0] == 0.0f && d[1] == 0.0f && d[2] == 0.0f)
        d[0] = 1.0f;
    return makeRay(o[0], o[1], o[2], d[0], d[1], d[2], 0.0f, 4.0f * s);
}

Box
WorkloadGen::box(float s)
{
    float a[3], b[3];
    for (int i = 0; i < 3; ++i) {
        a[i] = uniform(-s, s);
        b[i] = uniform(-s, s);
        if (a[i] > b[i])
            std::swap(a[i], b[i]);
    }
    return makeBox(a[0], a[1], a[2], b[0], b[1], b[2]);
}

Triangle
WorkloadGen::triangle(float s)
{
    float v[3][3];
    for (auto &vert : v)
        for (float &c : vert)
            c = uniform(-s, s);
    return makeTriangle(v[0][0], v[0][1], v[0][2], v[1][0], v[1][1],
                        v[1][2], v[2][0], v[2][1], v[2][2]);
}

DatapathInput
WorkloadGen::rayBoxOp(uint64_t tag)
{
    DatapathInput in;
    in.op = Opcode::RayBox;
    in.tag = tag;
    for (size_t b = 0; b < kBoxesPerOp; ++b)
        in.boxes[b] = box();

    if (rng_() & 1u) {
        in.ray = ray();
    } else {
        // Aim at the centre of a random box so hits are common.
        const Box &target = in.boxes[rng_() % kBoxesPerOp];
        float o[3], d[3];
        for (int i = 0; i < 3; ++i) {
            o[i] = uniform(-30.0f, 30.0f);
            float centre = (fromBits(target.lo[i]) +
                            fromBits(target.hi[i])) * 0.5f;
            d[i] = centre - o[i];
        }
        if (d[0] == 0.0f && d[1] == 0.0f && d[2] == 0.0f)
            d[0] = 1.0f;
        in.ray = makeRay(o[0], o[1], o[2], d[0], d[1], d[2], 0.0f, 200.0f);
    }
    return in;
}

DatapathInput
WorkloadGen::rayTriangleOp(uint64_t tag)
{
    DatapathInput in;
    in.op = Opcode::RayTriangle;
    in.tag = tag;
    in.tri = triangle();

    if (rng_() & 1u) {
        in.ray = ray();
    } else {
        // Aim at a random interior point of the triangle.
        float u = uniform(0.05f, 0.9f);
        float v = uniform(0.05f, 0.9f - u);
        float w = 1.0f - u - v;
        float target[3], o[3], d[3];
        for (int i = 0; i < 3; ++i) {
            target[i] = u * fromBits(in.tri.v[0][i]) +
                        v * fromBits(in.tri.v[1][i]) +
                        w * fromBits(in.tri.v[2][i]);
            o[i] = uniform(-30.0f, 30.0f);
            d[i] = target[i] - o[i];
        }
        if (d[0] == 0.0f && d[1] == 0.0f && d[2] == 0.0f)
            d[0] = 1.0f;
        in.ray = makeRay(o[0], o[1], o[2], d[0], d[1], d[2], 0.0f, 200.0f);
    }
    return in;
}

DatapathInput
WorkloadGen::euclideanOp(bool reset, uint64_t tag)
{
    DatapathInput in;
    in.op = Opcode::Euclidean;
    in.tag = tag;
    in.reset_accumulator = reset;
    for (size_t i = 0; i < kEuclideanWidth; ++i) {
        in.vec_a[i] = toBits(uniform(-100.0f, 100.0f));
        in.vec_b[i] = toBits(uniform(-100.0f, 100.0f));
    }
    in.mask = (rng_() & 3u) == 0
                  ? static_cast<uint16_t>(rng_())
                  : 0xFFFFu;
    return in;
}

DatapathInput
WorkloadGen::cosineOp(bool reset, uint64_t tag)
{
    DatapathInput in = euclideanOp(reset, tag);
    in.op = Opcode::Cosine;
    return in;
}

DatapathInput
WorkloadGen::adversarialRayBoxOp(uint64_t tag)
{
    DatapathInput in;
    in.op = Opcode::RayBox;
    in.tag = tag;
    for (size_t b = 0; b < kBoxesPerOp; ++b)
        in.boxes[b] = box(4.0f);

    const Box &target = in.boxes[rng_() % kBoxesPerOp];
    float lo[3], hi[3];
    for (int i = 0; i < 3; ++i) {
        lo[i] = fromBits(target.lo[i]);
        hi[i] = fromBits(target.hi[i]);
    }

    float o[3], d[3];
    switch (rng_() % 4) {
      case 0: // origin exactly on a face, direction parallel to it
        o[0] = lo[0];
        o[1] = (lo[1] + hi[1]) * 0.5f;
        o[2] = (lo[2] + hi[2]) * 0.5f;
        d[0] = 0.0f;
        d[1] = uniform(-1.0f, 1.0f);
        d[2] = uniform(-1.0f, 1.0f);
        if (d[1] == 0.0f && d[2] == 0.0f)
            d[1] = 1.0f;
        break;
      case 1: // origin exactly on a corner
        for (int i = 0; i < 3; ++i) {
            o[i] = (rng_() & 1u) ? hi[i] : lo[i];
            d[i] = uniform(-1.0f, 1.0f);
        }
        break;
      case 2: // ray along an edge
        o[0] = lo[0];
        o[1] = lo[1];
        o[2] = lo[2] - 1.0f;
        d[0] = 0.0f;
        d[1] = 0.0f;
        d[2] = 1.0f;
        break;
      default: // axis-parallel ray through the interior
        for (int i = 0; i < 3; ++i) {
            o[i] = (lo[i] + hi[i]) * 0.5f;
            d[i] = 0.0f;
        }
        o[1] = lo[1] - 2.0f;
        d[1] = 1.0f;
        break;
    }
    in.ray = makeRay(o[0], o[1], o[2], d[0], d[1], d[2], 0.0f, 100.0f);
    return in;
}

DatapathInput
WorkloadGen::adversarialRayTriangleOp(uint64_t tag)
{
    DatapathInput in;
    in.op = Opcode::RayTriangle;
    in.tag = tag;
    in.tri = triangle(4.0f);

    float a[3], b[3], c[3];
    for (int i = 0; i < 3; ++i) {
        a[i] = fromBits(in.tri.v[0][i]);
        b[i] = fromBits(in.tri.v[1][i]);
        c[i] = fromBits(in.tri.v[2][i]);
    }

    float o[3], d[3];
    switch (rng_() % 4) {
      case 0: { // aim exactly at a vertex
        const float *v = (rng_() % 3 == 0) ? a : (rng_() & 1u) ? b : c;
        for (int i = 0; i < 3; ++i) {
            o[i] = uniform(-20.0f, 20.0f);
            d[i] = v[i] - o[i];
        }
        break;
      }
      case 1: { // aim at an edge midpoint
        for (int i = 0; i < 3; ++i) {
            float mid = (a[i] + b[i]) * 0.5f;
            o[i] = uniform(-20.0f, 20.0f);
            d[i] = mid - o[i];
        }
        break;
      }
      case 2: { // coplanar ray: direction inside the triangle plane
        for (int i = 0; i < 3; ++i) {
            o[i] = a[i];
            d[i] = b[i] - a[i];
        }
        break;
      }
      default: { // degenerate (zero-area) triangle
        for (int i = 0; i < 3; ++i)
            in.tri.v[2][i] = in.tri.v[0][i];
        for (int i = 0; i < 3; ++i) {
            o[i] = uniform(-20.0f, 20.0f);
            d[i] = a[i] - o[i];
        }
        break;
      }
    }
    if (d[0] == 0.0f && d[1] == 0.0f && d[2] == 0.0f)
        d[0] = 1.0f;
    in.ray = makeRay(o[0], o[1], o[2], d[0], d[1], d[2], 0.0f, 100.0f);
    return in;
}

std::vector<DatapathInput>
WorkloadGen::batch(Opcode op, size_t n)
{
    std::vector<DatapathInput> v;
    v.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        switch (op) {
          case Opcode::RayBox:
            v.push_back(rayBoxOp(i));
            break;
          case Opcode::RayTriangle:
            v.push_back(rayTriangleOp(i));
            break;
          case Opcode::Euclidean:
            v.push_back(euclideanOp(true, i));
            break;
          case Opcode::Cosine:
            v.push_back(cosineOp(true, i));
            break;
        }
    }
    return v;
}

} // namespace rayflex::core
