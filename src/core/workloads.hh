/**
 * @file
 * Random workload generation for verification and power stimulus.
 *
 * The paper verifies RayFlex with "hundreds of thousands of random test
 * cases" and measures power from testbenches of 100 random cases per
 * operating mode (Section VI). This module generates those stimuli:
 * random rays, boxes, triangles and distance vectors with controllable
 * geometry so that both hits and misses are well represented, plus
 * adversarial generators that target boundary conditions (coplanar rays,
 * shared corners, degenerate triangles, zero direction components).
 */
#ifndef RAYFLEX_CORE_WORKLOADS_HH
#define RAYFLEX_CORE_WORKLOADS_HH

#include <cstdint>
#include <random>
#include <vector>

#include "core/io_spec.hh"

namespace rayflex::core
{

/** A contiguous [begin, end) slice of a workload. */
struct BatchRange
{
    size_t begin = 0;
    size_t end = 0;

    size_t size() const { return end - begin; }

    friend bool operator==(const BatchRange &,
                           const BatchRange &) = default;
};

/**
 * Shard `total` items into contiguous batches of at most `batch_size`
 * items (the last batch may be short). The decomposition depends only
 * on (total, batch_size) - never on who executes the batches - which is
 * what makes sharded simulation results reproducible across worker
 * counts. A zero batch_size yields one batch spanning everything; a
 * zero total yields no batches.
 */
std::vector<BatchRange> sliceBatches(size_t total, size_t batch_size);

/** Slice a generated beat workload into per-batch vectors (power and
 *  throughput stimuli are replayed batch-at-a-time). */
std::vector<std::vector<DatapathInput>>
sliceWorkload(const std::vector<DatapathInput> &beats, size_t batch_size);

/** Deterministic workload generator. */
class WorkloadGen
{
  public:
    explicit WorkloadGen(uint64_t seed = 1) : rng_(seed) {}

    /** Uniform float in [lo, hi). */
    float uniform(float lo, float hi);

    /** A random ray with origin in [-s,s]^3 and a nonzero direction.
     *  About one direction component in eight is forced to exactly zero
     *  to exercise the infinite-inverse paths. */
    Ray ray(float s = 10.0f);

    /** A random box with corners in [-s,s]^3 (lo <= hi per dimension). */
    Box box(float s = 10.0f);

    /** A random triangle with vertices in [-s,s]^3. */
    Triangle triangle(float s = 10.0f);

    /** A ray-box input beat with four random boxes; roughly half the
     *  rays are aimed at one of the boxes so hits are frequent. */
    DatapathInput rayBoxOp(uint64_t tag = 0);

    /** A ray-triangle input beat; roughly half the rays are aimed at a
     *  point inside the triangle. */
    DatapathInput rayTriangleOp(uint64_t tag = 0);

    /** A Euclidean-distance beat with random vectors and, occasionally,
     *  a random mask. */
    DatapathInput euclideanOp(bool reset = true, uint64_t tag = 0);

    /** A cosine-distance beat. */
    DatapathInput cosineOp(bool reset = true, uint64_t tag = 0);

    /** Adversarial ray-box beat: the ray origin is placed exactly on a
     *  box face, corner or edge, and/or direction components are zeroed,
     *  hitting the NaN corner cases of Section IV-A. */
    DatapathInput adversarialRayBoxOp(uint64_t tag = 0);

    /** Adversarial ray-triangle beat: coplanar rays, edge/vertex hits,
     *  degenerate (zero-area) triangles. */
    DatapathInput adversarialRayTriangleOp(uint64_t tag = 0);

    /** A batch of beats for one operating mode (power stimulus). */
    std::vector<DatapathInput> batch(Opcode op, size_t n);

    /** The underlying engine, for tests that need raw randomness. */
    std::mt19937_64 &engine() { return rng_; }

  private:
    std::mt19937_64 rng_;
};

} // namespace rayflex::core

#endif // RAYFLEX_CORE_WORKLOADS_HH
