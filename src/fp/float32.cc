/**
 * @file
 * Softfloat implementation of binary32 add/sub/mul/div and comparison.
 *
 * The algorithms follow the classic Berkeley SoftFloat structure: decode,
 * operate on widened significands with guard bits, then round-and-pack
 * with round-to-nearest-even. Subnormal inputs and outputs are handled
 * with full gradual underflow.
 */
#include "fp/float32.hh"

#include <bit>

namespace rayflex::fp
{

namespace
{

/** Propagate a NaN operand, quieting it; prefers the first NaN operand. */
F32
propagateNaN(F32 a, F32 b)
{
    if (isNaNF32(a))
        return quietNaNF32(a);
    if (isNaNF32(b))
        return quietNaNF32(b);
    return kDefaultNaN;
}

/**
 * Decode a finite nonzero operand into an effective exponent and a 24-bit
 * significand. Subnormals use effective exponent 1 with no hidden bit, so
 * value == sig * 2^(exp - 150) uniformly.
 */
struct Unpacked
{
    int32_t exp;
    uint32_t sig; // <= 0xFFFFFF
};

Unpacked
unpackFinite(F32 v)
{
    uint32_t e = expF32(v);
    uint32_t f = fracF32(v);
    if (e == 0)
        return {1, f};
    return {static_cast<int32_t>(e), f | 0x800000u};
}

} // namespace

F32
roundPackF32(bool sign, int32_t exp, uint32_t sig)
{
    constexpr uint32_t round_increment = 0x40; // RNE
    uint32_t round_bits = sig & 0x7F;

    if (exp >= 0xFD) {
        if (exp > 0xFD ||
            (exp == 0xFD && sig + round_increment >= 0x80000000u)) {
            // Overflow: RNE rounds to infinity.
            return packF32(sign, 0xFF, 0);
        }
    } else if (exp < 0) {
        // Gradual underflow: denormalize with a sticky shift, then round
        // at the subnormal precision.
        sig = shiftRightJam32(sig, static_cast<uint32_t>(-exp));
        exp = 0;
        round_bits = sig & 0x7F;
    }

    sig = (sig + round_increment) >> 7;
    if (round_bits == 0x40)
        sig &= ~1u; // ties to even
    if (sig == 0)
        exp = 0;
    // Packing adds exp<<23 to a significand whose hidden bit sits at bit
    // 23, so a carry out of rounding bumps the exponent automatically.
    return (static_cast<uint32_t>(sign) << 31) +
           (static_cast<uint32_t>(exp) << 23) + sig;
}

namespace
{

/**
 * Add magnitudes of two finite values with equal signs.
 * Significands are scaled by 2^6 so that roundPackF32 sees its seven
 * rounding bits after a possible 1-bit normalization.
 */
F32
addMags(bool sign, Unpacked a, Unpacked b)
{
    // Guard-extended significands: hidden bit (if any) lands at bit 29.
    uint64_t sig_a = static_cast<uint64_t>(a.sig) << 6;
    uint64_t sig_b = static_cast<uint64_t>(b.sig) << 6;
    int32_t exp;
    if (a.exp >= b.exp) {
        exp = a.exp;
        sig_b = shiftRightJam64(sig_b,
                                static_cast<uint32_t>(a.exp - b.exp));
    } else {
        exp = b.exp;
        sig_a = shiftRightJam64(sig_a,
                                static_cast<uint32_t>(b.exp - a.exp));
    }
    uint64_t sig = sig_a + sig_b; // at most bit 30
    if (sig == 0)
        return packF32(sign, 0, 0);
    // Normalize the leading 1 to bit 30.
    int lead = 63 - std::countl_zero(sig);
    if (lead > 30) {
        uint32_t low = static_cast<uint32_t>(sig) &
                       ((1u << (lead - 30)) - 1u);
        sig = (sig >> (lead - 30)) | (low != 0 ? 1u : 0u);
        exp += lead - 30;
    } else if (lead < 30) {
        sig <<= (30 - lead);
        exp -= (30 - lead);
    }
    return roundPackF32(sign, exp, static_cast<uint32_t>(sig));
}

/**
 * Subtract magnitudes (|a| - |b| conceptually); result_sign applies when
 * |a| > |b| and flips when |b| > |a|. Exact zero returns +0 (RNE rule).
 */
F32
subMags(bool sign_a, Unpacked a, Unpacked b)
{
    // Extra 3 guard bits beyond addMags so that a jammed sticky bit sits
    // strictly below every rounding decision even after a 1-bit
    // post-cancellation normalization.
    uint64_t sig_a = static_cast<uint64_t>(a.sig) << 9;
    uint64_t sig_b = static_cast<uint64_t>(b.sig) << 9;
    int32_t exp;
    bool sign;
    uint64_t big, small;
    if (a.exp > b.exp || (a.exp == b.exp && sig_a >= sig_b)) {
        exp = a.exp;
        sign = sign_a;
        big = sig_a;
        small = shiftRightJam64(sig_b, static_cast<uint32_t>(a.exp - b.exp));
    } else {
        exp = b.exp;
        sign = !sign_a;
        big = sig_b;
        small = shiftRightJam64(sig_a, static_cast<uint32_t>(b.exp - a.exp));
    }
    uint64_t sig = big - small;
    if (sig == 0)
        return kPosZero; // exact cancellation: +0 under RNE
    int lead = 63 - std::countl_zero(sig);
    // Scale so the leading 1 reaches bit 33 (= 30 + 3 extra guards), then
    // drop the 3 extra guard bits with a sticky shift.
    if (lead > 33) {
        uint32_t shift = static_cast<uint32_t>(lead - 33);
        uint64_t low = sig & ((uint64_t(1) << shift) - 1u);
        sig = (sig >> shift) | (low != 0 ? 1u : 0u);
        exp += lead - 33;
    } else if (lead < 33) {
        sig <<= (33 - lead);
        exp -= (33 - lead);
    }
    uint32_t low3 = static_cast<uint32_t>(sig) & 0x7u;
    uint32_t sig30 = static_cast<uint32_t>(sig >> 3) | (low3 != 0 ? 1u : 0u);
    return roundPackF32(sign, exp, sig30);
}

} // namespace

F32
addF32(F32 a, F32 b)
{
    bool sign_a = signF32(a);
    bool sign_b = signF32(b);

    if (expF32(a) == 0xFF) {
        if (fracF32(a) != 0 || isNaNF32(b))
            return propagateNaN(a, b);
        if (isInfF32(b) && sign_a != sign_b)
            return kDefaultNaN; // inf - inf
        return a;
    }
    if (expF32(b) == 0xFF) {
        if (fracF32(b) != 0)
            return propagateNaN(a, b);
        return b;
    }
    if (isZeroF32(a) && isZeroF32(b)) {
        // (+0)+(+0)=+0, (-0)+(-0)=-0, mixed = +0 under RNE.
        return (sign_a && sign_b) ? kNegZero : kPosZero;
    }
    if (isZeroF32(a))
        return b;
    if (isZeroF32(b))
        return a;

    Unpacked ua = unpackFinite(a);
    Unpacked ub = unpackFinite(b);
    if (sign_a == sign_b)
        return addMags(sign_a, ua, ub);
    return subMags(sign_a, ua, ub);
}

F32
subF32(F32 a, F32 b)
{
    if (isNaNF32(b))
        return propagateNaN(a, b);
    return addF32(a, b ^ 0x80000000u);
}

F32
mulF32(F32 a, F32 b)
{
    bool sign = signF32(a) != signF32(b);

    if (expF32(a) == 0xFF) {
        if (fracF32(a) != 0 || isNaNF32(b))
            return propagateNaN(a, b);
        if (isZeroF32(b))
            return kDefaultNaN; // inf * 0
        return packF32(sign, 0xFF, 0);
    }
    if (expF32(b) == 0xFF) {
        if (fracF32(b) != 0)
            return propagateNaN(a, b);
        if (isZeroF32(a))
            return kDefaultNaN; // 0 * inf
        return packF32(sign, 0xFF, 0);
    }
    if (isZeroF32(a) || isZeroF32(b))
        return packF32(sign, 0, 0);

    Unpacked ua = unpackFinite(a);
    Unpacked ub = unpackFinite(b);
    // Normalize subnormal significands so the leading 1 is at bit 23.
    while (ua.sig < 0x800000u) {
        ua.sig <<= 1;
        ua.exp -= 1;
    }
    while (ub.sig < 0x800000u) {
        ub.sig <<= 1;
        ub.exp -= 1;
    }

    // Product of two 24-bit significands: leading 1 at bit 46 or 47.
    uint64_t prod = static_cast<uint64_t>(ua.sig) * ub.sig;
    int32_t exp = ua.exp + ub.exp - 127;
    // Bring the leading 1 to bit 30 with a sticky shift (from 47), or to
    // bit 29 then renormalize (from 46).
    uint32_t low = static_cast<uint32_t>(prod) & 0x1FFFFu;
    uint32_t sig = static_cast<uint32_t>(prod >> 17) | (low != 0 ? 1u : 0u);
    if ((sig & 0x40000000u) == 0) {
        sig <<= 1;
        exp -= 1;
    }
    return roundPackF32(sign, exp, sig);
}

F32
divF32(F32 a, F32 b)
{
    bool sign = signF32(a) != signF32(b);

    if (expF32(a) == 0xFF) {
        if (fracF32(a) != 0 || isNaNF32(b))
            return propagateNaN(a, b);
        if (isInfF32(b))
            return kDefaultNaN; // inf / inf
        return packF32(sign, 0xFF, 0);
    }
    if (expF32(b) == 0xFF) {
        if (fracF32(b) != 0)
            return propagateNaN(a, b);
        return packF32(sign, 0, 0); // finite / inf
    }
    if (isZeroF32(b)) {
        if (isZeroF32(a))
            return kDefaultNaN; // 0 / 0
        return packF32(sign, 0xFF, 0); // x / 0 = inf
    }
    if (isZeroF32(a))
        return packF32(sign, 0, 0);

    Unpacked ua = unpackFinite(a);
    Unpacked ub = unpackFinite(b);
    while (ua.sig < 0x800000u) {
        ua.sig <<= 1;
        ua.exp -= 1;
    }
    while (ub.sig < 0x800000u) {
        ub.sig <<= 1;
        ub.exp -= 1;
    }

    int32_t exp = ua.exp - ub.exp + 125;
    // 24-bit / 24-bit -> quotient with leading 1 at bit 30 or 31 when the
    // dividend significand is pre-scaled by 2^31.
    uint64_t dividend = static_cast<uint64_t>(ua.sig) << 31;
    uint64_t divisor = ub.sig;
    uint32_t quot = static_cast<uint32_t>(dividend / divisor);
    uint64_t rem = dividend % divisor;
    if (quot & 0x80000000u) {
        // Leading 1 at bit 31: fold the dropped bit into sticky.
        quot = (quot >> 1) | (quot & 1u) | (rem != 0 ? 1u : 0u);
        exp += 1;
    } else if (rem != 0) {
        quot |= 1u;
    }
    return roundPackF32(sign, exp, quot);
}

Cmp
compareF32(F32 a, F32 b)
{
    if (isNaNF32(a) || isNaNF32(b))
        return Cmp::UN;
    if (isZeroF32(a) && isZeroF32(b))
        return Cmp::EQ;
    bool sign_a = signF32(a);
    bool sign_b = signF32(b);
    if (sign_a != sign_b)
        return sign_a ? Cmp::LT : Cmp::GT;
    if (a == b)
        return Cmp::EQ;
    // Same sign: magnitude order on the bit pattern, inverted for
    // negatives.
    bool mag_lt = (a & 0x7FFFFFFFu) < (b & 0x7FFFFFFFu);
    return (mag_lt != sign_a) ? Cmp::LT : Cmp::GT;
}

F32
maxPropF32(F32 a, F32 b)
{
    Cmp c = compareF32(a, b);
    if (c == Cmp::UN)
        return kDefaultNaN;
    return c == Cmp::LT ? b : a;
}

F32
minPropF32(F32 a, F32 b)
{
    Cmp c = compareF32(a, b);
    if (c == Cmp::UN)
        return kDefaultNaN;
    return c == Cmp::GT ? b : a;
}

F32
max4PropF32(F32 a, F32 b, F32 c, F32 d)
{
    return maxPropF32(maxPropF32(a, b), maxPropF32(c, d));
}

F32
min4PropF32(F32 a, F32 b, F32 c, F32 d)
{
    return minPropF32(minPropF32(a, b), minPropF32(c, d));
}

} // namespace rayflex::fp
