/**
 * @file
 * IEEE-754 binary32 bit-level utilities.
 *
 * RayFlex sources its floating-point functional units from the Berkeley
 * Hardfloat library. This module is the C++ substitute: a softfloat
 * implementation of binary32 addition, subtraction and multiplication with
 * round-to-nearest-even performed after every operation (the paper rounds
 * after every add/mul, Section III-F), plus hardware-style comparators
 * whose <, <=, ==, >=, > predicates are all false when either input is NaN
 * (Section IV-A).
 *
 * All operations are bit-exact with host IEEE binary32 arithmetic compiled
 * without FP contraction, which is what the golden-model tests rely on.
 */
#ifndef RAYFLEX_FP_FLOAT32_HH
#define RAYFLEX_FP_FLOAT32_HH

#include <cstdint>
#include <cstring>

namespace rayflex::fp
{

/** Raw IEEE-754 binary32 value carried as its bit pattern. */
using F32 = uint32_t;

/** Quiet NaN produced by invalid operations (matches x86 default NaN). */
inline constexpr F32 kDefaultNaN = 0x7FC00000u;
/** Positive infinity. */
inline constexpr F32 kPosInf = 0x7F800000u;
/** Negative infinity. */
inline constexpr F32 kNegInf = 0xFF800000u;
/** Positive zero. */
inline constexpr F32 kPosZero = 0x00000000u;
/** Negative zero. */
inline constexpr F32 kNegZero = 0x80000000u;
/** Largest finite float. */
inline constexpr F32 kMaxFinite = 0x7F7FFFFFu;
/** Smallest positive normal (2^-126). */
inline constexpr F32 kMinNormal = 0x00800000u;
/** Smallest positive subnormal (2^-149). */
inline constexpr F32 kMinSubnormal = 0x00000001u;

/** Extract the sign bit. */
inline constexpr bool signF32(F32 v) { return (v >> 31) != 0; }
/** Extract the 8-bit biased exponent field. */
inline constexpr uint32_t expF32(F32 v) { return (v >> 23) & 0xFFu; }
/** Extract the 23-bit fraction field. */
inline constexpr uint32_t fracF32(F32 v) { return v & 0x7FFFFFu; }

/** Assemble a binary32 from sign/exponent/fraction fields. */
inline constexpr F32
packF32(bool sign, uint32_t exp, uint32_t frac)
{
    return (static_cast<uint32_t>(sign) << 31) | (exp << 23) | frac;
}

/** True for signaling or quiet NaN. */
inline constexpr bool isNaNF32(F32 v)
{
    return expF32(v) == 0xFFu && fracF32(v) != 0;
}

/** True for +/- infinity. */
inline constexpr bool isInfF32(F32 v)
{
    return expF32(v) == 0xFFu && fracF32(v) == 0;
}

/** True for +/- zero. */
inline constexpr bool isZeroF32(F32 v) { return (v << 1) == 0; }

/** True for nonzero values with a zero exponent field. */
inline constexpr bool isSubnormalF32(F32 v)
{
    return expF32(v) == 0 && fracF32(v) != 0;
}

/** True for normal, subnormal or zero values (not inf/NaN). */
inline constexpr bool isFiniteF32(F32 v) { return expF32(v) != 0xFFu; }

/** Quiet a NaN by setting the MSB of its fraction, preserving payload. */
inline constexpr F32 quietNaNF32(F32 v) { return v | 0x00400000u; }

/** Reinterpret a host float as its bit pattern. */
inline F32
toBits(float f)
{
    F32 u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

/** Reinterpret a bit pattern as a host float. */
inline float
fromBits(F32 u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

/**
 * Right shift that ORs every shifted-out bit into the result LSB
 * ("jamming"), preserving stickiness for correct rounding.
 */
inline constexpr uint32_t
shiftRightJam32(uint32_t v, uint32_t dist)
{
    if (dist >= 31)
        return v != 0 ? 1u : 0u;
    return (v >> dist) | ((v & ((1u << dist) - 1u)) != 0 ? 1u : 0u);
}

/** 64-bit variant of shiftRightJam32. */
inline constexpr uint64_t
shiftRightJam64(uint64_t v, uint32_t dist)
{
    if (dist >= 63)
        return v != 0 ? 1u : 0u;
    return (v >> dist) | ((v & ((uint64_t(1) << dist) - 1u)) != 0 ? 1u : 0u);
}

/**
 * Round and pack a normalized result into binary32 (round-to-nearest-even).
 *
 * @param sign Result sign.
 * @param exp  Exponent such that the value equals sig * 2^(exp - 156);
 *             i.e. a normal result stores exponent field exp + 1 once the
 *             hidden bit carries in during packing.
 * @param sig  Significand with its leading 1 at bit 30 and seven rounding
 *             bits at the bottom. A sig below 2^30 is only legal on the
 *             subnormal path (exp < 0 after denormalization).
 * @return Rounded binary32, handling overflow to infinity and gradual
 *         underflow to subnormals/zero.
 */
F32 roundPackF32(bool sign, int32_t exp, uint32_t sig);

/** IEEE binary32 addition, round-to-nearest-even. */
F32 addF32(F32 a, F32 b);

/** IEEE binary32 subtraction, round-to-nearest-even. */
F32 subF32(F32 a, F32 b);

/** IEEE binary32 multiplication, round-to-nearest-even. */
F32 mulF32(F32 a, F32 b);

/** IEEE binary32 division, round-to-nearest-even (used only at ray
 *  creation on the GPU-core side; RayFlex itself contains no dividers). */
F32 divF32(F32 a, F32 b);

/** Four-way comparison outcome of a hardware FP comparator. */
enum class Cmp : uint8_t {
    LT, ///< a < b
    EQ, ///< a == b (+0 equals -0)
    GT, ///< a > b
    UN, ///< unordered: at least one operand is NaN
};

/**
 * Hardware FP comparator. Produces LT/EQ/GT/UN; every ordered predicate
 * derived from it is false when the result is UN, matching the NaN
 * semantics the paper relies on for coplanar-ray misses.
 */
Cmp compareF32(F32 a, F32 b);

/** a < b, false if unordered. */
inline bool ltF32(F32 a, F32 b) { return compareF32(a, b) == Cmp::LT; }
/** a <= b, false if unordered. */
inline bool
leF32(F32 a, F32 b)
{
    Cmp c = compareF32(a, b);
    return c == Cmp::LT || c == Cmp::EQ;
}
/** a == b, false if unordered. */
inline bool eqF32(F32 a, F32 b) { return compareF32(a, b) == Cmp::EQ; }
/** a > b, false if unordered. */
inline bool gtF32(F32 a, F32 b) { return compareF32(a, b) == Cmp::GT; }
/** a >= b, false if unordered. */
inline bool
geF32(F32 a, F32 b)
{
    Cmp c = compareF32(a, b);
    return c == Cmp::GT || c == Cmp::EQ;
}
/** True when either operand is NaN. */
inline bool unorderedF32(F32 a, F32 b)
{
    return compareF32(a, b) == Cmp::UN;
}

/**
 * Two-input max as a comparator + mux, with explicit NaN propagation: the
 * Hardfloat comparator exposes an "unordered" signal, so the select logic
 * forwards the canonical NaN whenever either input is NaN. This is what
 * guarantees that a NaN slab distance poisons the reduction tree and the
 * final hit comparison returns miss.
 */
F32 maxPropF32(F32 a, F32 b);

/** NaN-propagating two-input min; see maxPropF32. */
F32 minPropF32(F32 a, F32 b);

/** NaN-propagating max over four values (balanced depth-2 tree). */
F32 max4PropF32(F32 a, F32 b, F32 c, F32 d);

/** NaN-propagating min over four values (balanced depth-2 tree). */
F32 min4PropF32(F32 a, F32 b, F32 c, F32 d);

} // namespace rayflex::fp

#endif // RAYFLEX_FP_FLOAT32_HH
