/**
 * @file
 * FP32 <-> 33-bit recoded format converters (pipeline stages 1 and 11).
 */
#include "fp/recoded.hh"

#include <bit>

namespace rayflex::fp
{

Rec32
recode(F32 v)
{
    bool sign = signF32(v);
    uint32_t e = expF32(v);
    uint32_t f = fracF32(v);

    if (e == 0xFF) {
        if (f != 0)
            return packRec(sign, kRecExpNaN, f); // keep NaN payload
        return packRec(sign, kRecExpInf, 0);
    }
    if (e == 0 && f == 0)
        return packRec(sign, kRecExpZero, 0);

    int32_t true_exp;
    uint32_t frac;
    if (e != 0) {
        true_exp = static_cast<int32_t>(e) - 127;
        frac = f;
    } else {
        // Subnormal: normalize. The leading 1 moves to the hidden
        // position; the true exponent absorbs the shift.
        int lead = 31 - std::countl_zero(f); // 0..22
        int shift = 23 - lead;
        true_exp = -126 - shift;
        frac = (f << shift) & 0x7FFFFFu;
    }
    return packRec(sign, static_cast<uint32_t>(true_exp + kRecExpBias),
                   frac);
}

F32
decode(Rec32 v)
{
    bool sign = signRec(v);
    uint32_t e = expRec(v);
    uint32_t f = fracRec(v);

    if (e == kRecExpNaN)
        return packF32(sign, 0xFF, f != 0 ? f : 0x400000u);
    if (e == kRecExpInf)
        return packF32(sign, 0xFF, 0);
    if (e == kRecExpZero)
        return packF32(sign, 0, 0);

    int32_t true_exp = static_cast<int32_t>(e) - kRecExpBias;
    if (true_exp >= -126) {
        return packF32(sign, static_cast<uint32_t>(true_exp + 127), f);
    }
    // Subnormal range: shift the hidden 1 back into the fraction. The
    // recoding is lossless, so the shift drops only zero bits.
    int shift = -126 - true_exp; // 1..23
    uint32_t sig = (0x800000u | f) >> shift;
    return packF32(sign, 0, sig);
}

} // namespace rayflex::fp
