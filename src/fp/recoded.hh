/**
 * @file
 * The 33-bit recoded floating-point format used inside the RayFlex
 * pipeline (Section III-F of the paper).
 *
 * RayFlex's IO takes standard FP32 but internally represents values in a
 * recoded format with one extra exponent bit, in the style of Berkeley
 * Hardfloat. Recoding removes the subnormal special case from the
 * arithmetic units: every finite nonzero value carries an always-
 * normalized 23-bit fraction and a 9-bit exponent wide enough to express
 * normalized subnormals. Stage 1 of the pipeline converts FP32 -> rec33
 * and stage 11 converts back.
 *
 * Layout (33 bits): sign[32] | exp[31:23] (9 bits) | frac[22:0].
 *
 * Exponent codes:
 *   0x000         zero
 *   0x06B..0x17F  finite nonzero: code = trueExp + 0x100, where trueExp is
 *                 the unbiased exponent of the normalized value
 *                 (range -149 .. +127)
 *   0x180         infinity
 *   0x1C0         NaN (fraction keeps the payload)
 *
 * Because the fraction is always normalized and the exponent code is
 * monotonic in value, finite comparison reduces to an integer compare of
 * the (exp,frac) pair - the circuit simplification recoding exists for.
 */
#ifndef RAYFLEX_FP_RECODED_HH
#define RAYFLEX_FP_RECODED_HH

#include <cstdint>

#include "fp/float32.hh"

namespace rayflex::fp
{

/** A value in the 33-bit recoded format. Bits above 32 are always zero. */
struct Rec32
{
    uint64_t bits = 0;

    friend bool operator==(const Rec32 &a, const Rec32 &b) = default;
};

/** Number of live bits in a recoded value; used by the synthesis model. */
inline constexpr unsigned kRec32Width = 33;

/** Exponent code for zero. */
inline constexpr uint32_t kRecExpZero = 0x000;
/** Exponent code for infinity. */
inline constexpr uint32_t kRecExpInf = 0x180;
/** Exponent code for NaN. */
inline constexpr uint32_t kRecExpNaN = 0x1C0;
/** Bias added to the true exponent of finite nonzero values. */
inline constexpr int32_t kRecExpBias = 0x100;

/** Extract the sign bit of a recoded value. */
inline constexpr bool signRec(Rec32 v) { return ((v.bits >> 32) & 1) != 0; }
/** Extract the 9-bit exponent code. */
inline constexpr uint32_t expRec(Rec32 v)
{
    return static_cast<uint32_t>((v.bits >> 23) & 0x1FFu);
}
/** Extract the 23-bit fraction. */
inline constexpr uint32_t fracRec(Rec32 v)
{
    return static_cast<uint32_t>(v.bits & 0x7FFFFFu);
}

/** Assemble a recoded value from fields. */
inline constexpr Rec32
packRec(bool sign, uint32_t exp, uint32_t frac)
{
    return Rec32{(static_cast<uint64_t>(sign) << 32) |
                 (static_cast<uint64_t>(exp & 0x1FFu) << 23) |
                 (frac & 0x7FFFFFu)};
}

/** True when the recoded value is NaN. */
inline constexpr bool isNaNRec(Rec32 v) { return expRec(v) == kRecExpNaN; }
/** True when the recoded value is +/- infinity. */
inline constexpr bool isInfRec(Rec32 v) { return expRec(v) == kRecExpInf; }
/** True when the recoded value is +/- zero. */
inline constexpr bool isZeroRec(Rec32 v) { return expRec(v) == kRecExpZero; }

/**
 * Recode a standard binary32 into the internal 33-bit format
 * (the stage-1 format converter).
 */
Rec32 recode(F32 v);

/**
 * Convert a recoded value back to standard binary32
 * (the stage-11 format converter). Exact inverse of recode().
 */
F32 decode(Rec32 v);

/** Recoded addition: rounds to binary32 precision after the operation. */
inline Rec32 addRec(Rec32 a, Rec32 b)
{
    return recode(addF32(decode(a), decode(b)));
}

/** Recoded subtraction with per-operation rounding. */
inline Rec32 subRec(Rec32 a, Rec32 b)
{
    return recode(subF32(decode(a), decode(b)));
}

/** Recoded multiplication with per-operation rounding. */
inline Rec32 mulRec(Rec32 a, Rec32 b)
{
    return recode(mulF32(decode(a), decode(b)));
}

/** Recoded comparison with hardware NaN semantics. */
inline Cmp compareRec(Rec32 a, Rec32 b)
{
    return compareF32(decode(a), decode(b));
}

/** a < b on recoded values, false if unordered. */
inline bool ltRec(Rec32 a, Rec32 b) { return compareRec(a, b) == Cmp::LT; }
/** a <= b on recoded values, false if unordered. */
inline bool
leRec(Rec32 a, Rec32 b)
{
    Cmp c = compareRec(a, b);
    return c == Cmp::LT || c == Cmp::EQ;
}
/** a > b on recoded values, false if unordered. */
inline bool gtRec(Rec32 a, Rec32 b) { return compareRec(a, b) == Cmp::GT; }
/** a >= b on recoded values, false if unordered. */
inline bool
geRec(Rec32 a, Rec32 b)
{
    Cmp c = compareRec(a, b);
    return c == Cmp::GT || c == Cmp::EQ;
}

/** NaN-propagating two-input max on recoded values. */
inline Rec32 maxPropRec(Rec32 a, Rec32 b)
{
    return recode(maxPropF32(decode(a), decode(b)));
}

/** NaN-propagating two-input min on recoded values. */
inline Rec32 minPropRec(Rec32 a, Rec32 b)
{
    return recode(minPropF32(decode(a), decode(b)));
}

/** Recoded positive zero. */
inline Rec32 recZero() { return packRec(false, kRecExpZero, 0); }
/** Recoded positive infinity. */
inline Rec32 recPosInf() { return packRec(false, kRecExpInf, 0); }
/** Recoded canonical NaN. */
inline Rec32 recNaN() { return packRec(false, kRecExpNaN, 0x400000u); }

} // namespace rayflex::fp

#endif // RAYFLEX_FP_RECODED_HH
