/**
 * @file
 * Log-bucketed mergeable latency histogram.
 *
 * The streaming service needs per-job p50/p99/p999 over ray and job
 * latencies, aggregated across batches and workers without keeping
 * every sample. This is the standard log-linear (HDR-style) layout:
 * values below 2^kSubBits are recorded EXACTLY (one bucket per value);
 * above that, each power-of-two range splits into 2^kSubBits
 * sub-buckets, bounding the relative quantile error at 2^-kSubBits
 * (< 1.6% with the default 6 sub-bits). A bucket reports its lower
 * bound, so a histogram quantile never exceeds the exact nearest-rank
 * quantile — the one documented rounding rule for every percentile the
 * streaming report derives from this type (sim/stream.hh).
 *
 * Merging is an elementwise sum (resize-to-longer, like the L2 bank
 * vectors), so histograms obey the same commutative-associative merge
 * contract as every stats struct and aggregate across sharded batches
 * in any order. tests/test_obs.cc pins merge commutativity and the
 * quantile error bound against an exact sort.
 */
#ifndef RAYFLEX_OBS_HISTOGRAM_HH
#define RAYFLEX_OBS_HISTOGRAM_HH

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

namespace rayflex::obs
{

/** Weighted log-linear histogram over uint64 values. */
class Histogram
{
  public:
    /** Sub-bucket resolution: 2^kSubBits sub-buckets per octave.
     *  Values below 2^kSubBits are exact. */
    static constexpr unsigned kSubBits = 6;

    /** Record `value` with multiplicity `weight`. */
    void
    add(uint64_t value, uint64_t weight = 1)
    {
        if (weight == 0)
            return;
        const size_t idx = bucketIndex(value);
        if (counts_.size() <= idx)
            counts_.resize(idx + 1, 0);
        counts_[idx] += weight;
        total_ += weight;
    }

    /** Total recorded weight. */
    uint64_t count() const { return total_; }

    /** Elementwise-sum merge (commutative, associative). */
    Histogram &
    merge(const Histogram &o)
    {
        if (counts_.size() < o.counts_.size())
            counts_.resize(o.counts_.size(), 0);
        for (size_t i = 0; i < o.counts_.size(); ++i)
            counts_[i] += o.counts_[i];
        total_ += o.total_;
        return *this;
    }

    /** Nearest-rank quantile, q in [0, 1]: the lower bound of the
     *  bucket holding the rank-ceil(q * count) sample (rank clamped to
     *  [1, count]). Exact for values below 2^kSubBits; otherwise at
     *  most 2^-kSubBits below the exact sample. 0 when empty. */
    uint64_t
    quantile(double q) const
    {
        if (total_ == 0)
            return 0;
        uint64_t rank = uint64_t(std::ceil(q * double(total_)));
        if (rank < 1)
            rank = 1;
        if (rank > total_)
            rank = total_;
        uint64_t seen = 0;
        for (size_t i = 0; i < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen >= rank)
                return bucketLowerBound(i);
        }
        return bucketLowerBound(counts_.size() - 1); // unreachable
    }

    friend bool operator==(const Histogram &a, const Histogram &b)
    {
        if (a.total_ != b.total_)
            return false;
        // Trailing zero buckets are representation noise, not data.
        const size_t n = std::max(a.counts_.size(), b.counts_.size());
        for (size_t i = 0; i < n; ++i) {
            const uint64_t av = i < a.counts_.size() ? a.counts_[i] : 0;
            const uint64_t bv = i < b.counts_.size() ? b.counts_[i] : 0;
            if (av != bv)
                return false;
        }
        return true;
    }

    /** Bucket of `value`: identity below 2^kSubBits, then kSubBits of
     *  mantissa per octave. */
    static size_t
    bucketIndex(uint64_t value)
    {
        if (value < (uint64_t(1) << kSubBits))
            return size_t(value);
        const unsigned msb = unsigned(std::bit_width(value)) - 1;
        const unsigned shift = msb - kSubBits;
        const uint64_t sub =
            (value >> shift) & ((uint64_t(1) << kSubBits) - 1);
        return size_t(((uint64_t(shift) + 1) << kSubBits) + sub);
    }

    /** Smallest value mapping to bucket `idx` (what quantile reports). */
    static uint64_t
    bucketLowerBound(size_t idx)
    {
        if (idx < (size_t(1) << kSubBits))
            return uint64_t(idx);
        const uint64_t shift = (uint64_t(idx) >> kSubBits) - 1;
        const uint64_t sub = uint64_t(idx) & ((uint64_t(1) << kSubBits) - 1);
        return ((uint64_t(1) << kSubBits) + sub) << shift;
    }

  private:
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace rayflex::obs

#endif // RAYFLEX_OBS_HISTOGRAM_HH
