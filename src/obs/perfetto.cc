/**
 * @file
 * Chrome trace-event JSON writer.
 *
 * The mapping from TraceRecord to trace events is fixed (see
 * perfetto.hh); everything here is string assembly. Counter tracks are
 * identified by (pid, name) in the trace format, so per-unit/per-bank
 * counters carry the unit in the counter name. Slice tracks use B/E
 * pairs; batches are sequential on one track and every job opens and
 * closes its own track, so slices balance trivially.
 */
#include "obs/perfetto.hh"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

namespace rayflex::obs
{

namespace
{

constexpr int kPidUnits = 1;
constexpr int kPidTimeline = 2;
constexpr int kPidL2 = 3;

/** One JSON trace event, pre-rendered except for ordering. */
struct Emitted
{
    int pid = 0;
    uint64_t tid = 0;
    uint64_t ts = 0;
    size_t seq = 0; ///< emission order: the stable tie-break
    std::string json;
};

std::string
instant(int pid, uint64_t tid, uint64_t ts, const char *name,
        const char *ka, uint64_t a, const char *kb, uint64_t b)
{
    std::string s = "{\"ph\":\"i\",\"s\":\"t\",\"pid\":";
    s += std::to_string(pid);
    s += ",\"tid\":" + std::to_string(tid);
    s += ",\"ts\":" + std::to_string(ts);
    s += ",\"name\":\"";
    s += name;
    s += "\",\"args\":{\"";
    s += ka;
    s += "\":" + std::to_string(a) + ",\"";
    s += kb;
    s += "\":" + std::to_string(b) + "}}";
    return s;
}

std::string
counter(int pid, uint64_t tid, uint64_t ts, const std::string &name,
        const char *key, uint64_t value)
{
    std::string s = "{\"ph\":\"C\",\"pid\":" + std::to_string(pid);
    s += ",\"tid\":" + std::to_string(tid);
    s += ",\"ts\":" + std::to_string(ts);
    s += ",\"name\":\"" + name + "\",\"args\":{\"";
    s += key;
    s += "\":" + std::to_string(value) + "}}";
    return s;
}

std::string
slice(char ph, int pid, uint64_t tid, uint64_t ts,
      const std::string &name)
{
    std::string s = "{\"ph\":\"";
    s += ph;
    s += "\",\"pid\":" + std::to_string(pid);
    s += ",\"tid\":" + std::to_string(tid);
    s += ",\"ts\":" + std::to_string(ts);
    s += ",\"name\":\"" + name + "\"}";
    return s;
}

std::string
metadata(int pid, uint64_t tid, bool thread, const std::string &name)
{
    std::string s = "{\"ph\":\"M\",\"pid\":" + std::to_string(pid);
    s += ",\"tid\":" + std::to_string(tid);
    s += ",\"name\":\"";
    s += thread ? "thread_name" : "process_name";
    s += "\",\"args\":{\"name\":\"" + name + "\"}}";
    return s;
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceRecord> &events)
{
    std::vector<Emitted> out;
    out.reserve(events.size() + 8);
    // Track discovery for the metadata header: (pid, tid) -> name.
    std::map<std::pair<int, uint64_t>, std::string> threads;

    auto unitTrack = [&](uint32_t unit) {
        threads.try_emplace({kPidUnits, unit},
                            "unit " + std::to_string(unit));
        return uint64_t(unit);
    };
    auto bankTrack = [&](uint32_t bank) {
        threads.try_emplace({kPidL2, bank},
                            "bank " + std::to_string(bank));
        return uint64_t(bank);
    };

    size_t seq = 0;
    for (const TraceRecord &r : events) {
        Emitted e;
        e.seq = seq++;
        e.ts = r.cycle;
        switch (r.event) {
        case TraceEvent::FetchIssue:
        case TraceEvent::FetchFill:
        case TraceEvent::MshrAlloc:
        case TraceEvent::MshrMerge:
        case TraceEvent::MshrStallFull: {
            static const char *const names[] = {
                "fetch_issue", "fetch_fill", "mshr_alloc", "mshr_merge",
                "mshr_stall_full"};
            e.pid = kPidUnits;
            e.tid = unitTrack(r.unit);
            e.json = instant(kPidUnits, e.tid, e.ts,
                             names[size_t(r.event)], "addr", r.a, "slot",
                             r.b);
            break;
        }
        case TraceEvent::MshrResidency:
            e.pid = kPidUnits;
            e.tid = unitTrack(r.unit);
            e.json = counter(kPidUnits, e.tid, e.ts,
                             "mshr_residency[u" +
                                 std::to_string(r.unit) + "]",
                             "entries", r.a);
            break;
        case TraceEvent::PacketForm:
        case TraceEvent::PacketCompact:
        case TraceEvent::PacketRetire: {
            static const char *const names[] = {"packet_form",
                                                "packet_compact",
                                                "packet_retire"};
            const size_t k =
                size_t(r.event) - size_t(TraceEvent::PacketForm);
            e.pid = kPidUnits;
            e.tid = unitTrack(r.unit);
            e.json =
                instant(kPidUnits, e.tid, e.ts, names[k], "slot", r.a,
                        r.event == TraceEvent::PacketForm ? "lanes"
                        : r.event == TraceEvent::PacketRetire
                            ? "rays"
                            : "into",
                        r.b);
            break;
        }
        case TraceEvent::PacketOccupancy:
            e.pid = kPidUnits;
            e.tid = unitTrack(r.unit);
            e.json = counter(kPidUnits, e.tid, e.ts,
                             "packet_occupancy[u" +
                                 std::to_string(r.unit) + "]",
                             "lanes", r.a);
            break;
        case TraceEvent::BankEnqueue:
        case TraceEvent::BankDequeue:
            e.pid = kPidL2;
            e.tid = bankTrack(r.unit);
            e.json = instant(kPidL2, e.tid, e.ts,
                             r.event == TraceEvent::BankEnqueue
                                 ? "bank_enqueue"
                                 : "bank_dequeue",
                             "unit", r.a, "wait", r.b);
            break;
        case TraceEvent::BankQueueDepth:
            e.pid = kPidL2;
            e.tid = bankTrack(r.unit);
            e.json = counter(kPidL2, e.tid, e.ts,
                             "l2_bank_queue[b" +
                                 std::to_string(r.unit) + "]",
                             "depth", r.a);
            break;
        case TraceEvent::BatchStart:
        case TraceEvent::BatchEnd:
            e.pid = kPidTimeline;
            e.tid = 0;
            threads.try_emplace({kPidTimeline, 0}, "batches");
            e.json = slice(r.event == TraceEvent::BatchStart ? 'B' : 'E',
                           kPidTimeline, 0, e.ts,
                           "batch " + std::to_string(r.a));
            break;
        case TraceEvent::JobSubmit:
        case TraceEvent::JobComplete:
            e.pid = kPidTimeline;
            e.tid = 1 + r.a;
            threads.try_emplace({kPidTimeline, 1 + r.a},
                                "job " + std::to_string(r.a));
            e.json = slice(r.event == TraceEvent::JobSubmit ? 'B' : 'E',
                           kPidTimeline, 1 + r.a, e.ts,
                           "job " + std::to_string(r.a));
            break;
        }
        out.push_back(std::move(e));
    }

    // Per-track monotone timestamps, with emission order as the stable
    // tie-break — the determinism key the validator checks.
    std::stable_sort(out.begin(), out.end(),
                     [](const Emitted &x, const Emitted &y) {
                         if (x.pid != y.pid)
                             return x.pid < y.pid;
                         if (x.tid != y.tid)
                             return x.tid < y.tid;
                         if (x.ts != y.ts)
                             return x.ts < y.ts;
                         return x.seq < y.seq;
                     });

    os << "{\"traceEvents\":[\n";
    bool first = true;
    auto emitLine = [&](const std::string &json) {
        if (!first)
            os << ",\n";
        first = false;
        os << json;
    };
    emitLine(metadata(kPidUnits, 0, false, "rt units"));
    emitLine(metadata(kPidTimeline, 0, false, "timeline"));
    emitLine(metadata(kPidL2, 0, false, "shared L2"));
    for (const auto &[key, name] : threads)
        emitLine(metadata(key.first, key.second, true, name));
    for (const Emitted &e : out)
        emitLine(e.json);
    os << "\n]}\n";
}

} // namespace rayflex::obs
