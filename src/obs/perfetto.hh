/**
 * @file
 * Chrome trace-event / Perfetto JSON export of an obs::TraceRecord
 * stream.
 *
 * Emits the classic JSON trace format (`{"traceEvents": [...]}`) that
 * both chrome://tracing and https://ui.perfetto.dev load directly:
 *
 *   * process 1 "rt units"  — one thread (track) per RT unit carrying
 *     fetch / MSHR / packet instant events, plus per-unit counter
 *     tracks for MSHR residency and packet occupancy;
 *   * process 2 "timeline"  — batches as B/E slices on one track and
 *     jobs (streaming runs) as B/E slices on per-job tracks;
 *   * process 3 "shared L2" — one track per bank with enqueue/dequeue
 *     instants and a queue-depth counter track per bank.
 *
 * Timestamps are simulated cycles written into the `ts` microsecond
 * field (1 cycle = 1 "us" for viewing; the scale is arbitrary since
 * the whole trace is on one clock). Events are sorted per track by
 * timestamp with a stable tie-break on emission order, so the output
 * is deterministic and per-track monotone — the two properties
 * scripts/check_trace.py validates in CI.
 */
#ifndef RAYFLEX_OBS_PERFETTO_HH
#define RAYFLEX_OBS_PERFETTO_HH

#include <ostream>
#include <vector>

#include "obs/trace.hh"

namespace rayflex::obs
{

/** Write `events` as Chrome trace-event JSON to `os`. The record
 *  vector is what a traced EngineReport / StreamReport carries; any
 *  subset works (unknown producers simply contribute no tracks). */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceRecord> &events);

} // namespace rayflex::obs

#endif // RAYFLEX_OBS_PERFETTO_HH
