/**
 * @file
 * Top-down issue-slot attribution for the RT unit.
 *
 * The unit already accounts every issue slot of every cycle: step (a)
 * of the cycle loop increments exactly one of datapath_beats or
 * datapath_idle per lane per cycle. Those two buckets answer "how busy
 * was the datapath" but not "what was the idle time spent waiting ON"
 * — an L1 miss in flight, a full MSHR file, a contended L2 bank queue,
 * ring hops, results still draining, or genuinely no work. This module
 * refines the same per-slot accounting into an EXCLUSIVE taxonomy:
 * each issue slot lands in exactly one bucket, so the buckets obey a
 * hard conservation invariant,
 *
 *     SlotAccounting::total() == cycles * issue_width
 *
 * in every configuration (scalar, packet and k-NN schedulers; flat,
 * cached and chip-mode memory), pinned by tests/test_obs.cc. The
 * `Issued` bucket always equals datapath_beats, so the legacy counters
 * stay untouched and bit-identical.
 *
 * Attribution of an idle slot follows a fixed priority, computed once
 * per cycle (all idle slots of a cycle share the cause — the same lazy
 * evaluation the existing waiting-on-memory counter uses):
 *
 *   1. no slot holds work at all            -> IdleNoWork
 *   2. a fetch is refused by a full MSHR    -> StallMshrFull
 *   3. a fetch is in flight: classify by the GATING request's current
 *      phase (the earliest-completing in-flight fetch), using the
 *      phase boundaries its MemoryModel reported at issue time:
 *        L1 lookup / flat fill              -> StallL1Miss
 *        interconnect hops (both ways)      -> StallRingHop
 *        L2 bank-queue wait                 -> StallL2BankQueue
 *        L2 service / DRAM fill / merge     -> StallL2Fill
 *      (without a chip-level L2 every boundary collapses into the L1
 *      phase, so single-unit runs attribute memory waits to
 *      StallL1Miss — the only memory there is)
 *   4. work is in the datapath, none ready  -> StallDrain
 *   5. otherwise                            -> IdleNoWork
 *
 * Merging is a commutative-associative elementwise sum, exactly like
 * every other stats struct, so the buckets ride RtUnitStats through
 * EngineReport / PassesReport / StreamReport unchanged and stay
 * bit-identical at every worker count.
 */
#ifndef RAYFLEX_OBS_SLOT_ACCOUNTING_HH
#define RAYFLEX_OBS_SLOT_ACCOUNTING_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace rayflex::obs
{

/** The exclusive issue-slot taxonomy. Every issue slot of every cycle
 *  lands in exactly one bucket. */
enum class Slot : uint8_t {
    Issued,           ///< a beat entered a datapath lane (== datapath_beats)
    StallL1Miss,      ///< gating fetch in its L1 / flat-memory phase
    StallMshrFull,    ///< a fetch was refused: MSHR file full
    StallRingHop,     ///< gating fetch riding the chip interconnect
    StallL2BankQueue, ///< gating fetch queued on a busy L2 bank
    StallL2Fill,      ///< gating fetch in L2 service / DRAM fill
    StallDrain,       ///< work in flight in the datapath, none ready
    IdleNoWork,       ///< no work held anywhere in the unit
    kCount,
};

inline constexpr size_t kSlotBuckets = size_t(Slot::kCount);

/** Per-run issue-slot buckets. All fields are sums of uint64 counts,
 *  so merging is commutative and associative like RtUnitStats. */
struct SlotAccounting
{
    std::array<uint64_t, kSlotBuckets> buckets{};

    uint64_t &operator[](Slot s) { return buckets[size_t(s)]; }
    uint64_t operator[](Slot s) const { return buckets[size_t(s)]; }

    /** Sum over all buckets; the conservation invariant says this
     *  equals cycles * issue_width for any single unit or any merge of
     *  same-issue-width units. */
    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (uint64_t b : buckets)
            t += b;
        return t;
    }

    /** Slots lost waiting on the memory system (everything between
     *  Issued and StallDrain in the taxonomy). */
    uint64_t
    memoryStallSlots() const
    {
        return (*this)[Slot::StallL1Miss] + (*this)[Slot::StallMshrFull] +
               (*this)[Slot::StallRingHop] +
               (*this)[Slot::StallL2BankQueue] + (*this)[Slot::StallL2Fill];
    }

    SlotAccounting &
    merge(const SlotAccounting &o)
    {
        for (size_t i = 0; i < kSlotBuckets; ++i)
            buckets[i] += o.buckets[i];
        return *this;
    }

    friend bool operator==(const SlotAccounting &,
                           const SlotAccounting &) = default;
};

/** Stable display name of a bucket (bench counters, probe output). */
inline const char *
slotName(Slot s)
{
    switch (s) {
    case Slot::Issued: return "issued";
    case Slot::StallL1Miss: return "stall_l1_miss";
    case Slot::StallMshrFull: return "stall_mshr_full";
    case Slot::StallRingHop: return "stall_ring_hop";
    case Slot::StallL2BankQueue: return "stall_l2_bank_queue";
    case Slot::StallL2Fill: return "stall_l2_fill";
    case Slot::StallDrain: return "stall_drain";
    case Slot::IdleNoWork: return "idle_no_work";
    case Slot::kCount: break;
    }
    return "?";
}

} // namespace rayflex::obs

#endif // RAYFLEX_OBS_SLOT_ACCOUNTING_HH
