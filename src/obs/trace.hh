/**
 * @file
 * Deterministic event tracing: the TraceSink seam.
 *
 * Mirrors the MemoryModel pluggable-backend idiom: producers hold a
 * nullable TraceSink pointer and emit nothing when it is null — the
 * disabled path is a single pointer test, so tracing off costs nothing
 * and (pinned by tests/test_obs.cc) every counter and hit record is
 * bit-identical with the sink attached or detached.
 *
 * Events are cycle-stamped on the producer's own clock (unit-local
 * cycles inside a batch; the engine and streaming tiers rebase batch
 * events onto their sequential simulated timelines when concatenating)
 * and appended in simulation order. Batches are simulated
 * single-threaded (a chip's units tick in deterministic lock-step
 * registration order), batch decomposition depends only on the ray
 * count and batch size, and per-batch traces concatenate in batch
 * order — so a run's full trace is bit-identical at any worker count,
 * exactly like hits and stats. TraceRecord is a plain comparable
 * value, so the bit-identity is pinned with operator== on the vector.
 *
 * Field conventions (`a`, `b` are event-specific operands):
 *
 *   FetchIssue / FetchFill    unit = RT unit   a = address   b = slot
 *   MshrAlloc                 unit = RT unit   a = address   b = residency
 *   MshrMerge / MshrStallFull unit = RT unit   a = address   b = slot
 *   MshrResidency (counter)   unit = RT unit   a = entries in flight
 *   PacketForm                unit = RT unit   a = slot      b = lanes
 *   PacketCompact             unit = RT unit   a = donor     b = recipient
 *   PacketRetire              unit = RT unit   a = slot      b = rays
 *   PacketOccupancy (counter) unit = RT unit   a = live lanes, all slots
 *   BankEnqueue / BankDequeue unit = L2 bank   a = requester b = wait
 *   BankQueueDepth (counter)  unit = L2 bank   a = queued requests
 *   BatchStart / BatchEnd     unit = 0         a = batch     b = rays/jobs
 *   JobSubmit / JobComplete   unit = 0         a = job id    b = rays/latency
 */
#ifndef RAYFLEX_OBS_TRACE_HH
#define RAYFLEX_OBS_TRACE_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace rayflex::obs
{

/** What happened. Grouped by producer; see the field conventions in
 *  the file comment for the meaning of `a` and `b` per event. */
enum class TraceEvent : uint8_t {
    // RtUnit memory path
    FetchIssue,
    FetchFill,
    MshrAlloc,
    MshrMerge,
    MshrStallFull,
    MshrResidency, ///< counter sample: MSHR entries in flight
    // Packet scheduler
    PacketForm,
    PacketCompact,
    PacketRetire,
    PacketOccupancy, ///< counter sample: live lanes across all slots
    // SharedL2 banks
    BankEnqueue,
    BankDequeue,
    BankQueueDepth, ///< counter sample: requests queued at the bank
    // Engine / streaming timeline
    BatchStart,
    BatchEnd,
    JobSubmit,
    JobComplete,
};

/** One cycle-stamped event. A plain comparable value: trace equality
 *  (and therefore the worker-count bit-identity contract) is
 *  vector-of-records equality. */
struct TraceRecord
{
    uint64_t cycle = 0; ///< producer-local simulated cycle
    uint32_t unit = 0;  ///< RT unit / L2 bank / 0 (timeline events)
    TraceEvent event = TraceEvent::FetchIssue;
    uint64_t a = 0; ///< event-specific (see file comment)
    uint64_t b = 0; ///< event-specific (see file comment)

    friend bool operator==(const TraceRecord &,
                           const TraceRecord &) = default;
};

/** The seam. Producers (RtUnit, SharedL2, the engine and streaming
 *  tiers) hold a nullable pointer to one of these; null means tracing
 *  is disabled and the producer skips emission entirely. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceRecord &r) = 0;
};

/** The collecting sink: appends records in emission order. One
 *  instance per batch keeps emission single-threaded (a chip's units
 *  share the batch's sink; they tick in lock-step on one thread). */
class VectorTraceSink final : public TraceSink
{
  public:
    void record(const TraceRecord &r) override { events_.push_back(r); }

    const std::vector<TraceRecord> &events() const { return events_; }

    /** Move the collected records out (end of a batch). */
    std::vector<TraceRecord>
    take()
    {
        return std::exchange(events_, {});
    }

  private:
    std::vector<TraceRecord> events_;
};

} // namespace rayflex::obs

#endif // RAYFLEX_OBS_TRACE_HH
