/**
 * @file
 * Base class and simulation kernel for cycle-driven components.
 *
 * All RayFlex model components are Moore machines: every output signal
 * (valid, bits, ready) is a function of registered state only. Each clock
 * cycle therefore evaluates in two phases with no ordering constraints
 * inside a phase:
 *
 *  1. publish(): every component drives its output signals onto its ports
 *     from current register state.
 *  2. advance(): every component samples its ports, computes which
 *     handshakes fire, and updates registers (the clock edge).
 *
 * This mirrors the self-synchronizing elastic pipeline of the paper: there
 * is no global controller, only local handshakes (Section III-C).
 */
#ifndef RAYFLEX_PIPELINE_COMPONENT_HH
#define RAYFLEX_PIPELINE_COMPONENT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rayflex::pipeline
{

/** A clocked component participating in two-phase simulation. */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Drive output signals from registered state (combinational). */
    virtual void publish(uint64_t cycle) = 0;

    /** Sample ports, compute fires, update registers (clock edge). */
    virtual void advance(uint64_t cycle) = 0;

    /** Component instance name, used in statistics reports. */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

/**
 * The simulation kernel: owns no components, just steps a set of them.
 * Components must be registered in any order; correctness does not depend
 * on evaluation order because all components are Moore machines.
 */
class Simulator
{
  public:
    /** Register a component. The caller retains ownership. */
    void add(Component *c) { components_.push_back(c); }

    /** Advance the simulation by one clock cycle. */
    void
    tick()
    {
        for (Component *c : components_)
            c->publish(cycle_);
        for (Component *c : components_)
            c->advance(cycle_);
        ++cycle_;
    }

    /** Advance the simulation by n clock cycles. */
    void
    run(uint64_t n)
    {
        for (uint64_t i = 0; i < n; ++i)
            tick();
    }

    /**
     * Run until the predicate returns true (checked after each cycle) or
     * the cycle limit is hit.
     * @return true if the predicate was satisfied.
     */
    template <typename Pred>
    bool
    runUntil(Pred pred, uint64_t max_cycles)
    {
        for (uint64_t i = 0; i < max_cycles; ++i) {
            tick();
            if (pred())
                return true;
        }
        return false;
    }

    /** Current cycle count (number of completed ticks). */
    uint64_t cycle() const { return cycle_; }

  private:
    std::vector<Component *> components_;
    uint64_t cycle_ = 0;
};

} // namespace rayflex::pipeline

#endif // RAYFLEX_PIPELINE_COMPONENT_HH
