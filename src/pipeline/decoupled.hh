/**
 * @file
 * Valid-ready ("two-phase bundled data") handshake port.
 *
 * RayFlex's pipeline stages exchange data using the valid-ready protocol
 * (Section III-C): the producer drives valid and bits, the consumer drives
 * ready, and a beat transfers ("fires") on a cycle where both are high.
 * In this model a Decoupled<T> object is the wire bundle between two
 * components; each side writes only the signals it owns.
 */
#ifndef RAYFLEX_PIPELINE_DECOUPLED_HH
#define RAYFLEX_PIPELINE_DECOUPLED_HH

namespace rayflex::pipeline
{

/**
 * A valid-ready port carrying payload type T.
 *
 * Ownership convention: the producer writes valid and bits during the
 * publish phase; the consumer writes ready during the publish phase; both
 * may read every signal during the advance phase.
 */
template <typename T>
struct Decoupled
{
    bool valid = false; ///< driven by producer
    bool ready = false; ///< driven by consumer
    T bits{};           ///< driven by producer

    /** True when a beat transfers this cycle. */
    bool fire() const { return valid && ready; }
};

} // namespace rayflex::pipeline

#endif // RAYFLEX_PIPELINE_DECOUPLED_HH
