/**
 * @file
 * Test-bench drivers: stimulus sources and collecting sinks.
 *
 * These play the role of the chiseltest harness in the paper's
 * methodology: a Source pushes beats into the first pipeline stage
 * (optionally with a programmable valid pattern to create bubbles) and a
 * Sink drains the last stage (optionally with a programmable ready
 * pattern to create back-pressure), recording every delivered beat and
 * its arrival cycle.
 */
#ifndef RAYFLEX_PIPELINE_DRIVERS_HH
#define RAYFLEX_PIPELINE_DRIVERS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "pipeline/component.hh"
#include "pipeline/decoupled.hh"

namespace rayflex::pipeline
{

/** Cycle-indexed boolean pattern; defaults to always-true. */
using CyclePattern = std::function<bool(uint64_t)>;

/** Always-asserted pattern. */
inline CyclePattern
alwaysOn()
{
    return [](uint64_t) { return true; };
}

/**
 * Stimulus source driving a Decoupled<T> port. Presents queued beats in
 * order; a beat is offered only on cycles where the valid pattern allows,
 * and is retired when the consumer accepts it.
 */
template <typename T>
class Source : public Component
{
  public:
    /**
     * @param name     Instance name.
     * @param port     The consumer's input port to drive.
     * @param pattern  Valid gating pattern (bubbles when false).
     */
    Source(std::string name, Decoupled<T> *port,
           CyclePattern pattern = alwaysOn())
        : Component(std::move(name)), port_(port),
          pattern_(std::move(pattern))
    {}

    /** Append one beat to the stimulus queue. */
    void push(const T &v) { queue_.push_back(v); }

    /** Append a batch of beats to the stimulus queue. */
    void
    pushAll(const std::vector<T> &vs)
    {
        for (const T &v : vs)
            queue_.push_back(v);
    }

    /** Beats not yet accepted by the consumer. */
    size_t pending() const { return queue_.size(); }

    /** Total beats accepted by the consumer. */
    uint64_t sent() const { return sent_; }

    void
    publish(uint64_t cycle) override
    {
        port_->valid = !queue_.empty() && pattern_(cycle);
        if (port_->valid)
            port_->bits = queue_.front();
    }

    void
    advance(uint64_t) override
    {
        if (port_->valid && port_->ready) {
            queue_.pop_front();
            ++sent_;
        }
    }

  private:
    Decoupled<T> *port_;
    CyclePattern pattern_;
    std::deque<T> queue_;
    uint64_t sent_ = 0;
};

/**
 * Collecting sink draining a Decoupled<T> port. Ready is asserted on
 * cycles where the pattern allows (back-pressure when false). Every
 * received beat is recorded together with its arrival cycle.
 */
template <typename T>
class Sink : public Component
{
  public:
    Sink(std::string name, Decoupled<T> *port,
         CyclePattern pattern = alwaysOn())
        : Component(std::move(name)), port_(port),
          pattern_(std::move(pattern))
    {}

    /** Beats received so far, in arrival order. */
    const std::vector<T> &received() const { return received_; }

    /** Arrival cycle of each received beat (parallel to received()). */
    const std::vector<uint64_t> &arrivalCycles() const { return cycles_; }

    /** Number of beats received. */
    size_t count() const { return received_.size(); }

    void
    publish(uint64_t cycle) override
    {
        port_->ready = pattern_(cycle);
    }

    void
    advance(uint64_t cycle) override
    {
        if (port_->valid && port_->ready) {
            received_.push_back(port_->bits);
            cycles_.push_back(cycle);
        }
    }

  private:
    Decoupled<T> *port_;
    CyclePattern pattern_;
    std::vector<T> received_;
    std::vector<uint64_t> cycles_;
};

} // namespace rayflex::pipeline

#endif // RAYFLEX_PIPELINE_DRIVERS_HH
