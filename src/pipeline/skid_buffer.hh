/**
 * @file
 * The parameterized RayFlex Skid Buffer module (Section III-C).
 *
 * The skid buffer is the building block of the RayFlex elastic pipeline.
 * It encapsulates a chunk of programmer-supplied logic (which may be
 * stateful, e.g. the distance accumulators of the extended datapath),
 * synchronizes with producer and consumer through valid-ready handshakes,
 * and provides full throughput with fully registered outputs: both the
 * downstream valid/bits and the upstream ready come from registers, so no
 * combinational path crosses the module. A second ("skid") register
 * catches the in-flight beat when the consumer stalls, which is what lets
 * ready be registered without losing throughput.
 *
 * The module is parameterized by two data types, In and Out, the input
 * and output types of the supplied logic - exactly like the Chisel module
 * in the paper, where this parameterization is what allows all pipeline
 * stages to be handled programmatically as one class (here:
 * SkidBufferBase).
 */
#ifndef RAYFLEX_PIPELINE_SKID_BUFFER_HH
#define RAYFLEX_PIPELINE_SKID_BUFFER_HH

#include <cstdint>
#include <functional>
#include <utility>

#include "pipeline/component.hh"
#include "pipeline/decoupled.hh"

namespace rayflex::pipeline
{

/** Per-stage statistics common to every skid buffer instantiation. */
struct SkidBufferStats
{
    uint64_t accepted = 0;      ///< beats accepted from the producer
    uint64_t delivered = 0;     ///< beats delivered to the consumer
    uint64_t stall_cycles = 0;  ///< cycles with output valid but not ready
    uint64_t idle_cycles = 0;   ///< cycles with nothing buffered
    uint64_t skid_cycles = 0;   ///< cycles with the skid register occupied
    uint64_t cycles = 0;        ///< total cycles observed
};

/**
 * Type-erased view of a skid buffer, mirroring how Chisel treats all
 * parameterizations of the module as a single class. The datapath
 * assembles its stages as a vector of these.
 */
class SkidBufferBase : public Component
{
  public:
    using Component::Component;

    /** Statistics accumulated since construction or the last reset. */
    const SkidBufferStats &stats() const { return stats_; }

    /** Clear accumulated statistics. */
    void resetStats() { stats_ = {}; }

    /** Number of beats currently buffered (0, 1 or 2). */
    virtual unsigned occupancy() const = 0;

  protected:
    SkidBufferStats stats_;
};

/**
 * Skid buffer with input type In, output type Out, and programmer-
 * supplied logic mapping In to Out. The logic runs exactly once per
 * accepted beat (on the acceptance edge), so stateful logic such as
 * accumulators observes each beat exactly once regardless of stalls.
 */
template <typename In, typename Out>
class SkidBuffer : public SkidBufferBase
{
  public:
    /** The programmer-supplied logic encapsulated by this stage. */
    using Logic = std::function<Out(const In &)>;

    SkidBuffer(std::string name, Logic logic)
        : SkidBufferBase(std::move(name)), logic_(std::move(logic))
    {}

    /** Input port: the producer drives valid/bits, this module ready. */
    Decoupled<In> &in() { return in_; }

    /** Output port: this module drives valid/bits, the consumer ready. */
    Decoupled<Out> &out() { return *out_port_; }

    /**
     * Chain this stage into a pipeline: drive the downstream stage's
     * input port directly instead of the internally owned output port.
     * Typical use: a.bindOut(&b.in()).
     */
    void bindOut(Decoupled<Out> *port) { out_port_ = port; }

    void
    publish(uint64_t) override
    {
        out_port_->valid = main_valid_;
        out_port_->bits = main_;
        // Registered ready: a new beat can always be accepted unless the
        // skid register is already holding one.
        in_.ready = !skid_valid_;
    }

    void
    advance(uint64_t) override
    {
        const bool in_fire = in_.valid && in_.ready;
        const bool out_fire = out_port_->valid && out_port_->ready;

        ++stats_.cycles;
        if (out_port_->valid && !out_port_->ready)
            ++stats_.stall_cycles;
        if (!main_valid_ && !skid_valid_)
            ++stats_.idle_cycles;
        if (skid_valid_)
            ++stats_.skid_cycles;

        Out produced{};
        if (in_fire) {
            produced = logic_(in_.bits);
            ++stats_.accepted;
        }
        if (out_fire)
            ++stats_.delivered;

        if (out_fire) {
            if (skid_valid_) {
                // Drain the skid register into the main register. The
                // registered ready guarantees no in_fire this cycle.
                main_ = skid_;
                skid_valid_ = false;
            } else if (in_fire) {
                main_ = produced;
            } else {
                main_valid_ = false;
            }
        } else if (in_fire) {
            if (main_valid_) {
                // Output stalled with a beat in flight: skid.
                skid_ = produced;
                skid_valid_ = true;
            } else {
                main_ = produced;
                main_valid_ = true;
            }
        }
    }

    unsigned
    occupancy() const override
    {
        return (main_valid_ ? 1u : 0u) + (skid_valid_ ? 1u : 0u);
    }

  private:
    Logic logic_;

    Decoupled<In> in_;
    Decoupled<Out> out_;
    Decoupled<Out> *out_port_ = &out_;

    Out main_{};
    bool main_valid_ = false;
    Out skid_{};
    bool skid_valid_ = false;
};

} // namespace rayflex::pipeline

#endif // RAYFLEX_PIPELINE_SKID_BUFFER_HH
