/**
 * @file
 * Batch simulation engine implementation (the batch-synchronous front
 * of the job/scheduler/executor stack).
 *
 * Work distribution is a single atomic batch counter: workers claim the
 * next unclaimed batch index until none remain. Batches are contiguous
 * ray ranges; each worker gathers its claimed range into executor ray
 * refs (ray pointer + hit-record pointer) and hands them to the shared
 * sim::BatchExecutor, which scatters hit records into disjoint slices
 * of the shared output vector — so no synchronization is needed on
 * results. Statistics are accumulated per worker and merged after the
 * join, which is safe because the merge operation is commutative and
 * associative.
 *
 * Workers live in a persistent pool (Engine::Pool): threads are spawned
 * once, then parked on a condition variable between runs. A run hands
 * the pool a job and a worker count; each drafted worker executes
 * job(worker_id) and reports back, and the dispatching thread blocks
 * until all drafted workers have returned. Single-worker runs bypass
 * the pool entirely and execute inline on the calling thread. The
 * streaming service (sim/stream.hh) dispatches onto the same pool
 * through Engine::dispatchWorkers.
 */
#include "sim/engine.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <stdexcept>
#include <thread>

namespace rayflex::sim
{

/** Persistent worker threads parked between dispatches. */
class Engine::Pool
{
  public:
    explicit Pool(unsigned workers)
    {
        threads_.reserve(workers);
        for (unsigned i = 0; i < workers; ++i)
            threads_.emplace_back([this, i] { loop(i); });
    }

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            stop_ = true;
        }
        cv_work_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    /** Run job(0) .. job(n-1) on n pool workers; blocks until every
     *  drafted worker has returned. The job must not throw (workers
     *  capture exceptions themselves). */
    void
    dispatch(unsigned n, const std::function<void(unsigned)> &job)
    {
        std::unique_lock<std::mutex> lk(m_);
        job_ = &job;
        active_ = n;
        remaining_ = n;
        ++generation_;
        cv_work_.notify_all();
        cv_done_.wait(lk, [this] { return remaining_ == 0; });
        job_ = nullptr;
    }

  private:
    void
    loop(unsigned id)
    {
        uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(m_);
        for (;;) {
            cv_work_.wait(lk, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            if (id >= active_)
                continue; // not drafted for this dispatch
            const std::function<void(unsigned)> *job = job_;
            lk.unlock();
            (*job)(id);
            lk.lock();
            if (--remaining_ == 0)
                cv_done_.notify_one();
        }
    }

    std::vector<std::thread> threads_;
    std::mutex m_;
    std::condition_variable cv_work_, cv_done_;
    const std::function<void(unsigned)> *job_ = nullptr;
    unsigned active_ = 0;    ///< workers drafted this generation
    unsigned remaining_ = 0; ///< drafted workers still running
    uint64_t generation_ = 0;
    bool stop_ = false;
};

Engine::Engine(const EngineConfig &cfg) : cfg_(cfg)
{
    resolved_threads_ = cfg.threads;
    if (resolved_threads_ == 0) {
        resolved_threads_ = std::thread::hardware_concurrency();
        if (resolved_threads_ == 0)
            resolved_threads_ = 1;
    }
}

Engine::~Engine() = default;

ExecutorConfig
Engine::executorConfig() const
{
    ExecutorConfig ec;
    ec.model = cfg_.model;
    ec.rt = cfg_.rt;
    ec.dp = cfg_.dp;
    ec.chip = cfg_.chip;
    ec.max_cycles_per_batch = cfg_.max_cycles_per_batch;
    ec.trace = cfg_.trace;
    return ec;
}

void
Engine::resetWarmCaches() const
{
    std::lock_guard<std::mutex> lk(pool_mutex_);
    for (const std::unique_ptr<bvh::MemoryModel> &m : warm_mems_)
        if (m)
            m->reset();
}

void
Engine::dispatchWorkers(unsigned n,
                        const std::function<void(unsigned)> &job,
                        bool serialize_inline) const
{
    if (n <= 1) {
        if (serialize_inline) {
            // Single-worker runs that share cross-run state (warm
            // caches) must still serialize with any concurrent run()
            // of this engine.
            std::lock_guard<std::mutex> lk(pool_mutex_);
            job(0);
        } else {
            job(0);
        }
        return;
    }
    // Concurrent run() calls from different threads serialize here;
    // results are unaffected (work distribution is the callers' atomic
    // batch counters), only wall-clock overlaps are lost.
    std::lock_guard<std::mutex> lk(pool_mutex_);
    if (!pool_)
        pool_ = std::make_unique<Pool>(resolved_threads_);
    pool_->dispatch(n, job);
}

EngineReport
Engine::run(const bvh::Bvh4 &bvh,
            const std::vector<core::Ray> &rays) const
{
    return run(bvh, rays, cfg_.any_hit);
}

EngineReport
Engine::run(const bvh::Bvh4 &bvh, const std::vector<core::Ray> &rays,
            bool any_hit) const
{
    const BatchExecutor exec(bvh, executorConfig());
    if (exec.chipActive() && cfg_.warm_cache)
        throw std::invalid_argument(
            "Engine: warm_cache and chip mode are mutually exclusive "
            "(chip batches run cold by construction)");

    EngineReport report;
    report.hits.resize(rays.size());

    const std::vector<core::BatchRange> batches =
        core::sliceBatches(rays.size(), cfg_.batch_size);
    report.batches = batches.size();
    if (batches.empty()) {
        report.threads_used = 0;
        return report;
    }

    unsigned threads = resolved_threads_;
    if (size_t(threads) > batches.size())
        threads = unsigned(batches.size());
    report.threads_used = threads;

    // Warm-cache mode: make sure every pool worker owns a persistent
    // memory model before any worker needs it. See EngineConfig::
    // warm_cache for the determinism tradeoff this opts into.
    const bool warm =
        cfg_.warm_cache && cfg_.model == ExecutionModel::CycleAccurate;
    if (warm) {
        std::lock_guard<std::mutex> lk(pool_mutex_);
        if (warm_mems_.empty()) {
            warm_mems_.resize(resolved_threads_);
            for (auto &m : warm_mems_)
                m = bvh::makeMemoryModel(cfg_.rt.mem_backend,
                                         cfg_.rt.mem_latency,
                                         cfg_.rt.cache);
        }
    }

    std::atomic<size_t> next_batch{0};
    std::vector<BatchResult> tallies(threads);
    std::vector<std::exception_ptr> errors(threads);

    // Tracing keeps per-batch results in batch-index slots (disjoint
    // writes, no synchronization) so the post-join concatenation can
    // rebuild the sequential simulated timeline in batch order no
    // matter which worker ran which batch.
    const bool tracing =
        cfg_.trace && cfg_.model == ExecutionModel::CycleAccurate;
    std::vector<std::vector<obs::TraceRecord>> batch_traces(
        tracing ? batches.size() : 0);
    std::vector<uint64_t> batch_cycles(tracing ? batches.size() : 0);

    auto worker = [&](unsigned wid) {
        try {
            // Gather each claimed contiguous range into executor refs
            // (reusing one buffer per worker): the executor then sees
            // the same rays with the same local ids in the same order
            // as the pre-refactor inline loops, so schedules are
            // bit-for-bit unchanged.
            std::vector<BatchRayRef> refs;
            for (size_t bi = next_batch.fetch_add(1);
                 bi < batches.size(); bi = next_batch.fetch_add(1)) {
                const core::BatchRange r = batches[bi];
                refs.resize(r.size());
                for (size_t i = r.begin; i < r.end; ++i)
                    refs[i - r.begin] = {&rays[i], &report.hits[i], 0};
                BatchResult br = exec.executeBatch(
                    refs.data(), refs.size(), any_hit,
                    warm ? warm_mems_[wid].get() : nullptr);
                tallies[wid].unit.merge(br.unit);
                tallies[wid].traversal.merge(br.traversal);
                if (tracing) {
                    batch_traces[bi] = std::move(br.trace);
                    batch_cycles[bi] = br.sim_cycles;
                }
            }
        } catch (...) {
            errors[wid] = std::current_exception();
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    dispatchWorkers(threads, worker, warm);
    const auto t1 = std::chrono::steady_clock::now();
    report.elapsed_seconds =
        std::chrono::duration<double>(t1 - t0).count();

    for (const std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);

    // Merge worker tallies in worker-id order. Any order would give the
    // same counters (sums and maxima commute); a fixed order just makes
    // that property obvious.
    for (const BatchResult &t : tallies) {
        report.unit.merge(t.unit);
        report.traversal.merge(t.traversal);
    }

    // Concatenate per-batch traces in batch order onto one sequential
    // simulated timeline: batch k starts where batch k-1 ended. The
    // decomposition into batches and each batch's evolution are both
    // worker-independent, so the assembled trace is bit-identical at
    // every worker count.
    if (tracing) {
        uint64_t offset = 0;
        for (size_t bi = 0; bi < batches.size(); ++bi) {
            report.trace.push_back({offset, 0, obs::TraceEvent::BatchStart,
                                    uint64_t(bi),
                                    uint64_t(batches[bi].size())});
            for (obs::TraceRecord rec : batch_traces[bi]) {
                rec.cycle += offset;
                report.trace.push_back(rec);
            }
            offset += batch_cycles[bi];
            report.trace.push_back({offset, 0, obs::TraceEvent::BatchEnd,
                                    uint64_t(bi),
                                    uint64_t(batches[bi].size())});
        }
    }
    return report;
}

KnnReport
Engine::runKnn(const bvh::KnnIndex &index,
               const std::vector<bvh::KnnQuery> &queries) const
{
    if (cfg_.model == ExecutionModel::CycleAccurate &&
        !cfg_.dp.extended)
        throw std::invalid_argument(
            "Engine::runKnn: EngineConfig::dp must be an extended "
            "datapath config (e.g. core::kExtendedUnified)");
    // KnnReport carries no trace (see EngineConfig::trace): drop the
    // flag here rather than collect per-batch events only to discard
    // them after the join.
    ExecutorConfig ec = executorConfig();
    ec.trace = false;
    const BatchExecutor exec(index, ec);

    KnnReport report;
    report.results.resize(queries.size());

    const std::vector<core::BatchRange> batches =
        core::sliceBatches(queries.size(), cfg_.batch_size);
    report.batches = batches.size();
    if (batches.empty()) {
        report.threads_used = 0;
        return report;
    }

    unsigned threads = resolved_threads_;
    if (size_t(threads) > batches.size())
        threads = unsigned(batches.size());
    report.threads_used = threads;

    std::atomic<size_t> next_batch{0};
    std::vector<BatchResult> tallies(threads);
    std::vector<std::exception_ptr> errors(threads);

    auto worker = [&](unsigned wid) {
        try {
            std::vector<KnnBatchRef> refs;
            for (size_t bi = next_batch.fetch_add(1);
                 bi < batches.size(); bi = next_batch.fetch_add(1)) {
                const core::BatchRange r = batches[bi];
                refs.resize(r.size());
                for (size_t i = r.begin; i < r.end; ++i)
                    refs[i - r.begin] = {&queries[i],
                                         &report.results[i]};
                BatchResult br =
                    exec.executeKnnBatch(refs.data(), refs.size());
                tallies[wid].unit.merge(br.unit);
                tallies[wid].knn.merge(br.knn);
            }
        } catch (...) {
            errors[wid] = std::current_exception();
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    dispatchWorkers(threads, worker, false);
    const auto t1 = std::chrono::steady_clock::now();
    report.elapsed_seconds =
        std::chrono::duration<double>(t1 - t0).count();

    for (const std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);

    for (const BatchResult &t : tallies) {
        report.unit.merge(t.unit);
        report.knn.merge(t.knn);
    }
    // One traversal-counter field whatever the model: the cycle
    // model's counters live inside the unit stats.
    if (cfg_.model == ExecutionModel::CycleAccurate)
        report.knn = report.unit.knn;
    return report;
}

} // namespace rayflex::sim
