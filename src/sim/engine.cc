/**
 * @file
 * Batch simulation engine implementation.
 *
 * Work distribution is a single atomic batch counter: workers claim the
 * next unclaimed batch index until none remain. Batches are contiguous
 * ray ranges, so each worker writes its hit records into a disjoint
 * slice of the shared output vector without synchronization; statistics
 * are accumulated per worker and merged after the join, which is safe
 * because the merge operation is commutative and associative.
 *
 * Workers live in a persistent pool (Engine::Pool): threads are spawned
 * once, then parked on a condition variable between runs. A run hands
 * the pool a job and a worker count; each drafted worker executes
 * job(worker_id) and reports back, and the dispatching thread blocks
 * until all drafted workers have returned. Single-worker runs bypass
 * the pool entirely and execute inline on the calling thread.
 */
#include "sim/engine.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <stdexcept>
#include <thread>

#include "bvh/traversal.hh"
#include "core/datapath.hh"

namespace rayflex::sim
{

namespace
{

/** Per-worker accumulator state. */
struct WorkerTally
{
    bvh::RtUnitStats unit;
    bvh::TraversalStats traversal;
};

/**
 * Simulate one batch on a chip of lock-stepped RT units
 * (EngineConfig::chip). Batch ray i goes to unit i % units with local
 * id i / units; all units (and their datapath lanes) register with ONE
 * pipeline::Simulator and tick together until the slowest drains, so
 * their SharedL2 requests interleave on a common chip clock. The chip
 * is freshly constructed here, per batch: sharing never crosses a
 * batch boundary, which is what keeps the engine's determinism
 * contract intact at every worker count.
 *
 * @return the units' merged stats, plus the chip-level fields:
 *         chip_cycles (this batch's lock-step ticks) and l2_banks
 *         (the shared L2's per-bank counters, or the per-unit private
 *         L2s' counters summed bank-by-bank).
 */
bvh::RtUnitStats
runChipBatch(const bvh::Bvh4 &bvh, const bvh::RtUnitConfig &rt_cfg,
             const core::DatapathConfig &dp_cfg, const ChipConfig &chip,
             uint64_t max_cycles, const std::vector<core::Ray> &rays,
             core::BatchRange r, std::vector<bvh::HitRecord> &hits_out)
{
    const unsigned units = std::clamp(chip.units, 1u, kMaxChipUnits);

    std::vector<std::unique_ptr<core::RayFlexDatapath>> dps;
    std::vector<std::unique_ptr<bvh::RtUnit>> us;
    dps.reserve(units);
    us.reserve(units);
    for (unsigned u = 0; u < units; ++u) {
        dps.push_back(std::make_unique<core::RayFlexDatapath>(dp_cfg));
        us.push_back(
            std::make_unique<bvh::RtUnit>(bvh, *dps[u], rt_cfg));
    }

    std::unique_ptr<bvh::SharedL2> shared;
    std::vector<std::unique_ptr<bvh::SharedL2>> priv;
    if (chip.l2 == L2Mode::Shared) {
        shared = std::make_unique<bvh::SharedL2>(chip.l2cfg);
        for (unsigned u = 0; u < units; ++u)
            us[u]->attachSharedL2(shared.get(), u);
    } else if (chip.l2 == L2Mode::Private) {
        priv.reserve(units);
        for (unsigned u = 0; u < units; ++u) {
            priv.push_back(std::make_unique<bvh::SharedL2>(chip.l2cfg));
            // Every unit sits at ring stop 0 of its own private L2:
            // no interconnect sharing to model.
            us[u]->attachSharedL2(priv[u].get(), 0);
        }
    }

    // Round-robin distribution: adjacent (typically coherent) rays
    // land on different units, which is what gives a shared L2
    // cross-unit merges to find. Each unit's local ids stay dense, so
    // results() is parallel to its submissions as usual.
    for (size_t i = r.begin; i < r.end; ++i) {
        const size_t k = i - r.begin;
        us[k % units]->submit(rays[i], uint32_t(k / units));
    }

    pipeline::Simulator sim;
    for (auto &u : us)
        u->registerWith(sim);
    for (auto &u : us)
        u->beginRun();

    const auto all_done = [&us] {
        for (const auto &u : us)
            if (!u->done())
                return false;
        return true;
    };
    uint64_t ticks = 0;
    while (!all_done() && ticks < max_cycles) {
        sim.tick();
        ++ticks;
    }
    if (!all_done())
        throw std::runtime_error(
            "Engine: chip batch exceeded max_cycles_per_batch");

    bvh::RtUnitStats merged;
    for (auto &u : us)
        merged.merge(u->endRun());
    merged.chip_cycles = ticks;
    if (shared) {
        merged.l2_banks = shared->bankStats();
    } else {
        for (const auto &p : priv) {
            const std::vector<bvh::L2Stats> &bs = p->bankStats();
            if (merged.l2_banks.size() < bs.size())
                merged.l2_banks.resize(bs.size());
            for (size_t b = 0; b < bs.size(); ++b)
                merged.l2_banks[b].merge(bs[b]);
        }
    }

    for (size_t i = r.begin; i < r.end; ++i) {
        const size_t k = i - r.begin;
        hits_out[i] = us[k % units]->results()[k / units];
    }
    return merged;
}

} // namespace

/** Persistent worker threads parked between dispatches. */
class Engine::Pool
{
  public:
    explicit Pool(unsigned workers)
    {
        threads_.reserve(workers);
        for (unsigned i = 0; i < workers; ++i)
            threads_.emplace_back([this, i] { loop(i); });
    }

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            stop_ = true;
        }
        cv_work_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    /** Run job(0) .. job(n-1) on n pool workers; blocks until every
     *  drafted worker has returned. The job must not throw (workers
     *  capture exceptions themselves). */
    void
    dispatch(unsigned n, const std::function<void(unsigned)> &job)
    {
        std::unique_lock<std::mutex> lk(m_);
        job_ = &job;
        active_ = n;
        remaining_ = n;
        ++generation_;
        cv_work_.notify_all();
        cv_done_.wait(lk, [this] { return remaining_ == 0; });
        job_ = nullptr;
    }

  private:
    void
    loop(unsigned id)
    {
        uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(m_);
        for (;;) {
            cv_work_.wait(lk, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            if (id >= active_)
                continue; // not drafted for this dispatch
            const std::function<void(unsigned)> *job = job_;
            lk.unlock();
            (*job)(id);
            lk.lock();
            if (--remaining_ == 0)
                cv_done_.notify_one();
        }
    }

    std::vector<std::thread> threads_;
    std::mutex m_;
    std::condition_variable cv_work_, cv_done_;
    const std::function<void(unsigned)> *job_ = nullptr;
    unsigned active_ = 0;    ///< workers drafted this generation
    unsigned remaining_ = 0; ///< drafted workers still running
    uint64_t generation_ = 0;
    bool stop_ = false;
};

Engine::Engine(const EngineConfig &cfg) : cfg_(cfg)
{
    resolved_threads_ = cfg.threads;
    if (resolved_threads_ == 0) {
        resolved_threads_ = std::thread::hardware_concurrency();
        if (resolved_threads_ == 0)
            resolved_threads_ = 1;
    }
}

Engine::~Engine() = default;

void
Engine::resetWarmCaches() const
{
    std::lock_guard<std::mutex> lk(pool_mutex_);
    for (const std::unique_ptr<bvh::MemoryModel> &m : warm_mems_)
        if (m)
            m->reset();
}

EngineReport
Engine::run(const bvh::Bvh4 &bvh,
            const std::vector<core::Ray> &rays) const
{
    return run(bvh, rays, cfg_.any_hit);
}

EngineReport
Engine::run(const bvh::Bvh4 &bvh, const std::vector<core::Ray> &rays,
            bool any_hit) const
{
    const bool chip_active = cfg_.model == ExecutionModel::CycleAccurate &&
                             cfg_.chip.active();
    if (chip_active && cfg_.warm_cache)
        throw std::invalid_argument(
            "Engine: warm_cache and chip mode are mutually exclusive "
            "(chip batches run cold by construction)");

    EngineReport report;
    report.hits.resize(rays.size());

    const std::vector<core::BatchRange> batches =
        core::sliceBatches(rays.size(), cfg_.batch_size);
    report.batches = batches.size();
    if (batches.empty()) {
        report.threads_used = 0;
        return report;
    }

    unsigned threads = resolved_threads_;
    if (size_t(threads) > batches.size())
        threads = unsigned(batches.size());
    report.threads_used = threads;

    bvh::RtUnitConfig rt_cfg = cfg_.rt;
    rt_cfg.mode = any_hit ? bvh::TraversalMode::Any
                          : bvh::TraversalMode::Closest;

    // Warm-cache mode: make sure every pool worker owns a persistent
    // memory model before any worker needs it. See EngineConfig::
    // warm_cache for the determinism tradeoff this opts into.
    const bool warm =
        cfg_.warm_cache && cfg_.model == ExecutionModel::CycleAccurate;
    if (warm) {
        std::lock_guard<std::mutex> lk(pool_mutex_);
        if (warm_mems_.empty()) {
            warm_mems_.resize(resolved_threads_);
            for (auto &m : warm_mems_)
                m = bvh::makeMemoryModel(cfg_.rt.mem_backend,
                                         cfg_.rt.mem_latency,
                                         cfg_.rt.cache);
        }
    }

    std::atomic<size_t> next_batch{0};
    std::vector<WorkerTally> tallies(threads);
    std::vector<std::exception_ptr> errors(threads);

    auto worker = [&](unsigned wid) {
        try {
            // One unit per claimed batch, freshly constructed: unit
            // evolution then depends only on the batch contents, which
            // is what keeps results independent of the thread count.
            for (size_t bi = next_batch.fetch_add(1);
                 bi < batches.size(); bi = next_batch.fetch_add(1)) {
                const core::BatchRange r = batches[bi];
                if (chip_active) {
                    tallies[wid].unit.merge(runChipBatch(
                        bvh, rt_cfg, cfg_.dp, cfg_.chip,
                        cfg_.max_cycles_per_batch, rays, r,
                        report.hits));
                } else if (cfg_.model == ExecutionModel::CycleAccurate) {
                    core::RayFlexDatapath dp(cfg_.dp);
                    bvh::RtUnit unit(bvh, dp, rt_cfg,
                                     warm ? warm_mems_[wid].get()
                                          : nullptr);
                    for (size_t i = r.begin; i < r.end; ++i)
                        unit.submit(rays[i], uint32_t(i - r.begin));
                    tallies[wid].unit.merge(
                        unit.run(cfg_.max_cycles_per_batch));
                    for (size_t i = r.begin; i < r.end; ++i)
                        report.hits[i] = unit.results()[i - r.begin];
                } else {
                    bvh::Traverser trav(bvh);
                    if (any_hit) {
                        for (size_t i = r.begin; i < r.end; ++i)
                            report.hits[i] =
                                bvh::HitRecord{trav.anyHit(rays[i])};
                    } else {
                        for (size_t i = r.begin; i < r.end; ++i)
                            report.hits[i] = trav.closestHit(rays[i]);
                    }
                    tallies[wid].traversal.merge(trav.stats());
                }
            }
        } catch (...) {
            errors[wid] = std::current_exception();
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    if (threads == 1) {
        if (warm) {
            // Warm runs share per-worker cache state, so even the
            // inline single-worker path must serialize with any
            // concurrent run() of this engine.
            std::lock_guard<std::mutex> lk(pool_mutex_);
            worker(0);
        } else {
            worker(0);
        }
    } else {
        // Concurrent run() calls from different threads serialize here;
        // results are unaffected (work distribution is the atomic batch
        // counter above), only wall-clock overlaps are lost.
        std::lock_guard<std::mutex> lk(pool_mutex_);
        if (!pool_)
            pool_ = std::make_unique<Pool>(resolved_threads_);
        pool_->dispatch(threads, worker);
    }
    const auto t1 = std::chrono::steady_clock::now();
    report.elapsed_seconds =
        std::chrono::duration<double>(t1 - t0).count();

    for (const std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);

    // Merge worker tallies in worker-id order. Any order would give the
    // same counters (sums and maxima commute); a fixed order just makes
    // that property obvious.
    for (const WorkerTally &t : tallies) {
        report.unit.merge(t.unit);
        report.traversal.merge(t.traversal);
    }
    return report;
}

} // namespace rayflex::sim
