/**
 * @file
 * Batch simulation engine implementation.
 *
 * Work distribution is a single atomic batch counter: workers claim the
 * next unclaimed batch index until none remain. Batches are contiguous
 * ray ranges, so each worker writes its hit records into a disjoint
 * slice of the shared output vector without synchronization; statistics
 * are accumulated per worker and merged after the join, which is safe
 * because the merge operation is commutative and associative.
 */
#include "sim/engine.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "bvh/traversal.hh"
#include "core/datapath.hh"

namespace rayflex::sim
{

namespace
{

/** Per-worker accumulator state. */
struct WorkerTally
{
    bvh::RtUnitStats unit;
    bvh::TraversalStats traversal;
};

} // namespace

EngineReport
Engine::run(const bvh::Bvh4 &bvh,
            const std::vector<core::Ray> &rays) const
{
    if (cfg_.any_hit && cfg_.model != ExecutionModel::Functional)
        throw std::invalid_argument(
            "sim::Engine: any_hit requires the Functional model");

    EngineReport report;
    report.hits.resize(rays.size());

    const std::vector<core::BatchRange> batches =
        core::sliceBatches(rays.size(), cfg_.batch_size);
    report.batches = batches.size();
    if (batches.empty()) {
        report.threads_used = 0;
        return report;
    }

    unsigned threads = cfg_.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (size_t(threads) > batches.size())
        threads = unsigned(batches.size());
    report.threads_used = threads;

    std::atomic<size_t> next_batch{0};
    std::vector<WorkerTally> tallies(threads);
    std::vector<std::exception_ptr> errors(threads);

    auto worker = [&](unsigned wid) {
        try {
            // One unit per claimed batch, freshly constructed: unit
            // evolution then depends only on the batch contents, which
            // is what keeps results independent of the thread count.
            for (size_t bi = next_batch.fetch_add(1);
                 bi < batches.size(); bi = next_batch.fetch_add(1)) {
                const core::BatchRange r = batches[bi];
                if (cfg_.model == ExecutionModel::CycleAccurate) {
                    core::RayFlexDatapath dp(cfg_.dp);
                    bvh::RtUnit unit(bvh, dp, cfg_.rt);
                    for (size_t i = r.begin; i < r.end; ++i)
                        unit.submit(rays[i], uint32_t(i - r.begin));
                    tallies[wid].unit.merge(
                        unit.run(cfg_.max_cycles_per_batch));
                    for (size_t i = r.begin; i < r.end; ++i)
                        report.hits[i] = unit.results()[i - r.begin];
                } else {
                    bvh::Traverser trav(bvh);
                    if (cfg_.any_hit) {
                        for (size_t i = r.begin; i < r.end; ++i)
                            report.hits[i] =
                                bvh::HitRecord{trav.anyHit(rays[i])};
                    } else {
                        for (size_t i = r.begin; i < r.end; ++i)
                            report.hits[i] = trav.closestHit(rays[i]);
                    }
                    tallies[wid].traversal.merge(trav.stats());
                }
            }
        } catch (...) {
            errors[wid] = std::current_exception();
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    if (threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned w = 0; w < threads; ++w)
            pool.emplace_back(worker, w);
        for (std::thread &t : pool)
            t.join();
    }
    const auto t1 = std::chrono::steady_clock::now();
    report.elapsed_seconds =
        std::chrono::duration<double>(t1 - t0).count();

    for (const std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);

    // Merge worker tallies in worker-id order. Any order would give the
    // same counters (sums and maxima commute); a fixed order just makes
    // that property obvious.
    for (const WorkerTally &t : tallies) {
        report.unit.merge(t.unit);
        report.traversal.merge(t.traversal);
    }
    return report;
}

} // namespace rayflex::sim
