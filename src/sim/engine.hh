/**
 * @file
 * Sharded multi-threaded batch simulation engine.
 *
 * The paper evaluates one RayFlex datapath at a time; serving a real
 * rendering or search workload means simulating many rays against the
 * same scene, and the cycle-accurate model is embarrassingly parallel
 * across rays as long as each worker owns its own pipeline state. The
 * engine shards a ray workload into fixed batches (core::sliceBatches),
 * runs one bvh::RtUnit + core::RayFlexDatapath - or, in the functional
 * model, one bvh::Traverser - per worker thread against a shared
 * immutable Scene/BVH, and merges the per-batch statistics into an
 * aggregate report.
 *
 * Determinism contract: per-ray hit records and the merged statistics
 * are bit-identical for every thread count. Three properties make this
 * hold, and the engine is structured around them:
 *   1. the batch decomposition depends only on (ray count, batch_size),
 *      never on the worker count;
 *   2. each batch is simulated by a freshly constructed unit whose
 *      evolution depends only on the batch contents and the shared BVH;
 *   3. batch statistics are merged with commutative-associative sums
 *      (RtUnitStats::merge / TraversalStats::merge), so the claim order
 *      of batches by workers cannot change the aggregate.
 */
#ifndef RAYFLEX_SIM_ENGINE_HH
#define RAYFLEX_SIM_ENGINE_HH

#include <cstdint>
#include <vector>

#include "bvh/rt_unit.hh"
#include "core/workloads.hh"

namespace rayflex::sim
{

/** How each batch is evaluated. */
enum class ExecutionModel : uint8_t {
    /** Cycle-accurate: a bvh::RtUnit drives a pipelined datapath, so the
     *  report carries cycle counts, utilization and memory stalls. */
    CycleAccurate,
    /** Functional: a bvh::Traverser invokes the datapath arithmetic
     *  directly (same intersection decisions, no timing). Orders of
     *  magnitude faster; the model for image rendering and validation
     *  sweeps. */
    Functional,
};

/** Engine configuration. */
struct EngineConfig
{
    /** Worker threads; 0 picks std::thread::hardware_concurrency(). */
    unsigned threads = 0;

    /** Rays per batch. The batch layout - not the thread count - is the
     *  unit of work distribution, so changing `threads` never changes
     *  any result. 0 means one batch for the whole workload. */
    size_t batch_size = 1024;

    ExecutionModel model = ExecutionModel::CycleAccurate;

    /** Any-hit (shadow-ray) queries: stop at the first intersection
     *  inside the ray extent instead of resolving the closest one, so
     *  occluded rays cost fewer beats. Functional model only (the
     *  cycle-level RT unit models closest-hit traversal); hit records
     *  carry only the `hit` flag. */
    bool any_hit = false;

    /** Per-worker RT-unit parameters (CycleAccurate model). */
    bvh::RtUnitConfig rt;

    /** Per-worker datapath configuration (CycleAccurate model). */
    core::DatapathConfig dp = core::kBaselineUnified;

    /** Simulation-cycle budget per batch before the run is declared
     *  hung (CycleAccurate model). */
    uint64_t max_cycles_per_batch = 100000000ull;
};

/** Aggregate result of an engine run. */
struct EngineReport
{
    /** Closest-hit records in ray order (parallel to the input). */
    std::vector<bvh::HitRecord> hits;

    /** Merged RT-unit counters (CycleAccurate model). `cycles` is the
     *  sum of simulated cycles across batches - the sequential-machine
     *  cycle count - not wall-clock. */
    bvh::RtUnitStats unit;

    /** Merged traversal counters (Functional model). */
    bvh::TraversalStats traversal;

    size_t batches = 0;
    unsigned threads_used = 0;

    /** Host wall-clock for the sharded run (not part of the determinism
     *  contract). */
    double elapsed_seconds = 0;

    /** Host-side simulation throughput. */
    double
    raysPerSecond() const
    {
        return elapsed_seconds > 0 ? double(hits.size()) / elapsed_seconds
                                   : 0.0;
    }
};

/**
 * The batch simulation engine. Stateless between runs: every run() call
 * re-instantiates its per-worker units, so one engine can serve many
 * scenes and workloads, including concurrently from different threads.
 */
class Engine
{
  public:
    explicit Engine(const EngineConfig &cfg = {}) : cfg_(cfg) {}

    /** Trace every ray against the BVH and merge the statistics.
     *  @throws std::runtime_error when a batch exceeds
     *          max_cycles_per_batch (CycleAccurate model). */
    EngineReport run(const bvh::Bvh4 &bvh,
                     const std::vector<core::Ray> &rays) const;

    const EngineConfig &config() const { return cfg_; }

  private:
    EngineConfig cfg_;
};

} // namespace rayflex::sim

#endif // RAYFLEX_SIM_ENGINE_HH
