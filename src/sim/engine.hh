/**
 * @file
 * Sharded multi-threaded batch simulation engine.
 *
 * The paper evaluates one RayFlex datapath at a time; serving a real
 * rendering or search workload means simulating many rays against the
 * same scene, and the cycle-accurate model is embarrassingly parallel
 * across rays as long as each worker owns its own pipeline state. The
 * engine is the batch-synchronous front of the three-tier stack (job /
 * scheduler / executor — see sim/executor.hh and sim/stream.hh): it
 * shards a ray workload into fixed batches (core::sliceBatches), has
 * each worker thread gather its claimed batch into executor ray refs
 * and run them through one shared sim::BatchExecutor (which constructs
 * a fresh bvh::RtUnit + core::RayFlexDatapath — or, in the functional
 * model, a bvh::Traverser — per batch against the shared immutable
 * Scene/BVH), and merges the per-batch statistics into an aggregate
 * report.
 *
 * Determinism contract: per-ray hit records and the merged statistics
 * are bit-identical for every thread count. Three properties make this
 * hold, and the engine is structured around them:
 *   1. the batch decomposition depends only on (ray count, batch_size),
 *      never on the worker count;
 *   2. each batch is simulated by a freshly constructed unit whose
 *      evolution depends only on the batch contents and the shared BVH;
 *   3. batch statistics are merged with commutative-associative sums
 *      (RtUnitStats::merge / TraversalStats::merge), so the claim order
 *      of batches by workers cannot change the aggregate.
 *
 * Worker threads are persistent: the first multi-threaded run() lazily
 * spawns a pool sized to the configured thread count, and every later
 * run() of the same engine reuses it, so multi-pass scenarios (primary,
 * shadow, ambient-occlusion, bounce batches - see sim/passes.hh) stop
 * paying thread creation per pass. The same pool also executes
 * sim::StreamingService batches (sim/stream.hh). The pool never
 * affects results: work distribution stays the atomic batch counter of
 * point 1 above.
 */
#ifndef RAYFLEX_SIM_ENGINE_HH
#define RAYFLEX_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/workloads.hh"
#include "sim/executor.hh"

namespace rayflex::sim
{

/** Engine configuration. */
struct EngineConfig
{
    /** Worker threads; 0 picks std::thread::hardware_concurrency(). */
    unsigned threads = 0;

    /** Rays per batch. The batch layout - not the thread count - is the
     *  unit of work distribution, so changing `threads` never changes
     *  any result. 0 means one batch for the whole workload. */
    size_t batch_size = 1024;

    ExecutionModel model = ExecutionModel::CycleAccurate;

    /** Any-hit (shadow/occlusion) queries: stop at the first
     *  intersection inside the ray extent [t_beg, t_end] instead of
     *  resolving the closest one. Supported by both execution models:
     *  the Functional model uses Traverser::anyHit, the CycleAccurate
     *  model runs its RT units in bvh::TraversalMode::Any so occlusion
     *  batches can be timed. See EngineReport::hits for the reduced
     *  hit-record contract. */
    bool any_hit = false;

    /** Per-worker RT-unit parameters (CycleAccurate model), including
     *  the memory backend: rt.mem_backend selects the flat-latency
     *  fetch or the set-associative node cache (rt.cache), and every
     *  worker's unit owns a private model instance, so the cached
     *  backend keeps the determinism contract (each batch warms a cold
     *  cache of its own). rt.issue_width widens the datapath (beats
     *  per cycle), rt.mshrs bounds the MSHR file over the unit's
     *  shared L1, and rt.packet configures the wavefront scheduler
     *  (width, compaction threshold); all three default to the
     *  single-issue, unbounded, compaction-off schedule bit-for-bit
     *  and never change hit records. The traversal mode is overridden
     *  from `any_hit`. */
    bvh::RtUnitConfig rt;

    /** Warm-cache batch mode (CycleAccurate model): each worker keeps
     *  ONE persistent MemoryModel that serves every batch it claims,
     *  across run() calls — so in a multi-pass scenario
     *  (sim::renderPasses) the node cache warmed by the primary pass
     *  serves the shadow/AO/bounce passes instead of every batch
     *  starting cold.
     *
     *  Determinism implications (the reason this is opt-in): per-ray
     *  HIT RECORDS remain bit-identical — memory timing never changes
     *  intersection results. But the timing and cache counters now
     *  depend on which worker ran which batch in what order, so they
     *  are reproducible only at threads == 1 (a single worker claims
     *  batches in submission order); at higher thread counts they
     *  legitimately vary run to run. Cold mode (the default) keeps the
     *  full bit-identical-at-every-worker-count contract.
     *
     *  No-op under the Functional model and stateless (FixedLatency)
     *  backends. Warm state lives for the engine's lifetime; see
     *  Engine::resetWarmCaches(). */
    bool warm_cache = false;

    /** Multi-unit chip mode (CycleAccurate model). Inactive by default
     *  (units == 1, L2 off): the engine then runs the single-unit path
     *  bit-for-bit. When active, each batch is simulated by a chip of
     *  `chip.units` lock-stepped RT units over the configured L2 tier;
     *  hit records stay bit-identical to the scalar engine in every
     *  chip configuration (memory timing never changes intersection
     *  results). Mutually exclusive with warm_cache (chip batches run
     *  cold by construction — run() throws std::invalid_argument on
     *  the combination). Ignored by the Functional model, which has no
     *  memory system to share. */
    ChipConfig chip;

    /** Per-worker datapath configuration (CycleAccurate model). */
    core::DatapathConfig dp = core::kBaselineUnified;

    /** Simulation-cycle budget per batch before the run is declared
     *  hung (CycleAccurate model). */
    uint64_t max_cycles_per_batch = 100000000ull;

    /** Collect a deterministic event trace (obs/trace.hh) into
     *  EngineReport::trace: per-batch unit/L2 events rebased onto the
     *  engine's sequential simulated timeline (batch k starts where
     *  batch k-1 ended) and bracketed by BatchStart/BatchEnd. Off (the
     *  default) costs nothing; on, every counter and hit record stays
     *  bit-identical, and the trace itself is bit-identical at every
     *  worker count (batch decomposition and per-batch evolution are
     *  worker-independent; concatenation is in batch order).
     *  CycleAccurate ray runs only — the Functional model has no clock
     *  and runKnn() reports no trace. */
    bool trace = false;
};

/** Aggregate result of an engine run. */
struct EngineReport
{
    /** Hit records in ray order (parallel to the input).
     *
     *  Closest-hit runs fill every field. Any-hit runs
     *  (EngineConfig::any_hit) fill ONLY the `hit` flag: t,
     *  triangle_id and u/v/w stay value-initialized at zero, in both
     *  execution models. The records therefore stay operator==- and
     *  bit-comparable across models, but consumers of an any-hit run
     *  must read nothing beyond the flag. */
    std::vector<bvh::HitRecord> hits;

    /** Merged RT-unit counters (CycleAccurate model). `cycles` is the
     *  sum of simulated cycles across batches - the sequential-machine
     *  cycle count - not wall-clock. `unit.mem` carries the merged
     *  node-cache counters (hits/misses/evictions summed across
     *  batches; all-zero under the flat-latency backend), `unit.mshr`
     *  the merged MSHR-file counters (all-zero when rt.mshrs == 0)
     *  and `unit.packet` the wavefront counters, including
     *  compactions (all-zero in scalar mode). Chip mode adds
     *  `unit.chip_cycles` (lock-step chip ticks summed over batches)
     *  and `unit.l2_banks` (per-bank L2 counters, merged bank-by-bank
     *  across batches); both stay zero/empty when chip is inactive. */
    bvh::RtUnitStats unit;

    /** Merged traversal counters (Functional model). */
    bvh::TraversalStats traversal;

    size_t batches = 0;
    unsigned threads_used = 0;

    /** Cycle-stamped events on the sequential simulated timeline
     *  (EngineConfig::trace); empty with tracing off. Feed to
     *  obs::writeChromeTrace for Perfetto/chrome://tracing. */
    std::vector<obs::TraceRecord> trace;

    /** Host wall-clock for the sharded run (not part of the determinism
     *  contract). */
    double elapsed_seconds = 0;

    /** Host-side simulation throughput. */
    double
    raysPerSecond() const
    {
        return elapsed_seconds > 0 ? double(hits.size()) / elapsed_seconds
                                   : 0.0;
    }
};

/** Aggregate result of an engine k-NN run (Engine::runKnn). */
struct KnnReport
{
    /** Neighbor lists in query order (parallel to the input), each
     *  sorted ascending by (score, id) — bit-identical across worker
     *  counts, execution models and every memory/issue knob. */
    std::vector<bvh::KnnResult> results;

    /** Merged RT-unit counters (CycleAccurate model); `unit.knn`
     *  carries the cycle model's traversal counters. */
    bvh::RtUnitStats unit;

    /** Merged k-NN traversal counters under EITHER model: the
     *  Functional traverser's own counters, or a copy of unit.knn
     *  under CycleAccurate — so consumers can read one field
     *  regardless of model. */
    bvh::KnnStats knn;

    size_t batches = 0;
    unsigned threads_used = 0;

    /** Host wall-clock (not part of the determinism contract). */
    double elapsed_seconds = 0;
};

/**
 * The batch simulation engine. A run() call carries no simulation
 * state in or out: every batch goes through a sim::BatchExecutor that
 * constructs its simulation units fresh, so one engine can serve many
 * scenes and workloads back to back and no run's results depend on a
 * previous run. Two pieces of host-side state DO persist across runs —
 * the worker pool (a pure performance cache) and, only when
 * EngineConfig::warm_cache opts in, the per-worker memory models — and
 * they are why the engine is not copyable. run() stays safe to call
 * from different threads, with concurrent runs serializing on the
 * shared pool (each caller still gets the report of exactly the rays
 * it passed).
 */
class Engine
{
  public:
    explicit Engine(const EngineConfig &cfg = {});
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Trace every ray against the BVH and merge the statistics.
     *  @throws std::runtime_error when a batch exceeds
     *          max_cycles_per_batch (CycleAccurate model). */
    EngineReport run(const bvh::Bvh4 &bvh,
                     const std::vector<core::Ray> &rays) const;

    /** As run(), but overriding EngineConfig::any_hit for this run
     *  only, so one engine - and its persistent worker pool - serves
     *  both the closest-hit and the occlusion passes of a multi-pass
     *  scenario (see sim/passes.hh). */
    EngineReport run(const bvh::Bvh4 &bvh,
                     const std::vector<core::Ray> &rays,
                     bool any_hit) const;

    /**
     * Answer every k-NN query against the index and merge the
     * statistics — the second query kind the engine serves, sharded
     * and merged under exactly the ray contract: batch decomposition
     * independent of the worker count, a fresh unit (or chip) per
     * batch, commutative-associative stats merge, so results AND
     * merged counters are bit-identical at every thread count.
     * EngineConfig::warm_cache is ignored (k-NN batches always run
     * cold); `any_hit` does not apply; chip mode round-robins queries
     * over the units.
     * @throws std::invalid_argument under the CycleAccurate model when
     *         EngineConfig::dp is not an extended config (the distance
     *         opcodes are missing otherwise).
     */
    KnnReport runKnn(const bvh::KnnIndex &index,
                     const std::vector<bvh::KnnQuery> &queries) const;

    const EngineConfig &config() const { return cfg_; }

    /** Drop all warm-cache contents and counters (EngineConfig::
     *  warm_cache), returning every worker to a cold start. Safe to
     *  call between runs; no-op when warm mode never ran. */
    void resetWarmCaches() const;

    /** The executor-tier view of this engine's configuration (what a
     *  sim::BatchExecutor over the same knobs runs). */
    ExecutorConfig executorConfig() const;

  private:
    friend class StreamingService; ///< shares the pool (sim/stream.hh)

    class Pool;

    /** Run job(0)..job(n-1) on the shared worker pool (inline on the
     *  calling thread when n == 1), serializing with other runs on
     *  pool_mutex_; blocks until every worker returned. The inline
     *  n == 1 path takes the mutex only when `serialize_inline` asks
     *  for it (warm-cache runs share per-worker state). */
    void dispatchWorkers(unsigned n,
                         const std::function<void(unsigned)> &job,
                         bool serialize_inline) const;

    EngineConfig cfg_;
    unsigned resolved_threads_ = 1; ///< cfg.threads with 0 resolved

    /** Lazily created on the first run() that needs more than one
     *  worker, then reused by every later run(). */
    mutable std::unique_ptr<Pool> pool_;
    mutable std::mutex pool_mutex_; ///< guards creation and dispatch

    /** Warm-cache mode: one persistent MemoryModel per pool worker
     *  (index = worker id), lazily created on the first warm run and
     *  carried across batches, runs and passes. */
    mutable std::vector<std::unique_ptr<bvh::MemoryModel>> warm_mems_;
};

} // namespace rayflex::sim

#endif // RAYFLEX_SIM_ENGINE_HH
