/**
 * @file
 * Executor-tier implementation: one batch through one fresh unit,
 * chip, or traverser.
 *
 * The submission order is the contract here. The single-unit path
 * submits ref k with local ray id k; the chip path sends ref k to
 * unit k % units with local id k / units (round-robin, so adjacent —
 * typically coherent — rays land on different units and give a shared
 * L2 cross-unit merges to find). Callers that gather a contiguous
 * ray range into refs therefore reproduce the pre-refactor engine
 * schedules bit-for-bit: the unit sees the same rays with the same
 * ids in the same order.
 */
#include "sim/executor.hh"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bvh/traversal.hh"
#include "core/datapath.hh"
#include "pipeline/component.hh"

namespace rayflex::sim
{

BatchExecutor::BatchExecutor(const bvh::Bvh4 &bvh,
                             const ExecutorConfig &cfg)
    : bvh_(bvh), cfg_(cfg)
{
}

BatchExecutor::BatchExecutor(const bvh::KnnIndex &index,
                             const ExecutorConfig &cfg)
    : bvh_(index.bvh), knn_index_(&index), cfg_(cfg)
{
}

bool
BatchExecutor::chipActive() const
{
    return cfg_.model == ExecutionModel::CycleAccurate &&
           cfg_.chip.active();
}

BatchResult
BatchExecutor::runChipBatch(const BatchRayRef *refs, size_t n,
                            const bvh::RtUnitConfig &rt_cfg) const
{
    const unsigned units =
        std::clamp(cfg_.chip.units, 1u, kMaxChipUnits);

    std::vector<std::unique_ptr<core::RayFlexDatapath>> dps;
    std::vector<std::unique_ptr<bvh::RtUnit>> us;
    dps.reserve(units);
    us.reserve(units);
    for (unsigned u = 0; u < units; ++u) {
        dps.push_back(
            std::make_unique<core::RayFlexDatapath>(cfg_.dp));
        us.push_back(
            std::make_unique<bvh::RtUnit>(bvh_, *dps[u], rt_cfg));
    }

    std::unique_ptr<bvh::SharedL2> shared;
    std::vector<std::unique_ptr<bvh::SharedL2>> priv;
    if (cfg_.chip.l2 == L2Mode::Shared) {
        shared = std::make_unique<bvh::SharedL2>(cfg_.chip.l2cfg);
        for (unsigned u = 0; u < units; ++u)
            us[u]->attachSharedL2(shared.get(), u);
    } else if (cfg_.chip.l2 == L2Mode::Private) {
        priv.reserve(units);
        for (unsigned u = 0; u < units; ++u) {
            priv.push_back(
                std::make_unique<bvh::SharedL2>(cfg_.chip.l2cfg));
            // Every unit sits at ring stop 0 of its own private L2:
            // no interconnect sharing to model.
            us[u]->attachSharedL2(priv[u].get(), 0);
        }
    }

    // One sink per batch: the units tick lock-step on this thread, so
    // emission order is deterministic (see BatchResult::trace).
    obs::VectorTraceSink sink;
    if (cfg_.trace) {
        for (unsigned u = 0; u < units; ++u)
            us[u]->attachTrace(&sink, u);
        if (shared)
            shared->setTraceSink(&sink);
    }

    for (size_t k = 0; k < n; ++k)
        us[k % units]->submit(*refs[k].ray, uint32_t(k / units),
                              refs[k].job);

    pipeline::Simulator sim;
    for (auto &u : us)
        u->registerWith(sim);
    for (auto &u : us)
        u->beginRun();

    const auto all_done = [&us] {
        for (const auto &u : us)
            if (!u->done())
                return false;
        return true;
    };
    uint64_t ticks = 0;
    while (!all_done() && ticks < cfg_.max_cycles_per_batch) {
        sim.tick();
        ++ticks;
    }
    if (!all_done())
        throw std::runtime_error(
            "Engine: chip batch exceeded max_cycles_per_batch");

    BatchResult res;
    for (auto &u : us)
        res.unit.merge(u->endRun());
    res.unit.chip_cycles = ticks;
    res.sim_cycles = ticks;
    if (shared) {
        res.unit.l2_banks = shared->bankStats();
    } else {
        for (const auto &p : priv) {
            const std::vector<bvh::L2Stats> &bs = p->bankStats();
            if (res.unit.l2_banks.size() < bs.size())
                res.unit.l2_banks.resize(bs.size());
            for (size_t b = 0; b < bs.size(); ++b)
                res.unit.l2_banks[b].merge(bs[b]);
        }
    }

    for (size_t k = 0; k < n; ++k)
        *refs[k].out = us[k % units]->results()[k / units];
    res.trace = sink.take();
    return res;
}

BatchResult
BatchExecutor::runChipKnnBatch(const KnnBatchRef *refs, size_t n) const
{
    const unsigned units =
        std::clamp(cfg_.chip.units, 1u, kMaxChipUnits);

    std::vector<std::unique_ptr<core::RayFlexDatapath>> dps;
    std::vector<std::unique_ptr<bvh::RtUnit>> us;
    dps.reserve(units);
    us.reserve(units);
    for (unsigned u = 0; u < units; ++u) {
        dps.push_back(
            std::make_unique<core::RayFlexDatapath>(cfg_.dp));
        us.push_back(std::make_unique<bvh::RtUnit>(*knn_index_,
                                                   *dps[u], cfg_.rt));
    }

    std::unique_ptr<bvh::SharedL2> shared;
    std::vector<std::unique_ptr<bvh::SharedL2>> priv;
    if (cfg_.chip.l2 == L2Mode::Shared) {
        shared = std::make_unique<bvh::SharedL2>(cfg_.chip.l2cfg);
        for (unsigned u = 0; u < units; ++u)
            us[u]->attachSharedL2(shared.get(), u);
    } else if (cfg_.chip.l2 == L2Mode::Private) {
        priv.reserve(units);
        for (unsigned u = 0; u < units; ++u) {
            priv.push_back(
                std::make_unique<bvh::SharedL2>(cfg_.chip.l2cfg));
            us[u]->attachSharedL2(priv[u].get(), 0);
        }
    }

    obs::VectorTraceSink sink;
    if (cfg_.trace) {
        for (unsigned u = 0; u < units; ++u)
            us[u]->attachTrace(&sink, u);
        if (shared)
            shared->setTraceSink(&sink);
    }

    // Same round-robin as the ray path: query k goes to unit
    // k % units with local id k / units.
    for (size_t k = 0; k < n; ++k)
        us[k % units]->submitKnn(*refs[k].query, uint32_t(k / units));

    pipeline::Simulator sim;
    for (auto &u : us)
        u->registerWith(sim);
    for (auto &u : us)
        u->beginRun();

    const auto all_done = [&us] {
        for (const auto &u : us)
            if (!u->done())
                return false;
        return true;
    };
    uint64_t ticks = 0;
    while (!all_done() && ticks < cfg_.max_cycles_per_batch) {
        sim.tick();
        ++ticks;
    }
    if (!all_done())
        throw std::runtime_error(
            "Engine: chip k-NN batch exceeded max_cycles_per_batch");

    BatchResult res;
    for (auto &u : us)
        res.unit.merge(u->endRun());
    res.unit.chip_cycles = ticks;
    res.sim_cycles = ticks;
    if (shared) {
        res.unit.l2_banks = shared->bankStats();
    } else {
        for (const auto &p : priv) {
            const std::vector<bvh::L2Stats> &bs = p->bankStats();
            if (res.unit.l2_banks.size() < bs.size())
                res.unit.l2_banks.resize(bs.size());
            for (size_t b = 0; b < bs.size(); ++b)
                res.unit.l2_banks[b].merge(bs[b]);
        }
    }

    for (size_t k = 0; k < n; ++k)
        *refs[k].out = us[k % units]->knnResults()[k / units];
    res.trace = sink.take();
    return res;
}

BatchResult
BatchExecutor::executeKnnBatch(const KnnBatchRef *refs, size_t n) const
{
    if (!knn_index_)
        throw std::logic_error(
            "BatchExecutor::executeKnnBatch: executor was not "
            "constructed over a KnnIndex");

    if (chipActive())
        return runChipKnnBatch(refs, n);

    BatchResult res;
    if (cfg_.model == ExecutionModel::CycleAccurate) {
        core::RayFlexDatapath dp(cfg_.dp);
        bvh::RtUnit unit(*knn_index_, dp, cfg_.rt);
        obs::VectorTraceSink sink;
        if (cfg_.trace)
            unit.attachTrace(&sink, 0);
        for (size_t k = 0; k < n; ++k)
            unit.submitKnn(*refs[k].query, uint32_t(k));
        res.unit = unit.run(cfg_.max_cycles_per_batch);
        res.sim_cycles = res.unit.cycles;
        for (size_t k = 0; k < n; ++k)
            *refs[k].out = unit.knnResults()[k];
        res.trace = sink.take();
    } else {
        bvh::KnnTraversal trav(*knn_index_);
        for (size_t k = 0; k < n; ++k)
            *refs[k].out = trav.search(*refs[k].query);
        res.knn = trav.stats();
        // No clock in the Functional model; charge the idealized
        // one-distance-beat-per-cycle datapath occupancy.
        res.sim_cycles = res.knn.distance_beats;
    }
    return res;
}

BatchResult
BatchExecutor::executeBatch(const BatchRayRef *refs, size_t n,
                            bool any_hit,
                            bvh::MemoryModel *warm) const
{
    bvh::RtUnitConfig rt_cfg = cfg_.rt;
    rt_cfg.mode = any_hit ? bvh::TraversalMode::Any
                          : bvh::TraversalMode::Closest;

    if (chipActive())
        return runChipBatch(refs, n, rt_cfg);

    BatchResult res;
    if (cfg_.model == ExecutionModel::CycleAccurate) {
        core::RayFlexDatapath dp(cfg_.dp);
        bvh::RtUnit unit(bvh_, dp, rt_cfg, warm);
        obs::VectorTraceSink sink;
        if (cfg_.trace)
            unit.attachTrace(&sink, 0);
        for (size_t k = 0; k < n; ++k)
            unit.submit(*refs[k].ray, uint32_t(k), refs[k].job);
        res.unit = unit.run(cfg_.max_cycles_per_batch);
        res.sim_cycles = res.unit.cycles;
        for (size_t k = 0; k < n; ++k)
            *refs[k].out = unit.results()[k];
        res.trace = sink.take();
    } else {
        bvh::Traverser trav(bvh_);
        if (any_hit) {
            for (size_t k = 0; k < n; ++k)
                *refs[k].out =
                    bvh::HitRecord{trav.anyHit(*refs[k].ray)};
        } else {
            for (size_t k = 0; k < n; ++k)
                *refs[k].out = trav.closestHit(*refs[k].ray);
        }
        res.traversal = trav.stats();
        // The Functional model has no clock; charge the streaming
        // timeline its idealized datapath occupancy of one
        // intersection op per cycle.
        res.sim_cycles =
            res.traversal.box_ops + res.traversal.tri_ops;
    }
    return res;
}

} // namespace rayflex::sim
