/**
 * @file
 * Executor tier: one batch of rays through the simulation machinery.
 *
 * The engine stack is three layers (see ARCHITECTURE.md):
 *
 *   job tier        sim::RenderJob / sim::JobQueue     (sim/stream.hh)
 *   scheduler tier  sim::BatchScheduler                (sim/stream.hh)
 *   executor tier   sim::BatchExecutor                 (this file)
 *
 * The executor is the narrow seam everything above shares: it knows
 * how to simulate ONE batch — a flat array of ray references — on a
 * freshly constructed unit (or chip of lock-stepped units, or the
 * functional traverser) and report the batch's stats plus its
 * simulated-cycle cost. It holds no queues, no threads and no
 * cross-batch state, which is what makes every layer above it free to
 * regroup rays (sharded Engine batches, cross-job packed streaming
 * batches) without touching simulation semantics: hit records depend
 * only on (ray, BVH, traversal mode), and each batch's evolution
 * depends only on its own contents.
 */
#ifndef RAYFLEX_SIM_EXECUTOR_HH
#define RAYFLEX_SIM_EXECUTOR_HH

#include <cstdint>

#include "bvh/rt_unit.hh"

namespace rayflex::sim
{

/** How each batch is evaluated. */
enum class ExecutionModel : uint8_t {
    /** Cycle-accurate: a bvh::RtUnit drives a pipelined datapath, so the
     *  report carries cycle counts, utilization and memory stalls. */
    CycleAccurate,
    /** Functional: a bvh::Traverser invokes the datapath arithmetic
     *  directly (same intersection decisions, no timing). Orders of
     *  magnitude faster; the model for image rendering and validation
     *  sweeps. */
    Functional,
};

/** What backs the chip's per-unit L1s in chip mode. */
enum class L2Mode : uint8_t {
    /** No second tier: every unit's L1 terminates at its own latency
     *  (the pre-chip memory path, bit-for-bit at units == 1). */
    Off,
    /** One bvh::SharedL2 serves every unit in the batch: units contend
     *  for banks and merge cross-unit fills — the chip the tentpole
     *  models. */
    Shared,
    /** One private SharedL2 per unit (no contention, no cross-unit
     *  merges): the iso-capacity baseline BM_UnitScalingSweep compares
     *  sharing against. Callers wanting equal total capacity derive
     *  the per-unit geometry with bvh::L2Config::dividedAcross(units),
     *  which rejects a sets count that does not divide evenly. */
    Private,
};

/** Most units a chip batch may step in lock-step. */
inline constexpr unsigned kMaxChipUnits = 16;

/** Multi-unit chip mode (CycleAccurate model). Each batch is run by
 *  `units` RT units stepping in deterministic lock-step under one
 *  pipeline::Simulator: ray i of the batch goes to unit i % units.
 *  The chip is freshly constructed per batch, so sharing is confined
 *  within a batch and the engine's bit-identical-at-every-worker-count
 *  contract holds for hits, timing and every L2 counter. */
struct ChipConfig
{
    /** RT units per chip, clamped to 1..kMaxChipUnits. */
    unsigned units = 1;

    /** Second memory tier behind the per-unit L1s. Only the NodeCache
     *  L1 backend routes misses to it; FixedLatency ignores the tier
     *  (its flat latency already stands in for the whole system). */
    L2Mode l2 = L2Mode::Off;

    /** Geometry and timing of the L2 tier (Shared and Private). */
    bvh::L2Config l2cfg;

    /** True when this config changes anything over the single-unit
     *  engine path (the defaults leave chip mode off). */
    bool
    active() const
    {
        return units > 1 || l2 != L2Mode::Off;
    }
};

/** One ray of a batch, by reference: where to read the ray, where to
 *  write its hit record, and which job (submission stream) it belongs
 *  to. The gather/scatter indirection is what lets the scheduler tier
 *  compose a batch from non-contiguous rays of several jobs while the
 *  executor stays a flat loop. `job` feeds bvh::PendingRay tagging
 *  (cross-job fetch-share accounting) and never affects results. */
struct BatchRayRef
{
    const core::Ray *ray = nullptr;
    bvh::HitRecord *out = nullptr;
    uint32_t job = 0;
};

/** One k-NN query of a batch, by reference: where to read the query
 *  and where to write its neighbor list. The k-NN analogue of
 *  BatchRayRef. */
struct KnnBatchRef
{
    const bvh::KnnQuery *query = nullptr;
    bvh::KnnResult *out = nullptr;
};

/** What one executed batch reports back. */
struct BatchResult
{
    /** Unit counters (CycleAccurate; zero under Functional). For k-NN
     *  batches the traversal counters ride in `unit.knn`. */
    bvh::RtUnitStats unit;
    /** Traversal counters (Functional; zero under CycleAccurate). */
    bvh::TraversalStats traversal;
    /** k-NN traversal counters (Functional k-NN batches; zero
     *  elsewhere — CycleAccurate k-NN counters live in unit.knn). */
    bvh::KnnStats knn;
    /** Simulated cycles this batch occupied the executor: lock-step
     *  chip ticks in chip mode, unit cycles single-unit, and the
     *  idealized one-op-per-cycle datapath ops (box + triangle) under
     *  the Functional model. The scheduler tier's simulated timeline
     *  charges each batch exactly this. */
    uint64_t sim_cycles = 0;

    /** Cycle-stamped events of this batch (ExecutorConfig::trace, on
     *  the batch-local clock starting at 0); empty with tracing off or
     *  under the Functional model. A chip batch's units share one sink
     *  and tick lock-step on one thread, so the order is deterministic
     *  and the engine's bit-identity contract extends to the trace. */
    std::vector<obs::TraceRecord> trace;
};

/** Executor configuration: everything the simulation of one batch
 *  depends on. Mirrors the simulation-relevant subset of
 *  sim::EngineConfig (which embeds one). */
struct ExecutorConfig
{
    ExecutionModel model = ExecutionModel::CycleAccurate;

    /** Per-batch RT-unit parameters (CycleAccurate); `rt.mode` is
     *  overridden per batch from executeBatch()'s any_hit. */
    bvh::RtUnitConfig rt;

    /** Per-batch datapath configuration (CycleAccurate). */
    core::DatapathConfig dp = core::kBaselineUnified;

    /** Multi-unit chip mode; inactive by default. */
    ChipConfig chip;

    /** Simulation-cycle budget per batch before the run is declared
     *  hung (CycleAccurate model). */
    uint64_t max_cycles_per_batch = 100000000ull;

    /** Collect deterministic event traces (obs/trace.hh) into
     *  BatchResult::trace. CycleAccurate only; off (the default) costs
     *  nothing and leaves every counter bit-identical. Events from a
     *  Private-L2 chip's banks are not collected (their per-unit bank
     *  ids would alias on one track); the Shared L2 is. */
    bool trace = false;
};

/**
 * The executor: simulates one batch at a time, statelessly. Safe to
 * share across worker threads — executeBatch() touches nothing but its
 * arguments and freshly constructed locals, so any number of workers
 * may execute distinct batches of one executor concurrently.
 */
class BatchExecutor
{
  public:
    BatchExecutor(const bvh::Bvh4 &bvh, const ExecutorConfig &cfg);

    /** k-NN executor: batches are k-NN queries against `index`
     *  (executeKnnBatch) instead of rays. The ray path stays available
     *  over index.bvh, though a k-NN executor is normally used for one
     *  kind of batch only. The index must outlive the executor. */
    BatchExecutor(const bvh::KnnIndex &index, const ExecutorConfig &cfg);

    /** True when the config routes batches through the lock-step chip
     *  path (CycleAccurate with an active ChipConfig). */
    bool chipActive() const;

    /**
     * Simulate `n` rays as one batch. Hit records are scattered
     * through the refs' `out` pointers; any-hit batches fill only the
     * `hit` flag (the usual reduced-record contract).
     *
     * @param warm Optional persistent MemoryModel for the warm-cache
     *        batch mode (single-unit CycleAccurate only): the unit
     *        serves fetches from it instead of a cold private model.
     * @throws std::runtime_error when the batch exceeds
     *         max_cycles_per_batch (CycleAccurate model).
     */
    BatchResult executeBatch(const BatchRayRef *refs, size_t n,
                             bool any_hit,
                             bvh::MemoryModel *warm = nullptr) const;

    /**
     * Simulate `n` k-NN queries as one batch (k-NN executors only).
     * Results scatter through the refs' `out` pointers. Batches always
     * run cold — there is no warm-cache path for k-NN. Chip mode
     * round-robins queries over the units exactly as the ray path
     * round-robins rays.
     * @throws std::logic_error when this executor was not constructed
     *         over a KnnIndex.
     * @throws std::runtime_error when the batch exceeds
     *         max_cycles_per_batch (CycleAccurate model).
     */
    BatchResult executeKnnBatch(const KnnBatchRef *refs,
                                size_t n) const;

    const ExecutorConfig &config() const { return cfg_; }

  private:
    BatchResult runChipBatch(const BatchRayRef *refs, size_t n,
                             const bvh::RtUnitConfig &rt_cfg) const;
    BatchResult runChipKnnBatch(const KnnBatchRef *refs,
                                size_t n) const;

    const bvh::Bvh4 &bvh_;
    const bvh::KnnIndex *knn_index_ = nullptr;
    ExecutorConfig cfg_;
};

} // namespace rayflex::sim

#endif // RAYFLEX_SIM_EXECUTOR_HH
