/**
 * @file
 * Multi-pass scenario orchestration.
 *
 * Pass structure: (1) primary closest-hit; a shading prologue derives
 * the surface frame (hit point, geometric normal flipped toward the
 * viewer) per hit pixel from the shared triangle data; (2) shadow
 * any-hit; (3) ambient-occlusion any-hit fans; (4) one-bounce mirror
 * closest-hit. Secondary batches are kept in pixel order, so every
 * pass writes disjoint, deterministic slices of the per-pixel outputs.
 */
#include "sim/passes.hh"

#include <algorithm>
#include <unordered_map>

namespace rayflex::sim
{

using bvh::SceneTriangle;
using bvh::Vec3;
using core::Float3;
using core::Ray;
using core::RayGen;

namespace
{

Float3
toFloat3(Vec3 v)
{
    return {v.x, v.y, v.z};
}

/** Accumulate one engine pass into the report totals. */
void
foldPass(PassesReport &rep, const EngineReport &pass)
{
    rep.traversal.merge(pass.traversal);
    rep.unit.merge(pass.unit);
    rep.total_rays += pass.hits.size();
    rep.elapsed_seconds += pass.elapsed_seconds;
}

/** Run the optional k-NN ride-along pass (PassConfig::knn_index) and
 *  fold its counters into the report totals. */
void
foldKnn(PassesReport &rep, const Engine &engine, const PassConfig &cfg)
{
    if (!cfg.knn_index)
        return;
    rep.knn = engine.runKnn(*cfg.knn_index, cfg.knn_queries);
    rep.unit.merge(rep.knn.unit);
    rep.elapsed_seconds += rep.knn.elapsed_seconds;
}

/** Triangle lookup by id. Ids survive the builder's reordering but
 *  nothing in Bvh4 makes them dense 0..n-1, so the table is sized by
 *  the maximum id actually present — falling back to a hash map when
 *  the id space is too sparse for a direct table to be reasonable. */
class TriById
{
  public:
    explicit TriById(const std::vector<bvh::SceneTriangle> &tris)
    {
        uint32_t max_id = 0;
        for (const bvh::SceneTriangle &t : tris)
            max_id = std::max(max_id, t.id);
        // A dense table up to ~8x the triangle count stays cheap; a
        // sparser id space (e.g. ids minted from a global counter)
        // switches to the map rather than allocating by max id.
        if (tris.empty() ||
            uint64_t(max_id) < 8 * uint64_t(tris.size()) + 1024) {
            table_.resize(tris.empty() ? 0 : size_t(max_id) + 1,
                          nullptr);
            for (const bvh::SceneTriangle &t : tris)
                table_[t.id] = &t;
        } else {
            map_.reserve(tris.size());
            for (const bvh::SceneTriangle &t : tris)
                map_.emplace(t.id, &t);
        }
    }

    const bvh::SceneTriangle *
    operator[](uint32_t id) const
    {
        if (!table_.empty() || map_.empty())
            return id < table_.size() ? table_[id] : nullptr;
        auto it = map_.find(id);
        return it == map_.end() ? nullptr : it->second;
    }

  private:
    std::vector<const bvh::SceneTriangle *> table_;
    std::unordered_map<uint32_t, const bvh::SceneTriangle *> map_;
};

} // namespace

PassesReport
renderPasses(const Engine &engine, const bvh::Bvh4 &bvh,
             const PassConfig &cfg)
{
    PassesReport rep;
    const size_t n_px = size_t(cfg.camera.width) * cfg.camera.height;
    const Vec3 light = bvh::normalize(
        Vec3{cfg.light_dir[0], cfg.light_dir[1], cfg.light_dir[2]});
    RayGen gen(cfg.seed);

    // ---- pass 1: primary closest-hit --------------------------------
    const std::vector<Ray> primary =
        RayGen::primaryRays(cfg.camera, cfg.t_max);
    rep.primary = engine.run(bvh, primary, false);
    foldPass(rep, rep.primary);

    // Triangle lookup by id (ids survive the builder's reordering and
    // need not be dense).
    const TriById by_id(bvh.tris);

    // ---- shading prologue: surface frames, secondary batches --------
    rep.diffuse.assign(n_px, 0.0f);
    rep.lit.assign(n_px, uint8_t{1});
    rep.ao_open.assign(n_px, 1.0f);
    rep.bounce_hits.assign(n_px, bvh::HitRecord{});

    std::vector<Ray> shadow_rays, ao_rays, bounce_rays;
    std::vector<size_t> shadow_px, ao_px, bounce_px; // ray -> pixel
    for (size_t i = 0; i < n_px; ++i) {
        const bvh::HitRecord &hit = rep.primary.hits[i];
        if (!hit.hit)
            continue;
        const Ray &ray = primary[i];
        const SceneTriangle *tri = by_id[hit.triangle_id];
        Vec3 n = normalize(cross(tri->v1 - tri->v0, tri->v2 - tri->v0));
        Vec3 org{fp::fromBits(ray.origin[0]), fp::fromBits(ray.origin[1]),
                 fp::fromBits(ray.origin[2])};
        Vec3 dir{fp::fromBits(ray.dir[0]), fp::fromBits(ray.dir[1]),
                 fp::fromBits(ray.dir[2])};
        if (dot(n, dir) > 0)
            n = n * -1.0f;
        Vec3 p = org + dir * hit.t;
        rep.diffuse[i] = std::max(0.0f, dot(n, light));

        shadow_rays.push_back(RayGen::shadowRay(
            toFloat3(p), toFloat3(n), toFloat3(light), cfg.eps,
            cfg.t_max));
        shadow_px.push_back(i);
        if (cfg.ao_samples > 0) {
            gen.appendAoFan(ao_rays, toFloat3(p), toFloat3(n),
                            cfg.ao_samples, cfg.eps, cfg.ao_radius);
            ao_px.push_back(i);
        }
        if (cfg.bounce) {
            bounce_rays.push_back(RayGen::bounceRay(
                toFloat3(p), toFloat3(n), toFloat3(dir), cfg.eps,
                cfg.t_max));
            bounce_px.push_back(i);
        }
    }

    // The reductions below consume nothing but hit flags/records, so
    // they are shared between the sequential and streaming paths.
    const auto reduceShadow = [&](const std::vector<bvh::HitRecord>
                                      &hits) {
        for (size_t s = 0; s < shadow_px.size(); ++s)
            rep.lit[shadow_px[s]] = hits[s].hit ? 0 : 1;
    };
    const auto reduceAo = [&](const std::vector<bvh::HitRecord> &hits) {
        for (size_t f = 0; f < ao_px.size(); ++f) {
            unsigned occluded = 0;
            for (unsigned s = 0; s < cfg.ao_samples; ++s)
                occluded += hits[f * cfg.ao_samples + s].hit ? 1 : 0;
            rep.ao_open[ao_px[f]] =
                1.0f - float(occluded) / float(cfg.ao_samples);
        }
    };
    const auto reduceBounce = [&](const std::vector<bvh::HitRecord>
                                      &hits) {
        for (size_t b = 0; b < bounce_px.size(); ++b)
            rep.bounce_hits[bounce_px[b]] = hits[b];
    };

    if (cfg.stream_secondary) {
        // The secondary passes become CONCURRENT jobs on the streaming
        // service: both occlusion batches (shadow + AO) are any-hit
        // and pack into shared batches, the mirror batch runs
        // closest-hit in its own. Hit records — and therefore every
        // per-pixel output — are bit-identical to the sequential
        // branch below; only timing attribution changes (merged in
        // rep.stream rather than per pass).
        std::vector<RenderJob> jobs;
        jobs.push_back({1, 0, true, std::move(shadow_rays)});
        if (cfg.ao_samples > 0)
            jobs.push_back({2, 0, true, std::move(ao_rays)});
        if (cfg.bounce)
            jobs.push_back({3, 0, false, std::move(bounce_rays)});
        rep.stream = StreamingService::run(engine, bvh,
                                           std::move(jobs), cfg.stream);
        rep.traversal.merge(rep.stream.traversal);
        rep.unit.merge(rep.stream.unit);
        rep.total_rays += rep.stream.total_rays;
        rep.elapsed_seconds += rep.stream.elapsed_seconds;

        reduceShadow(rep.stream.job(1)->hits);
        if (cfg.ao_samples > 0)
            reduceAo(rep.stream.job(2)->hits);
        if (cfg.bounce)
            reduceBounce(rep.stream.job(3)->hits);
        // The raw records were reduced into the per-pixel arrays;
        // release them as the sequential branch does.
        for (JobReport &j : rep.stream.jobs)
            j.hits = {};
        foldKnn(rep, engine, cfg);
        return rep;
    }

    // ---- pass 2: shadow any-hit (only the flag is defined) ----------
    rep.shadow = engine.run(bvh, shadow_rays, true);
    foldPass(rep, rep.shadow);
    reduceShadow(rep.shadow.hits);
    rep.shadow.hits = {}; // reduced into lit; release the raw records

    // ---- pass 3: ambient-occlusion any-hit fans ---------------------
    if (cfg.ao_samples > 0) {
        rep.ao = engine.run(bvh, ao_rays, true);
        foldPass(rep, rep.ao);
        reduceAo(rep.ao.hits);
        rep.ao.hits = {}; // reduced into ao_open
    }

    // ---- pass 4: one-bounce mirror closest-hit ----------------------
    if (cfg.bounce) {
        rep.bounce = engine.run(bvh, bounce_rays, false);
        foldPass(rep, rep.bounce);
        reduceBounce(rep.bounce.hits);
        rep.bounce.hits = {}; // rehomed per pixel in bounce_hits
    }

    foldKnn(rep, engine, cfg);
    return rep;
}

} // namespace rayflex::sim
