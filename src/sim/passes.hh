/**
 * @file
 * Multi-pass secondary-ray scenarios on top of sim::Engine.
 *
 * A rendered frame is several engine runs against one BVH: a
 * closest-hit pass for the camera rays, then occlusion passes (shadow
 * rays toward the light, ambient-occlusion fans) and an optional
 * one-bounce mirror pass, all generated deterministically by
 * core::RayGen from the primary hit points. renderPasses() owns that
 * orchestration - previously hand-rolled in examples/render_scene.cpp -
 * and reuses the caller's engine, so every pass runs on the same
 * persistent worker pool.
 *
 * Determinism: the ray batches are pure functions of (camera, light,
 * seed, primary hits) and every engine run is bit-identical at every
 * thread count, so the whole PassesReport inherits the engine's
 * determinism contract.
 *
 * Occlusion passes run the engine in any-hit mode; per the
 * EngineReport::hits contract their records carry only the `hit` flag,
 * and this module consumes nothing else from them.
 */
#ifndef RAYFLEX_SIM_PASSES_HH
#define RAYFLEX_SIM_PASSES_HH

#include <cstdint>
#include <vector>

#include "core/raygen.hh"
#include "sim/engine.hh"
#include "sim/stream.hh"

namespace rayflex::sim
{

/** Configuration of a multi-pass scenario run. */
struct PassConfig
{
    core::Pinhole camera;

    /** Extent upper bound for primary, shadow and bounce rays. */
    float t_max = 1000.0f;

    /** Directional light; normalized internally. */
    core::Float3 light_dir{0.5f, 1.0f, 0.3f};

    /** Self-intersection guard: secondary-ray origins are offset by
     *  eps along the surface normal and their extents start at
     *  t_beg = eps (which is why every traversal path must honor the
     *  lower extent bound). */
    float eps = 1e-3f;

    /** Ambient-occlusion rays per hit pixel; 0 disables the AO pass. */
    unsigned ao_samples = 0;

    /** Upper extent bound of AO rays (the occlusion neighborhood). */
    float ao_radius = 1.0f;

    /** Emit a one-bounce mirror pass. */
    bool bounce = false;

    /** Seed for the AO fan azimuth (core::RayGen). */
    uint64_t seed = 1;

    /** Run the secondary passes as concurrent streaming JOBS through
     *  sim::StreamingService instead of sequential engine runs: the
     *  shadow batch (job id 1) and AO fans (job id 2) are both any-hit
     *  and pack into shared batches (cross-job packet formation); the
     *  bounce batch (job id 3) runs closest-hit in its own batches.
     *  Per-pixel outputs (diffuse/lit/ao_open/bounce_hits) are
     *  bit-identical to the sequential path — hit records depend only
     *  on (ray, BVH, mode) — but the per-pass EngineReports
     *  shadow/ao/bounce stay empty: mixed batches cannot be attributed
     *  to one pass, so the counters land merged in
     *  PassesReport::stream (and the report totals) instead. */
    bool stream_secondary = false;

    /** Scheduler knobs for stream_secondary (batch size, cross-job
     *  packing, queue bound). */
    StreamConfig stream;

    /** Optional k-NN ride-along: when set, the scenario finishes with
     *  an Engine::runKnn pass answering `knn_queries` against this
     *  index on the same engine (and persistent worker pool) as the
     *  ray passes. Results and counters land in PassesReport::knn; the
     *  index must outlive the renderPasses() call. Under the
     *  CycleAccurate model the engine's datapath config must be an
     *  extended one (runKnn throws otherwise). */
    const bvh::KnnIndex *knn_index = nullptr;

    /** Queries for the k-NN ride-along; ignored without knn_index. */
    std::vector<bvh::KnnQuery> knn_queries;
};

/** Aggregate of a multi-pass scenario run. The per-pixel vectors are
 *  sized width*height in row-major pixel order. */
struct PassesReport
{
    /** Closest-hit camera rays; `hits` is the per-pixel result. */
    EngineReport primary;
    /** Secondary-pass reports. Their per-ray `hits` vectors are
     *  released after being reduced into the per-pixel arrays below
     *  (an AO pass alone is pixels*ao_samples records); the batch
     *  counts, timings and merged statistics remain. */
    EngineReport shadow;  ///< any-hit shadow batch
    EngineReport ao;      ///< any-hit AO fans
    EngineReport bounce;  ///< closest-hit mirror batch

    std::vector<float> diffuse;  ///< Lambert term; 0 for miss pixels
    std::vector<uint8_t> lit;    ///< 1 = light visible from the hit
    std::vector<float> ao_open;  ///< unoccluded AO-fan fraction
    std::vector<bvh::HitRecord> bounce_hits; ///< mirror hit per pixel

    /** Merged traversal counters across all passes (Functional). */
    bvh::TraversalStats traversal;
    /** Merged RT-unit counters across all passes (CycleAccurate);
     *  includes the node-cache counters in `unit.mem` when the engine
     *  runs the cached memory backend, the MSHR-file counters in
     *  `unit.mshr` when it bounds one, and the packet/compaction
     *  counters in `unit.packet` when it packetizes. */
    bvh::RtUnitStats unit;

    uint64_t total_rays = 0;
    double elapsed_seconds = 0; ///< sum of the passes' engine times

    /** Streaming-mode report (PassConfig::stream_secondary): per-job
     *  simulated latencies and the merged counters of the secondary
     *  jobs. Empty when streaming is off. */
    StreamReport stream;

    /** k-NN ride-along report (PassConfig::knn_index): neighbor lists
     *  for knn_queries plus the merged k-NN traversal counters. Its
     *  unit counters fold into `unit` and its wall-clock into
     *  elapsed_seconds. Empty when no index was configured. */
    KnnReport knn;
};

/**
 * Run the scenario: primary pass, shadow pass, then (when configured)
 * AO and bounce passes, all through `engine` against `bvh`. Pixels the
 * primary pass missed keep diffuse = 0, lit = 1, ao_open = 1 and a
 * miss bounce record.
 */
PassesReport renderPasses(const Engine &engine, const bvh::Bvh4 &bvh,
                          const PassConfig &cfg);

} // namespace rayflex::sim

#endif // RAYFLEX_SIM_PASSES_HH
