/**
 * @file
 * Streaming service implementation: plan, double-buffered execute,
 * simulated timeline.
 *
 * finish() is three deterministic phases. PLAN: the sorted job list
 * goes through BatchScheduler::plan, a pure function. EXECUTE: every
 * planned batch is gathered into executor refs and run on a freshly
 * constructed unit (sim::BatchExecutor); with multiple workers a
 * filler thread builds gather arrays ahead of the executing workers
 * through a bounded channel (double-buffered fill), and per-batch
 * results land in a slot indexed by plan order — so neither the
 * channel timing nor the worker count can influence any result.
 * TIMELINE: batches are charged sequentially in plan order
 * (start = max(previous end, ready tick), end = start + the batch's
 * simulated cycles) and per-job latencies read off that timeline.
 */
#include "sim/stream.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "obs/histogram.hh"

namespace rayflex::sim
{

std::vector<PlannedBatch>
BatchScheduler::plan(const std::vector<RenderJob> &jobs) const
{
    std::vector<PlannedBatch> plans;
    const size_t n = jobs.size();
    const size_t bs = cfg_.batch_size ? cfg_.batch_size
                                      : std::numeric_limits<size_t>::max();

    std::vector<size_t> cursor(n, 0);
    size_t remaining = 0;
    for (const RenderJob &j : jobs)
        remaining += j.rays.size();
    if (remaining == 0)
        return plans;

    // The virtual formation clock: starts at the first arrival and
    // advances at the configured planning rate per scheduled ray.
    uint64_t v = jobs.front().arrival_tick;

    std::vector<uint32_t> eligible; // job indices, (arrival, id) order
    while (remaining > 0) {
        // In-flight jobs: arrived by `v`, rays left. The list is in
        // sorted order because the jobs are.
        eligible.clear();
        uint64_t next_arrival = 0;
        bool have_next = false;
        for (uint32_t j = 0; j < n; ++j) {
            if (cursor[j] >= jobs[j].rays.size())
                continue;
            if (jobs[j].arrival_tick <= v) {
                eligible.push_back(j);
            } else if (!have_next ||
                       jobs[j].arrival_tick < next_arrival) {
                next_arrival = jobs[j].arrival_tick;
                have_next = true;
            }
        }
        if (eligible.empty()) {
            // Idle gap: jump to the next arrival.
            v = next_arrival;
            continue;
        }

        // The earliest in-flight job sets the batch mode; only jobs of
        // that mode may share the batch (one traversal mode per unit
        // run). With packing off the earliest job IS the batch — the
        // head-of-line-blocking baseline.
        const bool mode = jobs[eligible.front()].any_hit;
        std::erase_if(eligible, [&](uint32_t j) {
            return jobs[j].any_hit != mode;
        });
        if (!cfg_.cross_job_packing)
            eligible.resize(1);

        PlannedBatch b;
        b.any_hit = mode;
        // Round-robin one ray per job per round: rays of different
        // jobs interleave, so adjacent refill-queue neighbours — the
        // rays packet formation groups — come from different jobs.
        bool progressed = true;
        while (b.rays.size() < bs && progressed) {
            progressed = false;
            for (uint32_t j : eligible) {
                if (cursor[j] >= jobs[j].rays.size() ||
                    b.rays.size() >= bs)
                    continue;
                b.rays.emplace_back(j, uint32_t(cursor[j]++));
                progressed = true;
            }
        }

        uint64_t ready = 0;
        uint32_t prev_job = ~0u;
        std::vector<uint32_t> seen;
        for (const auto &[j, ri] : b.rays) {
            (void)ri;
            if (j != prev_job &&
                std::find(seen.begin(), seen.end(), j) == seen.end())
                seen.push_back(j);
            prev_job = j;
            ready = std::max(ready, jobs[j].arrival_tick);
        }
        b.ready_tick = ready;
        b.n_jobs = seen.size();

        remaining -= b.rays.size();
        v += uint64_t(b.rays.size()) * cfg_.plan_cycles_per_ray;
        plans.push_back(std::move(b));
    }
    return plans;
}

namespace
{

/** One gathered batch in flight from the filler to a worker. */
struct FilledBatch
{
    size_t index = 0;
    bool any_hit = false;
    std::vector<BatchRayRef> refs;
};

} // namespace

StreamingService::StreamingService(const Engine &engine,
                                   const StreamConfig &cfg)
    : engine_(engine), cfg_(cfg), queue_(cfg.queue_capacity)
{
    if (engine_.config().warm_cache)
        throw std::invalid_argument(
            "StreamingService: warm_cache engines are not streamable "
            "(persistent per-worker cache state breaks the "
            "bit-identical-at-every-worker-count contract)");
    // The collector drains the bounded queue into the job table as
    // submissions arrive, so back-pressure engages only when
    // submitters outrun the drain by queue_capacity jobs.
    collector_ = std::thread([this] {
        while (std::optional<RenderJob> job = queue_.pop())
            jobs_.push_back(std::move(*job));
    });
}

StreamingService::~StreamingService()
{
    queue_.close();
    if (collector_.joinable())
        collector_.join();
}

void
StreamingService::submit(RenderJob job)
{
    if (!queue_.push(std::move(job)))
        throw std::logic_error(
            "StreamingService: submit after finish");
}

StreamReport
StreamingService::finish(const bvh::Bvh4 &bvh)
{
    if (finished_)
        throw std::logic_error(
            "StreamingService: finish called twice");
    finished_ = true;
    queue_.close();
    collector_.join();

    {
        std::unordered_set<uint64_t> ids;
        for (const RenderJob &j : jobs_)
            if (!ids.insert(j.id).second)
                throw std::invalid_argument(
                    "StreamingService: duplicate job id");
    }

    // The canonical job order — and the only order anything below
    // depends on — is the schedule itself, not submission timing.
    std::stable_sort(jobs_.begin(), jobs_.end(),
                     [](const RenderJob &a, const RenderJob &b) {
                         return a.arrival_tick != b.arrival_tick
                                    ? a.arrival_tick < b.arrival_tick
                                    : a.id < b.id;
                     });

    const std::vector<PlannedBatch> plans =
        BatchScheduler(cfg_).plan(jobs_);

    StreamReport rep;
    rep.batches = plans.size();
    rep.jobs.resize(jobs_.size());
    for (size_t j = 0; j < jobs_.size(); ++j) {
        JobReport &jr = rep.jobs[j];
        jr.id = jobs_[j].id;
        jr.arrival_tick = jobs_[j].arrival_tick;
        jr.any_hit = jobs_[j].any_hit;
        jr.first_service_tick = jobs_[j].arrival_tick;
        jr.completion_tick = jobs_[j].arrival_tick;
        jr.hits.resize(jobs_[j].rays.size());
        rep.total_rays += jobs_[j].rays.size();
    }

    const BatchExecutor exec(bvh, engine_.executorConfig());
    std::vector<BatchResult> results(plans.size());

    unsigned threads = engine_.resolved_threads_;
    if (size_t(threads) > plans.size())
        threads = unsigned(plans.size());
    rep.threads_used = threads;

    const auto gather = [&](size_t bi, std::vector<BatchRayRef> &refs) {
        const PlannedBatch &b = plans[bi];
        refs.resize(b.rays.size());
        for (size_t k = 0; k < b.rays.size(); ++k) {
            const auto [j, ri] = b.rays[k];
            refs[k] = {&jobs_[j].rays[ri], &rep.jobs[j].hits[ri], j};
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    if (threads <= 1) {
        std::vector<BatchRayRef> refs;
        for (size_t bi = 0; bi < plans.size(); ++bi) {
            gather(bi, refs);
            results[bi] = exec.executeBatch(refs.data(), refs.size(),
                                            plans[bi].any_hit);
        }
    } else {
        // Double-buffered fill: the filler builds gather arrays ahead
        // of the executing workers, bounded so it never runs away.
        // Results land in plan-order slots, so channel and worker
        // timing cannot reach any reported number.
        BoundedQueue<FilledBatch> channel(size_t(threads) * 2);
        std::exception_ptr fill_error;
        std::thread filler([&] {
            try {
                for (size_t bi = 0; bi < plans.size(); ++bi) {
                    FilledBatch f;
                    f.index = bi;
                    f.any_hit = plans[bi].any_hit;
                    gather(bi, f.refs);
                    if (!channel.push(std::move(f)))
                        break; // closed early: a worker failed
                }
            } catch (...) {
                fill_error = std::current_exception();
            }
            channel.close();
        });

        std::vector<std::exception_ptr> errors(threads);
        std::atomic<bool> abort{false};
        engine_.dispatchWorkers(
            threads,
            [&](unsigned wid) {
                while (std::optional<FilledBatch> f = channel.pop()) {
                    if (abort.load(std::memory_order_relaxed))
                        continue; // drain so the filler never blocks
                    try {
                        results[f->index] = exec.executeBatch(
                            f->refs.data(), f->refs.size(),
                            f->any_hit);
                    } catch (...) {
                        errors[wid] = std::current_exception();
                        abort.store(true,
                                    std::memory_order_relaxed);
                    }
                }
            },
            false);
        channel.close();
        filler.join();
        if (fill_error)
            std::rethrow_exception(fill_error);
        for (const std::exception_ptr &e : errors)
            if (e)
                std::rethrow_exception(e);
    }
    const auto t1 = std::chrono::steady_clock::now();
    rep.elapsed_seconds =
        std::chrono::duration<double>(t1 - t0).count();

    // Merge batch statistics in plan order (any order would give the
    // same sums; a fixed order makes that obvious).
    for (const BatchResult &r : results) {
        rep.unit.merge(r.unit);
        rep.traversal.merge(r.traversal);
    }

    const bool tracing =
        engine_.config().trace &&
        engine_.config().model == ExecutionModel::CycleAccurate;
    if (tracing)
        for (size_t j = 0; j < jobs_.size(); ++j)
            rep.trace.push_back({jobs_[j].arrival_tick, 0,
                                 obs::TraceEvent::JobSubmit,
                                 jobs_[j].id,
                                 uint64_t(jobs_[j].rays.size())});

    // The simulated timeline: sequential-machine semantics. Batch bi
    // starts when the previous batch drained and its own contributors
    // have all arrived. Each batch's executor trace (batch-local
    // clock) is rebased to its timeline start here, so the stream
    // trace shares the tick axis with every latency it reports.
    std::vector<obs::Histogram> raylat(jobs_.size());
    std::vector<uint64_t> count(jobs_.size(), 0);
    std::vector<uint32_t> touched;
    std::vector<bool> first_seen(jobs_.size(), false);
    uint64_t prev_end = 0;
    for (size_t bi = 0; bi < plans.size(); ++bi) {
        const PlannedBatch &b = plans[bi];
        const uint64_t start = std::max(prev_end, b.ready_tick);
        const uint64_t end = start + results[bi].sim_cycles;
        prev_end = end;

        if (tracing) {
            rep.trace.push_back({start, 0, obs::TraceEvent::BatchStart,
                                 uint64_t(bi),
                                 uint64_t(b.rays.size())});
            for (obs::TraceRecord rec : results[bi].trace) {
                rec.cycle += start;
                rep.trace.push_back(rec);
            }
            rep.trace.push_back({end, 0, obs::TraceEvent::BatchEnd,
                                 uint64_t(bi),
                                 uint64_t(b.rays.size())});
        }

        touched.clear();
        for (const auto &[j, ri] : b.rays) {
            (void)ri;
            if (count[j]++ == 0)
                touched.push_back(j);
        }
        for (uint32_t j : touched) {
            JobReport &jr = rep.jobs[j];
            if (!first_seen[j]) {
                first_seen[j] = true;
                jr.first_service_tick = start;
            }
            jr.completion_tick = std::max(jr.completion_tick, end);
            ++jr.batches;
            if (b.n_jobs > 1)
                ++jr.shared_batches;
            raylat[j].add(end - jr.arrival_tick, count[j]);
            count[j] = 0;
        }
    }
    rep.makespan_ticks = prev_end;

    // Job- and ray-level percentiles both read off obs::Histogram; the
    // bucket-rounding contract is documented once, at
    // JobReport::p50_ray_latency.
    obs::Histogram job_lat;
    double x_sum = 0, x2_sum = 0;
    size_t x_n = 0;
    for (size_t j = 0; j < jobs_.size(); ++j) {
        JobReport &jr = rep.jobs[j];
        jr.latency = jr.completion_tick - jr.arrival_tick;
        jr.queue_wait = jr.first_service_tick - jr.arrival_tick;
        jr.p50_ray_latency = raylat[j].quantile(0.50);
        jr.p99_ray_latency = raylat[j].quantile(0.99);
        jr.p999_ray_latency = raylat[j].quantile(0.999);
        if (!jr.hits.empty()) {
            job_lat.add(jr.latency);
            const double x = double(jr.hits.size()) /
                             double(std::max<uint64_t>(jr.latency, 1));
            x_sum += x;
            x2_sum += x * x;
            ++x_n;
        }
        if (tracing)
            rep.trace.push_back({jr.completion_tick, 0,
                                 obs::TraceEvent::JobComplete, jr.id,
                                 jr.latency});
    }
    rep.p50_job_latency = job_lat.quantile(0.50);
    rep.p99_job_latency = job_lat.quantile(0.99);
    rep.p999_job_latency = job_lat.quantile(0.999);
    rep.fairness = (x_n && x2_sum > 0)
                       ? (x_sum * x_sum) / (double(x_n) * x2_sum)
                       : 0.0;
    return rep;
}

StreamReport
StreamingService::run(const Engine &engine, const bvh::Bvh4 &bvh,
                      std::vector<RenderJob> jobs,
                      const StreamConfig &cfg)
{
    StreamingService svc(engine, cfg);
    for (RenderJob &j : jobs)
        svc.submit(std::move(j));
    return svc.finish(bvh);
}

} // namespace rayflex::sim
