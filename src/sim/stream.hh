/**
 * @file
 * Job and scheduler tiers of the streaming render service.
 *
 * The batch-synchronous sim::Engine answers "how long does THIS
 * workload take"; the ROADMAP's north star is serving heavy traffic
 * from many concurrent clients, where the questions are per-job: how
 * long did each client wait, in simulated cycles, and how fairly was
 * the machine shared. This module adds the two tiers above the
 * executor (sim/executor.hh) that make those questions answerable:
 *
 *   * job tier — sim::RenderJob is one client request (rays + mode +
 *     arrival tick from a fixed, caller-supplied schedule) and
 *     sim::JobQueue is the bounded submission channel that
 *     back-pressures submitters when the service falls behind;
 *   * scheduler tier — sim::BatchScheduler packs rays from different
 *     in-flight jobs into shared batches (cross-job packet formation:
 *     one job's coherent rays fill another's divergence-thinned
 *     packets), and sim::StreamingService double-buffers batch fill
 *     against simulation while tracking per-job completion on a
 *     simulated-cycle timeline.
 *
 * Determinism contract, extended from the engine: the batch plan is a
 * PURE function of the job schedule (ids, arrival ticks, modes, rays,
 * StreamConfig) — never of worker count, wall-clock or queue timing —
 * and each planned batch is executed by a freshly constructed unit.
 * A fixed arrival schedule therefore yields bit-identical hits,
 * per-job simulated latencies and merged statistics at every worker
 * count, no matter how submissions interleaved in host time. The
 * simulated timeline is sequential-machine semantics: batches are
 * charged in plan order (start = max(previous end, batch ready
 * tick)), so worker parallelism accelerates the host, not the modeled
 * chip.
 */
#ifndef RAYFLEX_SIM_STREAM_HH
#define RAYFLEX_SIM_STREAM_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "sim/engine.hh"

namespace rayflex::sim
{

/** One client request: a batch of rays with a traversal mode and an
 *  arrival tick on the service's simulated clock. The schedule is
 *  caller-supplied and fixed — arrival ticks are simulation inputs,
 *  not measurements — which is what keeps streaming runs
 *  reproducible. */
struct RenderJob
{
    /** Caller-chosen identity; must be unique within a service run
     *  (StreamingService::finish throws on duplicates). */
    uint64_t id = 0;

    /** Simulated cycle at which the job enters the system. Rays of a
     *  job are never scheduled into a batch that forms before this
     *  tick. */
    uint64_t arrival_tick = 0;

    /** Any-hit (occlusion) job; jobs of different modes never share a
     *  batch (a batch runs its unit in one traversal mode). */
    bool any_hit = false;

    std::vector<core::Ray> rays;
};

/**
 * Bounded MPMC queue: push blocks while the queue is full (the
 * back-pressure the job tier applies to submitters), pop blocks while
 * it is empty, close() wakes everyone. Element order is FIFO.
 */
template <typename T> class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity)
        : cap_(capacity ? capacity : 1)
    {
    }

    /** Block until space is available, then enqueue. @return false
     *  when the queue was closed (the item is not enqueued). */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lk(m_);
        cv_space_.wait(lk,
                       [this] { return closed_ || q_.size() < cap_; });
        if (closed_)
            return false;
        q_.push_back(std::move(item));
        cv_item_.notify_one();
        return true;
    }

    /** Block until an item is available; std::nullopt once the queue
     *  is closed AND drained. */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lk(m_);
        cv_item_.wait(lk, [this] { return closed_ || !q_.empty(); });
        if (q_.empty())
            return std::nullopt;
        T item = std::move(q_.front());
        q_.pop_front();
        cv_space_.notify_one();
        return item;
    }

    /** No further pushes succeed; blocked producers and consumers
     *  wake. Items already queued remain poppable. */
    void
    close()
    {
        std::lock_guard<std::mutex> lk(m_);
        closed_ = true;
        cv_item_.notify_all();
        cv_space_.notify_all();
    }

    size_t capacity() const { return cap_; }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(m_);
        return q_.size();
    }

  private:
    const size_t cap_;
    mutable std::mutex m_;
    std::condition_variable cv_item_, cv_space_;
    std::deque<T> q_;
    bool closed_ = false;
};

/** The job tier's submission channel. */
using JobQueue = BoundedQueue<RenderJob>;

/** Scheduler-tier configuration. */
struct StreamConfig
{
    /** Rays per scheduled batch; 0 means unbounded (one batch per
     *  formation round). */
    size_t batch_size = 1024;

    /** Pack rays of different in-flight same-mode jobs into shared
     *  batches (round-robin across jobs in arrival order). Off, the
     *  scheduler serves one job at a time to exhaustion — the
     *  head-of-line-blocking baseline BM_StreamingMixSweep compares
     *  packing against. Changes batch composition (and therefore
     *  timing and latency), never hit records. */
    bool cross_job_packing = true;

    /** Planning-rate estimate (simulated cycles per ray) that advances
     *  the scheduler's formation clock between batches — how far the
     *  simulated clock has moved, and hence which arrivals are
     *  in-flight, when the next batch forms. A fixed model parameter
     *  (NOT a measurement), so the plan stays a pure function of the
     *  schedule. */
    unsigned plan_cycles_per_ray = 8;

    /** JobQueue capacity: submissions beyond this many undrained jobs
     *  block the submitter. */
    size_t queue_capacity = 64;
};

/** One scheduled batch: which (job, ray) pairs run together, in
 *  submission order per job, round-robin across jobs. */
struct PlannedBatch
{
    bool any_hit = false;

    /** Latest arrival tick among contributing jobs: the batch cannot
     *  start executing before every contributor has arrived. */
    uint64_t ready_tick = 0;

    /** Distinct jobs contributing rays (> 1 only with cross-job
     *  packing). */
    size_t n_jobs = 0;

    /** (job index into the sorted job list, ray index within job). */
    std::vector<std::pair<uint32_t, uint32_t>> rays;
};

/**
 * The scheduler tier: turns a sorted job list into a deterministic
 * batch plan. plan() is a pure function — no clocks, no threads — so
 * the service's determinism contract reduces to the executor's.
 *
 * Formation model: a virtual clock starts at the first arrival and
 * advances plan_cycles_per_ray per scheduled ray. Each round, the
 * batch takes the traversal mode of the earliest in-flight job and
 * fills with that mode's in-flight jobs — round-robin one ray per job
 * in (arrival, id) order when cross-job packing is on, FIFO from the
 * earliest job alone when off — until batch_size rays or nothing
 * eligible remains. When no job is in flight the clock jumps to the
 * next arrival.
 */
class BatchScheduler
{
  public:
    explicit BatchScheduler(const StreamConfig &cfg) : cfg_(cfg) {}

    /** `jobs` must be sorted by (arrival_tick, id); empty-ray jobs
     *  are legal and simply appear in no batch. */
    std::vector<PlannedBatch>
    plan(const std::vector<RenderJob> &jobs) const;

  private:
    StreamConfig cfg_;
};

/** Per-job outcome on the simulated timeline. */
struct JobReport
{
    uint64_t id = 0;
    uint64_t arrival_tick = 0;
    bool any_hit = false;

    /** Hit records in the job's own ray order (the usual reduced
     *  any-hit record contract applies). */
    std::vector<bvh::HitRecord> hits;

    /** Simulated tick the first batch containing this job's rays
     *  started executing (= arrival_tick for zero-ray jobs). */
    uint64_t first_service_tick = 0;
    /** Simulated tick the last batch containing this job's rays
     *  drained (= arrival_tick for zero-ray jobs). */
    uint64_t completion_tick = 0;
    /** completion_tick - arrival_tick: the job's simulated latency. */
    uint64_t latency = 0;
    /** first_service_tick - arrival_tick: simulated cycles spent
     *  queued behind other work — the head-of-line-blocking metric. */
    uint64_t queue_wait = 0;

    /** Weighted nearest-rank percentiles of the job's PER-RAY
     *  latencies (each ray completes when its batch drains), so a job
     *  spread over many batches reports its internal spread.
     *
     *  Bucket-rounding contract (shared by every percentile in this
     *  file, job- and ray-level): percentiles are read from a mergeable
     *  log-linear obs::Histogram and reported as the selected bucket's
     *  lower bound — exact for latencies below 64 cycles, under 1.6%
     *  relative error above (see obs/histogram.hh). The histogram is
     *  what makes a p999 affordable and the quantiles mergeable across
     *  batches without retaining every sample. */
    uint64_t p50_ray_latency = 0;
    uint64_t p99_ray_latency = 0;
    uint64_t p999_ray_latency = 0;

    size_t batches = 0;        ///< batches containing this job's rays
    size_t shared_batches = 0; ///< of those, batches shared with other jobs
};

/** Aggregate outcome of a streaming run. */
struct StreamReport
{
    /** Per-job reports, sorted by (arrival_tick, id). */
    std::vector<JobReport> jobs;

    /** Merged unit counters across all batches (CycleAccurate), as
     *  EngineReport::unit. unit.packet.cross_job_fetches_shared is
     *  the cross-job packing evidence: node fetches shared between
     *  lanes of different jobs. */
    bvh::RtUnitStats unit;
    /** Merged traversal counters (Functional model). */
    bvh::TraversalStats traversal;

    uint64_t total_rays = 0;
    size_t batches = 0;
    unsigned threads_used = 0;

    /** Simulated tick at which the last batch drained (0 when no rays
     *  were submitted). Ticks are absolute on the arrival timeline. */
    uint64_t makespan_ticks = 0;

    /** Nearest-rank percentiles over the jobs' simulated latencies
     *  (zero-ray jobs excluded). Bucket-rounded like the per-ray
     *  percentiles — see JobReport::p50_ray_latency for the one
     *  statement of that contract. */
    uint64_t p50_job_latency = 0;
    uint64_t p99_job_latency = 0;
    uint64_t p999_job_latency = 0;

    /** Cycle-stamped events on the service's simulated timeline
     *  (EngineConfig::trace, CycleAccurate): JobSubmit at each arrival
     *  tick, per-batch unit/L2 events rebased to the batch's timeline
     *  start (start = max(previous end, ready tick)) and bracketed by
     *  BatchStart/BatchEnd, then JobComplete at each completion tick.
     *  Empty with tracing off; bit-identical at every worker count. */
    std::vector<obs::TraceRecord> trace;

    /** Jain fairness index over per-job simulated throughput
     *  (rays / latency): 1 = every job got identical service, 1/n =
     *  one job got everything. 0 when there are no jobs with rays. */
    double fairness = 0;

    /** Host wall-clock of the execute phase (not part of the
     *  determinism contract). */
    double elapsed_seconds = 0;

    /** Fraction of shared packet fetches that crossed a job boundary:
     *  how much of the packet win came from cross-job packing. */
    double
    crossJobShareRate() const
    {
        return unit.packet.fetches_shared
                   ? double(unit.packet.cross_job_fetches_shared) /
                         double(unit.packet.fetches_shared)
                   : 0.0;
    }

    /** The report of job `id`, or nullptr. */
    const JobReport *
    job(uint64_t id) const
    {
        for (const JobReport &j : jobs)
            if (j.id == id)
                return &j;
        return nullptr;
    }
};

/**
 * The streaming front-end over an existing Engine: concurrent clients
 * submit() RenderJobs through the bounded JobQueue (blocking when the
 * queue is full), and finish() closes intake, plans the batches, and
 * executes them on the engine's worker pool — batch fill
 * double-buffered against simulation — returning the per-job and
 * aggregate report. The engine's threads/model/rt/dp/chip knobs apply;
 * EngineConfig::warm_cache is rejected (persistent per-worker cache
 * state would break the bit-identical-at-every-worker-count
 * contract); EngineConfig::batch_size and any_hit are ignored,
 * superseded by StreamConfig::batch_size and the per-job modes.
 *
 * One service instance is one run: submit() after finish() throws.
 */
class StreamingService
{
  public:
    StreamingService(const Engine &engine, const StreamConfig &cfg = {});
    ~StreamingService();

    StreamingService(const StreamingService &) = delete;
    StreamingService &operator=(const StreamingService &) = delete;

    /** Enqueue a job; blocks while queue_capacity jobs are undrained.
     *  Safe to call from many submitter threads concurrently.
     *  @throws std::logic_error after finish(). */
    void submit(RenderJob job);

    /** Close intake, schedule every submitted job, execute, and
     *  report.
     *  @throws std::invalid_argument on duplicate job ids. */
    StreamReport finish(const bvh::Bvh4 &bvh);

    /** Convenience one-shot: submit every job, then finish. */
    static StreamReport run(const Engine &engine, const bvh::Bvh4 &bvh,
                            std::vector<RenderJob> jobs,
                            const StreamConfig &cfg = {});

    const StreamConfig &config() const { return cfg_; }

  private:
    const Engine &engine_;
    StreamConfig cfg_;
    JobQueue queue_;
    std::thread collector_; ///< drains queue_ into jobs_
    std::vector<RenderJob> jobs_;
    bool finished_ = false;
};

} // namespace rayflex::sim

#endif // RAYFLEX_SIM_STREAM_HH
