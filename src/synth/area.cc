/**
 * @file
 * Area model implementation.
 */
#include "synth/area.hh"

#include <algorithm>

namespace rayflex::synth
{

AreaReport
AreaModel::estimate(const Netlist &n, double clock_ghz) const
{
    const AreaLibrary &a = lib_.area;
    const TechLibrary &t = lib_.tech;

    FuCounts fu = n.totalFus();
    // The Section III-F ablation removes the per-unit rounding circuit.
    double add_area = a.adder;
    double mul_area = a.multiplier;
    double sq_area = a.squarer;
    if (n.cfg.skip_intermediate_rounding) {
        add_area *= 1.0 - a.rounding_frac_adder;
        mul_area *= 1.0 - a.rounding_frac_multiplier;
        sq_area *= 1.0 - a.rounding_frac_multiplier;
    }
    double logic = fu.adders * add_area + fu.multipliers * mul_area +
                   fu.squarers * sq_area +
                   fu.comparators * a.comparator +
                   fu.sort_cmps * a.comparator +
                   fu.converters * a.converter +
                   n.totalRouteLegs() * a.route_leg;

    // Mild combinational upsizing above the easy timing corner.
    double over = std::max(0.0, clock_ghz - t.easy_corner_ghz);
    logic *= 1.0 + t.logic_area_slope_per_ghz * over;

    double sequential = double(n.totalSequentialBits()) * a.flop_bit;

    double base = logic + sequential;
    double buffer =
        base * (t.buffer_frac_base + t.buffer_frac_slope_per_ghz * over);
    double inverter = base * t.inverter_frac;

    return {sequential, logic, buffer, inverter};
}

} // namespace rayflex::synth
