/**
 * @file
 * Datapath area model: the Fig. 7 experiment, and the logic component
 * of the chip-level cost model.
 *
 * Decomposes circuit area into the four categories of the Genus report
 * the paper uses - sequential, inverter, buffer and logic - as a
 * function of the netlist and the target clock frequency. Area shows
 * only mild sensitivity to the clock target in the paper's 500-1500 MHz
 * range; the model reflects that with a small upsizing slope on
 * combinational area and a buffer fraction that grows with frequency.
 *
 * Scope: this estimator prices ONE synthesized pipeline instance — the
 * paper's highlighted datapath box — and nothing else. The rest of the
 * chip (issue-width lane replicas, NodeCache arrays, the MSHR file,
 * packet stacks, the banked SharedL2) is costed component-by-component
 * in synth/chip_cost.hh, which replicates this estimate per lane and
 * prices the storage structures through the SRAM macro seam in
 * synth/sram.hh rather than as synthesized flops.
 */
#ifndef RAYFLEX_SYNTH_AREA_HH
#define RAYFLEX_SYNTH_AREA_HH

#include "synth/cells.hh"
#include "synth/netlist.hh"

namespace rayflex::synth
{

/** Circuit area decomposed the way the Genus report does (um^2). */
struct AreaReport
{
    double sequential = 0; ///< flip-flops
    double logic = 0;      ///< functional units, routing, converters
    double buffer = 0;     ///< clock/data buffering
    double inverter = 0;

    double
    total() const
    {
        return sequential + logic + buffer + inverter;
    }
};

/** Area estimator for a given cell library. */
class AreaModel
{
  public:
    explicit AreaModel(const CellLibrary &lib = CellLibrary::nangate15())
        : lib_(lib)
    {}

    /**
     * Estimate the synthesized area of a netlist at a target clock.
     * @param n         The structural netlist.
     * @param clock_ghz Target clock frequency in GHz (0.5 - 1.5 in the
     *                  paper's sweep).
     */
    AreaReport estimate(const Netlist &n, double clock_ghz) const;

  private:
    const CellLibrary &lib_;
};

} // namespace rayflex::synth

#endif // RAYFLEX_SYNTH_AREA_HH
