/**
 * @file
 * Default calibrated cell library instance.
 */
#include "synth/cells.hh"

namespace rayflex::synth
{

const CellLibrary &
CellLibrary::nangate15()
{
    static const CellLibrary lib{};
    return lib;
}

} // namespace rayflex::synth
