/**
 * @file
 * Calibrated 15 nm cell cost tables.
 *
 * The paper synthesizes RayFlex with Cadence Genus on the open 15 nm
 * FreePDK cell library and reports area/power from Genus reports driven
 * by VCD stimulus. Neither the tool nor the PDK is available here, so
 * this module provides the substitution: per-component area and energy
 * constants calibrated so that the *relative* results of the paper's
 * evaluation (Figures 7-9) emerge from the structural netlist model in
 * synth/netlist.hh. Absolute numbers are representative of a 15 nm
 * process but are not the paper's (which are themselves only shown as
 * figures).
 *
 * Calibration anchors (see EXPERIMENTS.md for the measured outcome):
 *  - FP32 adder ~600 um^2 and multiplier ~3.3x an adder, comparator tiny;
 *  - flip-flop ~4 um^2/bit;
 *  - dynamic energy dominated by multipliers; squarers cost ~2/3 of a
 *    general multiplier's energy and ~90% of its area;
 *  - static power roughly an order of magnitude below dynamic at 1 GHz.
 */
#ifndef RAYFLEX_SYNTH_CELLS_HH
#define RAYFLEX_SYNTH_CELLS_HH

namespace rayflex::synth
{

/** Area costs in um^2 (15 nm class). */
struct AreaLibrary
{
    double adder = 600.0;      ///< FP32 adder/subtractor
    double multiplier = 2000.0; ///< FP32 multiplier
    double squarer = 1800.0;   ///< multiplier specialized to y = a*a
    double comparator = 30.0;  ///< FP comparator (+ select mux)
    double converter = 480.0;  ///< FP32 <-> rec33 format converter
    /**
     * Operand routing per "leg": one operation's use of one functional
     * unit, covering the input gating mux (the zero-feed described in
     * Section VII-B), operand steering from the SRFDS and result
     * write-back selection for a 33-bit bundle pair.
     */
    double route_leg = 325.0;
    double flop_bit = 4.1; ///< one register bit

    /** Fraction of an adder/multiplier occupied by its rounding circuit
     *  (Section III-F: "the rounding circuit is not trivial and adds to
     *  the overall area/power"); removed when a configuration forgoes
     *  intermediate rounding. */
    double rounding_frac_adder = 0.18;
    double rounding_frac_multiplier = 0.10;
};

/** Dynamic energy costs in pJ per activation (nominal 1 GHz corner). */
struct EnergyLibrary
{
    double adder = 0.42;
    double multiplier = 1.20;
    double squarer = 0.72; ///< the Section VII-B specialization saving
    double comparator = 0.05;
    double converter = 0.20;
    double route_leg = 0.020; ///< steering/gating toggle per active leg
    double flop_bit = 0.00104; ///< per clocked register bit per cycle

    /** Energy fraction of the rounding circuit in adders/multipliers. */
    double rounding_frac_adder = 0.15;
    double rounding_frac_multiplier = 0.08;
};

/**
 * SRAM macro costs: the memory-structure counterpart of the logic
 * tables above. The chip cost model (synth/chip_cost.hh) sizes every
 * storage structure the performance model grew — NodeCache data+tag
 * arrays, the MSHR file, packet stacks/divergence masks, the banked
 * SharedL2 — in bits and prices them through this table (see
 * synth/sram.hh for the bits → area/leakage/energy functions). A
 * zero-bit macro costs exactly zero everywhere.
 *
 * Calibration: 6T bitcell density of a 15 nm-class compiler macro
 * (~0.3 um^2/bit with array overhead), periphery (decoders, sense
 * amps, write drivers) as an area fraction, leakage density below
 * logic (SRAM arrays are leakage-optimized), and access energy split
 * into a fixed decode/sense term plus a per-accessed-bit term.
 */
struct SramLibrary
{
    double area_per_bit = 0.325;      ///< um^2 per data/tag bit
    double periphery_frac = 0.20;     ///< decoder/sense-amp area fraction
    double leakage_per_um2 = 0.40e-8; ///< W per um^2 of macro area
    double access_base_pj = 0.35;     ///< fixed decode+sense per access
    double read_pj_per_bit = 0.0008;  ///< per bit of the accessed row
};

/** Technology-level scaling behaviour. */
struct TechLibrary
{
    /** Static power density, W per um^2 (an order of magnitude below
     *  dynamic power at 1 GHz for this design size). */
    double static_power_per_um2 = 0.65e-8;
    /**
     * Relative combinational-area growth per GHz above the easy corner:
     * the paper observes little area sensitivity over 500-1500 MHz, so
     * this slope is small.
     */
    double logic_area_slope_per_ghz = 0.04;
    double easy_corner_ghz = 0.5; ///< below this, no upsizing needed
    /** Buffer-tree area fraction of (logic+sequential) at the easy
     *  corner, and its growth per GHz. */
    double buffer_frac_base = 0.045;
    double buffer_frac_slope_per_ghz = 0.02;
    /** Inverter area fraction of (logic+sequential). */
    double inverter_frac = 0.025;
    /** Relative dynamic-energy growth per GHz above the easy corner
     *  (stronger drive cells at aggressive clock targets). */
    double energy_slope_per_ghz = 0.03;
};

/** The complete calibrated library. */
struct CellLibrary
{
    AreaLibrary area;
    EnergyLibrary energy;
    SramLibrary sram;
    TechLibrary tech;

    /** The default 15 nm-class library used by all experiments. */
    static const CellLibrary &nangate15();
};

} // namespace rayflex::synth

#endif // RAYFLEX_SYNTH_CELLS_HH
