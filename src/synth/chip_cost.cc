/**
 * @file
 * Chip cost model implementation.
 *
 * Sizing constants live here, next to the structures they describe.
 * They are model choices in the same spirit as synth/cells.hh: not the
 * paper's numbers (the paper synthesizes only the datapath), but
 * representative of the structures a 15 nm implementation would carry,
 * and — more importantly — pure functions of the config, so every
 * trend the design-space explorer reports is attributable to a knob.
 */
#include "synth/chip_cost.hh"

#include <algorithm>

#include "synth/sram.hh"

namespace rayflex::synth
{

namespace
{

/** Tag + valid + replacement state per cache line (L1 and L2 alike):
 *  a ~34-bit tag for the synthetic 48-bit node address space plus
 *  valid and LRU bits. */
constexpr uint64_t kTagStateBitsPerLine = 40;

/** One MSHR entry: the line-address CAM tag plus the phase/state
 *  timers the file keeps per outstanding fetch (bvh::MshrFile). */
constexpr uint64_t kMshrEntryBits = 96;

/** Worst-case shared-stack depth provisioned per wavefront slot (the
 *  scalar ray buffer's per-ray stacks are part of the seed datapath's
 *  synthesized area; only the packet scheduler's extra state is a new
 *  macro). */
constexpr uint64_t kPacketStackDepth = 64;

/** One shared-stack WorkItem: is_leaf + node/triangle index + count +
 *  entry distance (bvh::RtUnit::WorkItem). */
constexpr uint64_t kWorkItemBits = 81;

/** Per-lane stack-item extension: the lane's entry distance plus its
 *  divergence-mask bit (bvh::PacketTraversal). */
constexpr uint64_t kLaneEntryBits = 33;

/** Bits of one shared-stack item for a packet of `width` lanes. */
uint64_t
stackItemBits(unsigned width)
{
    return kWorkItemBits + uint64_t(width) * kLaneEntryBits;
}

/** Chip unit count with the executor's 1..kMaxChipUnits clamp, so the
 *  cost model prices exactly the hardware the engine would step. */
unsigned
clampedUnits(const sim::EngineConfig &cfg)
{
    return std::min(std::max(cfg.chip.units, 1u), sim::kMaxChipUnits);
}

} // namespace

uint64_t
nodeCacheBits(const bvh::NodeCacheConfig &c)
{
    const uint64_t lines = uint64_t(c.sets) * c.ways;
    return c.capacityBytes() * 8 + lines * kTagStateBitsPerLine;
}

uint64_t
mshrFileBits(unsigned mshrs)
{
    return uint64_t(mshrs) * kMshrEntryBits;
}

uint64_t
packetStateBits(const bvh::RtUnitConfig &rt)
{
    const unsigned width = rt.packet.width;
    if (width <= 1)
        return 0;
    const uint64_t slots =
        std::max(1u, rt.ray_buffer_entries / width);
    return slots * (kPacketStackDepth * stackItemBits(width) + width);
}

uint64_t
l2Bits(const bvh::L2Config &c)
{
    const uint64_t lines = uint64_t(c.banks) * c.sets * c.ways;
    return c.capacityBytes() * 8 + lines * kTagStateBitsPerLine;
}

ChipAreaReport
ChipCostModel::area(const sim::EngineConfig &cfg, double clock_ghz) const
{
    ChipAreaReport r;
    const Netlist n = Netlist::build(cfg.dp);
    r.lane = AreaModel(lib_).estimate(n, clock_ghz);

    const unsigned units = clampedUnits(cfg);
    const SramLibrary &s = lib_.sram;

    // Datapath lanes: issue_width replicas per unit, units per chip.
    // The knobs-off anchor: a 1x1 chip multiplies by exactly 1.0, so
    // the component reproduces AreaModel::estimate bit-for-bit.
    {
        ComponentCost c;
        c.name = "datapath";
        c.area_um2 =
            r.lane.total() * (double(cfg.rt.issue_width) * double(units));
        r.components.push_back(std::move(c));
    }

    if (cfg.rt.mem_backend == bvh::MemBackend::NodeCache) {
        ComponentCost c;
        c.name = "node_cache";
        c.sram_bits = nodeCacheBits(cfg.rt.cache) * units;
        c.area_um2 = sramAreaUm2(c.sram_bits, s);
        r.components.push_back(std::move(c));
    }

    if (cfg.rt.mshrs > 0) {
        ComponentCost c;
        c.name = "mshr_file";
        c.sram_bits = mshrFileBits(cfg.rt.mshrs) * units;
        c.area_um2 = sramAreaUm2(c.sram_bits, s);
        r.components.push_back(std::move(c));
    }

    if (cfg.rt.packet.width > 1) {
        ComponentCost c;
        c.name = "packet_state";
        c.sram_bits = packetStateBits(cfg.rt) * units;
        c.area_um2 = sramAreaUm2(c.sram_bits, s);
        r.components.push_back(std::move(c));
    }

    if (cfg.chip.l2 != sim::L2Mode::Off) {
        ComponentCost c;
        c.name = "shared_l2";
        const uint64_t instances =
            cfg.chip.l2 == sim::L2Mode::Private ? units : 1;
        c.sram_bits = l2Bits(cfg.chip.l2cfg) * instances;
        c.area_um2 = sramAreaUm2(c.sram_bits, s);
        r.components.push_back(std::move(c));
    }

    return r;
}

ChipPowerReport
ChipCostModel::power(const sim::EngineConfig &cfg,
                     const bvh::RtUnitStats &stats,
                     double clock_ghz) const
{
    const EnergyLibrary &e = lib_.energy;
    const TechLibrary &t = lib_.tech;
    const SramLibrary &s = lib_.sram;

    const ChipAreaReport a = area(cfg, clock_ghz);
    const Netlist n = Netlist::build(cfg.dp);

    // Wall-clock base: chip ticks when chip mode stepped the units in
    // lock-step, per-unit cycles otherwise. Zero observed time means
    // zero dynamic power (the scale stays 0.0); leakage is reported
    // regardless — a powered-on chip leaks while idle.
    const uint64_t wall =
        stats.chip_cycles ? stats.chip_cycles : stats.cycles;
    double scale = 0.0;
    if (wall != 0) {
        // Identical arithmetic to PowerModel::estimate, term order
        // included: pJ / cycles * f[GHz] * 1e-3 = W, derated above the
        // easy corner.
        const double over = std::max(0.0, clock_ghz - t.easy_corner_ghz);
        const double derate = 1.0 + t.energy_slope_per_ghz * over;
        scale = clock_ghz * 1e-3 / double(wall) * derate;
    }

    ChipPowerReport r;

    // Datapath: fu/route energy from the per-opcode beat counters
    // through the same kernel the legacy model uses; register energy
    // from per-unit cycles times the lane count (every lane's pipeline
    // registers clock every cycle of its unit, beats or not).
    {
        const BeatEnergyPj beat =
            datapathBeatEnergyPj(n, stats.beats_by_op, e);
        const double reg_pj = double(stats.cycles) *
                              double(cfg.rt.issue_width) *
                              double(n.totalSequentialBits()) *
                              e.flop_bit;
        r.datapath.fu_dynamic = beat.fu_pj * scale;
        r.datapath.route_dynamic = beat.route_pj * scale;
        r.datapath.reg_dynamic = reg_pj * scale;

        ComponentCost c = a.components.front();
        c.leakage_w = c.area_um2 * t.static_power_per_um2;
        r.datapath.static_power = c.leakage_w;
        c.dynamic_w = r.datapath.fu_dynamic + r.datapath.reg_dynamic +
                      r.datapath.route_dynamic;
        r.components.push_back(std::move(c));
    }

    // SRAM components: leakage from macro area, dynamic from the run's
    // access counters — an untouched structure draws leakage only.
    for (size_t i = 1; i < a.components.size(); ++i) {
        ComponentCost c = a.components[i];
        c.leakage_w = sramLeakageW(c.sram_bits, s);

        uint64_t accesses = 0;
        uint64_t row_bits = 0;
        if (c.name == "node_cache") {
            accesses = stats.mem.hits + stats.mem.misses;
            row_bits = uint64_t(cfg.rt.cache.line_bytes) * 8;
        } else if (c.name == "mshr_file") {
            // Every allocation or merge broadcasts the line address
            // across the CAM: the whole file is the accessed row.
            accesses = stats.mshr.allocations + stats.mshr.merges;
            row_bits = mshrFileBits(cfg.rt.mshrs);
        } else if (c.name == "packet_state") {
            // One pop plus (amortized) one push per shared node visit.
            accesses = 2 * stats.packet.node_visits;
            row_bits = stackItemBits(cfg.rt.packet.width);
        } else if (c.name == "shared_l2") {
            const bvh::L2Stats l2 = stats.l2Total();
            accesses = l2.hits + l2.misses;
            row_bits = uint64_t(cfg.chip.l2cfg.line_bytes) * 8;
        }

        c.dynamic_w = double(accesses) *
                      sramAccessPj(c.sram_bits, row_bits, s) * scale;
        r.components.push_back(std::move(c));
    }

    return r;
}

} // namespace rayflex::synth
