/**
 * @file
 * Chip-level component cost model: any sim::EngineConfig -> area and
 * power, driven by the real simulator's merged run statistics.
 *
 * The paper's synthesis results (Figs. 7-9) cover only the
 * intersection datapath; PRs 3-9 grew the performance model far past
 * it. This module closes that loop: a chip's cost is the SUM OF
 * COMPONENTS, each sized from the EngineConfig knobs and energized
 * from the counters the cycle model already produces.
 *
 * Components and their stimuli:
 *
 *  | component    | instantiated when          | area source        | dynamic stimulus                |
 *  |--------------|----------------------------|--------------------|---------------------------------|
 *  | datapath     | always (lanes = issue_width| AreaModel per lane | RtUnitStats::beats_by_op (fu/   |
 *  |              | x chip.units)              | x lane count       | route) + cycles x lanes (regs)  |
 *  | node_cache   | mem_backend == NodeCache   | SRAM: data + tags  | CacheStats hits + misses        |
 *  | mshr_file    | rt.mshrs > 0               | SRAM: entry CAM    | MshrStats allocations + merges  |
 *  | packet_state | packet.width > 1           | SRAM: stacks+masks | PacketStats node_visits (pop +  |
 *  |              |                            |                    | push per shared visit)          |
 *  | shared_l2    | chip.l2 != Off             | SRAM: banked array | L2Stats hits + misses (summed   |
 *  |              | (x units when Private)     | + tags             | over banks)                     |
 *
 * Idle and zero-gated components draw leakage only: every dynamic term
 * is an access count times a per-access energy, so a structure the run
 * never touched contributes 0.0 W of dynamic power, and a structure
 * the config never instantiated contributes nothing at all (the
 * component is absent from the report).
 *
 * Two invariants are regression-pinned (tests/test_synth.cc):
 *
 *  1. Knobs-off compatibility: with a default EngineConfig (issue
 *     width 1, FixedLatency memory, no MSHRs, scalar traversal, chip
 *     mode off) the report contains exactly the datapath component and
 *     reproduces the legacy AreaModel/PowerModel numbers — today's
 *     bench_fig7_area / bench_fig8_power tables — BIT-FOR-BIT. This
 *     holds by construction: the datapath component calls the same
 *     AreaModel::estimate and the same datapathBeatEnergyPj kernel the
 *     legacy models use, scaled by a lane count of exactly 1.0.
 *
 *  2. Purity: a report is a pure function of (EngineConfig, merged
 *     RtUnitStats, clock). The stats merge is commutative and
 *     associative, so reports are identical at every worker count.
 *
 * To add a component: size its bits from the config (see the helpers
 * in chip_cost.cc), append a ComponentCost to the area report gated on
 * its enabling knob, pick the counter that counts its accesses, and
 * add the access-energy term in power(); the zero-cost and knobs-off
 * pins in test_synth.cc then enforce the gating discipline for free.
 */
#ifndef RAYFLEX_SYNTH_CHIP_COST_HH
#define RAYFLEX_SYNTH_CHIP_COST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hh"
#include "synth/area.hh"
#include "synth/cells.hh"
#include "synth/netlist.hh"
#include "synth/power.hh"

namespace rayflex::synth
{

/** One costed hardware component of the chip. Area-only reports leave
 *  the power fields zero; power reports fill all of them. */
struct ComponentCost
{
    std::string name;     ///< "datapath", "node_cache", ...
    double area_um2 = 0;  ///< total across all instances
    uint64_t sram_bits = 0; ///< macro size; 0 for the logic datapath
    double dynamic_w = 0; ///< activity-driven switching power
    double leakage_w = 0; ///< always-on, area-proportional
};

/** Chip area decomposed by component. */
struct ChipAreaReport
{
    /** The legacy per-lane datapath decomposition (one pipeline
     *  instance, AreaModel::estimate verbatim) — the knobs-off
     *  compatibility anchor. */
    AreaReport lane;
    /** Every instantiated component, datapath first. */
    std::vector<ComponentCost> components;

    double
    total_um2() const
    {
        double t = 0;
        for (const ComponentCost &c : components)
            t += c.area_um2;
        return t;
    }

    double total_mm2() const { return total_um2() * 1e-6; }
};

/** Chip power decomposed by component. */
struct ChipPowerReport
{
    /** The legacy datapath decomposition (fu/reg/route dynamic plus
     *  the datapath component's leakage as static_power) — the
     *  knobs-off compatibility anchor. */
    PowerReport datapath;
    /** Every instantiated component, datapath first. */
    std::vector<ComponentCost> components;

    double
    dynamic_w() const
    {
        double t = 0;
        for (const ComponentCost &c : components)
            t += c.dynamic_w;
        return t;
    }

    double
    leakage_w() const
    {
        double t = 0;
        for (const ComponentCost &c : components)
            t += c.leakage_w;
        return t;
    }

    double total_w() const { return dynamic_w() + leakage_w(); }
};

/**
 * The component-based cost estimator. Stateless apart from the
 * borrowed cell library; every method is a pure function of its
 * arguments.
 */
class ChipCostModel
{
  public:
    explicit ChipCostModel(
        const CellLibrary &lib = CellLibrary::nangate15())
        : lib_(lib)
    {}

    /** Area of the chip a config describes, at a clock target. */
    ChipAreaReport area(const sim::EngineConfig &cfg,
                        double clock_ghz) const;

    /**
     * Power of the chip a config describes, energized by a run's
     * merged statistics (sim::EngineReport::unit — identical at every
     * worker count, so the report is too).
     *
     * The wall-clock base is stats.chip_cycles when chip mode ticked
     * (one tick per chip step) and stats.cycles otherwise; with zero
     * observed cycles every dynamic term is 0.0 and the report carries
     * leakage only (a powered-on idle chip).
     */
    ChipPowerReport power(const sim::EngineConfig &cfg,
                          const bvh::RtUnitStats &stats,
                          double clock_ghz) const;

  private:
    const CellLibrary &lib_;
};

/** Bits of the NodeCache L1 macro (data + tag/state arrays). */
uint64_t nodeCacheBits(const bvh::NodeCacheConfig &c);

/** Bits of the MSHR file's CAM/state array (rt.mshrs entries). */
uint64_t mshrFileBits(unsigned mshrs);

/** Bits of one unit's packet-traversal state: per-wavefront-slot
 *  shared stacks (WorkItem + per-lane entry distances) plus the
 *  divergence masks. Zero when width <= 1 (scalar traversal keeps its
 *  per-ray state in the seed datapath's ray buffer, which the paper's
 *  synthesized area already covers). */
uint64_t packetStateBits(const bvh::RtUnitConfig &rt);

/** Bits of one SharedL2 instance (all banks, data + tags). */
uint64_t l2Bits(const bvh::L2Config &c);

} // namespace rayflex::synth

#endif // RAYFLEX_SYNTH_CHIP_COST_HH
