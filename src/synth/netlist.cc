/**
 * @file
 * Netlist enumeration tables and construction.
 *
 * The per-operation functional-unit usage tables transcribe Fig. 4c and
 * Fig. 6c of the paper; the liveness tables transcribe the dataflow of
 * Figures 4a/4b/6a/6b (each field is alive from the stage that produces
 * it until the last stage that reads it). Ray-box beats additionally
 * carry the four 32-bit child pointers, and ray-triangle beats the
 * 32-bit triangle ID, that the RDNA3 instruction returns.
 */
#include "synth/netlist.hh"

#include <algorithm>

#include "core/quadsort.hh"

namespace rayflex::synth
{

namespace
{

constexpr size_t kOps = kNumOpcodes;
constexpr size_t kStg = kNumStages;

// Adder usage per op per stage (Fig. 4c column "Ray-Box"/"Ray-Triangle",
// Fig. 6c columns "Euclidean"/"Cosine"). Box-lane entries are for the
// default 4-wide node; adderUsage() scales them with the configured
// width (6 translate subtractions per box).
constexpr unsigned kAdders[kOps][kStg] = {
    // s1  s2  s3  s4  s5  s6  s7  s8  s9 s10 s11
    {0, 24, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // RayBox
    {0, 9, 0, 6, 0, 3, 0, 2, 2, 0, 0},  // RayTriangle
    {0, 16, 0, 8, 0, 4, 0, 2, 1, 1, 0}, // Euclidean
    {0, 0, 0, 8, 0, 4, 0, 2, 2, 0, 0},  // Cosine
};

// Multiplier usage per op per stage (box lane: 6 per box).
constexpr unsigned kMuls[kOps][kStg] = {
    {0, 0, 24, 0, 0, 0, 0, 0, 0, 0, 0},
    {0, 0, 9, 0, 6, 0, 3, 0, 0, 0, 0},
    {0, 0, 16, 0, 0, 0, 0, 0, 0, 0, 0},
    {0, 0, 16, 0, 0, 0, 0, 0, 0, 0, 0},
};

/** Per-op adder usage scaled for the configured box width. */
unsigned
adderUsage(size_t op, unsigned stage, unsigned w)
{
    unsigned v = kAdders[op][stage];
    if (op == size_t(Opcode::RayBox))
        return v / 4 * w;
    return v;
}

/** Per-op multiplier usage scaled for the configured box width. */
unsigned
mulUsage(size_t op, unsigned stage, unsigned w)
{
    unsigned v = kMuls[op][stage];
    if (op == size_t(Opcode::RayBox))
        return v / 4 * w;
    return v;
}

// Of the multiplier usage above, how many feed both inputs from the same
// wire (squarer-capable): all 16 Euclidean squares, 8 of the 16 cosine
// multiplies.
constexpr unsigned kSquarerCapable[kOps][kStg] = {
    {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
    {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
    {0, 0, 16, 0, 0, 0, 0, 0, 0, 0, 0},
    {0, 0, 8, 0, 0, 0, 0, 0, 0, 0, 0},
};

// Comparator usage (slab trees + hit tests). QuadSort compare-exchange
// units are listed separately because their network position makes them
// unshareable with plain comparators (Fig. 4c lists them as distinct
// stage-10 assets).
constexpr unsigned kCmps[kOps][kStg] = {
    {0, 0, 0, 40, 0, 0, 0, 0, 0, 0, 0}, // 10 per box at width 4
    {0, 0, 0, 0, 0, 0, 0, 0, 0, 5, 0},
    {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
    {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
};

/** Per-op plain-comparator usage scaled for the configured box width
 *  (3 swap + 6 tree + 1 hit = 10 per box at stage 4). */
unsigned
cmpUsage(size_t op, unsigned stage, unsigned w)
{
    unsigned v = kCmps[op][stage];
    if (op == size_t(Opcode::RayBox))
        return v / 4 * w;
    return v;
}

/** Sorting-network compare-exchange units at stage 10: two networks
 *  sized for the configured width (2 x 5 = the paper's "2 QuadSort
 *  Networks" at width 4). */
unsigned
sortUsage(size_t op, unsigned stage, unsigned w)
{
    if (op == size_t(Opcode::RayBox) && stage == 9)
        return 2 * core::sortNetworkComparators(w);
    return 0;
}

// Input format converters (stage 1): ray bundle (13 FP32: origin,
// inverse direction, extent pair, shear) plus the op-specific payload
// (box corners 6/box / triangle vertices 9 / euclidean vectors 32 /
// cosine vectors 16).
unsigned
inConv(size_t op, unsigned w)
{
    switch (static_cast<Opcode>(op)) {
      case Opcode::RayBox: return 13 + 6 * w;
      case Opcode::RayTriangle: return 13 + 9;
      case Opcode::Euclidean: return 32;
      case Opcode::Cosine: return 16;
    }
    return 0;
}

// Output format converters (stage 11): sorted distances (1/box) /
// t_num, t_den and barycentrics 5 / accumulator 1 / dot+norm 2.
unsigned
outConv(size_t op, unsigned w)
{
    switch (static_cast<Opcode>(op)) {
      case Opcode::RayBox: return w;
      case Opcode::RayTriangle: return 5;
      case Opcode::Euclidean: return 1;
      case Opcode::Cosine: return 2;
    }
    return 0;
}

// SRFDS liveness: bits of each op alive in the output register of
// stages 1..10 (indices 0..9) after dead-node elimination, plus the
// stage-11 output-format register (index 10). Derived from the recoded
// field widths (33 bits) in srfds.hh plus the per-op payload the ISA
// carries through (128-bit child pointers for boxes, 32-bit triangle
// ID).
constexpr unsigned kLive[kOps][kStg] = {
    // after: s1    s2    s3   s4   s5   s6   s7   s8   s9  s10  s11(out)
    {1184, 1085, 986, 264, 264, 264, 264, 264, 264, 272, 260}, // box w=4
    {533, 434, 632, 329, 329, 230, 230, 230, 197, 198, 193},   // tri
    {1088, 544, 528, 264, 264, 132, 132, 66, 33, 34, 33},      // euclid
    {552, 552, 528, 264, 264, 132, 132, 66, 67, 67, 67},       // cosine
};

/** Bits of the box lane alive per stage boundary as a function of node
 *  width W: corners are 6W recoded values, near/far 2W, child pointers
 *  32W, sorted order ceil(log2 W)*W, output W hits + W pointers + W
 *  distances. Matches kLive[0][*] at W = 4. */
unsigned
boxLive(unsigned stage, unsigned w)
{
    unsigned order_bits = 1;
    while ((1u << order_bits) < w)
        ++order_bits;
    switch (stage) {
      case 0: return 264 + 198 * w + 32 * w;  // ray + corners + ptrs
      case 1: return 165 + 198 * w + 32 * w;  // origin dead
      case 2: return 66 + 198 * w + 32 * w;   // inverse dir dead
      case 9: return 33 * w + w + order_bits * w + 32 * w;
      case 10: return w + 32 * w + 32 * w;    // output register
      default: return 33 * w + w + 32 * w;    // near + hit + ptrs
    }
}

/** Per-op liveness honouring the configured box width. */
unsigned
liveBitsW(size_t op, unsigned stage, unsigned w)
{
    if (op == size_t(Opcode::RayBox))
        return boxLive(stage, w);
    return kLive[op][stage];
}

// Architectural state (extended only): cosine dot+norm accumulators at
// stage 9, Euclidean accumulator at stage 10 (Fig. 6c "+2 Registers" /
// "+1 Register").
constexpr unsigned kStateBits[kStg] = {0, 0, 0, 0, 0, 0, 0, 0, 66, 33, 0};

} // namespace

FuCounts &
FuCounts::operator+=(const FuCounts &o)
{
    adders += o.adders;
    multipliers += o.multipliers;
    squarers += o.squarers;
    comparators += o.comparators;
    sort_cmps += o.sort_cmps;
    converters += o.converters;
    return *this;
}

unsigned
liveBits(Opcode op, unsigned stage)
{
    return kLive[static_cast<size_t>(op)][stage];
}

unsigned
controlBits()
{
    return 2 /*opcode*/ + 32 /*tag*/ + 1 /*reset*/;
}

Netlist
Netlist::build(const DatapathConfig &cfg)
{
    Netlist n;
    n.cfg = cfg;

    const size_t num_ops = cfg.extended ? kOps : 2;

    for (unsigned s = 0; s < kStg; ++s) {
        StageNetlist &st = n.stages[s];

        // --- per-op usage ---
        for (size_t o = 0; o < num_ops; ++o) {
            FuCounts &u = st.used[o];
            u.adders = adderUsage(o, s, cfg.box_width);
            u.comparators = cmpUsage(o, s, cfg.box_width);
            u.sort_cmps = sortUsage(o, s, cfg.box_width);
            if (s == 0)
                u.converters = inConv(o, cfg.box_width);
            if (s == kStg - 1)
                u.converters = outConv(o, cfg.box_width);

            unsigned muls = mulUsage(o, s, cfg.box_width);
            unsigned sq = kSquarerCapable[o][s];
            if (cfg.disjoint && !cfg.perturb_squarers) {
                // Private units with tied inputs specialize to squarers.
                u.squarers = sq;
                u.multipliers = muls - sq;
            } else {
                // Shared (or perturbed) units stay general multipliers.
                u.multipliers = muls;
            }
        }

        // --- provisioning ---
        auto provision = [&](auto pick) {
            unsigned v = 0;
            for (size_t o = 0; o < num_ops; ++o) {
                unsigned u = pick(o);
                v = cfg.disjoint ? v + u : std::max(v, u);
            }
            return v;
        };
        st.provisioned.adders = provision(
            [&](size_t o) { return adderUsage(o, s, cfg.box_width); });
        st.provisioned.comparators = provision(
            [&](size_t o) { return cmpUsage(o, s, cfg.box_width); });
        st.provisioned.sort_cmps = provision(
            [&](size_t o) { return sortUsage(o, s, cfg.box_width); });
        st.provisioned.converters = provision([&](size_t o) {
            if (s == 0)
                return inConv(o, cfg.box_width);
            if (s == kStg - 1)
                return outConv(o, cfg.box_width);
            return 0u;
        });
        if (cfg.disjoint) {
            unsigned gen = 0, sq = 0;
            for (size_t o = 0; o < num_ops; ++o) {
                unsigned muls = mulUsage(o, s, cfg.box_width);
                unsigned cap = kSquarerCapable[o][s];
                if (!cfg.perturb_squarers) {
                    sq += cap;
                    gen += muls - cap;
                } else {
                    gen += muls;
                }
            }
            st.provisioned.multipliers = gen;
            st.provisioned.squarers = sq;
        } else {
            st.provisioned.multipliers = provision(
                [&](size_t o) { return mulUsage(o, s, cfg.box_width); });
            st.provisioned.squarers = 0;
        }

        // --- routing legs: one per (op, unit) pair, plus the zero-gate
        // leg of each provisioned arithmetic unit ---
        unsigned legs = 0;
        for (size_t o = 0; o < num_ops; ++o) {
            legs += adderUsage(o, s, cfg.box_width) +
                    mulUsage(o, s, cfg.box_width) +
                    cmpUsage(o, s, cfg.box_width) +
                    sortUsage(o, s, cfg.box_width);
        }
        legs += st.provisioned.adders + st.provisioned.multipliers +
                st.provisioned.squarers + st.provisioned.comparators +
                st.provisioned.sort_cmps;
        st.route_legs = legs;

        // --- registers: disjoint per-op fields regardless of FU
        // sharing (Section VII-A), plus always-alive control ---
        unsigned bits = controlBits();
        switch (cfg.register_policy) {
          case core::RegisterPolicy::DisjointPerOp:
            for (size_t o = 0; o < num_ops; ++o)
                bits += liveBitsW(o, s, cfg.box_width);
            break;
          case core::RegisterPolicy::SharedUnionAligned:
            // Perfect lifetime alignment: the union register at each
            // stage is as wide as the widest single operation's live
            // data there.
            {
                unsigned mx = 0;
                for (size_t o = 0; o < num_ops; ++o)
                    mx = std::max(mx, liveBitsW(o, s, cfg.box_width));
                bits += mx;
            }
            break;
          case core::RegisterPolicy::SharedUnionWorstCase:
            // Pessimal alignment: no operation's fields overlap any
            // other's, so the union is as wide as the sum of each
            // operation's widest layout - and with some op keeping each
            // bit alive somewhere, dead-node elimination removes
            // nothing: the full width is registered at every stage
            // (the worst case of Section VII-A).
            {
                unsigned width_sum = 0;
                for (size_t o = 0; o < num_ops; ++o) {
                    unsigned mx = 0;
                    for (unsigned s2 = 0; s2 < kStg; ++s2)
                        mx = std::max(mx,
                                      liveBitsW(o, s2, cfg.box_width));
                    width_sum += mx;
                }
                bits += width_sum;
            }
            break;
        }
        st.reg_bits = bits;
        st.state_bits = cfg.extended ? kStateBits[s] : 0;
    }
    return n;
}

FuCounts
Netlist::totalFus() const
{
    FuCounts t;
    for (const auto &s : stages)
        t += s.provisioned;
    return t;
}

unsigned
Netlist::totalRouteLegs() const
{
    unsigned t = 0;
    for (const auto &s : stages)
        t += s.route_legs;
    return t;
}

uint64_t
Netlist::totalSequentialBits() const
{
    uint64_t t = 0;
    for (const auto &s : stages)
        t += uint64_t(s.reg_bits) * kSkidDepth + s.state_bits;
    return t;
}

FuCounts
Netlist::usedBy(Opcode op) const
{
    FuCounts t;
    for (const auto &s : stages)
        t += s.used[static_cast<size_t>(op)];
    return t;
}

unsigned
Netlist::routeLegsUsedBy(Opcode op) const
{
    unsigned t = 0;
    const size_t o = static_cast<size_t>(op);
    for (unsigned s = 0; s < kNumStages; ++s) {
        t += adderUsage(o, s, cfg.box_width) +
             mulUsage(o, s, cfg.box_width) +
             cmpUsage(o, s, cfg.box_width) +
             sortUsage(o, s, cfg.box_width);
    }
    return t;
}

} // namespace rayflex::synth
