/**
 * @file
 * Structural netlist model of the RayFlex datapath.
 *
 * For a given DatapathConfig this module enumerates, per pipeline stage:
 *
 *  - the provisioned functional units (adders, multipliers, squarers,
 *    comparators, sorting-network comparators, format converters),
 *    following Fig. 4c (baseline assets) and Fig. 6c (extended assets);
 *    a *unified* pipeline provisions the per-stage maximum across
 *    operations, a *disjoint* design provisions the per-operation sum;
 *  - the per-operation usage of those units (which drives dynamic
 *    power: unused units are zero-gated);
 *  - operand-routing "legs" (one op's use of one unit);
 *  - the surviving register bits of the Shared RayFlex Data Structure
 *    after dead-node elimination, from a field-liveness table - the
 *    model analogue of what the synthesizer's dead-node elimination
 *    leaves behind (Section III-E). RayFlex registers each operation's
 *    fields disjointly regardless of FU sharing (Section VII-A), so
 *    sequential cost is the sum over supported operations.
 *
 * Squarer specialization (Section VII-B): a provisioned multiplier
 * becomes a squarer only when every operation mapped onto it feeds both
 * inputs from the same wire. That happens only in the disjoint design
 * for the Euclidean (16 units) and cosine (8 of 16) stage-3 multipliers;
 * the perturb_squarers ablation defeats it.
 */
#ifndef RAYFLEX_SYNTH_NETLIST_HH
#define RAYFLEX_SYNTH_NETLIST_HH

#include <array>
#include <cstdint>

#include "core/config.hh"
#include "core/io_spec.hh"

namespace rayflex::synth
{

using core::DatapathConfig;
using core::kNumOpcodes;
using core::kNumStages;
using core::Opcode;

/** Functional-unit counts of one kind-set. */
struct FuCounts
{
    unsigned adders = 0;
    unsigned multipliers = 0; ///< general multipliers
    unsigned squarers = 0;    ///< specialized y=a*a multipliers
    unsigned comparators = 0; ///< compare + select
    unsigned sort_cmps = 0;   ///< QuadSort network compare-exchange units
    unsigned converters = 0;  ///< FP32 <-> rec33 converters

    FuCounts &operator+=(const FuCounts &o);
};

/** Netlist of one pipeline stage. */
struct StageNetlist
{
    FuCounts provisioned; ///< hardware present at this stage
    /** Units activated per operation (for dynamic power). A squarer
     *  activation is counted in squarers; in the unified design the
     *  same computation runs on a general multiplier instead. */
    std::array<FuCounts, kNumOpcodes> used{};
    unsigned route_legs = 0; ///< operand-routing legs at this stage
    /** Register bits surviving dead-node elimination in one copy of the
     *  stage's output register (the skid buffer doubles this). */
    unsigned reg_bits = 0;
    /** Architectural state bits (distance accumulators): real registers,
     *  not skid-doubled. */
    unsigned state_bits = 0;
};

/** Whole-datapath netlist. */
struct Netlist
{
    DatapathConfig cfg;
    std::array<StageNetlist, kNumStages> stages{};

    /** Skid buffers hold a main and a skid copy of each payload. */
    static constexpr unsigned kSkidDepth = 2;

    /** Build the netlist for a configuration. */
    static Netlist build(const DatapathConfig &cfg);

    /** Sum of provisioned units over all stages. */
    FuCounts totalFus() const;

    /** Total routing legs. */
    unsigned totalRouteLegs() const;

    /** Total sequential bits: payload registers times skid depth plus
     *  architectural state. */
    uint64_t totalSequentialBits() const;

    /** Units activated by one beat of the given operation. */
    FuCounts usedBy(Opcode op) const;

    /** Routing legs activated by one beat of the given operation. */
    unsigned routeLegsUsedBy(Opcode op) const;
};

/**
 * Field-liveness of the SRFDS: bits of operation op alive in the output
 * register of stage `stage` (0-based), after dead-node elimination.
 * Exposed for the liveness unit tests.
 */
unsigned liveBits(Opcode op, unsigned stage);

/** Control bits (opcode, tag, reset flag) alive at every stage. */
unsigned controlBits();

} // namespace rayflex::synth

#endif // RAYFLEX_SYNTH_NETLIST_HH
