/**
 * @file
 * Power model implementation.
 */
#include "synth/power.hh"

#include <algorithm>

namespace rayflex::synth
{

BeatEnergyPj
datapathBeatEnergyPj(const Netlist &n,
                     const std::array<uint64_t, kNumOpcodes> &beats,
                     const EnergyLibrary &e)
{
    // Energy per beat of each op: active functional units only (the
    // rest are zero-gated).
    BeatEnergyPj r;
    for (size_t o = 0; o < kNumOpcodes; ++o) {
        const double b = double(beats[o]);
        if (b == 0)
            continue;
        FuCounts u = n.usedBy(static_cast<Opcode>(o));
        double e_add = e.adder, e_mul = e.multiplier, e_sq = e.squarer;
        if (n.cfg.skip_intermediate_rounding) {
            e_add *= 1.0 - e.rounding_frac_adder;
            e_mul *= 1.0 - e.rounding_frac_multiplier;
            e_sq *= 1.0 - e.rounding_frac_multiplier;
        }
        double per_beat = u.adders * e_add +
                          u.multipliers * e_mul +
                          u.squarers * e_sq +
                          u.comparators * e.comparator +
                          u.sort_cmps * e.comparator +
                          u.converters * e.converter;
        r.fu_pj += b * per_beat;
        r.route_pj += b *
                      n.routeLegsUsedBy(static_cast<Opcode>(o)) *
                      e.route_leg;
    }
    return r;
}

PowerReport
PowerModel::estimate(const Netlist &n, const core::ActivityTrace &trace,
                     double clock_ghz) const
{
    const EnergyLibrary &e = lib_.energy;
    const TechLibrary &t = lib_.tech;

    if (trace.cycles == 0)
        return {};

    const BeatEnergyPj beat = datapathBeatEnergyPj(n, trace.beats, e);
    const double fu_pj = beat.fu_pj, route_pj = beat.route_pj;

    // Registers clock every cycle; the SRFDS registers are rewritten on
    // every beat irrespective of operation.
    double reg_pj =
        double(trace.cycles) * double(n.totalSequentialBits()) *
        e.flop_bit;

    // Stronger cells at aggressive clock targets switch more charge.
    double over = std::max(0.0, clock_ghz - t.easy_corner_ghz);
    double derate = 1.0 + t.energy_slope_per_ghz * over;

    // pJ per cycle * cycles/s = W: P = E_total[pJ] / cycles *
    // f[GHz] * 1e-3.
    const double cycles = double(trace.cycles);
    const double scale = clock_ghz * 1e-3 / cycles * derate;

    PowerReport r;
    r.fu_dynamic = fu_pj * scale;
    r.route_dynamic = route_pj * scale;
    r.reg_dynamic = reg_pj * scale;

    AreaModel area(lib_);
    r.static_power =
        area.estimate(n, clock_ghz).total() * t.static_power_per_um2;
    return r;
}

PowerReport
PowerModel::estimateFullThroughput(const Netlist &n, Opcode op,
                                   double clock_ghz) const
{
    core::ActivityTrace trace;
    trace.cycles = 1000;
    trace.beats[static_cast<size_t>(op)] = 1000;
    return estimate(n, trace, clock_ghz);
}

} // namespace rayflex::synth
