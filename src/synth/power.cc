/**
 * @file
 * Power model implementation.
 */
#include "synth/power.hh"

#include <algorithm>

namespace rayflex::synth
{

PowerReport
PowerModel::estimate(const Netlist &n, const core::ActivityTrace &trace,
                     double clock_ghz) const
{
    const EnergyLibrary &e = lib_.energy;
    const TechLibrary &t = lib_.tech;

    if (trace.cycles == 0)
        return {};

    // Energy per beat of each op: active functional units only (the
    // rest are zero-gated).
    double fu_pj = 0, route_pj = 0;
    for (size_t o = 0; o < kNumOpcodes; ++o) {
        const double beats = double(trace.beats[o]);
        if (beats == 0)
            continue;
        FuCounts u = n.usedBy(static_cast<Opcode>(o));
        double e_add = e.adder, e_mul = e.multiplier, e_sq = e.squarer;
        if (n.cfg.skip_intermediate_rounding) {
            e_add *= 1.0 - e.rounding_frac_adder;
            e_mul *= 1.0 - e.rounding_frac_multiplier;
            e_sq *= 1.0 - e.rounding_frac_multiplier;
        }
        double per_beat = u.adders * e_add +
                          u.multipliers * e_mul +
                          u.squarers * e_sq +
                          u.comparators * e.comparator +
                          u.sort_cmps * e.comparator +
                          u.converters * e.converter;
        fu_pj += beats * per_beat;
        route_pj += beats *
                    n.routeLegsUsedBy(static_cast<Opcode>(o)) *
                    e.route_leg;
    }

    // Registers clock every cycle; the SRFDS registers are rewritten on
    // every beat irrespective of operation.
    double reg_pj =
        double(trace.cycles) * double(n.totalSequentialBits()) *
        e.flop_bit;

    // Stronger cells at aggressive clock targets switch more charge.
    double over = std::max(0.0, clock_ghz - t.easy_corner_ghz);
    double derate = 1.0 + t.energy_slope_per_ghz * over;

    // pJ per cycle * cycles/s = W: P = E_total[pJ] / cycles *
    // f[GHz] * 1e-3.
    const double cycles = double(trace.cycles);
    const double scale = clock_ghz * 1e-3 / cycles * derate;

    PowerReport r;
    r.fu_dynamic = fu_pj * scale;
    r.route_dynamic = route_pj * scale;
    r.reg_dynamic = reg_pj * scale;

    AreaModel area(lib_);
    r.static_power =
        area.estimate(n, clock_ghz).total() * t.static_power_per_um2;
    return r;
}

PowerReport
PowerModel::estimateFullThroughput(const Netlist &n, Opcode op,
                                   double clock_ghz) const
{
    core::ActivityTrace trace;
    trace.cycles = 1000;
    trace.beats[static_cast<size_t>(op)] = 1000;
    return estimate(n, trace, clock_ghz);
}

} // namespace rayflex::synth
