/**
 * @file
 * Power model: the Fig. 8 / Fig. 9 experiments.
 *
 * Dynamic power is activity-based: the stimulus is an ActivityTrace
 * captured from the cycle simulator (the model analogue of the VCD files
 * the paper records from its testbenches). Per beat of an operation,
 * exactly the functional units that operation uses toggle - RayFlex
 * zero-gates the inputs of every other unit, so their dynamic power is
 * negligible (Section VII-B). Register power is operation-independent:
 * the SRFDS stage registers clock and are rewritten on every beat
 * regardless of which fields hold valid data, which is why adding
 * operations raises box/triangle power even though those ops use none
 * of the new hardware.
 *
 * Static power scales with area and sits an order of magnitude below
 * dynamic power at 1 GHz for this technology.
 */
#ifndef RAYFLEX_SYNTH_POWER_HH
#define RAYFLEX_SYNTH_POWER_HH

#include "core/datapath.hh"
#include "synth/area.hh"
#include "synth/cells.hh"
#include "synth/netlist.hh"

namespace rayflex::synth
{

/** Power estimate in watts, decomposed by source. */
struct PowerReport
{
    double fu_dynamic = 0;     ///< functional-unit switching
    double reg_dynamic = 0;    ///< pipeline/state register clocking
    double route_dynamic = 0;  ///< operand steering and gating
    double static_power = 0;   ///< leakage (area-proportional)

    double
    total() const
    {
        return fu_dynamic + reg_dynamic + route_dynamic + static_power;
    }
};

/** Activity-based power estimator. */
class PowerModel
{
  public:
    explicit PowerModel(const CellLibrary &lib = CellLibrary::nangate15())
        : lib_(lib)
    {}

    /**
     * Estimate power from an activity trace.
     *
     * @param n         Structural netlist of the configuration.
     * @param trace     Beats per opcode and cycles simulated (from
     *                  core::RayFlexDatapath::activity()).
     * @param clock_ghz Clock frequency the design runs (and was
     *                  synthesized) at.
     */
    PowerReport estimate(const Netlist &n,
                         const core::ActivityTrace &trace,
                         double clock_ghz) const;

    /**
     * Convenience for the paper's full-throughput experiments: power
     * when the pipeline processes one beat of `op` every cycle.
     */
    PowerReport estimateFullThroughput(const Netlist &n, Opcode op,
                                       double clock_ghz) const;

  private:
    const CellLibrary &lib_;
};

} // namespace rayflex::synth

#endif // RAYFLEX_SYNTH_POWER_HH
