/**
 * @file
 * Datapath power model: the Fig. 8 / Fig. 9 experiments, and the
 * per-beat energy kernel of the chip-level component model.
 *
 * Dynamic power is activity-based. Per beat of an operation, exactly
 * the functional units that operation uses toggle — RayFlex zero-gates
 * the inputs of every other unit, so their dynamic power is negligible
 * (Section VII-B). Register power is operation-independent: the SRFDS
 * stage registers clock and are rewritten on every beat regardless of
 * which fields hold valid data, which is why adding operations raises
 * box/triangle power even though those ops use none of the new
 * hardware. Static power scales with area and sits an order of
 * magnitude below dynamic power at 1 GHz for this technology.
 *
 * Two stimuli drive the same energy arithmetic:
 *  - PowerModel::estimate keeps the paper's bench-level interface: a
 *    core::ActivityTrace captured from a bare datapath (the model
 *    analogue of the paper's VCD files) prices ONE pipeline instance.
 *  - datapathBeatEnergyPj() exposes the per-opcode beat-energy loop as
 *    a standalone function over any beats-per-opcode array, so
 *    synth::ChipCostModel (synth/chip_cost.hh) can drive the identical
 *    arithmetic from the real simulator's bvh::RtUnitStats::beats_by_op
 *    counters — the datapath component of a chip report and the legacy
 *    single-datapath estimate agree bit-for-bit by construction.
 *
 * This model prices logic and registers only; SRAM-backed structures
 * (caches, MSHRs, packet stacks) are priced by the SRAM macro seam in
 * synth/sram.hh and composed in synth/chip_cost.hh.
 */
#ifndef RAYFLEX_SYNTH_POWER_HH
#define RAYFLEX_SYNTH_POWER_HH

#include <array>

#include "core/datapath.hh"
#include "synth/area.hh"
#include "synth/cells.hh"
#include "synth/netlist.hh"

namespace rayflex::synth
{

/** Datapath switching energy of a run, in picojoules, before the
 *  frequency/derate scaling that turns it into watts. */
struct BeatEnergyPj
{
    double fu_pj = 0;    ///< functional-unit switching
    double route_pj = 0; ///< operand steering and gating legs
};

/**
 * The shared per-opcode beat-energy kernel: energy switched by
 * `beats[op]` beats of each opcode through netlist `n`. Zero-gated
 * opcodes (zero beats) contribute exactly nothing. Both
 * PowerModel::estimate (ActivityTrace stimulus) and ChipCostModel
 * (RtUnitStats::beats_by_op stimulus) call this one function, which is
 * what makes their datapath terms bit-for-bit identical.
 */
BeatEnergyPj datapathBeatEnergyPj(
    const Netlist &n, const std::array<uint64_t, kNumOpcodes> &beats,
    const EnergyLibrary &e);

/** Power estimate in watts, decomposed by source. */
struct PowerReport
{
    double fu_dynamic = 0;     ///< functional-unit switching
    double reg_dynamic = 0;    ///< pipeline/state register clocking
    double route_dynamic = 0;  ///< operand steering and gating
    double static_power = 0;   ///< leakage (area-proportional)

    double
    total() const
    {
        return fu_dynamic + reg_dynamic + route_dynamic + static_power;
    }
};

/** Activity-based power estimator. */
class PowerModel
{
  public:
    explicit PowerModel(const CellLibrary &lib = CellLibrary::nangate15())
        : lib_(lib)
    {}

    /**
     * Estimate power from an activity trace.
     *
     * @param n         Structural netlist of the configuration.
     * @param trace     Beats per opcode and cycles simulated (from
     *                  core::RayFlexDatapath::activity()).
     * @param clock_ghz Clock frequency the design runs (and was
     *                  synthesized) at.
     */
    PowerReport estimate(const Netlist &n,
                         const core::ActivityTrace &trace,
                         double clock_ghz) const;

    /**
     * Convenience for the paper's full-throughput experiments: power
     * when the pipeline processes one beat of `op` every cycle.
     */
    PowerReport estimateFullThroughput(const Netlist &n, Opcode op,
                                       double clock_ghz) const;

  private:
    const CellLibrary &lib_;
};

} // namespace rayflex::synth

#endif // RAYFLEX_SYNTH_POWER_HH
