/**
 * @file
 * SRAM macro model: bits -> area, leakage and access energy.
 *
 * The paper's synthesis flow covers only the intersection datapath;
 * every storage structure the performance model added since (NodeCache
 * arrays, the MSHR file, packet stacks, the banked SharedL2) would be
 * compiler-generated SRAM macros on a real chip, not synthesized
 * flops. This header is that seam: a macro is fully described by its
 * bit count, and three pure functions turn bits into um^2, watts of
 * leakage and pJ per access using the SramLibrary constants
 * (synth/cells.hh). The chip cost model (synth/chip_cost.hh) is the
 * only intended caller, but the functions are free so tests can pin
 * them directly.
 *
 * Contract: a zero-bit macro costs exactly 0.0 in every function —
 * structures a configuration does not instantiate (mshrs == 0, packet
 * width 1, L2 off) must not leak phantom area or energy into a report.
 */
#ifndef RAYFLEX_SYNTH_SRAM_HH
#define RAYFLEX_SYNTH_SRAM_HH

#include <cstdint>

#include "synth/cells.hh"

namespace rayflex::synth
{

/** Macro area in um^2: bitcell array plus periphery overhead. */
inline double
sramAreaUm2(uint64_t bits, const SramLibrary &s)
{
    if (bits == 0)
        return 0.0;
    return double(bits) * s.area_per_bit * (1.0 + s.periphery_frac);
}

/** Macro leakage in watts (area-proportional; zero bits leak 0.0). */
inline double
sramLeakageW(uint64_t bits, const SramLibrary &s)
{
    if (bits == 0)
        return 0.0;
    return sramAreaUm2(bits, s) * s.leakage_per_um2;
}

/** Energy of ONE access that reads/writes `accessed_bits` of the
 *  macro, in pJ: a fixed decode/sense term plus a per-bit term. A
 *  macro that is never accessed contributes no dynamic energy (the
 *  caller multiplies by an access count); a zero-bit macro costs 0.0
 *  even for the fixed term. */
inline double
sramAccessPj(uint64_t macro_bits, uint64_t accessed_bits,
             const SramLibrary &s)
{
    if (macro_bits == 0)
        return 0.0;
    return s.access_base_pj + double(accessed_bits) * s.read_pj_per_bit;
}

} // namespace rayflex::synth

#endif // RAYFLEX_SYNTH_SRAM_HH
