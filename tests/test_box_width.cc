/**
 * @file
 * Tests of the configurable BVH node width (Section I: "RayFlex can
 * easily model a 4-wide BVH tree specified by the AMD RDNA2/3 ISAs or a
 * 6-wide BVH tree used in Mesa"): the generic sorting network, the
 * width-parameterized box lane, and the width scaling of the synthesis
 * model.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/datapath.hh"
#include "core/golden.hh"
#include "core/quadsort.hh"
#include "core/workloads.hh"
#include "synth/area.hh"

using namespace rayflex::core;
using namespace rayflex::fp;

// ----- the generic Batcher network -----

TEST(SortNetwork, ComparatorCounts)
{
    // Known Batcher odd-even mergesort sizes; n=4 must be the paper's
    // 5-comparator QuadSort.
    EXPECT_EQ(sortNetworkComparators(1), 0u);
    EXPECT_EQ(sortNetworkComparators(2), 1u);
    EXPECT_EQ(sortNetworkComparators(3), 3u);
    EXPECT_EQ(sortNetworkComparators(4), 5u);
    EXPECT_EQ(sortNetworkComparators(8), 19u);
    EXPECT_GT(sortNetworkComparators(6), 5u);
    EXPECT_LT(sortNetworkComparators(6), 19u);
}

TEST(SortNetwork, MatchesQuadSortAtWidthFour)
{
    std::mt19937_64 rng(3);
    std::uniform_real_distribution<float> d(-50.0f, 50.0f);
    for (int iter = 0; iter < 5000; ++iter) {
        std::array<SortRecord<uint8_t>, 4> a;
        for (int i = 0; i < 4; ++i)
            a[size_t(i)] = {toBits(d(rng)), uint8_t(i)};
        std::array<SortRecord<uint8_t>, 8> b{};
        for (int i = 0; i < 4; ++i)
            b[size_t(i)] = a[size_t(i)];
        auto qs = quadSort(a);
        sortNetwork(b, 4);
        for (int i = 0; i < 4; ++i) {
            ASSERT_EQ(b[size_t(i)].key, qs[size_t(i)].key);
            ASSERT_EQ(b[size_t(i)].payload, qs[size_t(i)].payload);
        }
    }
}

struct NetworkWidth : public ::testing::TestWithParam<size_t>
{};

TEST_P(NetworkWidth, SortsRandomInputs)
{
    const size_t n = GetParam();
    std::mt19937_64 rng(n);
    std::uniform_real_distribution<float> d(-100.0f, 100.0f);
    for (int iter = 0; iter < 5000; ++iter) {
        std::array<SortRecord<uint8_t>, 8> r{};
        for (size_t i = 0; i < 8; ++i)
            r[i] = {toBits(d(rng)), uint8_t(i)};
        auto before = r;
        sortNetwork(r, n);
        for (size_t i = 0; i + 1 < n; ++i)
            ASSERT_TRUE(leF32(r[i].key, r[i + 1].key)) << "n=" << n;
        // Entries beyond n untouched.
        for (size_t i = n; i < 8; ++i)
            ASSERT_EQ(r[i].payload, before[i].payload);
        // Same multiset of payloads within [0, n).
        std::array<bool, 8> seen{};
        for (size_t i = 0; i < n; ++i)
            seen[r[i].payload] = true;
        for (size_t i = 0; i < n; ++i)
            ASSERT_TRUE(seen[before[i].payload]);
    }
}

TEST_P(NetworkWidth, ZeroOnePrinciple)
{
    // A comparator network sorts all inputs iff it sorts all 0/1
    // sequences: verify exhaustively for this width.
    const size_t n = GetParam();
    for (uint32_t bits = 0; bits < (1u << n); ++bits) {
        std::array<SortRecord<uint8_t>, 8> r{};
        for (size_t i = 0; i < n; ++i)
            r[i] = {toBits(float((bits >> i) & 1u)), uint8_t(i)};
        sortNetwork(r, n);
        for (size_t i = 0; i + 1 < n; ++i)
            ASSERT_TRUE(leF32(r[i].key, r[i + 1].key))
                << "n=" << n << " bits=" << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, NetworkWidth,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ----- the width-parameterized datapath -----

struct BoxWidth : public ::testing::TestWithParam<unsigned>
{};

TEST_P(BoxWidth, FunctionalMatchesGolden)
{
    const unsigned w = GetParam();
    WorkloadGen gen(1000 + w);
    DistanceAccumulators acc;
    for (int i = 0; i < 10000; ++i) {
        DatapathInput in = gen.rayBoxOp(uint64_t(i));
        // Populate all slots up to the width under test.
        for (size_t b = 4; b < w; ++b)
            in.boxes[b] = gen.box();
        DatapathOutput out = functionalEval(in, acc, w);
        BoxResult g = golden::rayBoxN(in.ray, in.boxes, w);
        for (size_t b = 0; b < kMaxBoxesPerOp; ++b) {
            ASSERT_EQ(out.box.hit[b], g.hit[b]) << "w=" << w;
            ASSERT_EQ(out.box.order[b], g.order[b]) << "w=" << w;
            ASSERT_EQ(out.box.sorted_dist[b], g.sorted_dist[b])
                << "w=" << w;
        }
        // Slots beyond the width always miss and sort last.
        for (size_t b = w; b < kMaxBoxesPerOp; ++b)
            ASSERT_FALSE(out.box.hit[b]);
    }
}

TEST_P(BoxWidth, PipelinedDatapathHonoursWidth)
{
    const unsigned w = GetParam();
    DatapathConfig cfg = kBaselineUnified;
    cfg.box_width = w;
    RayFlexDatapath dp(cfg);

    WorkloadGen gen(2000 + w);
    std::vector<DatapathInput> inputs;
    for (int i = 0; i < 200; ++i) {
        DatapathInput in = gen.rayBoxOp(uint64_t(i));
        for (size_t b = 4; b < w; ++b)
            in.boxes[b] = gen.box();
        inputs.push_back(in);
    }
    auto outs = runBatch(dp, inputs);
    for (size_t i = 0; i < inputs.size(); ++i) {
        BoxResult g = golden::rayBoxN(inputs[i].ray, inputs[i].boxes, w);
        for (size_t b = 0; b < kMaxBoxesPerOp; ++b) {
            ASSERT_EQ(outs[i].box.hit[b], g.hit[b]);
            ASSERT_EQ(outs[i].box.order[b], g.order[b]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BoxWidth, ::testing::Values(1, 2, 4, 6, 8));

// ----- synthesis scaling -----

TEST(BoxWidthSynth, FuCountsScaleLinearly)
{
    using rayflex::synth::Netlist;
    DatapathConfig w4 = kBaselineUnified;
    DatapathConfig w6 = kBaselineUnified;
    w6.box_width = 6;
    DatapathConfig w8 = kBaselineUnified;
    w8.box_width = 8;

    Netlist n4 = Netlist::build(w4);
    Netlist n6 = Netlist::build(w6);
    Netlist n8 = Netlist::build(w8);

    // Stage-2 adders: 6 per box (triangle lane needs only 9).
    EXPECT_EQ(n4.stages[1].provisioned.adders, 24u);
    EXPECT_EQ(n6.stages[1].provisioned.adders, 36u);
    EXPECT_EQ(n8.stages[1].provisioned.adders, 48u);
    // Stage-4 comparators: 10 per box.
    EXPECT_EQ(n4.stages[3].provisioned.comparators, 40u);
    EXPECT_EQ(n6.stages[3].provisioned.comparators, 60u);
    EXPECT_EQ(n8.stages[3].provisioned.comparators, 80u);
    // Stage-10 sorting networks: 2 x Batcher(n).
    EXPECT_EQ(n4.stages[9].provisioned.sort_cmps, 10u);
    EXPECT_EQ(n6.stages[9].provisioned.sort_cmps,
              2 * sortNetworkComparators(6));
    EXPECT_EQ(n8.stages[9].provisioned.sort_cmps, 38u);
    // Sequential bits grow with width.
    EXPECT_GT(n6.totalSequentialBits(), n4.totalSequentialBits());
    EXPECT_GT(n8.totalSequentialBits(), n6.totalSequentialBits());
}

TEST(BoxWidthSynth, AreaMonotoneInWidth)
{
    using rayflex::synth::AreaModel;
    using rayflex::synth::Netlist;
    AreaModel m;
    double prev = 0;
    for (unsigned w : {1u, 2u, 4u, 6u, 8u}) {
        DatapathConfig cfg = kBaselineUnified;
        cfg.box_width = w;
        double a = m.estimate(Netlist::build(cfg), 1.0).total();
        EXPECT_GT(a, prev) << "w=" << w;
        prev = a;
    }
}

TEST(BoxWidthSynth, DefaultWidthUnchanged)
{
    // The width extension must not perturb the paper's 4-wide numbers:
    // peak ops/cycle stays 125.
    using rayflex::synth::Netlist;
    auto fu = Netlist::build(kBaselineUnified).totalFus();
    EXPECT_EQ(fu.adders + fu.multipliers + fu.squarers + fu.comparators +
                  fu.sort_cmps,
              125u);
}
