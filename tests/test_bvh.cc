/**
 * @file
 * Tests of the BVH substrate: builder invariants, datapath-driven
 * traversal against the brute-force oracle, and the cycle-level RT-unit
 * wrapper.
 */
#include <gtest/gtest.h>

#include <random>

#include "bvh/builder.hh"
#include "bvh/rt_unit.hh"
#include "bvh/scene.hh"
#include "bvh/traversal.hh"

using namespace rayflex::bvh;
using namespace rayflex::core;

namespace
{

std::vector<SceneTriangle>
smallScene(uint64_t seed)
{
    auto tris = makeSphere({0, 0, 0}, 2.0f, 8, 12);
    auto soup = makeSoup(60, 6.0f, 1.0f, seed,
                         uint32_t(tris.size()));
    tris.insert(tris.end(), soup.begin(), soup.end());
    return tris;
}

rayflex::core::Ray
randomRay(std::mt19937_64 &rng)
{
    std::uniform_real_distribution<float> p(-8.0f, 8.0f);
    std::uniform_real_distribution<float> d(-1.0f, 1.0f);
    float dx = d(rng), dy = d(rng), dz = d(rng);
    if (dx == 0 && dy == 0 && dz == 0)
        dx = 1;
    return makeRay(p(rng), p(rng), p(rng), dx, dy, dz, 0.0f, 100.0f);
}

} // namespace

TEST(BvhBuilder, ValidatesOnGeneratedScenes)
{
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
        Bvh4 bvh = buildBvh4(smallScene(seed));
        EXPECT_EQ(validateBvh4(bvh), "") << "seed " << seed;
        EXPECT_EQ(bvh.tris.size(), smallScene(seed).size());
    }
}

TEST(BvhBuilder, HandlesEmptyAndTiny)
{
    Bvh4 empty = buildBvh4({});
    EXPECT_EQ(empty.tris.size(), 0u);

    Bvh4 one = buildBvh4({{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 7}});
    EXPECT_EQ(validateBvh4(one), "");
    ASSERT_EQ(one.tris.size(), 1u);
    EXPECT_EQ(one.tris[0].id, 7u);
}

TEST(BvhBuilder, DepthIsLogarithmicish)
{
    auto tris = makeSoup(4000, 20.0f, 0.5f, 42, 0);
    Bvh4 bvh = buildBvh4(tris);
    EXPECT_EQ(validateBvh4(bvh), "");
    // 4-wide tree over 4000 triangles: depth should be far below the
    // linear worst case.
    EXPECT_LE(bvh.depth(), 16u);
}

TEST(BvhBuilder, DuplicatePositionsDoNotBreakBuild)
{
    // All triangles at the same location: centroid spread is zero on
    // every axis, forcing the median-split fallback.
    std::vector<SceneTriangle> tris;
    for (uint32_t i = 0; i < 37; ++i)
        tris.push_back({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, i});
    Bvh4 bvh = buildBvh4(tris);
    EXPECT_EQ(validateBvh4(bvh), "");
}

TEST(BvhBuilder, SahBeatsWorstCaseChildCount)
{
    auto tris = makeTerrain(40.0f, 32, 0.5f, 9, 0);
    Bvh4 bvh = buildBvh4(tris);
    EXPECT_EQ(validateBvh4(bvh), "");
    // Every wide node should hold more than one child on average.
    EXPECT_GT(double(bvh.childCount()) / double(bvh.nodes.size()), 2.0);
}

TEST(Traversal, MatchesBruteForceOnRandomRays)
{
    Bvh4 bvh = buildBvh4(smallScene(11));
    Traverser trav(bvh);
    std::mt19937_64 rng(123);
    int hits = 0;
    for (int i = 0; i < 400; ++i) {
        rayflex::core::Ray ray = randomRay(rng);
        HitRecord a = trav.closestHit(ray);
        HitRecord b = trav.bruteForceClosest(ray);
        ASSERT_EQ(a.hit, b.hit) << "ray " << i;
        if (a.hit) {
            ++hits;
            ASSERT_EQ(a.triangle_id, b.triangle_id) << "ray " << i;
            ASSERT_FLOAT_EQ(a.t, b.t) << "ray " << i;
        }
    }
    EXPECT_GT(hits, 10); // scene is dense enough to hit often
}

TEST(Traversal, AnyHitConsistentWithClosestHit)
{
    Bvh4 bvh = buildBvh4(smallScene(13));
    Traverser trav(bvh);
    std::mt19937_64 rng(321);
    for (int i = 0; i < 300; ++i) {
        rayflex::core::Ray ray = randomRay(rng);
        HitRecord c = trav.closestHit(ray);
        EXPECT_EQ(trav.anyHit(ray), c.hit) << "ray " << i;
    }
}

TEST(Traversal, VisitsFarFewerTrianglesThanBruteForce)
{
    auto tris = makeSoup(3000, 30.0f, 0.4f, 5, 0);
    Bvh4 bvh = buildBvh4(tris);
    Traverser trav(bvh);
    std::mt19937_64 rng(55);
    for (int i = 0; i < 100; ++i)
        trav.closestHit(randomRay(rng));
    // The BVH should test only a small fraction of the 3000 triangles
    // per ray on average.
    double tris_per_ray = double(trav.stats().tri_ops) / 100.0;
    EXPECT_LT(tris_per_ray, 300.0);
    EXPECT_GT(trav.stats().box_ops, 0u);
}

TEST(Traversal, RespectsRayExtent)
{
    // A triangle at z=5; a ray whose extent ends at z=3 must miss.
    Bvh4 bvh =
        buildBvh4({{{0, 0, 5}, {0, 2, 5}, {2, 0, 5}, 0}});
    Traverser trav(bvh);
    rayflex::core::Ray short_ray = makeRay(0.5f, 0.5f, 0, 0, 0, 1, 0, 3.0f);
    rayflex::core::Ray long_ray = makeRay(0.5f, 0.5f, 0, 0, 0, 1, 0, 10.0f);
    HitRecord s = trav.closestHit(short_ray);
    HitRecord l = trav.closestHit(long_ray);
    EXPECT_FALSE(s.hit);
    ASSERT_TRUE(l.hit);
    EXPECT_NEAR(l.t, 5.0f, 1e-4f);
}

TEST(RtUnit, MatchesFunctionalTraversal)
{
    Bvh4 bvh = buildBvh4(smallScene(17));
    RayFlexDatapath dp(kBaselineUnified);
    RtUnit unit(bvh, dp);

    std::mt19937_64 rng(77);
    std::vector<rayflex::core::Ray> rays;
    for (uint32_t i = 0; i < 64; ++i) {
        rays.push_back(randomRay(rng));
        unit.submit(rays.back(), i);
    }
    RtUnitStats stats = unit.run();
    EXPECT_EQ(stats.rays_completed, 64u);

    Traverser ref(bvh);
    for (uint32_t i = 0; i < 64; ++i) {
        HitRecord want = ref.closestHit(rays[i]);
        const HitRecord &got = unit.results()[i];
        ASSERT_EQ(got.hit, want.hit) << "ray " << i;
        if (want.hit) {
            ASSERT_EQ(got.triangle_id, want.triangle_id) << "ray " << i;
            ASSERT_FLOAT_EQ(got.t, want.t) << "ray " << i;
        }
    }
}

TEST(RtUnit, UtilizationImprovesWithMoreRaysInFlight)
{
    Bvh4 bvh = buildBvh4(makeSoup(2000, 20.0f, 0.6f, 3, 0));
    std::mt19937_64 rng(99);
    std::vector<rayflex::core::Ray> rays;
    for (int i = 0; i < 128; ++i)
        rays.push_back(randomRay(rng));

    auto run_with = [&](unsigned entries) {
        RayFlexDatapath dp(kBaselineUnified);
        RtUnitConfig cfg;
        cfg.ray_buffer_entries = entries;
        RtUnit unit(bvh, dp, cfg);
        for (uint32_t i = 0; i < rays.size(); ++i)
            unit.submit(rays[i], i);
        return unit.run();
    };

    RtUnitStats one = run_with(1);
    RtUnitStats many = run_with(32);
    EXPECT_GT(many.utilization(), one.utilization());
    EXPECT_LT(many.cycles, one.cycles);
}

TEST(RtUnit, MemoryLatencyCostsCycles)
{
    Bvh4 bvh = buildBvh4(makeSoup(500, 15.0f, 0.6f, 4, 0));
    std::mt19937_64 rng(111);
    std::vector<rayflex::core::Ray> rays;
    for (int i = 0; i < 32; ++i)
        rays.push_back(randomRay(rng));

    auto run_with = [&](unsigned latency) {
        RayFlexDatapath dp(kBaselineUnified);
        RtUnitConfig cfg;
        cfg.mem_latency = latency;
        RtUnit unit(bvh, dp, cfg);
        for (uint32_t i = 0; i < rays.size(); ++i)
            unit.submit(rays[i], i);
        return unit.run();
    };

    RtUnitStats fast = run_with(2);
    RtUnitStats slow = run_with(100);
    EXPECT_LT(fast.cycles, slow.cycles);
    // Results must not depend on memory latency.
    EXPECT_EQ(fast.rays_completed, slow.rays_completed);
}

TEST(Scene, GeneratorsProduceFiniteGeometry)
{
    for (const auto &tris :
         {makeSphere({1, 2, 3}, 2.0f, 6, 8), makeTorus({0, 0, 0}, 3.0f,
                                                       1.0f, 8, 8),
          makeTerrain(10.0f, 8, 0.4f, 1), makeSoup(50, 5.0f, 1.0f, 2)}) {
        EXPECT_FALSE(tris.empty());
        for (const auto &t : tris) {
            for (const Vec3 &v : {t.v0, t.v1, t.v2}) {
                EXPECT_TRUE(std::isfinite(v.x));
                EXPECT_TRUE(std::isfinite(v.y));
                EXPECT_TRUE(std::isfinite(v.z));
            }
        }
    }
}

TEST(Scene, CameraRaysCoverTheFrustum)
{
    Camera cam;
    cam.width = 8;
    cam.height = 8;
    rayflex::core::Ray centre = cam.primaryRay(4, 4, 100.0f);
    rayflex::core::Ray corner = cam.primaryRay(0, 0, 100.0f);
    // Both normalized directions, distinct.
    EXPECT_NE(centre.dir, corner.dir);
}

TEST(Scene, PointCloudShape)
{
    auto pts = makePointCloud(100, 24, 4, 9);
    ASSERT_EQ(pts.size(), 100u);
    for (const auto &p : pts) {
        EXPECT_EQ(p.coords.size(), 24u);
        for (float c : p.coords)
            EXPECT_TRUE(std::isfinite(c));
    }
}
