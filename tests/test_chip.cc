/**
 * @file
 * Tests of the multi-unit chip mode (sim::EngineConfig::chip) and the
 * SharedL2 tier behind the per-unit L1s: the PR-5 timing pin (an
 * inactive chip config reproduces the single-unit schedule bit-for-bit,
 * counters hard-coded from that tree), hit bit-equality against the
 * scalar engine across the chip configuration grid, commutative
 * merging of the new L2Stats/interconnect counters through the full
 * chip report at 1/2/8 workers, the L1-miss/L2-lookup conservation
 * invariant, cross-unit merges appearing on coherent workloads, the
 * shared-beats-equal-capacity-private acceptance property, unit-count
 * clamping and the warm-cache exclusion.
 */
#include <gtest/gtest.h>

#include "bvh/builder.hh"
#include "bvh/scene.hh"
#include "core/raygen.hh"
#include "core/workloads.hh"
#include "sim/engine.hh"

using namespace rayflex;
using namespace rayflex::bvh;
using namespace rayflex::core;
using rayflex::fp::toBits;

namespace
{

/** Bit-level equality of two hit records (same helper contract as
 *  test_sim_engine: float == would accept -0.0f vs 0.0f). */
::testing::AssertionResult
bitIdentical(const HitRecord &a, const HitRecord &b)
{
    if (a.hit != b.hit || a.triangle_id != b.triangle_id ||
        toBits(a.t) != toBits(b.t) || toBits(a.u) != toBits(b.u) ||
        toBits(a.v) != toBits(b.v) || toBits(a.w) != toBits(b.w))
        return ::testing::AssertionFailure()
               << "hit records differ: {" << a.hit << ", " << a.t << ", "
               << a.triangle_id << "} vs {" << b.hit << ", " << b.t
               << ", " << b.triangle_id << "}";
    return ::testing::AssertionSuccess();
}

/** The same mixed scene the PR-4/PR-5 pins were captured on
 *  (test_issue_width, test_packet, test_mem_model). */
Bvh4
testScene()
{
    auto tris = makeSphere({0, 0, 0}, 2.0f, 12, 16);
    uint32_t id = uint32_t(tris.size());
    auto soup = makeSoup(300, 6.0f, 0.8f, 17, id);
    tris.insert(tris.end(), soup.begin(), soup.end());
    return buildBvh4(std::move(tris));
}

/** Coherent camera rays plus random rays (some aimed away). */
std::vector<Ray>
testRays(const Bvh4 &bvh, size_t n_random)
{
    Camera cam;
    cam.look_at = bvh.root_bounds.centre();
    cam.eye = {0.5f, 1.0f, 9.0f};
    cam.width = 16;
    cam.height = 16;
    std::vector<Ray> rays;
    for (unsigned y = 0; y < cam.height; ++y)
        for (unsigned x = 0; x < cam.width; ++x)
            rays.push_back(cam.primaryRay(x, y, 100.0f));
    WorkloadGen gen(99);
    for (size_t i = 0; i < n_random; ++i)
        rays.push_back(gen.ray(8.0f));
    return rays;
}

/** A chip engine config over the cached L1 and the probe L2. */
sim::EngineConfig
chipConfig(unsigned units, sim::L2Mode l2)
{
    sim::EngineConfig cfg;
    cfg.threads = 1;
    cfg.batch_size = 64;
    cfg.rt.mem_backend = MemBackend::NodeCache;
    cfg.rt.cache = kProbeCache4KiB;
    cfg.chip.units = units;
    cfg.chip.l2 = l2;
    cfg.chip.l2cfg = kProbeL2_128KiB;
    return cfg;
}

} // namespace

TEST(Chip, InactiveChipReproducesPr5ScheduleBitForBit)
{
    // The regression pin: units == 1 with the L2 off (the ChipConfig
    // default) must take the single-unit engine path and reproduce the
    // PR-5 schedule EXACTLY — the counters below are the same numbers
    // test_issue_width pins for the default and packet-8 configs. Any
    // drift means the chip refactor (run() decomposition, the advance
    // guard, the clocked L1 access) perturbed single-unit timing,
    // which the bit-for-bit contract forbids.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);

    sim::EngineConfig scalar;
    scalar.threads = 1;
    scalar.batch_size = 64;
    scalar.chip.units = 1;          // explicit, and explicitly off
    scalar.chip.l2 = sim::L2Mode::Off;
    ASSERT_FALSE(scalar.chip.active());
    sim::EngineReport s = sim::Engine(scalar).run(bvh, rays);
    EXPECT_EQ(s.unit.cycles, 6211u);
    EXPECT_EQ(s.unit.datapath_beats, 4791u);
    EXPECT_EQ(s.unit.datapath_idle, 1420u);
    EXPECT_EQ(s.unit.mem_requests, 3212u);
    EXPECT_EQ(s.unit.stall_on_memory, 1129u);
    EXPECT_EQ(s.unit.rays_completed, rays.size());
    EXPECT_EQ(s.unit.chip_cycles, 0u);
    EXPECT_TRUE(s.unit.l2_banks.empty());

    sim::EngineConfig packet8 = scalar;
    packet8.rt.packet.width = 8;
    sim::EngineReport p = sim::Engine(packet8).run(bvh, rays);
    EXPECT_EQ(p.unit.cycles, 10154u);
    EXPECT_EQ(p.unit.datapath_beats, 4793u);
    EXPECT_EQ(p.unit.datapath_idle, 5361u);
    EXPECT_EQ(p.unit.mem_requests, 968u);
    EXPECT_EQ(p.unit.stall_on_memory, 5027u);
    EXPECT_EQ(p.unit.chip_cycles, 0u);
    EXPECT_TRUE(p.unit.l2_banks.empty());
}

TEST(Chip, HitsBitIdenticalToScalarAcrossChipGrid)
{
    // Memory timing must never change intersection results: every
    // chip configuration — unit counts, L2 modes, packets, multi-issue,
    // MSHRs, any-hit — produces hit records bit-identical to the
    // scalar single-unit engine.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);

    sim::EngineConfig ref_cfg;
    ref_cfg.threads = 1;
    ref_cfg.batch_size = 64;
    sim::EngineReport ref = sim::Engine(ref_cfg).run(bvh, rays);

    for (unsigned units : {1u, 2u, 4u}) {
        for (sim::L2Mode l2 : {sim::L2Mode::Off, sim::L2Mode::Shared,
                               sim::L2Mode::Private}) {
            sim::EngineConfig cfg = chipConfig(units, l2);
            sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
            ASSERT_EQ(rep.hits.size(), ref.hits.size());
            for (size_t i = 0; i < rays.size(); ++i)
                EXPECT_TRUE(bitIdentical(rep.hits[i], ref.hits[i]))
                    << "units=" << units << " l2=" << int(l2)
                    << " ray " << i;
            EXPECT_EQ(rep.unit.rays_completed, rays.size());
        }
    }

    // Every PR-4/5 knob at once on a wide chip.
    sim::EngineConfig loaded = chipConfig(8, sim::L2Mode::Shared);
    loaded.rt.packet.width = 4;
    loaded.rt.issue_width = 2;
    loaded.rt.mshrs = 4;
    sim::EngineReport rep = sim::Engine(loaded).run(bvh, rays);
    for (size_t i = 0; i < rays.size(); ++i)
        EXPECT_TRUE(bitIdentical(rep.hits[i], ref.hits[i])) << i;

    // Any-hit chip runs agree with the any-hit scalar engine on the
    // occlusion flag (the only defined field).
    sim::EngineReport any_ref = sim::Engine(ref_cfg).run(bvh, rays, true);
    sim::EngineReport any_chip =
        sim::Engine(chipConfig(4, sim::L2Mode::Shared))
            .run(bvh, rays, true);
    for (size_t i = 0; i < rays.size(); ++i)
        EXPECT_EQ(any_chip.hits[i].hit, any_ref.hits[i].hit) << i;
}

TEST(Chip, L2StatsMergeIsCommutative)
{
    // The bank vector merges elementwise with the shorter side
    // zero-extended, so merging in either order gives the same totals —
    // the property that lets sharded workers aggregate chip batches in
    // claim order.
    L2Stats x{1, 2, 3, 4, 5, 6};
    L2Stats y{10, 20, 30, 40, 50, 60};
    L2Stats xy = x, yx = y;
    xy.merge(y);
    yx.merge(x);
    EXPECT_EQ(xy, yx);
    EXPECT_EQ(xy.hits, 11u);
    EXPECT_EQ(xy.cross_unit_merges, 44u);
    EXPECT_EQ(xy.hops, 66u);

    RtUnitStats a, b;
    a.chip_cycles = 100;
    a.l2_banks = {L2Stats{1, 1, 0, 0, 2, 4}, L2Stats{0, 3, 1, 1, 0, 2}};
    b.chip_cycles = 50;
    b.l2_banks = {L2Stats{5, 0, 0, 0, 1, 0}, L2Stats{2, 2, 2, 1, 3, 6},
                  L2Stats{7, 0, 0, 0, 0, 8}, L2Stats{0, 1, 0, 0, 0, 0}};
    RtUnitStats ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab, ba);
    EXPECT_EQ(ab.chip_cycles, 150u);
    ASSERT_EQ(ab.l2_banks.size(), 4u);
    EXPECT_EQ(ab.l2_banks[0].hits, 6u);
    EXPECT_EQ(ab.l2_banks[2].hops, 8u);
    EXPECT_EQ(ab.l2Total().misses, 7u);
}

TEST(Chip, DividedAcrossSplitsCapacityExactlyOrThrows)
{
    // The iso-capacity helper behind Private-vs-Shared comparisons: a
    // per-unit config with total capacity preserved, and a hard error
    // when the set count cannot split evenly (a silent rounding of
    // sets would quietly change the capacity under comparison).
    const L2Config per = kProbeL2_128KiB.dividedAcross(4);
    EXPECT_EQ(per.sets, kProbeL2_128KiB.sets / 4);
    EXPECT_EQ(per.ways, kProbeL2_128KiB.ways);
    EXPECT_EQ(per.banks, kProbeL2_128KiB.banks);
    EXPECT_EQ(per.line_bytes, kProbeL2_128KiB.line_bytes);
    EXPECT_EQ(4 * per.capacityBytes(), kProbeL2_128KiB.capacityBytes());
    EXPECT_EQ(kProbeL2_128KiB.dividedAcross(1), kProbeL2_128KiB);

    EXPECT_THROW(kProbeL2_128KiB.dividedAcross(0),
                 std::invalid_argument);
    L2Config odd = kProbeL2_128KiB;
    odd.sets = 6;
    EXPECT_THROW(odd.dividedAcross(4), std::invalid_argument);
    EXPECT_EQ(odd.dividedAcross(3).sets, 2u);
}

TEST(Chip, ChipReportIsWorkerCountInvariant)
{
    // The full chip report — hits, timing, per-bank L2 counters,
    // chip_cycles — must be bit-identical at 1, 2 and 8 workers: chips
    // are constructed per batch, so sharing never crosses a batch
    // boundary and the merge order cannot matter.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);

    sim::EngineConfig base = chipConfig(4, sim::L2Mode::Shared);
    base.batch_size = 32; // 10 batches: enough to shard meaningfully
    base.rt.packet.width = 4;
    base.rt.mshrs = 4;
    sim::EngineReport ref = sim::Engine(base).run(bvh, rays);
    EXPECT_GT(ref.unit.chip_cycles, 0u);
    EXPECT_EQ(ref.unit.l2_banks.size(), size_t(kProbeL2_128KiB.banks));

    for (unsigned threads : {2u, 8u}) {
        sim::EngineConfig cfg = base;
        cfg.threads = threads;
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
        for (size_t i = 0; i < rays.size(); ++i)
            EXPECT_TRUE(bitIdentical(rep.hits[i], ref.hits[i])) << i;
        EXPECT_EQ(rep.unit, ref.unit) << threads << " workers";
    }
}

TEST(Chip, CrossUnitMergesAndConservationOnCoherentRays)
{
    // Round-robin distribution puts adjacent camera rays on different
    // units, so units walk the same subtrees concurrently: a shared L2
    // must observe cross-unit merges. And with L1 and L2 line sizes
    // equal, every missed L1 line is exactly one L2 line lookup, so
    // the L2's hits + misses + merges must equal the L1s' summed
    // misses — nothing is dropped or double-counted between the tiers.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 0); // purely coherent

    sim::EngineConfig cfg = chipConfig(4, sim::L2Mode::Shared);
    cfg.batch_size = 0; // one batch: one chip serves all rays
    sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);

    const L2Stats l2 = rep.unit.l2Total();
    EXPECT_GT(l2.cross_unit_merges, 0u);
    EXPECT_GT(l2.hits, 0u);
    EXPECT_GT(l2.hops, 0u);
    ASSERT_EQ(kProbeCache4KiB.line_bytes, kProbeL2_128KiB.line_bytes);
    EXPECT_EQ(l2.hits + l2.misses + l2.merges, rep.unit.mem.misses);

    // A private L2 sees the same L1 miss stream but can never merge
    // across units.
    sim::EngineConfig priv = cfg;
    priv.chip.l2 = sim::L2Mode::Private;
    sim::EngineReport prep = sim::Engine(priv).run(bvh, rays);
    EXPECT_EQ(prep.unit.l2Total().cross_unit_merges, 0u);
}

TEST(Chip, SharedL2OutperformsEqualCapacityPrivateAtFourUnits)
{
    // The acceptance property behind BM_UnitScalingSweep: at 4 units,
    // one shared 128 KiB L2 finishes the batch in fewer chip cycles
    // than per-unit private L2s of the same TOTAL capacity (sets
    // divided by the unit count) — the shared array holds the whole
    // working set once instead of replicating it four times, and
    // cross-unit merges absorb duplicate DRAM fills.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);

    sim::EngineConfig shared = chipConfig(4, sim::L2Mode::Shared);
    shared.batch_size = 0;
    sim::EngineReport s = sim::Engine(shared).run(bvh, rays);

    sim::EngineConfig priv = shared;
    priv.chip.l2 = sim::L2Mode::Private;
    priv.chip.l2cfg = kProbeL2_128KiB.dividedAcross(4); // iso-capacity
    sim::EngineReport p = sim::Engine(priv).run(bvh, rays);

    EXPECT_LT(s.unit.chip_cycles, p.unit.chip_cycles);
    EXPECT_GT(s.unit.l2Total().hitRate(), p.unit.l2Total().hitRate());
}

TEST(Chip, UnitCountClampsToChipBounds)
{
    // units is clamped to 1..kMaxChipUnits inside the batch runner:
    // 0 behaves as 1 and anything above the ceiling as kMaxChipUnits,
    // so a sweep driver can pass raw knob values safely.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 16);

    sim::EngineReport zero =
        sim::Engine(chipConfig(0, sim::L2Mode::Shared)).run(bvh, rays);
    sim::EngineReport one =
        sim::Engine(chipConfig(1, sim::L2Mode::Shared)).run(bvh, rays);
    EXPECT_EQ(zero.unit, one.unit);

    sim::EngineReport over =
        sim::Engine(chipConfig(99, sim::L2Mode::Shared)).run(bvh, rays);
    sim::EngineReport max =
        sim::Engine(chipConfig(sim::kMaxChipUnits, sim::L2Mode::Shared))
            .run(bvh, rays);
    EXPECT_EQ(over.unit, max.unit);
    for (size_t i = 0; i < rays.size(); ++i)
        EXPECT_TRUE(bitIdentical(over.hits[i], one.hits[i])) << i;
}

TEST(Chip, WarmCacheAndChipModeAreMutuallyExclusive)
{
    // Chip batches run cold by construction (a fresh chip per batch is
    // what keeps sharding deterministic), so combining them with the
    // warm-cache mode is a configuration error, not a silent fallback.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 0);

    sim::EngineConfig cfg = chipConfig(2, sim::L2Mode::Shared);
    cfg.warm_cache = true;
    EXPECT_THROW(sim::Engine(cfg).run(bvh, rays),
                 std::invalid_argument);

    // The Functional model has no memory system: chip settings are
    // ignored there, not an error.
    sim::EngineConfig fn = chipConfig(4, sim::L2Mode::Shared);
    fn.model = sim::ExecutionModel::Functional;
    sim::EngineConfig fn_ref;
    fn_ref.threads = 1;
    fn_ref.model = sim::ExecutionModel::Functional;
    sim::EngineReport a = sim::Engine(fn).run(bvh, rays);
    sim::EngineReport b = sim::Engine(fn_ref).run(bvh, rays);
    for (size_t i = 0; i < rays.size(); ++i)
        EXPECT_TRUE(bitIdentical(a.hits[i], b.hits[i])) << i;
}
