/**
 * @file
 * Randomized equivalence tests: hardware model vs golden software model.
 *
 * The paper verifies the RTL "with special cases and hundreds of
 * thousands of random test cases, covering all ray-box, ray-triangle,
 * Euclidean, and cosine operations" (Section VI). This suite is that
 * campaign for the C++ model: every random beat must agree bit-for-bit
 * with the golden model, through both the single-shot functional
 * evaluator and the cycle-accurate pipeline. The double-precision
 * geometric reference additionally bounds the FP32 answers away from
 * degenerate geometry.
 */
#include <gtest/gtest.h>

#include "core/datapath.hh"
#include "core/golden.hh"
#include "core/workloads.hh"

using namespace rayflex::core;
using rayflex::fp::fromBits;
using rayflex::fp::isNaNF32;

namespace
{

void
expectBoxAgrees(const DatapathInput &in, const DatapathOutput &out)
{
    BoxResult g = golden::rayBox4(in.ray, in.boxes);
    for (int i = 0; i < 4; ++i) {
        ASSERT_EQ(out.box.hit[i], g.hit[i]) << "tag " << in.tag;
        ASSERT_EQ(out.box.order[i], g.order[i]) << "tag " << in.tag;
        ASSERT_EQ(out.box.sorted_dist[i], g.sorted_dist[i])
            << "tag " << in.tag;
    }
}

void
expectTriAgrees(const DatapathInput &in, const DatapathOutput &out)
{
    TriangleResult g = golden::rayTriangle(in.ray, in.tri);
    ASSERT_EQ(out.tri.hit, g.hit) << "tag " << in.tag;
    auto same = [](rayflex::fp::F32 a, rayflex::fp::F32 b) {
        return a == b || (isNaNF32(a) && isNaNF32(b));
    };
    ASSERT_TRUE(same(out.tri.t_num, g.t_num)) << "tag " << in.tag;
    ASSERT_TRUE(same(out.tri.t_den, g.t_den)) << "tag " << in.tag;
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(same(out.tri.uvw[i], g.uvw[i])) << "tag " << in.tag;
}

} // namespace

struct RandomOps : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RandomOps, RayBoxMatchesGolden)
{
    WorkloadGen gen(GetParam());
    DistanceAccumulators acc;
    for (int i = 0; i < 40000; ++i) {
        DatapathInput in = gen.rayBoxOp(uint64_t(i));
        expectBoxAgrees(in, functionalEval(in, acc));
    }
}

TEST_P(RandomOps, AdversarialRayBoxMatchesGolden)
{
    WorkloadGen gen(GetParam() ^ 0xB0B0);
    DistanceAccumulators acc;
    for (int i = 0; i < 20000; ++i) {
        DatapathInput in = gen.adversarialRayBoxOp(uint64_t(i));
        expectBoxAgrees(in, functionalEval(in, acc));
    }
}

TEST_P(RandomOps, RayTriangleMatchesGolden)
{
    WorkloadGen gen(GetParam() ^ 0x7717);
    DistanceAccumulators acc;
    for (int i = 0; i < 40000; ++i) {
        DatapathInput in = gen.rayTriangleOp(uint64_t(i));
        expectTriAgrees(in, functionalEval(in, acc));
    }
}

TEST_P(RandomOps, AdversarialRayTriangleMatchesGolden)
{
    WorkloadGen gen(GetParam() ^ 0xADAD);
    DistanceAccumulators acc;
    for (int i = 0; i < 20000; ++i) {
        DatapathInput in = gen.adversarialRayTriangleOp(uint64_t(i));
        expectTriAgrees(in, functionalEval(in, acc));
    }
}

TEST_P(RandomOps, EuclideanBeatMatchesGolden)
{
    WorkloadGen gen(GetParam() ^ 0xE0C1);
    DistanceAccumulators acc;
    for (int i = 0; i < 40000; ++i) {
        DatapathInput in = gen.euclideanOp(true, uint64_t(i));
        DatapathOutput out = functionalEval(in, acc);
        // reset=true on every beat: the accumulator output equals the
        // beat partial sum.
        ASSERT_EQ(out.euclidean_accumulator,
                  golden::euclideanBeat(in.vec_a, in.vec_b, in.mask));
        ASSERT_TRUE(out.euclidean_reset);
    }
}

TEST_P(RandomOps, CosineBeatMatchesGolden)
{
    WorkloadGen gen(GetParam() ^ 0xC051);
    DistanceAccumulators acc;
    for (int i = 0; i < 40000; ++i) {
        DatapathInput in = gen.cosineOp(true, uint64_t(i));
        DatapathOutput out = functionalEval(in, acc);
        golden::CosineBeat g =
            golden::cosineBeat(in.vec_a, in.vec_b, in.mask);
        ASSERT_EQ(out.angular_dot_product, g.dot);
        ASSERT_EQ(out.angular_norm, g.norm);
        ASSERT_TRUE(out.angular_reset);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOps,
                         ::testing::Values(101, 202, 303));

// ----- pipelined model equals functional model -----

TEST(PipelinedEquivalence, MixedTrafficMatchesFunctional)
{
    WorkloadGen gen(4242);
    std::vector<DatapathInput> inputs;
    for (int i = 0; i < 3000; ++i) {
        switch (gen.engine()() % 4) {
          case 0: inputs.push_back(gen.rayBoxOp(uint64_t(i))); break;
          case 1:
            inputs.push_back(gen.rayTriangleOp(uint64_t(i)));
            break;
          case 2:
            inputs.push_back(gen.euclideanOp(gen.engine()() & 1,
                                             uint64_t(i)));
            break;
          default:
            inputs.push_back(gen.cosineOp(gen.engine()() & 1,
                                          uint64_t(i)));
            break;
        }
    }

    RayFlexDatapath dp(kExtendedUnified);
    std::vector<DatapathOutput> piped = runBatch(dp, inputs);
    ASSERT_EQ(piped.size(), inputs.size());

    DistanceAccumulators acc;
    for (size_t i = 0; i < inputs.size(); ++i) {
        DatapathOutput fn = functionalEval(inputs[i], acc);
        ASSERT_EQ(piped[i].tag, inputs[i].tag);
        ASSERT_EQ(piped[i].op, inputs[i].op);
        switch (inputs[i].op) {
          case Opcode::RayBox:
            for (int b = 0; b < 4; ++b) {
                ASSERT_EQ(piped[i].box.hit[b], fn.box.hit[b]);
                ASSERT_EQ(piped[i].box.order[b], fn.box.order[b]);
            }
            break;
          case Opcode::RayTriangle:
            ASSERT_EQ(piped[i].tri.hit, fn.tri.hit);
            ASSERT_EQ(piped[i].tri.t_num, fn.tri.t_num);
            ASSERT_EQ(piped[i].tri.t_den, fn.tri.t_den);
            break;
          case Opcode::Euclidean:
            ASSERT_EQ(piped[i].euclidean_accumulator,
                      fn.euclidean_accumulator);
            ASSERT_EQ(piped[i].euclidean_reset, fn.euclidean_reset);
            break;
          case Opcode::Cosine:
            ASSERT_EQ(piped[i].angular_dot_product,
                      fn.angular_dot_product);
            ASSERT_EQ(piped[i].angular_norm, fn.angular_norm);
            ASSERT_EQ(piped[i].angular_reset, fn.angular_reset);
            break;
        }
    }
}

TEST(PipelinedEquivalence, BaselineRejectsDistanceOpcodes)
{
    RayFlexDatapath dp(kBaselineUnified);
    EXPECT_FALSE(dp.supports(Opcode::Euclidean));
    EXPECT_FALSE(dp.supports(Opcode::Cosine));
    EXPECT_TRUE(dp.supports(Opcode::RayBox));
    EXPECT_TRUE(dp.supports(Opcode::RayTriangle));

    WorkloadGen gen(5);
    std::vector<DatapathInput> in = {gen.euclideanOp(true, 0)};
    EXPECT_THROW(runBatch(dp, in), std::invalid_argument);
}

// ----- FP32 vs double-precision geometric reference -----

TEST(GeometricSanity, RayBoxAgreesWithDoubleAwayFromBoundaries)
{
    WorkloadGen gen(777);
    DistanceAccumulators acc;
    int checked = 0;
    for (int i = 0; i < 30000; ++i) {
        DatapathInput in = gen.rayBoxOp(uint64_t(i));
        DatapathOutput out = functionalEval(in, acc);
        for (int b = 0; b < 4; ++b) {
            auto ref = golden::refRayBox(in.ray, in.boxes[b]);
            // Only compare when the double result is decisively away
            // from the boundary (|tmin - tmax| not tiny).
            if (ref.has_value() != out.box.hit[b]) {
                // Tolerated only very near a face: verify the geometry
                // is boundary-ish by nudging: recompute with widened
                // extent.
                continue;
            }
            ++checked;
            ASSERT_EQ(out.box.hit[b], ref.has_value());
        }
    }
    // The overwhelming majority of random cases must agree.
    EXPECT_GT(checked, 30000 * 4 * 0.999);
}

TEST(GeometricSanity, RayTriangleDistanceNearDouble)
{
    WorkloadGen gen(888);
    DistanceAccumulators acc;
    int hits = 0;
    for (int i = 0; i < 30000; ++i) {
        DatapathInput in = gen.rayTriangleOp(uint64_t(i));
        DatapathOutput out = functionalEval(in, acc);
        auto ref = golden::refRayTriangle(in.ray, in.tri);
        if (out.tri.hit && ref) {
            ++hits;
            double t_hw = double(fromBits(out.tri.t_num)) /
                          double(fromBits(out.tri.t_den));
            ASSERT_NEAR(t_hw, *ref, std::max(1e-3, *ref * 1e-3));
        }
    }
    EXPECT_GT(hits, 3000); // the generator aims half the rays
}

TEST(GeometricSanity, EuclideanNearDouble)
{
    WorkloadGen gen(999);
    DistanceAccumulators acc;
    for (int i = 0; i < 30000; ++i) {
        DatapathInput in = gen.euclideanOp(true, uint64_t(i));
        DatapathOutput out = functionalEval(in, acc);
        double ref = golden::refEuclidean(in.vec_a, in.vec_b, in.mask);
        double hw = double(fromBits(out.euclidean_accumulator));
        ASSERT_NEAR(hw, ref, std::max(1e-2, ref * 1e-5));
    }
}
