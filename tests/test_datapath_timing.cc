/**
 * @file
 * Timing behaviour of the assembled datapath (Section III-D): fixed
 * 11-cycle latency, one operation per cycle throughput, elastic
 * behaviour under input bubbles and output back-pressure.
 */
#include <gtest/gtest.h>

#include "core/datapath.hh"
#include "core/workloads.hh"
#include "pipeline/drivers.hh"

using namespace rayflex::core;
using namespace rayflex::pipeline;

namespace
{

CyclePattern
hashPattern(uint64_t seed, unsigned pct)
{
    return [seed, pct](uint64_t cycle) {
        uint64_t h = (cycle + seed) * 0x9E3779B97F4A7C15ull;
        return (h >> 33) % 100 < pct;
    };
}

} // namespace

TEST(DatapathTiming, LatencyIsElevenCycles)
{
    RayFlexDatapath dp(kBaselineUnified);
    Simulator sim;
    Source<DatapathInput> src("src", &dp.in());
    Sink<DatapathOutput> sink("sink", &dp.out());
    dp.registerWith(sim);
    sim.add(&src);
    sim.add(&sink);

    WorkloadGen gen(1);
    src.push(gen.rayBoxOp(7));
    ASSERT_TRUE(sim.runUntil([&] { return sink.count() == 1; }, 100));
    // Accepted on cycle 0; delivered on cycle kPipelineLatency.
    EXPECT_EQ(sink.arrivalCycles()[0], kPipelineLatency);
    EXPECT_EQ(sink.received()[0].tag, 7u);
}

TEST(DatapathTiming, ThroughputIsOneOpPerCycle)
{
    RayFlexDatapath dp(kExtendedUnified);
    Simulator sim;
    Source<DatapathInput> src("src", &dp.in());
    Sink<DatapathOutput> sink("sink", &dp.out());
    dp.registerWith(sim);
    sim.add(&src);
    sim.add(&sink);

    WorkloadGen gen(2);
    const int n = 500;
    for (int i = 0; i < n; ++i)
        src.push(gen.rayBoxOp(uint64_t(i)));
    ASSERT_TRUE(sim.runUntil([&] { return sink.count() == size_t(n); },
                             2000));
    // First beat after the pipeline fill, then II = 1.
    const auto &cyc = sink.arrivalCycles();
    EXPECT_EQ(cyc.front(), kPipelineLatency);
    for (size_t i = 1; i < cyc.size(); ++i)
        ASSERT_EQ(cyc[i], cyc[i - 1] + 1);
    EXPECT_EQ(sim.cycle(), uint64_t(n) + kPipelineLatency);
}

TEST(DatapathTiming, ResultsStayInOrderUnderStalls)
{
    RayFlexDatapath dp(kExtendedUnified);
    Simulator sim;
    Source<DatapathInput> src("src", &dp.in(), hashPattern(3, 60));
    Sink<DatapathOutput> sink("sink", &dp.out(), hashPattern(9, 60));
    dp.registerWith(sim);
    sim.add(&src);
    sim.add(&sink);

    WorkloadGen gen(3);
    const int n = 400;
    for (int i = 0; i < n; ++i)
        src.push(gen.rayTriangleOp(uint64_t(i)));
    ASSERT_TRUE(sim.runUntil([&] { return sink.count() == size_t(n); },
                             20000));
    for (int i = 0; i < n; ++i)
        ASSERT_EQ(sink.received()[size_t(i)].tag, uint64_t(i));
}

TEST(DatapathTiming, BackPressureLimitsInFlightOps)
{
    // With the sink never ready, the 11 skid buffers can hold at most
    // 22 beats; the source must then be throttled by the registered
    // ready chain.
    RayFlexDatapath dp(kBaselineUnified);
    Simulator sim;
    Source<DatapathInput> src("src", &dp.in());
    Sink<DatapathOutput> sink("sink", &dp.out(),
                              [](uint64_t) { return false; });
    dp.registerWith(sim);
    sim.add(&src);
    sim.add(&sink);

    WorkloadGen gen(4);
    for (int i = 0; i < 100; ++i)
        src.push(gen.rayBoxOp(uint64_t(i)));
    sim.run(200);
    EXPECT_EQ(sink.count(), 0u);
    EXPECT_EQ(src.sent(), 2u * kNumStages);

    unsigned occupancy = 0;
    for (const auto *st : dp.stages())
        occupancy += st->occupancy();
    EXPECT_EQ(occupancy, 2u * kNumStages);
}

TEST(DatapathTiming, DrainsCompletelyAfterStall)
{
    RayFlexDatapath dp(kBaselineUnified);
    Simulator sim;
    Source<DatapathInput> src("src", &dp.in());
    // Blocked for 50 cycles, then always ready.
    Sink<DatapathOutput> sink("sink", &dp.out(),
                              [](uint64_t c) { return c >= 50; });
    dp.registerWith(sim);
    sim.add(&src);
    sim.add(&sink);

    WorkloadGen gen(5);
    const int n = 60;
    for (int i = 0; i < n; ++i)
        src.push(gen.rayBoxOp(uint64_t(i)));
    ASSERT_TRUE(sim.runUntil([&] { return sink.count() == size_t(n); },
                             1000));
    for (int i = 0; i < n; ++i)
        ASSERT_EQ(sink.received()[size_t(i)].tag, uint64_t(i));
}

TEST(DatapathTiming, BubblesDoNotCorruptStream)
{
    // Sparse input (30% duty): outputs preserve order and values, and
    // the pipeline never invents or drops beats.
    RayFlexDatapath dp(kExtendedUnified);
    Simulator sim;
    Source<DatapathInput> src("src", &dp.in(), hashPattern(11, 30));
    Sink<DatapathOutput> sink("sink", &dp.out());
    dp.registerWith(sim);
    sim.add(&src);
    sim.add(&sink);

    WorkloadGen gen(6);
    const int n = 200;
    std::vector<DatapathInput> inputs;
    for (int i = 0; i < n; ++i) {
        inputs.push_back(gen.euclideanOp(true, uint64_t(i)));
        src.push(inputs.back());
    }
    ASSERT_TRUE(sim.runUntil([&] { return sink.count() == size_t(n); },
                             20000));
    DistanceAccumulators acc;
    for (int i = 0; i < n; ++i) {
        DatapathOutput fn = functionalEval(inputs[size_t(i)], acc);
        ASSERT_EQ(sink.received()[size_t(i)].euclidean_accumulator,
                  fn.euclidean_accumulator);
    }
}

TEST(DatapathTiming, PerStageStatsConsistent)
{
    RayFlexDatapath dp(kBaselineUnified);
    std::vector<DatapathInput> inputs;
    WorkloadGen gen(7);
    for (int i = 0; i < 100; ++i)
        inputs.push_back(gen.rayBoxOp(uint64_t(i)));
    runBatch(dp, inputs);
    for (const auto *st : dp.stages()) {
        EXPECT_EQ(st->stats().accepted, 100u) << st->name();
        EXPECT_EQ(st->stats().delivered, 100u) << st->name();
    }
    EXPECT_EQ(dp.activity().beats[size_t(Opcode::RayBox)], 100u);
}
