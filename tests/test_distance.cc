/**
 * @file
 * Tests of the extended datapath's distance operations (Section V-A):
 * arbitrary-dimension vectors over multiple beats, the
 * reset_accumulator protocol, dimension masking, and the interleaving
 * guarantees (distance beats may be interspersed with any number of
 * box/triangle ops; Euclidean and cosine jobs may intersperse each
 * other because they use separate accumulators).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/datapath.hh"
#include "core/golden.hh"
#include "core/workloads.hh"
#include "pipeline/drivers.hh"

using namespace rayflex::core;
using rayflex::fp::fromBits;
using rayflex::fp::toBits;

namespace
{

/** Build the beats of one Euclidean job over a `dims`-dimensional pair
 *  of vectors (last beat sets reset_accumulator and masks the tail). */
std::vector<DatapathInput>
euclideanJob(const std::vector<float> &a, const std::vector<float> &b,
             uint64_t tag)
{
    std::vector<DatapathInput> beats;
    const size_t dims = a.size();
    for (size_t base = 0; base < dims; base += kEuclideanWidth) {
        DatapathInput in;
        in.op = Opcode::Euclidean;
        in.tag = tag;
        uint16_t mask = 0;
        for (size_t i = 0; i < kEuclideanWidth && base + i < dims; ++i) {
            in.vec_a[i] = toBits(a[base + i]);
            in.vec_b[i] = toBits(b[base + i]);
            mask |= uint16_t(1u << i);
        }
        in.mask = mask;
        in.reset_accumulator = base + kEuclideanWidth >= dims;
        beats.push_back(in);
    }
    return beats;
}

/** Reference squared distance in double. */
double
refSq(const std::vector<float> &a, const std::vector<float> &b)
{
    double s = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        double d = double(a[i]) - double(b[i]);
        s += d * d;
    }
    return s;
}

std::vector<float>
randomVec(WorkloadGen &gen, size_t dims, float lo = -10, float hi = 10)
{
    std::vector<float> v(dims);
    for (float &x : v)
        x = gen.uniform(lo, hi);
    return v;
}

} // namespace

TEST(Distance, SingleBeatSixteenDims)
{
    WorkloadGen gen(1);
    auto a = randomVec(gen, 16);
    auto b = randomVec(gen, 16);
    auto beats = euclideanJob(a, b, 0);
    ASSERT_EQ(beats.size(), 1u);
    DistanceAccumulators acc;
    DatapathOutput out = functionalEval(beats[0], acc);
    EXPECT_TRUE(out.euclidean_reset);
    EXPECT_NEAR(fromBits(out.euclidean_accumulator), refSq(a, b),
                refSq(a, b) * 1e-5 + 1e-3);
}

struct HighDims : public ::testing::TestWithParam<size_t>
{};

TEST_P(HighDims, MultiBeatEuclideanAccumulation)
{
    const size_t dims = GetParam();
    WorkloadGen gen(dims);
    auto a = randomVec(gen, dims);
    auto b = randomVec(gen, dims);
    auto beats = euclideanJob(a, b, 1);

    DistanceAccumulators acc;
    DatapathOutput last;
    for (size_t i = 0; i < beats.size(); ++i) {
        last = functionalEval(beats[i], acc);
        // Only the final beat reports reset.
        EXPECT_EQ(last.euclidean_reset, i + 1 == beats.size());
    }
    double ref = refSq(a, b);
    EXPECT_NEAR(fromBits(last.euclidean_accumulator), ref,
                ref * 1e-4 + 1e-3);
    // Accumulator cleared for the next job.
    EXPECT_EQ(fromBits(rayflex::fp::decode(acc.euclid)), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Dims, HighDims,
                         ::testing::Values(16, 32, 48, 128, 300, 1000));

TEST(Distance, MaskDropsDimensions)
{
    WorkloadGen gen(3);
    DatapathInput in = gen.euclideanOp(true, 0);
    in.mask = 0x00FF; // keep only the low 8 dimensions
    DistanceAccumulators acc;
    DatapathOutput out = functionalEval(in, acc);
    double ref = 0;
    for (int i = 0; i < 8; ++i) {
        double d = double(fromBits(in.vec_a[size_t(i)])) -
                   double(fromBits(in.vec_b[size_t(i)]));
        ref += d * d;
    }
    EXPECT_NEAR(fromBits(out.euclidean_accumulator), ref,
                ref * 1e-5 + 1e-3);
    EXPECT_EQ(out.euclidean_accumulator,
              golden::euclideanBeat(in.vec_a, in.vec_b, in.mask));
}

TEST(Distance, ZeroMaskGivesZero)
{
    WorkloadGen gen(4);
    DatapathInput in = gen.euclideanOp(true, 0);
    in.mask = 0;
    DistanceAccumulators acc;
    DatapathOutput out = functionalEval(in, acc);
    EXPECT_EQ(fromBits(out.euclidean_accumulator), 0.0f);
}

TEST(Distance, CosineMultiBeat)
{
    const size_t dims = 64; // 8 beats of 8
    WorkloadGen gen(5);
    auto a = randomVec(gen, dims);
    auto b = randomVec(gen, dims);

    DistanceAccumulators acc;
    DatapathOutput last;
    for (size_t base = 0; base < dims; base += kCosineWidth) {
        DatapathInput in;
        in.op = Opcode::Cosine;
        in.mask = 0x00FF;
        for (size_t i = 0; i < kCosineWidth; ++i) {
            in.vec_a[i] = toBits(a[base + i]);
            in.vec_b[i] = toBits(b[base + i]);
        }
        in.reset_accumulator = base + kCosineWidth >= dims;
        last = functionalEval(in, acc);
    }
    double ref_dot = 0, ref_norm = 0;
    for (size_t i = 0; i < dims; ++i) {
        ref_dot += double(a[i]) * double(b[i]);
        ref_norm += double(b[i]) * double(b[i]);
    }
    EXPECT_TRUE(last.angular_reset);
    EXPECT_NEAR(fromBits(last.angular_dot_product), ref_dot,
                std::abs(ref_dot) * 1e-3 + 1e-2);
    EXPECT_NEAR(fromBits(last.angular_norm), ref_norm,
                ref_norm * 1e-4 + 1e-2);
}

TEST(Distance, CosineDistanceEndToEnd)
{
    // Full cosine-distance computation as software would do it with the
    // datapath outputs: 1 - dot / (|a| |b|).
    const size_t dims = 24;
    WorkloadGen gen(6);
    auto a = randomVec(gen, dims, 0.1f, 5.0f);
    auto b = randomVec(gen, dims, 0.1f, 5.0f);

    DistanceAccumulators acc;
    DatapathOutput last;
    for (size_t base = 0; base < dims; base += kCosineWidth) {
        DatapathInput in;
        in.op = Opcode::Cosine;
        in.mask = 0x00FF;
        for (size_t i = 0; i < kCosineWidth; ++i) {
            in.vec_a[i] = toBits(a[base + i]);
            in.vec_b[i] = toBits(b[base + i]);
        }
        in.reset_accumulator = base + kCosineWidth >= dims;
        last = functionalEval(in, acc);
    }
    double na = 0, ref_dot = 0, nb = 0;
    for (size_t i = 0; i < dims; ++i) {
        na += double(a[i]) * double(a[i]);
        nb += double(b[i]) * double(b[i]);
        ref_dot += double(a[i]) * double(b[i]);
    }
    double hw_cos = double(fromBits(last.angular_dot_product)) /
                    (std::sqrt(na) *
                     std::sqrt(double(fromBits(last.angular_norm))));
    double ref_cos = ref_dot / (std::sqrt(na) * std::sqrt(nb));
    EXPECT_NEAR(hw_cos, ref_cos, 1e-4);
}

TEST(Distance, JobsInterleaveWithIntersectionOps)
{
    // A long Euclidean job interspersed with box/tri ops: the
    // accumulator must be unaffected by the intersection beats.
    WorkloadGen gen(7);
    const size_t dims = 160;
    auto a = randomVec(gen, dims);
    auto b = randomVec(gen, dims);
    auto beats = euclideanJob(a, b, 9);

    DistanceAccumulators acc;
    DatapathOutput last;
    for (size_t i = 0; i < beats.size(); ++i) {
        // A burst of unrelated intersection work between beats.
        for (int k = 0; k < 5; ++k) {
            functionalEval(gen.rayBoxOp(1000 + uint64_t(k)), acc);
            functionalEval(gen.rayTriangleOp(2000 + uint64_t(k)), acc);
        }
        last = functionalEval(beats[i], acc);
    }
    double ref = refSq(a, b);
    EXPECT_NEAR(fromBits(last.euclidean_accumulator), ref,
                ref * 1e-4 + 1e-3);
}

TEST(Distance, EuclideanAndCosineJobsInterleaveEachOther)
{
    // Separate accumulators: a multi-beat Euclidean job and a
    // multi-beat cosine job proceed beat-by-beat in alternation.
    WorkloadGen gen(8);
    const size_t edims = 64, cdims = 32;
    auto ea = randomVec(gen, edims);
    auto eb = randomVec(gen, edims);
    auto ca = randomVec(gen, cdims);
    auto cb = randomVec(gen, cdims);
    auto ebeats = euclideanJob(ea, eb, 1);

    std::vector<DatapathInput> cbeats;
    for (size_t base = 0; base < cdims; base += kCosineWidth) {
        DatapathInput in;
        in.op = Opcode::Cosine;
        in.mask = 0x00FF;
        for (size_t i = 0; i < kCosineWidth; ++i) {
            in.vec_a[i] = toBits(ca[base + i]);
            in.vec_b[i] = toBits(cb[base + i]);
        }
        in.reset_accumulator = base + kCosineWidth >= cdims;
        cbeats.push_back(in);
    }
    ASSERT_EQ(ebeats.size(), cbeats.size());

    DistanceAccumulators acc;
    DatapathOutput e_last, c_last;
    for (size_t i = 0; i < ebeats.size(); ++i) {
        e_last = functionalEval(ebeats[i], acc);
        c_last = functionalEval(cbeats[i], acc);
    }
    double eref = refSq(ea, eb);
    double cdot = 0;
    for (size_t i = 0; i < cdims; ++i)
        cdot += double(ca[i]) * double(cb[i]);
    EXPECT_NEAR(fromBits(e_last.euclidean_accumulator), eref,
                eref * 1e-4 + 1e-3);
    EXPECT_NEAR(fromBits(c_last.angular_dot_product), cdot,
                std::abs(cdot) * 1e-3 + 1e-2);
}

TEST(Distance, ResetEchoDelayMatchesPipelineLatency)
{
    // In the pipelined model the euclidean_reset output corresponds to
    // the reset_accumulator input exactly kPipelineLatency cycles
    // earlier (Section V-A).
    RayFlexDatapath dp(kExtendedUnified);
    rayflex::pipeline::Simulator sim;
    rayflex::pipeline::Source<DatapathInput> src("src", &dp.in());
    rayflex::pipeline::Sink<DatapathOutput> sink("sink", &dp.out());
    dp.registerWith(sim);
    sim.add(&src);
    sim.add(&sink);

    WorkloadGen gen(9);
    std::vector<bool> resets;
    for (int i = 0; i < 100; ++i) {
        bool reset = (gen.engine()() & 3u) == 0;
        resets.push_back(reset);
        src.push(gen.euclideanOp(reset, uint64_t(i)));
    }
    ASSERT_TRUE(sim.runUntil([&] { return sink.count() == 100; }, 1000));
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(sink.received()[size_t(i)].euclidean_reset,
                  resets[size_t(i)]);
        EXPECT_EQ(sink.arrivalCycles()[size_t(i)],
                  uint64_t(i) + kPipelineLatency);
    }
}

TEST(Distance, AccumulatorSurvivesPipelineBubbles)
{
    // Multi-beat job fed with gaps: accumulation is by beat, not by
    // cycle.
    RayFlexDatapath dp(kExtendedUnified);
    rayflex::pipeline::Simulator sim;
    rayflex::pipeline::Source<DatapathInput> src(
        "src", &dp.in(), [](uint64_t c) { return c % 3 == 0; });
    rayflex::pipeline::Sink<DatapathOutput> sink("sink", &dp.out());
    dp.registerWith(sim);
    sim.add(&src);
    sim.add(&sink);

    WorkloadGen gen(10);
    const size_t dims = 96;
    auto a = randomVec(gen, dims);
    auto b = randomVec(gen, dims);
    for (const auto &beat : euclideanJob(a, b, 0))
        src.push(beat);
    ASSERT_TRUE(sim.runUntil([&] { return sink.count() == 6; }, 1000));
    double ref = refSq(a, b);
    EXPECT_NEAR(fromBits(sink.received().back().euclidean_accumulator),
                ref, ref * 1e-4 + 1e-3);
}
