/**
 * @file
 * Build-invariant regression tests.
 *
 * The golden model's bit-exactness contract against host IEEE FP32
 * (tests/test_fp_softfloat.cc) assumes every a*b+c in the tree is
 * rounded after the multiply AND after the add. A compiler that
 * contracts the expression into fma(a, b, c) skips the intermediate
 * rounding and silently breaks hardware-vs-golden comparisons. The
 * build sets -ffp-contract=off globally; this test makes a mis-built
 * tree fail loudly instead of producing subtly wrong comparisons.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/config.hh" // also exercises the C++20 #error guard
#include "fp/float32.hh"

namespace
{

/** volatile parameters so the probe is evaluated with exactly the
 *  floating-point codegen of this translation unit: noinline alone
 *  does not stop GCC's IPA constant propagation from folding the call
 *  at the separately-rounded value, which would mask a contracted
 *  build. */
float
mulAddProbe(volatile float a, volatile float b, volatile float c)
{
    return a * b + c;
}

} // namespace

TEST(FpContract, MulAddRoundsIntermediateProduct)
{
    // a = b = 1 + 2^-12: the exact product is 1 + 2^-11 + 2^-24, whose
    // trailing term is exactly half an ulp in binary32; round-to-even
    // drops it, so the rounded product is 1 + 2^-11. With
    // c = -(1 + 2^-11) the separately rounded expression is exactly 0,
    // while a contracted FMA keeps the 2^-24 term.
    const float a = 1.0f + 0x1p-12f;
    const float c = -(1.0f + 0x1p-11f);

    EXPECT_EQ(mulAddProbe(a, a, c), 0.0f)
        << "a*b+c was contracted into fma(a,b,c): this tree was built "
           "without -ffp-contract=off and the golden model's "
           "bit-exactness contract does not hold";

    // Sanity: a true fused multiply-add distinguishes this input, so
    // the probe above really does detect contraction.
    EXPECT_EQ(std::fma(a, a, c), 0x1p-24f);
}

TEST(FpContract, SoftFloatMatchesSeparatelyRoundedHost)
{
    using namespace rayflex::fp;
    const float a = 1.0f + 0x1p-12f;
    const float c = -(1.0f + 0x1p-11f);

    // The softfloat substrate rounds after every operation by
    // construction; the host must agree with it on the same schedule.
    F32 prod = mulF32(toBits(a), toBits(a));
    EXPECT_EQ(prod, toBits(1.0f + 0x1p-11f));
    EXPECT_EQ(addF32(prod, toBits(c)), toBits(0.0f));
    EXPECT_EQ(fromBits(addF32(prod, toBits(c))), mulAddProbe(a, a, c));
}
