/**
 * @file
 * Unit and property tests for the binary32 softfloat substrate.
 *
 * The load-bearing property is bit-exactness against host IEEE FP32
 * arithmetic (compiled with -ffp-contract=off): the golden model relies
 * on it to make hardware-vs-golden comparisons exact.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "fp/float32.hh"
#include "fp/recoded.hh"

using namespace rayflex::fp;

namespace
{

/** Draw a "interesting" random FP32 bit pattern: uniform over bit
 *  patterns, so NaNs, infinities, subnormals and both zeros all occur. */
F32
randomBits(std::mt19937_64 &rng)
{
    return static_cast<F32>(rng());
}

/** Canonicalize NaNs so bit comparisons ignore payload differences
 *  between softfloat and host hardware. */
F32
canon(F32 v)
{
    return isNaNF32(v) ? kDefaultNaN : v;
}

} // namespace

// ----- directed special cases -----

TEST(SoftFloatAdd, SignedZeros)
{
    EXPECT_EQ(addF32(kPosZero, kPosZero), kPosZero);
    EXPECT_EQ(addF32(kNegZero, kNegZero), kNegZero);
    EXPECT_EQ(addF32(kPosZero, kNegZero), kPosZero);
    EXPECT_EQ(addF32(kNegZero, kPosZero), kPosZero);
}

TEST(SoftFloatAdd, ExactCancellationIsPositiveZero)
{
    F32 a = toBits(1.5f);
    F32 b = toBits(-1.5f);
    EXPECT_EQ(addF32(a, b), kPosZero);
}

TEST(SoftFloatAdd, InfinityArithmetic)
{
    EXPECT_EQ(addF32(kPosInf, toBits(1.0f)), kPosInf);
    EXPECT_EQ(addF32(kNegInf, toBits(1.0f)), kNegInf);
    EXPECT_EQ(addF32(kPosInf, kPosInf), kPosInf);
    EXPECT_TRUE(isNaNF32(addF32(kPosInf, kNegInf)));
}

TEST(SoftFloatAdd, NaNPropagates)
{
    EXPECT_TRUE(isNaNF32(addF32(kDefaultNaN, toBits(2.0f))));
    EXPECT_TRUE(isNaNF32(addF32(toBits(2.0f), kDefaultNaN)));
}

TEST(SoftFloatAdd, OverflowToInfinity)
{
    EXPECT_EQ(addF32(kMaxFinite, kMaxFinite), kPosInf);
}

TEST(SoftFloatAdd, GradualUnderflow)
{
    // min_normal - min_subnormal is subnormal.
    F32 r = subF32(kMinNormal, kMinSubnormal);
    EXPECT_TRUE(isSubnormalF32(r));
    EXPECT_EQ(r, kMinNormal - 1);
}

TEST(SoftFloatMul, InfTimesZeroIsNaN)
{
    EXPECT_TRUE(isNaNF32(mulF32(kPosInf, kPosZero)));
    EXPECT_TRUE(isNaNF32(mulF32(kNegZero, kPosInf)));
    EXPECT_TRUE(isNaNF32(mulF32(kNegInf, kPosZero)));
}

TEST(SoftFloatMul, SignOfZeroProducts)
{
    EXPECT_EQ(mulF32(toBits(2.0f), kNegZero), kNegZero);
    EXPECT_EQ(mulF32(toBits(-2.0f), kNegZero), kPosZero);
}

TEST(SoftFloatMul, SubnormalTimesLargeIsExactWhenRepresentable)
{
    // 2^-140 * 2^20 = 2^-120, a normal number.
    F32 a = toBits(std::ldexp(1.0f, -140));
    F32 b = toBits(std::ldexp(1.0f, 20));
    EXPECT_EQ(mulF32(a, b), toBits(std::ldexp(1.0f, -120)));
}

TEST(SoftFloatMul, OverflowToInfinity)
{
    EXPECT_EQ(mulF32(kMaxFinite, toBits(2.0f)), kPosInf);
    EXPECT_EQ(mulF32(kMaxFinite ^ 0x80000000u, toBits(2.0f)), kNegInf);
}

TEST(SoftFloatDiv, Specials)
{
    EXPECT_TRUE(isNaNF32(divF32(kPosZero, kPosZero)));
    EXPECT_TRUE(isNaNF32(divF32(kPosInf, kPosInf)));
    EXPECT_EQ(divF32(toBits(1.0f), kPosZero), kPosInf);
    EXPECT_EQ(divF32(toBits(-1.0f), kPosZero), kNegInf);
    EXPECT_EQ(divF32(toBits(1.0f), kNegZero), kNegInf);
    EXPECT_EQ(divF32(toBits(1.0f), kPosInf), kPosZero);
    EXPECT_EQ(divF32(toBits(1.0f), toBits(4.0f)), toBits(0.25f));
}

TEST(SoftFloatRounding, TiesToEven)
{
    // 1 + 2^-24 is exactly halfway between 1 and 1+2^-23: rounds to 1.
    F32 one = toBits(1.0f);
    F32 tiny = toBits(std::ldexp(1.0f, -24));
    EXPECT_EQ(addF32(one, tiny), one);
    // (1+2^-23) + 2^-24 is halfway with odd LSB: rounds up.
    F32 next = one + 1;
    EXPECT_EQ(addF32(next, tiny), next + 1);
}

// ----- comparator semantics -----

TEST(Comparator, NaNIsUnordered)
{
    F32 x = toBits(1.0f);
    EXPECT_EQ(compareF32(kDefaultNaN, x), Cmp::UN);
    EXPECT_EQ(compareF32(x, kDefaultNaN), Cmp::UN);
    EXPECT_EQ(compareF32(kDefaultNaN, kDefaultNaN), Cmp::UN);
    // All ordered predicates are false on NaN - the property the paper's
    // coplanar-miss behaviour relies on.
    EXPECT_FALSE(ltF32(kDefaultNaN, x));
    EXPECT_FALSE(leF32(kDefaultNaN, x));
    EXPECT_FALSE(eqF32(kDefaultNaN, x));
    EXPECT_FALSE(geF32(kDefaultNaN, x));
    EXPECT_FALSE(gtF32(kDefaultNaN, x));
}

TEST(Comparator, ZeroesCompareEqual)
{
    EXPECT_EQ(compareF32(kPosZero, kNegZero), Cmp::EQ);
    EXPECT_EQ(compareF32(kNegZero, kPosZero), Cmp::EQ);
}

TEST(Comparator, SignHandling)
{
    EXPECT_EQ(compareF32(toBits(-1.0f), toBits(1.0f)), Cmp::LT);
    EXPECT_EQ(compareF32(toBits(-1.0f), toBits(-2.0f)), Cmp::GT);
    EXPECT_EQ(compareF32(kNegInf, kPosInf), Cmp::LT);
    EXPECT_EQ(compareF32(toBits(-0.5f), kNegZero), Cmp::LT);
}

TEST(Comparator, NaNPropagatingMinMax)
{
    F32 x = toBits(3.0f), y = toBits(5.0f);
    EXPECT_EQ(maxPropF32(x, y), y);
    EXPECT_EQ(minPropF32(x, y), x);
    EXPECT_TRUE(isNaNF32(maxPropF32(kDefaultNaN, y)));
    EXPECT_TRUE(isNaNF32(maxPropF32(x, kDefaultNaN)));
    EXPECT_TRUE(isNaNF32(minPropF32(kDefaultNaN, y)));
    EXPECT_TRUE(isNaNF32(minPropF32(x, kDefaultNaN)));
    EXPECT_TRUE(isNaNF32(max4PropF32(x, y, kDefaultNaN, x)));
    EXPECT_TRUE(isNaNF32(min4PropF32(x, y, x, kDefaultNaN)));
}

// ----- randomized bit-exactness vs host hardware -----

struct RandomExactness : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RandomExactness, AddMatchesHost)
{
    std::mt19937_64 rng(GetParam());
    for (int i = 0; i < 200000; ++i) {
        F32 a = randomBits(rng);
        F32 b = randomBits(rng);
        F32 sw = addF32(a, b);
        F32 hw = toBits(fromBits(a) + fromBits(b));
        ASSERT_EQ(canon(sw), canon(hw))
            << "a=0x" << std::hex << a << " b=0x" << b;
    }
}

TEST_P(RandomExactness, SubMatchesHost)
{
    std::mt19937_64 rng(GetParam() ^ 0x5555);
    for (int i = 0; i < 200000; ++i) {
        F32 a = randomBits(rng);
        F32 b = randomBits(rng);
        F32 sw = subF32(a, b);
        F32 hw = toBits(fromBits(a) - fromBits(b));
        ASSERT_EQ(canon(sw), canon(hw))
            << "a=0x" << std::hex << a << " b=0x" << b;
    }
}

TEST_P(RandomExactness, MulMatchesHost)
{
    std::mt19937_64 rng(GetParam() ^ 0xAAAA);
    for (int i = 0; i < 200000; ++i) {
        F32 a = randomBits(rng);
        F32 b = randomBits(rng);
        F32 sw = mulF32(a, b);
        F32 hw = toBits(fromBits(a) * fromBits(b));
        ASSERT_EQ(canon(sw), canon(hw))
            << "a=0x" << std::hex << a << " b=0x" << b;
    }
}

TEST_P(RandomExactness, DivMatchesHost)
{
    std::mt19937_64 rng(GetParam() ^ 0x1234);
    for (int i = 0; i < 100000; ++i) {
        F32 a = randomBits(rng);
        F32 b = randomBits(rng);
        F32 sw = divF32(a, b);
        F32 hw = toBits(fromBits(a) / fromBits(b));
        ASSERT_EQ(canon(sw), canon(hw))
            << "a=0x" << std::hex << a << " b=0x" << b;
    }
}

TEST_P(RandomExactness, CompareMatchesHost)
{
    std::mt19937_64 rng(GetParam() ^ 0x9E37);
    for (int i = 0; i < 200000; ++i) {
        F32 a = randomBits(rng);
        F32 b = randomBits(rng);
        float fa = fromBits(a), fb = fromBits(b);
        ASSERT_EQ(ltF32(a, b), fa < fb);
        ASSERT_EQ(leF32(a, b), fa <= fb);
        ASSERT_EQ(eqF32(a, b), fa == fb);
        ASSERT_EQ(geF32(a, b), fa >= fb);
        ASSERT_EQ(gtF32(a, b), fa > fb);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExactness,
                         ::testing::Values(1, 2, 3, 42, 0xDEADBEEF));

// ----- normal-range sweeps (denser coverage of ordinary values) -----

TEST(SoftFloatSweep, NormalRangeAddMul)
{
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<float> d(-1e6f, 1e6f);
    for (int i = 0; i < 100000; ++i) {
        float fa = d(rng), fb = d(rng);
        F32 a = toBits(fa), b = toBits(fb);
        ASSERT_EQ(addF32(a, b), toBits(fa + fb));
        ASSERT_EQ(mulF32(a, b), toBits(fa * fb));
    }
}

TEST(SoftFloatSweep, SubnormalNeighborhood)
{
    std::mt19937_64 rng(8);
    for (int i = 0; i < 100000; ++i) {
        // Bit patterns concentrated near the subnormal/normal boundary.
        F32 a = static_cast<F32>(rng() % 0x01000000u);
        F32 b = static_cast<F32>(rng() % 0x01000000u);
        if (rng() & 1u)
            a |= 0x80000000u;
        if (rng() & 1u)
            b |= 0x80000000u;
        ASSERT_EQ(canon(addF32(a, b)),
                  canon(toBits(fromBits(a) + fromBits(b))));
        ASSERT_EQ(canon(mulF32(a, b)),
                  canon(toBits(fromBits(a) * fromBits(b))));
    }
}
