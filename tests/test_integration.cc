/**
 * @file
 * End-to-end integration tests: the whole stack (scene generation, BVH
 * build, datapath-driven traversal, pipelined RT unit) composed the way
 * the examples use it, including a deterministic image-regression check
 * and a long mixed-traffic soak of the pipelined datapath under random
 * stalls.
 */
#include <gtest/gtest.h>

#include <random>

#include "bvh/builder.hh"
#include "bvh/rt_unit.hh"
#include "bvh/scene.hh"
#include "bvh/traversal.hh"
#include "core/datapath.hh"
#include "core/workloads.hh"
#include "pipeline/drivers.hh"

using namespace rayflex::bvh;
using namespace rayflex::core;
using rayflex::fp::fromBits;

namespace
{

/** FNV-1a over arbitrary bytes. */
uint64_t
fnv1a(const void *data, size_t n, uint64_t h = 0xCBF29CE484222325ull)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

} // namespace

TEST(Integration, RenderIsDeterministic)
{
    // Render a small frame twice through independent stacks; hit masks,
    // triangle ids and distances must agree bit for bit. All arithmetic
    // is IEEE FP32, so this is exact, machine-independent determinism.
    auto render = [](uint64_t &hash) {
        auto tris = makeSphere({0, 1.0f, 0}, 1.5f, 12, 16);
        auto terr = makeTerrain(8.0f, 16, 0.3f, 3,
                                uint32_t(tris.size()));
        tris.insert(tris.end(), terr.begin(), terr.end());
        Bvh4 bvh = buildBvh4(tris);
        Traverser trav(bvh);

        Camera cam;
        cam.eye = {4, 4, 6};
        cam.look_at = {0, 0.5f, 0};
        cam.width = cam.height = 32;

        hash = 0xCBF29CE484222325ull;
        size_t hits = 0;
        for (unsigned y = 0; y < cam.height; ++y) {
            for (unsigned x = 0; x < cam.width; ++x) {
                HitRecord h = trav.closestHit(
                    cam.primaryRay(x, y, 100.0f));
                hits += h.hit ? 1 : 0;
                hash = fnv1a(&h.hit, sizeof(h.hit), hash);
                if (h.hit) {
                    hash = fnv1a(&h.triangle_id, sizeof(h.triangle_id),
                                 hash);
                    hash = fnv1a(&h.t, sizeof(h.t), hash);
                }
            }
        }
        return hits;
    };
    uint64_t h1 = 0, h2 = 0;
    size_t hits1 = render(h1);
    size_t hits2 = render(h2);
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(hits1, hits2);
    // The frame actually contains geometry.
    EXPECT_GT(hits1, 100u);
    EXPECT_LT(hits1, 32u * 32u);
}

TEST(Integration, RtUnitAgreesWithTraverserOnRealScene)
{
    auto tris = makeTorus({0, 0, 0}, 2.5f, 0.8f, 20, 14);
    Bvh4 bvh = buildBvh4(tris);
    Traverser ref(bvh);

    RayFlexDatapath dp(kExtendedUnified); // extended also runs box/tri
    RtUnitConfig cfg;
    cfg.ray_buffer_entries = 8;
    cfg.mem_latency = 7;
    RtUnit unit(bvh, dp, cfg);

    Camera cam;
    cam.eye = {5, 4, 6};
    cam.look_at = {0, 0, 0};
    cam.width = cam.height = 16;
    std::vector<rayflex::core::Ray> rays;
    for (unsigned y = 0; y < cam.height; ++y)
        for (unsigned x = 0; x < cam.width; ++x)
            rays.push_back(cam.primaryRay(x, y, 100.0f));
    for (uint32_t i = 0; i < rays.size(); ++i)
        unit.submit(rays[i], i);
    RtUnitStats st = unit.run();
    EXPECT_EQ(st.rays_completed, rays.size());

    for (uint32_t i = 0; i < rays.size(); ++i) {
        HitRecord want = ref.closestHit(rays[i]);
        const HitRecord &got = unit.results()[i];
        ASSERT_EQ(got.hit, want.hit) << "ray " << i;
        if (want.hit) {
            ASSERT_EQ(got.triangle_id, want.triangle_id) << "ray " << i;
            ASSERT_FLOAT_EQ(got.t, want.t);
        }
    }
}

TEST(Integration, MixedTrafficSoakUnderRandomStalls)
{
    // A long mixed stream (all four opcodes, multi-beat distance jobs
    // interleaved with intersection work) through the pipelined model
    // with random producer bubbles and consumer back-pressure; results
    // must equal the functional model beat for beat.
    RayFlexDatapath dp(kExtendedUnified);
    rayflex::pipeline::Simulator sim;
    auto pattern = [](uint64_t seed) {
        return [seed](uint64_t cycle) {
            uint64_t h = (cycle + seed) * 0x9E3779B97F4A7C15ull;
            return (h >> 33) % 100 < 70;
        };
    };
    rayflex::pipeline::Source<DatapathInput> src("src", &dp.in(),
                                                 pattern(1));
    rayflex::pipeline::Sink<DatapathOutput> sink("sink", &dp.out(),
                                                 pattern(2));
    dp.registerWith(sim);
    sim.add(&src);
    sim.add(&sink);

    WorkloadGen gen(0x50AF);
    std::vector<DatapathInput> inputs;
    for (int i = 0; i < 5000; ++i) {
        switch (gen.engine()() % 6) {
          case 0:
          case 1:
            inputs.push_back(gen.rayBoxOp(uint64_t(i)));
            break;
          case 2:
          case 3:
            inputs.push_back(gen.rayTriangleOp(uint64_t(i)));
            break;
          case 4:
            inputs.push_back(
                gen.euclideanOp((gen.engine()() & 3) == 0, uint64_t(i)));
            break;
          default:
            inputs.push_back(
                gen.cosineOp((gen.engine()() & 3) == 0, uint64_t(i)));
            break;
        }
        src.push(inputs.back());
    }
    ASSERT_TRUE(sim.runUntil(
        [&] { return sink.count() == inputs.size(); }, 200000));

    DistanceAccumulators acc;
    for (size_t i = 0; i < inputs.size(); ++i) {
        DatapathOutput fn = functionalEval(inputs[i], acc);
        const DatapathOutput &hw = sink.received()[i];
        ASSERT_EQ(hw.tag, inputs[i].tag);
        switch (inputs[i].op) {
          case Opcode::RayBox:
            for (int b = 0; b < 4; ++b)
                ASSERT_EQ(hw.box.hit[b], fn.box.hit[b]) << i;
            break;
          case Opcode::RayTriangle:
            ASSERT_EQ(hw.tri.hit, fn.tri.hit) << i;
            ASSERT_EQ(hw.tri.t_num, fn.tri.t_num) << i;
            break;
          case Opcode::Euclidean:
            ASSERT_EQ(hw.euclidean_accumulator,
                      fn.euclidean_accumulator)
                << i;
            ASSERT_EQ(hw.euclidean_reset, fn.euclidean_reset) << i;
            break;
          case Opcode::Cosine:
            ASSERT_EQ(hw.angular_dot_product, fn.angular_dot_product)
                << i;
            ASSERT_EQ(hw.angular_norm, fn.angular_norm) << i;
            break;
        }
    }

    // Stage statistics are consistent across the whole pipeline.
    for (const auto *st : dp.stages()) {
        EXPECT_EQ(st->stats().accepted, inputs.size()) << st->name();
        EXPECT_EQ(st->stats().delivered, inputs.size()) << st->name();
    }
}

TEST(Integration, ShadowRaysMatchOcclusionOracle)
{
    // anyHit (shadow rays) through the datapath vs a brute-force
    // occlusion check.
    auto tris = makeSoup(300, 5.0f, 1.2f, 21, 0);
    Bvh4 bvh = buildBvh4(tris);
    Traverser trav(bvh);
    std::mt19937_64 rng(4);
    std::uniform_real_distribution<float> p(-6.0f, 6.0f);
    for (int i = 0; i < 200; ++i) {
        float dx = p(rng), dy = p(rng), dz = p(rng);
        if (dx == 0 && dy == 0 && dz == 0)
            dx = 1;
        rayflex::core::Ray ray =
            makeRay(p(rng), p(rng), p(rng), dx, dy, dz, 0.0f, 50.0f);
        bool any = trav.anyHit(ray);
        bool oracle = trav.bruteForceClosest(ray).hit;
        ASSERT_EQ(any, oracle) << "ray " << i;
    }
}
