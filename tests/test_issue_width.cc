/**
 * @file
 * Tests of the multi-issue datapath (RtUnitConfig::issue_width), the
 * bounded MSHR file over the unit's shared L1 (RtUnitConfig::mshrs)
 * and occupancy-driven packet compaction (PacketConfig::compact_below):
 * the PR-4 timing pin (defaults reproduce the single-issue, unbounded,
 * compaction-off schedule bit-for-bit, counters hard-coded from that
 * tree), hit bit-equality against scalar for every new knob, the
 * throughput acceptance property (cycles fall monotonically with
 * issue_width on coherent packets, where the single-beat datapath was
 * flat), MSHR merge/back-pressure behavior, compaction recovering
 * retirement occupancy, scheduler-stat parity between the scalar path
 * and one-occupancy packets, and the 1/2/8-worker determinism sweep
 * with every new knob enabled at once.
 */
#include <gtest/gtest.h>

#include "bvh/builder.hh"
#include "bvh/scene.hh"
#include "core/raygen.hh"
#include "core/workloads.hh"
#include "sim/engine.hh"

using namespace rayflex;
using namespace rayflex::bvh;
using namespace rayflex::core;
using rayflex::fp::toBits;

namespace
{

/** Bit-level equality of two hit records (same helper contract as
 *  test_sim_engine: float == would accept -0.0f vs 0.0f). */
::testing::AssertionResult
bitIdentical(const HitRecord &a, const HitRecord &b)
{
    if (a.hit != b.hit || a.triangle_id != b.triangle_id ||
        toBits(a.t) != toBits(b.t) || toBits(a.u) != toBits(b.u) ||
        toBits(a.v) != toBits(b.v) || toBits(a.w) != toBits(b.w))
        return ::testing::AssertionFailure()
               << "hit records differ: {" << a.hit << ", " << a.t << ", "
               << a.triangle_id << "} vs {" << b.hit << ", " << b.t
               << ", " << b.triangle_id << "}";
    return ::testing::AssertionSuccess();
}

/** A mixed scene with both hits and misses well represented (the same
 *  scene test_packet and test_mem_model use, so the PR-4 pin numbers
 *  come from a workload other suites already exercise). */
Bvh4
testScene()
{
    auto tris = makeSphere({0, 0, 0}, 2.0f, 12, 16);
    uint32_t id = uint32_t(tris.size());
    auto soup = makeSoup(300, 6.0f, 0.8f, 17, id);
    tris.insert(tris.end(), soup.begin(), soup.end());
    return buildBvh4(std::move(tris));
}

/** Coherent camera rays plus random rays (some aimed away). */
std::vector<Ray>
testRays(const Bvh4 &bvh, size_t n_random)
{
    Camera cam;
    cam.look_at = bvh.root_bounds.centre();
    cam.eye = {0.5f, 1.0f, 9.0f};
    cam.width = 16;
    cam.height = 16;
    std::vector<Ray> rays;
    for (unsigned y = 0; y < cam.height; ++y)
        for (unsigned x = 0; x < cam.width; ++x)
            rays.push_back(cam.primaryRay(x, y, 100.0f));
    WorkloadGen gen(99);
    for (size_t i = 0; i < n_random; ++i)
        rays.push_back(gen.ray(8.0f));
    return rays;
}

/** Incoherent occlusion workload: AO fans from random scene points,
 *  the divergence generator the compaction tests need. */
std::vector<Ray>
fanRays(size_t n_points, unsigned samples)
{
    WorkloadGen wg(41);
    RayGen rg(7);
    std::vector<Ray> rays;
    for (size_t i = 0; i < n_points; ++i) {
        float x = wg.uniform(-5.0f, 5.0f);
        float z = wg.uniform(-5.0f, 5.0f);
        float y = wg.uniform(-1.0f, 3.0f);
        rg.appendAoFan(rays, {x, y, z}, {0, 1, 0}, samples, 1e-3f,
                       6.0f);
    }
    return rays;
}

} // namespace

TEST(MultiIssue, DefaultsReproducePr4TimingBitForBit)
{
    // The regression pin: issue_width == 1, mshrs == 0 (unbounded) and
    // compact_below == 0 must reproduce the pre-multi-issue unit's
    // schedule EXACTLY. The counters below were captured from the PR-4
    // tree on this workload; any drift means the refactor perturbed
    // the single-issue timing, which the whole bit-for-bit contract
    // forbids.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);

    sim::EngineConfig scalar;
    scalar.threads = 1;
    scalar.batch_size = 64;
    sim::EngineReport s = sim::Engine(scalar).run(bvh, rays);
    EXPECT_EQ(s.unit.cycles, 6211u);
    EXPECT_EQ(s.unit.datapath_beats, 4791u);
    EXPECT_EQ(s.unit.datapath_idle, 1420u);
    EXPECT_EQ(s.unit.mem_requests, 3212u);
    EXPECT_EQ(s.unit.stall_on_memory, 1129u);
    EXPECT_EQ(s.unit.rays_completed, rays.size());
    EXPECT_EQ(s.unit.mshr, MshrStats{});

    sim::EngineConfig packet8 = scalar;
    packet8.rt.packet.width = 8;
    sim::EngineReport p = sim::Engine(packet8).run(bvh, rays);
    EXPECT_EQ(p.unit.cycles, 10154u);
    EXPECT_EQ(p.unit.datapath_beats, 4793u);
    EXPECT_EQ(p.unit.datapath_idle, 5361u);
    EXPECT_EQ(p.unit.mem_requests, 968u);
    EXPECT_EQ(p.unit.stall_on_memory, 5027u);
    EXPECT_EQ(p.unit.packet.compactions, 0u);
    EXPECT_EQ(p.unit.mshr, MshrStats{});
}

TEST(MultiIssue, ScalarHitsMatchAndThroughputImproves)
{
    // Widening the issue datapath must never change a hit record, and
    // with several ready entries per cycle the same workload finishes
    // in fewer simulated cycles.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);

    sim::EngineConfig base;
    base.threads = 1;
    base.batch_size = 64;
    sim::EngineReport ref = sim::Engine(base).run(bvh, rays);

    for (unsigned issue : {2u, 4u, 8u}) {
        sim::EngineConfig cfg = base;
        cfg.rt.issue_width = issue;
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
        for (size_t i = 0; i < rays.size(); ++i)
            ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i]))
                << "ray " << i << " at issue " << issue;
        EXPECT_LT(rep.unit.cycles, ref.unit.cycles) << issue;
        // Work is conserved: the same beats happen, just denser.
        EXPECT_EQ(rep.unit.datapath_beats, ref.unit.datapath_beats)
            << issue;
    }
}

TEST(MultiIssue, PacketHitsMatchScalarAcrossTheGrid)
{
    // The headline contract extended to the new knobs: for every
    // (issue_width, packet.width, mshrs, compact_below) combination —
    // closest- and any-hit — the per-ray records equal the scalar
    // single-issue reference bit for bit. Only timing and memory
    // counters may move.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 64);

    for (bool any_hit : {false, true}) {
        sim::EngineConfig scalar;
        scalar.threads = 1;
        scalar.batch_size = 64;
        scalar.any_hit = any_hit;
        sim::EngineReport ref = sim::Engine(scalar).run(bvh, rays);

        struct Knobs
        {
            unsigned issue, width, mshrs, compact;
        };
        const Knobs grid[] = {
            {2, 1, 0, 0},  {8, 1, 2, 0},  {2, 8, 0, 0},
            {8, 8, 0, 4},  {4, 8, 2, 4},  {8, 16, 4, 8},
        };
        for (const Knobs &k : grid) {
            sim::EngineConfig cfg = scalar;
            cfg.rt.issue_width = k.issue;
            cfg.rt.packet.width = k.width;
            cfg.rt.mshrs = k.mshrs;
            cfg.rt.packet.compact_below = k.compact;
            cfg.rt.ray_buffer_entries = 32 * std::max(1u, k.width);
            sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
            ASSERT_EQ(rep.unit.rays_completed, rays.size());
            for (size_t i = 0; i < rays.size(); ++i)
                ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i]))
                    << "ray " << i << " any_hit " << any_hit
                    << " issue " << k.issue << " width " << k.width
                    << " mshrs " << k.mshrs << " compact "
                    << k.compact;
        }
    }
}

TEST(MultiIssue, ThroughputScalesWithIssueWidthOnCoherentPackets)
{
    // The acceptance property behind BM_IssueWidthSweep: on a coherent
    // camera batch traced by 8-wide packets against the probe cache
    // and a bounded MSHR file, cycles fall MONOTONICALLY as the issue
    // width grows — exactly where the single-beat datapath was flat,
    // because fetch sharing saved bandwidth the unit could not spend.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 0); // pure camera batch

    uint64_t prev_cycles = ~0ull;
    for (unsigned issue : {1u, 2u, 4u, 8u}) {
        sim::EngineConfig cfg;
        cfg.threads = 1;
        cfg.batch_size = 0;
        cfg.rt.packet.width = 8;
        cfg.rt.ray_buffer_entries = 32 * 8;
        cfg.rt.mem_backend = MemBackend::NodeCache;
        cfg.rt.cache = kProbeCache4KiB;
        cfg.rt.mshrs = 8;
        cfg.rt.issue_width = issue;
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
        EXPECT_LT(rep.unit.cycles, prev_cycles)
            << "cycles did not fall at issue width " << issue;
        prev_cycles = rep.unit.cycles;
    }
}

TEST(MultiIssue, MshrFileMergesAndBackPressures)
{
    // A tightly bounded MSHR file must (a) merge duplicate in-flight
    // fetches (two slots walking the same subtree pay one miss), (b)
    // stall NeedFetch slots when full, and (c) conserve the fetch
    // work: every fetch either allocates or merges, and the per-ray
    // fetch sequences are schedule-independent, so allocations +
    // merges equals the unbounded run's request count.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 32);

    sim::EngineConfig unbounded;
    unbounded.threads = 1;
    unbounded.batch_size = 0;
    unbounded.rt.mem_backend = MemBackend::NodeCache;
    unbounded.rt.cache = kProbeCache4KiB;
    sim::EngineReport ref = sim::Engine(unbounded).run(bvh, rays);
    ASSERT_EQ(ref.unit.mshr, MshrStats{});

    sim::EngineConfig bounded = unbounded;
    bounded.rt.mshrs = 2;
    sim::EngineReport rep = sim::Engine(bounded).run(bvh, rays);

    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i])) << i;
    EXPECT_GT(rep.unit.mshr.merges, 0u);
    EXPECT_GT(rep.unit.mshr.stalls_full, 0u);
    EXPECT_EQ(rep.unit.mem_requests, rep.unit.mshr.allocations);
    EXPECT_EQ(rep.unit.mshr.allocations + rep.unit.mshr.merges,
              ref.unit.mem_requests);
    // Merged fetches never touch the L1, so the bounded run reaches
    // memory strictly less often.
    EXPECT_LT(rep.unit.mem_requests, ref.unit.mem_requests);

    // The file also serves the packet scheduler: same invariants with
    // 8-wide packets (whose reference is their own unbounded run).
    sim::EngineConfig pu = unbounded;
    pu.rt.packet.width = 8;
    pu.rt.ray_buffer_entries = 32 * 8;
    sim::EngineReport pref = sim::Engine(pu).run(bvh, rays);
    sim::EngineConfig pb = pu;
    pb.rt.mshrs = 2;
    sim::EngineReport prep = sim::Engine(pb).run(bvh, rays);
    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(prep.hits[i], pref.hits[i])) << i;
    EXPECT_GT(prep.unit.mshr.merges, 0u);
    EXPECT_EQ(prep.unit.mshr.allocations + prep.unit.mshr.merges,
              pref.unit.mem_requests);
}

TEST(MultiIssue, CompactionRecoversOccupancyNeverHits)
{
    // Divergent AO fans thin 16-wide packets quickly. With
    // compact_below = 8, thinned packets must actually repack
    // (compactions and moved lanes counted), retirement occupancy
    // must improve (lanes finish in fuller packets), and the hit
    // records must stay bit-identical to both the scalar and the
    // compaction-off packet runs.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = fanRays(48, 8);

    sim::EngineConfig scalar;
    scalar.threads = 1;
    scalar.batch_size = 0;
    sim::EngineReport ref = sim::Engine(scalar).run(bvh, rays);

    sim::EngineConfig off;
    off.threads = 1;
    off.batch_size = 0;
    off.rt.packet.width = 16;
    off.rt.ray_buffer_entries = 16 * 16;
    sim::EngineReport plain = sim::Engine(off).run(bvh, rays);
    ASSERT_EQ(plain.unit.packet.compactions, 0u);

    sim::EngineConfig on = off;
    on.rt.packet.compact_below = 8;
    sim::EngineReport rep = sim::Engine(on).run(bvh, rays);

    for (size_t i = 0; i < rays.size(); ++i) {
        ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i])) << i;
        ASSERT_TRUE(bitIdentical(rep.hits[i], plain.hits[i])) << i;
    }
    EXPECT_GT(rep.unit.packet.compactions, 0u);
    EXPECT_GT(rep.unit.packet.lanes_repacked, 0u);
    EXPECT_GT(rep.unit.packet.avgOccupancyAtRetire(),
              plain.unit.packet.avgOccupancyAtRetire());
}

TEST(MultiIssue, SchedulerStatParityWithOneOccupancyPackets)
{
    // A packet holding a single ray must schedule exactly like a
    // scalar entry: same fetch decisions, same beats, same stall and
    // idle slots, cycle for cycle. One-triangle leaves make the
    // comparison exact (multi-triangle leaves legitimately differ:
    // the packet pipelines a leaf's beats back-to-back while a scalar
    // entry serializes on each result).
    std::vector<SceneTriangle> tris;
    for (uint32_t i = 0; i < 24; ++i) {
        float x = float(i % 6) * 10.0f;
        float z = float(i / 6) * 10.0f;
        tris.push_back(
            SceneTriangle{{x, 0, z}, {x + 1, 0, z}, {x, 1, z}, i});
    }
    BuildParams params;
    params.max_leaf_size = 1;
    Bvh4 bvh = buildBvh4(tris, params);
    for (const WideNode &n : bvh.nodes)
        for (const auto &c : n.child)
            if (c.kind == WideNode::Kind::Leaf)
                ASSERT_EQ(c.count, 1u); // the parity precondition

    const Ray probes[] = {
        makeRay(20.3f, 0.3f, 50.0f, 0, 0, -1, 0.0f, 100.0f), // hit
        makeRay(20.5f, 5.0f, 10.2f, 0.01f, -1.0f, 0.02f, 0.0f,
                100.0f),                                      // miss
    };
    for (const Ray &probe : probes) {
        std::vector<Ray> one{probe};
        sim::EngineConfig scalar;
        scalar.threads = 1;
        scalar.batch_size = 0;
        sim::EngineReport s = sim::Engine(scalar).run(bvh, one);

        sim::EngineConfig packet = scalar;
        packet.rt.packet.width = 8;
        sim::EngineReport p = sim::Engine(packet).run(bvh, one);

        ASSERT_TRUE(bitIdentical(p.hits[0], s.hits[0]));
        EXPECT_EQ(p.unit.stall_on_memory, s.unit.stall_on_memory);
        EXPECT_EQ(p.unit.datapath_idle, s.unit.datapath_idle);
        EXPECT_EQ(p.unit.cycles, s.unit.cycles);
        EXPECT_EQ(p.unit.datapath_beats, s.unit.datapath_beats);
        EXPECT_EQ(p.unit.mem_requests, s.unit.mem_requests);
    }
}

TEST(MultiIssue, DeterministicAcrossWorkerCountsWithAllKnobs)
{
    // Every new knob enabled at once — multi-issue, bounded MSHRs,
    // compaction, packets, node cache — still satisfies the engine
    // contract: per-ray hits and every merged counter (including
    // MshrStats and the compaction counters) are bit-identical at 1,
    // 2 and 8 workers.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 64);

    sim::EngineConfig cfg;
    cfg.threads = 1;
    cfg.batch_size = 48; // several batches, last one short
    cfg.rt.issue_width = 4;
    cfg.rt.mshrs = 4;
    cfg.rt.packet.width = 8;
    cfg.rt.packet.compact_below = 4;
    cfg.rt.ray_buffer_entries = 32 * 8;
    cfg.rt.mem_backend = MemBackend::NodeCache;
    cfg.rt.cache.sets = 16;
    cfg.rt.cache.ways = 2;
    sim::EngineReport ref = sim::Engine(cfg).run(bvh, rays);
    ASSERT_EQ(ref.unit.rays_completed, rays.size());
    ASSERT_GT(ref.unit.mshr.allocations, 0u);

    for (unsigned threads : {2u, 8u}) {
        cfg.threads = threads;
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
        ASSERT_EQ(rep.hits.size(), ref.hits.size());
        for (size_t i = 0; i < rays.size(); ++i)
            ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i]))
                << "ray " << i << " at " << threads << " threads";
        EXPECT_EQ(rep.unit, ref.unit) << threads << " threads";
    }
}

TEST(MultiIssue, IssueWidthIsClampedToTheSupportedRange)
{
    // Out-of-range widths clamp instead of misbehaving: 0 runs as 1,
    // anything above kMaxIssueWidth runs as kMaxIssueWidth.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 0);

    sim::EngineConfig one;
    one.threads = 1;
    one.batch_size = 0;
    sim::EngineReport ref = sim::Engine(one).run(bvh, rays);

    sim::EngineConfig zero = one;
    zero.rt.issue_width = 0;
    sim::EngineReport z = sim::Engine(zero).run(bvh, rays);
    EXPECT_EQ(z.unit, ref.unit);

    sim::EngineConfig max = one;
    max.rt.issue_width = kMaxIssueWidth;
    sim::EngineReport m = sim::Engine(max).run(bvh, rays);
    sim::EngineConfig over = one;
    over.rt.issue_width = 99;
    sim::EngineReport o = sim::Engine(over).run(bvh, rays);
    EXPECT_EQ(o.unit, m.unit);
    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(o.hits[i], ref.hits[i])) << i;
}
