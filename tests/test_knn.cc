/**
 * @file
 * Tests of the k-NN traversal engine: the golden brute-force pin
 * (functional traversal, cycle-accurate unit and the pipelined
 * datapath's beat packing all agree bit-for-bit with
 * core::golden::knnScan), the tie-ordering and k>n edge cases, the
 * engine's worker-count/chip determinism contract for the new query
 * kind, the KnnStats merge algebra, and the inactive-path pin (ray
 * workloads keep all-zero k-NN counters).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "bvh/knn.hh"
#include "bvh/scene.hh"
#include "core/datapath.hh"
#include "core/golden.hh"
#include "core/raygen.hh"
#include "pipeline/drivers.hh"
#include "sim/engine.hh"
#include "sim/passes.hh"

using namespace rayflex;
using namespace rayflex::bvh;
using rayflex::fp::fromBits;
using rayflex::fp::toBits;

namespace
{

/** Queries taken from a second draw of the cloud generator. */
std::vector<KnnQuery>
makeQueries(size_t n, unsigned dims, uint32_t k, KnnMetric metric,
            uint64_t seed)
{
    std::vector<KnnQuery> qs;
    qs.reserve(n);
    for (DataPoint &p : makePointCloud(n, dims, 8, seed))
        qs.push_back({std::move(p.coords), k, metric});
    return qs;
}

/** Brute-force golden neighbor lists for every query. */
std::vector<KnnResult>
goldenAll(const std::vector<DataPoint> &cloud,
          const std::vector<KnnQuery> &queries, unsigned dims)
{
    std::vector<core::golden::KnnCandidate> cands;
    cands.reserve(cloud.size());
    for (const DataPoint &p : cloud)
        cands.push_back({p.coords.data(), p.id});
    std::vector<KnnResult> out;
    out.reserve(queries.size());
    for (const KnnQuery &q : queries)
        out.push_back({core::golden::knnScan(
            q.point.data(), dims, cands, q.k,
            q.metric == KnnMetric::Cosine)});
    return out;
}

/** Bit-level equality of two neighbor lists (float == would also
 *  accept -0.0f vs 0.0f; the contract is stronger). */
::testing::AssertionResult
bitIdentical(const KnnResult &a, const KnnResult &b)
{
    if (a.neighbors.size() != b.neighbors.size())
        return ::testing::AssertionFailure()
               << "neighbor counts differ: " << a.neighbors.size()
               << " vs " << b.neighbors.size();
    for (size_t i = 0; i < a.neighbors.size(); ++i)
        if (a.neighbors[i].id != b.neighbors[i].id ||
            toBits(a.neighbors[i].score) != toBits(b.neighbors[i].score))
            return ::testing::AssertionFailure()
                   << "neighbor " << i << " differs: {"
                   << a.neighbors[i].score << ", " << a.neighbors[i].id
                   << "} vs {" << b.neighbors[i].score << ", "
                   << b.neighbors[i].id << "}";
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
allBitIdentical(const std::vector<KnnResult> &a,
                const std::vector<KnnResult> &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure()
               << "result counts differ: " << a.size() << " vs "
               << b.size();
    for (size_t i = 0; i < a.size(); ++i) {
        ::testing::AssertionResult r = bitIdentical(a[i], b[i]);
        if (!r)
            return r << " (query " << i << ")";
    }
    return ::testing::AssertionSuccess();
}

} // namespace

// ------------------------------------------------------------------
// Golden reference
// ------------------------------------------------------------------

// On integer-valued coordinates every FP32 operation below is exact,
// so the single-precision golden scan must agree with a from-scratch
// double-precision reference bit-for-bit — scores included. This pins
// knnScan itself before everything else is pinned against it.
TEST(KnnGolden, ScanMatchesDoubleReferenceOnExactInputs)
{
    const unsigned dims = 7;
    std::vector<DataPoint> cloud;
    for (uint32_t i = 0; i < 200; ++i) {
        DataPoint p;
        p.id = 1000 + i * 3; // sparse, non-dense ids
        for (unsigned d = 0; d < dims; ++d)
            p.coords.push_back(float(int((i * 37 + d * 11) % 17) - 8));
        cloud.push_back(std::move(p));
    }
    std::vector<core::golden::KnnCandidate> cands;
    for (const DataPoint &p : cloud)
        cands.push_back({p.coords.data(), p.id});

    std::vector<float> q(dims);
    for (unsigned d = 0; d < dims; ++d)
        q[d] = float(int(d) - 3);

    for (const bool cosine : {false, true}) {
        std::vector<core::golden::KnnNeighbor> ref;
        for (const DataPoint &p : cloud) {
            // Accumulate in exact double arithmetic; the cosine score
            // then applies the contract's FP32 finishing ops (sqrt,
            // divide, subtract are defined in single precision).
            float score;
            if (cosine) {
                double dot = 0, norm = 0;
                for (unsigned d = 0; d < dims; ++d) {
                    dot += double(q[d]) * double(p.coords[d]);
                    norm += double(p.coords[d]) * double(p.coords[d]);
                }
                score = norm > 0
                            ? 1.0f - float(dot) /
                                         std::sqrt(float(norm))
                            : 2.0f;
            } else {
                double s = 0;
                for (unsigned d = 0; d < dims; ++d) {
                    double diff = double(q[d]) - double(p.coords[d]);
                    s += diff * diff;
                }
                score = float(s);
            }
            ref.push_back({score, p.id});
        }
        std::sort(ref.begin(), ref.end(), core::golden::knnCloser);
        ref.resize(10);

        const std::vector<core::golden::KnnNeighbor> got =
            core::golden::knnScan(q.data(), dims, cands, 10, cosine);
        ASSERT_TRUE(bitIdentical(KnnResult{got}, KnnResult{ref}))
            << (cosine ? "cosine" : "euclidean");
    }
}

// ------------------------------------------------------------------
// Functional traversal vs golden (the randomized sweep)
// ------------------------------------------------------------------

TEST(KnnFunctional, RandomSweepMatchesGoldenBothMetrics)
{
    // >= 1k queries per metric over a Gaussian-mixture cloud: the
    // best-first traversal (with its pruning) must reproduce the
    // brute-force scan exactly, ties included.
    const unsigned dims = 12;
    const std::vector<DataPoint> cloud =
        makePointCloud(600, dims, 8, 42);
    const KnnIndex index = buildKnnIndex(cloud);

    sim::EngineConfig cfg;
    cfg.model = sim::ExecutionModel::Functional;
    cfg.threads = 1;
    const sim::Engine engine(cfg);

    for (const KnnMetric metric :
         {KnnMetric::Euclidean, KnnMetric::Cosine}) {
        const std::vector<KnnQuery> queries =
            makeQueries(1024, dims, 7, metric, 43);
        const sim::KnnReport rep = engine.runKnn(index, queries);
        ASSERT_TRUE(allBitIdentical(rep.results,
                                    goldenAll(cloud, queries, dims)));
        EXPECT_EQ(rep.knn.queries, queries.size());
        if (metric == KnnMetric::Euclidean) {
            // The Euclidean walk prunes; the pruning must have skipped
            // real work, not just fired vacuously.
            EXPECT_GT(rep.knn.pruned, 0u);
            EXPECT_LT(rep.knn.candidates,
                      queries.size() * cloud.size());
        } else {
            // No valid 3-D bound for cosine: every candidate scored.
            EXPECT_EQ(rep.knn.candidates,
                      queries.size() * cloud.size());
            EXPECT_EQ(rep.knn.pruned, 0u);
        }
    }
}

TEST(KnnFunctional, TieOrderingAtEqualDistance)
{
    // Five coincident points (plus spread decoys): all tie at the same
    // score, so the result must order them ascending by id — and a
    // k = 3 cut must keep exactly the three smallest ids.
    std::vector<DataPoint> cloud;
    for (uint32_t i = 0; i < 5; ++i)
        cloud.push_back({{2.0f, 2.0f, 2.0f, 2.0f}, 900 - i * 100});
    for (uint32_t i = 0; i < 20; ++i)
        cloud.push_back(
            {{float(i + 10), 0.0f, 0.0f, 0.0f}, 10000 + i});
    const KnnIndex index = buildKnnIndex(cloud);

    KnnTraversal trav(index);
    for (const KnnMetric metric :
         {KnnMetric::Euclidean, KnnMetric::Cosine}) {
        const KnnResult full =
            trav.search({{2.0f, 2.0f, 2.0f, 2.0f}, 5, metric});
        ASSERT_EQ(full.neighbors.size(), 5u);
        for (size_t i = 0; i < 5; ++i) {
            EXPECT_EQ(full.neighbors[i].id, 500 + uint32_t(i) * 100);
            EXPECT_EQ(toBits(full.neighbors[i].score),
                      toBits(full.neighbors[0].score));
        }
        const KnnResult cut =
            trav.search({{2.0f, 2.0f, 2.0f, 2.0f}, 3, metric});
        ASSERT_EQ(cut.neighbors.size(), 3u);
        EXPECT_EQ(cut.neighbors[0].id, 500u);
        EXPECT_EQ(cut.neighbors[1].id, 600u);
        EXPECT_EQ(cut.neighbors[2].id, 700u);
    }
}

TEST(KnnFunctional, EdgeCases)
{
    const std::vector<DataPoint> cloud = makePointCloud(9, 6, 2, 7);
    const KnnIndex index = buildKnnIndex(cloud);
    KnnTraversal trav(index);

    // k > n: every point comes back, still sorted by (score, id).
    const std::vector<KnnQuery> big{
        {cloud[0].coords, 50, KnnMetric::Euclidean}};
    const KnnResult all = trav.search(big[0]);
    ASSERT_EQ(all.neighbors.size(), cloud.size());
    ASSERT_TRUE(
        bitIdentical(all, goldenAll(cloud, big, index.dims)[0]));
    EXPECT_EQ(all.neighbors[0].score, 0.0f); // the query is point 0

    // k == 0 answers empty.
    EXPECT_TRUE(
        trav.search({cloud[0].coords, 0, KnnMetric::Euclidean})
            .neighbors.empty());

    // Dimension mismatch throws.
    EXPECT_THROW(trav.search({{1.0f, 2.0f}, 1, KnnMetric::Euclidean}),
                 std::invalid_argument);

    // Empty index: every query answers empty, in both models.
    const KnnIndex empty = buildKnnIndex({});
    KnnTraversal etrav(empty);
    EXPECT_TRUE(etrav.search({{1.0f}, 3, KnnMetric::Cosine})
                    .neighbors.empty());
    sim::EngineConfig cfg;
    cfg.model = sim::ExecutionModel::CycleAccurate;
    cfg.dp = core::kExtendedUnified;
    const sim::Engine engine(cfg);
    const sim::KnnReport rep = engine.runKnn(
        empty, {{{1.0f, 2.0f}, 3, KnnMetric::Euclidean}});
    ASSERT_EQ(rep.results.size(), 1u);
    EXPECT_TRUE(rep.results[0].neighbors.empty());
    EXPECT_EQ(rep.knn.queries, 1u);

    // Inconsistent build inputs throw.
    EXPECT_THROW(buildKnnIndex({{{1.0f, 2.0f}, 0}, {{1.0f}, 1}}),
                 std::invalid_argument);
    EXPECT_THROW(buildKnnIndex({{{}, 0}}), std::invalid_argument);
}

// ------------------------------------------------------------------
// Cycle-accurate unit vs golden
// ------------------------------------------------------------------

TEST(KnnCycle, MatchesGoldenBothMetrics)
{
    const unsigned dims = 20;
    const std::vector<DataPoint> cloud =
        makePointCloud(400, dims, 6, 11);
    const KnnIndex index = buildKnnIndex(cloud);

    sim::EngineConfig cfg;
    cfg.model = sim::ExecutionModel::CycleAccurate;
    cfg.dp = core::kExtendedUnified;
    cfg.threads = 1;
    const sim::Engine engine(cfg);

    for (const KnnMetric metric :
         {KnnMetric::Euclidean, KnnMetric::Cosine}) {
        const std::vector<KnnQuery> queries =
            makeQueries(96, dims, 5, metric, 12);
        const sim::KnnReport rep = engine.runKnn(index, queries);
        ASSERT_TRUE(allBitIdentical(rep.results,
                                    goldenAll(cloud, queries, dims)));
        EXPECT_EQ(rep.knn.queries, queries.size());
        EXPECT_GT(rep.unit.cycles, 0u);
        // The unit issues exactly the beats the jobs pack.
        EXPECT_EQ(rep.unit.datapath_beats, rep.knn.distance_beats);
        EXPECT_EQ(rep.knn.distance_beats,
                  rep.knn.candidates * knnBeatsPerJob(dims, metric));
    }
}

TEST(KnnCycle, RequiresExtendedDatapath)
{
    const KnnIndex index = buildKnnIndex(makePointCloud(8, 4, 2, 3));
    sim::EngineConfig cfg;
    cfg.model = sim::ExecutionModel::CycleAccurate;
    cfg.dp = core::kBaselineUnified;
    const sim::Engine engine(cfg);
    EXPECT_THROW(
        engine.runKnn(index,
                      makeQueries(1, 4, 1, KnnMetric::Euclidean, 4)),
        std::invalid_argument);
}

// ------------------------------------------------------------------
// Engine determinism contract for the new query kind
// ------------------------------------------------------------------

TEST(KnnEngine, WorkerCountInvarianceAcrossMemoryKnobs)
{
    const unsigned dims = 16;
    const std::vector<DataPoint> cloud =
        makePointCloud(300, dims, 6, 21);
    const KnnIndex index = buildKnnIndex(cloud);
    const std::vector<KnnQuery> queries =
        makeQueries(160, dims, 4, KnnMetric::Euclidean, 22);
    const std::vector<KnnResult> golden =
        goldenAll(cloud, queries, dims);

    struct Knobs
    {
        bool cached;
        unsigned mshrs;
        unsigned issue;
        unsigned packet;
    };
    // Packetization is inert for k-NN (accepted, ignored) — the last
    // row pins that a packetized config still runs and matches.
    const Knobs grid[] = {
        {false, 0, 1, 1}, {true, 0, 1, 1},  {false, 4, 1, 1},
        {true, 4, 4, 1},  {false, 0, 4, 1}, {true, 4, 1, 8},
    };

    for (const Knobs &kn : grid) {
        sim::KnnReport ref;
        for (const unsigned threads : {1u, 2u, 8u}) {
            sim::EngineConfig cfg;
            cfg.model = sim::ExecutionModel::CycleAccurate;
            cfg.dp = core::kExtendedUnified;
            cfg.threads = threads;
            cfg.batch_size = 32;
            cfg.rt.mem_backend = kn.cached ? MemBackend::NodeCache
                                           : MemBackend::FixedLatency;
            cfg.rt.cache = kProbeCache4KiB;
            cfg.rt.mshrs = kn.mshrs;
            cfg.rt.issue_width = kn.issue;
            cfg.rt.packet.width = kn.packet;
            const sim::Engine engine(cfg);
            const sim::KnnReport rep = engine.runKnn(index, queries);

            ASSERT_TRUE(allBitIdentical(rep.results, golden))
                << "cached=" << kn.cached << " mshrs=" << kn.mshrs
                << " issue=" << kn.issue << " threads=" << threads;
            if (threads == 1) {
                ref = rep;
                continue;
            }
            // Results AND merged statistics are bit-identical at
            // every worker count.
            EXPECT_EQ(rep.knn, ref.knn) << "threads=" << threads;
            EXPECT_EQ(rep.unit.cycles, ref.unit.cycles);
            EXPECT_EQ(rep.unit.datapath_beats,
                      ref.unit.datapath_beats);
            EXPECT_EQ(rep.unit.mem_requests, ref.unit.mem_requests);
            EXPECT_EQ(rep.unit.stall_on_memory,
                      ref.unit.stall_on_memory);
            EXPECT_EQ(rep.unit.mem.hits, ref.unit.mem.hits);
            EXPECT_EQ(rep.unit.mem.misses, ref.unit.mem.misses);
            EXPECT_EQ(rep.unit.mshr.merges, ref.unit.mshr.merges);
        }
    }
}

TEST(KnnEngine, ChipModeMatchesAndMerges)
{
    const unsigned dims = 10;
    const std::vector<DataPoint> cloud =
        makePointCloud(250, dims, 5, 31);
    const KnnIndex index = buildKnnIndex(cloud);
    const std::vector<KnnQuery> queries =
        makeQueries(96, dims, 3, KnnMetric::Cosine, 32);
    const std::vector<KnnResult> golden =
        goldenAll(cloud, queries, dims);

    for (const unsigned units : {1u, 4u}) {
        for (const sim::L2Mode l2 :
             {sim::L2Mode::Shared, sim::L2Mode::Private}) {
            sim::EngineConfig cfg;
            cfg.model = sim::ExecutionModel::CycleAccurate;
            cfg.dp = core::kExtendedUnified;
            cfg.threads = 2;
            cfg.batch_size = 48;
            cfg.rt.mem_backend = MemBackend::NodeCache;
            cfg.rt.cache = kProbeCache4KiB;
            cfg.chip.units = units;
            cfg.chip.l2 = l2;
            cfg.chip.l2cfg = kProbeL2_128KiB;
            const sim::Engine engine(cfg);
            const sim::KnnReport rep = engine.runKnn(index, queries);

            ASSERT_TRUE(allBitIdentical(rep.results, golden))
                << "units=" << units << " l2=" << int(l2);
            EXPECT_EQ(rep.knn.queries, queries.size());
            EXPECT_GT(rep.unit.chip_cycles, 0u);
            EXPECT_FALSE(rep.unit.l2_banks.empty());
        }
    }
}

TEST(KnnEngine, FunctionalAndCycleAgreeOnResults)
{
    // The two execution models may count different traversal work
    // (the radius shrinks later under pipeline latency) but must
    // return the same neighbors — both pinned to golden above; this
    // pins them to each other directly on a shared workload.
    const unsigned dims = 24;
    const std::vector<DataPoint> cloud =
        makePointCloud(200, dims, 4, 51);
    const KnnIndex index = buildKnnIndex(cloud);
    const std::vector<KnnQuery> queries =
        makeQueries(64, dims, 6, KnnMetric::Euclidean, 52);

    sim::EngineConfig fcfg;
    fcfg.model = sim::ExecutionModel::Functional;
    sim::EngineConfig ccfg;
    ccfg.model = sim::ExecutionModel::CycleAccurate;
    ccfg.dp = core::kExtendedUnified;
    const sim::KnnReport f = sim::Engine(fcfg).runKnn(index, queries);
    const sim::KnnReport c = sim::Engine(ccfg).runKnn(index, queries);
    ASSERT_TRUE(allBitIdentical(f.results, c.results));
}

// ------------------------------------------------------------------
// Beat packing pinned through the pipelined datapath
// ------------------------------------------------------------------

TEST(KnnBeats, JobBeatsThroughPipelineMatchGoldenScore)
{
    // knnJobBeats is the single source of truth for beat packing; feed
    // its beats through a REAL pipelined extended datapath and require
    // the accumulated score to equal golden::knnScore bit-for-bit, at
    // dimensions below / at / straddling / far above the beat widths.
    core::RayFlexDatapath dp(core::kExtendedUnified);
    pipeline::Simulator sim;
    pipeline::Source<core::DatapathInput> src("src", &dp.in());
    pipeline::Sink<core::DatapathOutput> sink("sink", &dp.out());
    dp.registerWith(sim);
    sim.add(&src);
    sim.add(&sink);

    uint64_t tag = 0;
    for (const unsigned dims : {5u, 16u, 20u, 48u}) {
        std::vector<float> q(dims), c(dims);
        for (unsigned d = 0; d < dims; ++d) {
            q[d] = 0.37f * float(d) - 1.25f;
            c[d] = -0.61f * float(d) + 2.5f;
        }
        for (const KnnMetric metric :
             {KnnMetric::Euclidean, KnnMetric::Cosine}) {
            const std::vector<core::DatapathInput> beats =
                knnJobBeats(q.data(), c.data(), dims, metric, ++tag);
            ASSERT_EQ(beats.size(), knnBeatsPerJob(dims, metric));
            for (size_t b = 0; b < beats.size(); ++b) {
                EXPECT_EQ(beats[b].tag, tag);
                EXPECT_EQ(beats[b].reset_accumulator,
                          b + 1 == beats.size());
            }

            const size_t before = sink.count();
            for (const core::DatapathInput &in : beats)
                src.push(in);
            while (sink.count() < before + beats.size())
                sim.tick();

            const core::DatapathOutput &out = sink.received().back();
            const bool cosine = metric == KnnMetric::Cosine;
            EXPECT_TRUE(cosine ? out.angular_reset
                               : out.euclidean_reset);
            const float hw =
                cosine ? core::golden::knnAngularScore(
                             fromBits(out.angular_dot_product),
                             fromBits(out.angular_norm))
                       : fromBits(out.euclidean_accumulator);
            EXPECT_EQ(toBits(hw),
                      toBits(core::golden::knnScore(
                          q.data(), c.data(), dims, cosine)))
                << "dims=" << dims << " cosine=" << cosine;
        }
    }
}

// ------------------------------------------------------------------
// Stats algebra and the inactive path
// ------------------------------------------------------------------

TEST(KnnStatsMerge, CommutesAndTakesFrontierMax)
{
    KnnStats a;
    a.queries = 3;
    a.candidates = 100;
    a.distance_beats = 400;
    a.nodes_visited = 40;
    a.leaves_visited = 25;
    a.pruned = 7;
    a.frontier_peak = 12;
    KnnStats b;
    b.queries = 5;
    b.candidates = 60;
    b.distance_beats = 120;
    b.nodes_visited = 10;
    b.leaves_visited = 8;
    b.pruned = 30;
    b.frontier_peak = 9;

    KnnStats ab = a;
    ab.merge(b);
    KnnStats ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, ba);
    EXPECT_EQ(ab.queries, 8u);
    EXPECT_EQ(ab.candidates, 160u);
    EXPECT_EQ(ab.frontier_peak, 12u); // max, not sum
}

TEST(KnnInactive, RayWorkloadsKeepZeroKnnCounters)
{
    // The k-NN machinery must be invisible to ray workloads: a plain
    // ray run reports an all-zero KnnStats block.
    auto tris = makeSoup(120, 4.0f, 0.6f, 5, 0);
    const Bvh4 bvh = buildBvh4(std::move(tris));
    core::Pinhole cam;
    cam.eye = {0.0f, 0.5f, 8.0f};
    cam.width = 12;
    cam.height = 12;
    const std::vector<core::Ray> rays =
        core::RayGen::primaryRays(cam, 100.0f);

    sim::EngineConfig cfg;
    cfg.model = sim::ExecutionModel::CycleAccurate;
    const sim::Engine engine(cfg);
    const sim::EngineReport rep = engine.run(bvh, rays);
    EXPECT_GT(rep.unit.rays_completed, 0u);
    EXPECT_EQ(rep.unit.knn, KnnStats{});
}

TEST(KnnPasses, RenderPassesKnnRideAlong)
{
    // The ride-along: a render scenario that also carries k-NN queries
    // answers them on the same engine and folds the counters in —
    // without perturbing any per-pixel ray output.
    auto tris = makeSphere({0, 0, 0}, 1.5f, 8, 10);
    const Bvh4 bvh = buildBvh4(std::move(tris));
    const unsigned dims = 8;
    const std::vector<DataPoint> cloud =
        makePointCloud(150, dims, 4, 61);
    const KnnIndex index = buildKnnIndex(cloud);

    sim::EngineConfig ecfg;
    ecfg.model = sim::ExecutionModel::Functional;
    const sim::Engine engine(ecfg);

    sim::PassConfig pcfg;
    pcfg.camera.eye = {0.0f, 0.0f, 6.0f};
    pcfg.camera.width = 8;
    pcfg.camera.height = 8;

    const sim::PassesReport plain =
        sim::renderPasses(engine, bvh, pcfg);

    pcfg.knn_index = &index;
    pcfg.knn_queries =
        makeQueries(40, dims, 3, KnnMetric::Euclidean, 62);
    const sim::PassesReport rode =
        sim::renderPasses(engine, bvh, pcfg);

    ASSERT_TRUE(allBitIdentical(
        rode.knn.results, goldenAll(cloud, pcfg.knn_queries, dims)));
    EXPECT_EQ(rode.knn.knn.queries, pcfg.knn_queries.size());
    // Ray outputs are untouched by the ride-along.
    EXPECT_EQ(rode.diffuse, plain.diffuse);
    EXPECT_EQ(rode.lit, plain.lit);
    EXPECT_EQ(plain.knn.results.size(), 0u); // off by default
}
