/**
 * @file
 * Tests of the pluggable RT-unit memory models (bvh/mem_model.hh):
 * the FixedLatencyMemory backend's bit-identity with the original
 * flat-latency timing, the NodeCache's LRU/eviction mechanics and
 * degenerate geometries, the CacheStats merge contract, and the
 * engine-level determinism sweep with the cached backend — mirroring
 * test_sim_engine at 1/2/8 workers — plus the scene-size sweep
 * acceptance property: the hit-rate falls monotonically as the BVH
 * outgrows the cache.
 */
#include <gtest/gtest.h>

#include "bvh/mem_model.hh"
#include "bvh/scene.hh"
#include "core/workloads.hh"
#include "sim/engine.hh"

using namespace rayflex;
using namespace rayflex::bvh;
using namespace rayflex::core;
using rayflex::fp::toBits;

namespace
{

/** Bit-level equality of two hit records (same helper contract as
 *  test_sim_engine: float == would accept -0.0f vs 0.0f). */
::testing::AssertionResult
bitIdentical(const HitRecord &a, const HitRecord &b)
{
    if (a.hit != b.hit || a.triangle_id != b.triangle_id ||
        toBits(a.t) != toBits(b.t) || toBits(a.u) != toBits(b.u) ||
        toBits(a.v) != toBits(b.v) || toBits(a.w) != toBits(b.w))
        return ::testing::AssertionFailure()
               << "hit records differ: {" << a.hit << ", " << a.t << ", "
               << a.triangle_id << "} vs {" << b.hit << ", " << b.t
               << ", " << b.triangle_id << "}";
    return ::testing::AssertionSuccess();
}

/** A mixed scene with both hits and misses well represented. */
Bvh4
testScene()
{
    auto tris = makeSphere({0, 0, 0}, 2.0f, 12, 16);
    uint32_t id = uint32_t(tris.size());
    auto soup = makeSoup(300, 6.0f, 0.8f, 17, id);
    tris.insert(tris.end(), soup.begin(), soup.end());
    return buildBvh4(std::move(tris));
}

/** Camera rays plus random rays (some aimed away from the scene). */
std::vector<Ray>
testRays(const Bvh4 &bvh, size_t n_random)
{
    Camera cam;
    cam.look_at = bvh.root_bounds.centre();
    cam.eye = {0.5f, 1.0f, 9.0f};
    cam.width = 16;
    cam.height = 16;
    std::vector<Ray> rays;
    for (unsigned y = 0; y < cam.height; ++y)
        for (unsigned x = 0; x < cam.width; ++x)
            rays.push_back(cam.primaryRay(x, y, 100.0f));
    WorkloadGen gen(99);
    for (size_t i = 0; i < n_random; ++i)
        rays.push_back(gen.ray(8.0f));
    return rays;
}

/** Strip the cache counters so timing-only comparisons can use the
 *  defaulted operator== on the rest of the struct. */
RtUnitStats
timingOnly(RtUnitStats s)
{
    s.mem = {};
    return s;
}

} // namespace

TEST(CacheStats, MergeIsCommutativeSum)
{
    CacheStats a{10, 4, 1};
    CacheStats b{3, 9, 2};
    CacheStats ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab, ba);
    EXPECT_EQ(ab.hits, 13u);
    EXPECT_EQ(ab.misses, 13u);
    EXPECT_EQ(ab.evictions, 3u);
    EXPECT_DOUBLE_EQ(ab.hitRate(), 0.5);
    EXPECT_EQ(CacheStats{}.hitRate(), 0.0);
}

TEST(MshrStats, MergeIsCommutativeSum)
{
    MshrStats a{5, 2, 7};
    MshrStats b{1, 9, 3};
    MshrStats ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab, ba);
    EXPECT_EQ(ab.allocations, 6u);
    EXPECT_EQ(ab.merges, 11u);
    EXPECT_EQ(ab.stalls_full, 10u);
}

TEST(MshrFile, MergesDuplicatesAndBoundsOutstanding)
{
    MshrFile file(2);
    ASSERT_TRUE(file.enabled());
    EXPECT_FALSE(file.full());
    EXPECT_EQ(file.inflightCompletion(128), 0u);

    // Two distinct targets fill the file.
    file.allocate(128, 30);
    file.allocate(256, 25);
    EXPECT_TRUE(file.full());
    // A duplicate of an in-flight target reports its completion (the
    // merge the RT unit rides instead of allocating).
    EXPECT_EQ(file.inflightCompletion(128), 30u);
    EXPECT_EQ(file.inflightCompletion(256), 25u);
    EXPECT_EQ(file.inflightCompletion(512), 0u);

    // Retirement frees exactly the entries whose fill completed.
    file.retire(24);
    EXPECT_TRUE(file.full());
    file.retire(25);
    EXPECT_FALSE(file.full());
    EXPECT_EQ(file.inflightCompletion(256), 0u);
    EXPECT_EQ(file.inflightCompletion(128), 30u);

    file.reset();
    EXPECT_EQ(file.inflightCompletion(128), 0u);
    EXPECT_FALSE(file.full());

    // Entry count 0 disables the file (the legacy unbounded path).
    EXPECT_FALSE(MshrFile(0).enabled());
}

TEST(FixedLatencyMemory, EveryAccessCostsTheConfiguredLatency)
{
    FixedLatencyMemory mem(20);
    for (uint64_t addr : {0ull, 64ull, 12345ull, 1ull << 40})
        for (uint32_t bytes : {1u, 48u, 128u, 4096u})
            EXPECT_EQ(mem.access(addr, bytes), 20u);
    EXPECT_EQ(mem.stats(), CacheStats{});
}

TEST(FixedLatencyMemory, DefaultRtUnitTimingIsReproducible)
{
    // The default backend is FixedLatency; two engine runs of the same
    // workload must agree on every counter, and the cache stats of a
    // fixed-latency run stay all-zero (nothing is being cached).
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 32);
    sim::EngineConfig cfg;
    cfg.threads = 1;
    cfg.batch_size = 64;
    sim::EngineReport a = sim::Engine(cfg).run(bvh, rays);
    sim::EngineReport b = sim::Engine(cfg).run(bvh, rays);
    EXPECT_EQ(a.unit, b.unit);
    EXPECT_EQ(a.unit.mem, CacheStats{});
    ASSERT_GT(a.unit.cycles, 0u);
}

TEST(NodeCache, UniformLatencyCacheIsCycleIdenticalToFixedLatency)
{
    // A cache whose hit and miss latencies both equal mem_latency is
    // timing-equivalent to the flat-latency fetch: every access costs
    // the same no matter what the tags say. The whole simulation —
    // per-ray hits AND every timing counter — must agree bit-for-bit,
    // which is the regression guard that the MemoryModel refactor did
    // not perturb the original RT-unit schedule.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);

    sim::EngineConfig fixed;
    fixed.threads = 1;
    fixed.batch_size = 64;
    fixed.rt.mem_latency = 20;
    sim::EngineReport ref = sim::Engine(fixed).run(bvh, rays);

    sim::EngineConfig cached = fixed;
    cached.rt.mem_backend = MemBackend::NodeCache;
    cached.rt.cache.hit_latency = 20;
    cached.rt.cache.miss_latency = 20;
    sim::EngineReport rep = sim::Engine(cached).run(bvh, rays);

    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i])) << i;
    EXPECT_EQ(timingOnly(rep.unit), timingOnly(ref.unit));
    // The cached run actually exercised the cache.
    EXPECT_GT(rep.unit.mem.hits + rep.unit.mem.misses, 0u);
}

TEST(NodeCache, HitsMissesAndLruEviction)
{
    // One set, two ways, 64-byte lines: the smallest cache where LRU
    // order is observable.
    NodeCacheConfig cfg;
    cfg.line_bytes = 64;
    cfg.sets = 1;
    cfg.ways = 2;
    cfg.hit_latency = 2;
    cfg.miss_latency = 20;
    NodeCache cache(cfg);

    EXPECT_EQ(cache.access(0, 4), 20u);   // line 0: compulsory miss
    EXPECT_EQ(cache.access(64, 4), 20u);  // line 1: compulsory miss
    EXPECT_EQ(cache.access(0, 4), 2u);    // line 0: hit
    EXPECT_EQ(cache.stats(), (CacheStats{1, 2, 0}));

    // Line 2 fills the only set; the LRU victim is line 1 (line 0 was
    // touched more recently).
    EXPECT_EQ(cache.access(128, 4), 20u);
    EXPECT_EQ(cache.stats(), (CacheStats{1, 3, 1}));
    EXPECT_EQ(cache.access(0, 4), 2u);    // line 0 survived
    EXPECT_EQ(cache.access(64, 4), 20u);  // line 1 was the victim
    EXPECT_EQ(cache.stats(), (CacheStats{2, 4, 2}));

    // reset() drops contents and counters: line 0 misses again.
    cache.reset();
    EXPECT_EQ(cache.stats(), CacheStats{});
    EXPECT_EQ(cache.access(0, 4), 20u);
}

TEST(NodeCache, AccessSpanningLinesTouchesEachLine)
{
    NodeCacheConfig cfg;
    cfg.line_bytes = 64;
    cfg.sets = 4;
    cfg.ways = 2;
    NodeCache cache(cfg);
    const unsigned fill = cfg.miss_latency - cfg.hit_latency;

    // [60, 68) straddles lines 0 and 1: two compulsory misses, each
    // charged its own fill penalty.
    EXPECT_EQ(cache.access(60, 8), cfg.hit_latency + 2 * fill);
    EXPECT_EQ(cache.stats(), (CacheStats{0, 2, 0}));

    // Re-reading the same span hits both lines.
    EXPECT_EQ(cache.access(60, 8), cfg.hit_latency);
    EXPECT_EQ(cache.stats(), (CacheStats{2, 2, 0}));

    // A span with one resident and one new line pays exactly one fill
    // penalty on top of the hit latency.
    EXPECT_EQ(cache.access(64, 128), cfg.hit_latency + fill);
    EXPECT_EQ(cache.stats(), (CacheStats{3, 3, 0}));
}

TEST(NodeCache, LatencyIsChargedPerMissedLine)
{
    // The hit-rate counters and the latency must agree on what an
    // access is: a K-line fetch is K line touches, and each missed
    // line adds one fill penalty. (The old model charged one flat
    // miss_latency no matter how many of the touched lines missed, so
    // a 4-line leaf fetch with 4 misses cost the same as one with a
    // single miss while CacheStats counted 4x the misses.)
    NodeCacheConfig cfg;
    cfg.line_bytes = 64;
    cfg.sets = 8;
    cfg.ways = 2;
    cfg.hit_latency = 3;
    cfg.miss_latency = 21; // fill penalty 18
    NodeCache cache(cfg);

    // Four fresh lines: 3 + 4*18.
    EXPECT_EQ(cache.access(0, 256), 75u);
    EXPECT_EQ(cache.stats(), (CacheStats{0, 4, 0}));
    // Same span again: pure hit.
    EXPECT_EQ(cache.access(0, 256), 3u);
    // Half resident, half fresh: 3 + 2*18.
    EXPECT_EQ(cache.access(128, 256), 39u);
    EXPECT_EQ(cache.stats(), (CacheStats{6, 6, 0}));

    // A miss_latency at or below hit_latency degrades to a uniform
    // hit_latency charge instead of underflowing the fill penalty —
    // the FixedLatency-equivalence configuration relies on this.
    NodeCacheConfig uniform = cfg;
    uniform.miss_latency = uniform.hit_latency;
    NodeCache flat(uniform);
    EXPECT_EQ(flat.access(0, 256), uniform.hit_latency);
    EXPECT_EQ(flat.access(0, 256), uniform.hit_latency);

    // The zero-capacity degenerate keeps the same per-line charge.
    NodeCacheConfig zero = cfg;
    zero.ways = 0;
    NodeCache none(zero);
    EXPECT_EQ(none.access(0, 256), 75u);
    EXPECT_EQ(none.access(0, 256), 75u); // nothing becomes resident
}

TEST(NodeCache, ZeroCapacityDegeneratesToAlwaysMiss)
{
    for (int degenerate = 0; degenerate < 3; ++degenerate) {
        NodeCacheConfig cfg;
        cfg.hit_latency = 1;
        cfg.miss_latency = 17;
        if (degenerate == 0)
            cfg.sets = 0;
        else if (degenerate == 1)
            cfg.ways = 0;
        else
            cfg.line_bytes = 0;
        ASSERT_EQ(cfg.capacityBytes(), 0u);
        NodeCache cache(cfg);
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(cache.access(uint64_t(i) * 64, 64), 17u)
                << "degenerate dim " << degenerate;
        // Nothing can be resident, so nothing is ever evicted.
        EXPECT_EQ(cache.stats().hits, 0u);
        EXPECT_EQ(cache.stats().evictions, 0u);
        EXPECT_GE(cache.stats().misses, 8u);
    }

    // Zero-byte requests still touch one line.
    NodeCache cache(NodeCacheConfig{});
    EXPECT_EQ(cache.access(0, 0), NodeCacheConfig{}.miss_latency);
    EXPECT_EQ(cache.access(0, 0), NodeCacheConfig{}.hit_latency);
}

TEST(NodeCache, EngineDeterministicAcrossWorkerCounts)
{
    // The cached backend inherits the engine's determinism contract:
    // per-ray hits and the merged statistics — including the cache
    // counters — are bit-identical at 1, 2 and 8 workers, because each
    // batch warms a private cold cache and CacheStats merge with
    // commutative sums.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 64);

    sim::EngineConfig cfg;
    cfg.batch_size = 48; // several batches, last one short
    cfg.rt.mem_backend = MemBackend::NodeCache;
    cfg.rt.cache.sets = 16;
    cfg.rt.cache.ways = 2;
    cfg.threads = 1;
    sim::EngineReport ref = sim::Engine(cfg).run(bvh, rays);
    ASSERT_EQ(ref.unit.rays_completed, rays.size());
    ASSERT_GT(ref.unit.mem.hits, 0u);
    ASSERT_GT(ref.unit.mem.misses, 0u);

    for (unsigned threads : {2u, 8u}) {
        cfg.threads = threads;
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
        ASSERT_EQ(rep.hits.size(), ref.hits.size());
        for (size_t i = 0; i < rays.size(); ++i)
            ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i]))
                << "ray " << i << " at " << threads << " threads";
        EXPECT_EQ(rep.unit, ref.unit) << threads << " threads";
        EXPECT_EQ(rep.unit.mem, ref.unit.mem) << threads << " threads";
    }
}

TEST(NodeCache, CachedHitsMatchFixedLatencyHits)
{
    // Memory timing must never change intersection results: the cached
    // and flat-latency runs resolve identical hit records even though
    // their cycle counts differ.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 32);

    sim::EngineConfig fixed;
    fixed.threads = 2;
    fixed.batch_size = 64;
    sim::EngineReport ref = sim::Engine(fixed).run(bvh, rays);

    sim::EngineConfig cached = fixed;
    cached.rt.mem_backend = MemBackend::NodeCache;
    cached.rt.cache.hit_latency = 1;
    cached.rt.cache.miss_latency = fixed.rt.mem_latency;
    sim::EngineReport rep = sim::Engine(cached).run(bvh, rays);

    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i])) << i;
    // A miss costs exactly what the flat fetch did and a hit costs
    // less, so the cached run finishes in fewer simulated cycles.
    EXPECT_LT(rep.unit.cycles, ref.unit.cycles);
}

TEST(WarmCache, CarriesContentsAcrossRunsAtOneThread)
{
    // EngineConfig::warm_cache: each worker's memory model persists
    // across batches and run() calls. At threads == 1 the batch order
    // is the submission order, so warm runs are fully deterministic:
    // the second run of the same workload starts with a warmed cache
    // and must see a strictly higher hit-rate, and resetWarmCaches()
    // must restore the cold-start counters exactly.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 32);

    sim::EngineConfig cfg;
    cfg.threads = 1;
    cfg.batch_size = 64;
    cfg.warm_cache = true;
    cfg.rt.mem_backend = MemBackend::NodeCache;
    cfg.rt.cache.sets = 256; // large enough to hold the working set
    cfg.rt.cache.ways = 4;

    sim::Engine engine(cfg);
    sim::EngineReport first = engine.run(bvh, rays);
    sim::EngineReport second = engine.run(bvh, rays);
    ASSERT_GT(first.unit.mem.misses, 0u);
    EXPECT_GT(second.unit.mem.hitRate(), first.unit.mem.hitRate());
    EXPECT_LT(second.unit.cycles, first.unit.cycles);

    // Warm timing never changes intersection results.
    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(second.hits[i], first.hits[i])) << i;

    // A reset returns the engine to the cold-start trajectory.
    engine.resetWarmCaches();
    sim::EngineReport again = engine.run(bvh, rays);
    EXPECT_EQ(again.unit, first.unit);
}

TEST(WarmCache, HitsMatchColdModeAtEveryThreadCount)
{
    // The warm-cache determinism contract is reduced, not void: timing
    // and cache counters depend on the batch-to-worker schedule at
    // threads > 1, but per-ray hit records stay bit-identical to a
    // cold run at every thread count.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);

    sim::EngineConfig cold;
    cold.threads = 1;
    cold.batch_size = 48;
    cold.rt.mem_backend = MemBackend::NodeCache;
    sim::EngineReport ref = sim::Engine(cold).run(bvh, rays);

    for (unsigned threads : {1u, 4u}) {
        sim::EngineConfig warm = cold;
        warm.threads = threads;
        warm.warm_cache = true;
        sim::Engine engine(warm);
        engine.run(bvh, rays); // warm the worker caches
        sim::EngineReport rep = engine.run(bvh, rays);
        for (size_t i = 0; i < rays.size(); ++i)
            ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i]))
                << "ray " << i << " at " << threads << " threads";
    }
}

TEST(NodeCache, HitRateFallsAsSceneOutgrowsCache)
{
    // The acceptance sweep: a fixed 4 KiB cache against terrain BVHs of
    // growing triangle count. Once the node working set exceeds the
    // cache, the hit rate must fall monotonically with scene size —
    // this is exactly the signal the flat-latency model could not
    // produce (its stall_on_memory was scene-size-blind per fetch).
    // Scene, camera and engine setup mirror BM_NodeCacheSceneSweep in
    // bench/bench_sim_engine.cc so this test pins the same workload
    // that benchmark reports; retune them together.
    const NodeCacheConfig cache = kProbeCache4KiB;

    double prev_rate = 1.1;
    uint64_t first_cycles = 0, last_cycles = 0;
    for (unsigned res : {8u, 16u, 32u, 64u}) {
        Bvh4 bvh = buildBvh4(makeTerrain(20.0f, res, 0.5f, 11));
        Camera cam;
        cam.look_at = bvh.root_bounds.centre();
        cam.eye = {6.0f, 10.0f, 18.0f};
        cam.width = 16;
        cam.height = 16;
        std::vector<Ray> rays;
        for (unsigned y = 0; y < cam.height; ++y)
            for (unsigned x = 0; x < cam.width; ++x)
                rays.push_back(cam.primaryRay(x, y, 1000.0f));

        sim::EngineConfig cfg;
        cfg.threads = 1;
        cfg.batch_size = 0; // one batch: a single cache serves the sweep
        cfg.rt.mem_backend = MemBackend::NodeCache;
        cfg.rt.cache = cache;
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);

        const double rate = rep.unit.mem.hitRate();
        EXPECT_LT(rate, prev_rate)
            << "hit rate did not fall at terrain res " << res;
        prev_rate = rate;

        if (first_cycles == 0)
            first_cycles = rep.unit.cycles;
        last_cycles = rep.unit.cycles;
    }
    // The largest scene genuinely outgrew the cache, and the extra
    // misses are visible in the timing: the same camera batch costs
    // more cycles against the big BVH than the small one (the signal
    // the flat-latency model could not produce).
    EXPECT_LT(prev_rate, 0.9);
    EXPECT_GT(last_cycles, first_cycles);
}
