/**
 * @file
 * Tests of the observability subsystem (src/obs/): the issue-slot
 * conservation invariant sum(buckets) == cycles * issue_width across
 * the full knob grid (packets x issue x MSHRs x memory backend x chip
 * x k-NN), the zero-overhead contract of disabled tracing (every
 * counter and hit bit-identical trace-on vs trace-off), trace
 * bit-identity at 1/2/8 workers for both the batch engine and the
 * streaming service, log-linear histogram algebra (merge
 * commutativity, exactness below 64, quantile-vs-exact-sort error
 * bound), stall-bucket plausibility per configuration, and the
 * streaming percentile ordering p50 <= p99 <= p999.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "bvh/builder.hh"
#include "bvh/knn.hh"
#include "bvh/scene.hh"
#include "core/raygen.hh"
#include "core/workloads.hh"
#include "obs/histogram.hh"
#include "sim/stream.hh"

using namespace rayflex;
using namespace rayflex::bvh;
using namespace rayflex::core;
using rayflex::fp::toBits;

namespace
{

/** The mixed scene the PR-4/5 pins were captured on (test_chip,
 *  test_issue_width). */
Bvh4
testScene()
{
    auto tris = makeSphere({0, 0, 0}, 2.0f, 12, 16);
    uint32_t id = uint32_t(tris.size());
    auto soup = makeSoup(300, 6.0f, 0.8f, 17, id);
    tris.insert(tris.end(), soup.begin(), soup.end());
    return buildBvh4(std::move(tris));
}

/** Coherent camera rays plus random rays (some aimed away). */
std::vector<Ray>
testRays(const Bvh4 &bvh, size_t n_random)
{
    Camera cam;
    cam.look_at = bvh.root_bounds.centre();
    cam.eye = {0.5f, 1.0f, 9.0f};
    cam.width = 16;
    cam.height = 16;
    std::vector<Ray> rays;
    for (unsigned y = 0; y < cam.height; ++y)
        for (unsigned x = 0; x < cam.width; ++x)
            rays.push_back(cam.primaryRay(x, y, 100.0f));
    WorkloadGen gen(99);
    for (size_t i = 0; i < n_random; ++i)
        rays.push_back(gen.ray(8.0f));
    return rays;
}

/** The conservation invariant for one report: every issue slot of
 *  every cycle landed in exactly one bucket, and the Issued bucket is
 *  the beat counter itself. Holds for merged reports too — both sides
 *  of the identity are sums. */
::testing::AssertionResult
slotsConserved(const RtUnitStats &u, unsigned issue_width)
{
    if (u.slots.total() != u.cycles * issue_width)
        return ::testing::AssertionFailure()
               << "slot buckets sum to " << u.slots.total() << ", want "
               << u.cycles << " x " << issue_width << " = "
               << u.cycles * issue_width;
    if (u.slots[obs::Slot::Issued] != u.datapath_beats)
        return ::testing::AssertionFailure()
               << "Issued bucket " << u.slots[obs::Slot::Issued]
               << " != datapath_beats " << u.datapath_beats;
    return ::testing::AssertionSuccess();
}

sim::EngineConfig
baseConfig()
{
    sim::EngineConfig cfg;
    cfg.threads = 1;
    cfg.batch_size = 64;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Conservation invariant across the knob grid
// ---------------------------------------------------------------------

TEST(Obs, SlotConservationAcrossKnobGrid)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);

    for (unsigned width : {1u, 8u}) {
        for (unsigned issue : {1u, 2u}) {
            for (unsigned mshrs : {0u, 8u}) {
                for (bool cached : {false, true}) {
                    sim::EngineConfig cfg = baseConfig();
                    cfg.rt.packet.width = width;
                    cfg.rt.ray_buffer_entries = 32 * width;
                    cfg.rt.issue_width = issue;
                    cfg.rt.mshrs = mshrs;
                    if (cached) {
                        cfg.rt.mem_backend = MemBackend::NodeCache;
                        cfg.rt.cache = kProbeCache4KiB;
                    }
                    sim::EngineReport rep =
                        sim::Engine(cfg).run(bvh, rays);
                    EXPECT_TRUE(slotsConserved(rep.unit, issue))
                        << "width " << width << " issue " << issue
                        << " mshrs " << mshrs << " cached " << cached;
                }
            }
        }
    }
}

TEST(Obs, SlotConservationChipModes)
{
    // The chip grid: lock-stepped units behind a shared and behind
    // private L2s. Merged cycles are the per-unit sums, so the
    // invariant carries through the chip merge unchanged.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);

    for (sim::L2Mode l2 : {sim::L2Mode::Shared, sim::L2Mode::Private}) {
        sim::EngineConfig cfg = baseConfig();
        cfg.rt.mem_backend = MemBackend::NodeCache;
        cfg.rt.cache = kProbeCache4KiB;
        cfg.rt.packet.width = 8;
        cfg.rt.ray_buffer_entries = 32 * 8;
        cfg.rt.issue_width = 2;
        cfg.rt.mshrs = 8;
        cfg.chip.units = 4;
        cfg.chip.l2 = l2;
        cfg.chip.l2cfg = l2 == sim::L2Mode::Shared
                             ? kProbeL2_128KiB
                             : kProbeL2_128KiB.dividedAcross(4);
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
        EXPECT_TRUE(slotsConserved(rep.unit, 2))
            << "l2 mode " << int(l2);
        EXPECT_GT(rep.unit.slots.total(), 0u);
    }
}

TEST(Obs, SlotConservationKnn)
{
    const auto cloud = makePointCloud(600, 16, 8, 21);
    const KnnIndex index = buildKnnIndex(cloud);
    std::vector<KnnQuery> queries;
    for (DataPoint &p : makePointCloud(64, 16, 8, 22))
        queries.push_back(
            {std::move(p.coords), 4, KnnMetric::Euclidean});

    sim::EngineConfig cfg = baseConfig();
    cfg.dp = core::kExtendedUnified;
    cfg.rt.issue_width = 2;
    cfg.rt.mshrs = 8;
    cfg.rt.mem_backend = MemBackend::NodeCache;
    cfg.rt.cache = kProbeCache4KiB;
    sim::KnnReport rep = sim::Engine(cfg).runKnn(index, queries);
    EXPECT_TRUE(slotsConserved(rep.unit, 2));
    EXPECT_GT(rep.unit.slots.total(), 0u);
}

// ---------------------------------------------------------------------
// Bucket plausibility per configuration
// ---------------------------------------------------------------------

TEST(Obs, BucketSanityPerConfiguration)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);

    // Flat-latency memory: every fetch wait is an L1-phase wait — the
    // L2-side buckets (ring, bank queue, fill) and the MSHR bucket
    // must be exactly zero.
    {
        sim::EngineConfig cfg = baseConfig();
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
        const obs::SlotAccounting &sl = rep.unit.slots;
        EXPECT_GT(sl[obs::Slot::StallL1Miss], 0u);
        EXPECT_EQ(sl[obs::Slot::StallMshrFull], 0u);
        EXPECT_EQ(sl[obs::Slot::StallRingHop], 0u);
        EXPECT_EQ(sl[obs::Slot::StallL2BankQueue], 0u);
        EXPECT_EQ(sl[obs::Slot::StallL2Fill], 0u);
    }

    // A deliberately tiny MSHR file back-pressures fetches: the
    // MshrFull bucket must light up.
    {
        sim::EngineConfig cfg = baseConfig();
        cfg.rt.mshrs = 1;
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
        EXPECT_GT(rep.unit.slots[obs::Slot::StallMshrFull], 0u);
        EXPECT_GT(rep.unit.mshr.stalls_full, 0u);
    }

    // A shared-L2 chip routes misses over the ring into banks: the
    // ring and L2-fill buckets must light up (they are exactly what
    // the flat counters could not attribute).
    {
        sim::EngineConfig cfg = baseConfig();
        cfg.rt.mem_backend = MemBackend::NodeCache;
        cfg.rt.cache = kProbeCache4KiB;
        cfg.rt.mshrs = 8;
        cfg.chip.units = 4;
        cfg.chip.l2 = sim::L2Mode::Shared;
        cfg.chip.l2cfg = kProbeL2_128KiB;
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
        EXPECT_GT(rep.unit.slots[obs::Slot::StallRingHop], 0u);
        EXPECT_GT(rep.unit.slots[obs::Slot::StallL2Fill], 0u);
    }
}

// ---------------------------------------------------------------------
// Zero-overhead and determinism contracts of tracing
// ---------------------------------------------------------------------

namespace
{

/** Every counter the engine reports, compared field by field. */
void
expectStatsEqual(const RtUnitStats &a, const RtUnitStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.rays_completed, b.rays_completed);
    EXPECT_EQ(a.datapath_beats, b.datapath_beats);
    EXPECT_EQ(a.datapath_idle, b.datapath_idle);
    EXPECT_EQ(a.mem_requests, b.mem_requests);
    EXPECT_EQ(a.stall_on_memory, b.stall_on_memory);
    EXPECT_EQ(a.mem.hits, b.mem.hits);
    EXPECT_EQ(a.mem.misses, b.mem.misses);
    EXPECT_EQ(a.mshr.merges, b.mshr.merges);
    EXPECT_EQ(a.mshr.stalls_full, b.mshr.stalls_full);
    EXPECT_EQ(a.packet.packets_formed, b.packet.packets_formed);
    EXPECT_EQ(a.packet.fetches_shared, b.packet.fetches_shared);
    EXPECT_TRUE(a.slots == b.slots);
    EXPECT_EQ(a.chip_cycles, b.chip_cycles);
    EXPECT_EQ(a.l2Total().hits, b.l2Total().hits);
    EXPECT_EQ(a.l2Total().queue_stalls, b.l2Total().queue_stalls);
    EXPECT_EQ(a.l2Total().hops, b.l2Total().hops);
}

sim::EngineConfig
tracedChipConfig(unsigned threads, bool trace)
{
    sim::EngineConfig cfg;
    cfg.threads = threads;
    cfg.batch_size = 64;
    cfg.trace = trace;
    cfg.rt.mem_backend = MemBackend::NodeCache;
    cfg.rt.cache = kProbeCache4KiB;
    cfg.rt.packet.width = 8;
    cfg.rt.ray_buffer_entries = 32 * 8;
    cfg.rt.issue_width = 2;
    cfg.rt.mshrs = 8;
    cfg.chip.units = 2;
    cfg.chip.l2 = sim::L2Mode::Shared;
    cfg.chip.l2cfg = kProbeL2_128KiB;
    return cfg;
}

} // namespace

TEST(Obs, TracingOffIsFreeAndTracingChangesNoCounter)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);

    sim::EngineReport off =
        sim::Engine(tracedChipConfig(1, false)).run(bvh, rays);
    sim::EngineReport on =
        sim::Engine(tracedChipConfig(1, true)).run(bvh, rays);

    EXPECT_TRUE(off.trace.empty());
    EXPECT_FALSE(on.trace.empty());
    expectStatsEqual(off.unit, on.unit);
    ASSERT_EQ(off.hits.size(), on.hits.size());
    for (size_t i = 0; i < off.hits.size(); ++i) {
        EXPECT_EQ(off.hits[i].hit, on.hits[i].hit);
        EXPECT_EQ(off.hits[i].triangle_id, on.hits[i].triangle_id);
        EXPECT_EQ(toBits(off.hits[i].t), toBits(on.hits[i].t));
    }
}

TEST(Obs, EngineTraceBitIdenticalAcrossWorkers)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);

    sim::EngineReport ref =
        sim::Engine(tracedChipConfig(1, true)).run(bvh, rays);
    ASSERT_FALSE(ref.trace.empty());
    for (unsigned threads : {2u, 8u}) {
        sim::EngineReport rep =
            sim::Engine(tracedChipConfig(threads, true)).run(bvh, rays);
        EXPECT_TRUE(rep.trace == ref.trace)
            << "trace differs at " << threads << " workers ("
            << rep.trace.size() << " vs " << ref.trace.size()
            << " events)";
        expectStatsEqual(rep.unit, ref.unit);
    }
}

TEST(Obs, StreamTraceBitIdenticalAcrossWorkers)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);
    const std::vector<Ray> small(rays.begin(), rays.begin() + 32);

    const auto run = [&](unsigned threads) {
        sim::EngineConfig cfg = tracedChipConfig(threads, true);
        cfg.chip = {}; // single unit: streaming exercises the engine
                       // pool, the chip path is covered above
        const sim::Engine eng(cfg);
        std::vector<sim::RenderJob> jobs;
        jobs.push_back({1, 0, false, rays});
        jobs.push_back({2, 500, false, small});
        jobs.push_back({3, 900, true, small});
        sim::StreamConfig scfg;
        scfg.batch_size = 64;
        return sim::StreamingService::run(eng, bvh, std::move(jobs),
                                          scfg);
    };

    sim::StreamReport ref = run(1);
    ASSERT_FALSE(ref.trace.empty());
    // The stream trace carries the job tier too: one JobSubmit and one
    // JobComplete per job, batches bracketed.
    size_t submits = 0, completes = 0, starts = 0, ends = 0;
    for (const obs::TraceRecord &r : ref.trace) {
        submits += r.event == obs::TraceEvent::JobSubmit;
        completes += r.event == obs::TraceEvent::JobComplete;
        starts += r.event == obs::TraceEvent::BatchStart;
        ends += r.event == obs::TraceEvent::BatchEnd;
    }
    EXPECT_EQ(submits, 3u);
    EXPECT_EQ(completes, 3u);
    EXPECT_EQ(starts, ref.batches);
    EXPECT_EQ(ends, ref.batches);

    for (unsigned threads : {2u, 8u}) {
        sim::StreamReport rep = run(threads);
        EXPECT_TRUE(rep.trace == ref.trace)
            << "stream trace differs at " << threads << " workers";
        expectStatsEqual(rep.unit, ref.unit);
        EXPECT_EQ(rep.p50_job_latency, ref.p50_job_latency);
        EXPECT_EQ(rep.p99_job_latency, ref.p99_job_latency);
        EXPECT_EQ(rep.p999_job_latency, ref.p999_job_latency);
    }
}

TEST(Obs, StreamPercentilesOrderedAndHistogramBacked)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);
    const std::vector<Ray> small(rays.begin(), rays.begin() + 32);

    sim::EngineConfig cfg;
    cfg.threads = 1;
    cfg.batch_size = 64;
    const sim::Engine eng(cfg);
    std::vector<sim::RenderJob> jobs;
    jobs.push_back({1, 0, false, rays});
    for (uint64_t j = 2; j <= 5; ++j)
        jobs.push_back({j, 300 * j, false, small});
    sim::StreamReport rep =
        sim::StreamingService::run(eng, bvh, std::move(jobs), {});

    EXPECT_LE(rep.p50_job_latency, rep.p99_job_latency);
    EXPECT_LE(rep.p99_job_latency, rep.p999_job_latency);
    for (const sim::JobReport &j : rep.jobs) {
        EXPECT_LE(j.p50_ray_latency, j.p99_ray_latency);
        EXPECT_LE(j.p99_ray_latency, j.p999_ray_latency);
        // Bucket lower-bound reporting can only round DOWN, and a
        // job's rays cannot outlive the job.
        EXPECT_LE(j.p999_ray_latency, j.latency);
    }
}

// ---------------------------------------------------------------------
// Histogram algebra
// ---------------------------------------------------------------------

TEST(Obs, HistogramExactBelow64)
{
    // The log-linear layout is the identity below 2^kSubBits: every
    // small latency reports exactly, so short-path percentiles carry
    // no rounding at all.
    for (uint64_t v : {0ull, 1ull, 7ull, 42ull, 63ull}) {
        obs::Histogram h;
        h.add(v);
        EXPECT_EQ(h.quantile(0.5), v);
        EXPECT_EQ(obs::Histogram::bucketLowerBound(
                      obs::Histogram::bucketIndex(v)),
                  v);
    }
}

TEST(Obs, HistogramMergeCommutes)
{
    std::mt19937_64 rng(7);
    obs::Histogram a, b;
    for (int i = 0; i < 2000; ++i)
        a.add(rng() % 100000, 1 + rng() % 3);
    for (int i = 0; i < 500; ++i)
        b.add(rng() % 1000);

    obs::Histogram ab = a, ba = b, all;
    ab.merge(b);
    ba.merge(a);
    EXPECT_TRUE(ab == ba);
    EXPECT_EQ(ab.count(), a.count() + b.count());
    for (double q : {0.5, 0.9, 0.99, 0.999})
        EXPECT_EQ(ab.quantile(q), ba.quantile(q));

    // Merging empties is the identity.
    obs::Histogram empty;
    obs::Histogram a2 = a;
    a2.merge(empty);
    EXPECT_TRUE(a2 == a);
    empty.merge(a);
    EXPECT_TRUE(empty == a);
}

TEST(Obs, HistogramQuantileVsExactSort)
{
    // The accuracy contract: the histogram's nearest-rank quantile is
    // the bucket lower bound of the exact nearest-rank sample — never
    // above it, within one sub-bucket (1/64 < 1.6% relative) below.
    std::mt19937_64 rng(11);
    std::vector<uint64_t> samples;
    obs::Histogram h;
    for (int i = 0; i < 5000; ++i) {
        // Mix scales so buckets across many octaves are exercised.
        uint64_t v = (rng() % 50) * (uint64_t(1) << (rng() % 16));
        samples.push_back(v);
        h.add(v);
    }
    std::sort(samples.begin(), samples.end());

    for (double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999}) {
        // Same nearest-rank rule as Histogram::quantile, so the two
        // sides select the same sample and only bucketing differs.
        size_t rank = size_t(std::ceil(q * double(samples.size())));
        rank = std::clamp<size_t>(rank, 1, samples.size());
        const uint64_t exact = samples[rank - 1];
        const uint64_t approx = h.quantile(q);
        EXPECT_LE(approx, exact) << "q=" << q;
        EXPECT_LE(double(exact) - double(approx),
                  double(exact) / 64.0 + 1.0)
            << "q=" << q << " exact=" << exact << " approx=" << approx;
    }
}

TEST(Obs, SlotAccountingMergeAndNames)
{
    obs::SlotAccounting a, b;
    a[obs::Slot::Issued] = 10;
    a[obs::Slot::StallL1Miss] = 3;
    b[obs::Slot::Issued] = 5;
    b[obs::Slot::StallDrain] = 2;
    obs::SlotAccounting m = a;
    m.merge(b);
    EXPECT_EQ(m.total(), a.total() + b.total());
    EXPECT_EQ(m[obs::Slot::Issued], 15u);
    EXPECT_EQ(m.memoryStallSlots(), 3u);

    // Every bucket has a distinct, non-empty display name (the bench
    // counters and the render_scene breakdown print them).
    for (size_t s = 0; s < obs::kSlotBuckets; ++s) {
        ASSERT_NE(obs::slotName(obs::Slot(s)), nullptr);
        for (size_t t = 0; t < s; ++t)
            EXPECT_STRNE(obs::slotName(obs::Slot(s)),
                         obs::slotName(obs::Slot(t)));
    }
}
