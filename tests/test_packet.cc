/**
 * @file
 * Tests of packet/wavefront traversal (bvh/packet.hh + the packet
 * scheduler in bvh::RtUnit): the headline hits-never-change contract
 * (packetized runs produce bit-identical hit records to scalar
 * traversal, in closest- and any-hit modes), the width == 1 scalar
 * pin (timing and all), divergence edge cases (fully diverged packet,
 * single-ray packet, packet of misses, empty scene), the engine-level
 * 1/2/8-worker determinism sweep in packet mode, the PacketStats merge
 * contract, and the memory-sharing property the subsystem exists for:
 * on a coherent camera batch, mem_requests falls monotonically as the
 * packet width grows while fetches_shared rises.
 */
#include <gtest/gtest.h>

#include "bvh/packet.hh"
#include "bvh/scene.hh"
#include "core/raygen.hh"
#include "core/workloads.hh"
#include "sim/passes.hh"

using namespace rayflex;
using namespace rayflex::bvh;
using namespace rayflex::core;
using rayflex::fp::toBits;

namespace
{

/** Bit-level equality of two hit records (same helper contract as
 *  test_sim_engine: float == would accept -0.0f vs 0.0f). */
::testing::AssertionResult
bitIdentical(const HitRecord &a, const HitRecord &b)
{
    if (a.hit != b.hit || a.triangle_id != b.triangle_id ||
        toBits(a.t) != toBits(b.t) || toBits(a.u) != toBits(b.u) ||
        toBits(a.v) != toBits(b.v) || toBits(a.w) != toBits(b.w))
        return ::testing::AssertionFailure()
               << "hit records differ: {" << a.hit << ", " << a.t << ", "
               << a.triangle_id << "} vs {" << b.hit << ", " << b.t
               << ", " << b.triangle_id << "}";
    return ::testing::AssertionSuccess();
}

/** A mixed scene with both hits and misses well represented. */
Bvh4
testScene()
{
    auto tris = makeSphere({0, 0, 0}, 2.0f, 12, 16);
    uint32_t id = uint32_t(tris.size());
    auto soup = makeSoup(300, 6.0f, 0.8f, 17, id);
    tris.insert(tris.end(), soup.begin(), soup.end());
    return buildBvh4(std::move(tris));
}

/** Coherent camera rays plus random rays (some aimed away). */
std::vector<Ray>
testRays(const Bvh4 &bvh, size_t n_random)
{
    Camera cam;
    cam.look_at = bvh.root_bounds.centre();
    cam.eye = {0.5f, 1.0f, 9.0f};
    cam.width = 16;
    cam.height = 16;
    std::vector<Ray> rays;
    for (unsigned y = 0; y < cam.height; ++y)
        for (unsigned x = 0; x < cam.width; ++x)
            rays.push_back(cam.primaryRay(x, y, 100.0f));
    WorkloadGen gen(99);
    for (size_t i = 0; i < n_random; ++i)
        rays.push_back(gen.ray(8.0f));
    return rays;
}

/** Engine config for a packetized cycle-accurate run. */
sim::EngineConfig
packetConfig(unsigned width, unsigned threads = 1,
             size_t batch_size = 64)
{
    sim::EngineConfig cfg;
    cfg.threads = threads;
    cfg.batch_size = batch_size;
    cfg.rt.packet.width = width;
    return cfg;
}

} // namespace

TEST(PacketStats, MergeIsCommutativeSum)
{
    PacketStats a{2, 10, 60, 50, 4, 3, 16, 100, 2, 5};
    PacketStats b{1, 7, 14, 7, 2, 5, 8, 24, 1, 3};
    PacketStats ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab, ba);
    EXPECT_EQ(ab.packets_formed, 3u);
    EXPECT_EQ(ab.node_visits, 17u);
    EXPECT_EQ(ab.active_ray_visits, 74u);
    EXPECT_EQ(ab.fetches_shared, 57u);
    EXPECT_EQ(ab.cross_job_fetches_shared, 6u);
    EXPECT_EQ(ab.divergence_splits, 8u);
    EXPECT_EQ(ab.rays_retired, 24u);
    EXPECT_EQ(ab.occupancy_at_retire, 124u);
    EXPECT_EQ(ab.compactions, 3u);
    EXPECT_EQ(ab.lanes_repacked, 8u);
    EXPECT_DOUBLE_EQ(a.avgOccupancy(), 6.0);
    EXPECT_DOUBLE_EQ(a.avgOccupancyAtRetire(), 6.25);
    EXPECT_EQ(PacketStats{}.avgOccupancy(), 0.0);
    EXPECT_EQ(PacketStats{}.avgOccupancyAtRetire(), 0.0);
}

TEST(PacketTraversal, WidthOneIsScalarBitForBit)
{
    // packet.width == 1 must not merely agree with the scalar path, it
    // must BE the scalar path: every timing counter identical, packet
    // counters all zero.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 48);

    sim::EngineConfig scalar;
    scalar.threads = 1;
    scalar.batch_size = 64;
    sim::EngineReport ref = sim::Engine(scalar).run(bvh, rays);

    sim::EngineReport rep =
        sim::Engine(packetConfig(1)).run(bvh, rays);
    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i])) << i;
    EXPECT_EQ(rep.unit, ref.unit);
    EXPECT_EQ(rep.unit.packet, PacketStats{});
}

TEST(PacketTraversal, HitsMatchScalarAcrossWidths)
{
    // The headline contract: packets change timing and memory traffic,
    // never hits.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 64);

    sim::EngineConfig scalar;
    scalar.threads = 1;
    scalar.batch_size = 64;
    sim::EngineReport ref = sim::Engine(scalar).run(bvh, rays);

    for (unsigned width : {2u, 4u, 8u, 16u}) {
        sim::EngineReport rep =
            sim::Engine(packetConfig(width)).run(bvh, rays);
        ASSERT_EQ(rep.unit.rays_completed, rays.size());
        for (size_t i = 0; i < rays.size(); ++i)
            ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i]))
                << "ray " << i << " at width " << width;
        EXPECT_GT(rep.unit.packet.packets_formed, 0u) << width;
        EXPECT_GT(rep.unit.packet.node_visits, 0u) << width;
        EXPECT_EQ(rep.unit.packet.rays_retired, rays.size()) << width;
        const double occ = rep.unit.packet.avgOccupancy();
        EXPECT_GE(occ, 1.0) << width;
        EXPECT_LE(occ, double(width)) << width;
    }
}

TEST(PacketTraversal, AnyHitMatchesScalar)
{
    // Occlusion batches: the any-hit flag is order-independent, so the
    // packetized result must agree with scalar for every ray (and per
    // the any-hit contract the records carry only the flag).
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 64);

    sim::EngineConfig scalar;
    scalar.threads = 1;
    scalar.batch_size = 64;
    scalar.any_hit = true;
    sim::EngineReport ref = sim::Engine(scalar).run(bvh, rays);

    for (unsigned width : {2u, 8u}) {
        sim::EngineConfig cfg = packetConfig(width);
        cfg.any_hit = true;
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
        for (size_t i = 0; i < rays.size(); ++i)
            ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i]))
                << "ray " << i << " at width " << width;
    }
}

TEST(PacketTraversal, FullyDivergedPacket)
{
    // Eight rays leaving one interior point toward the eight octants:
    // after a node or two every lane wants a different subtree. The
    // packet must split its masks (divergence visible in the stats)
    // and still resolve every lane exactly like the scalar unit.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays;
    for (float sx : {-1.0f, 1.0f})
        for (float sy : {-1.0f, 1.0f})
            for (float sz : {-1.0f, 1.0f})
                rays.push_back(makeRay(0.1f, 0.2f, 0.3f, sx, sy, sz,
                                       0.0f, 100.0f));

    sim::EngineConfig scalar;
    scalar.threads = 1;
    scalar.batch_size = 0;
    sim::EngineReport ref = sim::Engine(scalar).run(bvh, rays);

    sim::EngineReport rep =
        sim::Engine(packetConfig(8, 1, 0)).run(bvh, rays);
    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i])) << i;
    EXPECT_EQ(rep.unit.packet.packets_formed, 1u);
    EXPECT_GT(rep.unit.packet.divergence_splits, 0u);
    // Divergence wastes occupancy: the average must sit well below a
    // coherent packet's.
    EXPECT_LT(rep.unit.packet.avgOccupancy(), 8.0);
}

TEST(PacketTraversal, SingleRayPacket)
{
    // A one-ray workload under width 8: the degenerate packet is legal,
    // shares nothing and agrees with scalar.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays{testRays(bvh, 0)[40]};

    sim::EngineConfig scalar;
    scalar.threads = 1;
    scalar.batch_size = 0;
    sim::EngineReport ref = sim::Engine(scalar).run(bvh, rays);

    sim::EngineReport rep =
        sim::Engine(packetConfig(8, 1, 0)).run(bvh, rays);
    ASSERT_TRUE(bitIdentical(rep.hits[0], ref.hits[0]));
    EXPECT_EQ(rep.unit.packet.packets_formed, 1u);
    EXPECT_EQ(rep.unit.packet.fetches_shared, 0u);
    EXPECT_EQ(rep.unit.packet.rays_retired, 1u);
    EXPECT_DOUBLE_EQ(rep.unit.packet.avgOccupancy(), 1.0);
    EXPECT_DOUBLE_EQ(rep.unit.packet.avgOccupancyAtRetire(), 1.0);
}

TEST(PacketTraversal, PacketOfMisses)
{
    // Every lane aimed away from the scene: the packet dies at the
    // root with one shared fetch and zero triangle work.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays;
    for (int i = 0; i < 8; ++i)
        rays.push_back(makeRay(0.0f, 0.0f, 20.0f + float(i), 0, 0, 1,
                               0.0f, 100.0f));

    sim::EngineReport rep =
        sim::Engine(packetConfig(8, 1, 0)).run(bvh, rays);
    ASSERT_EQ(rep.unit.rays_completed, rays.size());
    for (size_t i = 0; i < rays.size(); ++i) {
        EXPECT_FALSE(rep.hits[i].hit) << i;
        EXPECT_TRUE(bitIdentical(rep.hits[i], HitRecord{})) << i;
    }
    EXPECT_EQ(rep.unit.packet.node_visits, 1u); // the root, once
    EXPECT_EQ(rep.unit.packet.fetches_shared, 7u);
    EXPECT_EQ(rep.unit.mem_requests, 1u);
}

TEST(PacketTraversal, EmptySceneCompletesImmediately)
{
    Bvh4 bvh = buildBvh4(std::vector<SceneTriangle>{});
    std::vector<Ray> rays = {makeRay(0, 0, 5, 0, 0, -1, 0.0f, 100.0f),
                             makeRay(1, 0, 5, 0, 0, -1, 0.0f, 100.0f)};
    sim::EngineReport rep =
        sim::Engine(packetConfig(8, 1, 0)).run(bvh, rays);
    ASSERT_EQ(rep.unit.rays_completed, rays.size());
    for (const HitRecord &h : rep.hits)
        EXPECT_FALSE(h.hit);
    // No traversal ever happened: no packets, no fetches.
    EXPECT_EQ(rep.unit.packet.packets_formed, 0u);
    EXPECT_EQ(rep.unit.mem_requests, 0u);
}

TEST(PacketTraversal, DeterministicAcrossWorkerCounts)
{
    // Packet mode inherits the engine's contract: per-ray hits and the
    // merged statistics — including PacketStats and the node-cache
    // counters — are bit-identical at 1, 2 and 8 workers.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 64);

    sim::EngineConfig cfg = packetConfig(8, 1, 48);
    cfg.rt.mem_backend = MemBackend::NodeCache;
    cfg.rt.cache.sets = 16;
    cfg.rt.cache.ways = 2;
    sim::EngineReport ref = sim::Engine(cfg).run(bvh, rays);
    ASSERT_EQ(ref.unit.rays_completed, rays.size());
    ASSERT_GT(ref.unit.packet.fetches_shared, 0u);

    for (unsigned threads : {2u, 8u}) {
        cfg.threads = threads;
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
        ASSERT_EQ(rep.hits.size(), ref.hits.size());
        for (size_t i = 0; i < rays.size(); ++i)
            ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i]))
                << "ray " << i << " at " << threads << " threads";
        EXPECT_EQ(rep.unit, ref.unit) << threads << " threads";
        EXPECT_EQ(rep.unit.packet, ref.unit.packet)
            << threads << " threads";
    }
}

TEST(PacketTraversal, FetchSharingGrowsWithWidth)
{
    // The property the subsystem exists for: on a coherent camera
    // batch, widening the packet monotonically removes memory requests
    // (each shared fetch replaces what scalar paid per ray) while the
    // shared-fetch counter rises.
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 0); // pure camera batch

    uint64_t prev_requests = ~0ull;
    uint64_t prev_shared = 0;
    for (unsigned width : {1u, 2u, 4u, 8u, 16u}) {
        sim::EngineReport rep =
            sim::Engine(packetConfig(width, 1, 0)).run(bvh, rays);
        ASSERT_EQ(rep.unit.rays_completed, rays.size());
        EXPECT_LT(rep.unit.mem_requests, prev_requests)
            << "width " << width;
        EXPECT_GE(rep.unit.packet.fetches_shared, prev_shared)
            << "width " << width;
        prev_requests = rep.unit.mem_requests;
        prev_shared = rep.unit.packet.fetches_shared;
    }
}

TEST(PacketTraversal, PacketizedRenderPassesMatchScalar)
{
    // Every existing scenario pass runs packetized: the per-pixel
    // outputs of a packetized cycle-accurate renderPasses run equal
    // the scalar ones bit for bit.
    auto tris = makeTerrain(10.0f, 12, 0.5f, 7);
    uint32_t id = uint32_t(tris.size());
    auto sphere = makeSphere({0, 1.5f, 0}, 1.2f, 8, 10, id);
    tris.insert(tris.end(), sphere.begin(), sphere.end());
    Bvh4 bvh = buildBvh4(std::move(tris));

    sim::PassConfig pcfg;
    pcfg.camera.eye = {4.0f, 5.0f, 9.0f};
    pcfg.camera.look_at = {0.0f, 0.5f, 0.0f};
    pcfg.camera.width = 12;
    pcfg.camera.height = 10;
    pcfg.ao_samples = 2;
    pcfg.ao_radius = 2.0f;
    pcfg.bounce = true;

    sim::EngineConfig scalar;
    scalar.threads = 1;
    scalar.batch_size = 64;
    sim::Engine scalar_engine(scalar);
    sim::PassesReport ref =
        sim::renderPasses(scalar_engine, bvh, pcfg);

    sim::Engine packet_engine(packetConfig(8, 1, 64));
    sim::PassesReport rep =
        sim::renderPasses(packet_engine, bvh, pcfg);

    ASSERT_EQ(rep.primary.hits.size(), ref.primary.hits.size());
    for (size_t i = 0; i < ref.primary.hits.size(); ++i)
        ASSERT_TRUE(
            bitIdentical(rep.primary.hits[i], ref.primary.hits[i]))
            << i;
    for (size_t i = 0; i < ref.diffuse.size(); ++i) {
        EXPECT_EQ(toBits(rep.diffuse[i]), toBits(ref.diffuse[i])) << i;
        EXPECT_EQ(rep.lit[i], ref.lit[i]) << i;
        EXPECT_EQ(toBits(rep.ao_open[i]), toBits(ref.ao_open[i])) << i;
        ASSERT_TRUE(
            bitIdentical(rep.bounce_hits[i], ref.bounce_hits[i])) << i;
    }
    EXPECT_GT(rep.unit.packet.packets_formed, 0u);
}
