/**
 * @file
 * The twenty functional-correctness test cases of Section IV-A.
 *
 * Nine ray-box cases and eleven ray-triangle cases, transcribed from the
 * paper. Every case is checked twice: against the golden software model
 * (bit-exact agreement) and against the stated expected hit/miss
 * outcome. All geometry uses a unit-ish box [0,2]^3 and simple triangles
 * so that the boundary conditions (coplanar, corner, edge) are exact in
 * FP32.
 */
#include <gtest/gtest.h>

#include "core/golden.hh"
#include "core/stages.hh"

using namespace rayflex::core;
using rayflex::fp::fromBits;

namespace
{

/** Run one ray-box op through the datapath (functional model). */
DatapathOutput
runBox(const Ray &ray, const Box &b0, const Box &b1, const Box &b2,
       const Box &b3)
{
    DatapathInput in;
    in.op = Opcode::RayBox;
    in.ray = ray;
    in.boxes = {b0, b1, b2, b3};
    DistanceAccumulators acc;
    return functionalEval(in, acc);
}

/** Run one ray-triangle op through the datapath. */
DatapathOutput
runTri(const Ray &ray, const Triangle &tri)
{
    DatapathInput in;
    in.op = Opcode::RayTriangle;
    in.ray = ray;
    in.tri = tri;
    DistanceAccumulators acc;
    return functionalEval(in, acc);
}

/** A far-away box that never interferes. */
Box
farBox()
{
    return makeBox(900, 900, 900, 901, 901, 901);
}

/** Assert hardware and golden agree on all four hit flags. */
void
expectGoldenAgrees(const Ray &ray,
                   const std::array<Box, kMaxBoxesPerOp> &boxes,
                   const DatapathOutput &hw)
{
    BoxResult g = golden::rayBox4(ray, boxes);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(hw.box.hit[i], g.hit[i]) << "box " << i;
        EXPECT_EQ(hw.box.order[i], g.order[i]) << "slot " << i;
        EXPECT_EQ(hw.box.sorted_dist[i], g.sorted_dist[i]) << "slot " << i;
    }
}

} // namespace

// ---------------- ray-box cases (Section IV-A) ----------------

// The unit box used throughout.
static const Box kBox = makeBox(0, 0, 0, 2, 2, 2);

TEST(PaperRayBox, Case1_OriginInsideBox_Hit)
{
    Ray ray = makeRay(1, 1, 1, 0.3f, 0.4f, 0.5f, 0, 100);
    auto out = runBox(ray, kBox, farBox(), farBox(), farBox());
    EXPECT_TRUE(out.box.hit[0]);
    // Entry distance for a ray starting inside is clamped to t_beg = 0.
    EXPECT_EQ(out.box.order[0], 0);
    EXPECT_EQ(fromBits(out.box.sorted_dist[0]), 0.0f);
    expectGoldenAgrees(ray, {kBox, farBox(), farBox(), farBox()}, out);
}

TEST(PaperRayBox, Case2_OutsidePointingAway_Miss)
{
    Ray ray = makeRay(5, 5, 5, 1, 1, 1, 0, 100);
    auto out = runBox(ray, kBox, farBox(), farBox(), farBox());
    EXPECT_FALSE(out.box.hit[0]);
    expectGoldenAgrees(ray, {kBox, farBox(), farBox(), farBox()}, out);
}

TEST(PaperRayBox, Case3_FromSurfacePointingAway_Miss)
{
    // Origin on the +x face, pointing away along +x; the ray is coplanar
    // with the face, inverse direction is infinite in y/z... here the
    // direction is (1,0,0) so t for the x-slab is [?]: origin exactly on
    // hi.x, dir +x: exits immediately. The paper counts this as a miss
    // because the surface-coplanar arithmetic yields NaN via 0 * inf in
    // the perpendicular slabs.
    Ray ray = makeRay(2, 1, 1, 1, 0, 0, 0, 100);
    auto out = runBox(ray, kBox, farBox(), farBox(), farBox());
    // x-slab: t in [(0-2)/1, (2-2)/1] = [-2, 0]; y,z slabs: [inf*..] with
    // origin strictly inside, so [-inf, +inf]: tmin = max(-2, 0beg)=0,
    // tmax = 0 -> closed-interval touch. The hardware resolves this as a
    // *hit at distance 0* only if no NaN arises; with origin.y inside the
    // slab no NaN arises on y/z. Expected per paper: pointing away from a
    // surface counts as a touch of measure zero; RayFlex reports the
    // closed-interval result. Verify hardware == golden and document
    // the outcome.
    BoxResult g =
        golden::rayBox4(ray, {kBox, farBox(), farBox(), farBox()});
    EXPECT_EQ(out.box.hit[0], g.hit[0]);
    expectGoldenAgrees(ray, {kBox, farBox(), farBox(), farBox()}, out);
}

TEST(PaperRayBox, Case3b_FromSurfacePointingAwayCoplanar_Miss)
{
    // The paper's actual coplanar configuration: origin on the lo.x face
    // with dir.x == 0, so (lo.x - org.x) * (1/0) = 0 * inf = NaN and the
    // op must miss.
    Ray ray = makeRay(0, 1, 1, 0, 1, 0, 0, 100);
    auto out = runBox(ray, kBox, farBox(), farBox(), farBox());
    EXPECT_FALSE(out.box.hit[0]);
    expectGoldenAgrees(ray, {kBox, farBox(), farBox(), farBox()}, out);
}

TEST(PaperRayBox, Case4_FromCornerPointingAway_Miss)
{
    Ray ray = makeRay(2, 2, 2, 1, 1, 1, 0, 100);
    auto out = runBox(ray, kBox, farBox(), farBox(), farBox());
    // Touches the corner at t=0 (closed interval). Golden agreement is
    // the contract; the paper treats the coplanar variants as misses.
    expectGoldenAgrees(ray, {kBox, farBox(), farBox(), farBox()}, out);

    // Coplanar variant: from the corner along +y only: 0*inf = NaN in x
    // and z slabs -> miss.
    Ray ray2 = makeRay(2, 2, 2, 0, 1, 0, 0, 100);
    auto out2 = runBox(ray2, kBox, farBox(), farBox(), farBox());
    EXPECT_FALSE(out2.box.hit[0]);
    expectGoldenAgrees(ray2, {kBox, farBox(), farBox(), farBox()}, out2);
}

TEST(PaperRayBox, Case5_FromCornerAlongEdge_Miss)
{
    // Origin at corner (0,0,0), direction along the x edge: coplanar
    // with two faces -> NaN -> miss.
    Ray ray = makeRay(0, 0, 0, 1, 0, 0, 0, 100);
    auto out = runBox(ray, kBox, farBox(), farBox(), farBox());
    EXPECT_FALSE(out.box.hit[0]);
    expectGoldenAgrees(ray, {kBox, farBox(), farBox(), farBox()}, out);
}

TEST(PaperRayBox, Case6_OutsidePointingTowards_Hit)
{
    Ray ray = makeRay(-2, 1, 1, 1, 0.01f, 0.02f, 0, 100);
    auto out = runBox(ray, kBox, farBox(), farBox(), farBox());
    EXPECT_TRUE(out.box.hit[0]);
    EXPECT_EQ(out.box.order[0], 0);
    float t = fromBits(out.box.sorted_dist[0]);
    EXPECT_NEAR(t, 2.0f, 0.01f); // reaches x=0 at t=2
    expectGoldenAgrees(ray, {kBox, farBox(), farBox(), farBox()}, out);
}

TEST(PaperRayBox, Case7_HitsTwoBoxesInARow)
{
    Box b0 = makeBox(2, 0, 0, 4, 2, 2);   // second along the ray
    Box b1 = makeBox(-2, 0, 0, 0, 2, 2);  // first along the ray
    Ray ray = makeRay(-4, 1, 1, 1, 0, 0.001f, 0, 100);
    auto out = runBox(ray, b0, b1, farBox(), farBox());
    EXPECT_TRUE(out.box.hit[0]);
    EXPECT_TRUE(out.box.hit[1]);
    EXPECT_FALSE(out.box.hit[2]);
    EXPECT_FALSE(out.box.hit[3]);
    // Sorted by entry distance: box 1 (entry t=2) before box 0 (t=6).
    EXPECT_EQ(out.box.order[0], 1);
    EXPECT_EQ(out.box.order[1], 0);
    expectGoldenAgrees(ray, {b0, b1, farBox(), farBox()}, out);
}

TEST(PaperRayBox, Case8_HitsThreeMissesFourth)
{
    Box b0 = makeBox(4, 0, 0, 6, 2, 2);
    Box b1 = makeBox(0, 0, 0, 2, 2, 2);
    Box b2 = makeBox(8, 0, 0, 10, 2, 2);
    Box b3 = makeBox(0, 50, 0, 2, 52, 2); // far off the ray's path
    Ray ray = makeRay(-2, 1, 1, 1, 0.001f, 0.001f, 0, 100);
    auto out = runBox(ray, b0, b1, b2, b3);
    EXPECT_TRUE(out.box.hit[0]);
    EXPECT_TRUE(out.box.hit[1]);
    EXPECT_TRUE(out.box.hit[2]);
    EXPECT_FALSE(out.box.hit[3]);
    // Order of intersection: b1 (t=2), b0 (t=6), b2 (t=10), miss last.
    EXPECT_EQ(out.box.order[0], 1);
    EXPECT_EQ(out.box.order[1], 0);
    EXPECT_EQ(out.box.order[2], 2);
    EXPECT_EQ(out.box.order[3], 3);
    expectGoldenAgrees(ray, {b0, b1, b2, b3}, out);
}

TEST(PaperRayBox, Case9_OverlappingEdgeFromOutside_Miss)
{
    // Ray runs along the x edge at y=0, z=0 from outside: coplanar with
    // two faces, origin off the box. 0*inf NaN cannot arise (origin not
    // on a plane through it? origin.y == lo.y == 0 -> (0-0)*inf = NaN).
    Ray ray = makeRay(-2, 0, 0, 1, 0, 0, 0, 100);
    auto out = runBox(ray, kBox, farBox(), farBox(), farBox());
    EXPECT_FALSE(out.box.hit[0]);
    expectGoldenAgrees(ray, {kBox, farBox(), farBox(), farBox()}, out);
}

// ---------------- ray-triangle cases (Section IV-A) ----------------

// Front face: counter-clockwise when viewed from +z (normal +z) with
// our culling convention det > 0 for rays travelling towards -z?
// Convention check: a ray along +z hitting vertices ordered CW as seen
// from the origin side registers det > 0. The canonical front-facing
// triangle for a +z-travelling ray used below:
static const Triangle kTri =
    makeTriangle(0, 0, 5, 0, 2, 5, 2, 0, 5); // in plane z=5

TEST(PaperRayTriangle, Case2_HitsFront)
{
    Ray ray = makeRay(0.5f, 0.5f, 0, 0, 0, 1, 0, 100);
    auto out = runTri(ray, kTri);
    TriangleResult g = golden::rayTriangle(ray, kTri);
    EXPECT_EQ(out.tri.hit, g.hit);
    EXPECT_EQ(out.tri.t_num, g.t_num);
    EXPECT_EQ(out.tri.t_den, g.t_den);
    EXPECT_TRUE(out.tri.hit);
    float t = fromBits(out.tri.t_num) / fromBits(out.tri.t_den);
    EXPECT_NEAR(t, 5.0f, 1e-4f);
}

TEST(PaperRayTriangle, Case1_HitsBack_Miss)
{
    // Same geometry approached from the other side: backface culled.
    Ray ray = makeRay(0.5f, 0.5f, 10, 0, 0, -1, 0, 100);
    auto out = runTri(ray, kTri);
    EXPECT_FALSE(out.tri.hit);
    EXPECT_EQ(out.tri.hit, golden::rayTriangle(ray, kTri).hit);
}

TEST(PaperRayTriangle, Case3_HitsEdgeFromFront_Hit)
{
    // Aim at the midpoint of the edge from (0,0,5) to (2,0,5): one
    // barycentric coordinate is exactly zero.
    Ray ray = makeRay(1.0f, 0.0f, 0, 0, 0, 1, 0, 100);
    auto out = runTri(ray, kTri);
    EXPECT_TRUE(out.tri.hit);
    EXPECT_EQ(out.tri.hit, golden::rayTriangle(ray, kTri).hit);
}

TEST(PaperRayTriangle, Case4_HitsVertexFromFront_Hit)
{
    Ray ray = makeRay(0.0f, 0.0f, 0, 0, 0, 1, 0, 100);
    auto out = runTri(ray, kTri);
    EXPECT_TRUE(out.tri.hit);
    EXPECT_EQ(out.tri.hit, golden::rayTriangle(ray, kTri).hit);
}

TEST(PaperRayTriangle, Case5_Misses)
{
    Ray ray = makeRay(5.0f, 5.0f, 0, 0, 0, 1, 0, 100);
    auto out = runTri(ray, kTri);
    EXPECT_FALSE(out.tri.hit);
    EXPECT_EQ(out.tri.hit, golden::rayTriangle(ray, kTri).hit);
}

TEST(PaperRayTriangle, Case6_ParallelToNormalNoIntersection_Miss)
{
    // Direction along the triangle normal (+z) but displaced outside
    // the triangle.
    Ray ray = makeRay(-3.0f, -3.0f, 0, 0, 0, 1, 0, 100);
    auto out = runTri(ray, kTri);
    EXPECT_FALSE(out.tri.hit);
    EXPECT_EQ(out.tri.hit, golden::rayTriangle(ray, kTri).hit);
}

TEST(PaperRayTriangle, Case7_FarAwayTriangle_Hit)
{
    Triangle far_tri = makeTriangle(0, 0, 5000, 0, 200, 5000, 200, 0,
                                    5000);
    Ray ray = makeRay(50, 50, 0, 0, 0, 1, 0, 1e6f);
    auto out = runTri(ray, far_tri);
    EXPECT_TRUE(out.tri.hit);
    float t = fromBits(out.tri.t_num) / fromBits(out.tri.t_den);
    EXPECT_NEAR(t, 5000.0f, 0.5f);
    EXPECT_EQ(out.tri.hit, golden::rayTriangle(ray, far_tri).hit);
}

TEST(PaperRayTriangle, Case8_ObliqueFrontHit)
{
    Ray ray = makeRay(-4, -3, 0, 0.9f, 0.7f, 1.0f, 0, 100);
    auto out = runTri(ray, kTri);
    TriangleResult g = golden::rayTriangle(ray, kTri);
    EXPECT_EQ(out.tri.hit, g.hit);
    EXPECT_TRUE(out.tri.hit);
    EXPECT_EQ(out.tri.t_num, g.t_num);
    EXPECT_EQ(out.tri.t_den, g.t_den);
}

TEST(PaperRayTriangle, Case9_CoplanarHitsEdge_Miss)
{
    // Ray in the z=5 plane aimed across the triangle's edge.
    Ray ray = makeRay(-1.0f, 0.5f, 5.0f, 1, 0, 0, 0, 100);
    auto out = runTri(ray, kTri);
    EXPECT_FALSE(out.tri.hit); // coplanar -> det == 0 -> miss
    EXPECT_EQ(out.tri.hit, golden::rayTriangle(ray, kTri).hit);
}

TEST(PaperRayTriangle, Case10_DifferentAxisFrontHit)
{
    // A triangle facing +x, approached along -x... direction dominant
    // axis differs from case 2 (exercises the k permutation).
    Triangle tri_x = makeTriangle(5, 0, 0, 5, 0, 2, 5, 2, 0);
    Ray ray = makeRay(0, 0.5f, 0.5f, 1, 0, 0, 0, 100);
    auto out = runTri(ray, tri_x);
    TriangleResult g = golden::rayTriangle(ray, tri_x);
    EXPECT_EQ(out.tri.hit, g.hit);
    if (out.tri.hit) {
        float t = fromBits(out.tri.t_num) / fromBits(out.tri.t_den);
        EXPECT_NEAR(t, 5.0f, 1e-4f);
    }
}

TEST(PaperRayTriangle, Case10b_OppositeWindingSameAxis_Miss)
{
    // Same triangle with flipped winding must be culled from this side.
    Triangle tri_x = makeTriangle(5, 0, 0, 5, 2, 0, 5, 0, 2);
    Ray ray = makeRay(0, 0.5f, 0.5f, 1, 0, 0, 0, 100);
    auto out = runTri(ray, tri_x);
    TriangleResult g = golden::rayTriangle(ray, tri_x);
    EXPECT_EQ(out.tri.hit, g.hit);
}

TEST(PaperRayTriangle, Case11_CoplanarFromInside_Miss)
{
    // Ray origin inside the triangle, direction in its plane.
    Ray ray = makeRay(0.5f, 0.5f, 5.0f, 1, 0, 0, 0, 100);
    auto out = runTri(ray, kTri);
    EXPECT_FALSE(out.tri.hit);
    EXPECT_EQ(out.tri.hit, golden::rayTriangle(ray, kTri).hit);
}
