/**
 * @file
 * Tests of the design-exploration extensions: register-sharing policies
 * (Section VII-A alternative) and the rounding-strategy ablation
 * (Section III-F future work).
 */
#include <gtest/gtest.h>

#include "core/golden.hh"
#include "core/workloads.hh"
#include "synth/area.hh"
#include "synth/power.hh"

using namespace rayflex::core;
using namespace rayflex::synth;

namespace
{

uint64_t
seqBits(const DatapathConfig &base, RegisterPolicy pol)
{
    DatapathConfig cfg = base;
    cfg.register_policy = pol;
    return Netlist::build(cfg).totalSequentialBits();
}

} // namespace

// ----- register-sharing policies -----

TEST(RegisterPolicyModel, OrderingHolds)
{
    // aligned union <= disjoint per-op <= worst-case union, for every
    // configuration (aligned takes the max, disjoint the sum, worst
    // pins the widest union live everywhere).
    for (const auto &cfg : {kBaselineUnified, kBaselineDisjoint,
                            kExtendedUnified, kExtendedDisjoint}) {
        uint64_t aligned =
            seqBits(cfg, RegisterPolicy::SharedUnionAligned);
        uint64_t disjoint = seqBits(cfg, RegisterPolicy::DisjointPerOp);
        uint64_t worst =
            seqBits(cfg, RegisterPolicy::SharedUnionWorstCase);
        EXPECT_LE(aligned, disjoint) << cfg.name();
        EXPECT_GE(worst, disjoint) << cfg.name();
    }
}

TEST(RegisterPolicyModel, AlignedUnionDampensExtensionGrowth)
{
    // The Section VII-A argument: the +64% sequential growth comes from
    // disjoint per-op registers; the aligned union grows much less
    // because the distance lanes overlap the box/triangle lanes.
    double disjoint_growth =
        double(seqBits(kExtendedUnified, RegisterPolicy::DisjointPerOp)) /
        double(seqBits(kBaselineUnified, RegisterPolicy::DisjointPerOp));
    double aligned_growth =
        double(seqBits(kExtendedUnified,
                       RegisterPolicy::SharedUnionAligned)) /
        double(seqBits(kBaselineUnified,
                       RegisterPolicy::SharedUnionAligned));
    EXPECT_NEAR(disjoint_growth, 1.64, 0.08);
    EXPECT_LT(aligned_growth, disjoint_growth - 0.2);
}

TEST(RegisterPolicyModel, PolicyDoesNotTouchLogicArea)
{
    AreaModel m;
    for (RegisterPolicy pol : {RegisterPolicy::DisjointPerOp,
                               RegisterPolicy::SharedUnionAligned,
                               RegisterPolicy::SharedUnionWorstCase}) {
        DatapathConfig cfg = kExtendedUnified;
        cfg.register_policy = pol;
        AreaReport a = m.estimate(Netlist::build(cfg), 1.0);
        AreaReport base = m.estimate(Netlist::build(kExtendedUnified),
                                     1.0);
        EXPECT_DOUBLE_EQ(a.logic, base.logic);
    }
}

TEST(RegisterPolicyModel, WorstCaseUnionIsExpensive)
{
    // Pessimal lifetime alignment must cost more sequential area than
    // the paper's disjoint design for the extended pipeline.
    AreaModel m;
    DatapathConfig worst = kExtendedUnified;
    worst.register_policy = RegisterPolicy::SharedUnionWorstCase;
    EXPECT_GT(m.estimate(Netlist::build(worst), 1.0).sequential,
              m.estimate(Netlist::build(kExtendedUnified), 1.0)
                  .sequential);
}

// ----- rounding ablation -----

TEST(RoundingAblation, SkippingRoundingShrinksAreaAndPower)
{
    DatapathConfig no_round = kBaselineUnified;
    no_round.skip_intermediate_rounding = true;
    AreaModel am;
    PowerModel pm;
    double a0 = am.estimate(Netlist::build(kBaselineUnified), 1.0).total();
    double a1 = am.estimate(Netlist::build(no_round), 1.0).total();
    EXPECT_LT(a1, a0);
    EXPECT_GT(a1, a0 * 0.90); // rounding is a few percent, not half

    double p0 = pm.estimateFullThroughput(Netlist::build(kBaselineUnified),
                                          Opcode::RayBox, 1.0)
                    .total();
    double p1 = pm.estimateFullThroughput(Netlist::build(no_round),
                                          Opcode::RayBox, 1.0)
                    .total();
    EXPECT_LT(p1, p0);
}

TEST(RoundingAblation, SequentialAreaUnaffected)
{
    DatapathConfig no_round = kExtendedDisjoint;
    no_round.skip_intermediate_rounding = true;
    AreaModel m;
    EXPECT_DOUBLE_EQ(
        m.estimate(Netlist::build(no_round), 1.0).sequential,
        m.estimate(Netlist::build(kExtendedDisjoint), 1.0).sequential);
}

TEST(RoundingAblation, UnroundedAgreesOnRobustCases)
{
    // Away from numerical boundaries, the unrounded datapath gives the
    // same hit verdicts; flips are confined to a tiny boundary
    // fraction.
    WorkloadGen gen(77);
    uint64_t flips = 0, total = 0;
    for (int i = 0; i < 20000; ++i) {
        DatapathInput in = gen.rayBoxOp(uint64_t(i));
        for (int b = 0; b < 4; ++b) {
            golden::BoxHit r = golden::rayBox(in.ray, in.boxes[b]);
            golden::BoxHit u =
                golden::rayBoxUnrounded(in.ray, in.boxes[b]);
            flips += (r.hit != u.hit) ? 1 : 0;
            ++total;
        }
    }
    EXPECT_LT(double(flips) / double(total), 0.001);
}

TEST(RoundingAblation, UnroundedEuclideanIsCloserToDouble)
{
    // The point of extra intermediate precision: the unrounded result
    // tracks the double-precision reference at least as well as the
    // per-op-rounded one, on aggregate.
    WorkloadGen gen(88);
    double err_rounded = 0, err_unrounded = 0;
    for (int i = 0; i < 20000; ++i) {
        DatapathInput in = gen.euclideanOp(true, uint64_t(i));
        double ref = golden::refEuclidean(in.vec_a, in.vec_b, in.mask);
        if (ref <= 0)
            continue;
        double r = rayflex::fp::fromBits(
            golden::euclideanBeat(in.vec_a, in.vec_b, in.mask));
        double u = rayflex::fp::fromBits(golden::euclideanBeatUnrounded(
            in.vec_a, in.vec_b, in.mask));
        err_rounded += std::abs(r - ref) / ref;
        err_unrounded += std::abs(u - ref) / ref;
    }
    EXPECT_LE(err_unrounded, err_rounded);
}

TEST(RoundingAblation, UnroundedTriangleDeviationIsBounded)
{
    WorkloadGen gen(99);
    uint64_t flips = 0;
    int checked = 0;
    for (int i = 0; i < 20000; ++i) {
        DatapathInput in = gen.rayTriangleOp(uint64_t(i));
        TriangleResult r = golden::rayTriangle(in.ray, in.tri);
        TriangleResult u = golden::rayTriangleUnrounded(in.ray, in.tri);
        flips += (r.hit != u.hit) ? 1 : 0;
        if (r.hit && u.hit) {
            double tr = double(rayflex::fp::fromBits(r.t_num)) /
                        double(rayflex::fp::fromBits(r.t_den));
            double tu = double(rayflex::fp::fromBits(u.t_num)) /
                        double(rayflex::fp::fromBits(u.t_den));
            if (tr > 1e-3) {
                ++checked;
                EXPECT_NEAR(tu / tr, 1.0, 1e-3);
            }
        }
    }
    EXPECT_LT(double(flips) / 20000.0, 0.002);
    EXPECT_GT(checked, 1000);
}
