/**
 * @file
 * Tests of the 5-comparator QuadSort network (pipeline stage 10).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/quadsort.hh"

using namespace rayflex::core;
using namespace rayflex::fp;

namespace
{

std::array<SortRecord<uint8_t>, 4>
make(std::array<float, 4> keys)
{
    std::array<SortRecord<uint8_t>, 4> r;
    for (int i = 0; i < 4; ++i)
        r[size_t(i)] = {toBits(keys[size_t(i)]), uint8_t(i)};
    return r;
}

} // namespace

TEST(QuadSort, AllPermutationsSorted)
{
    std::array<float, 4> vals = {3.0f, 1.0f, 4.0f, 2.0f};
    std::array<int, 4> idx = {0, 1, 2, 3};
    std::sort(idx.begin(), idx.end());
    do {
        std::array<float, 4> keys;
        for (int i = 0; i < 4; ++i)
            keys[size_t(i)] = vals[size_t(idx[size_t(i)])];
        auto sorted = quadSort(make(keys));
        for (int i = 0; i + 1 < 4; ++i)
            ASSERT_TRUE(leF32(sorted[size_t(i)].key,
                              sorted[size_t(i) + 1].key));
    } while (std::next_permutation(idx.begin(), idx.end()));
}

TEST(QuadSort, DeterministicForEqualKeys)
{
    // Compare-exchange only swaps on strictly-greater, so equal keys
    // never swap with each other; the network is deterministic but not
    // fully stable (the (1,3) exchange can jump over slot 2). For
    // {2,1,1,1} the trace is: CE(0,1) swaps, CE(1,3) swaps, giving
    // payload order 1,3,2,0.
    auto sorted = quadSort(make({2.0f, 1.0f, 1.0f, 1.0f}));
    EXPECT_EQ(sorted[0].payload, 1);
    EXPECT_EQ(sorted[1].payload, 3);
    EXPECT_EQ(sorted[2].payload, 2);
    EXPECT_EQ(sorted[3].payload, 0);
}

TEST(QuadSort, AllEqualKeepsIdentityOrder)
{
    auto sorted = quadSort(make({5.0f, 5.0f, 5.0f, 5.0f}));
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(sorted[size_t(i)].payload, i);
}

TEST(QuadSort, InfinityKeysSortLast)
{
    auto recs = make({1.0f, 0.0f, 0.5f, 0.0f});
    recs[0].key = kPosInf;
    auto sorted = quadSort(recs);
    EXPECT_EQ(sorted[3].payload, 0);
    EXPECT_EQ(sorted[0].payload, 1); // 0.0 (stable: slot 1 before 3)
    EXPECT_EQ(sorted[1].payload, 3);
    EXPECT_EQ(sorted[2].payload, 2);
}

TEST(QuadSort, NegativeAndSignedZeroKeys)
{
    auto sorted = quadSort(make({0.0f, -1.0f, -0.0f, 1.0f}));
    EXPECT_EQ(sorted[0].payload, 1); // -1
    // +0 and -0 compare equal: stable order 0 then 2.
    EXPECT_EQ(sorted[1].payload, 0);
    EXPECT_EQ(sorted[2].payload, 2);
    EXPECT_EQ(sorted[3].payload, 3);
}

TEST(QuadSort, RandomAgainstStdStableSort)
{
    std::mt19937_64 rng(17);
    std::uniform_real_distribution<float> d(-100.0f, 100.0f);
    for (int iter = 0; iter < 20000; ++iter) {
        std::array<SortRecord<uint8_t>, 4> recs;
        for (int i = 0; i < 4; ++i)
            recs[size_t(i)] = {toBits(d(rng)), uint8_t(i)};
        auto net = quadSort(recs);
        auto ref = recs;
        std::sort(ref.begin(), ref.end(),
                         [](const auto &a, const auto &b) {
                             return ltF32(a.key, b.key);
                         });
        for (int i = 0; i < 4; ++i) {
            ASSERT_EQ(net[size_t(i)].key, ref[size_t(i)].key);
            ASSERT_EQ(net[size_t(i)].payload, ref[size_t(i)].payload);
        }
    }
}
