/**
 * @file
 * Regression tests for the ray-extent lower bound t_beg.
 *
 * Every traversal path must reject a triangle intersection with
 * t < t_beg exactly like one with t > t_end; shadow and secondary rays
 * (whose extents start at an epsilon, see core::RayGen) depend on it.
 * The canonical failure this suite pins down: a ray with t_beg > 0
 * whose nearest triangle sits inside (0, t_beg) must report the first
 * hit at t >= t_beg - in Traverser::closestHit, Traverser::anyHit, the
 * brute-force oracle, the cycle-level RtUnit and both engine execution
 * models. On the pre-fix tree every one of these returned the near
 * triangle.
 */
#include <gtest/gtest.h>

#include "bvh/builder.hh"
#include "bvh/rt_unit.hh"
#include "bvh/scene.hh"
#include "bvh/traversal.hh"
#include "core/workloads.hh"
#include "sim/engine.hh"

using namespace rayflex;
using namespace rayflex::core;
using namespace rayflex::bvh;
using rayflex::fp::fromBits;
using rayflex::fp::toBits;

namespace
{

/** Rebuild a ray with a different extent (shadow-style rays are the
 *  same geometry with t_beg pushed off zero). */
Ray
withExtent(const Ray &r, float t_beg, float t_end)
{
    return makeRay(fromBits(r.origin[0]), fromBits(r.origin[1]),
                   fromBits(r.origin[2]), fromBits(r.dir[0]),
                   fromBits(r.dir[1]), fromBits(r.dir[2]), t_beg, t_end);
}

/** A front-facing (for a +z ray) triangle spanning the xy origin in
 *  the plane z = `z`. Same winding as the paper-case triangle. */
SceneTriangle
slabTriangle(float z, uint32_t id)
{
    return SceneTriangle{{-3, -3, z}, {-3, 5, z}, {5, -3, z}, id};
}

/** Two triangles across the +z axis: the near one at t=1 inside the
 *  shadow extent's dead zone, the far one at t=5. */
Bvh4
twoSlabScene()
{
    return buildBvh4({slabTriangle(1.0f, 0), slabTriangle(5.0f, 1)});
}

/** The shadow-style ray of the regression: extent [2, 100] along +z
 *  from the origin, so only the far triangle is inside the extent. */
Ray
shadowStyleRay()
{
    return makeRay(0, 0, 0, 0, 0, 1, 2.0f, 100.0f);
}

} // namespace

TEST(RayExtent, SanityNearTriangleWinsWithoutLowerBound)
{
    Bvh4 bvh = twoSlabScene();
    Traverser trav(bvh);
    HitRecord h = trav.closestHit(withExtent(shadowStyleRay(), 0, 100));
    ASSERT_TRUE(h.hit);
    EXPECT_EQ(h.triangle_id, 0u);
    EXPECT_NEAR(h.t, 1.0f, 1e-4f);
}

TEST(RayExtent, ClosestHitHonorsLowerBound)
{
    Bvh4 bvh = twoSlabScene();
    Traverser trav(bvh);
    HitRecord h = trav.closestHit(shadowStyleRay());
    ASSERT_TRUE(h.hit);
    EXPECT_EQ(h.triangle_id, 1u) << "near triangle at t=1 < t_beg=2 "
                                    "must not be reported";
    EXPECT_GE(h.t, 2.0f);
    EXPECT_NEAR(h.t, 5.0f, 1e-4f);
}

TEST(RayExtent, BruteForceOracleHonorsLowerBound)
{
    Bvh4 bvh = twoSlabScene();
    Traverser trav(bvh);
    HitRecord h = trav.bruteForceClosest(shadowStyleRay());
    ASSERT_TRUE(h.hit);
    EXPECT_EQ(h.triangle_id, 1u);
    EXPECT_GE(h.t, 2.0f);
}

TEST(RayExtent, AnyHitHonorsLowerBound)
{
    Bvh4 bvh = twoSlabScene();
    Traverser trav(bvh);
    // Only the far triangle is in [2, 100].
    EXPECT_TRUE(trav.anyHit(shadowStyleRay()));
    // [2, 3] contains no triangle: near is below t_beg, far above t_end.
    EXPECT_FALSE(trav.anyHit(withExtent(shadowStyleRay(), 2.0f, 3.0f)));
    // The near triangle alone is occluder-free for the shadow extent.
    Bvh4 near_only = buildBvh4({slabTriangle(1.0f, 0)});
    Traverser nt(near_only);
    EXPECT_FALSE(nt.anyHit(shadowStyleRay()));
    EXPECT_TRUE(nt.anyHit(withExtent(shadowStyleRay(), 0.0f, 100.0f)));
}

TEST(RayExtent, RtUnitHonorsLowerBound)
{
    Bvh4 bvh = twoSlabScene();
    RayFlexDatapath dp(kBaselineUnified);
    RtUnit unit(bvh, dp);
    unit.submit(shadowStyleRay(), 0);
    unit.run();
    const HitRecord &h = unit.results()[0];
    ASSERT_TRUE(h.hit);
    EXPECT_EQ(h.triangle_id, 1u);
    EXPECT_GE(h.t, 2.0f);
}

TEST(RayExtent, RtUnitAnyHitModeHonorsLowerBound)
{
    Bvh4 bvh = twoSlabScene();
    RtUnitConfig cfg;
    cfg.mode = TraversalMode::Any;

    {
        RayFlexDatapath dp(kBaselineUnified);
        RtUnit unit(bvh, dp, cfg);
        unit.submit(shadowStyleRay(), 0);
        unit.run();
        // Occluded, and the record carries only the flag.
        EXPECT_EQ(unit.results()[0], HitRecord{true});
    }
    {
        RayFlexDatapath dp(kBaselineUnified);
        RtUnit unit(bvh, dp, cfg);
        unit.submit(withExtent(shadowStyleRay(), 2.0f, 3.0f), 0);
        unit.run();
        EXPECT_EQ(unit.results()[0], HitRecord{});
    }
}

TEST(RayExtent, BothEngineModelsHonorLowerBound)
{
    Bvh4 bvh = twoSlabScene();
    std::vector<Ray> rays{shadowStyleRay(),
                          withExtent(shadowStyleRay(), 0.0f, 100.0f),
                          withExtent(shadowStyleRay(), 2.0f, 3.0f)};

    for (sim::ExecutionModel model :
         {sim::ExecutionModel::CycleAccurate,
          sim::ExecutionModel::Functional}) {
        sim::EngineConfig cfg;
        cfg.model = model;
        cfg.threads = 2;
        cfg.batch_size = 1;
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
        ASSERT_TRUE(rep.hits[0].hit);
        EXPECT_EQ(rep.hits[0].triangle_id, 1u);
        EXPECT_GE(rep.hits[0].t, 2.0f);
        EXPECT_EQ(rep.hits[1].triangle_id, 0u); // t_beg=0 sees the near
        EXPECT_FALSE(rep.hits[2].hit);          // empty extent window

        sim::EngineConfig any = cfg;
        any.any_hit = true;
        sim::EngineReport occ = sim::Engine(any).run(bvh, rays);
        EXPECT_TRUE(occ.hits[0].hit);
        EXPECT_TRUE(occ.hits[1].hit);
        EXPECT_FALSE(occ.hits[2].hit);
    }
}

TEST(RayExtent, TraverserMatchesOracleOnRandomExtents)
{
    // Random scene, random rays with random non-zero lower bounds: the
    // BVH traversal and the brute-force oracle must agree bit-for-bit
    // on what "inside the extent" means.
    Bvh4 bvh = buildBvh4(makeSoup(400, 6.0f, 1.0f, 23));
    WorkloadGen gen(41);
    Traverser trav(bvh);
    size_t hits = 0, front_rejections = 0;
    for (int i = 0; i < 600; ++i) {
        Ray r = gen.ray(6.0f);
        float t_beg = gen.uniform(0.0f, 3.0f);
        float t_end = t_beg + gen.uniform(2.0f, 30.0f);
        r = withExtent(r, t_beg, t_end);
        HitRecord a = trav.closestHit(r);
        HitRecord b = trav.bruteForceClosest(r);
        ASSERT_EQ(a.hit, b.hit) << "ray " << i;
        if (a.hit) {
            ++hits;
            ASSERT_EQ(toBits(a.t), toBits(b.t)) << "ray " << i;
            ASSERT_EQ(a.triangle_id, b.triangle_id) << "ray " << i;
            ASSERT_GE(a.t, t_beg) << "ray " << i;
            ASSERT_LE(a.t, t_end) << "ray " << i;
        }
        // Count cases where an in-front triangle had to be skipped:
        // the ray with its lower bound opened to zero hits something
        // nearer than t_beg.
        HitRecord open = trav.closestHit(withExtent(r, 0.0f, t_end));
        if (open.hit && open.t < t_beg)
            ++front_rejections;
        EXPECT_EQ(a.hit, trav.anyHit(r)) << "ray " << i;
    }
    // The workload must actually exercise both the hit path and the
    // front-rejection path for this test to mean anything.
    EXPECT_GT(hits, 20u) << front_rejections;
    EXPECT_GT(front_rejections, 10u) << hits;
}
