/**
 * @file
 * Tests of the 33-bit recoded floating-point format (Section III-F).
 */
#include <gtest/gtest.h>

#include <random>

#include "fp/recoded.hh"

using namespace rayflex::fp;

TEST(Recoded, SpecialValueEncodings)
{
    EXPECT_TRUE(isZeroRec(recode(kPosZero)));
    EXPECT_TRUE(isZeroRec(recode(kNegZero)));
    EXPECT_TRUE(signRec(recode(kNegZero)));
    EXPECT_FALSE(signRec(recode(kPosZero)));
    EXPECT_TRUE(isInfRec(recode(kPosInf)));
    EXPECT_TRUE(isInfRec(recode(kNegInf)));
    EXPECT_TRUE(isNaNRec(recode(kDefaultNaN)));
}

TEST(Recoded, ExponentCodesAreDisjoint)
{
    // Finite nonzero exponents can never collide with the zero/inf/NaN
    // codes: trueExp in [-149, 127] maps to [0x6B, 0x17F].
    EXPECT_EQ(expRec(recode(kMinSubnormal)), 0x100u - 149u);
    EXPECT_EQ(expRec(recode(kMaxFinite)), 0x100u + 127u);
    EXPECT_LT(expRec(recode(kMaxFinite)), kRecExpInf);
    EXPECT_GT(expRec(recode(kMinSubnormal)), kRecExpZero);
}

TEST(Recoded, SubnormalsAreNormalizedInside)
{
    // Every finite nonzero recoded value carries a normalized fraction;
    // the smallest subnormal becomes 1.0 x 2^-149 with zero fraction.
    Rec32 r = recode(kMinSubnormal);
    EXPECT_EQ(fracRec(r), 0u);
    // 3 * 2^-149: fraction 1.1b -> top fraction bit set.
    Rec32 r3 = recode(0x00000003u);
    EXPECT_EQ(fracRec(r3), 0x400000u);
    EXPECT_EQ(expRec(r3), 0x100u - 148u);
}

TEST(Recoded, RoundTripExhaustiveBoundaryRegions)
{
    // Exhaustive round-trip over the subnormal range and the first
    // normal binade, both signs, plus the top of the finite range.
    for (uint32_t mag = 0; mag <= 0x01000000u; ++mag) {
        ASSERT_EQ(decode(recode(mag)), mag);
        F32 neg = mag | 0x80000000u;
        ASSERT_EQ(decode(recode(neg)), neg);
    }
    for (uint32_t mag = 0x7F000000u; mag < 0x7F800000u; ++mag)
        ASSERT_EQ(decode(recode(mag)), mag);
}

TEST(Recoded, RoundTripRandom)
{
    std::mt19937_64 rng(99);
    for (int i = 0; i < 2000000; ++i) {
        F32 v = static_cast<F32>(rng());
        F32 back = decode(recode(v));
        if (isNaNF32(v))
            ASSERT_TRUE(isNaNF32(back)); // payload may be canonicalized
        else
            ASSERT_EQ(back, v) << std::hex << v;
    }
}

TEST(Recoded, FiniteOrderingIsMonotonicInExponentCode)
{
    // The recoding exists to make comparison circuits trivial: for
    // positive finite values, (exp, frac) lexicographic order equals
    // numeric order.
    std::mt19937_64 rng(7);
    for (int i = 0; i < 200000; ++i) {
        F32 a = static_cast<F32>(rng()) & 0x7FFFFFFFu;
        F32 b = static_cast<F32>(rng()) & 0x7FFFFFFFu;
        if (!isFiniteF32(a) || !isFiniteF32(b))
            continue;
        Rec32 ra = recode(a), rb = recode(b);
        uint64_t ka = (uint64_t(expRec(ra)) << 23) | fracRec(ra);
        uint64_t kb = (uint64_t(expRec(rb)) << 23) | fracRec(rb);
        ASSERT_EQ(ka < kb, ltF32(a, b));
    }
}

TEST(Recoded, ArithmeticMatchesF32)
{
    std::mt19937_64 rng(13);
    for (int i = 0; i < 200000; ++i) {
        F32 a = static_cast<F32>(rng());
        F32 b = static_cast<F32>(rng());
        F32 via_rec = decode(addRec(recode(a), recode(b)));
        F32 direct = addF32(a, b);
        if (isNaNF32(direct))
            ASSERT_TRUE(isNaNF32(via_rec));
        else
            ASSERT_EQ(via_rec, direct);

        via_rec = decode(mulRec(recode(a), recode(b)));
        direct = mulF32(a, b);
        if (isNaNF32(direct))
            ASSERT_TRUE(isNaNF32(via_rec));
        else
            ASSERT_EQ(via_rec, direct);
    }
}

TEST(Recoded, ComparisonSemantics)
{
    Rec32 one = recode(toBits(1.0f));
    Rec32 two = recode(toBits(2.0f));
    Rec32 nan = recNaN();
    EXPECT_TRUE(ltRec(one, two));
    EXPECT_TRUE(leRec(one, one));
    EXPECT_TRUE(gtRec(two, one));
    EXPECT_TRUE(geRec(two, two));
    EXPECT_FALSE(ltRec(nan, one));
    EXPECT_FALSE(leRec(nan, one));
    EXPECT_FALSE(gtRec(nan, one));
    EXPECT_FALSE(geRec(one, nan));
    EXPECT_TRUE(isNaNRec(maxPropRec(nan, one)));
    EXPECT_TRUE(isNaNRec(minPropRec(one, nan)));
}

TEST(Recoded, WidthIs33Bits)
{
    std::mt19937_64 rng(5);
    for (int i = 0; i < 100000; ++i) {
        Rec32 r = recode(static_cast<F32>(rng()));
        ASSERT_EQ(r.bits >> kRec32Width, 0u);
    }
}
