/**
 * @file
 * Tests of the secondary-ray scenario subsystem: core::RayGen
 * determinism and geometry, and sim::renderPasses - the multi-pass
 * (primary / shadow / ambient-occlusion / bounce) orchestration -
 * holding the engine's bit-identical-at-every-thread-count contract
 * for every scenario.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "bvh/builder.hh"
#include "bvh/scene.hh"
#include "core/raygen.hh"
#include "sim/passes.hh"

using namespace rayflex;
using namespace rayflex::core;
using namespace rayflex::bvh;
using rayflex::fp::fromBits;
using rayflex::fp::toBits;

namespace
{

/** Field-by-field bit equality of two rays. */
::testing::AssertionResult
rayBitsEqual(const Ray &a, const Ray &b)
{
    if (a.origin != b.origin || a.dir != b.dir ||
        a.inv_dir != b.inv_dir || a.t_beg != b.t_beg ||
        a.t_end != b.t_end || a.kx != b.kx || a.ky != b.ky ||
        a.kz != b.kz || a.shear != b.shear)
        return ::testing::AssertionFailure() << "rays differ";
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
bitIdentical(const HitRecord &a, const HitRecord &b)
{
    if (a.hit != b.hit || a.triangle_id != b.triangle_id ||
        toBits(a.t) != toBits(b.t) || toBits(a.u) != toBits(b.u) ||
        toBits(a.v) != toBits(b.v) || toBits(a.w) != toBits(b.w))
        return ::testing::AssertionFailure()
               << "hit records differ: {" << a.hit << ", " << a.t << ", "
               << a.triangle_id << "} vs {" << b.hit << ", " << b.t
               << ", " << b.triangle_id << "}";
    return ::testing::AssertionSuccess();
}

float
dot3(const Float3 &a, const Float3 &b)
{
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

Float3
rayDir(const Ray &r)
{
    return {fromBits(r.dir[0]), fromBits(r.dir[1]), fromBits(r.dir[2])};
}

/** A sphere hovering over a terrain patch: hit pixels on the ground
 *  near the sphere are shadowed and ambient-occluded. */
Bvh4
scenarioScene()
{
    auto tris = makeTerrain(10.0f, 16, 0.4f, 3);
    uint32_t id = uint32_t(tris.size());
    auto sphere = makeSphere({0, 1.5f, 0}, 1.2f, 10, 14, id);
    tris.insert(tris.end(), sphere.begin(), sphere.end());
    return buildBvh4(std::move(tris));
}

sim::PassConfig
scenarioConfig()
{
    sim::PassConfig cfg;
    cfg.camera.eye = {4.0f, 5.0f, 7.0f};
    cfg.camera.look_at = {0.0f, 0.5f, 0.0f};
    cfg.camera.width = 14;
    cfg.camera.height = 12;
    cfg.t_max = 100.0f;
    cfg.light_dir = {0.2f, 1.0f, 0.1f};
    cfg.ao_samples = 4;
    cfg.ao_radius = 2.0f;
    cfg.bounce = true;
    cfg.seed = 9;
    return cfg;
}

} // namespace

TEST(RayGen, AoFanIsSeededAndBitReproducible)
{
    const Float3 p{1, 2, 3}, n{0, 1, 0};
    RayGen a(7), b(7), c(8);
    auto fan_a = a.aoFan(p, n, 16, 1e-3f, 5.0f);
    auto fan_b = b.aoFan(p, n, 16, 1e-3f, 5.0f);
    auto fan_c = c.aoFan(p, n, 16, 1e-3f, 5.0f);
    ASSERT_EQ(fan_a.size(), 16u);
    for (size_t i = 0; i < fan_a.size(); ++i)
        EXPECT_TRUE(rayBitsEqual(fan_a[i], fan_b[i])) << i;
    EXPECT_NE(a.fanPhase(), c.fanPhase());
    bool any_diff = false;
    for (size_t i = 0; i < fan_a.size(); ++i)
        any_diff = any_diff || !rayBitsEqual(fan_a[i], fan_c[i]);
    EXPECT_TRUE(any_diff) << "distinct seeds must rotate the fan";
}

TEST(RayGen, AoFanCoversTheHemisphereInsideTheExtent)
{
    const Float3 p{0, 0, 0};
    const Float3 n{0.6f, 0.8f, 0.0f};
    RayGen gen(3);
    auto fan = gen.aoFan(p, n, 32, 1e-3f, 2.5f);
    ASSERT_EQ(fan.size(), 32u);
    for (const Ray &r : fan) {
        EXPECT_GT(dot3(rayDir(r), n), 0.0f) << "below the surface";
        EXPECT_EQ(r.t_beg, toBits(1e-3f));
        EXPECT_EQ(r.t_end, toBits(2.5f));
    }
    // Not a degenerate pencil: azimuths actually spread.
    bool spread = false;
    for (size_t i = 1; i < fan.size(); ++i)
        spread = spread ||
                 dot3(rayDir(fan[i]), rayDir(fan[0])) < 0.5f;
    EXPECT_TRUE(spread);
}

TEST(RayGen, ShadowRayCarriesTheGuardedExtent)
{
    Ray r = RayGen::shadowRay({1, 1, 1}, {0, 1, 0}, {0.5f, 1.0f, 0.3f},
                              1e-3f, 50.0f);
    EXPECT_EQ(r.t_beg, toBits(1e-3f));
    EXPECT_EQ(r.t_end, toBits(50.0f));
    EXPECT_EQ(fromBits(r.origin[1]), 1.0f + 1e-3f); // offset along n
    EXPECT_EQ(fromBits(r.origin[0]), 1.0f);
}

TEST(RayGen, BounceRayMirrorsTheIncomingDirection)
{
    Ray r = RayGen::bounceRay({0, 0, 0}, {0, 0, 1}, {0.6f, 0.0f, -0.8f},
                              1e-3f, 10.0f);
    Float3 d = rayDir(r);
    EXPECT_FLOAT_EQ(d[0], 0.6f);
    EXPECT_FLOAT_EQ(d[1], 0.0f);
    EXPECT_FLOAT_EQ(d[2], 0.8f);
    EXPECT_EQ(r.t_beg, toBits(1e-3f));
}

TEST(RayGen, BvhCameraDelegatesBitForBit)
{
    Pinhole ph;
    ph.eye = {1, 2, 8};
    ph.look_at = {0, 0.5f, 0};
    ph.width = 9;
    ph.height = 7;
    Camera cam;
    cam.eye = {1, 2, 8};
    cam.look_at = {0, 0.5f, 0};
    cam.width = 9;
    cam.height = 7;
    auto rays = RayGen::primaryRays(ph, 123.0f);
    ASSERT_EQ(rays.size(), 63u);
    size_t k = 0;
    for (unsigned y = 0; y < ph.height; ++y)
        for (unsigned x = 0; x < ph.width; ++x)
            EXPECT_TRUE(
                rayBitsEqual(rays[k++], cam.primaryRay(x, y, 123.0f)));
}

TEST(Scenarios, RenderPassesBitIdenticalAcrossThreadCounts)
{
    Bvh4 bvh = scenarioScene();
    sim::PassConfig pcfg = scenarioConfig();

    sim::EngineConfig ecfg;
    ecfg.model = sim::ExecutionModel::Functional;
    ecfg.batch_size = 32;
    ecfg.threads = 1;
    sim::Engine ref_engine(ecfg);
    sim::PassesReport ref = sim::renderPasses(ref_engine, bvh, pcfg);

    const size_t n_px = size_t(pcfg.camera.width) * pcfg.camera.height;
    ASSERT_EQ(ref.primary.hits.size(), n_px);
    size_t n_hit = 0, n_shadowed = 0;
    for (size_t i = 0; i < n_px; ++i) {
        if (ref.primary.hits[i].hit) {
            ++n_hit;
            n_shadowed += ref.lit[i] ? 0 : 1;
        }
        ASSERT_GE(ref.ao_open[i], 0.0f);
        ASSERT_LE(ref.ao_open[i], 1.0f);
    }
    ASSERT_GT(n_hit, 0u);
    ASSERT_GT(n_shadowed, 0u) << "the sphere must shadow the ground";
    // One shadow + one bounce ray per hit pixel plus the AO fan.
    EXPECT_EQ(ref.total_rays, n_px + n_hit * (2 + pcfg.ao_samples));
    // Raw secondary records are released after their reduction into
    // the per-pixel arrays (see PassesReport).
    EXPECT_TRUE(ref.shadow.hits.empty());
    EXPECT_TRUE(ref.ao.hits.empty());
    EXPECT_TRUE(ref.bounce.hits.empty());

    for (unsigned threads : {2u, 8u}) {
        ecfg.threads = threads;
        sim::Engine engine(ecfg);
        sim::PassesReport rep = sim::renderPasses(engine, bvh, pcfg);
        for (size_t i = 0; i < n_px; ++i) {
            ASSERT_TRUE(bitIdentical(rep.primary.hits[i],
                                     ref.primary.hits[i]))
                << "pixel " << i << " at " << threads << " threads";
            ASSERT_EQ(toBits(rep.diffuse[i]), toBits(ref.diffuse[i]));
            ASSERT_EQ(rep.lit[i], ref.lit[i]);
            ASSERT_EQ(toBits(rep.ao_open[i]), toBits(ref.ao_open[i]));
            ASSERT_TRUE(
                bitIdentical(rep.bounce_hits[i], ref.bounce_hits[i]));
        }
        EXPECT_EQ(rep.traversal, ref.traversal) << threads;
        EXPECT_EQ(rep.total_rays, ref.total_rays);
    }
}

TEST(Scenarios, RenderPassesHandlesSparseTriangleIds)
{
    // Nothing in Bvh4 makes triangle ids dense 0..n-1 — the id is an
    // opaque caller tag. renderPasses' shading prologue used to index
    // a tris.size()-long table with it, writing out of bounds for any
    // sparse id set. Remap the scenario scene's ids far apart (and
    // out of order) and require the same per-pixel outputs as the
    // dense-id run, with every reported triangle_id translated.
    Bvh4 dense = scenarioScene();
    sim::PassConfig pcfg = scenarioConfig();

    auto tris = makeTerrain(10.0f, 16, 0.4f, 3);
    uint32_t id = uint32_t(tris.size());
    auto sphere = makeSphere({0, 1.5f, 0}, 1.2f, 10, 14, id);
    tris.insert(tris.end(), sphere.begin(), sphere.end());
    auto sparse_id = [](uint32_t dense_id) {
        return 3'000'000'000u - 977u * dense_id;
    };
    for (SceneTriangle &t : tris)
        t.id = sparse_id(t.id);
    Bvh4 sparse = buildBvh4(std::move(tris));

    sim::EngineConfig ecfg;
    ecfg.model = sim::ExecutionModel::Functional;
    ecfg.batch_size = 32;
    ecfg.threads = 2;
    sim::Engine engine(ecfg);
    sim::PassesReport ref = sim::renderPasses(engine, dense, pcfg);
    sim::PassesReport rep = sim::renderPasses(engine, sparse, pcfg);

    const size_t n_px = size_t(pcfg.camera.width) * pcfg.camera.height;
    ASSERT_EQ(rep.primary.hits.size(), n_px);
    size_t n_hit = 0;
    for (size_t i = 0; i < n_px; ++i) {
        const HitRecord &a = ref.primary.hits[i];
        const HitRecord &b = rep.primary.hits[i];
        ASSERT_EQ(a.hit, b.hit) << i;
        if (a.hit) {
            ++n_hit;
            EXPECT_EQ(sparse_id(a.triangle_id), b.triangle_id) << i;
            EXPECT_EQ(toBits(a.t), toBits(b.t)) << i;
        }
        // The shading prologue resolved the same surface frames, so
        // every derived per-pixel output matches the dense run.
        EXPECT_EQ(toBits(rep.diffuse[i]), toBits(ref.diffuse[i])) << i;
        EXPECT_EQ(rep.lit[i], ref.lit[i]) << i;
        EXPECT_EQ(toBits(rep.ao_open[i]), toBits(ref.ao_open[i])) << i;
        EXPECT_EQ(rep.bounce_hits[i].hit, ref.bounce_hits[i].hit) << i;
    }
    ASSERT_GT(n_hit, 0u);
}

TEST(Scenarios, RenderPassesModelsAgree)
{
    // The cycle-accurate RT unit and the functional traverser take the
    // same intersection decisions, so a whole scenario run - including
    // the any-hit shadow pass, now timeable - agrees across models.
    Bvh4 bvh = scenarioScene();
    sim::PassConfig pcfg = scenarioConfig();
    pcfg.camera.width = 10;
    pcfg.camera.height = 8;
    pcfg.ao_samples = 0; // keep the cycle-accurate run small
    pcfg.bounce = false;

    sim::EngineConfig fcfg;
    fcfg.model = sim::ExecutionModel::Functional;
    fcfg.batch_size = 16;
    fcfg.threads = 2;
    sim::Engine functional(fcfg);
    sim::PassesReport f = sim::renderPasses(functional, bvh, pcfg);

    sim::EngineConfig ccfg;
    ccfg.model = sim::ExecutionModel::CycleAccurate;
    ccfg.batch_size = 16;
    ccfg.threads = 2;
    sim::Engine cycle(ccfg);
    sim::PassesReport c = sim::renderPasses(cycle, bvh, pcfg);

    ASSERT_EQ(f.primary.hits.size(), c.primary.hits.size());
    for (size_t i = 0; i < f.primary.hits.size(); ++i) {
        ASSERT_TRUE(bitIdentical(f.primary.hits[i], c.primary.hits[i]))
            << i;
        ASSERT_EQ(f.lit[i], c.lit[i]) << i;
    }
    // The cycle-accurate scenario actually produced timing.
    EXPECT_GT(c.unit.cycles, 0u);
    EXPECT_GT(c.unit.rays_completed, 0u);
    EXPECT_EQ(c.unit.rays_completed, c.total_rays);
}
