/**
 * @file
 * Tests of the sharded batch simulation engine: the determinism
 * contract (bit-identical per-ray hits and merged statistics at every
 * thread count), agreement with the unsharded single-unit path, and
 * the batch-slicing edge cases.
 */
#include <gtest/gtest.h>

#include <thread>

#include "bvh/scene.hh"
#include "bvh/traversal.hh"
#include "core/stages.hh"
#include "core/workloads.hh"
#include "sim/engine.hh"

using namespace rayflex;
using namespace rayflex::core;
using namespace rayflex::bvh;
using rayflex::fp::fromBits;
using rayflex::fp::toBits;

namespace
{

/** Bit-level equality of two hit records (float == would also accept
 *  -0.0f vs 0.0f; the contract is stronger). */
::testing::AssertionResult
bitIdentical(const HitRecord &a, const HitRecord &b)
{
    if (a.hit != b.hit || a.triangle_id != b.triangle_id ||
        toBits(a.t) != toBits(b.t) || toBits(a.u) != toBits(b.u) ||
        toBits(a.v) != toBits(b.v) || toBits(a.w) != toBits(b.w))
        return ::testing::AssertionFailure()
               << "hit records differ: {" << a.hit << ", " << a.t << ", "
               << a.triangle_id << "} vs {" << b.hit << ", " << b.t
               << ", " << b.triangle_id << "}";
    return ::testing::AssertionSuccess();
}

/** A small mixed scene with both hits and misses well represented. */
Bvh4
testScene()
{
    auto tris = makeSphere({0, 0, 0}, 2.0f, 12, 16);
    uint32_t id = uint32_t(tris.size());
    auto soup = makeSoup(300, 6.0f, 0.8f, 17, id);
    tris.insert(tris.end(), soup.begin(), soup.end());
    return buildBvh4(std::move(tris));
}

/** Camera rays plus random rays (some aimed away from the scene). */
std::vector<Ray>
testRays(const Bvh4 &bvh, size_t n_random)
{
    Camera cam;
    cam.look_at = bvh.root_bounds.centre();
    cam.eye = {0.5f, 1.0f, 9.0f};
    cam.width = 16;
    cam.height = 16;
    std::vector<Ray> rays;
    for (unsigned y = 0; y < cam.height; ++y)
        for (unsigned x = 0; x < cam.width; ++x)
            rays.push_back(cam.primaryRay(x, y, 100.0f));
    WorkloadGen gen(99);
    for (size_t i = 0; i < n_random; ++i)
        rays.push_back(gen.ray(8.0f));
    return rays;
}

} // namespace

TEST(SliceBatches, CoversEveryIndexExactlyOnce)
{
    for (size_t total : {0ul, 1ul, 7ul, 64ul, 65ul}) {
        for (size_t bs : {0ul, 1ul, 3ul, 64ul, 1000ul}) {
            auto batches = sliceBatches(total, bs);
            size_t covered = 0;
            for (size_t i = 0; i < batches.size(); ++i) {
                ASSERT_LT(batches[i].begin, batches[i].end);
                ASSERT_EQ(batches[i].begin, covered);
                if (bs)
                    ASSERT_LE(batches[i].size(), bs);
                covered = batches[i].end;
            }
            ASSERT_EQ(covered, total);
            if (total == 0)
                ASSERT_TRUE(batches.empty());
        }
    }
}

TEST(SliceBatches, WorkloadSlicesPreserveOrder)
{
    WorkloadGen gen(3);
    auto beats = gen.batch(Opcode::RayBox, 10);
    auto slices = sliceWorkload(beats, 4);
    ASSERT_EQ(slices.size(), 3u);
    ASSERT_EQ(slices[0].size(), 4u);
    ASSERT_EQ(slices[2].size(), 2u);
    size_t k = 0;
    for (const auto &s : slices)
        for (const auto &beat : s)
            ASSERT_EQ(beat.tag, beats[k++].tag);
}

TEST(SimEngine, DeterministicAcrossThreadCounts)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 64);

    sim::EngineConfig cfg;
    cfg.batch_size = 48; // several batches, last one short
    cfg.threads = 1;
    sim::EngineReport ref = sim::Engine(cfg).run(bvh, rays);
    ASSERT_EQ(ref.hits.size(), rays.size());
    ASSERT_EQ(ref.unit.rays_completed, rays.size());
    ASSERT_GT(ref.unit.datapath_beats, 0u);

    for (unsigned threads : {2u, 8u}) {
        cfg.threads = threads;
        sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
        ASSERT_EQ(rep.hits.size(), ref.hits.size());
        for (size_t i = 0; i < rays.size(); ++i)
            ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i]))
                << "ray " << i << " at " << threads << " threads";
        // Merged statistics are order-independent sums: identical too.
        EXPECT_EQ(rep.unit, ref.unit) << threads << " threads";
        EXPECT_EQ(rep.batches, ref.batches);
    }
}

TEST(SimEngine, ConcurrentRunsOnOneEngineAreSerializedAndIdentical)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 64);

    sim::EngineConfig cfg;
    cfg.batch_size = 48;
    cfg.threads = 4;
    sim::Engine engine(cfg);
    sim::EngineReport ref = engine.run(bvh, rays);

    // run() is a const entry point on shared engine state (the worker
    // pool): two client threads racing on ONE engine must each get the
    // solo answer, bit for bit.
    sim::EngineReport a, b;
    std::thread ta([&] { a = engine.run(bvh, rays); });
    std::thread tb([&] { b = engine.run(bvh, rays); });
    ta.join();
    tb.join();
    for (const sim::EngineReport *rep : {&a, &b}) {
        ASSERT_EQ(rep->hits.size(), ref.hits.size());
        for (size_t i = 0; i < rays.size(); ++i)
            ASSERT_TRUE(bitIdentical(rep->hits[i], ref.hits[i])) << i;
        EXPECT_EQ(rep->unit, ref.unit);
        EXPECT_EQ(rep->batches, ref.batches);
    }
}

TEST(SimEngine, FunctionalModelDeterministicAndAgrees)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 32);

    sim::EngineConfig cfg;
    cfg.model = sim::ExecutionModel::Functional;
    cfg.batch_size = 30;
    cfg.threads = 1;
    sim::EngineReport ref = sim::Engine(cfg).run(bvh, rays);
    ASSERT_GT(ref.traversal.box_ops, 0u);

    cfg.threads = 4;
    sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i])) << i;
    EXPECT_EQ(rep.traversal, ref.traversal);

    // Both execution models take every intersection decision with the
    // same datapath arithmetic, so their hits agree bit-for-bit.
    sim::EngineConfig ca;
    ca.batch_size = 30;
    ca.threads = 2;
    sim::EngineReport cycle = sim::Engine(ca).run(bvh, rays);
    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(cycle.hits[i], ref.hits[i])) << i;
}

TEST(SimEngine, HitsMatchUnshardedSingleUnit)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 16);

    // The unsharded reference: every ray through one RtUnit instance.
    core::RayFlexDatapath dp(kBaselineUnified);
    RtUnit unit(bvh, dp);
    for (uint32_t i = 0; i < rays.size(); ++i)
        unit.submit(rays[i], i);
    RtUnitStats st = unit.run();

    sim::EngineConfig cfg;
    cfg.threads = 4;
    cfg.batch_size = 37;
    sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(rep.hits[i], unit.results()[i])) << i;
    // Work counters that do not depend on batch interleaving also
    // agree; cycle counts legitimately differ with the batch layout.
    EXPECT_EQ(rep.unit.rays_completed, st.rays_completed);
    EXPECT_EQ(rep.unit.datapath_beats, st.datapath_beats);
}

TEST(SimEngine, BatchLayoutDoesNotChangeHits)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 8);

    sim::EngineConfig cfg;
    cfg.threads = 2;
    cfg.batch_size = 1; // one ray per batch
    sim::EngineReport one = sim::Engine(cfg).run(bvh, rays);
    ASSERT_EQ(one.batches, rays.size());

    cfg.batch_size = 0; // the whole workload in a single batch
    sim::EngineReport all = sim::Engine(cfg).run(bvh, rays);
    ASSERT_EQ(all.batches, 1u);
    ASSERT_EQ(all.threads_used, 1u); // never more workers than batches

    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(one.hits[i], all.hits[i])) << i;
}

TEST(SimEngine, EmptyWorkload)
{
    Bvh4 bvh = testScene();
    sim::EngineReport rep = sim::Engine().run(bvh, {});
    EXPECT_TRUE(rep.hits.empty());
    EXPECT_EQ(rep.batches, 0u);
    EXPECT_EQ(rep.threads_used, 0u);
    EXPECT_EQ(rep.unit, RtUnitStats{});
    EXPECT_EQ(rep.raysPerSecond(), 0.0);
}

TEST(SimEngine, BatchSizeLargerThanWorkload)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 0);

    sim::EngineConfig cfg;
    cfg.batch_size = 1u << 20; // far larger than the ray count
    cfg.threads = 8;
    sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
    ASSERT_EQ(rep.batches, 1u);
    ASSERT_EQ(rep.threads_used, 1u);
    ASSERT_EQ(rep.unit.rays_completed, rays.size());

    Traverser ref(bvh);
    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(rep.hits[i], ref.closestHit(rays[i])))
            << i;
}

TEST(SimEngine, AnyHitMode)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 32);

    sim::EngineConfig cfg;
    cfg.model = sim::ExecutionModel::Functional;
    cfg.batch_size = 40;
    cfg.any_hit = true;
    cfg.threads = 1;
    sim::EngineReport ref = sim::Engine(cfg).run(bvh, rays);

    // A hit exists inside the extent iff closest-hit finds one. (Beat
    // counts are not compared: any-hit usually issues fewer, but with
    // no best-hit pruning that is scene-dependent, not an invariant.)
    sim::EngineConfig closest = cfg;
    closest.any_hit = false;
    sim::EngineReport full = sim::Engine(closest).run(bvh, rays);
    size_t n_hit = 0;
    for (size_t i = 0; i < rays.size(); ++i) {
        EXPECT_EQ(ref.hits[i].hit, full.hits[i].hit) << i;
        n_hit += ref.hits[i].hit;
    }
    ASSERT_GT(n_hit, 0u);

    // Determinism holds in any-hit mode too.
    cfg.threads = 4;
    sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);
    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(rep.hits[i], ref.hits[i])) << i;
    EXPECT_EQ(rep.traversal, ref.traversal);

    // Shadow batches report stack depth too: anyHit records the
    // max_stack high-water mark exactly like closestHit.
    ASSERT_GT(ref.traversal.max_stack, 0u);

    // The cycle-level RT unit models any-hit traversal as well
    // (TraversalMode::Any): occlusion flags and the reduced records
    // (only the hit flag set) agree with the functional model
    // bit-for-bit.
    sim::EngineConfig ca;
    ca.any_hit = true;
    ca.batch_size = 40;
    ca.threads = 2;
    sim::EngineReport cyc = sim::Engine(ca).run(bvh, rays);
    for (size_t i = 0; i < rays.size(); ++i)
        ASSERT_TRUE(bitIdentical(cyc.hits[i], ref.hits[i])) << i;
    EXPECT_GT(cyc.unit.cycles, 0u);
}

TEST(SimEngine, MaxCyclesExceptionPropagatesFromWorkerThreads)
{
    // A cycle budget no batch can meet: the std::runtime_error thrown
    // inside a worker thread must surface from Engine::run, not crash
    // or deadlock the pool. (The functional/invalid-argument path used
    // to be the only exception test; this covers the multi-threaded
    // cycle-accurate one.)
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = testRays(bvh, 32);

    sim::EngineConfig cfg;
    cfg.threads = 4;
    cfg.batch_size = 8; // 4 batches for 32 rays: all 4 workers draft
    cfg.max_cycles_per_batch = 10;
    sim::Engine engine(cfg);
    EXPECT_THROW(engine.run(bvh, rays), std::runtime_error);
    // The persistent worker pool survives a failed run and serves the
    // next one.
    EXPECT_THROW(engine.run(bvh, rays), std::runtime_error);
}

TEST(SimEngine, CycleAccurateAnyHitMatchesFunctionalOn10kShadowRays)
{
    // Acceptance sweep: >= 10k random shadow-style rays (epsilon lower
    // bound, finite upper bound); the cycle-accurate and functional
    // any-hit paths must report identical occlusion flags.
    Bvh4 bvh = testScene();
    WorkloadGen gen(123);
    std::vector<Ray> rays;
    rays.reserve(10000);
    for (size_t i = 0; i < 10000; ++i) {
        Ray r = gen.ray(8.0f);
        rays.push_back(makeRay(
            fromBits(r.origin[0]), fromBits(r.origin[1]),
            fromBits(r.origin[2]), fromBits(r.dir[0]),
            fromBits(r.dir[1]), fromBits(r.dir[2]), 1e-3f, 30.0f));
    }

    sim::EngineConfig fcfg;
    fcfg.model = sim::ExecutionModel::Functional;
    fcfg.any_hit = true;
    fcfg.threads = 0; // all cores
    fcfg.batch_size = 512;
    sim::EngineReport fun = sim::Engine(fcfg).run(bvh, rays);

    sim::EngineConfig ccfg;
    ccfg.model = sim::ExecutionModel::CycleAccurate;
    ccfg.any_hit = true;
    ccfg.threads = 0;
    ccfg.batch_size = 512;
    sim::EngineReport cyc = sim::Engine(ccfg).run(bvh, rays);

    size_t occluded = 0;
    for (size_t i = 0; i < rays.size(); ++i) {
        ASSERT_EQ(cyc.hits[i].hit, fun.hits[i].hit) << "ray " << i;
        occluded += fun.hits[i].hit;
    }
    // The sweep exercises both outcomes.
    EXPECT_GT(occluded, 100u);
    EXPECT_GT(rays.size() - occluded, 100u);
    EXPECT_EQ(cyc.unit.rays_completed, rays.size());
}

TEST(SimEngine, EmptySceneMissesEverything)
{
    Bvh4 empty = buildBvh4({});
    std::vector<Ray> rays;
    WorkloadGen gen(5);
    for (int i = 0; i < 20; ++i)
        rays.push_back(gen.ray());
    sim::EngineConfig cfg;
    cfg.threads = 2;
    cfg.batch_size = 4;
    sim::EngineReport rep = sim::Engine(cfg).run(empty, rays);
    ASSERT_EQ(rep.unit.rays_completed, rays.size());
    for (const HitRecord &h : rep.hits)
        EXPECT_FALSE(h.hit);
}
