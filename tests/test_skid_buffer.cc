/**
 * @file
 * Property tests of the RayFlex Skid Buffer and elastic-pipeline kernel.
 *
 * The properties verified here are the ones the paper's architecture
 * rests on (Section III-C): lossless in-order transfer under arbitrary
 * producer/consumer stall patterns, full throughput when unstalled,
 * fully registered outputs (one cycle of latency per stage), correct
 * back-pressure propagation with no global controller, and exactly-once
 * invocation of the programmer-supplied (possibly stateful) logic.
 */
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "pipeline/component.hh"
#include "pipeline/drivers.hh"
#include "pipeline/skid_buffer.hh"

using namespace rayflex::pipeline;

namespace
{

/** A pattern asserting on cycles where (hash of cycle) mod 100 < pct. */
CyclePattern
randomPattern(uint64_t seed, unsigned pct)
{
    return [seed, pct](uint64_t cycle) {
        uint64_t h = (cycle + seed) * 0x9E3779B97F4A7C15ull;
        return (h >> 33) % 100 < pct;
    };
}

/** Drive `n` ints through a chain of `stages` +1 skid buffers with the
 *  given valid/ready duty cycles; return arrival cycles via out. */
std::vector<int>
runChain(unsigned stages, int n, unsigned valid_pct, unsigned ready_pct,
         uint64_t seed, std::vector<uint64_t> *arrivals = nullptr,
         uint64_t *elapsed = nullptr)
{
    std::vector<std::unique_ptr<SkidBuffer<int, int>>> bufs;
    for (unsigned i = 0; i < stages; ++i) {
        bufs.push_back(std::make_unique<SkidBuffer<int, int>>(
            "s" + std::to_string(i), [](const int &v) { return v + 1; }));
    }
    for (unsigned i = 0; i + 1 < stages; ++i)
        bufs[i]->bindOut(&bufs[i + 1]->in());

    Source<int> src("src", &bufs.front()->in(),
                    valid_pct >= 100 ? alwaysOn()
                                     : randomPattern(seed, valid_pct));
    Sink<int> sink("sink", &bufs.back()->out(),
                   ready_pct >= 100 ? alwaysOn()
                                    : randomPattern(seed ^ 0xABCD,
                                                    ready_pct));
    Simulator sim;
    for (auto &b : bufs)
        sim.add(b.get());
    sim.add(&src);
    sim.add(&sink);

    for (int i = 0; i < n; ++i)
        src.push(i);
    bool done = sim.runUntil([&] { return sink.count() == size_t(n); },
                             100000);
    EXPECT_TRUE(done) << "pipeline did not drain";
    if (arrivals)
        *arrivals = sink.arrivalCycles();
    if (elapsed)
        *elapsed = sim.cycle();
    return sink.received();
}

} // namespace

TEST(SkidBuffer, FullThroughputOneBeatPerCycle)
{
    std::vector<uint64_t> arrivals;
    uint64_t elapsed = 0;
    auto out = runChain(1, 50, 100, 100, 1, &arrivals, &elapsed);
    ASSERT_EQ(out.size(), 50u);
    // After the first arrival, one beat per cycle (II = 1).
    for (size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_EQ(arrivals[i], arrivals[i - 1] + 1);
}

TEST(SkidBuffer, SingleStageLatencyIsOneCycle)
{
    std::vector<uint64_t> arrivals;
    runChain(1, 1, 100, 100, 1, &arrivals);
    // Accepted on cycle 0, output registered, delivered on cycle 1.
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_EQ(arrivals[0], 1u);
}

TEST(SkidBuffer, ChainLatencyIsOneCyclePerStage)
{
    for (unsigned stages : {2u, 5u, 11u}) {
        std::vector<uint64_t> arrivals;
        runChain(stages, 1, 100, 100, 7, &arrivals);
        ASSERT_EQ(arrivals.size(), 1u);
        EXPECT_EQ(arrivals[0], stages) << stages << " stages";
    }
}

TEST(SkidBuffer, LogicAppliedOncePerStage)
{
    // Each stage increments; 11 stages => +11.
    auto out = runChain(11, 20, 100, 100, 3);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(out[size_t(i)], i + 11);
}

struct StallMatrix
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(StallMatrix, LosslessInOrderUnderRandomStalls)
{
    auto [valid_pct, ready_pct] = GetParam();
    for (uint64_t seed : {11ull, 22ull, 33ull}) {
        auto out = runChain(4, 200, valid_pct, ready_pct, seed);
        ASSERT_EQ(out.size(), 200u);
        for (int i = 0; i < 200; ++i)
            ASSERT_EQ(out[size_t(i)], i + 4)
                << "valid%=" << valid_pct << " ready%=" << ready_pct
                << " seed=" << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, StallMatrix,
    ::testing::Values(std::make_tuple(100u, 100u),
                      std::make_tuple(100u, 50u),
                      std::make_tuple(50u, 100u),
                      std::make_tuple(50u, 50u),
                      std::make_tuple(90u, 10u),
                      std::make_tuple(10u, 90u),
                      std::make_tuple(25u, 25u)));

TEST(SkidBuffer, ThroughputLimitedBySlowerSide)
{
    // With ready at ~50%, 200 beats need about 400 cycles; the elastic
    // chain must not degrade below the bottleneck rate.
    uint64_t elapsed = 0;
    runChain(3, 200, 100, 50, 5, nullptr, &elapsed);
    EXPECT_LT(elapsed, 520u); // 200/0.5 plus latency and pattern noise
}

TEST(SkidBuffer, BackPressureBoundsOccupancy)
{
    // A stalled consumer fills main + skid (occupancy 2) and the
    // registered ready then drops: no beat is ever lost.
    SkidBuffer<int, int> buf("b", [](const int &v) { return v; });
    Source<int> src("src", &buf.in());
    Sink<int> sink("sink", &buf.out(),
                   [](uint64_t) { return false; }); // never ready
    Simulator sim;
    sim.add(&buf);
    sim.add(&src);
    sim.add(&sink);
    for (int i = 0; i < 10; ++i)
        src.push(i);
    sim.run(20);
    EXPECT_EQ(buf.occupancy(), 2u);
    EXPECT_EQ(src.sent(), 2u); // exactly main + skid accepted
    EXPECT_EQ(sink.count(), 0u);
}

TEST(SkidBuffer, DrainsAfterBackPressureReleases)
{
    SkidBuffer<int, int> buf("b", [](const int &v) { return v * 10; });
    Source<int> src("src", &buf.in());
    // Ready only after cycle 30.
    Sink<int> sink("sink", &buf.out(),
                   [](uint64_t c) { return c >= 30; });
    Simulator sim;
    sim.add(&buf);
    sim.add(&src);
    sim.add(&sink);
    for (int i = 0; i < 5; ++i)
        src.push(i);
    sim.runUntil([&] { return sink.count() == 5; }, 100);
    ASSERT_EQ(sink.count(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(sink.received()[size_t(i)], i * 10);
}

TEST(SkidBuffer, StatefulLogicSeesEachBeatExactlyOnce)
{
    // An accumulator in the programmer-supplied logic (the extended
    // pipeline's pattern) must observe each beat exactly once even
    // under heavy stalls.
    int sum = 0;
    SkidBuffer<int, int> buf("acc", [&sum](const int &v) {
        sum += v;
        return sum;
    });
    Source<int> src("src", &buf.in(), randomPattern(1, 40));
    Sink<int> sink("sink", &buf.out(), randomPattern(2, 40));
    Simulator sim;
    sim.add(&buf);
    sim.add(&src);
    sim.add(&sink);
    for (int i = 1; i <= 50; ++i)
        src.push(i);
    ASSERT_TRUE(sim.runUntil([&] { return sink.count() == 50; }, 10000));
    EXPECT_EQ(sum, 50 * 51 / 2);
    // Running prefix sums arrive in order.
    int expect = 0;
    for (int i = 1; i <= 50; ++i) {
        expect += i;
        EXPECT_EQ(sink.received()[size_t(i - 1)], expect);
    }
}

TEST(SkidBuffer, StatsAccounting)
{
    SkidBuffer<int, int> buf("b", [](const int &v) { return v; });
    Source<int> src("src", &buf.in());
    Sink<int> sink("sink", &buf.out());
    Simulator sim;
    sim.add(&buf);
    sim.add(&src);
    sim.add(&sink);
    for (int i = 0; i < 30; ++i)
        src.push(i);
    sim.runUntil([&] { return sink.count() == 30; }, 1000);
    EXPECT_EQ(buf.stats().accepted, 30u);
    EXPECT_EQ(buf.stats().delivered, 30u);
    EXPECT_EQ(buf.stats().stall_cycles, 0u);
}

TEST(SkidBuffer, TypeParameterization)
{
    // In -> Out type change inside a stage, as stages 1 and 11 do.
    SkidBuffer<int, std::string> buf(
        "fmt", [](const int &v) { return std::to_string(v); });
    Source<int> src("src", &buf.in());
    Sink<std::string> sink("sink", &buf.out());
    Simulator sim;
    sim.add(&buf);
    sim.add(&src);
    sim.add(&sink);
    src.push(42);
    ASSERT_TRUE(sim.runUntil([&] { return sink.count() == 1; }, 10));
    EXPECT_EQ(sink.received()[0], "42");
}
