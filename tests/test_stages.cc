/**
 * @file
 * Unit tests of the individual pipeline stage functions: each stage's
 * contract (which SRFDS fields it consumes and produces, per opcode) is
 * pinned in isolation, independent of the assembled datapath. This is
 * the model-level equivalent of per-module RTL tests.
 */
#include <gtest/gtest.h>

#include "core/stages.hh"
#include "core/workloads.hh"

using namespace rayflex::core;
using namespace rayflex::fp;

namespace
{

float
recToFloat(Rec32 r)
{
    return fromBits(decode(r));
}

/** A stage-1-converted ray-box beat with simple geometry. */
Srfds
boxSrfds()
{
    DatapathInput in;
    in.op = Opcode::RayBox;
    in.ray = makeRay(1, 2, 3, 1, 0.5f, 0.25f, 0, 100);
    in.boxes[0] = makeBox(2, 3, 4, 6, 7, 8);
    in.boxes[1] = makeBox(-9, -9, -9, -8, -8, -8);
    in.boxes[2] = makeBox(0, 0, 0, 1, 1, 1);
    in.boxes[3] = makeBox(5, 5, 5, 6, 6, 6);
    return stages::stage1(in);
}

/** A stage-1-converted ray-triangle beat. */
Srfds
triSrfds()
{
    DatapathInput in;
    in.op = Opcode::RayTriangle;
    in.ray = makeRay(0.5f, 0.5f, -2, 0, 0, 1, 0, 100);
    in.tri = makeTriangle(0, 0, 5, 0, 2, 5, 2, 0, 5);
    return stages::stage1(in);
}

} // namespace

TEST(Stage1, ConvertsRayFieldsToRecoded)
{
    Srfds s = boxSrfds();
    EXPECT_FLOAT_EQ(recToFloat(s.org[0]), 1.0f);
    EXPECT_FLOAT_EQ(recToFloat(s.org[1]), 2.0f);
    EXPECT_FLOAT_EQ(recToFloat(s.org[2]), 3.0f);
    EXPECT_FLOAT_EQ(recToFloat(s.inv[0]), 1.0f);
    EXPECT_FLOAT_EQ(recToFloat(s.inv[1]), 2.0f);  // 1/0.5
    EXPECT_FLOAT_EQ(recToFloat(s.inv[2]), 4.0f);  // 1/0.25
    EXPECT_FLOAT_EQ(recToFloat(s.t_beg), 0.0f);
    EXPECT_FLOAT_EQ(recToFloat(s.t_end), 100.0f);
    EXPECT_FLOAT_EQ(recToFloat(s.box_lo[0][0]), 2.0f);
    EXPECT_FLOAT_EQ(recToFloat(s.box_hi[0][2]), 8.0f);
}

TEST(Stage1, ComputesAxisPermutation)
{
    // Dominant +z direction: kz = 2, no winding swap.
    Srfds s = triSrfds();
    EXPECT_EQ(s.kz, 2);
    EXPECT_EQ(s.kx, 0);
    EXPECT_EQ(s.ky, 1);

    // Dominant -x direction: kz = 0 with kx/ky swapped for winding.
    DatapathInput in;
    in.op = Opcode::RayTriangle;
    in.ray = makeRay(0, 0, 0, -2, 0.5f, 0.5f, 0, 10);
    Srfds s2 = stages::stage1(in);
    EXPECT_EQ(s2.kz, 0);
    EXPECT_EQ(s2.kx, 2); // swapped (would be 1 unswapped)
    EXPECT_EQ(s2.ky, 1);
}

TEST(Stage2, TranslatesBoxCornersOnly)
{
    Srfds s = stages::stage2(boxSrfds());
    // box0.lo - origin = (1, 1, 1); box0.hi - origin = (5, 5, 5).
    for (int d = 0; d < 3; ++d) {
        EXPECT_FLOAT_EQ(recToFloat(s.box_lo[0][d]), 1.0f);
        EXPECT_FLOAT_EQ(recToFloat(s.box_hi[0][d]), 5.0f);
    }
    // Ray fields pass through untouched.
    EXPECT_FLOAT_EQ(recToFloat(s.org[0]), 1.0f);
    EXPECT_FLOAT_EQ(recToFloat(s.inv[2]), 4.0f);
}

TEST(Stage2, TranslatesTriangleVertices)
{
    Srfds s = stages::stage2(triSrfds());
    EXPECT_FLOAT_EQ(recToFloat(s.tri_v[0][0]), -0.5f); // 0 - 0.5
    EXPECT_FLOAT_EQ(recToFloat(s.tri_v[0][2]), 7.0f);  // 5 - (-2)
    EXPECT_FLOAT_EQ(recToFloat(s.tri_v[1][1]), 1.5f);  // 2 - 0.5
}

TEST(Stage3, ComputesSlabDistances)
{
    Srfds s = stages::stage3(stages::stage2(boxSrfds()));
    // t for box0 x: (2-1)*1 = 1 and (6-1)*1 = 5.
    EXPECT_FLOAT_EQ(recToFloat(s.box_lo[0][0]), 1.0f);
    EXPECT_FLOAT_EQ(recToFloat(s.box_hi[0][0]), 5.0f);
    // y: (3-2)*2 = 2 and (7-2)*2 = 10.
    EXPECT_FLOAT_EQ(recToFloat(s.box_lo[0][1]), 2.0f);
    EXPECT_FLOAT_EQ(recToFloat(s.box_hi[0][1]), 10.0f);
}

TEST(Stage3, ZeroTimesInfinityPoisonsSlab)
{
    // Origin exactly on a slab plane with a zero direction component.
    DatapathInput in;
    in.op = Opcode::RayBox;
    in.ray = makeRay(2, 1, 1, 0, 1, 0, 0, 100); // dir.x = 0, org.x = 2
    in.boxes[0] = makeBox(2, 0, 0, 4, 2, 2);    // lo.x == org.x
    Srfds s = stages::stage3(stages::stage2(stages::stage1(in)));
    EXPECT_TRUE(isNaNRec(s.box_lo[0][0])); // 0 * inf
}

TEST(Stage4, BoxIntervalAndHit)
{
    Srfds s = stages::stage4(stages::stage3(stages::stage2(boxSrfds())));
    // Box 0 intervals per dim: x [1,5], y [2,10], z [4,20]:
    // near = max(1,2,4,t_beg=0) = 4; far = min(5,10,20,100) = 5.
    EXPECT_FLOAT_EQ(recToFloat(s.box_near[0]), 4.0f);
    EXPECT_FLOAT_EQ(recToFloat(s.box_far[0]), 5.0f);
    EXPECT_TRUE(s.box_hit[0]);
    // Box 1 lies behind the origin: miss.
    EXPECT_FALSE(s.box_hit[1]);
    // Box 2 is behind too (origin at (1,2,3), box at [0,1]^3): miss.
    EXPECT_FALSE(s.box_hit[2]);
}

TEST(Stage4, TriangleShearIsApplied)
{
    Srfds s =
        stages::stage4(stages::stage3(stages::stage2(triSrfds())));
    // Axis-aligned +z ray: Sx = Sy = 0, Sz = 1, so the sheared x/y are
    // the translated x/y and z is the translated z.
    EXPECT_FLOAT_EQ(recToFloat(s.txy[0][0]), -0.5f);
    EXPECT_FLOAT_EQ(recToFloat(s.txy[0][1]), -0.5f);
    EXPECT_FLOAT_EQ(recToFloat(s.tz[0]), 7.0f);
    EXPECT_FLOAT_EQ(recToFloat(s.tz[1]), 7.0f);
    EXPECT_FLOAT_EQ(recToFloat(s.tz[2]), 7.0f);
}

TEST(Stages5to9, BarycentricsDeterminantDistance)
{
    Srfds s = triSrfds();
    s = stages::stage2(std::move(s));
    s = stages::stage3(std::move(s));
    s = stages::stage4(std::move(s));
    s = stages::stage5(std::move(s));
    s = stages::stage6(std::move(s));
    s = stages::stage7(std::move(s));
    s = stages::stage8(std::move(s));
    DistanceAccumulators acc;
    s = stages::stage9(std::move(s), acc);

    // Triangle (0,0),(0,2),(2,0) vs pixel (0.5,0.5): scaled barycentric
    // coordinates U,V,W and det = U+V+W = signed 2x area = 4.
    float u = recToFloat(s.uvw[0]);
    float v = recToFloat(s.uvw[1]);
    float w = recToFloat(s.uvw[2]);
    float det = recToFloat(s.det);
    EXPECT_FLOAT_EQ(det, u + v + w);
    EXPECT_FLOAT_EQ(det, 4.0f);
    // t = t_num / det = 7 (plane at z=5, origin at z=-2).
    EXPECT_FLOAT_EQ(recToFloat(s.t_num) / det, 7.0f);
}

TEST(Stage10, TriangleHitPredicates)
{
    DistanceAccumulators acc;
    auto run = [&](Srfds s) {
        s = stages::stage2(std::move(s));
        s = stages::stage3(std::move(s));
        s = stages::stage4(std::move(s));
        s = stages::stage5(std::move(s));
        s = stages::stage6(std::move(s));
        s = stages::stage7(std::move(s));
        s = stages::stage8(std::move(s));
        s = stages::stage9(std::move(s), acc);
        return stages::stage10(std::move(s), acc);
    };
    EXPECT_TRUE(run(triSrfds()).tri_hit);

    // Behind the ray: t_num < 0 fails the distance predicate.
    DatapathInput behind;
    behind.op = Opcode::RayTriangle;
    behind.ray = makeRay(0.5f, 0.5f, 8, 0, 0, 1, 0, 100);
    behind.tri = makeTriangle(0, 0, 5, 0, 2, 5, 2, 0, 5);
    EXPECT_FALSE(run(stages::stage1(behind)).tri_hit);
}

TEST(Stage10, EuclideanAccumulatorProtocol)
{
    DistanceAccumulators acc;
    auto beat = [&](float value, bool reset) {
        DatapathInput in;
        in.op = Opcode::Euclidean;
        in.mask = 0x0001; // one live dimension
        in.vec_a[0] = toBits(value);
        in.vec_b[0] = toBits(0.0f);
        in.reset_accumulator = reset;
        Srfds s = stages::stage1(in);
        s = stages::stage2(std::move(s));
        s = stages::stage3(std::move(s));
        s = stages::stage4(std::move(s));
        s = stages::stage6(std::move(s));
        s = stages::stage8(std::move(s));
        s = stages::stage9(std::move(s), acc);
        return stages::stage10(std::move(s), acc);
    };
    // 3^2 + 4^2 accumulated over two beats, reset on the second.
    Srfds r1 = beat(3.0f, false);
    EXPECT_FLOAT_EQ(recToFloat(r1.euclid_out), 9.0f);
    EXPECT_FALSE(r1.euclid_reset_out);
    Srfds r2 = beat(4.0f, true);
    EXPECT_FLOAT_EQ(recToFloat(r2.euclid_out), 25.0f);
    EXPECT_TRUE(r2.euclid_reset_out);
    // Cleared for the next job.
    Srfds r3 = beat(1.0f, true);
    EXPECT_FLOAT_EQ(recToFloat(r3.euclid_out), 1.0f);
}

TEST(Stage9, CosineAccumulatorsAreIndependent)
{
    DistanceAccumulators acc;
    auto beat = [&](float a, float b, bool reset) {
        DatapathInput in;
        in.op = Opcode::Cosine;
        in.mask = 0x0001;
        in.vec_a[0] = toBits(a);
        in.vec_b[0] = toBits(b);
        in.reset_accumulator = reset;
        Srfds s = stages::stage1(in);
        s = stages::stage3(std::move(s));
        s = stages::stage4(std::move(s));
        s = stages::stage6(std::move(s));
        s = stages::stage8(std::move(s));
        return stages::stage9(std::move(s), acc);
    };
    Srfds r1 = beat(2.0f, 3.0f, false);
    EXPECT_FLOAT_EQ(recToFloat(r1.dot_out), 6.0f);
    EXPECT_FLOAT_EQ(recToFloat(r1.norm_out), 9.0f);
    // The Euclidean accumulator is untouched by cosine beats.
    EXPECT_EQ(decode(acc.euclid), kPosZero);
    Srfds r2 = beat(1.0f, 2.0f, true);
    EXPECT_FLOAT_EQ(recToFloat(r2.dot_out), 8.0f);
    EXPECT_FLOAT_EQ(recToFloat(r2.norm_out), 13.0f);
    EXPECT_TRUE(r2.angular_reset_out);
}

TEST(Stage11, OutputFormatsPerOpcode)
{
    DistanceAccumulators acc;
    WorkloadGen gen(5);
    DatapathInput in = gen.rayBoxOp(42);
    DatapathOutput out = functionalEval(in, acc);
    EXPECT_EQ(out.op, Opcode::RayBox);
    EXPECT_EQ(out.tag, 42u);
    // Sorted distances are monotone with misses (+inf) last.
    for (int i = 0; i + 1 < 4; ++i)
        EXPECT_TRUE(leF32(out.box.sorted_dist[i],
                          out.box.sorted_dist[i + 1]));
}

TEST(Stages, BlankStagesCopyInputToOutput)
{
    // Ray-box data is untouched by the triangle-only stages 5-9 - the
    // "blank cells" of Fig. 4c.
    Srfds s = stages::stage4(stages::stage3(stages::stage2(boxSrfds())));
    Srfds before = s;
    DistanceAccumulators acc;
    s = stages::stage5(std::move(s));
    s = stages::stage6(std::move(s));
    s = stages::stage7(std::move(s));
    s = stages::stage8(std::move(s));
    s = stages::stage9(std::move(s), acc);
    for (int b = 0; b < 4; ++b) {
        EXPECT_EQ(s.box_near[b], before.box_near[b]);
        EXPECT_EQ(s.box_far[b], before.box_far[b]);
        EXPECT_EQ(s.box_hit[b], before.box_hit[b]);
    }
}
