/**
 * @file
 * Tests of the streaming render service (job / scheduler / executor
 * tiers): JobQueue back-pressure, the extended determinism contract
 * (bit-identical hits, per-job simulated latencies and merged stats at
 * every worker count for a fixed arrival schedule), cross-job packet
 * formation, head-of-line blocking vs packing, and the batch-API pins
 * that freeze Engine::run / renderPasses counters across the tier
 * refactor.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "bvh/scene.hh"
#include "core/workloads.hh"
#include "sim/engine.hh"
#include "sim/passes.hh"
#include "sim/stream.hh"

using namespace rayflex;
using namespace rayflex::core;
using namespace rayflex::bvh;
using rayflex::fp::toBits;

namespace
{

::testing::AssertionResult
bitIdentical(const HitRecord &a, const HitRecord &b)
{
    if (a.hit != b.hit || a.triangle_id != b.triangle_id ||
        toBits(a.t) != toBits(b.t) || toBits(a.u) != toBits(b.u) ||
        toBits(a.v) != toBits(b.v) || toBits(a.w) != toBits(b.w))
        return ::testing::AssertionFailure()
               << "hit records differ: {" << a.hit << ", " << a.t << ", "
               << a.triangle_id << "} vs {" << b.hit << ", " << b.t
               << ", " << b.triangle_id << "}";
    return ::testing::AssertionSuccess();
}

/** Same fixture as test_sim_engine.cc: sphere shell plus soup. */
Bvh4
testScene()
{
    auto tris = makeSphere({0, 0, 0}, 2.0f, 12, 16);
    uint32_t id = uint32_t(tris.size());
    auto soup = makeSoup(300, 6.0f, 0.8f, 17, id);
    tris.insert(tris.end(), soup.begin(), soup.end());
    return buildBvh4(std::move(tris));
}

std::vector<Ray>
cameraRays(const Bvh4 &bvh, unsigned w, unsigned h)
{
    Camera cam;
    cam.look_at = bvh.root_bounds.centre();
    cam.eye = {0.5f, 1.0f, 9.0f};
    cam.width = w;
    cam.height = h;
    std::vector<Ray> rays;
    for (unsigned y = 0; y < h; ++y)
        for (unsigned x = 0; x < w; ++x)
            rays.push_back(cam.primaryRay(x, y, 100.0f));
    return rays;
}

std::vector<Ray>
randomRays(uint64_t seed, size_t n)
{
    WorkloadGen gen(seed);
    std::vector<Ray> rays;
    for (size_t i = 0; i < n; ++i)
        rays.push_back(gen.ray(8.0f));
    return rays;
}

/** A mixed three-client schedule: a frame job (closest), an AO-probe
 *  job and a shadow job (both any-hit), staggered arrivals. */
std::vector<sim::RenderJob>
mixedSchedule(const Bvh4 &bvh)
{
    std::vector<sim::RenderJob> jobs;
    jobs.push_back({10, 0, false, cameraRays(bvh, 16, 12)});
    jobs.push_back({11, 400, true, randomRays(5, 150)});
    jobs.push_back({12, 900, true, cameraRays(bvh, 8, 8)});
    return jobs;
}

sim::EngineConfig
packetEngineConfig(unsigned threads)
{
    sim::EngineConfig cfg;
    cfg.threads = threads;
    cfg.rt.mem_backend = MemBackend::NodeCache;
    cfg.rt.cache = kProbeCache4KiB;
    cfg.rt.packet.width = 8;
    cfg.rt.packet.compact_below = 4;
    return cfg;
}

::testing::AssertionResult
jobReportsIdentical(const sim::JobReport &a, const sim::JobReport &b)
{
    if (a.id != b.id || a.arrival_tick != b.arrival_tick ||
        a.any_hit != b.any_hit)
        return ::testing::AssertionFailure() << "job identity differs";
    if (a.first_service_tick != b.first_service_tick ||
        a.completion_tick != b.completion_tick ||
        a.latency != b.latency || a.queue_wait != b.queue_wait ||
        a.p50_ray_latency != b.p50_ray_latency ||
        a.p99_ray_latency != b.p99_ray_latency ||
        a.batches != b.batches || a.shared_batches != b.shared_batches)
        return ::testing::AssertionFailure()
               << "job " << a.id << " timeline differs: latency "
               << a.latency << " vs " << b.latency;
    if (a.hits.size() != b.hits.size())
        return ::testing::AssertionFailure()
               << "job " << a.id << " hit counts differ";
    for (size_t i = 0; i < a.hits.size(); ++i) {
        auto r = bitIdentical(a.hits[i], b.hits[i]);
        if (!r)
            return r << " (job " << a.id << " ray " << i << ")";
    }
    return ::testing::AssertionSuccess();
}

} // namespace

// ---------------------------------------------------------------------
// Job tier: the bounded submission channel.
// ---------------------------------------------------------------------

TEST(JobQueue, FifoWithinCapacity)
{
    sim::BoundedQueue<int> q(4);
    EXPECT_EQ(q.capacity(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.push(i));
    EXPECT_EQ(q.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        auto v = q.pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
}

TEST(JobQueue, PushBlocksWhenFullUntilPopMakesSpace)
{
    sim::BoundedQueue<int> q(2);
    ASSERT_TRUE(q.push(1));
    ASSERT_TRUE(q.push(2));

    std::atomic<bool> third_pushed{false};
    std::thread producer([&] {
        ASSERT_TRUE(q.push(3)); // blocks: queue is at capacity
        third_pushed = true;
    });
    // Back-pressure: the producer must still be blocked after a grace
    // period with the queue full.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(third_pushed.load());
    EXPECT_EQ(q.size(), 2u);

    auto v = q.pop(); // frees one slot; the producer completes
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1);
    producer.join();
    EXPECT_TRUE(third_pushed.load());
    EXPECT_EQ(*q.pop(), 2);
    EXPECT_EQ(*q.pop(), 3);
}

TEST(JobQueue, CloseDrainsThenSignalsAndRejectsPushes)
{
    sim::BoundedQueue<int> q(8);
    ASSERT_TRUE(q.push(7));
    q.close();
    EXPECT_FALSE(q.push(8)); // rejected, not enqueued
    auto v = q.pop();
    ASSERT_TRUE(v.has_value()); // queued items remain poppable
    EXPECT_EQ(*v, 7);
    EXPECT_FALSE(q.pop().has_value()); // closed and drained
}

TEST(JobQueue, CloseWakesBlockedProducer)
{
    sim::BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    producer.join();
}

// ---------------------------------------------------------------------
// Scheduler tier: plan shape and the service determinism contract.
// ---------------------------------------------------------------------

TEST(BatchScheduler, PlanIsPureAndRespectsModesAndArrivals)
{
    Bvh4 bvh = testScene();
    std::vector<sim::RenderJob> jobs = mixedSchedule(bvh);

    sim::StreamConfig cfg;
    cfg.batch_size = 64;
    sim::BatchScheduler sched(cfg);
    auto plans = sched.plan(jobs);
    auto plans2 = sched.plan(jobs);
    ASSERT_FALSE(plans.empty());
    ASSERT_EQ(plans.size(), plans2.size());

    size_t scheduled = 0;
    for (size_t p = 0; p < plans.size(); ++p) {
        EXPECT_EQ(plans[p].rays, plans2[p].rays); // pure function
        EXPECT_LE(plans[p].rays.size(), cfg.batch_size);
        scheduled += plans[p].rays.size();
        for (auto [j, r] : plans[p].rays) {
            // A batch never mixes traversal modes and never contains a
            // ray of a job that has not arrived by its ready tick.
            EXPECT_EQ(jobs[j].any_hit, plans[p].any_hit);
            EXPECT_LE(jobs[j].arrival_tick, plans[p].ready_tick);
            ASSERT_LT(size_t(r), jobs[j].rays.size());
        }
    }
    size_t total = 0;
    for (const auto &j : jobs)
        total += j.rays.size();
    EXPECT_EQ(scheduled, total); // every ray exactly once overall
}

TEST(StreamingService, DeterministicAcrossWorkerCounts)
{
    Bvh4 bvh = testScene();
    sim::StreamConfig scfg;
    scfg.batch_size = 64;

    sim::StreamReport ref = sim::StreamingService::run(
        sim::Engine(packetEngineConfig(1)), bvh, mixedSchedule(bvh),
        scfg);
    ASSERT_EQ(ref.jobs.size(), 3u);
    ASSERT_EQ(ref.total_rays, 192u + 150u + 64u);
    ASSERT_GT(ref.makespan_ticks, 0u);
    ASSERT_GT(ref.fairness, 0.0);

    for (unsigned threads : {2u, 8u}) {
        sim::StreamReport rep = sim::StreamingService::run(
            sim::Engine(packetEngineConfig(threads)), bvh,
            mixedSchedule(bvh), scfg);
        EXPECT_EQ(rep.threads_used,
                  std::min<unsigned>(threads, unsigned(rep.batches)));
        EXPECT_EQ(rep.unit, ref.unit) << threads << " threads";
        EXPECT_EQ(rep.batches, ref.batches);
        EXPECT_EQ(rep.makespan_ticks, ref.makespan_ticks);
        EXPECT_EQ(rep.p50_job_latency, ref.p50_job_latency);
        EXPECT_EQ(rep.p99_job_latency, ref.p99_job_latency);
        EXPECT_EQ(rep.fairness, ref.fairness);
        ASSERT_EQ(rep.jobs.size(), ref.jobs.size());
        for (size_t j = 0; j < ref.jobs.size(); ++j)
            EXPECT_TRUE(jobReportsIdentical(rep.jobs[j], ref.jobs[j]))
                << threads << " threads";
    }
}

TEST(StreamingService, SubmissionInterleavingDoesNotChangeTheReport)
{
    Bvh4 bvh = testScene();
    std::vector<sim::RenderJob> jobs = mixedSchedule(bvh);
    sim::Engine engine(packetEngineConfig(2));

    sim::StreamReport ref =
        sim::StreamingService::run(engine, bvh, mixedSchedule(bvh), {});

    // Submit the same schedule from three racing submitter threads in
    // reverse order: the plan is a function of the schedule, not of
    // host-time interleaving.
    sim::StreamingService svc(engine);
    std::vector<std::thread> submitters;
    for (size_t j = 0; j < jobs.size(); ++j)
        submitters.emplace_back(
            [&, j] { svc.submit(jobs[jobs.size() - 1 - j]); });
    for (auto &t : submitters)
        t.join();
    sim::StreamReport rep = svc.finish(bvh);

    EXPECT_EQ(rep.unit, ref.unit);
    ASSERT_EQ(rep.jobs.size(), ref.jobs.size());
    for (size_t j = 0; j < ref.jobs.size(); ++j)
        EXPECT_TRUE(jobReportsIdentical(rep.jobs[j], ref.jobs[j]));
}

TEST(StreamingService, HitsMatchStandaloneEngineRunsPerJob)
{
    Bvh4 bvh = testScene();
    std::vector<sim::RenderJob> jobs = mixedSchedule(bvh);
    sim::Engine engine(packetEngineConfig(1));

    sim::StreamReport rep =
        sim::StreamingService::run(engine, bvh, mixedSchedule(bvh), {});

    // Batch composition is a timing concern only: each job's hit
    // records are what a solo batch-synchronous run produces.
    for (const sim::RenderJob &job : jobs) {
        sim::EngineReport solo = engine.run(bvh, job.rays, job.any_hit);
        const sim::JobReport *jr = rep.job(job.id);
        ASSERT_NE(jr, nullptr);
        ASSERT_EQ(jr->hits.size(), solo.hits.size());
        for (size_t i = 0; i < solo.hits.size(); ++i)
            ASSERT_TRUE(bitIdentical(jr->hits[i], solo.hits[i]))
                << "job " << job.id << " ray " << i;
    }
}

TEST(StreamingService, ZeroRayAndEmptyRunsAreWellDefined)
{
    Bvh4 bvh = testScene();
    sim::Engine engine(packetEngineConfig(1));

    sim::StreamReport none =
        sim::StreamingService::run(engine, bvh, {}, {});
    EXPECT_TRUE(none.jobs.empty());
    EXPECT_EQ(none.total_rays, 0u);
    EXPECT_EQ(none.makespan_ticks, 0u);

    std::vector<sim::RenderJob> jobs;
    jobs.push_back({1, 5, false, {}});
    jobs.push_back({2, 0, false, cameraRays(bvh, 4, 4)});
    sim::StreamReport rep =
        sim::StreamingService::run(engine, bvh, std::move(jobs), {});
    const sim::JobReport *empty = rep.job(1);
    ASSERT_NE(empty, nullptr);
    EXPECT_EQ(empty->latency, 0u);
    EXPECT_EQ(empty->completion_tick, 5u);
    EXPECT_EQ(empty->batches, 0u);
    EXPECT_EQ(rep.total_rays, 16u);
}

TEST(StreamingService, ApiMisuseThrows)
{
    Bvh4 bvh = testScene();
    sim::Engine engine(packetEngineConfig(1));

    { // duplicate job ids
        sim::StreamingService svc(engine);
        svc.submit({3, 0, false, cameraRays(bvh, 2, 2)});
        svc.submit({3, 10, false, cameraRays(bvh, 2, 2)});
        EXPECT_THROW(svc.finish(bvh), std::invalid_argument);
    }
    { // submit after finish
        sim::StreamingService svc(engine);
        svc.finish(bvh);
        EXPECT_THROW(svc.submit({1, 0, false, {}}), std::logic_error);
        EXPECT_THROW(svc.finish(bvh), std::logic_error);
    }
    { // warm caches would break the worker-count contract
        sim::EngineConfig warm = packetEngineConfig(2);
        warm.warm_cache = true;
        sim::Engine we(warm);
        EXPECT_THROW(sim::StreamingService svc(we),
                     std::invalid_argument);
    }
}

// ---------------------------------------------------------------------
// Cross-job packet formation and head-of-line blocking.
// ---------------------------------------------------------------------

TEST(CrossJobPacking, SharedFetchesCrossJobBoundariesOnlyWhenPacked)
{
    Bvh4 bvh = testScene();
    // Two coherent same-mode jobs in flight together: round-robin
    // interleave makes adjacent pending rays come from different jobs,
    // so width-8 packets mix them.
    auto makeJobs = [&] {
        std::vector<sim::RenderJob> jobs;
        jobs.push_back({1, 0, false, cameraRays(bvh, 12, 12)});
        jobs.push_back({2, 0, false, cameraRays(bvh, 8, 8)});
        return jobs;
    };
    sim::Engine engine(packetEngineConfig(1));

    sim::StreamConfig on;
    on.batch_size = 64;
    on.cross_job_packing = true;
    sim::StreamReport packed =
        sim::StreamingService::run(engine, bvh, makeJobs(), on);
    EXPECT_GT(packed.unit.packet.cross_job_fetches_shared, 0u);
    EXPECT_GT(packed.crossJobShareRate(), 0.0);
    EXPECT_GT(packed.job(1)->shared_batches, 0u);

    sim::StreamConfig off = on;
    off.cross_job_packing = false;
    sim::StreamReport solo =
        sim::StreamingService::run(engine, bvh, makeJobs(), off);
    EXPECT_EQ(solo.unit.packet.cross_job_fetches_shared, 0u);
    EXPECT_EQ(solo.crossJobShareRate(), 0.0);
    EXPECT_EQ(solo.job(1)->shared_batches, 0u);
    EXPECT_EQ(solo.job(2)->shared_batches, 0u);

    // Tags never influence formation or traversal: identical hits
    // either way.
    for (uint64_t id : {1u, 2u}) {
        ASSERT_EQ(packed.job(id)->hits.size(), solo.job(id)->hits.size());
        for (size_t i = 0; i < packed.job(id)->hits.size(); ++i)
            ASSERT_TRUE(bitIdentical(packed.job(id)->hits[i],
                                     solo.job(id)->hits[i]));
    }
}

TEST(CrossJobPacking, PackingBeatsHeadOfLineBlockingForSmallJobs)
{
    Bvh4 bvh = testScene();
    // A large frame job monopolizes the machine; a small probe job
    // arrives shortly after. Without packing it waits for the frame to
    // drain (head-of-line blocking); with packing its rays ride shared
    // batches and it completes much earlier.
    auto makeJobs = [&] {
        std::vector<sim::RenderJob> jobs;
        jobs.push_back({1, 0, false, cameraRays(bvh, 24, 24)});
        jobs.push_back({2, 100, false, cameraRays(bvh, 4, 4)});
        return jobs;
    };
    sim::Engine engine(packetEngineConfig(1));
    sim::StreamConfig cfg;
    cfg.batch_size = 64;

    cfg.cross_job_packing = true;
    sim::StreamReport packed =
        sim::StreamingService::run(engine, bvh, makeJobs(), cfg);
    cfg.cross_job_packing = false;
    sim::StreamReport hol =
        sim::StreamingService::run(engine, bvh, makeJobs(), cfg);

    const sim::JobReport *ps = packed.job(2);
    const sim::JobReport *hs = hol.job(2);
    ASSERT_NE(ps, nullptr);
    ASSERT_NE(hs, nullptr);
    EXPECT_LT(ps->latency, hs->latency);
    EXPECT_LT(ps->queue_wait, hs->queue_wait);
    EXPECT_LT(ps->p99_ray_latency, hs->p99_ray_latency);
}

// ---------------------------------------------------------------------
// Passes-as-jobs: streaming secondary passes reproduce the sequential
// per-pixel outputs bit for bit.
// ---------------------------------------------------------------------

TEST(StreamPasses, StreamedSecondariesMatchSequentialPerPixel)
{
    Bvh4 bvh = testScene();
    sim::Engine engine(packetEngineConfig(2));

    sim::PassConfig pc;
    pc.camera.eye = {0.5f, 1.0f, 9.0f};
    pc.camera.look_at = {0.0f, 0.0f, 0.0f};
    pc.camera.width = 16;
    pc.camera.height = 16;
    pc.ao_samples = 2;
    pc.bounce = true;
    pc.seed = 7;
    sim::PassesReport seq = sim::renderPasses(engine, bvh, pc);

    pc.stream_secondary = true;
    pc.stream.batch_size = 64;
    sim::PassesReport str = sim::renderPasses(engine, bvh, pc);

    ASSERT_EQ(str.lit, seq.lit);
    ASSERT_EQ(str.diffuse.size(), seq.diffuse.size());
    for (size_t i = 0; i < seq.diffuse.size(); ++i) {
        EXPECT_EQ(toBits(str.diffuse[i]), toBits(seq.diffuse[i])) << i;
        EXPECT_EQ(toBits(str.ao_open[i]), toBits(seq.ao_open[i])) << i;
        EXPECT_TRUE(bitIdentical(str.bounce_hits[i], seq.bounce_hits[i]))
            << i;
    }
    // Same rays traversed, merged into the stream report instead of
    // the per-pass ones (which stay empty in stream mode).
    EXPECT_EQ(str.total_rays, seq.total_rays);
    EXPECT_EQ(str.shadow.hits.size() + str.shadow.batches, 0u);
    EXPECT_EQ(str.stream.jobs.size(), 3u);
    EXPECT_GT(str.stream.unit.cycles, 0u);
    // Shadow and AO are both any-hit and in flight together: the
    // occlusion batches actually pack across the two jobs.
    EXPECT_GT(str.stream.unit.packet.cross_job_fetches_shared, 0u);
}

// ---------------------------------------------------------------------
// Batch-API pins: the refactor onto the executor tier reproduces the
// pre-refactor (PR 6) numbers bit for bit. Counters are hard-coded in
// the style of the PR 4/5 pin suites; any change here is a timing or
// results regression, not noise.
// ---------------------------------------------------------------------

namespace
{

std::vector<Ray>
pinRays(const Bvh4 &bvh)
{
    std::vector<Ray> rays = cameraRays(bvh, 16, 16);
    std::vector<Ray> rnd = randomRays(99, 48);
    rays.insert(rays.end(), rnd.begin(), rnd.end());
    return rays;
}

} // namespace

TEST(BatchApiPin, LoadedSingleUnitReproducesPr6BitForBit)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = pinRays(bvh);

    sim::EngineConfig cfg = packetEngineConfig(1);
    cfg.batch_size = 64;
    cfg.rt.issue_width = 2;
    cfg.rt.mshrs = 8;
    sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);

    EXPECT_EQ(rep.batches, 5u);
    EXPECT_EQ(rep.unit.cycles, 13143u);
    EXPECT_EQ(rep.unit.rays_completed, 304u);
    EXPECT_EQ(rep.unit.datapath_beats, 4793u);
    EXPECT_EQ(rep.unit.datapath_idle, 21493u);
    EXPECT_EQ(rep.unit.mem_requests, 793u);
    EXPECT_EQ(rep.unit.stall_on_memory, 20499u);
    EXPECT_EQ(rep.unit.mem.hits, 609u);
    EXPECT_EQ(rep.unit.mem.misses, 1263u);
    EXPECT_EQ(rep.unit.mem.evictions, 943u);
    EXPECT_EQ(rep.unit.packet.packets_formed, 38u);
    EXPECT_EQ(rep.unit.packet.node_visits, 966u);
    EXPECT_EQ(rep.unit.packet.active_ray_visits, 3214u);
    EXPECT_EQ(rep.unit.packet.fetches_shared, 2248u);
    EXPECT_EQ(rep.unit.packet.cross_job_fetches_shared, 0u);
    EXPECT_EQ(rep.unit.packet.divergence_splits, 362u);
    EXPECT_EQ(rep.unit.packet.rays_retired, 304u);
    EXPECT_EQ(rep.unit.packet.occupancy_at_retire, 1452u);
    EXPECT_EQ(rep.unit.packet.compactions, 15u);
    EXPECT_EQ(rep.unit.packet.lanes_repacked, 34u);
    EXPECT_EQ(rep.unit.mshr.allocations, 793u);
    EXPECT_EQ(rep.unit.mshr.merges, 173u);
    EXPECT_EQ(rep.unit.mshr.stalls_full, 0u);
    size_t n_hits = 0;
    for (const auto &h : rep.hits)
        n_hits += h.hit;
    EXPECT_EQ(n_hits, 58u);
}

TEST(BatchApiPin, SharedL2ChipReproducesPr6BitForBit)
{
    Bvh4 bvh = testScene();
    std::vector<Ray> rays = pinRays(bvh);

    sim::EngineConfig cfg = packetEngineConfig(1);
    cfg.batch_size = 64;
    cfg.chip.units = 4;
    cfg.chip.l2 = sim::L2Mode::Shared;
    cfg.chip.l2cfg = kProbeL2_128KiB;
    sim::EngineReport rep = sim::Engine(cfg).run(bvh, rays);

    EXPECT_EQ(rep.batches, 5u);
    EXPECT_EQ(rep.unit.cycles, 44940u);
    EXPECT_EQ(rep.unit.rays_completed, 304u);
    EXPECT_EQ(rep.unit.datapath_beats, 4792u);
    EXPECT_EQ(rep.unit.datapath_idle, 40148u);
    EXPECT_EQ(rep.unit.mem_requests, 1352u);
    EXPECT_EQ(rep.unit.stall_on_memory, 36666u);
    EXPECT_EQ(rep.unit.mem.hits, 949u);
    EXPECT_EQ(rep.unit.mem.misses, 2247u);
    EXPECT_EQ(rep.unit.mem.evictions, 1000u);
    EXPECT_EQ(rep.unit.packet.packets_formed, 40u);
    EXPECT_EQ(rep.unit.packet.node_visits, 1352u);
    EXPECT_EQ(rep.unit.packet.active_ray_visits, 3212u);
    EXPECT_EQ(rep.unit.packet.fetches_shared, 1860u);
    EXPECT_EQ(rep.unit.packet.divergence_splits, 435u);
    EXPECT_EQ(rep.unit.packet.rays_retired, 304u);
    EXPECT_EQ(rep.unit.packet.occupancy_at_retire, 1400u);
    EXPECT_EQ(rep.unit.packet.compactions, 14u);
    EXPECT_EQ(rep.unit.packet.lanes_repacked, 29u);
    EXPECT_EQ(rep.unit.chip_cycles, 11923u);
    const L2Stats l2 = rep.unit.l2Total();
    EXPECT_EQ(l2.hits, 731u);
    EXPECT_EQ(l2.misses, 837u);
    EXPECT_EQ(l2.merges, 679u);
    EXPECT_EQ(l2.cross_unit_merges, 679u);
    EXPECT_EQ(l2.queue_stalls, 129u);
    EXPECT_EQ(l2.hops, 4502u);
    size_t n_hits = 0;
    for (const auto &h : rep.hits)
        n_hits += h.hit;
    EXPECT_EQ(n_hits, 58u);
}

TEST(BatchApiPin, RenderPassesReproducesPr6BitForBit)
{
    Bvh4 bvh = testScene();

    sim::EngineConfig cfg = packetEngineConfig(1);
    cfg.batch_size = 64;
    sim::Engine engine(cfg);
    sim::PassConfig pc;
    pc.camera.eye = {0.5f, 1.0f, 9.0f};
    pc.camera.look_at = {0.0f, 0.0f, 0.0f};
    pc.camera.width = 16;
    pc.camera.height = 16;
    pc.ao_samples = 2;
    pc.bounce = true;
    pc.seed = 7;
    sim::PassesReport rep = sim::renderPasses(engine, bvh, pc);

    EXPECT_EQ(rep.total_rays, 488u);
    EXPECT_EQ(rep.unit.cycles, 22771u);
    EXPECT_EQ(rep.unit.datapath_beats, 7637u);
    EXPECT_EQ(rep.unit.datapath_idle, 15134u);
    EXPECT_EQ(rep.unit.mem_requests, 1719u);
    EXPECT_EQ(rep.unit.stall_on_memory, 14501u);
    EXPECT_EQ(rep.unit.mem.hits, 1718u);
    EXPECT_EQ(rep.unit.mem.misses, 2381u);
    EXPECT_EQ(rep.unit.mem.evictions, 1869u);
    EXPECT_EQ(rep.unit.packet.packets_formed, 63u);
    EXPECT_EQ(rep.unit.packet.node_visits, 1719u);
    EXPECT_EQ(rep.unit.packet.active_ray_visits, 5076u);
    EXPECT_EQ(rep.unit.packet.fetches_shared, 3357u);
    EXPECT_EQ(rep.unit.packet.divergence_splits, 595u);
    EXPECT_EQ(rep.unit.packet.rays_retired, 488u);
    EXPECT_EQ(rep.unit.packet.occupancy_at_retire, 2264u);
    EXPECT_EQ(rep.unit.packet.compactions, 21u);
    EXPECT_EQ(rep.unit.packet.lanes_repacked, 45u);
    EXPECT_EQ(rep.primary.unit.cycles, 9839u);
    EXPECT_EQ(rep.shadow.unit.cycles, 4241u);
    EXPECT_EQ(rep.ao.unit.cycles, 4227u);
    EXPECT_EQ(rep.bounce.unit.cycles, 4464u);

    double dsum = 0, asum = 0;
    size_t nlit = 0;
    for (float d : rep.diffuse)
        dsum += d;
    for (float a : rep.ao_open)
        asum += a;
    for (uint8_t l : rep.lit)
        nlit += l;
    EXPECT_NEAR(dsum, 19.862127, 1e-4);
    EXPECT_EQ(asum, 255.0);
    EXPECT_EQ(nlit, 235u);
}
